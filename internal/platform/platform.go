// Package platform defines the simulated evaluation platforms of the ALE
// paper. The paper runs on four machines and reports three: Rock (16-core
// SPARC with restrictive best-effort HTM), Haswell (4-core/8-thread x86
// with Intel TSX), and T2-2 (2-socket, 128-thread SPARC with no HTM).
//
// Each platform is expressed as a tm.Profile — the HTM capacity and
// reliability envelope — plus the thread counts the paper sweeps on it.
// DESIGN.md records why these parameters reproduce the policy-relevant
// behaviour of the real machines.
package platform

import (
	"fmt"

	"repro/internal/tm"
)

// Platform bundles a simulated machine: its HTM profile and the thread
// counts the paper's figures sweep over on it.
type Platform struct {
	Profile tm.Profile
	// Threads are the x-axis points used for this platform's figures.
	Threads []int
}

// Rock models the Sun Rock processor: 16 cores, best-effort HTM that is
// both small and fragile (transactions fail on TLB misses, certain
// branches, function returns...). Tight capacity plus a high spurious
// rate reproduces the "HTM helps, but only for short sections and with
// generous retry budgets" behaviour the paper reports.
func Rock() Platform {
	return Platform{
		Profile: tm.Profile{
			Name:         "Rock",
			Enabled:      true,
			ReadCap:      64,
			WriteCap:     16,
			SpuriousProb: 0.004,
		},
		Threads: []int{1, 2, 4, 8, 16},
	}
}

// Haswell models an Intel Haswell with TSX/RTM: 4 cores, 8 hardware
// threads, L1-sized write sets, and mostly-reliable transactions.
func Haswell() Platform {
	return Platform{
		Profile: tm.Profile{
			Name:         "Haswell",
			Enabled:      true,
			ReadCap:      512,
			WriteCap:     128,
			SpuriousProb: 0.0002,
		},
		Threads: []int{1, 2, 4, 8},
	}
}

// T2 models the SPARC T2+ (T2-2): lots of hardware threads, no HTM. On
// this platform SWOpt is the only elision technique available, which is
// exactly what Figure 4's curves demonstrate.
func T2() Platform {
	return Platform{
		Profile: tm.Profile{
			Name:    "T2-2",
			Enabled: false,
		},
		Threads: []int{1, 2, 4, 8, 16, 32, 64},
	}
}

// ByName looks a platform up by its case-sensitive name ("Rock",
// "Haswell", "T2-2").
func ByName(name string) (Platform, error) {
	for _, p := range All() {
		if p.Profile.Name == name {
			return p, nil
		}
	}
	return Platform{}, fmt.Errorf("platform: unknown platform %q", name)
}

// All returns the three reported platforms in paper order.
func All() []Platform {
	return []Platform{Rock(), Haswell(), T2()}
}
