package platform

import "testing"

func TestAllPlatformsWellFormed(t *testing.T) {
	ps := All()
	if len(ps) != 3 {
		t.Fatalf("All() = %d platforms, want 3", len(ps))
	}
	names := map[string]bool{}
	for _, p := range ps {
		if p.Profile.Name == "" {
			t.Error("platform with empty name")
		}
		if names[p.Profile.Name] {
			t.Errorf("duplicate platform name %s", p.Profile.Name)
		}
		names[p.Profile.Name] = true
		if len(p.Threads) == 0 {
			t.Errorf("%s: empty thread sweep", p.Profile.Name)
		}
		for i := 1; i < len(p.Threads); i++ {
			if p.Threads[i] <= p.Threads[i-1] {
				t.Errorf("%s: thread sweep not increasing: %v", p.Profile.Name, p.Threads)
			}
		}
		if p.Profile.Enabled && (p.Profile.ReadCap <= 0 || p.Profile.WriteCap <= 0) {
			t.Errorf("%s: HTM enabled with zero capacity", p.Profile.Name)
		}
	}
}

func TestHTMEnvelopeOrdering(t *testing.T) {
	r, h, t2 := Rock(), Haswell(), T2()
	// The defining contrasts (DESIGN.md): Rock tighter and flakier than
	// Haswell; T2 without HTM entirely.
	if !r.Profile.Enabled || !h.Profile.Enabled {
		t.Fatal("Rock/Haswell must have HTM")
	}
	if t2.Profile.Enabled {
		t.Fatal("T2 must not have HTM")
	}
	if r.Profile.ReadCap >= h.Profile.ReadCap || r.Profile.WriteCap >= h.Profile.WriteCap {
		t.Error("Rock capacity should be tighter than Haswell")
	}
	if r.Profile.SpuriousProb <= h.Profile.SpuriousProb {
		t.Error("Rock should abort spuriously more often than Haswell")
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"Rock", "Haswell", "T2-2"} {
		p, err := ByName(name)
		if err != nil || p.Profile.Name != name {
			t.Errorf("ByName(%s) = (%s, %v)", name, p.Profile.Name, err)
		}
	}
	if _, err := ByName("PDP-11"); err == nil {
		t.Error("unknown platform accepted")
	}
}
