package kyoto

import "repro/internal/xrand"

// Wicked is the workload generator modelled on Kyoto Cabinet's "wicked"
// test (kcstashtest wicked, the benchmark the paper drives its section 5
// experiments with): a random mix of record operations over a random key
// range, seasoned with occasional whole-DB operations.
//
// The mix percentages below follow the wicked test's spirit — mutation-
// heavy with a substantial read component — and the key range is sized so
// that a large fraction of lookups miss, reproducing the statistic the
// paper calls out (42% of executions did not find the object they were
// seeking, and hence succeeded using SWOpt).
type Wicked struct {
	// KeyRange is the number of distinct keys (1..KeyRange).
	KeyRange uint64
	// Per-mille thresholds for each operation kind; an op is drawn
	// uniformly in [0, 1000).
	SetPct, GetPct, RemovePct, AddPct, ClearPct, CountPct int

	// NoMutate turns the workload into the paper's "nomutate" variant:
	// lookups only (over the same key range, so misses still occur).
	NoMutate bool
}

// DefaultWicked returns the standard wicked mix.
func DefaultWicked() Wicked {
	return Wicked{
		KeyRange:  8192,
		SetPct:    300, // 30.0%
		GetPct:    350, // 35.0%
		RemovePct: 150, // 15.0%
		AddPct:    180, // 18.0%
		ClearPct:  5,   //  0.5%
		CountPct:  15,  //  1.5%
	}
}

// NoMutateWicked returns the paper's nomutate variant: pure lookups over a
// key range roughly twice the expected population, so roughly half the
// lookups miss.
func NoMutateWicked() Wicked {
	w := DefaultWicked()
	w.NoMutate = true
	return w
}

// Prepopulate loads about half the key range so lookups hit ~50% at the
// start (the nomutate variant depends on a stable population).
func (w Wicked) Prepopulate(h *Handle) error {
	for k := uint64(1); k <= w.KeyRange; k += 2 {
		if err := h.Set(k, k*1000); err != nil {
			return err
		}
	}
	return nil
}

// Step runs one workload operation through the ALE-integrated API and
// reports whether a lookup (if any) hit.
func (w Wicked) Step(h *Handle, rng *xrand.State) (hit bool, err error) {
	key := rng.Uint64n(w.KeyRange) + 1
	if w.NoMutate {
		_, ok, err := h.Get(key)
		return ok, err
	}
	r := int(rng.Uint64n(1000))
	switch {
	case r < w.SetPct:
		return false, h.Set(key, key*1000+rng.Uint64n(1000))
	case r < w.SetPct+w.GetPct:
		_, ok, err := h.Get(key)
		return ok, err
	case r < w.SetPct+w.GetPct+w.RemovePct:
		ok, err := h.Remove(key)
		return ok, err
	case r < w.SetPct+w.GetPct+w.RemovePct+w.AddPct:
		_, err := h.Add(key, 1)
		return true, err
	case r < w.SetPct+w.GetPct+w.RemovePct+w.AddPct+w.ClearPct:
		_, err := h.Clear()
		return false, err
	default:
		_, err := h.Count()
		return false, err
	}
}

// StepTLS runs one workload operation through the trylockspin baseline.
func (w Wicked) StepTLS(h *Handle, rng *xrand.State) (hit bool) {
	key := rng.Uint64n(w.KeyRange) + 1
	if w.NoMutate {
		_, ok := h.GetTLS(key)
		return ok
	}
	r := int(rng.Uint64n(1000))
	switch {
	case r < w.SetPct:
		_ = h.SetTLS(key, key*1000+rng.Uint64n(1000))
		return false
	case r < w.SetPct+w.GetPct:
		_, ok := h.GetTLS(key)
		return ok
	case r < w.SetPct+w.GetPct+w.RemovePct:
		ok, _ := h.RemoveTLS(key)
		return ok
	case r < w.SetPct+w.GetPct+w.RemovePct+w.AddPct:
		_, _ = h.AddTLS(key, 1)
		return true
	case r < w.SetPct+w.GetPct+w.RemovePct+w.AddPct+w.ClearPct:
		h.ClearTLS()
		return false
	default:
		h.CountTLS()
		return false
	}
}
