package kyoto

// The "trylockspin" baseline: the hand-tuned variant the paper's section 5
// compares ALE against. It bypasses the ALE engine entirely and manages
// the two lock levels itself with an optimistic acquisition order:
//
//  1. take the key's slot lock and perform the lookup;
//  2. if the operation turns out to need the method lock (the paper's
//     statistics showed 42% of wicked lookups miss and can finish under
//     the slot lock alone), *try* to take the method read lock without
//     blocking;
//  3. if the try fails, release the slot lock, block on the method read
//     lock, re-take the slot lock and redo the operation — the restart
//     keeps the lock order deadlock-free against whole-DB operations,
//     which take the method write lock before the slot locks.
//
// Slot access goes through the hashmap's direct (non-ALE) accessors: the
// slot lock provides exclusion. Do not mix trylockspin calls with ALE
// calls on the same DB — the baseline performs no marker bumps, so ALE
// SWOpt paths would not see its mutations.

// GetTLS looks key up using the trylockspin protocol. A miss completes
// under the slot lock alone; a hit confirms under the method read lock.
func (h *Handle) GetTLS(key uint64) (uint64, bool) {
	if key == 0 {
		return 0, false
	}
	s := int(h.db.slotOf(key))
	sl := h.db.slots[s].Lock().Ops()
	sh := h.slot[s]

	sl.Acquire()
	v, ok := sh.GetDirect(key)
	if !ok {
		sl.Release()
		return 0, false // the 42% case: no method-lock acquisition at all
	}
	if h.db.method.TryAcquireRead() {
		v, ok = sh.GetDirect(key) // reconfirm under both locks
		h.db.method.ReleaseRead()
		sl.Release()
		return v, ok
	}
	// Restart with the blocking order: method lock first, then slot.
	sl.Release()
	h.db.method.AcquireRead()
	sl.Acquire()
	v, ok = sh.GetDirect(key)
	sl.Release()
	h.db.method.ReleaseRead()
	return v, ok
}

// mutateTLS runs op under (slot lock + method read lock) with the
// trylockspin acquisition protocol.
func (h *Handle) mutateTLS(key uint64, op func(sh *hashmapDirect)) {
	s := int(h.db.slotOf(key))
	sl := h.db.slots[s].Lock().Ops()
	sh := h.slot[s]

	sl.Acquire()
	if h.db.method.TryAcquireRead() {
		op(&hashmapDirect{sh})
		h.db.method.ReleaseRead()
		sl.Release()
		return
	}
	sl.Release()
	h.db.method.AcquireRead()
	sl.Acquire()
	op(&hashmapDirect{sh})
	sl.Release()
	h.db.method.ReleaseRead()
}

// hashmapDirect narrows the hashmap handle to its direct accessors for
// the mutateTLS callback.
type hashmapDirect struct {
	h interface {
		GetDirect(key uint64) (uint64, bool)
		InsertDirect(key, val uint64) (bool, error)
		RemoveDirect(key uint64) bool
	}
}

// SetTLS stores key -> val using the trylockspin protocol.
func (h *Handle) SetTLS(key, val uint64) error {
	if key == 0 {
		return errZeroKey
	}
	var err error
	h.mutateTLS(key, func(d *hashmapDirect) {
		_, err = d.h.InsertDirect(key, val)
	})
	return err
}

// RemoveTLS deletes key using the trylockspin protocol.
func (h *Handle) RemoveTLS(key uint64) (bool, error) {
	if key == 0 {
		return false, errZeroKey
	}
	var ok bool
	h.mutateTLS(key, func(d *hashmapDirect) {
		ok = d.h.RemoveDirect(key)
	})
	return ok, nil
}

// AddTLS increments key's value by delta using the trylockspin protocol.
func (h *Handle) AddTLS(key, delta uint64) (uint64, error) {
	if key == 0 {
		return 0, errZeroKey
	}
	var out uint64
	var err error
	h.mutateTLS(key, func(d *hashmapDirect) {
		v, _ := d.h.GetDirect(key)
		out = v + delta
		_, err = d.h.InsertDirect(key, out)
	})
	return out, err
}

// ClearTLS removes every record under the method write lock.
func (h *Handle) ClearTLS() int {
	h.db.method.AcquireWrite()
	n := 0
	for i, m := range h.db.slots {
		sl := m.Lock().Ops()
		sl.Acquire()
		n += h.slot[i].ClearDirect()
		sl.Release()
	}
	h.db.method.ReleaseWrite()
	return n
}

// CountTLS counts records under the method write lock.
func (h *Handle) CountTLS() int {
	h.db.method.AcquireWrite()
	n := 0
	for i, m := range h.db.slots {
		sl := m.Lock().Ops()
		sl.Acquire()
		n += h.slot[i].LenDirect()
		sl.Release()
	}
	h.db.method.ReleaseWrite()
	return n
}
