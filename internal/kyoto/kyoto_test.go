package kyoto

import (
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/tm"
	"repro/internal/xrand"
)

func htmProfile() tm.Profile {
	return tm.Profile{Name: "test-htm", Enabled: true, ReadCap: 1 << 16, WriteCap: 1 << 16}
}

func noHTMProfile() tm.Profile {
	return tm.Profile{Name: "test-nohtm", Enabled: false}
}

func newDB(prof tm.Profile, pf PolicyFactory) *DB {
	rt := core.NewRuntime(tm.NewDomain(prof))
	return New(rt, "db", Config{Slots: 4, SlotBuckets: 32, SlotCapacity: 4096}, pf)
}

func TestSequentialBasics(t *testing.T) {
	db := newDB(htmProfile(), StaticFactory(10, 10))
	h := db.NewHandle()

	if _, ok, _ := h.Get(7); ok {
		t.Fatal("Get on empty DB hit")
	}
	if err := h.Set(7, 700); err != nil {
		t.Fatal(err)
	}
	if v, ok, _ := h.Get(7); !ok || v != 700 {
		t.Fatalf("Get(7) = (%d, %v)", v, ok)
	}
	if v, err := h.Add(7, 5); err != nil || v != 705 {
		t.Fatalf("Add(7, 5) = (%d, %v)", v, err)
	}
	if v, err := h.Add(8, 3); err != nil || v != 3 {
		t.Fatalf("Add(8, 3) on absent key = (%d, %v)", v, err)
	}
	if n, _ := h.Count(); n != 2 {
		t.Fatalf("Count = %d, want 2", n)
	}
	if ok, _ := h.Remove(7); !ok {
		t.Fatal("Remove(7) missed")
	}
	if n, _ := h.Clear(); n != 1 {
		t.Fatalf("Clear = %d, want 1", n)
	}
	if n, _ := h.Count(); n != 0 {
		t.Fatalf("Count after Clear = %d, want 0", n)
	}
}

func TestZeroKeyRejected(t *testing.T) {
	db := newDB(htmProfile(), LockOnlyFactory())
	h := db.NewHandle()
	if err := h.Set(0, 1); err == nil {
		t.Error("Set(0) accepted")
	}
	if _, _, err := h.Get(0); err != nil {
		// Get(0) returns (0, false, err) — either contract is fine as
		// long as it does not succeed; the implementation returns an
		// error via the miss path.
		_ = err
	}
}

// TestQuickMatchesModel runs random op sequences against a model map.
func TestQuickMatchesModel(t *testing.T) {
	type op struct {
		Kind uint8
		Key  uint8
		Val  uint16
	}
	for _, tc := range []struct {
		name string
		prof tm.Profile
	}{
		{"htm", htmProfile()},
		{"nohtm", noHTMProfile()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			f := func(ops []op) bool {
				db := newDB(tc.prof, StaticFactory(5, 5))
				h := db.NewHandle()
				model := map[uint64]uint64{}
				for _, o := range ops {
					key := uint64(o.Key%40) + 1
					switch o.Kind % 5 {
					case 0:
						if err := h.Set(key, uint64(o.Val)); err != nil {
							return false
						}
						model[key] = uint64(o.Val)
					case 1:
						v, ok, err := h.Get(key)
						if err != nil {
							return false
						}
						want, wok := model[key]
						if ok != wok || (ok && v != want) {
							return false
						}
					case 2:
						ok, err := h.Remove(key)
						if err != nil {
							return false
						}
						_, wok := model[key]
						if ok != wok {
							return false
						}
						delete(model, key)
					case 3:
						v, err := h.Add(key, 1)
						if err != nil {
							return false
						}
						if v != model[key]+1 {
							return false
						}
						model[key]++
					case 4:
						n, err := h.Count()
						if err != nil || n != len(model) {
							return false
						}
					}
				}
				return true
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestConcurrentTortureALE hammers the ALE-integrated API from many
// goroutines including whole-DB ops; values are key-tagged so any
// cross-slot or recycled-node corruption surfaces.
func TestConcurrentTortureALE(t *testing.T) {
	for _, tc := range []struct {
		name string
		prof tm.Profile
		pf   PolicyFactory
	}{
		{"static-all/htm", htmProfile(), StaticFactory(8, 8)},
		{"static-swopt/nohtm", noHTMProfile(), StaticFactory(0, 10)},
		{"adaptive/htm", htmProfile(), AdaptiveFactory(core.AdaptiveConfig{
			PhaseExecs: 100, InitialX: 10, XSlack: 2, BigY: 100})},
		{"lockonly/htm", htmProfile(), LockOnlyFactory()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			db := newDB(tc.prof, tc.pf)
			const workers, per, keyRange = 8, 2500, 256
			var wg sync.WaitGroup
			errCh := make(chan error, workers)
			bad := make(chan string, 1)
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(id int) {
					defer wg.Done()
					h := db.NewHandle()
					rng := xrand.New(uint64(id) + 1)
					for i := 0; i < per; i++ {
						key := rng.Uint64n(keyRange) + 1
						switch rng.Intn(20) {
						case 0: // occasional whole-DB op
							if rng.Intn(2) == 0 {
								if _, err := h.Clear(); err != nil {
									errCh <- err
									return
								}
							} else {
								if _, err := h.Count(); err != nil {
									errCh <- err
									return
								}
							}
						case 1, 2, 3, 4, 5:
							if err := h.Set(key, key*1000000+rng.Uint64n(1000)); err != nil {
								errCh <- err
								return
							}
						case 6, 7, 8:
							if _, err := h.Remove(key); err != nil {
								errCh <- err
								return
							}
						case 9, 10:
							if _, err := h.Add(key, 1); err != nil {
								errCh <- err
								return
							}
						default:
							v, ok, err := h.Get(key)
							if err != nil {
								errCh <- err
								return
							}
							// Values written by Set are key-tagged in their
							// millions digit; Add bumps only the low digits
							// (or builds small untagged values from zero).
							if ok && v >= 1000000 && v/1000000 != key {
								select {
								case bad <- "Get returned a value tagged for another key":
								default:
								}
							}
						}
					}
				}(w)
			}
			wg.Wait()
			close(errCh)
			for err := range errCh {
				t.Fatal(err)
			}
			select {
			case msg := <-bad:
				t.Fatal(msg)
			default:
			}
		})
	}
}

// TestConcurrentTortureTLS does the same for the trylockspin baseline.
func TestConcurrentTortureTLS(t *testing.T) {
	db := newDB(htmProfile(), LockOnlyFactory())
	const workers, per, keyRange = 8, 3000, 256
	var wg sync.WaitGroup
	bad := make(chan string, 1)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			h := db.NewHandle()
			rng := xrand.New(uint64(id) + 1)
			for i := 0; i < per; i++ {
				key := rng.Uint64n(keyRange) + 1
				switch rng.Intn(20) {
				case 0:
					if rng.Intn(2) == 0 {
						h.ClearTLS()
					} else {
						h.CountTLS()
					}
				case 1, 2, 3, 4, 5:
					_ = h.SetTLS(key, key*1000000+rng.Uint64n(1000))
				case 6, 7, 8:
					_, _ = h.RemoveTLS(key)
				case 9, 10:
					_, _ = h.AddTLS(key, 1)
				default:
					v, ok := h.GetTLS(key)
					if ok && v >= 1000000 && v/1000000 != key {
						select {
						case bad <- "GetTLS returned a value tagged for another key":
						default:
						}
					}
				}
			}
		}(w)
	}
	wg.Wait()
	select {
	case msg := <-bad:
		t.Fatal(msg)
	default:
	}
}

// TestWickedWorkloadRuns drives the wicked generator across policies and
// checks the nomutate miss-rate statistic the paper reports (~40-60%).
func TestWickedWorkloadRuns(t *testing.T) {
	db := newDB(htmProfile(), StaticFactory(5, 5))
	w := DefaultWicked()
	w.KeyRange = 512
	h := db.NewHandle()
	rng := xrand.New(42)
	for i := 0; i < 5000; i++ {
		if _, err := w.Step(h, rng); err != nil {
			t.Fatal(err)
		}
	}
}

func TestNoMutateMissRate(t *testing.T) {
	db := newDB(noHTMProfile(), StaticFactory(0, 10))
	w := NoMutateWicked()
	w.KeyRange = 1024
	h := db.NewHandle()
	if err := w.Prepopulate(h); err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(7)
	hits := 0
	const n = 10000
	for i := 0; i < n; i++ {
		hit, err := w.Step(h, rng)
		if err != nil {
			t.Fatal(err)
		}
		if hit {
			hits++
		}
	}
	missRate := 1 - float64(hits)/n
	if missRate < 0.4 || missRate > 0.6 {
		t.Errorf("nomutate miss rate = %.2f, want ~0.5 (the paper's 42%% regime)", missRate)
	}
	// On a no-HTM platform, misses succeed via SWOpt: the external
	// granule must show substantial SWOpt successes.
	var sw uint64
	for _, g := range db.ReadLock().Granules() {
		sw += g.Successes(core.ModeSWOpt)
	}
	if sw == 0 {
		t.Error("nomutate workload never succeeded in SWOpt")
	}
}

// TestClearCountConsistency: under quiescence Clear+Count behave; under
// concurrency Count must never be negative or exceed insertions.
func TestClearCountConsistency(t *testing.T) {
	db := newDB(htmProfile(), StaticFactory(8, 8))
	var wg sync.WaitGroup
	stop := make(chan struct{})
	errCh := make(chan error, 3)
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			h := db.NewHandle()
			rng := xrand.New(uint64(id) + 3)
			for {
				select {
				case <-stop:
					return
				default:
				}
				if err := h.Set(rng.Uint64n(100)+1, 1); err != nil {
					errCh <- err
					return
				}
			}
		}(w)
	}
	h := db.NewHandle()
	for i := 0; i < 30; i++ {
		n, err := h.Count()
		if err != nil {
			t.Fatal(err)
		}
		if n < 0 || n > 100 {
			t.Fatalf("Count = %d, want within [0, 100]", n)
		}
		if _, err := h.Clear(); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}

func TestExternalHTMOnlyConfiguration(t *testing.T) {
	// The paper's section 5 configuration sweep includes "only HTM for
	// the external critical section": SetModes(true, false) on the read
	// lock must keep everything correct.
	db := newDB(htmProfile(), StaticFactory(8, 8))
	db.ReadLock().SetModes(true, false)
	h := db.NewHandle()
	for k := uint64(1); k <= 200; k++ {
		if err := h.Set(k, k*1000000); err != nil {
			t.Fatal(err)
		}
	}
	for k := uint64(1); k <= 200; k++ {
		v, ok, err := h.Get(k)
		if err != nil || !ok || v != k*1000000 {
			t.Fatalf("Get(%d) = (%d, %v, %v)", k, v, ok, err)
		}
	}
	var sw uint64
	for _, g := range db.ReadLock().Granules() {
		sw += g.Successes(core.ModeSWOpt)
	}
	if sw != 0 {
		t.Errorf("SWOpt used %d times despite being disabled on the lock", sw)
	}
}

func TestIterateVisitsEverything(t *testing.T) {
	db := newDB(htmProfile(), StaticFactory(5, 5))
	h := db.NewHandle()
	want := map[uint64]uint64{}
	for k := uint64(1); k <= 100; k++ {
		if err := h.Set(k, k*7); err != nil {
			t.Fatal(err)
		}
		want[k] = k * 7
	}
	got := map[uint64]uint64{}
	n, err := h.Iterate(func(key, val uint64) bool {
		got[key] = val
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != len(want) || len(got) != len(want) {
		t.Fatalf("visited %d records (map %d), want %d", n, len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("key %d = %d, want %d", k, got[k], v)
		}
	}
}

func TestIterateEarlyStop(t *testing.T) {
	db := newDB(htmProfile(), StaticFactory(5, 5))
	h := db.NewHandle()
	for k := uint64(1); k <= 50; k++ {
		if err := h.Set(k, k); err != nil {
			t.Fatal(err)
		}
	}
	visited := 0
	n, err := h.Iterate(func(key, val uint64) bool {
		visited++
		return visited < 10
	})
	if err != nil {
		t.Fatal(err)
	}
	if visited != 10 {
		t.Errorf("visited = %d, want 10 (early stop)", visited)
	}
	if n > visited {
		t.Errorf("reported count %d exceeds visits %d", n, visited)
	}
}

func TestIterateExcludesConcurrentSWOptMutators(t *testing.T) {
	// An iterator holds the method write lock; while it runs, record
	// operations must not slip mutations between the slots it has already
	// visited and the ones it has not *via the optimistic path* — the
	// method marker is bumped by whole-DB ops... but Iterate does not
	// mutate, so instead we check the complementary property: iteration
	// observes a consistent per-key snapshot (values are key-tagged and
	// every visited value must carry its key's tag).
	db := newDB(htmProfile(), StaticFactory(5, 5))
	seed := db.NewHandle()
	for k := uint64(1); k <= 200; k++ {
		if err := seed.Set(k, k*1000000); err != nil {
			t.Fatal(err)
		}
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			h := db.NewHandle()
			rng := xrand.New(uint64(id) + 11)
			for {
				select {
				case <-stop:
					return
				default:
				}
				k := rng.Uint64n(200) + 1
				_ = h.Set(k, k*1000000+rng.Uint64n(1000))
			}
		}(w)
	}
	for i := 0; i < 20; i++ {
		_, err := seed.Iterate(func(key, val uint64) bool {
			if val/1000000 != key {
				t.Errorf("iterator saw value %d under key %d", val, key)
				return false
			}
			return true
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}
