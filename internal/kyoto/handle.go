package kyoto

import (
	"errors"

	"repro/internal/core"
	"repro/internal/hashmap"
)

// opKind dispatches the nested slot critical section's action.
type opKind uint8

const (
	opGet opKind = iota
	opSet
	opRemove
	opAdd
)

// Handle is a worker goroutine's accessor for the DB. It owns one ALE
// thread shared by the outer (method lock) and inner (slot lock) critical
// sections, plus a hashmap handle per slot.
type Handle struct {
	db   *DB
	thr  *core.Thread
	slot []*hashmap.Handle

	// Per-call scratch: the prebuilt bodies read arguments and write
	// results here. Every body resets its outputs first (aborted HTM
	// attempts' handle side effects survive).
	argKey, argVal uint64
	curSlot        int
	kind           opKind
	optVer         uint64
	retVal         uint64
	retOK          bool
	freshLink      bool
	freedIdx       uint64
	retN           int
	recycleBuf     []uint64

	csGet, csSet, csRemove, csAdd core.CS
	csSlot, csSlotChecked         core.CS
	csSlotClear, csSlotCount      core.CS
	csClear, csCount              core.CS
	csIter, csSlotIter            core.CS
	iterVisit                     func(key, val uint64) bool
	iterStopped                   bool
}

// NewHandle creates a per-goroutine handle.
func (db *DB) NewHandle() *Handle {
	thr := db.rt.NewThread()
	h := &Handle{db: db, thr: thr, slot: make([]*hashmap.Handle, len(db.slots))}
	for i, m := range db.slots {
		h.slot[i] = m.NewHandleWithThread(thr)
	}
	h.buildCS()
	return h
}

// Thread exposes the handle's ALE thread.
func (h *Handle) Thread() *core.Thread { return h.thr }

func (h *Handle) buildCS() {
	db := h.db

	// slotBody performs the current record operation inside a critical
	// section on the key's slot lock.
	slotBody := func(ec *core.ExecCtx) error {
		sh := h.slot[h.curSlot]
		switch h.kind {
		case opGet:
			h.retVal, h.retOK = sh.GetIn(ec, h.argKey)
		case opSet:
			fresh, err := sh.InsertIn(ec, h.argKey, h.argVal)
			if err != nil {
				return err
			}
			h.freshLink, h.retOK = fresh, true
		case opRemove:
			h.freedIdx = sh.RemoveIn(ec, h.argKey)
			h.retOK = h.freedIdx != 0
		case opAdd:
			v, fresh, err := sh.AddIn(ec, h.argKey, h.argVal)
			if err != nil {
				return err
			}
			h.retVal, h.freshLink, h.retOK = v, fresh, true
		}
		return nil
	}
	reset := func() {
		h.retVal, h.retOK = 0, false
		h.freshLink, h.freedIdx = false, 0
	}

	// csSlot: the inner critical section when the method lock is actually
	// held (or elided by HTM) — no extra check needed.
	h.csSlot = core.CS{
		Scope:       db.scopeSlot,
		Conflicting: true, // Set/Remove bump the slot's markers
		Body: func(ec *core.ExecCtx) error {
			reset()
			return slotBody(ec)
		},
	}
	// csSlotChecked: the inner critical section under an external SWOpt
	// execution. Per section 3.3 it first checks whether the optimistic
	// premise still holds — no whole-DB operation ran since the method
	// marker was read — and otherwise ends without acting.
	h.csSlotChecked = core.CS{
		Scope:       db.scopeSlotChecked,
		Conflicting: true,
		Body: func(ec *core.ExecCtx) error {
			reset()
			if !db.methodMarker.ValidateIn(ec, h.optVer) {
				return errStale
			}
			return slotBody(ec)
		},
	}

	// outerBody: the external critical section on the method lock's read
	// side. Its SWOpt path skips the read-lock acquisition entirely,
	// validating against the method marker.
	outerBody := func(ec *core.ExecCtx) error {
		if ec.InSWOpt() {
			h.optVer = ec.ReadStable(db.methodMarker)
			err := db.slots[h.curSlot].Lock().Execute(h.thr, &h.csSlotChecked)
			if errors.Is(err, errStale) {
				return ec.SWOptFail()
			}
			return err
		}
		return db.slots[h.curSlot].Lock().Execute(h.thr, &h.csSlot)
	}
	h.csGet = core.CS{Scope: db.scopeGet, HasSWOpt: true, Body: outerBody}
	h.csSet = core.CS{Scope: db.scopeSet, HasSWOpt: true, Body: outerBody}
	h.csRemove = core.CS{Scope: db.scopeRemove, HasSWOpt: true, Body: outerBody}
	h.csAdd = core.CS{Scope: db.scopeAdd, HasSWOpt: true, Body: outerBody}

	// Whole-DB operations: write lock outside, per-slot critical sections
	// inside, method marker bumped around the whole sweep so external
	// SWOpt executions notice. Everything runs in Lock mode (the write
	// lock is lock-only and the slot sweeps are NoHTM), so handle side
	// effects (free-list recycling) are safe immediately.
	h.csSlotClear = core.CS{
		Scope:       db.scopeClear,
		NoHTM:       true,
		Conflicting: true,
		Body: func(ec *core.ExecCtx) error {
			h.retN += h.slot[h.curSlot].ClearIn(ec, &h.recycleBuf)
			return nil
		},
	}
	h.csClear = core.CS{
		Scope:       db.scopeClear,
		NoHTM:       true,
		Conflicting: true,
		Body: func(ec *core.ExecCtx) error {
			h.retN = 0
			db.methodMarker.BeginConflicting(ec)
			for i := range db.slots {
				h.curSlot = i
				if err := db.slots[i].Lock().Execute(h.thr, &h.csSlotClear); err != nil {
					db.methodMarker.EndConflicting(ec)
					return err
				}
				for _, idx := range h.recycleBuf {
					h.slot[i].Recycle(idx)
				}
				h.recycleBuf = h.recycleBuf[:0]
			}
			db.methodMarker.EndConflicting(ec)
			return nil
		},
	}
	h.csSlotCount = core.CS{
		Scope: db.scopeCount,
		NoHTM: true,
		Body: func(ec *core.ExecCtx) error {
			h.retN += h.slot[h.curSlot].LenIn(ec)
			return nil
		},
	}
	h.csCount = core.CS{
		Scope: db.scopeCount,
		NoHTM: true,
		Body: func(ec *core.ExecCtx) error {
			h.retN = 0
			for i := range db.slots {
				h.curSlot = i
				if err := db.slots[i].Lock().Execute(h.thr, &h.csSlotCount); err != nil {
					return err
				}
			}
			return nil
		},
	}
	h.csSlotIter = core.CS{
		Scope: db.scopeCount, // shares the whole-DB-read context
		NoHTM: true,
		Body: func(ec *core.ExecCtx) error {
			sh := h.slot[h.curSlot]
			sh.RangeIn(ec, func(key, val uint64) bool {
				if !h.iterVisit(key, val) {
					h.iterStopped = true
					return false
				}
				h.retN++
				return true
			})
			return nil
		},
	}
	h.csIter = core.CS{
		Scope: db.scopeCount,
		NoHTM: true,
		Body: func(ec *core.ExecCtx) error {
			h.retN = 0
			h.iterStopped = false
			for i := range db.slots {
				h.curSlot = i
				if err := db.slots[i].Lock().Execute(h.thr, &h.csSlotIter); err != nil {
					return err
				}
				if h.iterStopped {
					return nil
				}
			}
			return nil
		},
	}
}

// Iterate visits every record under the method write lock — the whole-DB
// operation that motivates the method lock in Kyoto Cabinet (its iterator
// must see a stable snapshot while record operations pause). visit returns
// false to stop early. Returns how many records were visited.
func (h *Handle) Iterate(visit func(key, val uint64) bool) (int, error) {
	h.iterVisit = visit
	err := h.db.writeLock.Execute(h.thr, &h.csIter)
	h.iterVisit = nil
	return h.retN, err
}

// Get returns key's value.
func (h *Handle) Get(key uint64) (uint64, bool, error) {
	if key == 0 {
		return 0, false, errZeroKey
	}
	h.argKey, h.curSlot, h.kind = key, int(h.db.slotOf(key)), opGet
	err := h.db.readLock.Execute(h.thr, &h.csGet)
	return h.retVal, h.retOK, err
}

// Set stores key -> val.
func (h *Handle) Set(key, val uint64) error {
	if key == 0 {
		return errZeroKey
	}
	h.argKey, h.argVal, h.curSlot, h.kind = key, val, int(h.db.slotOf(key)), opSet
	err := h.db.readLock.Execute(h.thr, &h.csSet)
	if err == nil && h.freshLink {
		h.slot[h.curSlot].ConsumePending()
	}
	return err
}

// Remove deletes key, reporting whether it was present.
func (h *Handle) Remove(key uint64) (bool, error) {
	if key == 0 {
		return false, errZeroKey
	}
	h.argKey, h.curSlot, h.kind = key, int(h.db.slotOf(key)), opRemove
	err := h.db.readLock.Execute(h.thr, &h.csRemove)
	if err == nil {
		h.slot[h.curSlot].Recycle(h.freedIdx)
	}
	return h.retOK, err
}

// Add increments key's value by delta (inserting from zero if absent) and
// returns the new value — Kyoto Cabinet's increment operation.
func (h *Handle) Add(key, delta uint64) (uint64, error) {
	if key == 0 {
		return 0, errZeroKey
	}
	h.argKey, h.argVal, h.curSlot, h.kind = key, delta, int(h.db.slotOf(key)), opAdd
	err := h.db.readLock.Execute(h.thr, &h.csAdd)
	if err == nil && h.freshLink {
		h.slot[h.curSlot].ConsumePending()
	}
	return h.retVal, err
}

// Clear removes every record (whole-DB operation, method write lock).
// Returns the number of records removed.
func (h *Handle) Clear() (int, error) {
	err := h.db.writeLock.Execute(h.thr, &h.csClear)
	return h.retN, err
}

// Count returns the number of records (whole-DB operation, method write
// lock).
func (h *Handle) Count() (int, error) {
	err := h.db.writeLock.Execute(h.thr, &h.csCount)
	return h.retN, err
}

var errZeroKey = errors.New("kyoto: zero key")
