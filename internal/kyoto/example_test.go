package kyoto_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/kyoto"
	"repro/internal/platform"
	"repro/internal/tm"
)

// Example shows the Kyoto-Cabinet-style DB: record operations nest a slot
// critical section inside the method lock's read side; whole-DB operations
// take the write side.
func Example() {
	rt := core.NewRuntime(tm.NewDomain(platform.Haswell().Profile))
	db := kyoto.New(rt, "db",
		kyoto.Config{Slots: 4, SlotBuckets: 32, SlotCapacity: 1024},
		kyoto.StaticFactory(10, 10))
	h := db.NewHandle()

	if err := h.Set(1, 100); err != nil {
		fmt.Println("error:", err)
		return
	}
	v, _ := h.Add(1, 5)
	fmt.Println("value after add:", v)

	n, _ := h.Count()
	fmt.Println("records:", n)

	cleared, _ := h.Clear()
	fmt.Println("cleared:", cleared)
	// Output:
	// value after add: 105
	// records: 1
	// cleared: 1
}

// Example_trylockspin runs the same operations through the paper's
// hand-tuned baseline, which bypasses ALE entirely.
func Example_trylockspin() {
	rt := core.NewRuntime(tm.NewDomain(platform.Haswell().Profile))
	db := kyoto.New(rt, "db",
		kyoto.Config{Slots: 4, SlotBuckets: 32, SlotCapacity: 1024},
		kyoto.LockOnlyFactory())
	h := db.NewHandle()

	_ = h.SetTLS(9, 900)
	v, ok := h.GetTLS(9)
	fmt.Println(v, ok)
	_, miss := h.GetTLS(10) // the no-method-lock fast path
	fmt.Println(miss)
	// Output:
	// 900 true
	// false
}
