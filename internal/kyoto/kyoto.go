// Package kyoto is the reproduction's stand-in for Kyoto Cabinet's
// in-memory CacheDB, the "real example" of the paper's section 5. The
// paper's Kyoto experiments exercise two things the HashMap microbenchmark
// does not: a readers-writer lock elided on its read side, and nesting —
// every record operation takes an outer critical section on the global
// method lock and an inner one on a per-slot lock.
//
// Structure (mirroring CacheDB):
//
//   - one RW "method lock": record operations take its read side, whole-DB
//     operations (Clear, Count) take its write side;
//   - NSLOTS slots, each an independently locked hash table
//     (hashmap.Map, so each slot lock is itself ALE-enabled);
//   - record operations hash the key to a slot and run
//     (method-read CS -> slot CS).
//
// The external critical section has a SWOpt path: run the record operation
// without acquiring the method read lock, validating against a method-
// level conflict marker that whole-DB operations bump. The inner slot
// critical section performs the actual table access (in HTM or Lock mode;
// SWOpt is ineligible there under the paper's nesting rules, and the inner
// body re-checks the method marker after entering — the section 3.3
// nested-mutation discipline).
//
// The package also implements the hand-tuned "trylockspin" baseline the
// paper compares against: take the slot lock first, and acquire the method
// read lock only when the operation turns out to need it, with a
// release-and-restart path to keep lock ordering deadlock-free.
package kyoto

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/hashmap"
	"repro/internal/locks"
)

// Config sizes a DB.
type Config struct {
	// Slots is the number of independently locked slots (rounded up to a
	// power of two). Kyoto Cabinet's CacheDB uses 16.
	Slots int
	// SlotBuckets and SlotCapacity size each slot's hash table.
	SlotBuckets  int
	SlotCapacity int
}

// DefaultConfig matches the wicked-benchmark sizing.
func DefaultConfig() Config {
	return Config{Slots: 16, SlotBuckets: 256, SlotCapacity: 1 << 14}
}

// PolicyFactory builds one policy instance per ALE lock. The DB has
// 2 + Slots locks (method read side, method write side, one per slot),
// and policies carry per-lock learning state, so each needs its own.
type PolicyFactory func(lockName string) core.Policy

// StaticFactory returns a factory producing NewStatic(x, y) for every lock.
func StaticFactory(x, y int) PolicyFactory {
	return func(string) core.Policy { return core.NewStatic(x, y) }
}

// AdaptiveFactory returns a factory producing adaptive policies with cfg.
func AdaptiveFactory(cfg core.AdaptiveConfig) PolicyFactory {
	return func(string) core.Policy { return core.NewAdaptiveCfg(cfg) }
}

// LockOnlyFactory returns the Instrumented baseline for every lock.
func LockOnlyFactory() PolicyFactory {
	return func(string) core.Policy { return core.NewLockOnly() }
}

// DB is the CacheDB-like store.
type DB struct {
	rt     *core.Runtime
	method *locks.RWLock

	// readLock and writeLock are the ALE views of the method lock's two
	// sides. They share the physical lock word; ALE metadata (granules,
	// learning) is per side, which matches how differently the two sides
	// behave.
	readLock  *core.Lock
	writeLock *core.Lock

	// methodMarker is bumped by whole-DB operations; external SWOpt
	// executions validate against it.
	methodMarker *core.ConflictMarker

	slots    []*hashmap.Map
	slotMask uint64

	scopeGet, scopeSet, scopeRemove, scopeAdd *core.Scope
	scopeSlot, scopeSlotChecked               *core.Scope
	scopeClear, scopeCount                    *core.Scope
}

// errStale reports that the external SWOpt execution was invalidated by a
// whole-DB operation before or while the nested slot section ran.
var errStale = errors.New("kyoto: method-level optimistic execution invalidated")

// New builds a DB on rt; policies makes one policy per lock.
func New(rt *core.Runtime, name string, cfg Config, policies PolicyFactory) *DB {
	if cfg.Slots < 1 {
		panic("kyoto: non-positive slot count")
	}
	n := 1
	for n < cfg.Slots {
		n <<= 1
	}
	cfg.Slots = n
	db := &DB{
		rt:       rt,
		method:   locks.NewRWLock(rt.Domain()),
		slotMask: uint64(cfg.Slots - 1),

		scopeGet:         core.NewScope(name + ".Get"),
		scopeSet:         core.NewScope(name + ".Set"),
		scopeRemove:      core.NewScope(name + ".Remove"),
		scopeAdd:         core.NewScope(name + ".Add"),
		scopeSlot:        core.NewScope(name + ".slot"),
		scopeSlotChecked: core.NewScope(name + ".slot+check"),
		scopeClear:       core.NewScope(name + ".Clear"),
		scopeCount:       core.NewScope(name + ".Count"),
	}
	db.readLock = rt.NewLock(name+".method(read)", db.method.ReadSide(),
		policies(name+".method(read)"))
	db.writeLock = rt.NewLock(name+".method(write)", db.method.WriteSide(),
		policies(name+".method(write)"))
	// Whole-DB operations hold the write lock and cannot also be elided
	// usefully in this model; keep the write side lock-only eligible.
	db.writeLock.SetModes(false, false)
	// The two sides are one physical lock: grouping and SWOpt-activity
	// state must be shared so write-side conflicting regions defer to
	// read-side SWOpt retries.
	db.writeLock.ShareElisionState(db.readLock)
	db.methodMarker = db.readLock.NewMarker()

	db.slots = make([]*hashmap.Map, cfg.Slots)
	for i := range db.slots {
		db.slots[i] = hashmap.New(rt, fmt.Sprintf("%s.slot%02d", name, i),
			hashmap.Config{Buckets: cfg.SlotBuckets, Capacity: cfg.SlotCapacity, MarkerStripes: 1},
			policies(fmt.Sprintf("%s.slot%02d", name, i)))
	}
	return db
}

// Runtime returns the owning ALE runtime (reports).
func (db *DB) Runtime() *core.Runtime { return db.rt }

// ReadLock exposes the method lock's read-side ALE lock (tests, tuning:
// e.g. SetModes(true, false) reproduces the paper's HTM-only external
// configuration).
func (db *DB) ReadLock() *core.Lock { return db.readLock }

// Slots returns the number of slots.
func (db *DB) Slots() int { return len(db.slots) }

// SlotMap exposes slot i's hash table (tests).
func (db *DB) SlotMap(i int) *hashmap.Map { return db.slots[i] }

// slotOf hashes a key to its slot index.
func (db *DB) slotOf(key uint64) uint64 {
	z := key * 0x9e3779b97f4a7c15
	return (z >> 32) & db.slotMask
}
