// Package load is the open-loop load-generation layer for aleserve: a
// seeded Poisson arrival schedule, a coordinated-omission-safe latency
// recorder over the shared log-bucket scheme (internal/stats), an
// operation-mix generator, and the connection driver cmd/aleload runs
// against a live server.
//
// Open-loop means arrivals are scheduled by a rate process that does not
// wait for responses: when the server falls behind, requests queue and
// their latency — measured from the *scheduled* send time, not the actual
// send — grows without bound. A closed loop (fixed in-flight count, next
// request issued on response) would instead slow its own arrival rate to
// whatever the server sustains, hiding exactly the queueing collapse a
// "heavy traffic" claim has to survive. The scheduled-time accounting is
// the standard defense against coordinated omission: a stalled server
// cannot suppress the samples that would have indicted it.
//
// Everything in this package that makes decisions (arrival times, keys,
// verbs) draws from seeded xrand streams, and the driver loop is written
// against small Clock/Transport interfaces, so the schedule and the
// accounting are testable on a virtual clock with no real sockets and no
// time.Sleep (docs/TESTING.md).
package load

import (
	"fmt"
	"math"

	"repro/internal/xrand"
)

// Schedule generates a Poisson arrival process: successive calls to Next
// return strictly increasing nanosecond offsets (from the run's start)
// whose inter-arrival gaps are i.i.d. exponential with mean 1/rate. The
// stream is fully determined by (rate, seed).
type Schedule struct {
	rng    *xrand.State
	invNS  float64 // mean inter-arrival gap in nanoseconds
	nextNS float64
}

// NewSchedule builds a schedule with the given arrival rate in operations
// per second. Panics on a non-positive or non-finite rate (flag validation
// belongs to the caller).
func NewSchedule(ratePerSec float64, seed uint64) *Schedule {
	if !(ratePerSec > 0) || math.IsInf(ratePerSec, 0) {
		panic(fmt.Sprintf("load: invalid arrival rate %v", ratePerSec))
	}
	return &Schedule{rng: xrand.New(seed), invNS: 1e9 / ratePerSec}
}

// Next returns the next scheduled arrival as a nanosecond offset from the
// start of the run.
func (s *Schedule) Next() int64 {
	// Inverse-CDF sampling: gap = -ln(1-U)/rate. Float64 returns [0, 1),
	// so 1-U is in (0, 1] and the log is finite; Log1p(-u) keeps precision
	// for small u, where most of the mass is.
	u := s.rng.Float64()
	s.nextNS += -math.Log1p(-u) * s.invNS
	return int64(s.nextNS)
}
