package load

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"time"
)

// ResultSchema tags aleload's JSON output so alereport can probe file
// kinds the same way it distinguishes bench-micro files from obs
// snapshots.
const ResultSchema = "aleload-result/v1"

// ErrNotLoadSchema reports that a byte stream is not an aleload result
// file (alereport falls through to its other parsers).
var ErrNotLoadSchema = errors.New("load: not an aleload-result file")

// Result is one load run's aggregate outcome. Latencies are
// coordinated-omission-safe: measured from each op's *scheduled* arrival,
// not its actual send. Quantiles come from the shared log-bucket
// histogram (internal/stats), so they are conservative upper bounds
// within one bucket ratio (≤2×) of the true value.
type Result struct {
	Schema     string  `json:"schema"`
	Conns      int     `json:"conns"`
	RatePerSec float64 `json:"rate_per_sec"`
	Seed       uint64  `json:"seed"`
	Keys       uint64  `json:"keys"`
	Mix        string  `json:"mix"`
	ValSize    int     `json:"val_size,omitempty"`

	DurationNS int64 `json:"duration_ns"`
	WarmupNS   int64 `json:"warmup_ns"`

	// Count is the number of recorded (post-warmup, acknowledged) ops;
	// Trimmed fell in the warmup; Errors got typed -ERR replies (still
	// recorded — an error reply is a served request); Unacked were cut off
	// by connection loss (a drain) and never acknowledged.
	Count   uint64 `json:"count"`
	Trimmed uint64 `json:"trimmed"`
	Errors  uint64 `json:"errors"`
	Unacked uint64 `json:"unacked"`

	// AchievedPerSec is Count scaled to the measured interval — an
	// open-loop client that cannot keep up shows Achieved < Rate.
	AchievedPerSec float64 `json:"achieved_per_sec"`

	MeanNS int64 `json:"mean_ns"`
	MaxNS  int64 `json:"max_ns"`
	P50NS  int64 `json:"p50_ns"`
	P90NS  int64 `json:"p90_ns"`
	P99NS  int64 `json:"p99_ns"`
	P999NS int64 `json:"p999_ns"`

	// Buckets is the raw log-bucket histogram (internal/stats layout),
	// kept so alereport can recompute any quantile.
	Buckets []uint64 `json:"buckets"`

	// Exemplars are the per-bucket witnessed operations (worst latency
	// first): which verb/key/connection actually suffered each latency
	// band. Omitted for pre-exemplar result files, which therefore
	// re-encode unchanged.
	Exemplars []OpExemplar `json:"exemplars,omitempty"`
}

// buildResult assembles the Result from the merged recorder.
func buildResult(cfg Config, mix Mix, rec *Recorder, errors, unacked uint64, durNS int64) Result {
	r := Result{
		Schema:     ResultSchema,
		Conns:      cfg.Conns,
		RatePerSec: cfg.RatePerSec,
		Seed:       cfg.Seed,
		Keys:       cfg.Keys,
		Mix:        mix.String(),
		ValSize:    cfg.ValSize,
		DurationNS: durNS,
		WarmupNS:   cfg.Warmup.Nanoseconds(),
		Count:      rec.Count(),
		Trimmed:    rec.Trimmed(),
		Errors:     errors,
		Unacked:    unacked,
		MeanNS:     rec.MeanNS(),
		MaxNS:      rec.MaxNS(),
		P50NS:      rec.Quantile(0.50),
		P90NS:      rec.Quantile(0.90),
		P99NS:      rec.Quantile(0.99),
		P999NS:     rec.Quantile(0.999),
		Buckets:    rec.Buckets(),
		Exemplars:  rec.Exemplars(),
	}
	if measured := durNS - r.WarmupNS; measured > 0 {
		r.AchievedPerSec = float64(r.Count) / (float64(measured) / 1e9)
	}
	return r
}

// WriteJSON writes r as indented JSON.
func (r Result) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ParseResult decodes an aleload result file, returning ErrNotLoadSchema
// when the bytes are JSON of some other kind (or not JSON).
func ParseResult(data []byte) (Result, error) {
	var probe struct {
		Schema string `json:"schema"`
	}
	if err := json.Unmarshal(data, &probe); err != nil || probe.Schema != ResultSchema {
		return Result{}, ErrNotLoadSchema
	}
	var r Result
	if err := json.Unmarshal(data, &r); err != nil {
		return Result{}, fmt.Errorf("load: bad result file: %w", err)
	}
	return r, nil
}

// WriteTable renders r as the human-readable summary aleload and
// alereport print.
func (r Result) WriteTable(w io.Writer) error {
	ms := func(ns int64) string {
		return fmt.Sprintf("%.3fms", float64(ns)/1e6)
	}
	fmt.Fprintf(w, "open-loop load: %d conns, %.0f ops/s offered, mix %s, %d keys, seed %d\n",
		r.Conns, r.RatePerSec, r.Mix, r.Keys, r.Seed)
	fmt.Fprintf(w, "  measured %s (warmup %s trimmed %d)\n",
		time.Duration(r.DurationNS), time.Duration(r.WarmupNS), r.Trimmed)
	fmt.Fprintf(w, "  ops %d (%.0f/s achieved), errors %d, unacked %d\n",
		r.Count, r.AchievedPerSec, r.Errors, r.Unacked)
	if _, err := fmt.Fprintf(w, "  latency mean %s  p50 %s  p90 %s  p99 %s  p99.9 %s  max %s\n",
		ms(r.MeanNS), ms(r.P50NS), ms(r.P90NS), ms(r.P99NS), ms(r.P999NS), ms(r.MaxNS)); err != nil {
		return err
	}
	for i, e := range r.Exemplars {
		if i == 3 {
			break // worst three witnesses; the JSON carries the rest
		}
		if _, err := fmt.Fprintf(w, "  tail exemplar: %s %s key %d conn %d (scheduled at +%s)\n",
			ms(e.LatNS), e.Verb, e.Key, e.Conn, time.Duration(e.SchedNS)); err != nil {
			return err
		}
	}
	return nil
}
