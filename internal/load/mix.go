package load

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/xrand"
)

// Mix is an operation mix as integer weights. Zero-weight verbs are never
// issued; the zero Mix is invalid (no weight anywhere).
type Mix struct {
	Get  int
	Set  int
	Del  int
	Incr int
	Scan int
}

// DefaultMix is the read-mostly KV mix the Kyoto workloads model.
func DefaultMix() Mix { return Mix{Get: 80, Set: 15, Del: 3, Incr: 2} }

// total returns the weight sum.
func (m Mix) total() int { return m.Get + m.Set + m.Del + m.Incr + m.Scan }

// Validate rejects mixes with negative or all-zero weights.
func (m Mix) Validate() error {
	if m.Get < 0 || m.Set < 0 || m.Del < 0 || m.Incr < 0 || m.Scan < 0 {
		return fmt.Errorf("load: negative weight in mix %s", m)
	}
	if m.total() == 0 {
		return fmt.Errorf("load: mix has no weight")
	}
	return nil
}

// String renders the mix in ParseMix's format, omitting zero weights
// (stable verb order).
func (m Mix) String() string {
	parts := make([]string, 0, 5)
	for _, p := range []struct {
		name string
		w    int
	}{{"get", m.Get}, {"set", m.Set}, {"del", m.Del}, {"incr", m.Incr}, {"scan", m.Scan}} {
		if p.w != 0 {
			parts = append(parts, fmt.Sprintf("%s=%d", p.name, p.w))
		}
	}
	return strings.Join(parts, ",")
}

// ParseMix parses "get=80,set=15,del=3,incr=2" (any subset of
// get/set/del/incr/scan, each at most once, weights non-negative ints with
// at least one positive).
func ParseMix(s string) (Mix, error) {
	var m Mix
	seen := map[string]bool{}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, val, ok := strings.Cut(part, "=")
		if !ok {
			return Mix{}, fmt.Errorf("load: mix term %q is not name=weight", part)
		}
		name = strings.ToLower(strings.TrimSpace(name))
		w, err := strconv.Atoi(strings.TrimSpace(val))
		if err != nil || w < 0 {
			return Mix{}, fmt.Errorf("load: mix weight %q must be a non-negative integer", val)
		}
		if seen[name] {
			return Mix{}, fmt.Errorf("load: duplicate mix verb %q", name)
		}
		seen[name] = true
		switch name {
		case "get":
			m.Get = w
		case "set":
			m.Set = w
		case "del":
			m.Del = w
		case "incr":
			m.Incr = w
		case "scan":
			m.Scan = w
		default:
			known := []string{"del", "get", "incr", "scan", "set"}
			sort.Strings(known)
			return Mix{}, fmt.Errorf("load: unknown mix verb %q (known: %s)",
				name, strings.Join(known, " "))
		}
	}
	if err := m.Validate(); err != nil {
		return Mix{}, err
	}
	return m, nil
}

// mixVerb is the driver's internal verb choice (mapped to wire verbs by
// genOp, where SET may become PUT under -valsize).
type mixVerb uint8

const (
	mixGet mixVerb = iota
	mixSet
	mixDel
	mixIncr
	mixScan
)

// pick draws one verb from the mix with the given seeded generator.
func (m Mix) pick(rng *xrand.State) mixVerb {
	n := rng.Intn(m.total())
	if n < m.Get {
		return mixGet
	}
	n -= m.Get
	if n < m.Set {
		return mixSet
	}
	n -= m.Set
	if n < m.Del {
		return mixDel
	}
	n -= m.Del
	if n < m.Incr {
		return mixIncr
	}
	return mixScan
}
