package load

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/oracle"
	"repro/internal/server"
	"repro/internal/xrand"
)

// Clock abstracts time for the per-connection driver so the
// coordinated-omission accounting is testable with a virtual clock
// (docs/TESTING.md forbids time.Sleep in tests; the CO test advances a
// fake clock instead). Timestamps are nanoseconds since an arbitrary
// per-run epoch.
type Clock interface {
	Now() int64
	// SleepUntil blocks until Now() >= ns. Called with a scheduled send
	// time that may already be in the past (an overloaded open-loop
	// client), in which case it must return immediately — that is the
	// whole point of open-loop measurement: the schedule does not wait
	// for the server.
	SleepUntil(ns int64)
}

type realClock struct{ base time.Time }

// NewRealClock returns a wall Clock with epoch = now.
func NewRealClock() Clock { return &realClock{base: time.Now()} }

func (c *realClock) Now() int64 { return time.Since(c.base).Nanoseconds() }

func (c *realClock) SleepUntil(ns int64) {
	if d := ns - c.Now(); d > 0 {
		time.Sleep(time.Duration(d))
	}
}

// Transport carries one request/reply exchange. The TCP implementation
// talks alekv/1; tests substitute in-memory fakes with scripted service
// times.
type Transport interface {
	RoundTrip(req server.Request) (server.Reply, error)
	Close() error
}

// TransportFactory opens the transport for connection i.
type TransportFactory func(i int) (Transport, error)

type tcpTransport struct {
	c  net.Conn
	br *bufio.Reader
	bw *bufio.Writer
}

// DialTCP returns a factory producing alekv/1 TCP transports to addr.
func DialTCP(addr string) TransportFactory {
	return func(int) (Transport, error) {
		c, err := net.Dial("tcp", addr)
		if err != nil {
			return nil, err
		}
		return &tcpTransport{
			c:  c,
			br: bufio.NewReaderSize(c, 16<<10),
			bw: bufio.NewWriterSize(c, 16<<10),
		}, nil
	}
}

func (t *tcpTransport) RoundTrip(req server.Request) (server.Reply, error) {
	if err := server.WriteRequest(t.bw, req); err != nil {
		return server.Reply{}, err
	}
	if err := t.bw.Flush(); err != nil {
		return server.Reply{}, err
	}
	return server.ReadReply(t.br)
}

func (t *tcpTransport) Close() error { return t.c.Close() }

// Config parameterizes one load run.
type Config struct {
	// Addr is the server's KV address (ignored when Dial is set).
	Addr string
	// Conns is the number of client connections, each with its own
	// schedule, generator stream, and recorder.
	Conns int
	// RatePerSec is the total offered rate, split evenly across Conns.
	RatePerSec float64
	// Duration bounds the run: arrivals scheduled past it are not sent.
	// Zero means run until Stop closes (the drain tests' mode).
	Duration time.Duration
	// Warmup trims records whose *scheduled* time falls before it.
	Warmup time.Duration
	// Seed derives every per-connection stream; a fixed seed fixes the
	// whole workload byte-for-byte.
	Seed uint64
	// Keys is the keyspace size (keys are 1..Keys).
	Keys uint64
	// Mix is the verb mix (DefaultMix when zero).
	Mix Mix
	// ValSize, when > 0, turns the mix's SET share into PUT requests
	// carrying ValSize random octets (value-size realism on the wire; the
	// store holds the payload's FNV-1a hash).
	ValSize int
	// DisjointKeys partitions the keyspace across connections so each
	// connection's op tape is independently sequential — the drain tests'
	// oracle-replay mode.
	DisjointKeys bool
	// RecordTape captures every data op and its reply for oracle replay.
	RecordTape bool
	// Stop, when non-nil, ends the run early (checked between requests).
	Stop <-chan struct{}
	// NewClock overrides the per-connection clock (tests). Nil = wall.
	NewClock func(i int) Clock
	// Dial overrides the transport (tests). Nil = DialTCP(Addr).
	Dial TransportFactory
}

// Output is one load run's outcome.
type Output struct {
	Result Result
	// Tapes holds one op tape per connection when cfg.RecordTape is set.
	Tapes [][]oracle.KVOp
}

// connState is one connection's driver state.
type connState struct {
	rec     *Recorder
	tape    []oracle.KVOp
	errors  uint64
	unacked uint64
	lastNS  int64
	err     error
}

// Run drives cfg.Conns open-loop connections and aggregates their
// recorders. Per-connection transport failures mid-run (the expected
// outcome when the server drains under load) terminate that connection's
// stream without failing the run; failures to *open* a transport fail
// the run.
func Run(cfg Config) (Output, error) {
	if cfg.Conns < 1 {
		return Output{}, fmt.Errorf("load: Conns must be ≥ 1")
	}
	if cfg.RatePerSec <= 0 {
		return Output{}, fmt.Errorf("load: RatePerSec must be > 0")
	}
	if cfg.Keys == 0 {
		return Output{}, fmt.Errorf("load: Keys must be ≥ 1")
	}
	if cfg.Duration == 0 && cfg.Stop == nil {
		return Output{}, fmt.Errorf("load: need Duration or Stop")
	}
	mix := cfg.Mix
	if mix.total() == 0 {
		mix = DefaultMix()
	}
	if err := mix.Validate(); err != nil {
		return Output{}, err
	}
	dial := cfg.Dial
	if dial == nil {
		dial = DialTCP(cfg.Addr)
	}
	newClock := cfg.NewClock
	if newClock == nil {
		newClock = func(int) Clock { return NewRealClock() }
	}

	trs := make([]Transport, cfg.Conns)
	for i := range trs {
		tr, err := dial(i)
		if err != nil {
			for _, t := range trs[:i] {
				t.Close()
			}
			return Output{}, fmt.Errorf("load: conn %d: %w", i, err)
		}
		trs[i] = tr
	}

	states := make([]*connState, cfg.Conns)
	var wg sync.WaitGroup
	for i := 0; i < cfg.Conns; i++ {
		st := &connState{rec: NewRecorder(cfg.Warmup.Nanoseconds())}
		states[i] = st
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer trs[i].Close()
			runConn(cfg, mix, i, trs[i], newClock(i), st)
		}(i)
	}
	wg.Wait()

	out := Output{}
	agg := NewRecorder(cfg.Warmup.Nanoseconds())
	var errors, unacked uint64
	var lastNS int64
	for _, st := range states {
		agg.Merge(st.rec)
		errors += st.errors
		unacked += st.unacked
		if st.lastNS > lastNS {
			lastNS = st.lastNS
		}
		if cfg.RecordTape {
			out.Tapes = append(out.Tapes, st.tape)
		}
	}
	durNS := cfg.Duration.Nanoseconds()
	if durNS == 0 {
		durNS = lastNS
	}
	out.Result = buildResult(cfg, mix, agg, errors, unacked, durNS)
	return out, nil
}

// connKeyRange returns connection i's key range [base+1, base+span].
func connKeyRange(cfg Config, i int) (base, span uint64) {
	if !cfg.DisjointKeys {
		return 0, cfg.Keys
	}
	per := cfg.Keys / uint64(cfg.Conns)
	if per == 0 {
		per = 1
	}
	return uint64(i) * per, per
}

// runConn is one connection's open-loop driver: sleep to the scheduled
// arrival, send, and charge the reply against the *scheduled* time, so
// queueing delay the client would otherwise hide (coordinated omission)
// lands in the recorded latency.
func runConn(cfg Config, mix Mix, i int, tr Transport, clk Clock, st *connState) {
	sched := NewSchedule(cfg.RatePerSec/float64(cfg.Conns), cfg.Seed+uint64(i)*0x9e3779b97f4a7c15)
	rng := xrand.New(cfg.Seed ^ (uint64(i+1) * 0xbf58476d1ce4e5b9))
	base, span := connKeyRange(cfg, i)
	durNS := cfg.Duration.Nanoseconds()
	var payload []byte
	if cfg.ValSize > 0 {
		payload = make([]byte, cfg.ValSize)
	}

	for {
		if cfg.Stop != nil {
			select {
			case <-cfg.Stop:
				return
			default:
			}
		}
		schedNS := sched.Next()
		if durNS > 0 && schedNS > durNS {
			return
		}
		clk.SleepUntil(schedNS)

		req, kop, taped := genOp(rng, mix, base, span, payload)
		rep, err := tr.RoundTrip(req)
		if err != nil {
			// The server went away mid-exchange (drain). The cut-off op is
			// taped unacked so replay can prove it was never applied.
			if taped && cfg.RecordTape {
				st.tape = append(st.tape, kop)
			}
			st.unacked++
			st.err = err
			return
		}
		doneNS := clk.Now()
		st.lastNS = doneNS
		st.rec.RecordOp(schedNS, doneNS, req.Verb.String(), req.Key, i)
		if rep.IsErr() {
			st.errors++
			continue
		}
		if taped && cfg.RecordTape {
			kop.Acked = true
			kop.Val, kop.OK = replyToTape(kop.Kind, kop.Arg, rep)
			st.tape = append(st.tape, kop)
		}
	}
}

// genOp draws the next request from the mix. For data verbs it also
// returns the tape entry skeleton (Acked false until the reply lands);
// taped is false for SCAN, which mutates nothing and has no sequential
// reply to verify.
func genOp(rng *xrand.State, mix Mix, base, span uint64, payload []byte) (server.Request, oracle.KVOp, bool) {
	key := base + rng.Uint64n(span) + 1
	switch mix.pick(rng) {
	case mixGet:
		return server.Request{Verb: server.VerbGet, Key: key},
			oracle.KVOp{Kind: oracle.KVGet, Key: key}, true
	case mixSet:
		if payload != nil {
			for j := range payload {
				payload[j] = byte(rng.Uint32())
			}
			h := server.FNVHash(payload)
			return server.Request{Verb: server.VerbPut, Key: key, Payload: payload},
				oracle.KVOp{Kind: oracle.KVSet, Key: key, Arg: h}, true
		}
		val := rng.Uint64()
		return server.Request{Verb: server.VerbSet, Key: key, Arg: val},
			oracle.KVOp{Kind: oracle.KVSet, Key: key, Arg: val}, true
	case mixDel:
		return server.Request{Verb: server.VerbDel, Key: key},
			oracle.KVOp{Kind: oracle.KVDel, Key: key}, true
	case mixIncr:
		delta := rng.Uint64n(100) + 1
		return server.Request{Verb: server.VerbIncr, Key: key, Arg: delta},
			oracle.KVOp{Kind: oracle.KVIncr, Key: key, Arg: delta}, true
	default: // mixScan
		return server.Request{Verb: server.VerbScan, Arg: server.DefaultScanLimit},
			oracle.KVOp{}, false
	}
}

// replyToTape maps a wire reply onto the oracle.KVOp reply fields, with
// the same meaning as oracle.KVModel.Apply's results.
func replyToTape(kind oracle.KVOpKind, arg uint64, rep server.Reply) (val uint64, ok bool) {
	switch kind {
	case oracle.KVGet:
		if rep.IsNil() {
			return 0, false
		}
		return rep.Val, true
	case oracle.KVSet:
		// "+OK" (SET) or ":hash" (PUT, hash == arg).
		return arg, true
	case oracle.KVDel:
		return rep.Val, rep.Val == 1
	case oracle.KVIncr:
		return rep.Val, true
	}
	return 0, false
}
