package load

import "repro/internal/stats"

// Recorder accumulates response latencies into the shared log-bucket
// histogram scheme (internal/stats — the same buckets the PR 5 timing
// layer records, so server-side and client-side distributions line up
// bucket for bucket).
//
// Coordinated-omission safety is the recorder's contract: Record takes the
// operation's *scheduled* send offset and its completion offset, and the
// recorded latency is their difference. An operation that left late
// because the connection was still busy with its predecessors therefore
// charges the server for the queueing delay it caused, instead of silently
// omitting it the way send-time accounting would.
//
// Operations scheduled before the warmup horizon are trimmed (counted in
// Trimmed, excluded from the distribution): connection setup, cold caches,
// and the adaptive policy's learning phase are not steady-state tail
// latency. A Recorder is single-goroutine; per-connection recorders merge
// after the run.
type Recorder struct {
	warmupNS int64
	buckets  [stats.NumLogBuckets]uint64
	count    uint64
	trimmed  uint64
	sumNS    int64
	maxNS    int64
}

// NewRecorder builds a recorder trimming operations scheduled before
// warmupNS.
func NewRecorder(warmupNS int64) *Recorder {
	return &Recorder{warmupNS: warmupNS}
}

// Record adds one completed operation: scheduled send offset and
// completion offset, both in nanoseconds from the run start. Negative
// latency (a completion clocked before its schedule, possible only with a
// coarse clock) clamps to zero.
func (r *Recorder) Record(schedNS, doneNS int64) {
	if schedNS < r.warmupNS {
		r.trimmed++
		return
	}
	lat := doneNS - schedNS
	if lat < 0 {
		lat = 0
	}
	r.buckets[stats.LogBucketOf(lat)]++
	r.count++
	r.sumNS += lat
	if lat > r.maxNS {
		r.maxNS = lat
	}
}

// Merge folds o into r (post-run aggregation of per-connection recorders).
func (r *Recorder) Merge(o *Recorder) {
	for i := range r.buckets {
		r.buckets[i] += o.buckets[i]
	}
	r.count += o.count
	r.trimmed += o.trimmed
	r.sumNS += o.sumNS
	if o.maxNS > r.maxNS {
		r.maxNS = o.maxNS
	}
}

// Count returns the number of recorded (post-warmup) operations.
func (r *Recorder) Count() uint64 { return r.count }

// Trimmed returns the number of warmup-trimmed operations.
func (r *Recorder) Trimmed() uint64 { return r.trimmed }

// MeanNS returns the mean recorded latency (exact, not bucket-derived).
func (r *Recorder) MeanNS() int64 {
	if r.count == 0 {
		return 0
	}
	return r.sumNS / int64(r.count)
}

// MaxNS returns the exact maximum recorded latency.
func (r *Recorder) MaxNS() int64 { return r.maxNS }

// Quantile returns a conservative upper bound on the q-quantile of the
// recorded latencies (bucket upper boundary; see
// stats.QuantileFromLogBuckets for the ≤2x error argument).
func (r *Recorder) Quantile(q float64) int64 {
	return stats.QuantileFromLogBuckets(r.buckets[:], q)
}

// Buckets returns a copy of the histogram counts (the JSON wire truth:
// percentiles are rederivable from these).
func (r *Recorder) Buckets() []uint64 {
	out := make([]uint64, len(r.buckets))
	copy(out, r.buckets[:])
	return out
}
