package load

import (
	"sort"

	"repro/internal/stats"
)

// Recorder accumulates response latencies into the shared log-bucket
// histogram scheme (internal/stats — the same buckets the PR 5 timing
// layer records, so server-side and client-side distributions line up
// bucket for bucket).
//
// Coordinated-omission safety is the recorder's contract: Record takes the
// operation's *scheduled* send offset and its completion offset, and the
// recorded latency is their difference. An operation that left late
// because the connection was still busy with its predecessors therefore
// charges the server for the queueing delay it caused, instead of silently
// omitting it the way send-time accounting would.
//
// Operations scheduled before the warmup horizon are trimmed (counted in
// Trimmed, excluded from the distribution): connection setup, cold caches,
// and the adaptive policy's learning phase are not steady-state tail
// latency. A Recorder is single-goroutine; per-connection recorders merge
// after the run.
type Recorder struct {
	warmupNS int64
	buckets  [stats.NumLogBuckets]uint64
	count    uint64
	trimmed  uint64
	sumNS    int64
	maxNS    int64
	// ex holds one witnessed operation per log bucket: the client-side
	// mirror of the server's tail exemplars (internal/obs.ExemplarTable).
	// The recorder is single-goroutine, so the slots are plain fields —
	// worst-latency-wins replacement, no atomics, no witness races. A slot
	// is empty while its Verb is "" (RecordOp always names a verb).
	ex [stats.NumLogBuckets]OpExemplar
}

// OpExemplar is one witnessed client operation in a latency bucket: which
// verb, on which key, from which connection, scheduled when. Together with
// the server's request-id exemplars it closes the P99.9-causality loop —
// the client names the op that suffered the tail, the server names the
// granule and abort path that caused it.
type OpExemplar struct {
	Bucket  int    `json:"bucket"`
	UpperNS int64  `json:"upper_ns"`
	LatNS   int64  `json:"lat_ns"`
	SchedNS int64  `json:"sched_ns"`
	Verb    string `json:"verb"`
	Key     uint64 `json:"key,omitempty"`
	Conn    int    `json:"conn"`
}

// NewRecorder builds a recorder trimming operations scheduled before
// warmupNS.
func NewRecorder(warmupNS int64) *Recorder {
	return &Recorder{warmupNS: warmupNS}
}

// Record adds one completed operation: scheduled send offset and
// completion offset, both in nanoseconds from the run start. Negative
// latency (a completion clocked before its schedule, possible only with a
// coarse clock) clamps to zero.
func (r *Recorder) Record(schedNS, doneNS int64) {
	r.record(schedNS, doneNS)
}

// RecordOp is Record plus exemplar attribution: the operation's identity
// is witnessed in its latency bucket, the slot keeping the worst-latency
// op seen so far (ties keep the earlier witness).
func (r *Recorder) RecordOp(schedNS, doneNS int64, verb string, key uint64, conn int) {
	lat, b, ok := r.record(schedNS, doneNS)
	if !ok {
		return
	}
	if s := &r.ex[b]; s.Verb == "" || lat > s.LatNS {
		*s = OpExemplar{
			Bucket:  b,
			UpperNS: stats.LogBucketUpper(b),
			LatNS:   lat,
			SchedNS: schedNS,
			Verb:    verb,
			Key:     key,
			Conn:    conn,
		}
	}
}

// record is the shared accounting: returns the recorded latency and its
// bucket, or ok=false for a warmup-trimmed op.
func (r *Recorder) record(schedNS, doneNS int64) (lat int64, bucket int, ok bool) {
	if schedNS < r.warmupNS {
		r.trimmed++
		return 0, 0, false
	}
	lat = doneNS - schedNS
	if lat < 0 {
		lat = 0
	}
	bucket = stats.LogBucketOf(lat)
	r.buckets[bucket]++
	r.count++
	r.sumNS += lat
	if lat > r.maxNS {
		r.maxNS = lat
	}
	return lat, bucket, true
}

// Merge folds o into r (post-run aggregation of per-connection recorders).
func (r *Recorder) Merge(o *Recorder) {
	for i := range r.buckets {
		r.buckets[i] += o.buckets[i]
	}
	r.count += o.count
	r.trimmed += o.trimmed
	r.sumNS += o.sumNS
	if o.maxNS > r.maxNS {
		r.maxNS = o.maxNS
	}
	for i := range r.ex {
		if o.ex[i].Verb != "" && (r.ex[i].Verb == "" || o.ex[i].LatNS > r.ex[i].LatNS) {
			r.ex[i] = o.ex[i]
		}
	}
}

// Exemplars returns the populated bucket witnesses, worst latency first.
func (r *Recorder) Exemplars() []OpExemplar {
	var out []OpExemplar
	for i := range r.ex {
		if r.ex[i].Verb != "" {
			out = append(out, r.ex[i])
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].LatNS > out[j].LatNS })
	return out
}

// TopExemplars returns at most k witnesses, worst latency first.
func (r *Recorder) TopExemplars(k int) []OpExemplar {
	out := r.Exemplars()
	if len(out) > k {
		out = out[:k]
	}
	return out
}

// Count returns the number of recorded (post-warmup) operations.
func (r *Recorder) Count() uint64 { return r.count }

// Trimmed returns the number of warmup-trimmed operations.
func (r *Recorder) Trimmed() uint64 { return r.trimmed }

// MeanNS returns the mean recorded latency (exact, not bucket-derived).
func (r *Recorder) MeanNS() int64 {
	if r.count == 0 {
		return 0
	}
	return r.sumNS / int64(r.count)
}

// MaxNS returns the exact maximum recorded latency.
func (r *Recorder) MaxNS() int64 { return r.maxNS }

// Quantile returns a conservative upper bound on the q-quantile of the
// recorded latencies (bucket upper boundary; see
// stats.QuantileFromLogBuckets for the ≤2x error argument).
func (r *Recorder) Quantile(q float64) int64 {
	return stats.QuantileFromLogBuckets(r.buckets[:], q)
}

// Buckets returns a copy of the histogram counts (the JSON wire truth:
// percentiles are rederivable from these).
func (r *Recorder) Buckets() []uint64 {
	out := make([]uint64, len(r.buckets))
	copy(out, r.buckets[:])
	return out
}
