package load

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/oracle"
	"repro/internal/server"
)

// fakeClock is a single-goroutine virtual clock: SleepUntil jumps time
// forward, the transport charges service time by advancing it. No real
// time passes anywhere in these tests (docs/TESTING.md).
type fakeClock struct{ now int64 }

func (c *fakeClock) Now() int64 { return c.now }

func (c *fakeClock) SleepUntil(ns int64) {
	if ns > c.now {
		c.now = ns
	}
}

// fakeTransport models a server with a fixed per-request service time on
// the shared virtual clock, keeping a sequential KV map so replies are
// semantically right for tape tests.
type fakeTransport struct {
	clk       *fakeClock
	serviceNS int64
	m         map[uint64]uint64
	reqs      []server.Request
	failAfter int // fail the n-th and later RoundTrips (0 = never)
	n         int
}

func (tr *fakeTransport) RoundTrip(req server.Request) (server.Reply, error) {
	tr.n++
	if tr.failAfter > 0 && tr.n >= tr.failAfter {
		return server.Reply{}, fmt.Errorf("fake: connection drained")
	}
	cp := req
	cp.Payload = append([]byte(nil), req.Payload...)
	tr.reqs = append(tr.reqs, cp)
	tr.clk.now += tr.serviceNS
	switch req.Verb {
	case server.VerbGet:
		if v, ok := tr.m[req.Key]; ok {
			return server.Reply{Kind: ':', Val: v}, nil
		}
		return server.Reply{Kind: '_'}, nil
	case server.VerbSet:
		tr.m[req.Key] = req.Arg
		return server.Reply{Kind: '+', Str: "OK"}, nil
	case server.VerbPut:
		h := server.FNVHash(req.Payload)
		tr.m[req.Key] = h
		return server.Reply{Kind: ':', Val: h}, nil
	case server.VerbDel:
		if _, ok := tr.m[req.Key]; ok {
			delete(tr.m, req.Key)
			return server.Reply{Kind: ':', Val: 1}, nil
		}
		return server.Reply{Kind: ':', Val: 0}, nil
	case server.VerbIncr:
		v := tr.m[req.Key] + req.Arg
		tr.m[req.Key] = v
		return server.Reply{Kind: ':', Val: v}, nil
	default: // SCAN
		return server.Reply{Kind: '*'}, nil
	}
}

func (tr *fakeTransport) Close() error { return nil }

// fastRun runs one virtual-clock connection and returns the output and
// its transport.
func fastRun(t *testing.T, cfg Config, serviceNS int64, failAfter int) (Output, *fakeTransport) {
	t.Helper()
	clk := &fakeClock{}
	tr := &fakeTransport{clk: clk, serviceNS: serviceNS, m: map[uint64]uint64{}, failAfter: failAfter}
	cfg.Conns = 1
	cfg.NewClock = func(int) Clock { return clk }
	cfg.Dial = func(int) (Transport, error) { return tr, nil }
	out, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return out, tr
}

// TestCoordinatedOmissionAccounting is the pinned CO test: a server whose
// service time (10ms) exceeds the arrival gap (1ms) makes the open-loop
// client fall ever further behind schedule. Send-time accounting would
// report ~10ms per op; scheduled-time accounting must show the queueing
// delay growing toward (service - gap) × n. All on a virtual clock — the
// numbers below are exact properties of the deterministic simulation, not
// timing assertions.
func TestCoordinatedOmissionAccounting(t *testing.T) {
	const (
		gapNS     = int64(1e6) // 1000 ops/sec offered
		serviceNS = int64(1e7) // 10ms per op — 10x oversubscribed
		durNS     = int64(1e9) // 1s of schedule → ~1000 arrivals
	)
	out, _ := fastRun(t, Config{
		RatePerSec: 1e9 / float64(gapNS),
		Duration:   time.Duration(durNS),
		Seed:       3,
		Keys:       64,
	}, serviceNS, 0)
	r := out.Result

	if r.Count < 900 || r.Count > 1100 {
		t.Fatalf("recorded %d ops, want ≈1000", r.Count)
	}
	// The last op's queueing delay is ≈ (service-gap) × count ≈ 9s. The
	// mean of a linear ramp is half the max. Everything dwarfs the 10ms
	// service time — the signature CO hides.
	if r.MaxNS < int64(float64(serviceNS-gapNS)*float64(r.Count)*0.8) {
		t.Fatalf("max latency %v too small for a 10x-oversubscribed open loop", time.Duration(r.MaxNS))
	}
	if r.MeanNS < 100*serviceNS {
		t.Fatalf("mean latency %v does not reflect queueing (service %v)",
			time.Duration(r.MeanNS), time.Duration(serviceNS))
	}
	if r.P99NS < r.P50NS || r.P50NS < 50*serviceNS {
		t.Fatalf("quantiles p50=%v p99=%v do not show the queue ramp",
			time.Duration(r.P50NS), time.Duration(r.P99NS))
	}
	// A closed-loop (send-time) accounting of the same run would have seen
	// exactly serviceNS per op; make the contrast explicit.
	if r.MeanNS <= serviceNS {
		t.Fatal("scheduled-time accounting collapsed to send-time accounting")
	}
}

// TestOpenLoopKeepsUp is the control: a server faster than the arrival
// gap leaves latency at exactly the service time — scheduled-time and
// send-time accounting agree when nothing queues.
func TestOpenLoopKeepsUp(t *testing.T) {
	const (
		serviceNS = int64(1e5) // 0.1ms
	)
	out, _ := fastRun(t, Config{
		RatePerSec: 1000, // 1ms gaps, 10x headroom
		Duration:   time.Second,
		Seed:       3,
		Keys:       64,
	}, serviceNS, 0)
	r := out.Result
	// Poisson bursts still queue a little (gaps shorter than the service
	// time occur ~10% of the time), but nothing ramps: the whole
	// distribution stays within a few service times instead of growing
	// with the op count as in the oversubscribed test above.
	if r.MeanNS < serviceNS || r.MeanNS > 3*serviceNS {
		t.Fatalf("mean latency %d outside [1x, 3x] service time %d", r.MeanNS, serviceNS)
	}
	if r.MaxNS < serviceNS || r.MaxNS > 30*serviceNS {
		t.Fatalf("max latency %d outside [1x, 30x] service time %d", r.MaxNS, serviceNS)
	}
	if r.Count == 0 || r.Unacked != 0 || r.Errors != 0 {
		t.Fatalf("count=%d unacked=%d errors=%d", r.Count, r.Unacked, r.Errors)
	}
}

// TestWorkloadDeterministic runs the same seeded config twice against
// fresh fakes and requires the identical request stream byte-for-byte —
// the property that makes a failing soak reproducible from its seed.
func TestWorkloadDeterministic(t *testing.T) {
	cfg := Config{
		RatePerSec: 2000,
		Duration:   500 * time.Millisecond,
		Seed:       77,
		Keys:       128,
		ValSize:    32,
		Mix:        Mix{Get: 40, Set: 40, Del: 10, Incr: 5, Scan: 5},
	}
	_, tr1 := fastRun(t, cfg, 1000, 0)
	_, tr2 := fastRun(t, cfg, 1000, 0)
	if len(tr1.reqs) == 0 {
		t.Fatal("no requests issued")
	}
	if len(tr1.reqs) != len(tr2.reqs) {
		t.Fatalf("request counts diverged: %d vs %d", len(tr1.reqs), len(tr2.reqs))
	}
	for i := range tr1.reqs {
		a, b := tr1.reqs[i], tr2.reqs[i]
		if a.Verb != b.Verb || a.Key != b.Key || a.Arg != b.Arg || string(a.Payload) != string(b.Payload) {
			t.Fatalf("request %d diverged: %+v vs %+v", i, a, b)
		}
	}
}

// TestRunAttachesExemplars drives a seeded virtual-clock run and checks
// the result carries bucket witnesses whose identities are plausible ops
// from that run — the wiring from runConn through the per-connection
// recorders and the merge.
func TestRunAttachesExemplars(t *testing.T) {
	cfg := Config{
		RatePerSec: 2000,
		Duration:   500 * time.Millisecond,
		Seed:       21,
		Keys:       64,
		Mix:        Mix{Get: 50, Set: 30, Del: 10, Incr: 10},
	}
	out, _ := fastRun(t, cfg, 1e5, 0)
	r := out.Result
	if len(r.Exemplars) == 0 {
		t.Fatal("run recorded ops but attached no exemplars")
	}
	if r.Exemplars[0].LatNS != r.MaxNS {
		t.Errorf("worst witness %d ≠ max latency %d — the max op escaped witnessing",
			r.Exemplars[0].LatNS, r.MaxNS)
	}
	for _, e := range r.Exemplars {
		switch e.Verb {
		case "GET", "SET", "DEL", "INCR":
		default:
			t.Errorf("witness names verb %q, not in the run's mix", e.Verb)
		}
		if e.Key == 0 || e.Key > cfg.Keys {
			t.Errorf("witness key %d outside keyspace 1..%d", e.Key, cfg.Keys)
		}
		if e.Conn != 0 {
			t.Errorf("witness conn %d in a 1-conn run", e.Conn)
		}
	}
	// Determinism: the same seed reproduces the same witnesses.
	out2, _ := fastRun(t, cfg, 1e5, 0)
	if len(out2.Result.Exemplars) != len(r.Exemplars) {
		t.Fatalf("witness count diverged across identical runs: %d vs %d",
			len(out2.Result.Exemplars), len(r.Exemplars))
	}
	for i, e := range r.Exemplars {
		if out2.Result.Exemplars[i] != e {
			t.Errorf("witness %d diverged: %+v vs %+v", i, e, out2.Result.Exemplars[i])
		}
	}
}

// TestTapeRecordsRepliesAndUnacked checks the tape layer end to end on
// fakes: taped replies match a sequential replay, and a transport cut off
// mid-run leaves exactly one trailing unacked op.
func TestTapeRecordsRepliesAndUnacked(t *testing.T) {
	out, _ := fastRun(t, Config{
		RatePerSec: 2000,
		Duration:   time.Second,
		Seed:       11,
		Keys:       32,
		Mix:        Mix{Get: 50, Set: 30, Del: 10, Incr: 10},
		RecordTape: true,
	}, 1000, 500) // fail from the 500th round trip
	r := out.Result
	if r.Unacked != 1 {
		t.Fatalf("unacked = %d, want exactly 1 (strict request/reply)", r.Unacked)
	}
	if len(out.Tapes) != 1 {
		t.Fatalf("tapes = %d, want 1", len(out.Tapes))
	}
	tape := out.Tapes[0]
	if len(tape) == 0 {
		t.Fatal("empty tape")
	}
	if tape[len(tape)-1].Acked {
		t.Fatal("cut-off op not taped as unacked")
	}
	acked := 0
	for _, op := range tape[:len(tape)-1] {
		if !op.Acked {
			t.Fatalf("non-final unacked op: %+v", op)
		}
		acked++
	}
	if acked == 0 {
		t.Fatal("no acked ops before the cut")
	}
	// The taped replies must replay cleanly against the sequential model
	// (the fake transport is itself a sequential map, so any divergence is
	// a bug in the tape/reply mapping).
	if idx, msg := oracle.ReplayKVTape(oracle.NewKVModel(), tape); idx >= 0 {
		t.Fatalf("tape diverged at op %d: %s (%+v)", idx, msg, tape[idx])
	}
}
