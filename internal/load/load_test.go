package load

import (
	"math"
	"strings"
	"testing"

	"repro/internal/stats"
	"repro/internal/xrand"
)

// TestScheduleDeterministic pins the schedule's contract: same (rate,
// seed) → the identical arrival stream bit-for-bit; different seeds →
// different streams; arrivals strictly increase.
func TestScheduleDeterministic(t *testing.T) {
	const n = 100_000
	a := NewSchedule(5000, 7)
	b := NewSchedule(5000, 7)
	c := NewSchedule(5000, 8)
	var prev int64 = -1
	diverged := false
	for i := 0; i < n; i++ {
		av, bv, cv := a.Next(), b.Next(), c.Next()
		if av != bv {
			t.Fatalf("arrival %d: same seed diverged: %d vs %d", i, av, bv)
		}
		if av != cv {
			diverged = true
		}
		if av <= prev {
			t.Fatalf("arrival %d: not strictly increasing (%d after %d)", i, av, prev)
		}
		prev = av
	}
	if !diverged {
		t.Fatal("seeds 7 and 8 produced identical schedules")
	}
}

// TestScheduleMeanInterArrival checks the empirical mean gap against
// 1/rate with a 5-sigma confidence bound: for exponential gaps the
// standard error of the mean over n samples is (1/rate)/sqrt(n).
func TestScheduleMeanInterArrival(t *testing.T) {
	const (
		rate = 10_000.0 // ops/sec → mean gap 100µs
		n    = 200_000
	)
	s := NewSchedule(rate, 1234)
	last := s.Next()
	var sum float64
	for i := 1; i < n; i++ {
		next := s.Next()
		sum += float64(next - last)
		last = next
	}
	meanNS := sum / float64(n-1)
	wantNS := 1e9 / rate
	sigma := wantNS / math.Sqrt(float64(n-1))
	if d := math.Abs(meanNS - wantNS); d > 5*sigma {
		t.Fatalf("mean gap %.1fns, want %.1fns ± %.1fns (5σ)", meanNS, wantNS, 5*sigma)
	}
}

// TestScheduleDistribution checks the exponential shape, not just the
// mean: the fraction of gaps beyond k mean gaps must track e^-k.
func TestScheduleDistribution(t *testing.T) {
	const (
		rate = 1000.0
		n    = 200_000
	)
	s := NewSchedule(rate, 99)
	meanGap := 1e9 / rate
	last := int64(0)
	beyond1, beyond3 := 0, 0
	for i := 0; i < n; i++ {
		next := s.Next()
		gap := float64(next - last)
		last = next
		if gap > meanGap {
			beyond1++
		}
		if gap > 3*meanGap {
			beyond3++
		}
	}
	if f := float64(beyond1) / n; math.Abs(f-math.Exp(-1)) > 0.01 {
		t.Fatalf("P(gap > mean) = %.4f, want e^-1 = %.4f ± 0.01", f, math.Exp(-1))
	}
	if f := float64(beyond3) / n; math.Abs(f-math.Exp(-3)) > 0.005 {
		t.Fatalf("P(gap > 3·mean) = %.4f, want e^-3 = %.4f ± 0.005", f, math.Exp(-3))
	}
}

func TestRecorderWarmupAndMerge(t *testing.T) {
	a := NewRecorder(1000)
	a.Record(500, 600)   // scheduled pre-warmup → trimmed
	a.Record(1000, 1100) // 100ns
	a.Record(2000, 2400) // 400ns
	b := NewRecorder(1000)
	b.Record(3000, 3900)  // 900ns
	b.Record(4000, 3500)  // negative → clamps to 0
	b.Record(999, 10_000) // trimmed (scheduled time governs, not done)

	a.Merge(b)
	if a.Count() != 4 || a.Trimmed() != 2 {
		t.Fatalf("count=%d trimmed=%d, want 4, 2", a.Count(), a.Trimmed())
	}
	if a.MaxNS() != 900 {
		t.Fatalf("max=%d, want 900", a.MaxNS())
	}
	if got, want := a.MeanNS(), int64((100+400+900+0)/4); got != want {
		t.Fatalf("mean=%d, want %d", got, want)
	}
	// The quantile is the log-bucket upper bound of the right sample.
	if got, want := a.Quantile(1.0), stats.LogBucketUpper(stats.LogBucketOf(900)); got != want {
		t.Fatalf("p100=%d, want bucket bound %d", got, want)
	}
}

// TestRecorderOpExemplars pins the client-side witness contract: each
// populated latency bucket holds the worst op seen there (ties keep the
// earlier witness), warmup-trimmed ops leave no witness, Merge keeps the
// worse of two buckets' witnesses, and Exemplars() sorts worst-first.
func TestRecorderOpExemplars(t *testing.T) {
	a := NewRecorder(1000)
	a.RecordOp(500, 600, "GET", 1, 0) // pre-warmup → trimmed, no witness
	if got := a.Exemplars(); len(got) != 0 {
		t.Fatalf("trimmed op left a witness: %+v", got)
	}
	a.RecordOp(1000, 1100, "GET", 7, 0)  // 100ns → bucket [64,128)
	a.RecordOp(2000, 2120, "SET", 8, 0)  // 120ns, same bucket, worse → replaces
	a.RecordOp(3000, 3120, "DEL", 9, 0)  // 120ns tie → earlier witness kept
	a.RecordOp(4000, 4900, "INCR", 2, 0) // 900ns → bucket [512,1024)
	if stats.LogBucketOf(100) != stats.LogBucketOf(120) ||
		stats.LogBucketOf(120) == stats.LogBucketOf(900) {
		t.Fatal("test latencies no longer straddle buckets as intended")
	}

	got := a.Exemplars()
	if len(got) != 2 {
		t.Fatalf("exemplars = %+v, want 2 buckets witnessed", got)
	}
	// Worst first: the 900ns INCR, then the 120ns SET (not the tying DEL).
	if got[0].Verb != "INCR" || got[0].LatNS != 900 || got[0].Key != 2 {
		t.Errorf("worst witness = %+v, want the 900ns INCR on key 2", got[0])
	}
	if got[1].Verb != "SET" || got[1].LatNS != 120 || got[1].SchedNS != 2000 {
		t.Errorf("second witness = %+v, want the first 120ns SET (tie keeps earlier)", got[1])
	}
	for _, e := range got {
		if e.UpperNS != stats.LogBucketUpper(e.Bucket) || stats.LogBucketOf(e.LatNS) != e.Bucket {
			t.Errorf("witness bucket geometry inconsistent: %+v", e)
		}
	}
	if top := a.TopExemplars(1); len(top) != 1 || top[0].Verb != "INCR" {
		t.Errorf("TopExemplars(1) = %+v, want just the INCR", top)
	}

	// Merge keeps the worse witness per bucket, fills empty buckets from
	// the other side, and never resurrects an empty slot.
	b := NewRecorder(1000)
	b.RecordOp(5000, 5110, "SCAN", 0, 1) // 110ns — loses to a's 120ns SET
	b.RecordOp(6000, 8000, "PUT", 3, 1)  // 2000ns → a new bucket
	a.Merge(b)
	got = a.Exemplars()
	if len(got) != 3 {
		t.Fatalf("post-merge exemplars = %+v, want 3 buckets", got)
	}
	if got[0].Verb != "PUT" || got[0].Conn != 1 {
		t.Errorf("merged-in witness = %+v, want the 2000ns PUT from conn 1", got[0])
	}
	if got[2].Verb != "SET" {
		t.Errorf("losing merge overwrote a worse witness: %+v", got[2])
	}
}

func TestMixParseAndPick(t *testing.T) {
	m, err := ParseMix("get=50,set=30,del=10,incr=5,scan=5")
	if err != nil {
		t.Fatal(err)
	}
	if m.Get != 50 || m.Set != 30 || m.Del != 10 || m.Incr != 5 || m.Scan != 5 {
		t.Fatalf("parsed %+v", m)
	}
	if _, err := ParseMix("bogus=1"); err == nil {
		t.Fatal("unknown verb accepted")
	}
	if _, err := ParseMix("get=-5,set=105"); err == nil {
		t.Fatal("negative weight accepted")
	}
	if _, err := ParseMix("get=0,set=0"); err == nil {
		t.Fatal("all-zero mix accepted")
	}
	if _, err := ParseMix("get=1,get=2"); err == nil {
		t.Fatal("duplicate verb accepted")
	}

	// Seeded pick must hit every verb roughly proportionally.
	rng := xrand.New(5)
	var counts [5]int
	const n = 100_000
	for i := 0; i < n; i++ {
		counts[m.pick(rng)]++
	}
	want := [5]float64{0.50, 0.30, 0.10, 0.05, 0.05}
	for v, c := range counts {
		f := float64(c) / n
		if math.Abs(f-want[v]) > 0.01 {
			t.Fatalf("verb %d frequency %.4f, want %.2f ± 0.01", v, f, want[v])
		}
	}
}

func TestResultRoundTrip(t *testing.T) {
	rec := NewRecorder(0)
	rec.RecordOp(0, 1500, "GET", 11, 0)
	rec.RecordOp(10, 2510, "SET", 12, 1)
	r := buildResult(Config{Conns: 2, RatePerSec: 100, Seed: 9, Keys: 64}, DefaultMix(), rec, 1, 2, 1e9)
	var buf testBuffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ParseResult(buf.b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Count != 2 || got.Errors != 1 || got.Unacked != 2 || got.Seed != 9 {
		t.Fatalf("round-trip lost fields: %+v", got)
	}
	if got.P50NS != r.P50NS || len(got.Buckets) != stats.NumLogBuckets {
		t.Fatalf("round-trip lost histogram: %+v", got)
	}
	if len(got.Exemplars) != 2 || got.Exemplars[0].Verb != "SET" || got.Exemplars[0].Key != 12 {
		t.Fatalf("round-trip lost exemplars: %+v", got.Exemplars)
	}

	// The table view prints the worst witnesses so an operator sees them
	// without opening the JSON.
	var tbl testBuffer
	if err := got.WriteTable(&tbl); err != nil {
		t.Fatal(err)
	}
	if s := string(tbl.b); !strings.Contains(s, "tail exemplar") ||
		!strings.Contains(s, "SET key 12 conn 1") {
		t.Errorf("table omits the tail witness:\n%s", s)
	}

	// Pre-exemplar result files stay byte-compatible: no witnesses → no
	// "exemplars" key at all.
	bare := buildResult(Config{Conns: 1, RatePerSec: 1, Keys: 1}, DefaultMix(), NewRecorder(0), 0, 0, 1e9)
	buf = testBuffer{}
	if err := bare.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(buf.b), "exemplars") {
		t.Errorf("empty result serialized an exemplars key:\n%s", buf.b)
	}

	if _, err := ParseResult([]byte(`{"schema":"ale-snapshot/v1"}`)); err != ErrNotLoadSchema {
		t.Fatalf("foreign schema: err = %v, want ErrNotLoadSchema", err)
	}
	if _, err := ParseResult([]byte(`not json`)); err != ErrNotLoadSchema {
		t.Fatalf("non-JSON: err = %v, want ErrNotLoadSchema", err)
	}
}

type testBuffer struct{ b []byte }

func (t *testBuffer) Write(p []byte) (int, error) {
	t.b = append(t.b, p...)
	return len(p), nil
}
