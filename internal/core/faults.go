package core

// FaultHooks is the engine-level fault-injection hook set, the companion
// of tm.Injector one layer up: where the tm hooks force hardware-
// transaction aborts, these force the failure modes that live in the ALE
// engine itself — SWOpt validation failures, stretched conflicting
// regions, stretched lock holds. internal/faultinject implements both
// interfaces with one scripted, deterministic injector.
//
// Like every injected fault in this codebase, these are sound: a Validate
// returning false, a slow EndConflicting, or a long lock hold are all
// legal executions, so injection can only force retries, deferrals, and
// convoys — never incorrect results. The stress harness (internal/oracle)
// relies on that to cross-check results against a sequential oracle while
// faults fire.
//
// Zero-cost contract: with Options.Faults nil (the default), each hook
// site costs one nil check, the same pattern as Options.InvariantMode.
// Implementations must be safe for concurrent use.
type FaultHooks interface {
	// ForceValidateFail is consulted by ConflictMarker.ValidateIn (and
	// therefore ec.Validate); returning true makes the validation report
	// failure regardless of the marker's actual version, driving SWOpt
	// retry storms and nested-mutation invalidation paths.
	ForceValidateFail() bool

	// StretchConflicting is invoked inside EndConflicting, before the
	// closing marker bump: the conflicting region stays observable (odd
	// version in Lock mode, open transaction in HTM mode) for the
	// duration of the call, widening the window concurrent SWOpt
	// executions must detect.
	StretchConflicting()

	// StretchLockHold is invoked while the lock is held in a Lock-mode
	// execution, before the body runs: it lengthens the critical section,
	// manufacturing the lock convoys and AbortLockHeld pressure the
	// paper's discount accounting exists for.
	StretchLockHold()
}
