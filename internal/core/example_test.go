package core_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/locks"
	"repro/internal/tm"
)

// ExampleLock_Execute shows the minimal ALE integration: one lock, one
// critical section, three possible execution modes.
func ExampleLock_Execute() {
	dom := tm.NewDomain(tm.Profile{Name: "demo", Enabled: true, ReadCap: 512, WriteCap: 128})
	rt := core.NewRuntime(dom)
	lock := rt.NewLock("counterLock", locks.NewTATAS(dom), core.NewStatic(10, 0))
	counter := dom.NewVar(0)

	cs := &core.CS{
		Scope: core.NewScope("counter.inc"),
		Body: func(ec *core.ExecCtx) error {
			ec.Store(counter, ec.Load(counter)+1)
			return nil
		},
	}
	thr := rt.NewThread()
	for i := 0; i < 1000; i++ {
		if err := lock.Execute(thr, cs); err != nil {
			fmt.Println("error:", err)
			return
		}
	}
	fmt.Println("counter =", counter.LoadDirect())
	// Output: counter = 1000
}

// ExampleConflictMarker shows the SWOpt pattern: a writer brackets its
// conflicting region, a reader validates around its optimistic reads.
func ExampleConflictMarker() {
	dom := tm.NewDomain(tm.Profile{Name: "demo", Enabled: false})
	rt := core.NewRuntime(dom)
	lock := rt.NewLock("pairLock", locks.NewTATAS(dom), core.NewStatic(0, 10))
	marker := lock.NewMarker()
	a, b := dom.NewVar(0), dom.NewVar(0)

	write := &core.CS{
		Scope:       core.NewScope("pair.write"),
		Conflicting: true,
		Body: func(ec *core.ExecCtx) error {
			n := ec.Load(a) + 1
			marker.BeginConflicting(ec)
			ec.Store(a, n)
			ec.Store(b, n)
			marker.EndConflicting(ec)
			return nil
		},
	}
	read := &core.CS{
		Scope:    core.NewScope("pair.read"),
		HasSWOpt: true,
		Body: func(ec *core.ExecCtx) error {
			if ec.InSWOpt() {
				v := marker.ReadStable()
				x, y := ec.Load(a), ec.Load(b)
				if !marker.Validate(v) {
					return ec.SWOptFail()
				}
				fmt.Printf("optimistic read: a=%d b=%d\n", x, y)
				return nil
			}
			fmt.Printf("exclusive read: a=%d b=%d\n", ec.Load(a), ec.Load(b))
			return nil
		},
	}
	thr := rt.NewThread()
	if err := lock.Execute(thr, write); err != nil {
		fmt.Println("error:", err)
	}
	if err := lock.Execute(thr, read); err != nil {
		fmt.Println("error:", err)
	}
	// Output: optimistic read: a=1 b=1
}

// ExampleThread_BeginScope shows context splitting: the same critical
// section reached through two call sites gets separate statistics.
func ExampleThread_BeginScope() {
	dom := tm.NewDomain(tm.Profile{Name: "demo", Enabled: false})
	rt := core.NewRuntime(dom)
	lock := rt.NewLock("L", locks.NewTATAS(dom), core.NewLockOnly())
	v := dom.NewVar(0)
	shared := &core.CS{
		Scope: core.NewScope("sharedCS"),
		Body: func(ec *core.ExecCtx) error {
			ec.Store(v, ec.Load(v)+1)
			return nil
		},
	}
	thr := rt.NewThread()
	siteA, siteB := core.NewScope("siteA"), core.NewScope("siteB")
	for i := 0; i < 3; i++ {
		thr.BeginScope(siteA)
		lock.Execute(thr, shared)
		thr.EndScope()
	}
	thr.BeginScope(siteB)
	lock.Execute(thr, shared)
	thr.EndScope()

	for _, g := range lock.Granules() {
		fmt.Printf("%s: %d executions\n", g.Label(), g.Execs())
	}
	// Output:
	// siteA/sharedCS: 3 executions
	// siteB/sharedCS: 1 executions
}
