package core

import (
	"testing"

	"repro/internal/tm"
)

// TestRelearnRestartsSchedule: after settling, Relearn must send the lock
// back through the phases — and the policy must settle again under the
// (possibly changed) workload, with correctness intact throughout.
func TestRelearnRestartsSchedule(t *testing.T) {
	rt := NewRuntime(tm.NewDomain(htmProfile()))
	pol := fastAdaptive()
	f := newPairFixture(rt, pol)
	drive(t, rt, f.lock, f.writeCS, 1200)
	if !pol.Settled() {
		t.Fatalf("not settled before Relearn; stage = %s", pol.StageName())
	}
	pol.Relearn(f.lock)
	if pol.Settled() {
		t.Fatal("still settled immediately after Relearn")
	}
	if got := pol.StageName(); got == "settled" {
		t.Errorf("stage after Relearn = %s", got)
	}
	// Drive again; must settle again and data must stay correct.
	drive(t, rt, f.lock, f.writeCS, 1200)
	if !pol.Settled() {
		t.Fatalf("did not re-settle; stage = %s", pol.StageName())
	}
	if got := f.a.LoadDirect(); got != 2400 {
		t.Errorf("a = %d, want 2400", got)
	}
}

// TestRelearnBeforeFirstUseIsNoop: calling Relearn on a policy that never
// planned must not panic.
func TestRelearnBeforeFirstUseIsNoop(t *testing.T) {
	rt := NewRuntime(tm.NewDomain(htmProfile()))
	pol := fastAdaptive()
	f := newPairFixture(rt, pol)
	pol.Relearn(f.lock) // no stages yet
	drive(t, rt, f.lock, f.writeCS, 10)
}
