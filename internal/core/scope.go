package core

import "sync/atomic"

// Scope is a static label for a region of code, the unit from which calling
// contexts are built. Every critical section carries one (the CS's own
// scope, mirroring how each BEGIN_CS macro expansion defines a scope in the
// paper), and programs may open additional scopes around call sites with
// Thread.BeginScope to split statistics for a shared critical section — the
// paper's BEGIN_SCOPE("foo.CS1") idiom for C++ scoped locking.
//
// Scopes are cheap, immutable, and safe to share across threads. Create
// them once (package or struct initialization), not per call.
type Scope struct {
	id    uint64
	label string
}

var scopeSeq atomic.Uint64

// NewScope creates a scope with a human-readable label used in reports.
func NewScope(label string) *Scope {
	return &Scope{id: scopeSeq.Add(1), label: label}
}

// Label returns the scope's report label.
func (s *Scope) Label() string { return s.label }

// contextHash folds a scope into a context hash (FNV-style mixing). The
// thread keeps a stack of these rolling hashes so popping a scope is O(1).
func contextHash(parent uint64, s *Scope) uint64 {
	h := parent ^ (s.id + 0x9e3779b97f4a7c15)
	h *= 0x100000001b3
	h ^= h >> 29
	return h
}
