// The granule contention profiler: turns the timing layer's per-granule
// wasted-time attribution (Options.Timing) into a ranked "where does
// blocked and discarded time go" report, in the spirit of lock-contention
// profilers — but attributed to the paper's (lock, context) granules and
// split by *why* the time was wasted (HTM abort reason, SWOpt validation
// failure, lock wait), with a per-granule estimate of whether elision is
// paying for itself.
package core

import (
	"fmt"
	"io"
	"sort"
	"time"

	"repro/internal/obs"
	"repro/internal/tm"
)

// GranuleProfile is one granule's contention profile. All durations are
// cumulative since the runtime started; everything is zero unless
// Options.Timing is on.
type GranuleProfile struct {
	Lock    string
	Context string
	Execs   uint64
	// ElisionPct is the percentage of executions completed without the
	// lock.
	ElisionPct float64
	// AbortWork is time burned in HTM attempts that aborted (begin-of-
	// attempt to abort, including the pre-attempt lock-free spin), with
	// AbortWorkBy splitting it by abort reason.
	AbortWork   time.Duration
	AbortWorkBy [tm.NumAbortReasons]time.Duration
	// SWOptRetry is time burned in SWOpt attempts that failed validation
	// or self-aborted.
	SWOptRetry time.Duration
	// LockWait is time between starting a Lock-mode attempt and holding
	// the lock (group deferral + acquisition wait).
	LockWait time.Duration
	// GroupWait is time deferring to retrying SWOpt groups. It is not a
	// separate component of Wasted — deferrals happen inside the windows
	// AbortWork and LockWait already measure — but profiles report it
	// separately because a granule dominated by GroupWait needs a
	// different fix (SWOpt path quality) than one dominated by raw
	// conflicts.
	GroupWait time.Duration
	// Wasted is the granule's total attributed waste:
	// AbortWork + SWOptRetry + LockWait. The ranking key.
	Wasted time.Duration
	// Hold is total time Lock-mode executions held the lock — the
	// serialization pressure this granule imposes on everyone else.
	Hold time.Duration
	// Payoff estimates elision's net benefit: elided executions times the
	// latency gap between the granule's mean Lock-mode execution and its
	// mean elided execution, minus Wasted. Negative means elision is
	// losing time; zero when no Lock-mode baseline was sampled yet.
	Payoff time.Duration
}

// profileOf assembles one granule's profile from its statistics.
func profileOf(g *Granule) GranuleProfile {
	p := GranuleProfile{
		Lock:       g.lock.name,
		Context:    g.label,
		Execs:      g.Execs(),
		SWOptRetry: g.WastedSWOptTime(),
		LockWait:   g.LockWaitTime(),
		GroupWait:  g.GroupWaitTime(),
		Hold:       g.HoldTime(),
	}
	for r := 0; r < tm.NumAbortReasons; r++ {
		d := g.wastedHTM[r].Sum()
		p.AbortWorkBy[r] = d
		p.AbortWork += d
	}
	p.Wasted = p.AbortWork + p.SWOptRetry + p.LockWait
	elided := g.Successes(ModeHTM) + g.Successes(ModeSWOpt)
	if p.Execs > 0 {
		// Successes are statistical counters while execs is exact, so the
		// raw ratio can overshoot; clamp to keep the report sane.
		p.ElisionPct = min(100*float64(elided)/float64(p.Execs), 100)
	}
	if meanLock := g.MeanTime(ModeLock); meanLock > 0 {
		var saved time.Duration
		for _, m := range []Mode{ModeHTM, ModeSWOpt} {
			if g.TimeSamples(m) > 0 {
				saved += time.Duration(g.Successes(m)) * (meanLock - g.MeanTime(m))
			}
		}
		p.Payoff = saved - p.Wasted
	}
	return p
}

// ContentionProfiles returns a profile for every granule in the runtime,
// sorted most-wasted first (ties broken by lock then context so the order
// is deterministic). Meaningful only when Options.Timing is on; otherwise
// every duration is zero.
func (rt *Runtime) ContentionProfiles() []GranuleProfile {
	var out []GranuleProfile
	for _, l := range rt.Locks() {
		for _, g := range l.Granules() {
			out = append(out, profileOf(g))
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Wasted != out[j].Wasted {
			return out[i].Wasted > out[j].Wasted
		}
		if out[i].Lock != out[j].Lock {
			return out[i].Lock < out[j].Lock
		}
		return out[i].Context < out[j].Context
	})
	return out
}

// contentionEntries adapts ContentionProfiles to the obs wire type; the
// runtime registers it as the collector's contention source when both
// Timing and Obs are configured (obs cannot import core, so the profile
// crosses the boundary as plain data, like the counter mirroring).
func (rt *Runtime) contentionEntries() []obs.ContentionEntry {
	profiles := rt.ContentionProfiles()
	out := make([]obs.ContentionEntry, len(profiles))
	for i, p := range profiles {
		out[i] = obs.ContentionEntry{
			Lock:         p.Lock,
			Context:      p.Context,
			Execs:        p.Execs,
			ElisionPct:   p.ElisionPct,
			AbortWorkNS:  p.AbortWork.Nanoseconds(),
			SWOptRetryNS: p.SWOptRetry.Nanoseconds(),
			LockWaitNS:   p.LockWait.Nanoseconds(),
			GroupWaitNS:  p.GroupWait.Nanoseconds(),
			WastedNS:     p.Wasted.Nanoseconds(),
			HoldNS:       p.Hold.Nanoseconds(),
			PayoffNS:     p.Payoff.Nanoseconds(),
		}
	}
	return out
}

// WriteContentionReport renders the top-N most contended granules as a
// table: where wasted time went and whether elision is paying off. topN
// <= 0 means all granules.
func (rt *Runtime) WriteContentionReport(w io.Writer, topN int) error {
	profiles := rt.ContentionProfiles()
	if topN > 0 && len(profiles) > topN {
		profiles = profiles[:topN]
	}
	if _, err := fmt.Fprintf(w, "Contention profile (top %d of %d granules by wasted time)\n",
		len(profiles), rt.granuleCount()); err != nil {
		return err
	}
	const hdr = "%-14s %-22s %10s %8s %12s %12s %12s %12s %12s %12s\n"
	const row = "%-14s %-22s %10d %7.1f%% %12s %12s %12s %12s %12s %12s\n"
	if _, err := fmt.Fprintf(w, hdr, "lock", "context", "execs", "elision",
		"abort-work", "swopt-retry", "lock-wait", "group-wait", "wasted", "payoff"); err != nil {
		return err
	}
	for _, p := range profiles {
		ctx := p.Context
		if ctx == "" {
			ctx = "(root)"
		}
		if _, err := fmt.Fprintf(w, row, p.Lock, ctx, p.Execs, p.ElisionPct,
			fmtDur(p.AbortWork), fmtDur(p.SWOptRetry), fmtDur(p.LockWait),
			fmtDur(p.GroupWait), fmtDur(p.Wasted), fmtDur(p.Payoff)); err != nil {
			return err
		}
	}
	return nil
}

func (rt *Runtime) granuleCount() int {
	n := 0
	for _, l := range rt.Locks() {
		n += len(l.Granules())
	}
	return n
}

// fmtDur renders a duration compactly for report tables (µs precision is
// noise at the scales profiled; sub-µs rounds to 0 intentionally only for
// zero values, others keep Go's default formatting).
func fmtDur(d time.Duration) string {
	if d == 0 {
		return "0"
	}
	return d.Round(time.Microsecond).String()
}
