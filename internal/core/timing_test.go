package core

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"repro/internal/locks"
	"repro/internal/obs"
	"repro/internal/tm"
)

// The timing layer under a virtual clock: every duration below is exact,
// because the clock only moves when the test body moves it — wall time,
// scheduler jitter and spin loops all contribute zero. This is the same
// virtual-clock technique the drift-detector tests use (docs/TESTING.md).

// timingHarness is a runtime with Timing on, a collector attached, and a
// body-driven virtual clock.
type timingHarness struct {
	rt  *Runtime
	c   *obs.Collector
	now int64
}

func newTimingHarness(profile tm.Profile) *timingHarness {
	h := &timingHarness{c: obs.New()}
	opts := DefaultOptions()
	opts.Obs = h.c
	opts.Timing = true
	opts.Clock = func() time.Time { return time.Unix(0, h.now) }
	h.rt = NewRuntimeOpts(tm.NewDomain(profile), opts)
	return h
}

func (h *timingHarness) advance(ns int64) { h.now += ns }

func TestTimingLockModeAttribution(t *testing.T) {
	h := newTimingHarness(htmProfile())
	l := h.rt.NewLock("L", locks.NewTATAS(h.rt.Domain()), NewLockOnly())
	cs := &CS{Scope: NewScope("s"), Body: func(ec *ExecCtx) error {
		h.advance(1000)
		return nil
	}}
	thr := h.rt.NewThread()
	const execs = 8
	for i := 0; i < execs; i++ {
		if err := l.Execute(thr, cs); err != nil {
			t.Fatal(err)
		}
	}

	s := h.c.Snapshot()
	if !s.HasTiming() {
		t.Fatal("snapshot has no timing data with Options.Timing on")
	}
	execDist := s.Lat[obs.HistExecLock]
	if got := execDist.Count(); got != execs {
		t.Errorf("exec_lock count = %d, want %d", got, execs)
	}
	if got := execDist.SumNS; got != execs*1000 {
		t.Errorf("exec_lock sum = %dns, want %d", got, execs*1000)
	}
	hold := s.Lat[obs.HistLockHold]
	if got := hold.SumNS; got != execs*1000 {
		t.Errorf("lock_hold sum = %dns, want %d (acquisition to release is the whole body)", got, execs*1000)
	}
	// Uncontended: the winning attempt starts at Execute entry, so
	// attempt-to-success waste is exactly zero.
	if got := s.Lat[obs.HistAttemptWaste].SumNS; got != 0 {
		t.Errorf("attempt_to_success sum = %dns, want 0 for uncontended executions", got)
	}

	g := l.Granules()[0]
	if got := g.HoldTime(); got != execs*1000 {
		t.Errorf("granule hold time = %v, want %dns", got, execs*1000)
	}
	if got := g.LockWaitTime(); got != 0 {
		t.Errorf("granule lock wait = %v, want 0 uncontended", got)
	}
}

func TestTimingSWOptRetryAttribution(t *testing.T) {
	h := newTimingHarness(noHTMProfile())
	l := h.rt.NewLock("L", locks.NewTATAS(h.rt.Domain()), NewStatic(0, 3))
	attempt := 0
	cs := &CS{Scope: NewScope("s"), HasSWOpt: true, Body: func(ec *ExecCtx) error {
		attempt++
		if attempt%3 != 0 { // two failures, then success
			h.advance(500)
			return ec.SWOptFail()
		}
		h.advance(200)
		return nil
	}}
	thr := h.rt.NewThread()
	const execs = 4
	for i := 0; i < execs; i++ {
		if err := l.Execute(thr, cs); err != nil {
			t.Fatal(err)
		}
	}

	s := h.c.Snapshot()
	retry := s.Lat[obs.HistSWOptRetry]
	if got := retry.Count(); got != 2*execs {
		t.Errorf("swopt_retry count = %d, want %d (two failed attempts per execution)", got, 2*execs)
	}
	if got := retry.SumNS; got != 2*execs*500 {
		t.Errorf("swopt_retry sum = %dns, want %d", got, 2*execs*500)
	}
	// Execute latency spans all three attempts; the waste histogram holds
	// just the failed ones.
	if got := s.Lat[obs.HistExecSWOpt].SumNS; got != execs*1200 {
		t.Errorf("exec_swopt sum = %dns, want %d", got, execs*1200)
	}
	if got := s.Lat[obs.HistAttemptWaste].SumNS; got != execs*1000 {
		t.Errorf("attempt_to_success sum = %dns, want %d", got, execs*1000)
	}
	if got := l.Granules()[0].WastedSWOptTime(); got != execs*1000 {
		t.Errorf("granule wasted SWOpt = %v, want %dns", got, execs*1000)
	}
}

func TestTimingHTMAbortAttributionAndProfile(t *testing.T) {
	h := newTimingHarness(htmProfile())
	d := h.rt.Domain()
	l := h.rt.NewLock("hotlock", locks.NewTATAS(d), NewStatic(2, 0))
	v := d.NewVar(0)
	i := uint64(0)
	cs := &CS{Scope: NewScope("hot"), Body: func(ec *ExecCtx) error {
		h.advance(300)
		if ec.Mode() == ModeHTM {
			_ = ec.Load(v)
			i++
			v.StoreDirect(i) // direct interference dooms the transaction
			_ = ec.Load(v)   // read set can no longer extend: conflict abort
		}
		return nil
	}}
	thr := h.rt.NewThread()
	const execs = 5
	for n := 0; n < execs; n++ {
		if err := l.Execute(thr, cs); err != nil {
			t.Fatal(err)
		}
	}

	// Each execution: two 300ns HTM aborts, then a 300ns Lock-mode run.
	g := l.Granules()[0]
	if got := g.WastedHTMTimeBy(tm.AbortConflict); got != execs*600 {
		t.Errorf("wasted HTM (conflict) = %v, want %dns", got, execs*600)
	}
	if got := g.WastedHTMTime(); got != execs*600 {
		t.Errorf("wasted HTM total = %v, want %dns", got, execs*600)
	}
	s := h.c.Snapshot()
	if got := s.Lat[obs.HistExecLock].SumNS; got != execs*900 {
		t.Errorf("exec_lock sum = %dns, want %d (two aborts + lock run)", got, execs*900)
	}
	if got := s.Lat[obs.HistAttemptWaste].SumNS; got != execs*600 {
		t.Errorf("attempt_to_success sum = %dns, want %d", got, execs*600)
	}
	// The substrate measured the same discarded work on its own clock
	// (begin to abort = the 300ns body prefix), mirrored into obs.
	if got := s.Counts[obs.CtrAbortWorkNS]; got != execs*600 {
		t.Errorf("CtrAbortWorkNS = %d, want %d", got, execs*600)
	}

	// Contention profile: the granule's waste is ranked and attributed.
	profiles := h.rt.ContentionProfiles()
	if len(profiles) != 1 {
		t.Fatalf("profiles = %d, want 1", len(profiles))
	}
	p := profiles[0]
	if p.Lock != "hotlock" || p.Context != "hot" {
		t.Errorf("profile identity = (%q, %q), want (hotlock, hot)", p.Lock, p.Context)
	}
	if p.Execs != execs {
		t.Errorf("profile execs = %d, want %d", p.Execs, execs)
	}
	if p.ElisionPct != 0 {
		t.Errorf("elision pct = %v, want 0 (every execution fell back)", p.ElisionPct)
	}
	if p.AbortWork != execs*600 || p.AbortWorkBy[tm.AbortConflict] != execs*600 {
		t.Errorf("profile abort work = %v (by-conflict %v), want %dns",
			p.AbortWork, p.AbortWorkBy[tm.AbortConflict], execs*600)
	}
	if p.Wasted != p.AbortWork+p.SWOptRetry+p.LockWait {
		t.Errorf("Wasted = %v, want sum of components", p.Wasted)
	}
	if p.Hold != execs*300 {
		t.Errorf("profile hold = %v, want %dns", p.Hold, execs*300)
	}

	// The same rows reach an obs snapshot through the registered source.
	if len(s.Contention) != 1 || s.Contention[0].Lock != "hotlock" {
		t.Fatalf("snapshot contention rows = %+v, want the hotlock granule", s.Contention)
	}
	if s.Contention[0].AbortWorkNS != int64(execs*600) {
		t.Errorf("snapshot abort work = %d, want %d", s.Contention[0].AbortWorkNS, execs*600)
	}

	// And the text report renders them.
	var sb strings.Builder
	if err := h.rt.WriteContentionReport(&sb, 3); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"hotlock", "hot", "abort-work", "payoff"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("contention report missing %q:\n%s", want, sb.String())
		}
	}
}

// TestTimingChromeTraceEndToEnd runs a workload with rings and timing on
// (real clock) and checks WriteChromeTrace emits Perfetto-loadable JSON
// with duration spans for commits.
func TestTimingChromeTraceEndToEnd(t *testing.T) {
	c := obs.New()
	opts := DefaultOptions()
	opts.Obs = c
	opts.Timing = true
	opts.TraceCapacity = 256
	rt := NewRuntimeOpts(tm.NewDomain(htmProfile()), opts)
	f := newPairFixture(rt, NewStatic(5, 5))
	thr := rt.NewThread()
	for n := 0; n < 50; n++ {
		if err := f.lock.Execute(thr, f.writeCS); err != nil {
			t.Fatal(err)
		}
		if err := f.lock.Execute(thr, f.readCS); err != nil {
			t.Fatal(err)
		}
	}

	var sb strings.Builder
	if err := rt.WriteChromeTrace(&sb); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Ph   string  `json:"ph"`
			Name string  `json:"name"`
			Dur  float64 `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	spans := 0
	for _, e := range doc.TraceEvents {
		if e.Ph == "X" {
			spans++
			if e.Dur < 0 {
				t.Errorf("span %q has negative dur %v", e.Name, e.Dur)
			}
		}
	}
	if spans == 0 {
		t.Error("no duration spans in chrome trace with timing on")
	}
}

// TestTimingOffStaysDark: without Options.Timing nothing in the timing
// layer activates — no histograms, no contention rows, no wasted-time
// attribution — even with a collector attached.
func TestTimingOffStaysDark(t *testing.T) {
	c := obs.New()
	opts := DefaultOptions()
	opts.Obs = c
	rt := NewRuntimeOpts(tm.NewDomain(htmProfile()), opts)
	f := newPairFixture(rt, NewStatic(5, 5))
	thr := rt.NewThread()
	for n := 0; n < 50; n++ {
		if err := f.lock.Execute(thr, f.writeCS); err != nil {
			t.Fatal(err)
		}
	}
	s := c.Snapshot()
	if s.HasTiming() {
		t.Error("snapshot claims timing data with Timing off")
	}
	if len(s.Contention) != 0 {
		t.Errorf("contention rows = %d, want 0 with Timing off", len(s.Contention))
	}
	for _, g := range f.lock.Granules() {
		if g.WastedHTMTime() != 0 || g.HoldTime() != 0 || g.LockWaitTime() != 0 {
			t.Error("granule wasted-time stats nonzero with Timing off")
		}
	}
}
