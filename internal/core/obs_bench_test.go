package core

import (
	"testing"

	"repro/internal/obs"
	"repro/internal/tm"
)

// BenchmarkExecuteObsOverhead is the observability ablation: the same
// single-threaded HTM-success-path execution with Options.Obs detached
// (one nil check per execution) and attached (one uncontended atomic add
// into the thread's private shard). EXPERIMENTS.md records the measured
// delta. The read path is the worst case — the cheapest execution the
// engine has, so the added work is the largest relative cost.
func BenchmarkExecuteObsOverhead(b *testing.B) {
	for _, withObs := range []bool{false, true} {
		name := "obs-off"
		if withObs {
			name = "obs-on"
		}
		b.Run(name, func(b *testing.B) {
			opts := DefaultOptions()
			if withObs {
				opts.Obs = obs.New()
			}
			rt := NewRuntimeOpts(tm.NewDomain(htmProfile()), opts)
			f := newPairFixture(rt, NewStatic(5, 5))
			thr := rt.NewThread()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := f.lock.Execute(thr, f.readCS); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
