package core

import (
	"testing"

	"repro/internal/obs"
	"repro/internal/tm"
)

// BenchmarkExecuteObsOverhead is the observability ablation: the same
// single-threaded HTM-success-path execution with Options.Obs detached
// (one nil check per execution) and attached (one uncontended atomic add
// into the thread's private shard). EXPERIMENTS.md records the measured
// delta. The read path is the worst case — the cheapest execution the
// engine has, so the added work is the largest relative cost.
func BenchmarkExecuteObsOverhead(b *testing.B) {
	for _, withObs := range []bool{false, true} {
		name := "obs-off"
		if withObs {
			name = "obs-on"
		}
		b.Run(name, func(b *testing.B) {
			opts := DefaultOptions()
			if withObs {
				opts.Obs = obs.New()
			}
			rt := NewRuntimeOpts(tm.NewDomain(htmProfile()), opts)
			f := newPairFixture(rt, NewStatic(5, 5))
			thr := rt.NewThread()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := f.lock.Execute(thr, f.readCS); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkExecuteFlightOverhead is the black-box ablation: the same
// timing-on HTM read path with (a) no recorder, (b) the flight recorder
// armed at production geometry (ticker goroutine sampling the window off
// the hot path; exemplar floor at the 16µs default, so a ~200ns
// execution never touches the table), and (c) the pathological floor-0
// setting where *every* execution races a CAS-published exemplar slot —
// the worst case the zero-alloc Flight pins also cover. EXPERIMENTS.md
// "Flight recorder overhead" records the deltas.
func BenchmarkExecuteFlightOverhead(b *testing.B) {
	for _, tc := range []struct {
		name       string
		armed      bool
		exemplarNS int64 // -1 keeps the default floor
	}{
		{"flight-off", false, -1},
		{"flight-armed", true, -1},
		{"flight-armed-floor0", true, 0},
	} {
		b.Run(tc.name, func(b *testing.B) {
			opts := DefaultOptions()
			c := obs.New()
			opts.Obs = c
			opts.Timing = true
			rt := NewRuntimeOpts(tm.NewDomain(htmProfile()), opts)
			f := newPairFixture(rt, NewStatic(5, 5))
			thr := rt.NewThread()
			if tc.armed {
				if tc.exemplarNS >= 0 {
					c.Exemplars().SetMinLatency(tc.exemplarNS)
				}
				fr := obs.NewFlight(c, obs.FlightConfig{})
				fr.Start()
				defer fr.Stop()
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := f.lock.Execute(thr, f.readCS); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
