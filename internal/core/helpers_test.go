package core

import "time"

// testTimeout returns a generous deadline channel for deadlock-detection
// tests.
func testTimeout() <-chan time.Time { return time.After(10 * time.Second) }
