package core

import (
	"errors"
	"strings"
	"sync"
	"testing"

	"repro/internal/locks"
	"repro/internal/tm"
)

func htmProfile() tm.Profile {
	return tm.Profile{Name: "test-htm", Enabled: true, ReadCap: 1 << 16, WriteCap: 1 << 16}
}

func noHTMProfile() tm.Profile {
	return tm.Profile{Name: "test-nohtm", Enabled: false}
}

// pairFixture is the canonical SWOpt-capable data structure for these
// tests: two cells kept equal by writers. Readers have a validated SWOpt
// path; writers bump the conflict marker around the mutation.
type pairFixture struct {
	rt     *Runtime
	lock   *Lock
	marker *ConflictMarker
	a, b   *tm.Var

	readScope, writeScope *Scope
	readCS, writeCS       *CS
}

func newPairFixture(rt *Runtime, policy Policy) *pairFixture {
	d := rt.Domain()
	f := &pairFixture{
		rt:         rt,
		a:          d.NewVar(0),
		b:          d.NewVar(0),
		readScope:  NewScope("pair.Read"),
		writeScope: NewScope("pair.Write"),
	}
	f.lock = rt.NewLock("pairLock", locks.NewTATAS(d), policy)
	f.marker = f.lock.NewMarker()
	f.readCS = &CS{
		Scope:    f.readScope,
		HasSWOpt: true,
		Body: func(ec *ExecCtx) error {
			if ec.InSWOpt() {
				v := f.marker.ReadStable()
				x := ec.Load(f.a)
				if !f.marker.Validate(v) {
					return ec.SWOptFail()
				}
				y := ec.Load(f.b)
				if !f.marker.Validate(v) {
					return ec.SWOptFail()
				}
				if x != y {
					return errors.New("torn read in validated SWOpt path")
				}
				return nil
			}
			x := ec.Load(f.a)
			y := ec.Load(f.b)
			if x != y {
				return errors.New("torn read in exclusive mode")
			}
			return nil
		},
	}
	f.writeCS = &CS{
		Scope:       f.writeScope,
		Conflicting: true,
		Body: func(ec *ExecCtx) error {
			n := ec.Load(f.a) + 1
			f.marker.BeginConflicting(ec)
			ec.Store(f.a, n)
			ec.Store(f.b, n)
			f.marker.EndConflicting(ec)
			return nil
		},
	}
	return f
}

func TestExecuteLockOnly(t *testing.T) {
	rt := NewRuntime(tm.NewDomain(htmProfile()))
	f := newPairFixture(rt, NewLockOnly())
	thr := rt.NewThread()
	for i := 0; i < 100; i++ {
		if err := f.lock.Execute(thr, f.writeCS); err != nil {
			t.Fatal(err)
		}
	}
	if got := f.a.LoadDirect(); got != 100 {
		t.Errorf("a = %d, want 100", got)
	}
	gs := f.lock.Granules()
	var writeG *Granule
	for _, g := range gs {
		if strings.Contains(g.Label(), "pair.Write") {
			writeG = g
		}
	}
	if writeG == nil {
		t.Fatal("no granule for pair.Write")
	}
	if got := writeG.Execs(); got != 100 {
		t.Errorf("execs = %d, want 100", got)
	}
	if got := writeG.Successes(ModeHTM); got != 0 {
		t.Errorf("Instrumented baseline used HTM %d times", got)
	}
}

func TestExecuteHTMSingleThread(t *testing.T) {
	rt := NewRuntime(tm.NewDomain(htmProfile()))
	f := newPairFixture(rt, NewStatic(10, 0))
	thr := rt.NewThread()
	for i := 0; i < 100; i++ {
		if err := f.lock.Execute(thr, f.writeCS); err != nil {
			t.Fatal(err)
		}
	}
	if got := f.a.LoadDirect(); got != 100 {
		t.Errorf("a = %d, want 100", got)
	}
	g := granByLabel(t, f.lock, "pair.Write")
	if succ := g.Successes(ModeHTM); succ == 0 {
		t.Error("uncontended HTM never succeeded")
	}
	if lk := g.Successes(ModeLock); lk != 0 {
		t.Errorf("uncontended HTM fell back to the lock %d times", lk)
	}
}

func granByLabel(t *testing.T, l *Lock, substr string) *Granule {
	t.Helper()
	for _, g := range l.Granules() {
		if strings.Contains(g.Label(), substr) {
			return g
		}
	}
	t.Fatalf("no granule matching %q", substr)
	return nil
}

func TestExecuteConcurrentAtomicity(t *testing.T) {
	for _, tc := range []struct {
		name   string
		prof   tm.Profile
		policy func() Policy
	}{
		{"htm-static", htmProfile(), func() Policy { return NewStatic(10, 0) }},
		{"swopt-static", htmProfile(), func() Policy { return NewStatic(0, 10) }},
		{"all-static", htmProfile(), func() Policy { return NewStatic(10, 10) }},
		{"lockonly", htmProfile(), func() Policy { return NewLockOnly() }},
		{"nohtm-all", noHTMProfile(), func() Policy { return NewStatic(10, 10) }},
		{"adaptive", htmProfile(), func() Policy {
			return NewAdaptiveCfg(AdaptiveConfig{PhaseExecs: 50, InitialX: 10, XSlack: 2, BigY: 100})
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rt := NewRuntime(tm.NewDomain(tc.prof))
			f := newPairFixture(rt, tc.policy())
			const writers, readers, per = 4, 4, 2000
			var wg sync.WaitGroup
			errCh := make(chan error, writers+readers)
			for w := 0; w < writers; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					thr := rt.NewThread()
					for i := 0; i < per; i++ {
						if err := f.lock.Execute(thr, f.writeCS); err != nil {
							errCh <- err
							return
						}
					}
				}()
			}
			for r := 0; r < readers; r++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					thr := rt.NewThread()
					for i := 0; i < per; i++ {
						if err := f.lock.Execute(thr, f.readCS); err != nil {
							errCh <- err
							return
						}
					}
				}()
			}
			wg.Wait()
			close(errCh)
			for err := range errCh {
				t.Fatal(err)
			}
			if a, b := f.a.LoadDirect(), f.b.LoadDirect(); a != uint64(writers*per) || b != a {
				t.Errorf("a=%d b=%d, want both %d", a, b, writers*per)
			}
		})
	}
}

func TestSWOptUsedOnNoHTMPlatform(t *testing.T) {
	rt := NewRuntime(tm.NewDomain(noHTMProfile()))
	f := newPairFixture(rt, NewStatic(10, 10))
	thr := rt.NewThread()
	for i := 0; i < 200; i++ {
		if err := f.lock.Execute(thr, f.readCS); err != nil {
			t.Fatal(err)
		}
	}
	g := granByLabel(t, f.lock, "pair.Read")
	if got := g.Successes(ModeHTM); got != 0 {
		t.Errorf("HTM succeeded %d times on a no-HTM platform", got)
	}
	if got := g.Successes(ModeSWOpt); got == 0 {
		t.Error("SWOpt never used on a no-HTM platform")
	}
}

func TestSelfAbortDisablesSWOptForExecution(t *testing.T) {
	rt := NewRuntime(tm.NewDomain(noHTMProfile())) // force SWOpt-vs-Lock
	d := rt.Domain()
	l := rt.NewLock("L", locks.NewTATAS(d), NewStatic(0, 10))
	v := d.NewVar(0)
	swoptTries := 0
	cs := &CS{
		Scope:    NewScope("selfabort"),
		HasSWOpt: true,
		Body: func(ec *ExecCtx) error {
			if ec.InSWOpt() {
				swoptTries++
				return ec.SelfAbort()
			}
			ec.Store(v, ec.Load(v)+1)
			return nil
		},
	}
	thr := rt.NewThread()
	if err := l.Execute(thr, cs); err != nil {
		t.Fatal(err)
	}
	if swoptTries != 1 {
		t.Errorf("SWOpt tried %d times after self-abort, want exactly 1", swoptTries)
	}
	if got := v.LoadDirect(); got != 1 {
		t.Errorf("v = %d, want 1 (Lock-mode completion)", got)
	}
}

func TestSWOptRetryBudgetExhaustsToLock(t *testing.T) {
	rt := NewRuntime(tm.NewDomain(noHTMProfile()))
	d := rt.Domain()
	l := rt.NewLock("L", locks.NewTATAS(d), NewStatic(0, 3))
	tries := 0
	cs := &CS{
		Scope:    NewScope("alwaysfail"),
		HasSWOpt: true,
		Body: func(ec *ExecCtx) error {
			if ec.InSWOpt() {
				tries++
				return ec.SWOptFail()
			}
			return nil
		},
	}
	thr := rt.NewThread()
	if err := l.Execute(thr, cs); err != nil {
		t.Fatal(err)
	}
	if tries != 3 {
		t.Errorf("SWOpt attempts = %d, want 3 (budget Y)", tries)
	}
	g := granByLabel(t, l, "alwaysfail")
	if got := g.Successes(ModeLock); got == 0 {
		t.Error("execution did not fall through to Lock mode")
	}
}

func TestUserErrorPropagates(t *testing.T) {
	rt := NewRuntime(tm.NewDomain(htmProfile()))
	d := rt.Domain()
	l := rt.NewLock("L", locks.NewTATAS(d), NewStatic(5, 0))
	sentinel := errors.New("application error")
	cs := &CS{
		Scope: NewScope("err"),
		Body:  func(ec *ExecCtx) error { return sentinel },
	}
	thr := rt.NewThread()
	if err := l.Execute(thr, cs); !errors.Is(err, sentinel) {
		t.Errorf("Execute error = %v, want sentinel", err)
	}
}

func TestNestedCSInsideHTMJoinsTransaction(t *testing.T) {
	rt := NewRuntime(tm.NewDomain(htmProfile()))
	d := rt.Domain()
	outer := rt.NewLock("outer", locks.NewTATAS(d), NewStatic(10, 0))
	inner := rt.NewLock("inner", locks.NewTATAS(d), NewStatic(10, 0))
	v := d.NewVar(0)
	innerCS := &CS{
		Scope: NewScope("inner.cs"),
		Body: func(ec *ExecCtx) error {
			if ec.Mode() != ModeHTM {
				t.Errorf("nested CS mode = %v inside HTM, want HTM", ec.Mode())
			}
			ec.Store(v, ec.Load(v)+1)
			return nil
		},
	}
	thr := rt.NewThread()
	outerCS := &CS{
		Scope: NewScope("outer.cs"),
		Body: func(ec *ExecCtx) error {
			if ec.Mode() == ModeHTM && thr.Depth() != 1 {
				t.Errorf("Depth = %d inside outer HTM CS, want 1 (no frame for nested)", thr.Depth())
			}
			return inner.Execute(thr, innerCS)
		},
	}
	for i := 0; i < 50; i++ {
		if err := outer.Execute(thr, outerCS); err != nil {
			t.Fatal(err)
		}
	}
	if got := v.LoadDirect(); got != 50 {
		t.Errorf("v = %d, want 50", got)
	}
	og := granByLabel(t, outer, "outer.cs")
	if og.Successes(ModeHTM) == 0 {
		t.Error("outer CS never committed in HTM")
	}
	// The nested CS must not have spawned its own granule executions in
	// HTM mode (no frame, no stats — it joined the outer transaction).
	for _, g := range inner.Granules() {
		if g.Execs() != 0 {
			t.Errorf("nested-in-HTM CS recorded %d executions", g.Execs())
		}
	}
}

func TestNestedNoHTMCSAbortsEnclosingTransaction(t *testing.T) {
	rt := NewRuntime(tm.NewDomain(htmProfile()))
	d := rt.Domain()
	outer := rt.NewLock("outer", locks.NewTATAS(d), NewStatic(3, 0))
	inner := rt.NewLock("inner", locks.NewTATAS(d), NewStatic(3, 0))
	v := d.NewVar(0)
	innerCS := &CS{
		Scope: NewScope("inner.nohtm"),
		NoHTM: true,
		Body: func(ec *ExecCtx) error {
			if ec.Mode() == ModeHTM {
				t.Error("NoHTM CS ran in HTM mode")
			}
			ec.Store(v, ec.Load(v)+1)
			return nil
		},
	}
	thr := rt.NewThread()
	outerCS := &CS{
		Scope: NewScope("outer.cs"),
		Body:  func(ec *ExecCtx) error { return inner.Execute(thr, innerCS) },
	}
	for i := 0; i < 20; i++ {
		if err := outer.Execute(thr, outerCS); err != nil {
			t.Fatal(err)
		}
	}
	if got := v.LoadDirect(); got != 20 {
		t.Errorf("v = %d, want 20", got)
	}
	og := granByLabel(t, outer, "outer.cs")
	if og.Successes(ModeHTM) != 0 {
		t.Error("outer CS committed in HTM despite NoHTM nested section")
	}
	if og.Aborts(tm.AbortNesting) == 0 {
		t.Error("no nesting aborts recorded")
	}
}

func TestReentrantLockHeldRunsDirect(t *testing.T) {
	rt := NewRuntime(tm.NewDomain(noHTMProfile())) // Lock mode outer
	d := rt.Domain()
	l := rt.NewLock("L", locks.NewTATAS(d), NewLockOnly())
	v := d.NewVar(0)
	thr := rt.NewThread()
	innerCS := &CS{
		Scope: NewScope("inner.same"),
		Body: func(ec *ExecCtx) error {
			ec.Store(v, ec.Load(v)+1)
			return nil
		},
	}
	outerCS := &CS{
		Scope: NewScope("outer.same"),
		Body: func(ec *ExecCtx) error {
			// Same lock, nested: must run directly, not deadlock.
			return l.Execute(thr, innerCS)
		},
	}
	done := make(chan error, 1)
	go func() { done <- l.Execute(thr, outerCS) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-testTimeout():
		t.Fatal("nested same-lock execution deadlocked")
	}
	if got := v.LoadDirect(); got != 1 {
		t.Errorf("v = %d, want 1", got)
	}
}

func TestNestedConflictingActionFromSWOpt(t *testing.T) {
	// The section 3.3 pattern: the outer CS searches in SWOpt mode and
	// performs the conflicting mutation in a nested non-SWOpt critical
	// section on the same lock.
	rt := NewRuntime(tm.NewDomain(noHTMProfile()))
	d := rt.Domain()
	l := rt.NewLock("L", locks.NewTATAS(d), NewStatic(0, 100))
	marker := l.NewMarker()
	a := d.NewVar(0)
	b := d.NewVar(0)
	innerScope := NewScope("mutate")
	outerScope := NewScope("search+mutate")
	var mkInner func(thr *Thread, expect uint64) *CS
	mkInner = func(thr *Thread, expect uint64) *CS {
		return &CS{
			Scope:       innerScope,
			Conflicting: true,
			Body: func(ec *ExecCtx) error {
				// Re-check: the optimistic read may have been invalidated
				// before we got the lock.
				if ec.Load(a) != expect {
					return ErrSWOptRetry // handled by outer body below
				}
				marker.BeginConflicting(ec)
				ec.Store(a, expect+1)
				ec.Store(b, expect+1)
				marker.EndConflicting(ec)
				return nil
			},
		}
	}
	const workers, per = 4, 500
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			thr := rt.NewThread()
			outerCS := &CS{
				Scope:    outerScope,
				HasSWOpt: true,
				Body: func(ec *ExecCtx) error {
					if ec.InSWOpt() {
						ver := marker.ReadStable()
						x := ec.Load(a)
						if !marker.Validate(ver) {
							return ec.SWOptFail()
						}
						// Perform the mutation under a nested CS.
						if err := l.Execute(thr, mkInner(thr, x)); err != nil {
							if errors.Is(err, ErrSWOptRetry) {
								return ec.SWOptFail()
							}
							return err
						}
						return nil
					}
					// Exclusive path: read-modify-write directly.
					x := ec.Load(a)
					marker.BeginConflicting(ec)
					ec.Store(a, x+1)
					ec.Store(b, x+1)
					marker.EndConflicting(ec)
					return nil
				},
			}
			for i := 0; i < per; i++ {
				if err := l.Execute(thr, outerCS); err != nil {
					errCh <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	if got, gb := a.LoadDirect(), b.LoadDirect(); got != workers*per || gb != got {
		t.Errorf("a=%d b=%d, want both %d", got, gb, workers*per)
	}
}

func TestExplicitScopesSplitGranules(t *testing.T) {
	rt := NewRuntime(tm.NewDomain(htmProfile()))
	d := rt.Domain()
	l := rt.NewLock("L", locks.NewTATAS(d), NewLockOnly())
	v := d.NewVar(0)
	cs := &CS{
		Scope: NewScope("sharedCS"),
		Body: func(ec *ExecCtx) error {
			ec.Store(v, ec.Load(v)+1)
			return nil
		},
	}
	thr := rt.NewThread()
	siteA := NewScope("caller.A")
	siteB := NewScope("caller.B")
	for i := 0; i < 10; i++ {
		thr.BeginScope(siteA)
		if err := l.Execute(thr, cs); err != nil {
			t.Fatal(err)
		}
		thr.EndScope()
	}
	for i := 0; i < 20; i++ {
		thr.BeginScope(siteB)
		if err := l.Execute(thr, cs); err != nil {
			t.Fatal(err)
		}
		thr.EndScope()
	}
	gs := l.Granules()
	if len(gs) != 2 {
		t.Fatalf("granules = %d, want 2 (one per calling scope)", len(gs))
	}
	byLabel := map[string]uint64{}
	for _, g := range gs {
		byLabel[g.Label()] = g.Execs()
	}
	if byLabel["caller.A/sharedCS"] != 10 || byLabel["caller.B/sharedCS"] != 20 {
		t.Errorf("granule execs = %v", byLabel)
	}
}

func TestEndScopeUnmatchedPanics(t *testing.T) {
	rt := NewRuntime(tm.NewDomain(htmProfile()))
	thr := rt.NewThread()
	defer func() {
		if recover() == nil {
			t.Error("unmatched EndScope did not panic")
		}
	}()
	thr.EndScope()
}

func TestCSWithoutScopePanics(t *testing.T) {
	rt := NewRuntime(tm.NewDomain(htmProfile()))
	d := rt.Domain()
	l := rt.NewLock("L", locks.NewTATAS(d), NewLockOnly())
	thr := rt.NewThread()
	defer func() {
		if recover() == nil {
			t.Error("CS without Scope did not panic")
		}
	}()
	l.Execute(thr, &CS{Body: func(*ExecCtx) error { return nil }})
}

func TestCSWithoutBodyPanics(t *testing.T) {
	rt := NewRuntime(tm.NewDomain(htmProfile()))
	d := rt.Domain()
	l := rt.NewLock("L", locks.NewTATAS(d), NewLockOnly())
	thr := rt.NewThread()
	defer func() {
		if recover() == nil {
			t.Error("CS without Body did not panic")
		}
	}()
	l.Execute(thr, &CS{Scope: NewScope("x")})
}

func TestMarkerBumpInSWOptPanics(t *testing.T) {
	rt := NewRuntime(tm.NewDomain(noHTMProfile()))
	d := rt.Domain()
	l := rt.NewLock("L", locks.NewTATAS(d), NewStatic(0, 5))
	marker := l.NewMarker()
	cs := &CS{
		Scope:    NewScope("bad"),
		HasSWOpt: true,
		Body: func(ec *ExecCtx) error {
			if ec.InSWOpt() {
				marker.BeginConflicting(ec) // programming error
			}
			return nil
		},
	}
	thr := rt.NewThread()
	defer func() {
		if recover() == nil {
			t.Error("conflicting region in SWOpt mode did not panic")
		}
	}()
	l.Execute(thr, cs)
}

func TestSpuriousStormFallsBackToLock(t *testing.T) {
	p := htmProfile()
	p.SpuriousProb = 1.0 // every transactional access dies
	rt := NewRuntime(tm.NewDomain(p))
	d := rt.Domain()
	l := rt.NewLock("L", locks.NewTATAS(d), NewStatic(3, 0))
	v := d.NewVar(0)
	cs := &CS{
		Scope: NewScope("storm"),
		Body: func(ec *ExecCtx) error {
			ec.Store(v, ec.Load(v)+1)
			return nil
		},
	}
	thr := rt.NewThread()
	for i := 0; i < 50; i++ {
		if err := l.Execute(thr, cs); err != nil {
			t.Fatal(err)
		}
	}
	if got := v.LoadDirect(); got != 50 {
		t.Errorf("v = %d, want 50", got)
	}
	g := granByLabel(t, l, "storm")
	if g.Successes(ModeHTM) != 0 {
		t.Error("HTM succeeded despite 100% spurious aborts")
	}
	if g.Successes(ModeLock) == 0 {
		t.Error("Lock mode never recorded")
	}
	if g.Aborts(tm.AbortSpurious) == 0 {
		t.Error("no spurious aborts recorded")
	}
}

func TestCapacityGiveUp(t *testing.T) {
	p := htmProfile()
	p.WriteCap = 2
	rt := NewRuntime(tm.NewDomain(p))
	d := rt.Domain()
	l := rt.NewLock("L", locks.NewTATAS(d), NewStatic(10, 0))
	vars := d.NewVars(8)
	attempts := 0
	cs := &CS{
		Scope: NewScope("big"),
		Body: func(ec *ExecCtx) error {
			if ec.Mode() == ModeHTM {
				attempts++
			}
			for i := range vars {
				ec.Store(&vars[i], 1)
			}
			return nil
		},
	}
	thr := rt.NewThread()
	if err := l.Execute(thr, cs); err != nil {
		t.Fatal(err)
	}
	if attempts > capacityGiveUp {
		t.Errorf("HTM attempted %d times on a CS that can never fit, want <= %d",
			attempts, capacityGiveUp)
	}
}

func TestReportMentionsLocksAndContexts(t *testing.T) {
	rt := NewRuntime(tm.NewDomain(htmProfile()))
	f := newPairFixture(rt, NewStatic(5, 5))
	thr := rt.NewThread()
	for i := 0; i < 100; i++ {
		if err := f.lock.Execute(thr, f.writeCS); err != nil {
			t.Fatal(err)
		}
		if err := f.lock.Execute(thr, f.readCS); err != nil {
			t.Fatal(err)
		}
	}
	rep := rt.ReportString()
	for _, want := range []string{"pairLock", "pair.Read", "pair.Write", "Static-All-5:5"} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}
}

func TestSWOptCouldBeRunningIndicator(t *testing.T) {
	rt := NewRuntime(tm.NewDomain(noHTMProfile()))
	d := rt.Domain()
	l := rt.NewLock("L", locks.NewTATAS(d), NewStatic(0, 5))
	if l.SWOptCouldBeRunning() {
		t.Error("indicator true with no SWOpt execution")
	}
	observed := false
	cs := &CS{
		Scope:    NewScope("probe"),
		HasSWOpt: true,
		Body: func(ec *ExecCtx) error {
			if ec.InSWOpt() {
				observed = l.SWOptCouldBeRunning()
			}
			return nil
		},
	}
	thr := rt.NewThread()
	if err := l.Execute(thr, cs); err != nil {
		t.Fatal(err)
	}
	if !observed {
		t.Error("indicator false during a SWOpt execution")
	}
	if l.SWOptCouldBeRunning() {
		t.Error("indicator true after the SWOpt execution completed")
	}
}
