package core

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/locks"
	"repro/internal/obs"
	"repro/internal/tm"
)

func shardedCoreProfile(shards int) tm.Profile {
	return tm.Profile{
		Name: "test-sharded", Enabled: true,
		ReadCap: 1 << 16, WriteCap: 1 << 16,
		Shards: shards,
	}
}

// TestGranTableGrowthPreservesGranules forces the partitioned granule
// table through several segment growths and checks that every granule
// stays findable at its original pointer and that the ordered snapshot
// sees them all.
func TestGranTableGrowthPreservesGranules(t *testing.T) {
	rt := NewRuntime(tm.NewDomain(shardedCoreProfile(8)))
	l := rt.NewLock("L", locks.NewTATAS(rt.Domain()), NewStatic(1, 1))

	const n = 200 // ~25 per stripe: several doublings past the 8-slot start
	made := make(map[uint64]*Granule, n)
	for i := 0; i < n; i++ {
		h := uint64(i)*0x9e3779b9 + 7
		made[h] = l.granule(h, fmt.Sprintf("g%d", i))
	}
	for h, want := range made {
		if got := l.grans.lookup(h); got != want {
			t.Fatalf("lookup(%#x) = %p, want %p", h, got, want)
		}
		// Re-creation must return the existing granule, not a twin.
		if got := l.granule(h, "dup"); got != want {
			t.Fatalf("granule(%#x) re-created: %p, want %p", h, got, want)
		}
	}
	if gs := l.Granules(); len(gs) != n {
		t.Fatalf("Granules() = %d rows, want %d", len(gs), n)
	}
}

// TestGranTableSegmentRecycling is the white-box check that grown-out
// segments flow through the runtime's epoch reclaimer into the slot-array
// pool and back out into a later growth. A single-shard domain gives the
// table exactly one stripe, making the growth schedule deterministic:
// the 7th insert grows 8→16 (retiring the 8-slot array), the 13th grows
// 16→32 (retiring the 16-slot array).
func TestGranTableSegmentRecycling(t *testing.T) {
	rt := NewRuntime(tm.NewDomain(shardedCoreProfile(1)))
	l := rt.NewLock("L", locks.NewTATAS(rt.Domain()), NewStatic(1, 1))
	for i := 0; i < 13; i++ {
		l.granule(uint64(i)+1, "g")
	}
	// No thread pins are registered, so advances are unobstructed; drain
	// the reclaimer until both retired arrays have been scrubbed+pooled.
	for i := 0; i < 4 && rt.rec.Pending() > 0; i++ {
		rt.rec.TryAdvance()
	}
	if p := rt.rec.Pending(); p != 0 {
		t.Fatalf("reclaimer still holds %d retired segments after draining", p)
	}
	rt.segMu.Lock()
	pooled := len(rt.freeSegs)
	caps := map[int]bool{}
	for _, s := range rt.freeSegs {
		caps[len(s)] = true
		for i := range s {
			if s[i].Load() != nil {
				t.Fatal("pooled segment not scrubbed: live granule pointer left behind")
			}
		}
	}
	rt.segMu.Unlock()
	if pooled != 2 || !caps[8] || !caps[16] {
		t.Fatalf("pool = %d arrays with caps %v, want 2 with caps {8,16}", pooled, caps)
	}

	// A second lock's first growth requests a 16-slot array and must pop
	// the pooled one instead of allocating.
	l2 := rt.NewLock("L2", locks.NewTATAS(rt.Domain()), NewStatic(1, 1))
	for i := 0; i < 7; i++ {
		l2.granule(uint64(i)+1, "g")
	}
	rt.segMu.Lock()
	left := len(rt.freeSegs)
	rt.segMu.Unlock()
	if left != pooled-1 {
		t.Fatalf("pool after reuse = %d arrays, want %d (16-slot array consumed)", left, pooled-1)
	}
}

// TestGranTableConcurrentLookupDuringGrowth (-race): pinned lock-free
// readers hammer lookups of pre-existing granules while a writer forces
// repeated segment growth on the same single stripe. Readers must always
// find the exact original pointers — through old segments (still valid
// until reclaimed) or new ones.
func TestGranTableConcurrentLookupDuringGrowth(t *testing.T) {
	rt := NewRuntime(tm.NewDomain(shardedCoreProfile(1)))
	l := rt.NewLock("L", locks.NewTATAS(rt.Domain()), NewStatic(1, 1))

	const pre = 5
	want := make([]*Granule, pre)
	for i := range want {
		want[i] = l.granule(uint64(i)+1, "pre")
	}

	const readers = 4
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < readers; r++ {
		pin := rt.rec.Register()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				h := uint64(i%pre) + 1
				pin.Enter()
				g := l.grans.lookup(h)
				pin.Exit()
				if g != want[h-1] {
					t.Errorf("lookup(%d) = %p, want %p", h, g, want[h-1])
					return
				}
			}
		}()
	}
	// Writer: 300 inserts → repeated doublings, each retiring (and under
	// the readers' pins, eventually recycling) the previous segment.
	for i := 0; i < 300; i++ {
		l.granule(uint64(i)+100, "churn")
	}
	close(stop)
	wg.Wait()
}

// TestObsShardRows checks the runtime→obs shard-source wiring: a
// multi-shard domain publishes one commit-clock row per shard into
// snapshots, and a single-shard domain publishes none (so pre-sharding
// snapshot consumers see an unchanged format).
func TestObsShardRows(t *testing.T) {
	rt, c := newObsRuntime(shardedCoreProfile(8))
	d := rt.Domain()
	// Direct writes tick the written Var's shard clock without needing a
	// full Execute; hit several distinct vars so some spread is visible.
	for i := 0; i < 64; i++ {
		d.NewVar(0).StoreDirect(1)
	}
	s := c.Snapshot()
	if len(s.Shards) != 8 {
		t.Fatalf("snapshot has %d shard rows, want 8", len(s.Shards))
	}
	var total uint64
	for i, e := range s.Shards {
		if e.Shard != i {
			t.Fatalf("shard row %d has index %d", i, e.Shard)
		}
		total += e.Clock
	}
	if total != 64 {
		t.Fatalf("shard clocks sum to %d, want 64 (one tick per direct store)", total)
	}

	rt1, c1 := newObsRuntime(shardedCoreProfile(1))
	rt1.Domain().NewVar(0).StoreDirect(1)
	if s1 := c1.Snapshot(); len(s1.Shards) != 0 {
		t.Fatalf("single-shard snapshot has %d shard rows, want none", len(s1.Shards))
	}
}

// TestObsCrossShardMirrored checks the engine mirrors the substrate's
// cross-shard attempt count (tm.TxnStats.CrossShard) into the live
// metrics: an HTM execution whose write set spans two commit-clock
// shards must surface as CtrCrossShard, and shard-local executions must
// not.
func TestObsCrossShardMirrored(t *testing.T) {
	rt, c := newObsRuntime(shardedCoreProfile(8))
	d := rt.Domain()
	thr := rt.NewThread()
	l := rt.NewLock("L", locks.NewTATAS(d), NewStatic(10, 0))
	// Every HTM attempt subscribes to the lock word, so "shard-local" at
	// the engine level means "same shard as the lock word": rejection-
	// sample a onto the word's shard and b onto any other (retaining the
	// rejects so escape analysis cannot reuse one stack address).
	var kept []*tm.Var
	wordShard := l.Ops().Word().Shard()
	a := d.NewVar(0)
	for a.Shard() != wordShard {
		kept = append(kept, a)
		a = d.NewVar(0)
	}
	b := d.NewVar(0)
	for b.Shard() == wordShard {
		kept = append(kept, b)
		b = d.NewVar(0)
	}
	_ = kept
	local := &CS{Scope: NewScope("local"), Body: func(ec *ExecCtx) error {
		ec.Store(a, ec.Load(a)+1)
		return nil
	}}
	cross := &CS{Scope: NewScope("cross"), Body: func(ec *ExecCtx) error {
		ec.Store(a, ec.Load(a)+1)
		ec.Store(b, ec.Load(b)+1)
		return nil
	}}
	if err := l.Execute(thr, local); err != nil {
		t.Fatal(err)
	}
	if n := c.Snapshot().Get(obs.CtrCrossShard); n != 0 {
		t.Fatalf("cross_shard = %d after shard-local execution, want 0", n)
	}
	if err := l.Execute(thr, cross); err != nil {
		t.Fatal(err)
	}
	s := c.Snapshot()
	if n := s.Get(obs.CtrCrossShard); n != 1 {
		t.Fatalf("cross_shard = %d after one cross-shard execution, want 1", n)
	}
	if s.Successes(uint8(ModeHTM)) != 2 {
		t.Fatalf("HTM successes = %d, want 2 (both executions should elide)", s.Successes(uint8(ModeHTM)))
	}
}
