package core

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/locks"
	"repro/internal/obs"
	"repro/internal/tm"
)

// Zero-allocation contract: a steady-state Execute (warm granule cache,
// pre-grown stacks, no aborts) must not allocate in any of the three
// modes. These tests pin the contract the hot-path work establishes —
// regressions here are performance bugs even though nothing is incorrect.

func zeroAllocProfile() tm.Profile {
	// SpuriousProb stays 0 so the HTM attempt deterministically commits.
	return tm.Profile{Name: "test-zeroalloc", Enabled: true, ReadCap: 1 << 16, WriteCap: 1 << 16}
}

func testAllocsPerExecute(t *testing.T, rt *Runtime, f *pairFixture, cs *CS, wantMode Mode) {
	t.Helper()
	thr := rt.NewThread()
	// Warm up: create the granule, grow the frame/context stacks, spill
	// nothing. Then the measured executions must be allocation-free.
	for i := 0; i < 10; i++ {
		if err := f.lock.Execute(thr, cs); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(200, func() {
		if err := f.lock.Execute(thr, cs); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("Execute (%v mode) allocates %.1f times/op, want 0", wantMode, allocs)
	}
	var g *Granule
	for _, gr := range f.lock.Granules() {
		if gr.Successes(wantMode) > 0 {
			g = gr
		}
	}
	if g == nil {
		t.Fatalf("no granule recorded successes in mode %v; executions took an unintended path", wantMode)
	}
}

func TestExecuteZeroAllocsHTM(t *testing.T) {
	// Obs attached: the contract must hold with live metrics on, since
	// that is the recommended production configuration.
	opts := DefaultOptions()
	opts.Obs = obs.New()
	rt := NewRuntimeOpts(tm.NewDomain(zeroAllocProfile()), opts)
	f := newPairFixture(rt, NewStatic(10, 0))
	testAllocsPerExecute(t, rt, f, f.writeCS, ModeHTM)
}

func TestExecuteZeroAllocsSWOpt(t *testing.T) {
	opts := DefaultOptions()
	opts.Obs = obs.New()
	rt := NewRuntimeOpts(tm.NewDomain(zeroAllocProfile()), opts)
	f := newPairFixture(rt, NewStatic(0, 10))
	testAllocsPerExecute(t, rt, f, f.readCS, ModeSWOpt)
}

func TestExecuteZeroAllocsLock(t *testing.T) {
	opts := DefaultOptions()
	opts.Obs = obs.New()
	rt := NewRuntimeOpts(tm.NewDomain(zeroAllocProfile()), opts)
	f := newPairFixture(rt, NewLockOnly())
	testAllocsPerExecute(t, rt, f, f.writeCS, ModeLock)
}

// Timing variants: the contract must also hold with the full timing layer
// on (Options.Timing + Obs) — histogram records are atomic adds into
// preallocated per-thread shards, and the monotonic clock reads allocate
// nothing. Each test additionally checks the layer really measured the
// executions, so a regression that silently disables timing cannot make
// the pin pass vacuously.
func timingZeroAllocRuntime(t *testing.T, policy Policy) (*Runtime, *pairFixture, *obs.Collector) {
	t.Helper()
	c := obs.New()
	opts := DefaultOptions()
	opts.Obs = c
	opts.Timing = true
	rt := NewRuntimeOpts(tm.NewDomain(zeroAllocProfile()), opts)
	return rt, newPairFixture(rt, policy), c
}

func checkTimingRecorded(t *testing.T, c *obs.Collector, mode Mode) {
	t.Helper()
	s := c.Snapshot()
	if n := s.Lat[obs.HistExec(uint8(mode))].Count(); n == 0 {
		t.Errorf("timing on but %s exec-latency histogram is empty", mode)
	}
}

func TestExecuteZeroAllocsTimingHTM(t *testing.T) {
	rt, f, c := timingZeroAllocRuntime(t, NewStatic(10, 0))
	testAllocsPerExecute(t, rt, f, f.writeCS, ModeHTM)
	checkTimingRecorded(t, c, ModeHTM)
}

func TestExecuteZeroAllocsTimingSWOpt(t *testing.T) {
	rt, f, c := timingZeroAllocRuntime(t, NewStatic(0, 10))
	testAllocsPerExecute(t, rt, f, f.readCS, ModeSWOpt)
	checkTimingRecorded(t, c, ModeSWOpt)
}

func TestExecuteZeroAllocsTimingLock(t *testing.T) {
	rt, f, c := timingZeroAllocRuntime(t, NewLockOnly())
	testAllocsPerExecute(t, rt, f, f.writeCS, ModeLock)
	checkTimingRecorded(t, c, ModeLock)
}

// Flight variants: the contract must hold with the full black-box stack
// armed — timing layer on, exemplar floor at zero so *every* execution
// attaches a tail-latency exemplar (the worst case; production floors
// skip the table entirely for fast executions), and a flight recorder
// retaining the window. The recorder is driven by explicit Tick calls
// around the measured region, not a ticker goroutine: AllocsPerRun counts
// process-wide mallocs, and the recorder's per-tick Snapshot allocates by
// design off the hot path — what these pins protect is Execute itself.
// Each test also proves an exemplar and a flight frame actually captured
// the measured executions, so the pin cannot pass vacuously.
func flightZeroAllocCheck(t *testing.T, rt *Runtime, f *pairFixture, c *obs.Collector, cs *CS, wantMode Mode) {
	t.Helper()
	c.Exemplars().SetMinLatency(0)
	fr := obs.NewFlight(c, obs.FlightConfig{})
	testAllocsPerExecute(t, rt, f, cs, wantMode)
	fr.Tick()
	var sb strings.Builder
	if err := fr.Dump(&sb, "test"); err != nil {
		t.Fatal(err)
	}
	d, err := obs.ParseFlight([]byte(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Frames) != 1 || d.Frames[0].Successes(uint8(wantMode)) == 0 {
		t.Errorf("flight frame did not capture the %v executions: %d frames", wantMode, len(d.Frames))
	}
	var hit bool
	for _, r := range d.Cumulative.Exemplars {
		if r.Hist == obs.HistNames[obs.HistExec(uint8(wantMode))] && r.Mode == obs.ModeNames[wantMode] {
			hit = true
		}
	}
	if !hit {
		t.Errorf("no %v exec exemplar attached; exemplars = %+v", wantMode, d.Cumulative.Exemplars)
	}
}

func TestExecuteZeroAllocsFlightHTM(t *testing.T) {
	rt, f, c := timingZeroAllocRuntime(t, NewStatic(10, 0))
	flightZeroAllocCheck(t, rt, f, c, f.writeCS, ModeHTM)
}

func TestExecuteZeroAllocsFlightSWOpt(t *testing.T) {
	rt, f, c := timingZeroAllocRuntime(t, NewStatic(0, 10))
	flightZeroAllocCheck(t, rt, f, c, f.readCS, ModeSWOpt)
}

func TestExecuteZeroAllocsFlightLock(t *testing.T) {
	rt, f, c := timingZeroAllocRuntime(t, NewLockOnly())
	flightZeroAllocCheck(t, rt, f, c, f.writeCS, ModeLock)
}

// TestGranuleCacheAgreement: the thread cache must resolve to exactly the
// granules the lock's shared table owns — same pointers, no shadow
// granules — including under nested scopes.
func TestGranuleCacheAgreement(t *testing.T) {
	rt := NewRuntime(tm.NewDomain(htmProfile()))
	l := rt.NewLock("L", locks.NewTATAS(rt.Domain()), NewLockOnly())
	thr := rt.NewThread()
	outer := NewScope("outer")
	inner := NewScope("inner")
	innerCS := &CS{Scope: inner, Body: func(ec *ExecCtx) error { return nil }}

	// Same scope at top level and nested under an explicit scope: two
	// distinct contexts, two distinct granules.
	if err := l.Execute(thr, innerCS); err != nil {
		t.Fatal(err)
	}
	thr.BeginScope(outer)
	if err := l.Execute(thr, innerCS); err != nil {
		t.Fatal(err)
	}
	thr.EndScope()

	gs := l.Granules()
	if len(gs) != 2 {
		t.Fatalf("granules = %d, want 2 (top-level and nested contexts)", len(gs))
	}
	byLabel := map[string]*Granule{}
	for _, g := range gs {
		byLabel[g.Label()] = g
	}
	if byLabel["inner"] == nil || byLabel["outer/inner"] == nil {
		t.Fatalf("granule labels = %v, want [inner outer/inner]", []string{gs[0].Label(), gs[1].Label()})
	}

	// Re-resolving through the cache must return the table's pointers.
	thr.pushScope(inner)
	if g := thr.granuleFor(l, thr.contextTop()); g != byLabel["inner"] {
		t.Error("cache hit disagrees with Lock.Granules() for top-level context")
	}
	thr.popScope()
	thr.pushScope(outer)
	thr.pushScope(inner)
	if g := thr.granuleFor(l, thr.contextTop()); g != byLabel["outer/inner"] {
		t.Error("cache hit disagrees with Lock.Granules() for nested context")
	}
	thr.popScope()
	thr.popScope()

	// A colliding context hash (same hash handed to the lock's table with
	// a different label) must behave exactly like the shared table:
	// first-registered wins, label and all.
	thr.pushScope(inner)
	hash := thr.contextTop()
	thr.popScope()
	if g := l.granule(hash, "some-colliding-label"); g != byLabel["inner"] {
		t.Error("shared table returned a new granule for a colliding hash")
	}
	// And a fresh thread resolving the same hash through its (cold) cache
	// agrees too.
	thr2 := rt.NewThread()
	thr2.pushScope(inner)
	if g := thr2.granuleFor(l, thr2.contextTop()); g != byLabel["inner"] {
		t.Error("cold cache disagrees with shared table for colliding hash")
	}
	thr2.popScope()
}

// TestGranuleCacheEviction: far more (lock, context) pairs than cache
// slots must still account every execution exactly once — eviction only
// costs a refill, never a miscount.
func TestGranuleCacheEviction(t *testing.T) {
	rt := NewRuntime(tm.NewDomain(htmProfile()))
	l := rt.NewLock("L", locks.NewTATAS(rt.Domain()), NewLockOnly())
	thr := rt.NewThread()
	const scopes = 3 * granCacheSize
	const rounds = 4
	css := make([]*CS, scopes)
	for i := range css {
		css[i] = &CS{Scope: NewScope("s"), Body: func(ec *ExecCtx) error { return nil }}
	}
	for r := 0; r < rounds; r++ {
		for _, cs := range css {
			if err := l.Execute(thr, cs); err != nil {
				t.Fatal(err)
			}
		}
	}
	gs := l.Granules()
	if len(gs) != scopes {
		t.Fatalf("granules = %d, want %d", len(gs), scopes)
	}
	var total uint64
	for _, g := range gs {
		if n := g.Execs(); n != rounds {
			t.Errorf("granule %q execs = %d, want %d", g.Label(), n, rounds)
		}
		total += g.Execs()
	}
	if total != scopes*rounds {
		t.Errorf("total execs = %d, want %d", total, scopes*rounds)
	}
}

// TestGranuleCacheShareElisionState: locks sharing elision state (the RW
// lock pattern) still keep fully separate granule tables; the per-thread
// cache must never leak a granule across locks even when context hashes
// coincide exactly.
func TestGranuleCacheShareElisionState(t *testing.T) {
	rt := NewRuntime(tm.NewDomain(htmProfile()))
	d := rt.Domain()
	rd := rt.NewLock("db.read", locks.NewTATAS(d), NewLockOnly())
	wr := rt.NewLock("db.write", locks.NewTATAS(d), NewLockOnly())
	wr.ShareElisionState(rd)
	thr := rt.NewThread()
	s := NewScope("op")
	cs := &CS{Scope: s, Body: func(ec *ExecCtx) error { return nil }}
	// Alternate the two locks under the *same* scope: identical context
	// hash, different lock — the cache key must distinguish them.
	for i := 0; i < 50; i++ {
		if err := rd.Execute(thr, cs); err != nil {
			t.Fatal(err)
		}
		if err := wr.Execute(thr, cs); err != nil {
			t.Fatal(err)
		}
	}
	for _, l := range []*Lock{rd, wr} {
		gs := l.Granules()
		if len(gs) != 1 {
			t.Fatalf("%s granules = %d, want 1", l.Name(), len(gs))
		}
		if n := gs[0].Execs(); n != 50 {
			t.Errorf("%s execs = %d, want 50", l.Name(), n)
		}
	}
	if rd.Granules()[0] == wr.Granules()[0] {
		t.Error("locks sharing elision state also share a granule")
	}
}

// TestGranuleCacheConcurrent churns many scopes from many threads under
// -race: the per-thread caches populate concurrently from the shared
// table, and every thread must agree on the winning granule pointers.
func TestGranuleCacheConcurrent(t *testing.T) {
	rt := NewRuntime(tm.NewDomain(htmProfile()))
	l := rt.NewLock("L", locks.NewTATAS(rt.Domain()), NewStatic(5, 0))
	const scopes = 2 * granCacheSize
	css := make([]*CS, scopes)
	for i := range css {
		css[i] = &CS{Scope: NewScope("s"), Body: func(ec *ExecCtx) error { return nil }}
	}
	const workers, rounds = 8, 200
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			thr := rt.NewThread()
			for r := 0; r < rounds; r++ {
				cs := css[(id*31+r)%scopes]
				if err := l.Execute(thr, cs); err != nil {
					select {
					case errs <- err:
					default:
					}
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	gs := l.Granules()
	if len(gs) != scopes {
		t.Fatalf("granules = %d, want %d", len(gs), scopes)
	}
	var total uint64
	for _, g := range gs {
		total += g.Execs()
	}
	if total != workers*rounds {
		t.Errorf("total execs = %d, want %d", total, workers*rounds)
	}
}

// Engine microbenchmarks: the per-execution cost of Execute's success path
// in each mode, and of granule resolution on cache hit versus forced miss.

func benchRuntime(b *testing.B, policy func() Policy) (*Runtime, *pairFixture) {
	b.Helper()
	rt := NewRuntime(tm.NewDomain(zeroAllocProfile()))
	return rt, newPairFixture(rt, policy())
}

func BenchmarkExecuteHTM(b *testing.B) {
	rt, f := benchRuntime(b, func() Policy { return NewStatic(10, 0) })
	thr := rt.NewThread()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := f.lock.Execute(thr, f.writeCS); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExecuteSWOpt(b *testing.B) {
	rt, f := benchRuntime(b, func() Policy { return NewStatic(0, 10) })
	thr := rt.NewThread()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := f.lock.Execute(thr, f.readCS); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExecuteLock(b *testing.B) {
	rt, f := benchRuntime(b, func() Policy { return NewLockOnly() })
	thr := rt.NewThread()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := f.lock.Execute(thr, f.writeCS); err != nil {
			b.Fatal(err)
		}
	}
}

// Timing-on variants quantify the timing layer's overhead against the
// matching benchmarks above (two clock reads + two atomic adds per
// conflict-free execution; EXPERIMENTS.md records the deltas).

func benchTimingRuntime(b *testing.B, policy func() Policy) (*Runtime, *pairFixture) {
	b.Helper()
	opts := DefaultOptions()
	opts.Obs = obs.New()
	opts.Timing = true
	rt := NewRuntimeOpts(tm.NewDomain(zeroAllocProfile()), opts)
	return rt, newPairFixture(rt, policy())
}

func BenchmarkExecuteHTMTiming(b *testing.B) {
	rt, f := benchTimingRuntime(b, func() Policy { return NewStatic(10, 0) })
	thr := rt.NewThread()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := f.lock.Execute(thr, f.writeCS); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExecuteSWOptTiming(b *testing.B) {
	rt, f := benchTimingRuntime(b, func() Policy { return NewStatic(0, 10) })
	thr := rt.NewThread()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := f.lock.Execute(thr, f.readCS); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExecuteLockTiming(b *testing.B) {
	rt, f := benchTimingRuntime(b, func() Policy { return NewLockOnly() })
	thr := rt.NewThread()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := f.lock.Execute(thr, f.writeCS); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGranuleLookupHit(b *testing.B) {
	rt := NewRuntime(tm.NewDomain(htmProfile()))
	l := rt.NewLock("L", locks.NewTATAS(rt.Domain()), NewLockOnly())
	thr := rt.NewThread()
	s := NewScope("hot")
	thr.pushScope(s)
	hash := thr.contextTop()
	thr.granuleFor(l, hash) // populate
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = thr.granuleFor(l, hash)
	}
	thr.popScope()
}

func BenchmarkGranuleLookupMiss(b *testing.B) {
	rt := NewRuntime(tm.NewDomain(htmProfile()))
	l := rt.NewLock("L", locks.NewTATAS(rt.Domain()), NewLockOnly())
	thr := rt.NewThread()
	// Two context hashes mapping to the same cache slot evict each other
	// on every lookup, so each resolution falls through to the shared
	// table (the pre-cache cost, including the sync.Map key boxing).
	scopes := []*Scope{NewScope("a"), NewScope("b")}
	hashes := make([]uint64, 0, 2)
	for _, s := range scopes {
		thr.pushScope(s)
		hashes = append(hashes, thr.contextTop())
		thr.granuleFor(l, thr.contextTop())
		thr.popScope()
	}
	slot := func(h uint64) uint64 { return (h ^ uint64(l.id)*0x9e3779b97f4a7c15) & (granCacheSize - 1) }
	if slot(hashes[0]) != slot(hashes[1]) {
		// Try more scopes until two collide (64 slots → a collision is
		// found quickly by birthday bound).
		found := false
		for i := 0; i < 256 && !found; i++ {
			s := NewScope("x")
			thr.pushScope(s)
			h := thr.contextTop()
			thr.granuleFor(l, h)
			thr.popScope()
			if slot(h) == slot(hashes[0]) && h != hashes[0] {
				hashes[1] = h
				found = true
			}
		}
		if !found {
			b.Fatal("could not construct colliding cache slots")
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = thr.granuleFor(l, hashes[i&1])
	}
}
