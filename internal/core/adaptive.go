package core

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/stats"
)

// progression is a mode progression the adaptive policy can learn about
// (paper section 4.2: "Each lock goes through one learning phase for each
// mode progression (Lock, SWOpt+Lock, HTM+Lock, HTM+SWOpt+Lock)").
type progression uint8

const (
	progLock progression = iota
	progSL               // SWOpt+Lock
	progHL               // HTM+Lock
	progAll              // HTM+SWOpt+Lock
	numProgs
)

func (p progression) hasHTM() bool   { return p == progHL || p == progAll }
func (p progression) hasSWOpt() bool { return p == progSL || p == progAll }

func (p progression) String() string {
	switch p {
	case progLock:
		return "Lock"
	case progSL:
		return "SWOpt+Lock"
	case progHL:
		return "HTM+Lock"
	case progAll:
		return "HTM+SWOpt+Lock"
	}
	return fmt.Sprintf("prog(%d)", uint8(p))
}

// Sub-phase kinds within a learning phase for progressions that include
// HTM (paper: "phases for combinations that include HTM mode comprise
// three sub-phases").
type stageKind uint8

const (
	// stageDiscover starts X large and records the maximum number of
	// attempts actually needed for HTM success (first sub-phase).
	stageDiscover stageKind = iota
	// stageHistogram runs with the discovered cap and builds the
	// attempts-to-success histogram plus timing statistics (second
	// sub-phase), from which the X minimizing estimated cost is chosen.
	stageHistogram
	// stageMeasure measures achieved performance with the chosen
	// parameters (third sub-phase; the only phase for HTM-less
	// progressions).
	stageMeasure
	// stageCustom runs every granule with its own best progression and
	// checks the mixture against the best uniform progression.
	stageCustom
	// stageSettled applies the final choice forever after.
	stageSettled
)

// stage is one entry in the policy's learning schedule.
type stage struct {
	prog progression
	kind stageKind
}

func (s stage) String() string {
	switch s.kind {
	case stageDiscover:
		return s.prog.String() + "/discover"
	case stageHistogram:
		return s.prog.String() + "/histogram"
	case stageMeasure:
		return s.prog.String() + "/measure"
	case stageCustom:
		return "custom"
	default:
		return "settled"
	}
}

// AdaptiveConfig tunes the adaptive policy's learning mechanism.
type AdaptiveConfig struct {
	// PhaseExecs is the number of executions some granule of the lock
	// must complete to end the current phase (paper: "Phase transitions
	// for lock L occur when some context of L completes a certain number
	// of executions" — not all contexts, as some may be infrequent).
	PhaseExecs int
	// InitialX is the large X used in the discovery sub-phase.
	InitialX int
	// XSlack is the small constant added to the observed maximum number
	// of attempts when capping X after discovery.
	XSlack int
	// BigY is the SWOpt budget. The policy always sets Y large: grouping
	// normally lets SWOpt succeed in far fewer attempts, and the large
	// bound only exists so rare livelocks cannot persist (section 4.2).
	BigY int
}

// DefaultAdaptiveConfig returns the configuration used by the paper-shaped
// experiments.
func DefaultAdaptiveConfig() AdaptiveConfig {
	return AdaptiveConfig{
		PhaseExecs: 1000,
		InitialX:   40,
		XSlack:     2,
		BigY:       1000,
	}
}

// AdaptivePolicy is the paper's adaptive policy (section 4.2): it walks
// each lock through learning phases — one per available mode progression,
// with three sub-phases for HTM-bearing progressions — learns per-granule
// X parameters from an attempts-to-success histogram and a linear
// interpolation cost model, then validates per-granule choices in a custom
// phase before settling.
//
// One AdaptivePolicy instance serves one Lock.
type AdaptivePolicy struct {
	cfg AdaptiveConfig

	buildOnce sync.Once
	stages    []stage
	// stage indexes for cross-referencing during transitions.
	discoverIdx [numProgs]int
	histIdx     [numProgs]int
	measureIdx  [numProgs]int
	customIdx   int

	cur atomic.Int32 // current stage index

	mu sync.Mutex // serializes stage transitions

	// lockTime aggregates execution time per stage across all granules,
	// for the lock-level custom-vs-uniform comparison.
	lockTime []stats.TimeStat

	// Final lock-level decision (valid once settled).
	useCustom   atomic.Bool
	uniformProg atomic.Int32
}

// NewAdaptive creates an adaptive policy with default configuration.
func NewAdaptive() *AdaptivePolicy { return NewAdaptiveCfg(DefaultAdaptiveConfig()) }

// NewAdaptiveCfg creates an adaptive policy with explicit configuration.
func NewAdaptiveCfg(cfg AdaptiveConfig) *AdaptivePolicy {
	if cfg.PhaseExecs < 1 {
		cfg.PhaseExecs = 1
	}
	if cfg.InitialX < 1 {
		cfg.InitialX = 1
	}
	if cfg.BigY < 1 {
		cfg.BigY = 1
	}
	return &AdaptivePolicy{cfg: cfg}
}

// Name identifies the policy in reports.
func (p *AdaptivePolicy) Name() string { return "Adaptive" }

// StageName returns the current learning stage (diagnostics/reports).
func (p *AdaptivePolicy) StageName() string {
	if p.stages == nil {
		return "unstarted"
	}
	return p.stages[p.cur.Load()].String()
}

// Settled reports whether learning has finished for this lock.
func (p *AdaptivePolicy) Settled() bool {
	return p.stages != nil && p.stages[p.cur.Load()].kind == stageSettled
}

// FinalChoice describes the settled decision (diagnostics/reports).
func (p *AdaptivePolicy) FinalChoice() string {
	if !p.Settled() {
		return "learning:" + p.StageName()
	}
	if p.useCustom.Load() {
		return "custom (per-granule progressions)"
	}
	return "uniform " + progression(p.uniformProg.Load()).String()
}

// build constructs the learning schedule once eligibility is known. HTM
// progressions are scheduled only on HTM-capable platforms; the SWOpt
// progressions are always scheduled (granules without SWOpt paths simply
// fall through to Lock during them, which measures the right thing).
func (p *AdaptivePolicy) build(g *Granule) {
	htm := g.lock.rt.HTMAvailable()
	add := func(pr progression) {
		if pr.hasHTM() {
			p.discoverIdx[pr] = len(p.stages)
			p.stages = append(p.stages, stage{pr, stageDiscover})
			p.histIdx[pr] = len(p.stages)
			p.stages = append(p.stages, stage{pr, stageHistogram})
		} else {
			p.discoverIdx[pr], p.histIdx[pr] = -1, -1
		}
		p.measureIdx[pr] = len(p.stages)
		p.stages = append(p.stages, stage{pr, stageMeasure})
	}
	add(progLock)
	add(progSL)
	if htm {
		add(progHL)
		add(progAll)
	} else {
		p.discoverIdx[progHL], p.histIdx[progHL], p.measureIdx[progHL] = -1, -1, -1
		p.discoverIdx[progAll], p.histIdx[progAll], p.measureIdx[progAll] = -1, -1, -1
	}
	p.customIdx = len(p.stages)
	p.stages = append(p.stages, stage{progLock, stageCustom})
	p.stages = append(p.stages, stage{progLock, stageSettled})
	p.lockTime = make([]stats.TimeStat, len(p.stages))
	p.obsEvent(g.lock, obs.Event{
		Kind:   obs.EventPhaseEnter,
		Lock:   g.lock.name,
		Stage:  p.stages[0].String(),
		Detail: fmt.Sprintf("schedule built (%d stages)", len(p.stages)),
	})
}

// obsEvent forwards a policy event to the runtime's live-metrics
// collector, if one is attached. Called from phase transitions only —
// never from the per-execution path.
func (p *AdaptivePolicy) obsEvent(l *Lock, e obs.Event) {
	if c := l.rt.opts.Obs; c != nil {
		c.RecordEvent(e)
	}
}

// granEventLabel is the granule label policy events carry ("(root)" for
// the empty context, matching report rendering).
func granEventLabel(g *Granule) string {
	if g.label == "" {
		return "(root)"
	}
	return g.label
}

// granLearn is the per-granule learning state, hung off Granule.policyData.
type granLearn struct {
	stageExecs []atomic.Int64
	// timeByStage aggregates sampled execution time per stage;
	// modeTime splits it by final mode (needed by the cost model).
	timeByStage []stats.TimeStat
	modeTime    []modeTimes
	// maxAtt records, per stage, the maximum HTM attempts a successful
	// execution needed (discovery sub-phase).
	maxAtt []atomic.Int64
	// hist records attempts-to-success per histogram stage; bucket 0
	// counts executions that never succeeded in HTM.
	hist []*stats.Histogram

	xByProg  [numProgs]atomic.Int32
	bestProg atomic.Int32
}

type modeTimes [NumModes]stats.TimeStat

func (p *AdaptivePolicy) granData(g *Granule) *granLearn {
	g.policyOnce.Do(func() {
		gl := &granLearn{
			stageExecs:  make([]atomic.Int64, len(p.stages)),
			timeByStage: make([]stats.TimeStat, len(p.stages)),
			modeTime:    make([]modeTimes, len(p.stages)),
			maxAtt:      make([]atomic.Int64, len(p.stages)),
			hist:        make([]*stats.Histogram, len(p.stages)),
		}
		for pr := progression(0); pr < numProgs; pr++ {
			gl.xByProg[pr].Store(int32(p.cfg.InitialX))
			if hi := p.histIdx[pr]; hi >= 0 {
				gl.hist[hi] = stats.NewHistogram(p.cfg.InitialX + p.cfg.XSlack + 2)
			}
		}
		gl.bestProg.Store(int32(progLock))
		g.policyData = gl
	})
	return g.policyData.(*granLearn)
}

// Relearn restarts the learning schedule from the first phase, clearing
// the per-stage aggregates. The paper lists adapting to workloads that
// change over time as future work; this is the minimal hook for it — a
// program (or a supervising policy) that detects a phase change calls
// Relearn and the lock walks the phases again under the new workload.
// Per-granule stage statistics are cleared; the lock's lifetime counters
// in each Granule are not (they are cumulative by design).
func (p *AdaptivePolicy) Relearn(l *Lock) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.stages == nil {
		return // never ran; nothing to reset
	}
	for _, g := range l.Granules() {
		if g.policyData == nil {
			continue
		}
		gl := g.policyData.(*granLearn)
		for i := range gl.stageExecs {
			gl.stageExecs[i].Store(0)
			gl.timeByStage[i].Reset()
			for m := range gl.modeTime[i] {
				gl.modeTime[i][m].Reset()
			}
			gl.maxAtt[i].Store(0)
			if gl.hist[i] != nil {
				gl.hist[i].Reset()
			}
		}
		for pr := progression(0); pr < numProgs; pr++ {
			gl.xByProg[pr].Store(int32(p.cfg.InitialX))
		}
		gl.bestProg.Store(int32(progLock))
	}
	for i := range p.lockTime {
		p.lockTime[i].Reset()
	}
	p.useCustom.Store(false)
	p.uniformProg.Store(int32(progLock))
	p.cur.Store(0)
	p.obsEvent(l, obs.Event{
		Kind: obs.EventRelearn, Lock: l.name,
		Stage:  p.stages[0].String(),
		Detail: "learning schedule restarted",
	})
}

// Plan implements Policy.
func (p *AdaptivePolicy) Plan(g *Granule, eligHTM, eligSWOpt bool) Plan {
	p.buildOnce.Do(func() { p.build(g) })
	gl := p.granData(g)
	st := p.stages[p.cur.Load()]

	var pr progression
	switch st.kind {
	case stageCustom, stageSettled:
		if st.kind == stageSettled && !p.useCustom.Load() {
			pr = progression(p.uniformProg.Load())
		} else {
			pr = progression(gl.bestProg.Load())
		}
	default:
		pr = st.prog
	}

	plan := Plan{
		UseHTM:   pr.hasHTM() && eligHTM,
		UseSWOpt: pr.hasSWOpt() && eligSWOpt,
		Y:        p.cfg.BigY,
	}
	if plan.UseHTM {
		if st.kind == stageDiscover {
			plan.X = p.cfg.InitialX
		} else {
			plan.X = int(gl.xByProg[pr].Load())
		}
		if plan.X <= 0 {
			plan.UseHTM = false // learned: HTM cannot commit this granule
		}
	}
	return plan
}

// Done implements Policy: record the execution into the current stage's
// statistics and trigger a phase transition when the threshold is hit.
func (p *AdaptivePolicy) Done(g *Granule, rec *ExecRecord) {
	if p.stages == nil {
		return // Plan not yet called (shouldn't happen via the engine)
	}
	si := int(p.cur.Load())
	st := p.stages[si]
	if st.kind == stageSettled {
		return
	}
	gl := p.granData(g)
	if rec.Duration > 0 {
		gl.timeByStage[si].Add(rec.Duration)
		gl.modeTime[si][rec.FinalMode].Add(rec.Duration)
		p.lockTime[si].Add(rec.Duration)
	}
	switch st.kind {
	case stageDiscover:
		if rec.FinalMode == ModeHTM {
			for {
				old := gl.maxAtt[si].Load()
				if int64(rec.HTMAttempts) <= old || gl.maxAtt[si].CompareAndSwap(old, int64(rec.HTMAttempts)) {
					break
				}
			}
		}
	case stageHistogram:
		if h := gl.hist[si]; h != nil {
			if rec.FinalMode == ModeHTM {
				h.Record(rec.HTMAttempts) // buckets 1..cap
			} else {
				h.Record(0) // never succeeded in HTM
			}
		}
	}
	if gl.stageExecs[si].Add(1) >= int64(p.cfg.PhaseExecs) {
		p.advance(si, g)
	}
}

// advance performs the transition out of stage si, computing whatever the
// stage was run to learn.
func (p *AdaptivePolicy) advance(si int, g *Granule) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if int(p.cur.Load()) != si {
		return // someone else advanced already
	}
	st := p.stages[si]
	grans := g.lock.Granules()
	switch st.kind {
	case stageDiscover:
		// Cap X at the maximum attempts needed so far plus a small
		// constant (paper, first sub-phase).
		for _, og := range grans {
			gl := p.granData(og)
			maxA := int(gl.maxAtt[si].Load())
			if maxA == 0 {
				// No HTM success observed at all. Keep the big X for the
				// histogram phase only if the granule barely ran;
				// otherwise mark HTM hopeless here.
				if gl.stageExecs[si].Load() >= int64(p.cfg.PhaseExecs)/4 {
					gl.xByProg[st.prog].Store(0)
					p.obsEvent(g.lock, obs.Event{
						Kind: obs.EventXChosen, Lock: g.lock.name,
						Granule: granEventLabel(og), Stage: st.String(),
						Detail: "X=0 (HTM hopeless: no success in discovery)",
					})
					continue
				}
				maxA = p.cfg.InitialX - p.cfg.XSlack
			}
			gl.xByProg[st.prog].Store(int32(maxA + p.cfg.XSlack))
			p.obsEvent(g.lock, obs.Event{
				Kind: obs.EventXChosen, Lock: g.lock.name,
				Granule: granEventLabel(og), Stage: st.String(),
				Detail: fmt.Sprintf("X=%d (discovery cap: max attempts %d + slack %d)",
					maxA+p.cfg.XSlack, maxA, p.cfg.XSlack),
			})
		}
	case stageHistogram:
		for _, og := range grans {
			gl := p.granData(og)
			p.chooseX(og, gl, si, st.prog)
			p.obsEvent(g.lock, obs.Event{
				Kind: obs.EventXChosen, Lock: g.lock.name,
				Granule: granEventLabel(og), Stage: st.String(),
				Detail: fmt.Sprintf("X=%d (histogram cost model)", gl.xByProg[st.prog].Load()),
			})
		}
	case stageMeasure:
		if p.stages[si+1].kind == stageCustom {
			// Leaving the last measurement phase: pick each granule's
			// best progression by measured mean execution time.
			for _, og := range grans {
				gl := p.granData(og)
				gl.bestProg.Store(int32(p.bestProgFor(gl)))
			}
		}
	case stageCustom:
		// Use the per-granule choices only if the custom mixture beat
		// every uniform progression; otherwise pick the best uniform one
		// for all granules (paper, end of section 4.2).
		bestProg, bestTime := p.bestUniform()
		customTime := p.lockTime[si].Mean()
		p.uniformProg.Store(int32(bestProg))
		p.useCustom.Store(customTime > 0 && (bestTime == 0 || customTime < bestTime))
		verdict := fmt.Sprintf("uniform %s (custom mean %v vs uniform mean %v)",
			bestProg, customTime, bestTime)
		if p.useCustom.Load() {
			verdict = fmt.Sprintf("custom per-granule progressions (mean %v vs best uniform %s %v)",
				customTime, bestProg, bestTime)
		}
		p.obsEvent(g.lock, obs.Event{
			Kind: obs.EventVerdict, Lock: g.lock.name,
			Stage: st.String(), Detail: verdict,
		})
	}
	p.cur.Store(int32(si + 1))
	p.obsEvent(g.lock, obs.Event{
		Kind: obs.EventPhaseEnter, Lock: g.lock.name,
		Stage:  p.stages[si+1].String(),
		Detail: "from " + st.String(),
	})
}

// bestProgFor returns the progression with the lowest measured mean time
// for this granule; progressions without timing samples lose to ones with.
func (p *AdaptivePolicy) bestProgFor(gl *granLearn) progression {
	best := progLock
	var bestT time.Duration
	for pr := progression(0); pr < numProgs; pr++ {
		mi := p.measureIdx[pr]
		if mi < 0 {
			continue
		}
		if pr.hasHTM() && gl.xByProg[pr].Load() <= 0 {
			continue // HTM learned hopeless for this granule
		}
		t := gl.timeByStage[mi].Mean()
		if t == 0 {
			continue
		}
		if bestT == 0 || t < bestT {
			best, bestT = pr, t
		}
	}
	return best
}

// bestUniform returns the uniform progression with the lowest lock-level
// measured mean time.
func (p *AdaptivePolicy) bestUniform() (progression, time.Duration) {
	best := progLock
	var bestT time.Duration
	for pr := progression(0); pr < numProgs; pr++ {
		mi := p.measureIdx[pr]
		if mi < 0 {
			continue
		}
		t := p.lockTime[mi].Mean()
		if t == 0 {
			continue
		}
		if bestT == 0 || t < bestT {
			best, bestT = pr, t
		}
	}
	return best, bestT
}

// chooseX implements the paper's cost model: using the attempts-to-success
// histogram and timing statistics from the histogram sub-phase, estimate
// the expected execution time for each possible X and keep the minimum.
// The time of an execution whose X attempts all fail is interpolated
// linearly between a lower bound (time measured after failing the maximum
// number of attempts) and an upper bound (time measured when HTM was not
// attempted, i.e. in the Lock or SWOpt+Lock phase).
func (p *AdaptivePolicy) chooseX(g *Granule, gl *granLearn, si int, pr progression) {
	h := gl.hist[si]
	if h == nil {
		return
	}
	total := h.Total()
	if total == 0 {
		return // nothing learned; keep the discovery cap
	}
	xcap := int(gl.xByProg[pr].Load())
	if xcap <= 0 {
		return // already learned hopeless
	}
	if xcap >= h.Len() {
		xcap = h.Len() - 1
	}

	tSucc := gl.modeTime[si][ModeHTM].Mean()
	lower := p.fallbackMean(gl, si, pr)
	upper := p.noHTMMean(gl, pr)
	if tSucc == 0 {
		tSucc = lower / 2 // no timing sample; any monotone guess works
	}
	if upper == 0 {
		upper = lower
	}
	if lower == 0 {
		lower = upper
	}
	if lower == 0 && upper == 0 {
		return // no timing at all; keep the cap
	}

	// perAttempt approximates the cost of one failed HTM attempt so that
	// larger X values are charged for their burned retries.
	perAttempt := tSucc / 2
	if perAttempt == 0 {
		perAttempt = time.Microsecond
	}

	gl.xByProg[pr].Store(int32(costModelX(h.Bucket, total, xcap, tSucc, lower, upper, perAttempt)))
}

// costModelX is the cost-model minimization at the heart of chooseX,
// extracted so it can be tested and fuzzed in isolation: pick the attempt
// budget x in [1, xcap] minimizing the expected execution time. bucket(a)
// is the number of observed executions that needed exactly a HTM attempts
// to succeed; total the number of observations.
//
// The statistics it consumes are racy by design (concurrently updated
// counters, sampled timings), so no input combination — zero or
// inconsistent totals, zero, negative, or absurd times — may panic, and
// the result must always stay in [1, xcap]. A NaN or infinite candidate
// cost (degenerate float arithmetic) loses every comparison and is
// thereby ignored.
func costModelX(bucket func(int) uint64, total uint64, xcap int,
	tSucc, lower, upper, perAttempt time.Duration) int {
	if xcap < 1 {
		return 1
	}
	bestX := xcap
	bestCost := math.Inf(1)
	var succ uint64
	for x := 1; x <= xcap; x++ {
		succ += bucket(x)
		var pSucc float64
		if total > 0 {
			pSucc = float64(succ) / float64(total)
		}
		// Linear interpolation of the non-HTM completion time: x = xcap
		// hits the measured lower bound, x = 0 would hit the upper bound.
		fall := float64(lower) + float64(upper-lower)*float64(xcap-x)/float64(xcap)
		cost := pSucc*float64(tSucc) + (1-pSucc)*(float64(x)*float64(perAttempt)+fall)
		if cost < bestCost {
			bestX, bestCost = x, cost
		}
	}
	return bestX
}

// fallbackMean is the measured mean time of executions in stage si that
// fell through to a non-HTM mode (the cost model's lower bound).
func (p *AdaptivePolicy) fallbackMean(gl *granLearn, si int, pr progression) time.Duration {
	if pr.hasSWOpt() {
		if t := gl.modeTime[si][ModeSWOpt].Mean(); t > 0 {
			return t
		}
	}
	return gl.modeTime[si][ModeLock].Mean()
}

// noHTMMean is the measured mean time of the corresponding progression
// without HTM (the cost model's upper bound): SWOpt+Lock for
// HTM+SWOpt+Lock, plain Lock for HTM+Lock.
func (p *AdaptivePolicy) noHTMMean(gl *granLearn, pr progression) time.Duration {
	var ref progression
	if pr == progAll {
		ref = progSL
	} else {
		ref = progLock
	}
	mi := p.measureIdx[ref]
	if mi < 0 {
		return 0
	}
	return gl.timeByStage[mi].Mean()
}

var _ Policy = (*AdaptivePolicy)(nil)
