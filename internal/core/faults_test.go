package core

import (
	"errors"
	"sync/atomic"
	"testing"

	"repro/internal/locks"
	"repro/internal/tm"
)

// stubFaults is a minimal deterministic FaultHooks: force the next failN
// validations to fail, count the stretch invocations.
type stubFaults struct {
	failN       atomic.Int64
	stretchConf atomic.Int64
	stretchLock atomic.Int64
}

func (s *stubFaults) ForceValidateFail() bool { return s.failN.Add(-1) >= 0 }
func (s *stubFaults) StretchConflicting()     { s.stretchConf.Add(1) }
func (s *stubFaults) StretchLockHold()        { s.stretchLock.Add(1) }

var errStale = errors.New("validation failed")

// TestFaultHooksForceValidateFail checks that an installed hook makes
// ec.Validate report failure exactly as a real conflict would — the body
// sees false, reports staleness, and the caller's retry succeeds once the
// injection window passes.
func TestFaultHooksForceValidateFail(t *testing.T) {
	faults := &stubFaults{}
	faults.failN.Store(3)
	opts := DefaultOptions()
	opts.Faults = faults
	rt := NewRuntimeOpts(tm.NewDomain(htmProfile()), opts)
	d := rt.Domain()
	lock := rt.NewLock("vf", locks.NewTATAS(d), NewLockOnly())
	m := lock.NewMarker()
	cell := d.NewVar(42)
	cs := &CS{
		Scope: NewScope("vf.read"),
		Body: func(ec *ExecCtx) error {
			v := m.Version()
			got := ec.Load(cell)
			if !ec.Validate(m, v) {
				return errStale
			}
			if got != 42 {
				t.Errorf("validated load = %d, want 42", got)
			}
			return nil
		},
	}
	thr := rt.NewThread()
	for i := 1; i <= 3; i++ {
		if err := lock.Execute(thr, cs); err != errStale {
			t.Fatalf("execute %d: err = %v, want forced %v", i, err, errStale)
		}
	}
	if err := lock.Execute(thr, cs); err != nil {
		t.Fatalf("post-window execute: %v (injection must stop when the script runs out)", err)
	}
}

// TestFaultHooksStretches checks that the two stretch hooks fire once per
// site — StretchLockHold per Lock-mode acquisition, StretchConflicting per
// EndConflicting — and that stretching never corrupts results.
func TestFaultHooksStretches(t *testing.T) {
	faults := &stubFaults{}
	opts := DefaultOptions()
	opts.Faults = faults
	rt := NewRuntimeOpts(tm.NewDomain(htmProfile()), opts)
	f := newPairFixture(rt, NewLockOnly())
	thr := rt.NewThread()
	const n = 25
	for i := 0; i < n; i++ {
		if err := f.lock.Execute(thr, f.writeCS); err != nil {
			t.Fatal(err)
		}
	}
	if a, b := f.a.LoadDirect(), f.b.LoadDirect(); a != n || b != n {
		t.Errorf("pair = (%d, %d), want (%d, %d)", a, b, n, n)
	}
	if got := faults.stretchLock.Load(); got != n {
		t.Errorf("StretchLockHold fired %d times, want %d (once per lock attempt)", got, n)
	}
	if got := faults.stretchConf.Load(); got != n {
		t.Errorf("StretchConflicting fired %d times, want %d (once per EndConflicting)", got, n)
	}
}

// TestFaultHooksHTMModeUnaffected checks the engine-level hooks do not
// fire on HTM-mode paths that never take the lock or validate: HTM-mode
// failure injection belongs to tm.Injector, not FaultHooks.
func TestFaultHooksHTMModeUnaffected(t *testing.T) {
	faults := &stubFaults{}
	opts := DefaultOptions()
	opts.Faults = faults
	rt := NewRuntimeOpts(tm.NewDomain(htmProfile()), opts)
	f := newPairFixture(rt, NewStatic(10, 0))
	thr := rt.NewThread()
	for i := 0; i < 10; i++ {
		if err := f.lock.Execute(thr, f.readCS); err != nil {
			t.Fatal(err)
		}
	}
	if got := faults.stretchLock.Load(); got != 0 {
		t.Errorf("StretchLockHold fired %d times on an uncontended HTM workload", got)
	}
}
