package core

import (
	"sort"
	"sync"
	"time"

	"repro/internal/locks"
	"repro/internal/snzi"
	"repro/internal/stats"
	"repro/internal/tm"
)

// Lock is an ALE-enabled lock: the program's lock (any locks.Ops) plus the
// metadata the library keeps for it — the granule table, the SWOpt-retry
// SNZI driving the grouping mechanism, the transactional SWOpt-activity
// indicator driving marker-bump elision, and the policy instance that picks
// execution modes.
//
// Create with Runtime.NewLock. All methods are safe for concurrent use;
// Execute additionally needs the calling goroutine's Thread.
type Lock struct {
	rt     *Runtime
	id     uint32 // creation sequence number, used as the trace lock id
	name   string
	ops    locks.Ops
	policy Policy

	allowHTM   bool
	allowSWOpt bool

	// grans is the hash-partitioned granule index (see granTable): one
	// stripe per domain commit-clock shard, lock-free pinned reads,
	// per-stripe creation, epoch-reclaimed segments.
	grans    *granTable
	granMu   sync.Mutex
	granList []*Granule

	// swoptRetry tracks threads whose SWOpt attempt for this lock failed
	// and are retrying (grouping, paper section 4.2). Slot = thread id.
	// Striped one SNZI tree per domain shard: thread id picks the stripe,
	// so on a sharded domain concurrent arrivals spread over disjoint
	// roots instead of funnelling through one cache line at peak retry
	// pressure.
	swoptRetry *snzi.Striped

	// swoptActive counts threads currently executing a SWOpt path for
	// this lock. It lives in a tm.Var so an HTM execution can subscribe
	// to it transactionally: eliding a marker bump is safe exactly
	// because a SWOpt arrival after the subscription aborts the
	// transaction (COULD_SWOPT_BE_RUNNING, paper section 3.3).
	swoptActive *tm.Var
}

// NewLock wraps ops as an ALE-enabled lock. name appears in reports.
// policy decides execution modes; use NewStatic, NewAdaptive, or
// NewLockOnly (the "Instrumented" baseline).
func (rt *Runtime) NewLock(name string, ops locks.Ops, policy Policy) *Lock {
	l := &Lock{
		rt:          rt,
		name:        name,
		ops:         ops,
		policy:      policy,
		allowHTM:    true,
		allowSWOpt:  true,
		grans:       newGranTable(rt, rt.dom.NumShards()),
		swoptRetry:  snzi.NewStriped(rt.dom.NumShards(), 16),
		swoptActive: rt.dom.NewVar(0),
	}
	rt.register(l)
	return l
}

// Name returns the lock's report name.
func (l *Lock) Name() string { return l.name }

// Ops returns the underlying lock.
func (l *Lock) Ops() locks.Ops { return l.ops }

// Policy returns the lock's policy instance.
func (l *Lock) Policy() Policy { return l.policy }

// SetModes sets the program-level master switches for the elision modes
// (the paper's per-lock enablement: "unless the programmer explicitly
// prohibits one or both"). Both default to enabled.
func (l *Lock) SetModes(allowHTM, allowSWOpt bool) {
	l.allowHTM = allowHTM
	l.allowSWOpt = allowSWOpt
}

// ShareElisionState makes l share other's SWOpt-retry SNZI and SWOpt
// activity indicator. The two Ops views of one physical readers-writer
// lock are registered as two ALE locks (their conflict semantics differ),
// but they are one lock as far as the paper's grouping and
// COULD_SWOPT_BE_RUNNING mechanisms are concerned: a whole-DB operation on
// the write side must defer to SWOpt retries on the read side and must see
// read-side SWOpt activity. Call once, before any Execute on either lock.
func (l *Lock) ShareElisionState(other *Lock) {
	l.swoptRetry = other.swoptRetry
	l.swoptActive = other.swoptActive
}

// SWOptCouldBeRunning reports whether some thread may currently be
// executing a SWOpt path for this lock (possibly conservatively) — the
// paper's COULD_SWOPT_BE_RUNNING.
func (l *Lock) SWOptCouldBeRunning() bool {
	return l.swoptActive.LoadDirect() > 0
}

// Granules returns a snapshot of the lock's granules in creation order.
func (l *Lock) Granules() []*Granule {
	l.granMu.Lock()
	defer l.granMu.Unlock()
	out := make([]*Granule, len(l.granList))
	copy(out, l.granList)
	return out
}

// granule returns (creating if needed) the granule for a context hash.
// This is the table's locked path — it probes under the stripe mutex, so
// it needs no epoch pin; threads resolve existing granules through the
// pinned lock-free lookup first (Thread.granuleFor) and only land here on
// a genuine miss.
func (l *Lock) granule(ctxHash uint64, label string) *Granule {
	g, created := l.grans.insert(ctxHash, func() *Granule {
		return &Granule{lock: l, ctxHash: ctxHash, label: label}
	})
	if created {
		l.granMu.Lock()
		l.granList = append(l.granList, g)
		sort.Slice(l.granList, func(i, j int) bool { return l.granList[i].label < l.granList[j].label })
		l.granMu.Unlock()
	}
	return g
}

// Granule holds the statistics and profiling information the library
// collects for one (lock, context) pair (paper section 3.4), plus room for
// policy-private learning state.
type Granule struct {
	lock    *Lock
	ctxHash uint64
	label   string

	execs     stats.ExactCounter // completed executions
	attempts  [NumModes]stats.Counter
	successes [NumModes]stats.Counter
	aborts    [tm.NumAbortReasons]stats.Counter
	timeBy    [NumModes]stats.TimeStat
	lockHeld  stats.Counter // HTM aborts attributed to lock acquisition

	// Wasted-time attribution, recorded only when Options.Timing is on
	// (the contention profiler's raw data; see Runtime.ContentionProfiles).
	// Every field is cumulative nanoseconds via the CAS-merged TimeStat.
	wastedHTM   [tm.NumAbortReasons]stats.TimeStat // aborted HTM attempts (incl. pre-attempt spin), by reason
	wastedSWOpt stats.TimeStat                     // failed SWOpt attempts
	lockWait    stats.TimeStat                     // Lock-mode attempt start to acquisition (incl. group wait)
	groupWaitT  stats.TimeStat                     // grouping-mechanism deferrals
	holdTime    stats.TimeStat                     // Lock-mode acquisition to just after release

	// policyData is private learning state; only the lock's policy
	// touches it (no locking needed beyond what the policy does itself).
	policyData any
	policyOnce sync.Once
}

// Label returns the granule's context label (joined scope labels).
func (g *Granule) Label() string { return g.label }

// LockName returns the owning lock's name.
func (g *Granule) LockName() string { return g.lock.name }

// Execs returns the number of completed critical-section executions.
func (g *Granule) Execs() uint64 { return g.execs.Read() }

// Attempts returns the (statistical) number of attempts in mode m.
func (g *Granule) Attempts(m Mode) uint64 { return g.attempts[m].Read() }

// Successes returns the (statistical) number of successes in mode m.
func (g *Granule) Successes(m Mode) uint64 { return g.successes[m].Read() }

// Aborts returns the (statistical) number of HTM aborts with reason r.
func (g *Granule) Aborts(r tm.AbortReason) uint64 { return g.aborts[r].Read() }

// LockHeldAborts returns aborts attributed to concurrent lock acquisition.
func (g *Granule) LockHeldAborts() uint64 { return g.lockHeld.Read() }

// MeanTime returns the mean sampled execution time for executions that
// completed in mode m (0 if never sampled).
func (g *Granule) MeanTime(m Mode) time.Duration { return g.timeBy[m].Mean() }

// WastedHTMTimeBy returns the cumulative time burned in aborted HTM
// attempts with reason r (always 0 unless Options.Timing is on).
func (g *Granule) WastedHTMTimeBy(r tm.AbortReason) time.Duration { return g.wastedHTM[r].Sum() }

// WastedHTMTime returns the cumulative time burned in aborted HTM
// attempts, all reasons together.
func (g *Granule) WastedHTMTime() time.Duration {
	var t time.Duration
	for r := range g.wastedHTM {
		t += g.wastedHTM[r].Sum()
	}
	return t
}

// WastedSWOptTime returns the cumulative time burned in failed SWOpt
// attempts.
func (g *Granule) WastedSWOptTime() time.Duration { return g.wastedSWOpt.Sum() }

// LockWaitTime returns the cumulative time Lock-mode attempts spent
// between starting and holding the lock (group deferral + acquisition).
func (g *Granule) LockWaitTime() time.Duration { return g.lockWait.Sum() }

// GroupWaitTime returns the cumulative time executions deferred to
// retrying SWOpt groups. These waits also appear inside the abort-work /
// lock-wait windows they delayed; see GranuleProfile.Wasted.
func (g *Granule) GroupWaitTime() time.Duration { return g.groupWaitT.Sum() }

// HoldTime returns the cumulative time Lock-mode executions held the
// underlying lock.
func (g *Granule) HoldTime() time.Duration { return g.holdTime.Sum() }

// TimeSamples returns how many executions completing in mode m were timed.
func (g *Granule) TimeSamples(m Mode) uint64 { return g.timeBy[m].Count() }

// ExecRecord summarizes one completed critical-section execution for the
// policy's Done hook.
type ExecRecord struct {
	// FinalMode is the mode the execution finally succeeded in.
	FinalMode Mode
	// HTMAttempts and SWOptAttempts count failed+successful attempts in
	// each elision mode during this execution.
	HTMAttempts   int
	SWOptAttempts int
	// LockHeldAborts counts HTM aborts attributed to lock acquisitions.
	LockHeldAborts int
	// AbortMask has bit r set if the execution suffered at least one HTM
	// abort with tm.AbortReason r (exemplar attribution; reasons are
	// small, so a uint16 covers them all).
	AbortMask uint16
	// Duration is the measured wall time of the whole execution, or 0 if
	// this execution was not sampled for timing.
	Duration time.Duration
}

// Plan is a policy's decision for one execution: whether and how many times
// to attempt each elision mode before falling through to the next (the
// paper's X and Y parameters). The engine runs up to X HTM attempts, then
// up to Y SWOpt attempts, then acquires the lock.
type Plan struct {
	UseHTM   bool
	X        int
	UseSWOpt bool
	Y        int
}

// Policy decides execution modes (paper section 4.2). Implementations must
// be safe for concurrent use; one instance serves one Lock.
type Policy interface {
	// Name identifies the policy in reports ("Static-10:10", "Adaptive").
	Name() string
	// Plan returns the attempt budget for one execution on granule g.
	// eligHTM/eligSWOpt report which elision modes are possible right now
	// (platform support, CS capabilities, nesting rules); the engine
	// ignores a mode the plan requests but eligibility forbids.
	Plan(g *Granule, eligHTM, eligSWOpt bool) Plan
	// Done is invoked after every completed execution.
	Done(g *Granule, rec *ExecRecord)
}
