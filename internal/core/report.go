package core

import (
	"fmt"
	"io"
	"strings"
	"text/tabwriter"

	"repro/internal/obs"
	"repro/internal/tm"
)

// WriteReport renders the library's statistics and profiling information —
// the reports the paper describes in section 3.4, "useful in their own
// right": per-(lock, context) execution counts, attempts and successes per
// mode, mean execution times, and the HTM abort breakdown. Even a program
// that never enables HTM or SWOpt modes gets guidance from this about
// which critical sections are worth optimizing.
//
// Quiescence: the per-granule statistics (internal/stats counters) are
// bumped by worker threads without synchronization beyond their own atomic
// stripes, so WriteReport must only run after every worker has finished its
// critical sections — typically after the workload's WaitGroup completes.
// Calling it while workers are still executing yields torn (but memory-safe)
// numbers. The one exception is the live-totals header: when Options.Obs is
// attached it is taken as an obs.Snapshot — a consistent point-in-time
// atomic read of every thread shard — and is safe to render concurrently
// with running workers (that is what the obs HTTP handler and sampler do).
func (rt *Runtime) WriteReport(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "ALE statistics report — platform %s\n", rt.dom.Profile())
	if c := rt.opts.Obs; c != nil {
		s := c.Snapshot()
		fmt.Fprintf(&b, "live totals: execs=%d elision=%.1f%%", s.Execs(), 100*s.ElisionRate())
		for m := 0; m < obs.NumModes; m++ {
			fmt.Fprintf(&b, " %s=%d/%d", obs.ModeNames[m], s.Successes(uint8(m)), s.Attempts(uint8(m)))
		}
		if n := s.AbortsTotal(); n > 0 {
			fmt.Fprintf(&b, " aborts=%d", n)
		}
		fmt.Fprintln(&b)
	}
	for _, l := range rt.Locks() {
		fmt.Fprintf(&b, "\nlock %q  policy=%s", l.name, l.policy.Name())
		if ap, ok := l.policy.(*AdaptivePolicy); ok {
			fmt.Fprintf(&b, "  state=%s", ap.FinalChoice())
		}
		fmt.Fprintln(&b)
		tw := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "  context\texecs\tHTM att/succ\tSWOpt att/succ\tLock\tmean HTM\tmean SWOpt\tmean Lock\tlock-held aborts")
		for _, g := range l.Granules() {
			label := g.label
			if label == "" {
				label = "(root)"
			}
			fmt.Fprintf(tw, "  %s\t%d\t%d/%d\t%d/%d\t%d\t%v\t%v\t%v\t%d\n",
				label, g.Execs(),
				g.Attempts(ModeHTM), g.Successes(ModeHTM),
				g.Attempts(ModeSWOpt), g.Successes(ModeSWOpt),
				g.Successes(ModeLock),
				g.MeanTime(ModeHTM), g.MeanTime(ModeSWOpt), g.MeanTime(ModeLock),
				g.LockHeldAborts())
		}
		if err := tw.Flush(); err != nil {
			return err
		}
		// Abort breakdown across granules.
		var byReason [tm.NumAbortReasons]uint64
		any := false
		for _, g := range l.Granules() {
			for r := 0; r < tm.NumAbortReasons; r++ {
				n := g.Aborts(tm.AbortReason(r))
				byReason[r] += n
				if n > 0 && tm.AbortReason(r) != tm.AbortNone {
					any = true
				}
			}
		}
		if any {
			fmt.Fprint(&b, "  HTM aborts:")
			for r := 1; r < tm.NumAbortReasons; r++ {
				if byReason[r] > 0 {
					fmt.Fprintf(&b, " %s=%d", tm.AbortReason(r), byReason[r])
				}
			}
			fmt.Fprintln(&b)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// ReportString is WriteReport into a string (convenience for tests and
// examples).
func (rt *Runtime) ReportString() string {
	var b strings.Builder
	_ = rt.WriteReport(&b)
	return b.String()
}
