package core

import (
	"testing"
	"time"

	"repro/internal/tm"
)

// White-box tests for the adaptive policy's X-selection cost model
// (section 4.2): feed synthetic histograms and timing statistics into
// chooseX and check the chosen retry budget.

// newCostFixture builds a policy + granule whose learning state can be
// populated by hand, positioned at the histogram stage for progHL.
func newCostFixture(t *testing.T) (*AdaptivePolicy, *Granule, *granLearn, int) {
	t.Helper()
	rt := NewRuntime(tm.NewDomain(htmProfile()))
	pol := NewAdaptiveCfg(AdaptiveConfig{PhaseExecs: 1000, InitialX: 16, XSlack: 2, BigY: 100})
	f := newPairFixture(rt, pol)
	thr := rt.NewThread()
	// One execution forces schedule construction and granule creation.
	if err := f.lock.Execute(thr, f.writeCS); err != nil {
		t.Fatal(err)
	}
	g := granByLabel(t, f.lock, "pair.Write")
	gl := pol.granData(g)
	hi := pol.histIdx[progHL]
	if hi < 0 {
		t.Fatal("no histogram stage for HTM+Lock")
	}
	return pol, g, gl, hi
}

func TestChooseXPrefersSmallXWhenFirstAttemptAlwaysWins(t *testing.T) {
	pol, g, gl, hi := newCostFixture(t)
	gl.xByProg[progHL].Store(10)
	for i := 0; i < 1000; i++ {
		gl.hist[hi].Record(1) // every execution succeeded on attempt 1
	}
	gl.modeTime[hi][ModeHTM].Add(1 * time.Microsecond)
	gl.modeTime[hi][ModeLock].Add(10 * time.Microsecond)
	pol.chooseX(g, gl, hi, progHL)
	if x := gl.xByProg[progHL].Load(); x != 1 {
		t.Errorf("chosen X = %d, want 1 (success always immediate)", x)
	}
}

func TestChooseXPaysForRetriesThatSucceedLate(t *testing.T) {
	pol, g, gl, hi := newCostFixture(t)
	gl.xByProg[progHL].Store(10)
	// Success takes until attempt 5, reliably; fallback is expensive.
	for i := 0; i < 1000; i++ {
		gl.hist[hi].Record(5)
	}
	gl.modeTime[hi][ModeHTM].Add(1 * time.Microsecond)
	gl.modeTime[hi][ModeLock].Add(50 * time.Microsecond)
	pol.chooseX(g, gl, hi, progHL)
	if x := gl.xByProg[progHL].Load(); x < 5 {
		t.Errorf("chosen X = %d, want >= 5 (success needs 5 attempts)", x)
	}
}

func TestChooseXGivesUpQuicklyWhenHTMNeverSucceeds(t *testing.T) {
	pol, g, gl, hi := newCostFixture(t)
	gl.xByProg[progHL].Store(10)
	for i := 0; i < 1000; i++ {
		gl.hist[hi].Record(0) // bucket 0 = never succeeded in HTM
	}
	gl.modeTime[hi][ModeLock].Add(5 * time.Microsecond)
	// The no-HTM upper bound: fast — retries only waste time.
	mi := pol.measureIdx[progLock]
	gl.timeByStage[mi].Add(5 * time.Microsecond)
	pol.chooseX(g, gl, hi, progHL)
	if x := gl.xByProg[progHL].Load(); x != 1 {
		t.Errorf("chosen X = %d, want 1 (HTM hopeless: minimum budget)", x)
	}
}

func TestChooseXBalancesMixedHistogram(t *testing.T) {
	pol, g, gl, hi := newCostFixture(t)
	gl.xByProg[progHL].Store(12)
	// 70% succeed on attempt 1, 20% on attempt 2, 10% never.
	for i := 0; i < 700; i++ {
		gl.hist[hi].Record(1)
	}
	for i := 0; i < 200; i++ {
		gl.hist[hi].Record(2)
	}
	for i := 0; i < 100; i++ {
		gl.hist[hi].Record(0)
	}
	gl.modeTime[hi][ModeHTM].Add(1 * time.Microsecond)
	gl.modeTime[hi][ModeLock].Add(8 * time.Microsecond)
	pol.chooseX(g, gl, hi, progHL)
	x := gl.xByProg[progHL].Load()
	if x < 2 || x > 12 {
		t.Errorf("chosen X = %d, want within [2, 12] for a mixed histogram", x)
	}
}

func TestChooseXNoDataKeepsCap(t *testing.T) {
	pol, g, gl, hi := newCostFixture(t)
	gl.xByProg[progHL].Store(7)
	pol.chooseX(g, gl, hi, progHL) // empty histogram: nothing learned
	if x := gl.xByProg[progHL].Load(); x != 7 {
		t.Errorf("chosen X = %d, want the untouched cap 7", x)
	}
}

func TestChooseXRespectsHopelessMark(t *testing.T) {
	pol, g, gl, hi := newCostFixture(t)
	gl.xByProg[progHL].Store(0) // discovery already marked hopeless
	gl.hist[hi].Record(1)
	pol.chooseX(g, gl, hi, progHL)
	if x := gl.xByProg[progHL].Load(); x != 0 {
		t.Errorf("chosen X = %d, want 0 preserved", x)
	}
}

// TestNamedCSIdiom reproduces the paper's BEGIN_CS_NAMED example: the same
// body executed under condition-specific scopes gets per-condition
// granules, so the policy can adapt each case separately.
func TestNamedCSIdiom(t *testing.T) {
	rt := NewRuntime(tm.NewDomain(htmProfile()))
	f := newPairFixture(rt, NewLockOnly())
	thr := rt.NewThread()
	body := f.writeCS.Body
	csTrue := &CS{Scope: NewScope("condition is true"), Body: body, Conflicting: true}
	csFalse := &CS{Scope: NewScope("condition is false"), Body: body, Conflicting: true}
	for i := 0; i < 30; i++ {
		cs := csFalse
		if i%3 == 0 {
			cs = csTrue
		}
		if err := f.lock.Execute(thr, cs); err != nil {
			t.Fatal(err)
		}
	}
	byLabel := map[string]uint64{}
	for _, g := range f.lock.Granules() {
		byLabel[g.Label()] = g.Execs()
	}
	if byLabel["condition is true"] != 10 || byLabel["condition is false"] != 20 {
		t.Errorf("granule split = %v, want 10/20", byLabel)
	}
}
