package core

import (
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/locks"
	"repro/internal/tm"
)

func driftCfg() DriftConfig {
	return DriftConfig{
		Adaptive:   AdaptiveConfig{PhaseExecs: 100, InitialX: 10, XSlack: 2, BigY: 200},
		Window:     300,
		Factor:     3.0,
		MinSamples: 50,
		MinDelta:   2 * time.Microsecond,
		Cooldown:   100,
	}
}

// fakeClock is the virtual clock the drift tests measure with: the
// workload advances it explicitly, so measured durations depend only on
// which paths executed — never on scheduler load or wall time
// (docs/TESTING.md). Atomic because the engine may read it from timed
// paths while a test goroutine advances it.
type fakeClock struct{ ns atomic.Int64 }

func (c *fakeClock) now() time.Time          { return time.Unix(0, c.ns.Load()) }
func (c *fakeClock) advance(d time.Duration) { c.ns.Add(int64(d)) }

// driftFixture builds a CS whose cost profile can be flipped at runtime:
// in phase 0 the exclusive path is slow (SWOpt should win); in phase 1 the
// SWOpt path always fails (Lock should win). Timing is fully sampled and
// measured on the fixture's virtual clock: the SWOpt path costs 1µs, the
// exclusive path 50µs, deterministically.
type driftFixture struct {
	rt    *Runtime
	lock  *Lock
	pol   *DriftPolicy
	phase atomic.Int32
	cs    *CS
	clock *fakeClock
}

func newDriftFixture(t *testing.T) *driftFixture {
	t.Helper()
	f := &driftFixture{pol: NewDriftCfg(driftCfg()), clock: &fakeClock{}}
	opts := DefaultOptions()
	opts.SampleAllTimings = true
	opts.Clock = f.clock.now
	rt := NewRuntimeOpts(tm.NewDomain(noHTMProfile()), opts)
	d := rt.Domain()
	f.rt = rt
	f.lock = rt.NewLock("L", locks.NewTATAS(d), f.pol)
	v := d.NewVar(0)
	f.cs = &CS{
		Scope:    NewScope("cs"),
		HasSWOpt: true,
		Body: func(ec *ExecCtx) error {
			if ec.InSWOpt() {
				f.clock.advance(time.Microsecond)
				if f.phase.Load() == 1 {
					return ec.SWOptFail() // SWOpt stopped working
				}
				_ = ec.Load(v)
				return nil
			}
			f.clock.advance(50 * time.Microsecond)
			_ = ec.Load(v)
			return nil
		},
	}
	return f
}

func TestDriftPolicyRelearnsOnWorkloadChange(t *testing.T) {
	f := newDriftFixture(t)
	thr := f.rt.NewThread()
	run := func(n int) {
		t.Helper()
		for i := 0; i < n; i++ {
			if err := f.lock.Execute(thr, f.cs); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Phase 0: learn (3 stages x 100) + settle + establish a baseline
	// window. SWOpt is fast, exclusive is slow: the learner picks SWOpt.
	run(1500)
	if !f.pol.Inner().Settled() {
		t.Fatalf("not settled; stage = %s", f.pol.Inner().StageName())
	}
	if got := f.pol.Relearns(); got != 0 {
		t.Fatalf("relearned %d times during a stable phase", got)
	}
	g := granByLabel(t, f.lock, "cs")
	if g.Successes(ModeSWOpt) == 0 {
		t.Fatal("phase 0 never used SWOpt")
	}

	// Phase 1: SWOpt paths now always fail, so every execution burns Y
	// retries before the slow exclusive path — mean time explodes, the
	// detector must fire, and the relearned policy must stop choosing
	// SWOpt.
	f.phase.Store(1)
	run(4000)
	if got := f.pol.Relearns(); got == 0 {
		t.Fatal("drift detector never fired after the workload change")
	}
	if !f.pol.Inner().Settled() {
		// Still mid-relearn is acceptable if the run was short; push on.
		run(2000)
	}
	if !f.pol.Inner().Settled() {
		t.Fatalf("did not re-settle; stage = %s", f.pol.Inner().StageName())
	}
	preSW := g.Successes(ModeSWOpt)
	run(500)
	if gain := g.Successes(ModeSWOpt) - preSW; gain > 50 {
		t.Errorf("re-settled policy still attempted SWOpt %d times", gain)
	}
}

func TestDriftPolicyStableWorkloadNoRelearn(t *testing.T) {
	f := newDriftFixture(t)
	thr := f.rt.NewThread()
	for i := 0; i < 5000; i++ {
		if err := f.lock.Execute(thr, f.cs); err != nil {
			t.Fatal(err)
		}
	}
	if got := f.pol.Relearns(); got != 0 {
		t.Errorf("relearned %d times under a stable workload", got)
	}
}

func TestDriftPolicyName(t *testing.T) {
	p := NewDrift()
	if p.Name() != "Adaptive+Drift" {
		t.Errorf("Name = %q", p.Name())
	}
	if p.String() == "" {
		t.Error("empty String()")
	}
}
