package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// DriftConfig tunes the DriftPolicy's change detector.
type DriftConfig struct {
	// Adaptive configures the wrapped learner.
	Adaptive AdaptiveConfig
	// Window is how many settled executions form one observation window.
	Window int
	// Factor is the sensitivity: relearning triggers when a window's mean
	// execution time leaves [baseline/Factor, baseline*Factor], where the
	// baseline is the first settled window.
	Factor float64
	// MinSamples is the minimum number of *timed* executions a window
	// needs before it is compared (sampled timing means most executions
	// carry no measurement).
	MinSamples int
	// MinDelta is an absolute floor: a window only counts as drifted if
	// its mean also differs from the baseline by at least this much.
	// Guards nanosecond-scale baselines against scheduler noise tripping
	// the multiplicative test.
	MinDelta time.Duration
	// Cooldown is how many executions to ignore after a relearn before
	// watching again (lets the new learning phases run undisturbed).
	Cooldown int
}

// DefaultDriftConfig returns a moderately conservative detector.
func DefaultDriftConfig() DriftConfig {
	return DriftConfig{
		Adaptive:   DefaultAdaptiveConfig(),
		Window:     2000,
		Factor:     3.0,
		MinSamples: 20,
		MinDelta:   2 * time.Microsecond,
		Cooldown:   2000,
	}
}

// DriftPolicy implements the paper's future-work direction "adapt to
// workloads that change over time": it wraps an AdaptivePolicy and, once
// the learner has settled, keeps watching the execution-time distribution
// in fixed windows. When a window's mean departs from the settled
// baseline by more than a configurable factor — the signature of a
// workload phase change that invalidates the learned choice — it calls
// Relearn and the lock walks the learning phases again under the new
// workload.
//
// One DriftPolicy instance serves one Lock.
type DriftPolicy struct {
	cfg   DriftConfig
	inner *AdaptivePolicy

	mu        sync.Mutex
	lock      *Lock // captured on first Done for Relearn
	winExecs  int
	winSum    time.Duration
	winCount  int
	baseline  time.Duration
	cooldown  int
	relearned atomic.Uint64
}

// NewDrift creates a drift-aware adaptive policy with default settings.
func NewDrift() *DriftPolicy { return NewDriftCfg(DefaultDriftConfig()) }

// NewDriftCfg creates a drift-aware adaptive policy with explicit settings.
func NewDriftCfg(cfg DriftConfig) *DriftPolicy {
	if cfg.Window < 1 {
		cfg.Window = 1
	}
	if cfg.Factor < 1 {
		cfg.Factor = 1
	}
	if cfg.MinSamples < 1 {
		cfg.MinSamples = 1
	}
	return &DriftPolicy{cfg: cfg, inner: NewAdaptiveCfg(cfg.Adaptive)}
}

// Name identifies the policy in reports.
func (p *DriftPolicy) Name() string { return "Adaptive+Drift" }

// Relearns reports how many drift-triggered relearns have happened.
func (p *DriftPolicy) Relearns() uint64 { return p.relearned.Load() }

// Inner exposes the wrapped adaptive policy (diagnostics).
func (p *DriftPolicy) Inner() *AdaptivePolicy { return p.inner }

// Plan delegates to the wrapped learner.
func (p *DriftPolicy) Plan(g *Granule, eligHTM, eligSWOpt bool) Plan {
	return p.inner.Plan(g, eligHTM, eligSWOpt)
}

// Done delegates to the learner and feeds the drift detector while the
// learner is settled.
func (p *DriftPolicy) Done(g *Granule, rec *ExecRecord) {
	p.inner.Done(g, rec)
	if !p.inner.Settled() {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.lock == nil {
		p.lock = g.lock
	}
	if p.cooldown > 0 {
		p.cooldown--
		return
	}
	p.winExecs++
	if rec.Duration > 0 {
		p.winSum += rec.Duration
		p.winCount++
	}
	if p.winExecs < p.cfg.Window {
		return
	}
	mean := time.Duration(0)
	if p.winCount > 0 {
		mean = p.winSum / time.Duration(p.winCount)
	}
	samples := p.winCount
	p.winExecs, p.winSum, p.winCount = 0, 0, 0
	if samples < p.cfg.MinSamples || mean == 0 {
		return // not enough signal in this window
	}
	if p.baseline == 0 {
		p.baseline = mean // first settled window defines normal
		return
	}
	hi := time.Duration(float64(p.baseline) * p.cfg.Factor)
	lo := time.Duration(float64(p.baseline) / p.cfg.Factor)
	delta := mean - p.baseline
	if delta < 0 {
		delta = -delta
	}
	if (mean > hi || mean < lo) && delta >= p.cfg.MinDelta {
		p.relearned.Add(1)
		p.baseline = 0
		p.cooldown = p.cfg.Cooldown
		p.inner.Relearn(p.lock)
	}
}

// String summarizes detector state (diagnostics).
func (p *DriftPolicy) String() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return fmt.Sprintf("Adaptive+Drift{settled=%v baseline=%v relearns=%d}",
		p.inner.Settled(), p.baseline, p.relearned.Load())
}

var _ Policy = (*DriftPolicy)(nil)
