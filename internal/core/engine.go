package core

import (
	"context"
	"runtime"
	"runtime/pprof"
	"time"

	"repro/internal/locks"
	"repro/internal/obs"
	"repro/internal/stats"
	"repro/internal/tm"
	"repro/internal/trace"
)

// CS describes one critical section to execute under an ALE-enabled lock —
// the information the BEGIN_CS macro family conveys in the paper. Build a
// CS once (its Scope is its static identity) and reuse it across calls.
type CS struct {
	// Scope is the critical section's static scope (mandatory): every
	// BEGIN_CS expansion defines a scope in the paper, and the granule a
	// particular execution charges to is determined by this scope plus
	// the enclosing scopes on the thread's context stack.
	Scope *Scope

	// Body is the critical section. It runs in the mode ExecCtx reports
	// and must route shared-data accesses through the ExecCtx. In SWOpt
	// mode it may return ErrSWOptRetry / ErrSWOptSelfAbort; any other
	// error is treated as an application result and returned from
	// Execute after the section completes.
	Body func(ec *ExecCtx) error

	// HasSWOpt declares that Body contains a software-optimistic path
	// (the BEGIN_CS variant "that specifies that a SWOpt path exists").
	HasSWOpt bool

	// NoHTM forbids HTM mode for this critical section. A hardware
	// transaction that reaches a nested NoHTM critical section aborts
	// (paper section 4.1).
	NoHTM bool

	// Conflicting declares that Body may enter a conflicting region
	// (bump a ConflictMarker). The grouping mechanism makes such
	// executions defer while SWOpt retries are in flight.
	Conflicting bool
}

// Engine tuning constants.
const (
	// lockHeldChargeEvery and maxLockHeldRefunds implement the "much
	// lighter" accounting of lock-acquisition-induced aborts: only every
	// lockHeldChargeEvery-th such abort consumes HTM retry budget, up to
	// maxLockHeldRefunds refunds per execution (bounding the loop).
	lockHeldChargeEvery = 4
	maxLockHeldRefunds  = 64

	// groupWaitBound bounds the grouping mechanism's deferral spin. The
	// bound only matters in pathological schedules; the policy's large Y
	// guarantees progress regardless (paper section 4.2).
	groupWaitBound = 1 << 14

	// capacityGiveUp is how many capacity aborts an execution tolerates
	// before concluding HTM cannot commit this critical section at all
	// (capacity aborts are near-deterministic).
	capacityGiveUp = 2
)

// Execute runs one critical section protected by l, choosing the execution
// mode per attempt according to the lock's policy and the nesting rules of
// paper section 4.1. It returns whatever the body's final (successful)
// invocation returned.
func (l *Lock) Execute(thr *Thread, cs *CS) error {
	if cs.Body == nil {
		panic("ale: CS without a Body")
	}
	if cs.Scope == nil {
		panic("ale: CS without a Scope (every critical section needs a static scope)")
	}

	// Rule 1 (section 4.1): a critical section nested inside a hardware
	// transaction executes in the same transaction, subscribing to its
	// own lock; no frame is pushed (keeping transactions short). If it
	// does not allow HTM, the enclosing transaction must abort.
	if thr.inHTM {
		if cs.NoHTM || !l.allowHTM {
			thr.txn.Abort(tm.AbortNesting)
		}
		if !thr.holds(l) && l.ops.HeldValue(thr.txn.Load(l.ops.Word())) {
			thr.txn.Abort(tm.AbortLockHeld)
		}
		ec := ExecCtx{thr: thr, lock: l, txn: thr.txn, mode: ModeHTM, inv: l.rt.invFor(cs, l, ModeHTM)}
		err := cs.Body(&ec)
		ec.invDone(err)
		return err
	}

	// Rule 2 (section 4.1): the thread already holds this lock — run the
	// body directly under the existing acquisition. SWOpt would have no
	// benefit and is not used.
	if thr.holds(l) {
		ec := ExecCtx{thr: thr, lock: l, mode: ModeLock, inv: l.rt.invFor(cs, l, ModeLock)}
		err := cs.Body(&ec)
		ec.invDone(err)
		return err
	}

	thr.pushScope(cs.Scope)
	g := thr.granuleFor(l, thr.contextTop())

	eligHTM := !cs.NoHTM && l.allowHTM && l.rt.HTMAvailable()
	// Rule 3 (section 4.1): SWOpt is not eligible while already executing
	// in SWOpt mode for a different lock.
	eligSWOpt := cs.HasSWOpt && l.allowSWOpt &&
		(thr.swoptLock == nil || thr.swoptLock == l)

	plan := l.policy.Plan(g, eligHTM, eligSWOpt)
	if !eligHTM {
		plan.UseHTM = false
	}
	if !eligSWOpt {
		plan.UseSWOpt = false
	}

	timed := l.rt.disp.sampleAll || stats.ShouldSample(thr.rng)
	timing := l.rt.disp.timing
	var t0 int64
	var start time.Time
	if timing {
		// The timing layer reads its monotonic clock exactly twice on a
		// conflict-free execution: here and at the end. The sampled
		// granule statistics reuse these reads instead of taking their
		// own.
		t0 = l.rt.disp.nano()
	} else if timed {
		if c := l.rt.disp.clock; c != nil {
			start = c()
		} else {
			start = time.Now()
		}
	}

	// rec lives in the frame, not on Execute's stack: its address is
	// handed to the policy's Done hook (an interface call), which would
	// otherwise force a heap allocation per execution. All access goes
	// through this one pointer, so a nested Execute growing thr.frames
	// (and copying the array) cannot split the record.
	thr.frames = append(thr.frames, frame{lock: l, gran: g})
	fi := len(thr.frames) - 1
	rec := &thr.frames[fi].rec
	err := l.runAttempts(thr, cs, g, plan, rec, fi, t0)

	if timing {
		tEnd := l.rt.disp.nano()
		// Re-take the frame pointer: a nested Execute may have grown (and
		// copied) thr.frames since the append above. tWin/tAcq were
		// written after any such growth or before the copying body ran,
		// so the re-taken view is current.
		fr := &thr.frames[fi]
		d := tEnd - t0
		thr.latRecord(obs.HistExec(uint8(rec.FinalMode)), d)
		thr.latRecord(obs.HistAttemptWaste, fr.tWin-t0)
		if rec.FinalMode == ModeLock {
			// tEnd sits just after the deferred Release, which is what
			// HistLockHold is specified to measure — no extra clock read.
			hold := tEnd - fr.tAcq
			thr.latRecord(obs.HistLockHold, hold)
			g.holdTime.Add(time.Duration(hold))
		}
		if thr.ex != nil {
			// Tail-latency exemplar: reuses the two clock reads above (no
			// extra reads, no allocation — l.name/g.label are interned
			// strings, so the Exemplar copies pointers). Below the table's
			// latency floor this is one atomic load and a branch.
			attempts := rec.HTMAttempts + rec.SWOptAttempts
			if rec.FinalMode == ModeLock {
				attempts++ // the winning Lock acquisition is an attempt too
			}
			thr.ex.Observe(obs.HistExec(uint8(rec.FinalMode)), obs.Exemplar{
				LatNS:     d,
				MonoNS:    tEnd,
				Lock:      l.name,
				Granule:   g.label,
				Mode:      uint8(rec.FinalMode),
				Attempts:  attempts,
				AbortMask: rec.AbortMask,
				WastedNS:  fr.tWin - t0,
				RequestID: thr.reqID,
			})
		}
		if timed {
			rec.Duration = time.Duration(d)
			g.timeBy[rec.FinalMode].Add(rec.Duration)
		}
	} else if timed {
		if c := l.rt.disp.clock; c != nil {
			rec.Duration = c().Sub(start)
		} else {
			rec.Duration = time.Since(start)
		}
		g.timeBy[rec.FinalMode].Add(rec.Duration)
	}
	g.execs.Inc()
	l.policy.Done(g, rec)
	thr.frames = thr.frames[:fi]
	thr.popScope()
	return err
}

// runAttempts is the retry loop implementing the HTM -> SWOpt -> Lock mode
// progression with the plan's budgets. t0 is the timing layer's Execute
// entry timestamp (0 when timing is off); the failure sites below read the
// clock once each and hand the reading to the next attempt as its start,
// so attempt-waste attribution adds exactly one read per failed attempt.
func (l *Lock) runAttempts(thr *Thread, cs *CS, g *Granule, plan Plan, rec *ExecRecord, fi int, t0 int64) error {
	swoptDisabled := false
	arrived := false // this execution has arrived in the SWOpt-retry SNZI
	defer func() {
		if arrived {
			l.swoptRetry.Depart(thr.id)
			thr.snziArrivals--
		}
	}()
	refunds := 0
	capacityAborts := 0
	timing := l.rt.disp.timing
	tAttempt := t0 // current attempt's start on the timing clock

	for {
		switch {
		case plan.UseHTM && rec.HTMAttempts < plan.X:
			rec.HTMAttempts++
			g.attempts[ModeHTM].Inc(thr.rng)
			thr.emit(l, trace.KindAttempt, ModeHTM, 0)
			ok, reason, err := l.htmAttempt(thr, cs, fi)
			if ok {
				g.successes[ModeHTM].Inc(thr.rng)
				if timing {
					thr.frames[fi].tWin = tAttempt
				}
				thr.emitCommit(l, ModeHTM, tAttempt)
				thr.obsAdd(obs.CtrSuccessHTM)
				rec.FinalMode = ModeHTM
				return err
			}
			// Estimate whether the abort was caused by a concurrent lock
			// acquisition (the library "estimates whether a hardware
			// transaction has been aborted due to a concurrent lock
			// acquisition by another thread", section 4).
			if reason == tm.AbortConflict && l.ops.IsLocked() {
				reason = tm.AbortLockHeld
			}
			rec.AbortMask |= 1 << uint(reason)
			g.aborts[reason].Inc(thr.rng)
			var now int64
			if timing {
				now = l.rt.disp.nano()
				g.wastedHTM[reason].Add(time.Duration(now - tAttempt))
			}
			thr.emitSpan(l, trace.KindAbort, ModeHTM, uint8(reason), tAttempt, now)
			if timing {
				tAttempt = now
			}
			thr.obsAdd(obs.CtrAbort(reason))
			switch reason {
			case tm.AbortLockHeld:
				rec.LockHeldAborts++
				g.lockHeld.Inc(thr.rng)
				// Lighter accounting: these aborts say nothing about
				// HTM's suitability, so most of them do not consume
				// retry budget (bounded to avoid livelock).
				if l.rt.disp.lockHeldDiscount && refunds < maxLockHeldRefunds {
					refunds++
					if refunds%lockHeldChargeEvery != 0 {
						rec.HTMAttempts--
					}
				}
			case tm.AbortCapacity:
				capacityAborts++
				if capacityAborts >= capacityGiveUp {
					plan.UseHTM = false // this section cannot fit in HTM
					thr.emit(l, trace.KindFallback, ModeHTM, 0)
					thr.obsAdd(obs.CtrFallback)
				}
			case tm.AbortNesting, tm.AbortDisabled:
				plan.UseHTM = false
				thr.emit(l, trace.KindFallback, ModeHTM, 0)
				thr.obsAdd(obs.CtrFallback)
			}

		case plan.UseSWOpt && !swoptDisabled && rec.SWOptAttempts < plan.Y:
			rec.SWOptAttempts++
			g.attempts[ModeSWOpt].Inc(thr.rng)
			thr.emit(l, trace.KindAttempt, ModeSWOpt, 0)
			err := l.swoptAttempt(thr, cs, fi)
			var now int64
			if timing && (err == ErrSWOptRetry || err == ErrSWOptSelfAbort) {
				now = l.rt.disp.nano()
				d := now - tAttempt
				thr.latRecord(obs.HistSWOptRetry, d)
				g.wastedSWOpt.Add(time.Duration(d))
			}
			switch err {
			case ErrSWOptRetry:
				thr.emitSpan(l, trace.KindSWOptFail, ModeSWOpt, 0, tAttempt, now)
				thr.obsAdd(obs.CtrSWOptFail)
				// Enter the retrying group: conflicting executions will
				// defer until this SWOpt execution gets through.
				if !arrived && l.rt.disp.grouping {
					l.swoptRetry.Arrive(thr.id)
					thr.snziArrivals++
					arrived = true
				}
			case ErrSWOptSelfAbort:
				// The optimistic path reached a conflicting action: retry
				// this execution non-optimistically (section 3.3).
				thr.emitSpan(l, trace.KindSWOptFail, ModeSWOpt, 1, tAttempt, now)
				thr.obsAdd(obs.CtrSWOptFail)
				swoptDisabled = true
			default:
				g.successes[ModeSWOpt].Inc(thr.rng)
				if timing {
					thr.frames[fi].tWin = tAttempt
				}
				thr.emitCommit(l, ModeSWOpt, tAttempt)
				thr.obsAdd(obs.CtrSuccessSWOpt)
				rec.FinalMode = ModeSWOpt
				return err
			}
			if timing {
				tAttempt = now
			}

		default:
			g.attempts[ModeLock].Inc(thr.rng)
			thr.emit(l, trace.KindAttempt, ModeLock, 0)
			var err error
			if timing && (rec.HTMAttempts > 0 || rec.SWOptAttempts > 0) {
				// Contended fallback (elision already failed at least
				// once): label the acquisition for CPU profiles so pprof
				// attributes lock-wait samples to the (lock, context)
				// granule. Only here — the label set allocates, and the
				// uncontended Lock path must stay allocation-free.
				pprof.Do(context.Background(), pprof.Labels(
					"ale_lock", l.name, "ale_ctx", g.label, "ale_mode", "lock",
				), func(context.Context) {
					err = l.lockAttempt(thr, cs, fi, tAttempt)
				})
			} else {
				err = l.lockAttempt(thr, cs, fi, tAttempt)
			}
			g.successes[ModeLock].Inc(thr.rng)
			if timing {
				thr.frames[fi].tWin = tAttempt
			}
			thr.emitCommit(l, ModeLock, tAttempt)
			thr.obsAdd(obs.CtrSuccessLock)
			rec.FinalMode = ModeLock
			return err
		}
	}
}

// htmAttempt runs one hardware-transaction attempt: wait for the lock to be
// free, begin, subscribe to the lock word, run the body, commit. The body
// runs through the thread's pre-bound trampoline (Thread.runHTMBody) so the
// attempt builds no closure.
func (l *Lock) htmAttempt(thr *Thread, cs *CS, fi int) (ok bool, reason tm.AbortReason, userErr error) {
	waitFree(l.ops)
	fr := &thr.frames[fi]
	l.groupWait(thr, cs, fr.gran)
	fr.mode = ModeHTM
	thr.htmLock, thr.htmCS, thr.htmFI, thr.htmErr = l, cs, fi, nil
	committed, abortReason := thr.txn.Run(thr.htmBody)
	thr.inHTM = false
	userErr = thr.htmErr
	thr.htmLock, thr.htmCS, thr.htmErr = nil, nil, nil
	// Mirror timestamp extensions performed during this attempt into the
	// live metrics: each one is a false conflict the substrate absorbed
	// instead of aborting (TL2 extension; see tm.TxnStats.Extensions).
	if n := thr.txn.Extensions(); n != thr.extSeen {
		thr.obsAddN(obs.CtrHTMExtension, n-thr.extSeen)
		thr.extSeen = n
	}
	// Likewise mirror the substrate's abort-work nanoseconds (nonzero only
	// when the timing layer installed a domain nanotime hook).
	if n := thr.txn.AbortNS(); n != thr.abortNSSeen {
		thr.obsAddN(obs.CtrAbortWorkNS, n-thr.abortNSSeen)
		thr.abortNSSeen = n
	}
	// And cross-shard attempts (nonzero only on multi-shard domains):
	// the live view of how much traffic pays the cross-shard
	// read-vector revalidation instead of scaling with the shards.
	if n := thr.txn.CrossShard(); n != thr.crossSeen {
		thr.obsAddN(obs.CtrCrossShard, n-thr.crossSeen)
		thr.crossSeen = n
	}
	if !committed {
		return false, abortReason, nil
	}
	// Note: the SWOpt sentinels are only interpreted by the engine when
	// the body ran in SWOpt mode. Returned from an HTM- or Lock-mode body
	// they propagate to Execute's caller as ordinary application errors —
	// which is exactly what the section 3.3 nested-mutation pattern needs
	// (the nested critical section reports "your optimistic read is stale,
	// retry the whole operation" to the enclosing SWOpt body).
	return true, tm.AbortNone, userErr
}

// swoptAttempt runs one software-optimistic attempt: mark SWOpt activity
// (for COULD_SWOPT_BE_RUNNING) and run the body without the lock.
func (l *Lock) swoptAttempt(thr *Thread, cs *CS, fi int) error {
	fr := &thr.frames[fi]
	fr.mode = ModeSWOpt
	prevLock := thr.swoptLock
	thr.swoptLock = l
	thr.swoptDepth++
	// The activity indicator must rise before the body's first marker
	// read: a conflicting HTM execution that subscribed to the indicator
	// while it was zero is aborted by this bump, which is what makes its
	// marker-bump elision safe.
	l.swoptActive.AddDirect(1)
	defer func() {
		l.swoptActive.AddDirect(^uint64(0)) // -1
		thr.swoptDepth--
		if thr.swoptDepth == 0 {
			thr.swoptLock = nil
		} else {
			thr.swoptLock = prevLock
		}
	}()
	fr.ec = ExecCtx{thr: thr, lock: l, mode: ModeSWOpt, inv: l.rt.invFor(cs, l, ModeSWOpt)}
	err := cs.Body(&fr.ec)
	fr.ec.invDone(err)
	return err
}

// lockAttempt acquires the lock and runs the body — the fallback that
// always succeeds. tAttempt is the attempt's start on the timing clock
// (0 when timing is off); the acquisition timestamp taken here is the
// timing layer's one extra clock read on the Lock-mode success path,
// buying both lock-wait and hold-time attribution.
func (l *Lock) lockAttempt(thr *Thread, cs *CS, fi int, tAttempt int64) error {
	fr := &thr.frames[fi]
	l.groupWait(thr, cs, fr.gran)
	fr.mode = ModeLock
	l.ops.Acquire()
	defer l.ops.Release()
	if l.rt.disp.timing {
		fr.tAcq = l.rt.disp.nano()
		fr.gran.lockWait.Add(time.Duration(fr.tAcq - tAttempt))
	}
	// Stretch while held, before the body: concurrent HTM attempts see
	// AbortLockHeld pressure for the whole stretch.
	if h := l.rt.disp.faults; h != nil {
		h.StretchLockHold()
	}
	fr.ec = ExecCtx{thr: thr, lock: l, mode: ModeLock, inv: l.rt.invFor(cs, l, ModeLock)}
	err := cs.Body(&fr.ec)
	fr.ec.invDone(err)
	return err
}

// groupWait implements the grouping mechanism (section 4.2): an execution
// that may run a conflicting region defers while SWOpt executions for this
// lock are retrying, so the whole optimistic group can complete in
// parallel without interference. A thread that is itself part of a
// retrying group never defers (it would wait for itself).
func (l *Lock) groupWait(thr *Thread, cs *CS, g *Granule) {
	if !cs.Conflicting || !l.rt.disp.grouping || thr.snziArrivals > 0 {
		return
	}
	waited := false
	var tw int64
	for i := 0; l.swoptRetry.Query(); i++ {
		if !waited {
			waited = true
			if l.rt.disp.timing {
				tw = l.rt.disp.nano()
			}
			thr.emit(l, trace.KindGroupWait, ModeLock, 0)
			thr.obsAdd(obs.CtrGroupWait)
		}
		if i >= groupWaitBound {
			break // bounded politeness; Y-large fallback ensures progress
		}
		if i&15 == 15 {
			runtime.Gosched()
		}
	}
	if waited && l.rt.disp.timing {
		// Clock reads only on the (already spinning) deferral path. The
		// wait also sits inside the enclosing attempt's abort-work or
		// lock-wait window; GranuleProfile keeps it out of the Wasted sum.
		d := l.rt.disp.nano() - tw
		thr.latRecord(obs.HistGroupWait, d)
		g.groupWaitT.Add(time.Duration(d))
	}
}

// waitFree spins until the lock appears free (the engine waits before
// starting a transaction so it does not burn an attempt on a held lock).
func waitFree(ops locks.Ops) {
	for i := 0; ops.IsLocked(); i++ {
		if i&15 == 15 {
			runtime.Gosched()
		}
	}
}
