package core

import (
	"strings"
	"testing"

	"repro/internal/locks"
	"repro/internal/tm"
	"repro/internal/trace"
)

func tracedRuntime(prof tm.Profile) *Runtime {
	opts := DefaultOptions()
	opts.TraceCapacity = 1 << 12
	return NewRuntimeOpts(tm.NewDomain(prof), opts)
}

func TestTraceRecordsAttemptsAndCommits(t *testing.T) {
	rt := tracedRuntime(htmProfile())
	f := newPairFixture(rt, NewStatic(5, 0))
	thr := rt.NewThread()
	if thr.Trace() == nil {
		t.Fatal("tracing enabled but no ring")
	}
	for i := 0; i < 20; i++ {
		if err := f.lock.Execute(thr, f.writeCS); err != nil {
			t.Fatal(err)
		}
	}
	events := thr.Trace().Snapshot()
	c := trace.Counts(events)
	if c[trace.KindAttempt] < 20 {
		t.Errorf("attempts traced = %d, want >= 20", c[trace.KindAttempt])
	}
	if c[trace.KindCommit] != 20 {
		t.Errorf("commits traced = %d, want 20", c[trace.KindCommit])
	}
}

func TestTraceRecordsAbortReasons(t *testing.T) {
	p := htmProfile()
	p.SpuriousProb = 1.0
	rt := tracedRuntime(p)
	f := newPairFixture(rt, NewStatic(2, 0))
	thr := rt.NewThread()
	if err := f.lock.Execute(thr, f.writeCS); err != nil {
		t.Fatal(err)
	}
	events := thr.Trace().Snapshot()
	sawSpurious := false
	for _, e := range events {
		if e.Kind == trace.KindAbort && tm.AbortReason(e.Detail) == tm.AbortSpurious {
			sawSpurious = true
		}
	}
	if !sawSpurious {
		t.Error("no spurious abort event traced")
	}
	var sb strings.Builder
	if err := WriteTrace(&sb, thr); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"HTM", "abort", "spurious", "Lock", "commit"} {
		if !strings.Contains(out, want) {
			t.Errorf("timeline missing %q:\n%s", want, out)
		}
	}
}

func TestTraceRecordsSWOptFailures(t *testing.T) {
	rt := tracedRuntime(noHTMProfile())
	d := rt.Domain()
	l := rt.NewLock("L", locks.NewTATAS(d), NewStatic(0, 3))
	tries := 0
	cs := &CS{
		Scope:    NewScope("f"),
		HasSWOpt: true,
		Body: func(ec *ExecCtx) error {
			if ec.InSWOpt() {
				tries++
				if tries < 3 {
					return ec.SWOptFail()
				}
				return ec.SelfAbort()
			}
			return nil
		},
	}
	thr := rt.NewThread()
	if err := l.Execute(thr, cs); err != nil {
		t.Fatal(err)
	}
	c := trace.Counts(thr.Trace().Snapshot())
	if c[trace.KindSWOptFail] != 3 { // 2 plain fails + 1 self-abort
		t.Errorf("SWOpt failures traced = %d, want 3", c[trace.KindSWOptFail])
	}
}

func TestTracingDisabledByDefault(t *testing.T) {
	rt := NewRuntime(tm.NewDomain(htmProfile()))
	thr := rt.NewThread()
	if thr.Trace() != nil {
		t.Error("tracing on without TraceCapacity")
	}
	// WriteTrace over untraced threads renders the empty timeline.
	var sb strings.Builder
	if err := WriteTrace(&sb, thr); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "no events") {
		t.Errorf("untraced render = %q", sb.String())
	}
}
