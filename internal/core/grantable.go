package core

import (
	"sync"
	"sync/atomic"
)

// granTable is a lock's granule index, hash-partitioned into stripes the
// way the domain's commit clock is partitioned into shards (the stripe
// count is the domain's shard count). It replaces the earlier sync.Map:
//
//   - The reader path is one atomic segment-pointer load plus a linear
//     probe over atomic granule pointers — no interface boxing of the
//     uint64 key (sync.Map boxed it on every lookup) and no shared
//     dirty/read promotion machinery.
//
//   - Writers (granule creation, segment growth) serialize per stripe, so
//     two threads minting granules for contexts that hash to different
//     stripes never contend — the same disjointness argument as the
//     per-shard commit clocks.
//
//   - Grown-out segments are retired through the runtime's epoch
//     reclaimer and their slot arrays recycled (Runtime.retireSeg). The
//     recycling is what makes the epochs load-bearing in a GC'd runtime:
//     a reader can be mid-probe in a segment that a concurrent growth
//     just unpublished, and scrubbing + reusing that segment's slots
//     under it would feed the reader another lock's granules. Readers
//     therefore probe under their Thread's epoch pin, and a segment is
//     recycled only after every pin has left the epoch in which it was
//     unpublished.
//
// Entries are never deleted (granules live for the lock's lifetime), so a
// probe may stop at the first nil slot.
type granTable struct {
	rt   *Runtime
	mask uint64 // len(stripes) - 1; stripe count is a power of two

	stripes []granStripe
}

// granStripe is one partition: a published segment for lock-free probes
// and a mutex serializing that partition's inserts and growth. Stripes
// are not cache-padded: the hot field (seg) is read-shared in steady
// state, and the mutable fields move only on granule creation, which is
// rare by construction (the per-thread granule cache absorbs steady-state
// lookups before they even reach the table).
type granStripe struct {
	seg atomic.Pointer[granSeg]
	mu  sync.Mutex
	n   int // live entries, guarded by mu
}

// granSeg is one open-addressed segment: a power-of-two slot array probed
// linearly. The granule's own ctxHash field is the stored key, so an
// empty slot is simply a nil pointer — no sentinel hash value that a real
// context hash could collide with.
type granSeg struct {
	mask  uint64
	slots []atomic.Pointer[Granule]
}

// granSegMinSlots is a fresh stripe's segment capacity.
const granSegMinSlots = 8

// granMix is the Fibonacci multiplier spreading context hashes over
// stripes and slots (the same mixing step tm.Domain.shardOf applies to
// Var addresses).
const granMix = 0x9e3779b97f4a7c15

func newGranTable(rt *Runtime, stripes int) *granTable {
	if stripes < 1 {
		stripes = 1
	}
	t := &granTable{rt: rt, mask: uint64(stripes - 1), stripes: make([]granStripe, stripes)}
	for i := range t.stripes {
		t.stripes[i].seg.Store(&granSeg{
			mask:  granSegMinSlots - 1,
			slots: make([]atomic.Pointer[Granule], granSegMinSlots),
		})
	}
	return t
}

// stripeFor picks the stripe for a context hash from the mixed hash's top
// bits; probe positions use the low bits, so the two choices stay
// uncorrelated.
func (t *granTable) stripeFor(h uint64) *granStripe {
	return &t.stripes[(h>>48)&t.mask]
}

// lookup finds the granule for ctxHash, or nil. Lock-free: callers
// outside a stripe's mutex MUST hold an epoch pin (Thread.granPin) across
// the call, or a concurrent growth could recycle the probed segment's
// slots mid-probe.
func (t *granTable) lookup(ctxHash uint64) *Granule {
	h := ctxHash * granMix
	seg := t.stripeFor(h).seg.Load()
	for i := h & seg.mask; ; i = (i + 1) & seg.mask {
		g := seg.slots[i].Load()
		if g == nil {
			return nil
		}
		if g.ctxHash == ctxHash {
			return g
		}
	}
}

// insert returns the granule for ctxHash, minting it with mk if absent;
// created reports whether mk ran. Only the owning stripe locks, so
// creation storms on distinct stripes proceed in parallel.
func (t *granTable) insert(ctxHash uint64, mk func() *Granule) (g *Granule, created bool) {
	h := ctxHash * granMix
	st := t.stripeFor(h)
	st.mu.Lock()
	defer st.mu.Unlock()
	seg := st.seg.Load()
	// Re-probe under the stripe lock: a racing creator may have won.
	for i := h & seg.mask; ; i = (i + 1) & seg.mask {
		if cur := seg.slots[i].Load(); cur == nil {
			break
		} else if cur.ctxHash == ctxHash {
			return cur, false
		}
	}
	// Grow at 3/4 load so linear probes stay short.
	if uint64(st.n+1)*4 > (seg.mask+1)*3 {
		seg = st.grow(t.rt, seg)
	}
	g = mk()
	seg.place(g, h)
	st.n++
	return g, true
}

// place publishes g into the first free probe slot. Stores are atomic
// because pinned readers probe concurrently; the granule is fully
// constructed before the pointer becomes visible.
func (s *granSeg) place(g *Granule, h uint64) {
	for i := h & s.mask; ; i = (i + 1) & s.mask {
		if s.slots[i].Load() == nil {
			s.slots[i].Store(g)
			return
		}
	}
}

// grow doubles the stripe's segment, publishes the replacement, and
// retires the old one to the runtime's epoch reclaimer. Callers hold the
// stripe mutex. In-flight pinned readers keep probing the old segment —
// every granule it held is also in the new one, and its slots are not
// scrubbed for reuse until those readers' pins leave the epoch.
func (s *granStripe) grow(rt *Runtime, old *granSeg) *granSeg {
	next := &granSeg{
		mask:  (old.mask+1)*2 - 1,
		slots: rt.segSlots(int(old.mask+1) * 2),
	}
	for i := range old.slots {
		if g := old.slots[i].Load(); g != nil {
			next.place(g, g.ctxHash*granMix)
		}
	}
	s.seg.Store(next)
	rt.retireSeg(old)
	return next
}
