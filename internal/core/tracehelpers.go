package core

import (
	"io"

	"repro/internal/tm"
	"repro/internal/trace"
)

// TraceModeName renders a raw trace mode byte with core's Mode names; pass
// it to trace.Write.
func TraceModeName(mode uint8) string { return Mode(mode).String() }

// TraceDetailName renders kind-specific detail bytes: abort reasons for
// aborts, the self-abort flag for SWOpt failures.
func TraceDetailName(kind trace.Kind, detail uint8) string {
	switch kind {
	case trace.KindAbort:
		return tm.AbortReason(detail).String()
	case trace.KindSWOptFail:
		if detail == 1 {
			return "self-abort"
		}
		return ""
	}
	return ""
}

// WriteTrace renders a merged timeline of the given threads' event rings
// with core's namers. Call after the threads quiesce.
func WriteTrace(w io.Writer, threads ...*Thread) error {
	snaps := make([][]trace.Event, 0, len(threads))
	for _, t := range threads {
		if t.ring != nil {
			snaps = append(snaps, t.ring.Snapshot())
		}
	}
	return trace.Write(w, trace.Merge(snaps...), TraceModeName, TraceDetailName)
}

// WriteTrace renders the merged timeline of every thread created on the
// runtime — the whole-program view a CLI wants after a run (alebench's
// -trace flag uses it). Requires Options.TraceCapacity > 0 and quiesced
// threads; with tracing disabled it renders an empty timeline.
func (rt *Runtime) WriteTrace(w io.Writer) error {
	return WriteTrace(w, rt.Threads()...)
}

// WriteChromeTrace renders every thread's event ring in the Chrome Trace
// Event Format (loadable in Perfetto / chrome://tracing; alebench's
// -trace-chrome flag uses it). Attempts that committed or aborted become
// duration spans when Options.Timing is on (instants otherwise — enable
// both TraceCapacity and Timing for a useful timeline). Ring wrap losses
// are carried in the export's otherData metadata when nonzero, so a
// truncated timeline declares itself. Call after the threads quiesce.
func (rt *Runtime) WriteChromeTrace(w io.Writer) error {
	threads := rt.Threads()
	snaps := make([][]trace.Event, 0, len(threads))
	var dropped uint64
	for _, t := range threads {
		if t.ring != nil {
			snaps = append(snaps, t.ring.Snapshot())
			dropped += t.ring.Dropped()
		}
	}
	return trace.WriteChromeMeta(w, trace.Merge(snaps...), TraceModeName, TraceDetailName,
		trace.Meta{DroppedEvents: dropped})
}
