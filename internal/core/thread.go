package core

import (
	"repro/internal/obs"
	"repro/internal/tm"
	"repro/internal/trace"
	"repro/internal/xrand"
)

// Thread is a worker goroutine's handle into the ALE library. It carries
// everything the library would keep in thread-local storage in the paper's
// C implementation: the per-thread stack of frames recording the critical
// sections executed at each nesting level (paper section 4.1), the calling
// context, the transaction descriptor, and a private PRNG.
//
// Create one Thread per worker goroutine with Runtime.NewThread and pass it
// to every library call. A Thread must not be shared between goroutines.
type Thread struct {
	rt  *Runtime
	id  int
	rng *xrand.State
	txn *tm.Txn

	// Calling context: a stack of rolling hashes (ctx[len-1] is current)
	// and the matching scope labels for report rendering.
	ctxHashes []uint64
	ctxLabels []string

	// frames records one entry per in-flight critical section execution,
	// innermost last. No frame is pushed for critical sections nested
	// inside an HTM-mode execution (they join the enclosing transaction).
	frames []frame

	// inHTM is true while executing inside a hardware transaction (the
	// outermost HTM frame's body, plus anything nested in it).
	inHTM bool
	// htmFrame points at the frames index of the outermost HTM frame
	// while inHTM, for diagnostics.
	htmFrame int

	// swoptLock is the lock whose critical section this thread is
	// currently executing in SWOpt mode, or nil. The engine refuses to
	// choose SWOpt for a nested critical section under a different lock
	// (paper section 4.1).
	swoptLock *Lock
	// swoptDepth counts nested SWOpt executions under swoptLock.
	swoptDepth int

	// snziArrivals counts grouping-SNZI arrivals this thread currently
	// holds (its SWOpt attempts are retrying). While nonzero the thread
	// never defers to the grouping mechanism — it would wait for itself.
	snziArrivals int

	// ring records engine events when Options.TraceCapacity > 0.
	ring *trace.Ring

	// shard is this thread's private live-metrics counter shard when
	// Options.Obs is set, nil otherwise. Single-writer: only this thread
	// bumps it; the collector reads it with atomic loads.
	shard *obs.Shard
}

// frame records one nesting level (paper section 4.1: per-thread stacks of
// frames record the lock, granule, and mode of each level).
type frame struct {
	lock *Lock
	gran *Granule
	mode Mode
	ec   ExecCtx
}

// NewThread creates a worker handle. Each worker goroutine needs its own.
func (rt *Runtime) NewThread() *Thread {
	id := rt.threadSeq.Add(1)
	t := &Thread{
		rt:        rt,
		id:        int(id),
		rng:       xrand.New(id*0x9e3779b9 + 1),
		txn:       rt.dom.NewTxn(id + 0x1000),
		ctxHashes: []uint64{0},
		ctxLabels: []string{""},
	}
	if rt.opts.TraceCapacity > 0 {
		t.ring = trace.NewRing(rt.opts.TraceCapacity, int32(id))
	}
	if rt.opts.Obs != nil {
		t.shard = rt.opts.Obs.NewShard()
	}
	rt.registerThread(t)
	return t
}

// Trace returns the thread's event ring, or nil when tracing is disabled.
// Snapshot it after the thread quiesces (see internal/trace).
func (t *Thread) Trace() *trace.Ring { return t.ring }

// emit records an engine event if tracing is enabled.
func (t *Thread) emit(l *Lock, kind trace.Kind, mode Mode, detail uint8) {
	if t.ring != nil {
		t.ring.Record(l.id, kind, uint8(mode), detail)
	}
}

// obsAdd bumps a live-metrics counter if Options.Obs is attached: one
// uncontended atomic add into the thread's private shard, nothing when
// observability is off.
func (t *Thread) obsAdd(c obs.Counter) {
	if t.shard != nil {
		t.shard.Add(c)
	}
}

// ID returns the thread's small dense id (used as its SNZI slot).
func (t *Thread) ID() int { return t.id }

// Runtime returns the owning runtime.
func (t *Thread) Runtime() *Runtime { return t.rt }

// RNG exposes the thread's private PRNG (workload generators reuse it).
func (t *Thread) RNG() *xrand.State { return t.rng }

// BeginScope opens an explicit scope: subsequent critical sections execute
// in a context extended by s, so the library keeps separate statistics for
// them (the paper's BEGIN_SCOPE). Pair with EndScope.
func (t *Thread) BeginScope(s *Scope) {
	t.pushScope(s)
}

// EndScope closes the innermost explicit scope opened with BeginScope.
func (t *Thread) EndScope() {
	t.popScope()
}

func (t *Thread) pushScope(s *Scope) {
	top := t.ctxHashes[len(t.ctxHashes)-1]
	t.ctxHashes = append(t.ctxHashes, contextHash(top, s))
	label := s.label
	if prev := t.ctxLabels[len(t.ctxLabels)-1]; prev != "" {
		label = prev + "/" + s.label
	}
	t.ctxLabels = append(t.ctxLabels, label)
}

func (t *Thread) popScope() {
	if len(t.ctxHashes) <= 1 {
		panic("ale: EndScope without matching BeginScope")
	}
	t.ctxHashes = t.ctxHashes[:len(t.ctxHashes)-1]
	t.ctxLabels = t.ctxLabels[:len(t.ctxLabels)-1]
}

// contextTop returns the current context hash and label.
func (t *Thread) contextTop() (uint64, string) {
	i := len(t.ctxHashes) - 1
	return t.ctxHashes[i], t.ctxLabels[i]
}

// holds reports whether the thread currently holds l's underlying lock
// (i.e. some enclosing frame ran — or is running — in Lock mode on l).
func (t *Thread) holds(l *Lock) bool {
	for i := range t.frames {
		if t.frames[i].lock == l && t.frames[i].mode == ModeLock {
			return true
		}
	}
	return false
}

// Depth returns the current critical-section nesting depth (diagnostics).
func (t *Thread) Depth() int { return len(t.frames) }
