package core

import (
	"strings"

	"repro/internal/epoch"
	"repro/internal/obs"
	"repro/internal/tm"
	"repro/internal/trace"
	"repro/internal/xrand"
)

// Thread is a worker goroutine's handle into the ALE library. It carries
// everything the library would keep in thread-local storage in the paper's
// C implementation: the per-thread stack of frames recording the critical
// sections executed at each nesting level (paper section 4.1), the calling
// context, the transaction descriptor, and a private PRNG.
//
// Create one Thread per worker goroutine with Runtime.NewThread and pass it
// to every library call. A Thread must not be shared between goroutines.
type Thread struct {
	rt  *Runtime
	id  int
	rng *xrand.State
	txn *tm.Txn

	// Calling context: a stack of rolling hashes (ctx[len-1] is current)
	// and the matching scopes. Labels for report rendering are joined on
	// demand (granule creation only), so the push/pop fast path performs
	// no string building.
	ctxHashes []uint64
	ctxScopes []*Scope

	// granCache is a direct-mapped cache over Lock.granule: the engine
	// resolves (lock, context hash) pairs here first, bypassing the lock's
	// sync.Map — whose uint64 key would be boxed on every lookup — on the
	// effectively-100% hit path of a steady-state workload. Single-owner
	// like the rest of the Thread, so no synchronization; a Granule is
	// immutable once created, so a hit can never be stale.
	granCache [granCacheSize]granCacheEntry

	// granPin is this thread's epoch pin in the runtime's granule-segment
	// reclaimer, held across lock-free granule-table probes (cache misses
	// only) so a concurrently retired segment is never recycled mid-probe.
	granPin *epoch.Pin

	// frames records one entry per in-flight critical section execution,
	// innermost last. No frame is pushed for critical sections nested
	// inside an HTM-mode execution (they join the enclosing transaction).
	frames []frame

	// inHTM is true while executing inside a hardware transaction (the
	// outermost HTM frame's body, plus anything nested in it).
	inHTM bool
	// htmFrame points at the frames index of the outermost HTM frame
	// while inHTM, for diagnostics.
	htmFrame int

	// swoptLock is the lock whose critical section this thread is
	// currently executing in SWOpt mode, or nil. The engine refuses to
	// choose SWOpt for a nested critical section under a different lock
	// (paper section 4.1).
	swoptLock *Lock
	// swoptDepth counts nested SWOpt executions under swoptLock.
	swoptDepth int

	// snziArrivals counts grouping-SNZI arrivals this thread currently
	// holds (its SWOpt attempts are retrying). While nonzero the thread
	// never defers to the grouping mechanism — it would wait for itself.
	snziArrivals int

	// ring records engine events when Options.TraceCapacity > 0.
	ring *trace.Ring

	// shard is this thread's private live-metrics counter shard when
	// Options.Obs is set, nil otherwise. Single-writer: only this thread
	// bumps it; the collector reads it with atomic loads.
	shard *obs.Shard

	// lat is this thread's private latency-histogram shard when both
	// Options.Obs and Options.Timing are set, nil otherwise. Same
	// single-writer discipline as shard.
	lat *obs.LatShard

	// ex is the collector's shared tail-latency exemplar table when both
	// Options.Obs and Options.Timing are set, nil otherwise. Unlike shard
	// and lat it is shared across threads — attachment is lock-free
	// (atomic count + TryLock witness slot, see obs.ExemplarTable).
	ex *obs.ExemplarTable

	// reqID tags exemplars captured while this thread serves a request
	// (SetRequestID); zero means "no request context".
	reqID uint64

	// extSeen is the last value of txn.Extensions() mirrored into obs; the
	// engine publishes the delta after every HTM attempt.
	extSeen uint64

	// abortNSSeen is the last value of txn.AbortNS() mirrored into obs
	// (CtrAbortWorkNS), maintained exactly like extSeen.
	abortNSSeen uint64

	// crossSeen is the last value of txn.CrossShard() mirrored into obs
	// (CtrCrossShard), maintained exactly like extSeen.
	crossSeen uint64

	// HTM trampoline: the engine runs hardware attempts through htmBody, a
	// method value bound once at construction, with the per-attempt inputs
	// and result passed through these fields instead of a closure
	// environment. A fresh closure per attempt would allocate — on the
	// hottest path in the library.
	htmBody func(*tm.Txn)
	htmLock *Lock
	htmCS   *CS
	htmFI   int
	htmErr  error
}

// granCacheSize is the number of direct-mapped granule-cache slots per
// thread (power of two). Workloads in the paper touch a handful of (lock,
// context) pairs per thread; 64 slots make eviction collisions rare
// without bloating the Thread.
const granCacheSize = 64

// granCacheEntry is one direct-mapped cache slot: the (lock, context hash)
// key and the granule it resolved to.
type granCacheEntry struct {
	lock    *Lock
	ctxHash uint64
	gran    *Granule
}

// granuleFor resolves the granule for lock l in the thread's current
// context, consulting the direct-mapped cache before the lock's shared
// table. A cache miss probes the table's lock-free path under the
// thread's epoch pin; only a granule that does not exist yet falls
// through to the stripe-locked creation path (which builds the label).
func (t *Thread) granuleFor(l *Lock, ctxHash uint64) *Granule {
	slot := (ctxHash ^ uint64(l.id)*0x9e3779b97f4a7c15) & (granCacheSize - 1)
	e := &t.granCache[slot]
	if e.lock == l && e.ctxHash == ctxHash {
		return e.gran
	}
	t.granPin.Enter()
	g := l.grans.lookup(ctxHash)
	t.granPin.Exit()
	if g == nil {
		g = l.granule(ctxHash, t.contextLabel())
	}
	*e = granCacheEntry{lock: l, ctxHash: ctxHash, gran: g}
	return g
}

// frame records one nesting level (paper section 4.1: per-thread stacks of
// frames record the lock, granule, and mode of each level). The frame also
// provides frame-lifetime storage for the execution's ExecCtx and
// ExecRecord, so handing their addresses to the body and the policy's Done
// hook never forces a heap allocation.
type frame struct {
	lock *Lock
	gran *Granule
	mode Mode
	ec   ExecCtx
	rec  ExecRecord

	// Timing-layer state (Options.Timing only). All three are written
	// before or after — never during — a body invocation, so a nested
	// Execute growing thr.frames copies whatever was already written and
	// a post-body read through a re-taken frame pointer stays correct.
	tAcq int64 // Lock mode: acquisition timestamp (hold/wait attribution)
	tWin int64 // start of the finally-successful attempt
}

// NewThread creates a worker handle. Each worker goroutine needs its own.
func (rt *Runtime) NewThread() *Thread {
	id := rt.threadSeq.Add(1)
	t := &Thread{
		rt:        rt,
		id:        int(id),
		rng:       xrand.New(id*0x9e3779b9 + 1),
		txn:       rt.dom.NewTxn(id + 0x1000),
		granPin:   rt.rec.Register(),
		ctxHashes: []uint64{0},
		ctxScopes: []*Scope{nil},
	}
	t.htmBody = t.runHTMBody // one-time bind; per-attempt binding would allocate
	if rt.opts.TraceCapacity > 0 {
		t.ring = trace.NewRing(rt.opts.TraceCapacity, int32(id))
	}
	if rt.opts.Obs != nil {
		t.shard = rt.opts.Obs.NewShard()
		if rt.opts.Timing {
			t.lat = rt.opts.Obs.NewLatShard()
			t.ex = rt.opts.Obs.Exemplars()
		}
	}
	rt.registerThread(t)
	return t
}

// Trace returns the thread's event ring, or nil when tracing is disabled.
// Snapshot it after the thread quiesces (see internal/trace).
func (t *Thread) Trace() *trace.Ring { return t.ring }

// emit records an instant engine event if tracing is enabled.
func (t *Thread) emit(l *Lock, kind trace.Kind, mode Mode, detail uint8) {
	if t.ring != nil {
		t.ring.Record(l.id, kind, uint8(mode), detail)
	}
}

// emitSpan records an event as a [begin, end] span when the timing layer
// supplied both timestamps (end > begin), degrading to an instant
// otherwise (timing off passes zeros). Timestamps come from dispatch.nano,
// which shares trace.Now's epoch unless a virtual Clock is installed.
func (t *Thread) emitSpan(l *Lock, kind trace.Kind, mode Mode, detail uint8, begin, end int64) {
	if t.ring == nil {
		return
	}
	if end > begin {
		t.ring.RecordSpan(l.id, kind, uint8(mode), detail, begin, end)
	} else {
		t.ring.Record(l.id, kind, uint8(mode), detail)
	}
}

// emitCommit records the winning attempt's commit event: a span covering
// the attempt when timing is on (the clock is read only here, so untraced
// runs pay no extra read), an instant otherwise.
func (t *Thread) emitCommit(l *Lock, mode Mode, begin int64) {
	if t.ring == nil {
		return
	}
	if nano := t.rt.disp.nano; nano != nil {
		t.ring.RecordSpan(l.id, trace.KindCommit, uint8(mode), 0, begin, nano())
	} else {
		t.ring.Record(l.id, trace.KindCommit, uint8(mode), 0)
	}
}

// obsAdd bumps a live-metrics counter if Options.Obs is attached: one
// uncontended atomic add into the thread's private shard, nothing when
// observability is off.
func (t *Thread) obsAdd(c obs.Counter) {
	if t.shard != nil {
		t.shard.Add(c)
	}
}

// obsAddN bumps a live-metrics counter by n if Options.Obs is attached.
func (t *Thread) obsAddN(c obs.Counter, n uint64) {
	if t.shard != nil {
		t.shard.AddN(c, n)
	}
}

// latRecord adds one observation to a latency histogram: two uncontended
// atomic adds into the thread's private shard, nothing when the timing
// layer or the collector is absent.
func (t *Thread) latRecord(h obs.Hist, ns int64) {
	if t.lat != nil {
		t.lat.Record(h, ns)
	}
}

// runHTMBody is one hardware-transaction attempt's body, reached through
// the bound htmBody trampoline (see the field comments). Inputs arrive in
// htmLock/htmCS/htmFI; the user error leaves through htmErr. An abort
// unwinds out of here via the substrate's panic, so htmErr only carries
// meaning when the enclosing Run reports a commit.
func (t *Thread) runHTMBody(tx *tm.Txn) {
	l, cs, fi := t.htmLock, t.htmCS, t.htmFI
	// Subscribe: load the lock word inside the transaction and abort if
	// held. Any later acquisition bumps the word and dooms us.
	if l.ops.HeldValue(tx.Load(l.ops.Word())) {
		tx.Abort(tm.AbortLockHeld)
	}
	t.inHTM = true
	t.htmFrame = fi
	defer func() { t.inHTM = false }()
	fr := &t.frames[fi]
	fr.ec = ExecCtx{thr: t, lock: l, txn: tx, mode: ModeHTM, inv: l.rt.invFor(cs, l, ModeHTM)}
	t.htmErr = cs.Body(&fr.ec)
	// Checked inside the transaction: an aborted attempt unwinds out of
	// the body before this point, so only completed bodies are held to the
	// balance invariant.
	fr.ec.invDone(t.htmErr)
}

// SetRequestID tags subsequent executions with a request identifier:
// tail-latency exemplars they produce carry it, so a server can answer
// "which request hit this P99.9 bucket". Zero clears the tag. Only the
// owning goroutine may call it (same discipline as every Thread method).
func (t *Thread) SetRequestID(id uint64) { t.reqID = id }

// RequestID returns the current request tag.
func (t *Thread) RequestID() uint64 { return t.reqID }

// ID returns the thread's small dense id (used as its SNZI slot).
func (t *Thread) ID() int { return t.id }

// Runtime returns the owning runtime.
func (t *Thread) Runtime() *Runtime { return t.rt }

// RNG exposes the thread's private PRNG (workload generators reuse it).
func (t *Thread) RNG() *xrand.State { return t.rng }

// BeginScope opens an explicit scope: subsequent critical sections execute
// in a context extended by s, so the library keeps separate statistics for
// them (the paper's BEGIN_SCOPE). Pair with EndScope.
func (t *Thread) BeginScope(s *Scope) {
	t.pushScope(s)
}

// EndScope closes the innermost explicit scope opened with BeginScope.
func (t *Thread) EndScope() {
	t.popScope()
}

func (t *Thread) pushScope(s *Scope) {
	top := t.ctxHashes[len(t.ctxHashes)-1]
	t.ctxHashes = append(t.ctxHashes, contextHash(top, s))
	t.ctxScopes = append(t.ctxScopes, s)
}

func (t *Thread) popScope() {
	if len(t.ctxHashes) <= 1 {
		panic("ale: EndScope without matching BeginScope")
	}
	t.ctxHashes = t.ctxHashes[:len(t.ctxHashes)-1]
	t.ctxScopes = t.ctxScopes[:len(t.ctxScopes)-1]
}

// contextTop returns the current context hash.
func (t *Thread) contextTop() uint64 {
	return t.ctxHashes[len(t.ctxHashes)-1]
}

// contextLabel joins the scope labels on the context stack for report
// rendering. Only the granule-creation slow path calls it; steady-state
// executions resolve their granule from the cache without touching labels.
func (t *Thread) contextLabel() string {
	switch len(t.ctxScopes) {
	case 1:
		return ""
	case 2:
		return t.ctxScopes[1].label
	}
	var b strings.Builder
	for i, s := range t.ctxScopes[1:] {
		if i > 0 {
			b.WriteByte('/')
		}
		b.WriteString(s.label)
	}
	return b.String()
}

// holds reports whether the thread currently holds l's underlying lock
// (i.e. some enclosing frame ran — or is running — in Lock mode on l).
func (t *Thread) holds(l *Lock) bool {
	for i := range t.frames {
		if t.frames[i].lock == l && t.frames[i].mode == ModeLock {
			return true
		}
	}
	return false
}

// Depth returns the current critical-section nesting depth (diagnostics).
func (t *Thread) Depth() int { return len(t.frames) }
