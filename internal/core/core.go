// Package core is the ALE library itself — the primary contribution of
// "Adaptive Integration of Hardware and Software Lock Elision Techniques"
// (Dice, Kogan, Lev, Merrifield, Moir — SPAA 2014).
//
// ALE executes a critical section protected by an ordinary lock in one of
// three modes:
//
//   - ModeHTM: transactional lock elision — the body runs inside a
//     (simulated) hardware transaction that subscribes to the lock word,
//     so a concurrent lock acquisition aborts it;
//   - ModeSWOpt: software optimistic execution — the body's hand-written
//     optimistic path runs without the lock and detects interference
//     through ConflictMarker validation, retrying on failure;
//   - ModeLock: the always-correct fallback — acquire the lock.
//
// A pluggable Policy chooses the mode for every execution attempt, using
// statistics the library collects per granule, where a granule is a
// (lock, calling context) pair: the same source-level critical section
// reached through different scopes gets separate statistics and can be
// adapted separately (paper section 3.4).
//
// The package mirrors the paper's C/C++ macro API with explicit Go values:
//
//	C macros                         this package
//	-------------------------------  ------------------------------------
//	lock label + metadata decl       Runtime.NewLock / Runtime.NewRWLock
//	BEGIN_CS / END_CS                Lock.Execute(thread, &CS{...})
//	BEGIN_CS_NAMED                   CS.Scope with a descriptive label
//	GET_EXEC_MODE                    ExecCtx.Mode
//	BEGIN_SCOPE / END_SCOPE          Thread.BeginScope / Thread.EndScope
//	BeginConflictingAction etc.      ConflictMarker methods
//	COULD_SWOPT_BE_RUNNING           automatic marker-bump elision
//
// Each worker goroutine must create its own Thread handle and pass it to
// every call; the library keeps all per-thread state (nesting frames, PRNG,
// transaction descriptor) there instead of in goroutine-local storage.
package core

import "fmt"

// Mode identifies how a critical-section execution attempt runs.
type Mode uint8

const (
	// ModeLock acquires the lock (the fallback that always succeeds).
	ModeLock Mode = iota
	// ModeHTM elides the lock with a hardware transaction.
	ModeHTM
	// ModeSWOpt elides the lock with the programmer-supplied software
	// optimistic path.
	ModeSWOpt

	// NumModes sizes per-mode statistic arrays.
	NumModes = 3
)

var modeNames = [...]string{
	ModeLock:  "Lock",
	ModeHTM:   "HTM",
	ModeSWOpt: "SWOpt",
}

// String returns the paper's name for the mode.
func (m Mode) String() string {
	if int(m) < len(modeNames) {
		return modeNames[m]
	}
	return fmt.Sprintf("mode(%d)", uint8(m))
}
