package core

import (
	"encoding/csv"
	"io"
	"strconv"
	"time"

	"repro/internal/tm"
)

// WriteCSV exports the per-granule statistics as machine-readable CSV, one
// row per (lock, context): the same data WriteReport renders for humans,
// for spreadsheets and plotting scripts. Columns are stable; see the
// header row (and the golden-file test in export_test.go, which pins it).
//
// Like WriteReport, WriteCSV reads the per-granule counters without
// synchronization against workers, so call it only after all threads have
// quiesced. For live numbers while a workload runs, attach Options.Obs and
// scrape an obs.Snapshot instead.
func (rt *Runtime) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := []string{
		"lock", "policy", "context", "execs",
		"htm_attempts", "htm_successes",
		"swopt_attempts", "swopt_successes",
		"lock_successes",
		"mean_htm_ns", "mean_swopt_ns", "mean_lock_ns",
		"lockheld_aborts",
	}
	for r := 1; r < tm.NumAbortReasons; r++ {
		header = append(header, "aborts_"+tm.AbortReason(r).String())
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	u := func(x uint64) string { return strconv.FormatUint(x, 10) }
	ns := func(d time.Duration) string { return strconv.FormatInt(d.Nanoseconds(), 10) }
	for _, l := range rt.Locks() {
		for _, g := range l.Granules() {
			row := []string{
				l.Name(), l.Policy().Name(), g.Label(), u(g.Execs()),
				u(g.Attempts(ModeHTM)), u(g.Successes(ModeHTM)),
				u(g.Attempts(ModeSWOpt)), u(g.Successes(ModeSWOpt)),
				u(g.Successes(ModeLock)),
				ns(g.MeanTime(ModeHTM)), ns(g.MeanTime(ModeSWOpt)), ns(g.MeanTime(ModeLock)),
				u(g.LockHeldAborts()),
			}
			for r := 1; r < tm.NumAbortReasons; r++ {
				row = append(row, u(g.Aborts(tm.AbortReason(r))))
			}
			if err := cw.Write(row); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}
