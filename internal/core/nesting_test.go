package core

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/locks"
	"repro/internal/tm"
)

// TestDeepNestingChain exercises a 4-deep chain of distinct locks in every
// starting mode the engine can pick, checking frame discipline and data
// correctness.
func TestDeepNestingChain(t *testing.T) {
	for _, prof := range []tm.Profile{htmProfile(), noHTMProfile()} {
		t.Run(prof.Name, func(t *testing.T) {
			rt := NewRuntime(tm.NewDomain(prof))
			d := rt.Domain()
			const depth = 4
			lks := make([]*Lock, depth)
			vars := make([]*tm.Var, depth)
			css := make([]*CS, depth)
			for i := 0; i < depth; i++ {
				lks[i] = rt.NewLock(fmt.Sprintf("L%d", i), locks.NewTATAS(d), NewStatic(5, 0))
				vars[i] = d.NewVar(0)
			}
			thr := rt.NewThread()
			for i := depth - 1; i >= 0; i-- {
				i := i
				css[i] = &CS{
					Scope: NewScope(fmt.Sprintf("cs%d", i)),
					Body: func(ec *ExecCtx) error {
						ec.Store(vars[i], ec.Load(vars[i])+1)
						if i+1 < depth {
							return lks[i+1].Execute(thr, css[i+1])
						}
						return nil
					},
				}
			}
			for n := 0; n < 200; n++ {
				if err := lks[0].Execute(thr, css[0]); err != nil {
					t.Fatal(err)
				}
			}
			if thr.Depth() != 0 {
				t.Errorf("frame stack depth = %d after completion, want 0", thr.Depth())
			}
			for i := 0; i < depth; i++ {
				if got := vars[i].LoadDirect(); got != 200 {
					t.Errorf("vars[%d] = %d, want 200", i, got)
				}
			}
		})
	}
}

// TestDeepNestingConcurrent stresses the chain with several threads; the
// per-level counters must all agree at the end (each execution increments
// every level exactly once).
func TestDeepNestingConcurrent(t *testing.T) {
	rt := NewRuntime(tm.NewDomain(htmProfile()))
	d := rt.Domain()
	const depth, workers, per = 3, 4, 1500
	lks := make([]*Lock, depth)
	vars := make([]*tm.Var, depth)
	for i := 0; i < depth; i++ {
		lks[i] = rt.NewLock(fmt.Sprintf("L%d", i), locks.NewTATAS(d), NewStatic(5, 0))
		vars[i] = d.NewVar(0)
	}
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			thr := rt.NewThread()
			css := make([]*CS, depth)
			for i := depth - 1; i >= 0; i-- {
				i := i
				css[i] = &CS{
					Scope: NewScope(fmt.Sprintf("w.cs%d", i)),
					Body: func(ec *ExecCtx) error {
						ec.Store(vars[i], ec.Load(vars[i])+1)
						if i+1 < depth {
							return lks[i+1].Execute(thr, css[i+1])
						}
						return nil
					},
				}
			}
			for n := 0; n < per; n++ {
				if err := lks[0].Execute(thr, css[0]); err != nil {
					errCh <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	want := uint64(workers * per)
	for i := 0; i < depth; i++ {
		if got := vars[i].LoadDirect(); got != want {
			t.Errorf("vars[%d] = %d, want %d", i, got, want)
		}
	}
}

// TestAdaptiveLearnsFromTiming is the paper's headline adaptive claim in
// miniature: the learner must pick the progression whose *measured* mean
// execution time is lowest. The critical section is built so the signal is
// unambiguous — its exclusive path costs 50µs on the fixture's virtual
// clock while its SWOpt path costs 1µs (in a real workload that difference
// comes from lock contention; here it is synthesized so the test is
// deterministic, see docs/TESTING.md) — and the policy must settle on
// SWOpt+Lock and route subsequent executions through SWOpt.
func TestAdaptiveLearnsFromTiming(t *testing.T) {
	clock := &fakeClock{}
	opts := DefaultOptions()
	opts.SampleAllTimings = true // full timing so the learner sees the gap
	opts.Clock = clock.now
	rt := NewRuntimeOpts(tm.NewDomain(noHTMProfile()), opts)
	d := rt.Domain()
	pol := NewAdaptiveCfg(AdaptiveConfig{PhaseExecs: 150, InitialX: 10, XSlack: 2, BigY: 200})
	l := rt.NewLock("L", locks.NewTATAS(d), pol)
	v := d.NewVar(0)
	cs := &CS{
		Scope:    NewScope("read"),
		HasSWOpt: true,
		Body: func(ec *ExecCtx) error {
			if ec.InSWOpt() {
				clock.advance(time.Microsecond)
				_ = ec.Load(v)
				return nil
			}
			clock.advance(50 * time.Microsecond)
			_ = ec.Load(v)
			return nil
		},
	}
	thr := rt.NewThread()
	for i := 0; i < 1000; i++ {
		if err := l.Execute(thr, cs); err != nil {
			t.Fatal(err)
		}
	}
	if !pol.Settled() {
		t.Fatalf("not settled; stage = %s", pol.StageName())
	}
	g := granByLabel(t, l, "read")
	preSW := g.Successes(ModeSWOpt)
	preLK := g.Successes(ModeLock)
	for i := 0; i < 1000; i++ {
		if err := l.Execute(thr, cs); err != nil {
			t.Fatal(err)
		}
	}
	gainSW := g.Successes(ModeSWOpt) - preSW
	gainLK := g.Successes(ModeLock) - preLK
	if gainSW == 0 {
		t.Error("settled policy never used SWOpt despite it being measurably faster")
	}
	if gainLK > gainSW/5 {
		t.Errorf("settled executions: SWOpt %d vs Lock %d — expected SWOpt-dominated", gainSW, gainLK)
	}
}

// TestTimingSampledSparsely checks the ~3% sampling: only a small fraction
// of executions should carry timing samples under default options.
func TestTimingSampledSparsely(t *testing.T) {
	rt := NewRuntime(tm.NewDomain(htmProfile()))
	f := newPairFixture(rt, NewStatic(5, 0))
	thr := rt.NewThread()
	const n = 20000
	for i := 0; i < n; i++ {
		if err := f.lock.Execute(thr, f.writeCS); err != nil {
			t.Fatal(err)
		}
	}
	g := granByLabel(t, f.lock, "pair.Write")
	samples := g.TimeSamples(ModeHTM) + g.TimeSamples(ModeLock)
	rate := float64(samples) / n
	if rate < 0.01 || rate > 0.06 {
		t.Errorf("timing sample rate = %.4f, want ~0.03", rate)
	}
}

// TestSampleAllTimingsOption checks the ablation switch: with
// SampleAllTimings every execution is timed.
func TestSampleAllTimingsOption(t *testing.T) {
	opts := DefaultOptions()
	opts.SampleAllTimings = true
	rt := NewRuntimeOpts(tm.NewDomain(htmProfile()), opts)
	f := newPairFixture(rt, NewStatic(5, 0))
	thr := rt.NewThread()
	const n = 500
	for i := 0; i < n; i++ {
		if err := f.lock.Execute(thr, f.writeCS); err != nil {
			t.Fatal(err)
		}
	}
	g := granByLabel(t, f.lock, "pair.Write")
	samples := g.TimeSamples(ModeHTM) + g.TimeSamples(ModeLock)
	if samples != n {
		t.Errorf("samples = %d, want %d", samples, n)
	}
	if g.MeanTime(ModeHTM) <= 0 && g.MeanTime(ModeLock) <= 0 {
		t.Error("no mean time recorded despite full sampling")
	}
}

// TestGroupWaitBounded: a thread stuck in SWOpt retry (always failing)
// must not block conflicting executions forever — the group wait is
// bounded and the retrier's Y budget runs out.
func TestGroupWaitBounded(t *testing.T) {
	rt := NewRuntime(tm.NewDomain(noHTMProfile()))
	d := rt.Domain()
	l := rt.NewLock("L", locks.NewTATAS(d), NewStatic(0, 50))
	v := d.NewVar(0)
	alwaysFail := &CS{
		Scope:    NewScope("failer"),
		HasSWOpt: true,
		Body: func(ec *ExecCtx) error {
			if ec.InSWOpt() {
				return ec.SWOptFail()
			}
			return nil
		},
	}
	conflicting := &CS{
		Scope:       NewScope("writer"),
		Conflicting: true,
		Body: func(ec *ExecCtx) error {
			ec.Store(v, ec.Load(v)+1)
			return nil
		},
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		thr := rt.NewThread()
		for i := 0; i < 50; i++ {
			l.Execute(thr, alwaysFail)
		}
	}()
	done := make(chan struct{})
	go func() {
		thr := rt.NewThread()
		for i := 0; i < 50; i++ {
			l.Execute(thr, conflicting)
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(20 * time.Second):
		t.Fatal("conflicting executions starved by a hopeless SWOpt retrier")
	}
	wg.Wait()
}
