package core

import "fmt"

// invState is the per-attempt record the invariant checker keeps when
// Options.InvariantMode is on — the dynamic counterpart of the alelint
// static analyzers (markerpair and validatebeforeuse). Each body
// invocation gets a fresh state; the engine checks it when the body
// returns. The zero-cost contract when the mode is off is a single
// `ec.inv != nil` test at each instrumented call.
type invState struct {
	// balance is BeginConflicting minus EndConflicting so far. It must be
	// zero whenever the body returns (markerpair's static rule), and never
	// negative (End without Begin panics immediately).
	balance int

	// armed records that the body issued an ec.ReadStable, i.e. it is on
	// an optimistic read path; pending counts the loads issued since the
	// last ReadStable/Validate. A SWOpt body returning success with
	// pending loads has trusted unvalidated data (validatebeforeuse's
	// static rule).
	armed   bool
	pending int

	// Diagnostics for the panic message.
	scope string
	lock  string
	mode  Mode
}

// invFor allocates the attempt's invariant state, or nil when the mode is
// off. Execute verifies cs.Scope is non-nil before any attempt runs.
func (rt *Runtime) invFor(cs *CS, l *Lock, mode Mode) *invState {
	if !rt.disp.invariantMode {
		return nil
	}
	return &invState{scope: cs.Scope.Label(), lock: l.name, mode: mode}
}

func (inv *invState) beginRegion() {
	inv.balance++
}

func (inv *invState) endRegion() {
	inv.balance--
	if inv.balance < 0 {
		panic(fmt.Sprintf(
			"ale: invariant violation in scope %q (lock %q, mode %s): EndConflicting without a matching BeginConflicting",
			inv.scope, inv.lock, inv.mode))
	}
}

// invDone is the engine's post-body check: the body returned err after
// running to completion (aborted HTM attempts never reach it — the abort
// unwinds out of the body).
func (ec *ExecCtx) invDone(err error) {
	inv := ec.inv
	if inv == nil {
		return
	}
	if inv.balance != 0 {
		panic(fmt.Sprintf(
			"ale: invariant violation in scope %q (lock %q, mode %s): conflicting-region balance %+d at body exit (BeginConflicting without a matching EndConflicting on this path)",
			inv.scope, inv.lock, inv.mode, inv.balance))
	}
	if inv.mode == ModeSWOpt && err == nil && inv.pending > 0 {
		panic(fmt.Sprintf(
			"ale: invariant violation in scope %q (lock %q): SWOpt body committed (returned nil) with %d load(s) not validated since the last ReadStable/Validate",
			inv.scope, inv.lock, inv.pending))
	}
}
