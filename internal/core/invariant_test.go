package core

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/locks"
	"repro/internal/tm"
)

func invRuntime(profile tm.Profile) *Runtime {
	opts := DefaultOptions()
	opts.InvariantMode = true
	return NewRuntimeOpts(tm.NewDomain(profile), opts)
}

func mustPanic(t *testing.T, substr string, fn func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("expected a panic containing %q, got none", substr)
		}
		if !strings.Contains(fmt.Sprint(r), substr) {
			t.Fatalf("panic = %v, want substring %q", r, substr)
		}
	}()
	fn()
}

// A Begin with no End must be caught when the body returns, in Lock mode.
func TestInvariantModeUnbalancedBeginLock(t *testing.T) {
	rt := invRuntime(noHTMProfile())
	lock := rt.NewLock("inv", locks.NewTATAS(rt.Domain()), NewLockOnly())
	mk := lock.NewMarker()
	thr := rt.NewThread()
	cs := &CS{
		Scope:       NewScope("inv.unbalanced"),
		Conflicting: true,
		Body: func(ec *ExecCtx) error {
			mk.BeginConflicting(ec) //alelint:allow markerpair -- seeded violation for the runtime checker test
			return nil
		},
	}
	mustPanic(t, "conflicting-region balance", func() {
		_ = lock.Execute(thr, cs)
	})
}

// The same imbalance inside a hardware transaction must be caught too
// (the check runs inside the transaction closure, after the body
// completes).
func TestInvariantModeUnbalancedBeginHTM(t *testing.T) {
	rt := invRuntime(htmProfile())
	lock := rt.NewLock("inv", locks.NewTATAS(rt.Domain()), NewStatic(10, 0))
	mk := lock.NewMarker()
	thr := rt.NewThread()
	cs := &CS{
		Scope:       NewScope("inv.unbalancedHTM"),
		Conflicting: true,
		Body: func(ec *ExecCtx) error {
			mk.BeginConflicting(ec) //alelint:allow markerpair -- seeded violation for the runtime checker test
			return nil
		},
	}
	mustPanic(t, "conflicting-region balance", func() {
		_ = lock.Execute(thr, cs)
	})
}

// An End with no Begin panics at the call, not at body exit.
func TestInvariantModeEndWithoutBegin(t *testing.T) {
	rt := invRuntime(noHTMProfile())
	lock := rt.NewLock("inv", locks.NewTATAS(rt.Domain()), NewLockOnly())
	mk := lock.NewMarker()
	thr := rt.NewThread()
	cs := &CS{
		Scope:       NewScope("inv.endOnly"),
		Conflicting: true,
		Body: func(ec *ExecCtx) error {
			mk.EndConflicting(ec)
			return nil
		},
	}
	mustPanic(t, "EndConflicting without a matching BeginConflicting", func() {
		_ = lock.Execute(thr, cs)
	})
}

// A SWOpt body that commits with a load it never validated must be
// caught at the nil return.
func TestInvariantModeUnvalidatedCommit(t *testing.T) {
	rt := invRuntime(noHTMProfile())
	lock := rt.NewLock("inv", locks.NewTATAS(rt.Domain()), NewStatic(0, 4))
	mk := lock.NewMarker()
	cell := rt.Domain().NewVar(7)
	thr := rt.NewThread()
	var got uint64
	cs := &CS{
		Scope:    NewScope("inv.unvalidated"),
		HasSWOpt: true,
		Body: func(ec *ExecCtx) error {
			if ec.InSWOpt() {
				_ = ec.ReadStable(mk)
				got = ec.Load(cell)
				return nil //alelint:allow validatebeforeuse -- seeded violation for the runtime checker test
			}
			got = ec.Load(cell)
			return nil
		},
	}
	mustPanic(t, "not validated since the last ReadStable", func() {
		_ = lock.Execute(thr, cs)
	})
	_ = got
}

// The canonical validated pattern — including the instrumented
// ec.ReadStable/ec.Validate forms — must pass the checker under
// concurrency in every mode (run with -race in CI).
func TestInvariantModeCleanConcurrent(t *testing.T) {
	rt := invRuntime(htmProfile())
	lock := rt.NewLock("inv", locks.NewTATAS(rt.Domain()), NewStatic(4, 4))
	mk := lock.NewMarker()
	a := rt.Domain().NewVar(0)
	b := rt.Domain().NewVar(0)

	const goroutines = 4
	const opsEach = 300
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			thr := rt.NewThread()
			var x, y uint64
			readCS := &CS{
				Scope:    NewScope("inv.read"),
				HasSWOpt: true,
				Body: func(ec *ExecCtx) error {
					if ec.InSWOpt() {
						v := ec.ReadStable(mk)
						x = ec.Load(a)
						if !ec.Validate(mk, v) {
							return ec.SWOptFail()
						}
						y = ec.Load(b)
						if !ec.Validate(mk, v) {
							return ec.SWOptFail()
						}
						return nil
					}
					x = ec.Load(a)
					y = ec.Load(b)
					return nil
				},
			}
			writeCS := &CS{
				Scope:       NewScope("inv.write"),
				Conflicting: true,
				Body: func(ec *ExecCtx) error {
					n := ec.Load(a) + 1
					mk.BeginConflicting(ec)
					ec.Store(a, n)
					ec.Store(b, n)
					mk.EndConflicting(ec)
					return nil
				},
			}
			for op := 0; op < opsEach; op++ {
				var err error
				if op%4 == 0 {
					err = lock.Execute(thr, writeCS)
				} else {
					err = lock.Execute(thr, readCS)
					if err == nil && x != y {
						err = fmt.Errorf("torn read: a=%d b=%d", x, y)
					}
				}
				if err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// benchBody builds the canonical optimistic read section over rt.
func benchBody(rt *Runtime, policy Policy) (*Lock, *CS) {
	lock := rt.NewLock("bench", locks.NewTATAS(rt.Domain()), policy)
	mk := lock.NewMarker()
	cell := rt.Domain().NewVar(1)
	cs := &CS{
		Scope:    NewScope("bench.read"),
		HasSWOpt: true,
		Body: func(ec *ExecCtx) error {
			if ec.InSWOpt() {
				v := ec.ReadStable(mk)
				x := ec.Load(cell)
				if !ec.Validate(mk, v) {
					return ec.SWOptFail()
				}
				_ = x
				return nil
			}
			_ = ec.Load(cell)
			return nil
		},
	}
	return lock, cs
}

// The two benchmarks quantify InvariantMode's overhead; the disabled
// case is the one that must stay free (a nil check per instrumented
// call). Results go to EXPERIMENTS.md.
func BenchmarkExecuteInvariantOff(b *testing.B) {
	rt := NewRuntimeOpts(tm.NewDomain(noHTMProfile()), DefaultOptions())
	lock, cs := benchBody(rt, NewStatic(0, 4))
	thr := rt.NewThread()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := lock.Execute(thr, cs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExecuteInvariantOn(b *testing.B) {
	opts := DefaultOptions()
	opts.InvariantMode = true
	rt := NewRuntimeOpts(tm.NewDomain(noHTMProfile()), opts)
	lock, cs := benchBody(rt, NewStatic(0, 4))
	thr := rt.NewThread()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := lock.Execute(thr, cs); err != nil {
			b.Fatal(err)
		}
	}
}
