package core

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/epoch"
	"repro/internal/obs"
	"repro/internal/tm"
	"repro/internal/trace"
)

// Options tune library-wide mechanisms. The defaults (from DefaultOptions)
// match the paper's configuration; the ablation benchmarks flip individual
// fields to quantify each mechanism's contribution.
type Options struct {
	// Grouping enables the SNZI-based grouping mechanism (paper section
	// 4.2): executions that may run a conflicting region defer while SWOpt
	// attempts for the same lock are retrying, so the whole group of
	// optimistic executions can drain without interference.
	Grouping bool

	// LockHeldDiscount enables the lighter accounting of transaction
	// aborts attributed to a concurrent lock acquisition (paper section
	// 4): such aborts say nothing about whether HTM suits the critical
	// section, so they consume only a fraction of the retry budget,
	// avoiding premature fallback cascades.
	LockHeldDiscount bool

	// MarkerElision enables the COULD_SWOPT_BE_RUNNING optimization
	// (paper section 3.3): an HTM-mode execution skips bumping conflict
	// markers when no SWOpt execution can be running, eliminating marker
	// conflicts between concurrent hardware transactions.
	MarkerElision bool

	// SampleAllTimings disables the ~3% timing sampling and measures every
	// execution. Only the sampling ablation benchmark sets this.
	SampleAllTimings bool

	// TraceCapacity, when positive, gives every Thread an event ring of
	// that capacity recording attempts, commits, aborts, SWOpt failures,
	// grouping deferrals and mode fallbacks (see internal/trace). Zero
	// disables tracing entirely (the default; the hot path then pays one
	// nil check per event site).
	TraceCapacity int

	// InvariantMode enables the runtime invariant checker — the dynamic
	// counterpart of the alelint static analyzers (see
	// docs/SWOPT_RULES.md). Every body invocation tracks its
	// BeginConflicting/EndConflicting balance and, on optimistic paths
	// started with ec.ReadStable, whether every load was validated before
	// the SWOpt attempt committed; violations panic with the scope, lock,
	// and mode. Off by default: disabled cost is one nil check per
	// instrumented call; enabled cost is one small allocation per body
	// invocation. Intended for tests and race-detector runs.
	InvariantMode bool

	// Faults, when non-nil, attaches the engine-level fault-injection
	// hooks (see FaultHooks and internal/faultinject): forced Validate
	// failures, stretched conflicting regions, stretched lock holds. The
	// substrate-level hooks (forced HTM aborts) install separately via
	// tm.Domain.SetInjector; internal/faultinject implements both sides
	// with one scripted injector. Off (nil, the default) costs one nil
	// check per hook site. Intended for the stress harness
	// (internal/oracle) and fault-ablation benchmarks only.
	Faults FaultHooks

	// Timing enables the timing-aware observability layer: log-bucketed
	// latency histograms (per-mode Execute latency, attempt-to-success,
	// lock hold, SWOpt retry, group wait — recorded into per-thread
	// obs.LatShards when Obs is also set), per-granule wasted-time
	// attribution feeding the contention profiler
	// (Runtime.ContentionProfiles), tm-substrate abort-work measurement,
	// and timestamped trace spans on thread rings. The monotonic clock is
	// sampled twice on an elided conflict-free execution (entry and
	// commit; Lock mode adds one read after acquisition, and each failed
	// attempt adds one at its failure site), and the success path stays
	// allocation-free — pinned by TestExecuteZeroAllocsTiming*. Off (the
	// default) costs one branch per execution.
	Timing bool

	// Clock, when non-nil, replaces time.Now for execution-duration
	// measurement. It exists so timing-sensitive tests (the drift
	// detector's in particular) can drive a virtual clock advanced by the
	// workload itself instead of depending on wall time and scheduler
	// load — see docs/TESTING.md. nil (the default) uses time.Now and
	// costs one nil check on the (already sampled) timed path. When
	// Timing is on, the timing layer derives its nanosecond clock from
	// Clock too (UnixNano), so virtual-clock tests drive both.
	Clock func() time.Time

	// Obs, when non-nil, attaches the live observability layer
	// (internal/obs): every Thread gets a private cache-padded counter
	// shard in the collector, the engine mirrors execution outcomes into
	// it, and the adaptive policy emits learning-phase events to the
	// collector's event ring. The hot path costs one uncontended atomic
	// add per completed execution (failure paths pay one add per
	// failure, which they dwarf anyway) and zero allocations; nil (the
	// default) costs one nil check per execution. One collector may be
	// shared by several runtimes — its totals then span all of them.
	Obs *obs.Collector
}

// DefaultOptions returns the paper-faithful configuration: every mechanism
// on, timings sampled.
func DefaultOptions() Options {
	return Options{
		Grouping:         true,
		LockHeldDiscount: true,
		MarkerElision:    true,
	}
}

// Runtime is one instance of the ALE library: a transactional domain (the
// simulated platform), global options, and the registry of ALE-enabled
// locks for reporting. A program normally creates one Runtime.
type Runtime struct {
	dom  *tm.Domain
	opts Options
	disp dispatch

	mu        sync.Mutex
	locks     []*Lock
	threads   []*Thread
	threadSeq atomic.Uint64

	// rec reclaims grown-out granule-table segments (see granTable): each
	// Thread carries a pin it holds across lock-free table probes, and a
	// retired segment's slots are scrubbed and recycled only after every
	// pin has moved past the retiring epoch. Separate from the domain's
	// reclaimer on purpose — transaction pins stay active for whole
	// attempts, granule pins only for a probe, so granule-segment
	// recycling never waits on transaction lifetimes.
	rec *epoch.Reclaimer

	// segMu guards freeSegs, the pool of recycled granule-table slot
	// arrays (all-nil, keyed by capacity) that granTable growth draws
	// from before allocating.
	segMu    sync.Mutex
	freeSegs [][]atomic.Pointer[Granule]
}

// dispatch is the hot path's view of Options, precomputed once at Runtime
// construction. Options stays the documented configuration surface; the
// engine, marker, and invariant code read these flat fields instead so the
// per-execution checks compile to direct loads off one cache line, with no
// repeated indirection through the larger Options struct. Options are
// immutable after NewRuntimeOpts, so the two never diverge.
type dispatch struct {
	grouping         bool
	lockHeldDiscount bool
	markerElision    bool
	sampleAll        bool
	invariantMode    bool
	timing           bool
	faults           FaultHooks
	clock            func() time.Time
	// nano is the timing layer's monotonic nanosecond clock, non-nil
	// exactly when timing is true: trace.Now by default so engine span
	// timestamps share the trace rings' epoch, or Clock().UnixNano when a
	// virtual clock is installed.
	nano func() int64
}

// NewRuntime creates a Runtime over the given transactional domain with
// default options.
func NewRuntime(dom *tm.Domain) *Runtime {
	return NewRuntimeOpts(dom, DefaultOptions())
}

// NewRuntimeOpts creates a Runtime with explicit options.
func NewRuntimeOpts(dom *tm.Domain, opts Options) *Runtime {
	rt := &Runtime{
		dom:  dom,
		opts: opts,
		rec:  epoch.New(),
		disp: dispatch{
			grouping:         opts.Grouping,
			lockHeldDiscount: opts.LockHeldDiscount,
			markerElision:    opts.MarkerElision,
			sampleAll:        opts.SampleAllTimings,
			invariantMode:    opts.InvariantMode,
			timing:           opts.Timing,
			faults:           opts.Faults,
			clock:            opts.Clock,
		},
	}
	if opts.Timing {
		if c := opts.Clock; c != nil {
			rt.disp.nano = func() int64 { return c().UnixNano() }
		} else {
			rt.disp.nano = trace.Now
		}
		// Let the substrate measure begin-to-abort durations on the same
		// clock (tm.TxnStats.AbortNS; the engine mirrors the deltas).
		dom.SetNanotime(rt.disp.nano)
		if opts.Obs != nil {
			// Publish the granule contention profile into snapshots. A
			// collector shared across runtimes keeps the last-registered
			// source (bench sweeps report the current runtime).
			opts.Obs.SetContentionSource(rt.contentionEntries)
		}
	}
	if opts.Obs != nil && dom.NumShards() > 1 {
		// Publish per-shard commit-clock rows so a live scrape can see how
		// evenly the workload spreads over the shards. Single-shard domains
		// contribute nothing (their one clock adds no information), which
		// also keeps pre-sharding snapshot files re-encoding unchanged.
		opts.Obs.SetShardSource(rt.shardEntries)
	}
	if opts.Obs != nil && opts.TraceCapacity > 0 {
		// Publish trace-ring wrap losses so flight dumps can say "the
		// timeline has a hole" instead of silently presenting a truncated
		// window as complete.
		opts.Obs.SetTraceDroppedSource(rt.traceDropped)
	}
	return rt
}

// traceDropped is the obs.SetTraceDroppedSource callback: total engine
// trace events lost to ring wrap-around across the runtime's threads.
func (rt *Runtime) traceDropped() uint64 {
	var total uint64
	for _, t := range rt.Threads() {
		total += t.ring.Dropped()
	}
	return total
}

// shardEntries is the obs.SetShardSource callback: one row per domain
// commit-clock shard with the shard's current clock position.
func (rt *Runtime) shardEntries() []obs.ShardEntry {
	n := rt.dom.NumShards()
	out := make([]obs.ShardEntry, n)
	for i := range out {
		out[i] = obs.ShardEntry{Shard: i, Clock: rt.dom.ShardClock(i)}
	}
	return out
}

// segSlots returns an all-nil slot array of exactly n slots, recycled
// from the retired-segment pool when one of that capacity is available.
func (rt *Runtime) segSlots(n int) []atomic.Pointer[Granule] {
	rt.segMu.Lock()
	defer rt.segMu.Unlock()
	for i, s := range rt.freeSegs {
		if len(s) == n {
			rt.freeSegs[i] = rt.freeSegs[len(rt.freeSegs)-1]
			rt.freeSegs[len(rt.freeSegs)-1] = nil
			rt.freeSegs = rt.freeSegs[:len(rt.freeSegs)-1]
			return s
		}
	}
	return make([]atomic.Pointer[Granule], n)
}

// retireSeg hands a grown-out granule-table segment to the epoch
// reclaimer. The scrub-and-pool callback runs only after every thread's
// pin has left the epoch in which the segment was unpublished, so no
// in-flight probe can observe the slots being cleared or reused.
func (rt *Runtime) retireSeg(seg *granSeg) {
	slots := seg.slots
	rt.rec.Retire(func() {
		for i := range slots {
			slots[i].Store(nil)
		}
		rt.segMu.Lock()
		rt.freeSegs = append(rt.freeSegs, slots)
		rt.segMu.Unlock()
	})
	rt.rec.TryAdvance()
}

// Domain returns the runtime's transactional domain.
func (rt *Runtime) Domain() *tm.Domain { return rt.dom }

// Options returns the runtime's option set.
func (rt *Runtime) Options() Options { return rt.opts }

// HTMAvailable reports whether the simulated platform has HTM.
func (rt *Runtime) HTMAvailable() bool { return rt.dom.HTMAvailable() }

// Locks returns the ALE-enabled locks registered so far (report order =
// creation order).
func (rt *Runtime) Locks() []*Lock {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	out := make([]*Lock, len(rt.locks))
	copy(out, rt.locks)
	return out
}

// Threads returns every Thread created on this runtime, in creation
// order. Intended for post-quiesce diagnostics (trace dumps); the threads
// themselves must not be used from foreign goroutines.
func (rt *Runtime) Threads() []*Thread {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	out := make([]*Thread, len(rt.threads))
	copy(out, rt.threads)
	return out
}

func (rt *Runtime) registerThread(t *Thread) {
	rt.mu.Lock()
	rt.threads = append(rt.threads, t)
	rt.mu.Unlock()
}

func (rt *Runtime) register(l *Lock) {
	rt.mu.Lock()
	l.id = uint32(len(rt.locks))
	rt.locks = append(rt.locks, l)
	rt.mu.Unlock()
}
