package core

import "errors"

// Sentinel results a critical-section body returns to steer the engine.
// They are consumed by Lock.Execute and never escape to its caller.
var (
	// ErrSWOptRetry is returned by a body running in SWOpt mode when its
	// optimistic path detected interference (a ConflictMarker validation
	// failed). The engine records the failed attempt and retries according
	// to the policy.
	ErrSWOptRetry = errors.New("ale: SWOpt attempt interfered with, retry")

	// ErrSWOptSelfAbort is returned by a body running in SWOpt mode when
	// it reached an action it cannot perform optimistically (the paper's
	// "self abort" idiom, section 3.3). The engine retries the execution
	// with SWOpt mode disabled for the remainder of this execution.
	ErrSWOptSelfAbort = errors.New("ale: SWOpt self-abort, retry non-optimistically")
)

// Configuration and misuse errors.
var (
	// ErrNotInSWOpt is returned by SWOpt-only helpers when called outside
	// SWOpt mode.
	ErrNotInSWOpt = errors.New("ale: operation only valid in SWOpt mode")
)
