package core

import (
	"testing"
	"time"
)

// Direct tests for costModelX, the pure minimization extracted from
// chooseX: hand-checkable distributions first, then a fuzz target for the
// degenerate-input contract (the statistics feeding it are racy by
// design, so no input may panic or push the result out of range).

// literalBuckets adapts a literal attempts-to-success distribution
// (buckets[a] = executions succeeding at exactly attempt a) to the
// bucket-lookup shape costModelX consumes.
func literalBuckets(buckets []uint64) (func(int) uint64, uint64) {
	var total uint64
	for _, b := range buckets {
		total += b
	}
	return func(a int) uint64 {
		if a < 0 || a >= len(buckets) {
			return 0
		}
		return buckets[a]
	}, total
}

func TestCostModelXTable(t *testing.T) {
	us := func(n int64) time.Duration { return time.Duration(n) * time.Microsecond }
	cases := []struct {
		name    string
		buckets []uint64
		xcap    int
		tSucc   time.Duration
		lower   time.Duration
		upper   time.Duration
		per     time.Duration
		want    int
	}{
		{
			// Every success lands on attempt 1 and HTM is much cheaper
			// than the fallback: budget exactly one attempt.
			name:    "first-attempt-point-mass",
			buckets: []uint64{0, 100},
			xcap:    8,
			tSucc:   us(1), lower: us(100), upper: us(100), per: us(1),
			want: 1,
		},
		{
			// All successes need 5 attempts against a ruinous fallback:
			// fewer than 5 always falls back, more burns dead retries.
			name:    "fifth-attempt-point-mass",
			buckets: []uint64{0, 0, 0, 0, 0, 100},
			xcap:    8,
			tSucc:   us(1), lower: us(1000), upper: us(1000), per: us(1),
			want: 5,
		},
		{
			// HTM never succeeds (all mass in bucket 0, unreachable by any
			// budget) and each attempt costs: minimum budget wins.
			name:    "htm-hopeless",
			buckets: []uint64{100},
			xcap:    6,
			tSucc:   us(10), lower: us(50), upper: us(50), per: us(10),
			want: 1,
		},
		{
			// Successes split between attempts 1 and 3, but HTM success is
			// slow and the fallback cheap: chasing the late half buys
			// nothing over falling back immediately after attempt 1.
			name:    "bimodal-slow-htm",
			buckets: []uint64{0, 50, 0, 50},
			xcap:    4,
			tSucc:   us(100), lower: us(12), upper: us(12), per: us(10),
			want: 1,
		},
		{
			// Same split with an expensive fallback: pay the retries to
			// rescue the attempt-3 half.
			name:    "bimodal-dear-fallback",
			buckets: []uint64{0, 50, 0, 50},
			xcap:    4,
			tSucc:   us(10), lower: us(10000), upper: us(10000), per: us(10),
			want: 3,
		},
		{
			// Degenerate: nothing observed, no timing — must still return
			// a legal budget.
			name:    "all-zero",
			buckets: nil,
			xcap:    5,
			want:    1,
		},
		{
			// Degenerate: xcap below the legal floor.
			name:    "xcap-zero",
			buckets: []uint64{0, 10},
			xcap:    0,
			tSucc:   us(1), lower: us(10), upper: us(10), per: us(1),
			want: 1,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			bucket, total := literalBuckets(tc.buckets)
			got := costModelX(bucket, total, tc.xcap, tc.tSucc, tc.lower, tc.upper, tc.per)
			if got != tc.want {
				t.Errorf("costModelX = %d, want %d", got, tc.want)
			}
		})
	}
}

// FuzzCostModelX feeds the cost model the garbage its racy inputs can in
// principle produce — inconsistent totals, zero/negative/huge times,
// degenerate caps. Invariants: no panic, result always in [1, max(xcap,
// 1)], and the function is deterministic. The float arithmetic inside can
// yield NaN and ±Inf candidate costs; those must be ignored, not returned.
func FuzzCostModelX(f *testing.F) {
	f.Add(uint64(10), uint64(20), uint64(5), uint64(100), 8,
		int64(1000), int64(50000), int64(80000), int64(500))
	f.Add(uint64(0), uint64(0), uint64(0), uint64(0), 0,
		int64(0), int64(0), int64(0), int64(0))
	f.Add(^uint64(0), uint64(1), ^uint64(0)/2, uint64(3), 64,
		int64(-1), int64(1)<<62, int64(-1)<<62, int64(1))
	f.Add(uint64(1), uint64(2), uint64(3), uint64(0), -5,
		int64(7), int64(-7), int64(7), int64(-7))
	f.Fuzz(func(t *testing.T, b1, b2, b3, total uint64, xcap int,
		tSucc, lower, upper, per int64) {
		if xcap > 1<<12 {
			xcap = 1 << 12 // keep the linear scan bounded; larger caps add nothing
		}
		bucket := func(a int) uint64 {
			switch a {
			case 1:
				return b1
			case 2:
				return b2
			case 3:
				return b3
			}
			return 0
		}
		got := costModelX(bucket, total, xcap,
			time.Duration(tSucc), time.Duration(lower), time.Duration(upper), time.Duration(per))
		limit := xcap
		if limit < 1 {
			limit = 1
		}
		if got < 1 || got > limit {
			t.Fatalf("costModelX = %d, outside [1, %d] (total=%d xcap=%d times=%d/%d/%d/%d)",
				got, limit, total, xcap, tSucc, lower, upper, per)
		}
		if again := costModelX(bucket, total, xcap,
			time.Duration(tSucc), time.Duration(lower), time.Duration(upper), time.Duration(per)); again != got {
			t.Fatalf("costModelX not deterministic: %d then %d", got, again)
		}
	})
}
