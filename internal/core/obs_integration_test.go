package core

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/locks"
	"repro/internal/obs"
	"repro/internal/tm"
)

// newObsRuntime builds a runtime with a fresh collector attached.
func newObsRuntime(profile tm.Profile) (*Runtime, *obs.Collector) {
	c := obs.New()
	opts := DefaultOptions()
	opts.Obs = c
	return NewRuntimeOpts(tm.NewDomain(profile), opts), c
}

// TestObsModeMapping pins the cross-package convention the obs wire format
// depends on: obs cannot import core, so it mirrors core's mode indices by
// definition order. If either side reorders, this fails.
func TestObsModeMapping(t *testing.T) {
	if obs.NumModes != NumModes {
		t.Fatalf("obs.NumModes = %d, core.NumModes = %d", obs.NumModes, NumModes)
	}
	pairs := []struct {
		mode Mode
		ctr  obs.Counter
	}{
		{ModeLock, obs.CtrSuccessLock},
		{ModeHTM, obs.CtrSuccessHTM},
		{ModeSWOpt, obs.CtrSuccessSWOpt},
	}
	for _, p := range pairs {
		if got := obs.CtrSuccess(uint8(p.mode)); got != p.ctr {
			t.Errorf("obs.CtrSuccess(%s) = %v, want %v", p.mode, got, p.ctr)
		}
		if got, want := obs.ModeNames[p.mode], strings.ToLower(p.mode.String()); got != want {
			t.Errorf("obs.ModeNames[%d] = %q, want %q", p.mode, got, want)
		}
	}
	// The execution-latency histograms follow the same ordering convention.
	hists := []struct {
		mode Mode
		hist obs.Hist
	}{
		{ModeLock, obs.HistExecLock},
		{ModeHTM, obs.HistExecHTM},
		{ModeSWOpt, obs.HistExecSWOpt},
	}
	for _, p := range hists {
		if got := obs.HistExec(uint8(p.mode)); got != p.hist {
			t.Errorf("obs.HistExec(%s) = %v, want %v", p.mode, got, p.hist)
		}
	}
}

// TestObsCountersMirrorRun checks the live counters against the engine's
// own per-granule statistics after a deterministic run: every execution is
// counted exactly once under its final mode, and the derived attempt
// totals match the granule bookkeeping.
func TestObsCountersMirrorRun(t *testing.T) {
	for _, tc := range []struct {
		name    string
		profile tm.Profile
	}{
		{"htm", htmProfile()},
		{"nohtm", noHTMProfile()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rt, c := newObsRuntime(tc.profile)
			f := newPairFixture(rt, NewStatic(5, 5))
			thr := rt.NewThread()
			const iters = 100
			for i := 0; i < iters; i++ {
				if err := f.lock.Execute(thr, f.writeCS); err != nil {
					t.Fatal(err)
				}
				if err := f.lock.Execute(thr, f.readCS); err != nil {
					t.Fatal(err)
				}
			}
			snap := c.Snapshot()
			if got := snap.Execs(); got != 2*iters {
				t.Errorf("snapshot execs = %d, want %d", got, 2*iters)
			}
			for _, m := range []Mode{ModeLock, ModeHTM, ModeSWOpt} {
				var succ, att uint64
				for _, g := range f.lock.Granules() {
					succ += g.Successes(m)
					att += g.Attempts(m)
				}
				if got := snap.Successes(uint8(m)); got != succ {
					t.Errorf("%s successes: snapshot %d, granules %d", m, got, succ)
				}
				if got := snap.Attempts(uint8(m)); got != att {
					t.Errorf("%s attempts: snapshot %d, granules %d", m, got, att)
				}
			}
			var aborts uint64
			for _, g := range f.lock.Granules() {
				for r := 1; r < tm.NumAbortReasons; r++ {
					aborts += g.Aborts(tm.AbortReason(r))
				}
			}
			if got := snap.AbortsTotal(); got != aborts {
				t.Errorf("aborts: snapshot %d, granules %d", got, aborts)
			}
		})
	}
}

// TestObsExtensionMirroredFromEngine drives a real timestamp extension
// through an HTM-mode execution and checks the engine mirrors the
// substrate's counter into the collector: the extension must be visible in
// the snapshot (and its delta accounting must not double-count across
// subsequent executions).
func TestObsExtensionMirroredFromEngine(t *testing.T) {
	rt, c := newObsRuntime(htmProfile())
	d := rt.Domain()
	l := rt.NewLock("L", locks.NewTATAS(d), NewStatic(10, 0))
	a := d.NewVar(0)
	unrelated := d.NewVar(0)
	cs := &CS{
		Scope: NewScope("ext"),
		Body: func(ec *ExecCtx) error {
			_ = ec.Load(a)
			// An unrelated committer (simulated inline) advances the
			// domain clock mid-transaction; the next load extends.
			unrelated.StoreDirect(1)
			_ = ec.Load(unrelated)
			return nil
		},
	}
	thr := rt.NewThread()
	const execs = 5
	for i := 0; i < execs; i++ {
		if err := l.Execute(thr, cs); err != nil {
			t.Fatal(err)
		}
	}
	s := c.Snapshot()
	if got := s.Get(obs.CtrHTMExtension); got != execs {
		t.Errorf("snapshot htm_extension = %d, want %d (one per execution)", got, execs)
	}
	if got := s.Successes(uint8(ModeHTM)); got != execs {
		t.Errorf("HTM successes = %d, want %d (extension should prevent the abort)", got, execs)
	}
	if got := s.Aborts(tm.AbortConflict); got != 0 {
		t.Errorf("conflict aborts = %d, want 0 — extensions should have absorbed them", got)
	}
}

// TestObsAdaptiveEvents: driving an adaptive policy to settlement must
// leave a phase-transition trail in the collector's event ring, and a
// Relearn must append a relearn event.
func TestObsAdaptiveEvents(t *testing.T) {
	rt, c := newObsRuntime(htmProfile())
	pol := fastAdaptive()
	f := newPairFixture(rt, pol)
	drive(t, rt, f.lock, f.writeCS, 1500)
	if !pol.Settled() {
		t.Fatalf("policy did not settle; stage = %s", pol.StageName())
	}
	events := c.Events()
	counts := map[obs.EventKind]int{}
	for _, e := range events {
		counts[e.Kind]++
		if e.Lock != "pairLock" {
			t.Errorf("event %v has lock %q, want pairLock", e.Kind, e.Lock)
		}
	}
	if counts[obs.EventPhaseEnter] == 0 {
		t.Error("no phase-enter events recorded")
	}
	if counts[obs.EventVerdict] != 1 {
		t.Errorf("verdict events = %d, want 1", counts[obs.EventVerdict])
	}
	snap := c.Snapshot()
	if got := snap.Get(obs.CtrPhaseTransition); got != uint64(counts[obs.EventPhaseEnter]) {
		t.Errorf("CtrPhaseTransition = %d, events show %d", got, counts[obs.EventPhaseEnter])
	}

	pol.Relearn(f.lock)
	var sawRelearn bool
	for _, e := range c.Events() {
		if e.Kind == obs.EventRelearn {
			sawRelearn = true
		}
	}
	if !sawRelearn {
		t.Error("no relearn event after Relearn")
	}
	if got := c.Snapshot().Get(obs.CtrRelearn); got != 1 {
		t.Errorf("CtrRelearn = %d, want 1", got)
	}
}

// TestObsRelearnBeforeFirstUseEmitsNothing: Relearn on a policy with no
// schedule yet is a no-op and must not emit an event.
func TestObsRelearnBeforeFirstUseEmitsNothing(t *testing.T) {
	rt, c := newObsRuntime(htmProfile())
	pol := fastAdaptive()
	f := newPairFixture(rt, pol)
	pol.Relearn(f.lock)
	if n := c.EventsRecorded(); n != 0 {
		t.Errorf("events recorded = %d, want 0", n)
	}
}

// TestObsConcurrentScrape exercises the consistency contract from the
// report/export docs: scraping the collector (snapshots, Prometheus
// rendering, the WriteReport live-totals header) is safe while workers are
// mid-flight, even though the full per-granule report requires quiescence.
// Run under -race this is the layer's data-race regression test.
func TestObsConcurrentScrape(t *testing.T) {
	rt, c := newObsRuntime(htmProfile())
	f := newPairFixture(rt, NewStatic(5, 5))

	const workers, iters = 4, 2000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	scrapeDone := make(chan struct{})
	go func() {
		defer close(scrapeDone)
		var prev obs.Snapshot
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := c.Snapshot()
			if s.Execs() < prev.Execs() {
				t.Errorf("execs went backwards: %d -> %d", prev.Execs(), s.Execs())
				return
			}
			_ = obs.FormatDelta(s.Sub(prev))
			var sb strings.Builder
			if err := obs.WritePrometheus(&sb, s); err != nil {
				t.Errorf("WritePrometheus: %v", err)
				return
			}
			prev = s
		}
	}()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			thr := rt.NewThread()
			for i := 0; i < iters; i++ {
				cs := f.readCS
				if i%5 == 0 {
					cs = f.writeCS
				}
				if err := f.lock.Execute(thr, cs); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	<-scrapeDone

	snap := c.Snapshot()
	if got := snap.Execs(); got != workers*iters {
		t.Errorf("final execs = %d, want %d", got, workers*iters)
	}
	// Post-quiesce, the full report must agree with the live header.
	var sb strings.Builder
	if err := rt.WriteReport(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "live totals:") {
		t.Error("report with Options.Obs lacks the live-totals header")
	}
}
