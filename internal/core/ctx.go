package core

import "repro/internal/tm"

// ExecCtx is the execution context handed to a critical-section body. It
// tells the body which mode it is running in (the paper's GET_EXEC_MODE)
// and routes its data accesses appropriately:
//
//   - ModeHTM: accesses go through the hardware transaction, so conflicts
//     abort and retry transparently (the body just stops executing at the
//     conflicting access and the engine retries);
//   - ModeLock: plain accesses — the lock provides exclusion. Loads still
//     wait out in-flight transaction commits so that a critical section
//     entered just as an elided one commits observes it fully;
//   - ModeSWOpt: plain optimistic accesses — the body is responsible for
//     validating with its ConflictMarkers and returning ErrSWOptRetry on
//     interference.
//
// An ExecCtx is only valid during the body invocation it was passed to.
type ExecCtx struct {
	thr  *Thread
	lock *Lock
	txn  *tm.Txn // non-nil iff mode == ModeHTM
	mode Mode
	inv  *invState // non-nil iff Options.InvariantMode
}

// Mode reports how this attempt is executing (GET_EXEC_MODE).
func (ec *ExecCtx) Mode() Mode { return ec.mode }

// Thread returns the executing thread's handle.
func (ec *ExecCtx) Thread() *Thread { return ec.thr }

// InSWOpt is a convenience for bodies structured like the paper's GetImp
// template: true iff running the software-optimistic path.
func (ec *ExecCtx) InSWOpt() bool { return ec.mode == ModeSWOpt }

// Load reads a transactional cell in the current mode.
func (ec *ExecCtx) Load(v *tm.Var) uint64 {
	if ec.inv != nil && ec.inv.armed {
		ec.inv.pending++
	}
	if ec.mode == ModeHTM {
		return ec.txn.Load(v)
	}
	return v.LoadConsistent()
}

// Store writes a transactional cell in the current mode. SWOpt bodies must
// not perform conflicting writes — mutations belong in a nested
// non-SWOpt critical section (paper section 3.3) — but harmless writes
// (e.g. to thread-private cells) are permitted and go straight through.
func (ec *ExecCtx) Store(v *tm.Var, x uint64) {
	if ec.mode == ModeHTM {
		ec.txn.Store(v, x)
		return
	}
	v.StoreDirect(x)
}

// Add increments a transactional cell in the current mode, returning the
// new value.
func (ec *ExecCtx) Add(v *tm.Var, delta uint64) uint64 {
	if ec.inv != nil && ec.inv.armed {
		ec.inv.pending++
	}
	if ec.mode == ModeHTM {
		return ec.txn.Add(v, delta)
	}
	return v.AddDirect(delta)
}

// ReadStable is the instrumented form of ConflictMarker.ReadStable: it
// additionally tells the invariant checker (Options.InvariantMode) that
// an optimistic read sequence is starting, so the checker can verify
// every subsequent Load is validated before the body commits. New code
// should prefer it; the marker method remains for bodies built before
// the checker existed.
func (ec *ExecCtx) ReadStable(m *ConflictMarker) uint64 {
	if ec.inv != nil {
		ec.inv.armed = true
		ec.inv.pending = 0
	}
	return m.ReadStable()
}

// Validate is the instrumented form of ConflictMarker.ValidateIn: a
// successful validation tells the invariant checker that every load
// since the last ReadStable/Validate is now trusted. Like ValidateIn it
// validates in the current execution mode (in HTM the marker joins the
// read set).
func (ec *ExecCtx) Validate(m *ConflictMarker, v uint64) bool {
	if ec.inv != nil {
		ec.inv.pending = 0
	}
	return m.ValidateIn(ec, v)
}

// SWOptFail is what a SWOpt body returns when marker validation failed:
// a synonym for ErrSWOptRetry that reads naturally at return sites.
func (ec *ExecCtx) SWOptFail() error { return ErrSWOptRetry }

// SelfAbort is what a SWOpt body returns when it reached an action it
// cannot perform optimistically (paper's self-abort idiom): the engine
// retries the execution with SWOpt disabled.
func (ec *ExecCtx) SelfAbort() error { return ErrSWOptSelfAbort }
