package core

import (
	"testing"

	"repro/internal/locks"
	"repro/internal/tm"
)

// TestReadSideElisionIgnoresReaders: an HTM execution eliding the read
// side of an RW lock subscribes with reader-compatible conflict semantics,
// so a concurrently *held read lock* must not doom it — only writers
// conflict. This is the property that makes the Kyoto external critical
// section elidable at all.
func TestReadSideElisionIgnoresReaders(t *testing.T) {
	rt := NewRuntime(tm.NewDomain(htmProfile()))
	d := rt.Domain()
	rw := locks.NewRWLock(d)
	readLock := rt.NewLock("m(read)", rw.ReadSide(), NewStatic(10, 0))
	v := d.NewVar(0)
	cs := &CS{
		Scope: NewScope("reader"),
		Body: func(ec *ExecCtx) error {
			_ = ec.Load(v)
			return nil
		},
	}
	thr := rt.NewThread()

	// A reader parks on the lock for the whole test.
	rw.AcquireRead()
	defer rw.ReleaseRead()

	for i := 0; i < 200; i++ {
		if err := readLock.Execute(thr, cs); err != nil {
			t.Fatal(err)
		}
	}
	g := granByLabel(t, readLock, "reader")
	if g.Successes(ModeHTM) == 0 {
		t.Error("read-side elision never committed in HTM while a reader held the lock")
	}
	if g.LockHeldAborts() > 20 {
		t.Errorf("%d lock-held aborts against a mere reader", g.LockHeldAborts())
	}
}

// TestReadSideElisionAbortsOnWriter: the same subscription must doom the
// transaction when a writer acquires mid-flight. The acquisition is
// simulated inline from the transaction body, which makes the interleaving
// deterministic regardless of host core count.
func TestReadSideElisionAbortsOnWriter(t *testing.T) {
	rt := NewRuntime(tm.NewDomain(htmProfile()))
	d := rt.Domain()
	rw := locks.NewRWLock(d)
	readLock := rt.NewLock("m(read)", rw.ReadSide(), NewStatic(3, 0))
	v := d.NewVar(0)
	doomed := false
	cs := &CS{
		Scope: NewScope("reader"),
		Body: func(ec *ExecCtx) error {
			// Write so the transaction cannot take TL2's read-only
			// commit path: the writer acquisition below must abort it.
			ec.Store(v, ec.Load(v)+1)
			if !doomed && ec.Mode() == ModeHTM {
				doomed = true
				rw.AcquireWrite()
				rw.ReleaseWrite()
			}
			return nil
		},
	}
	thr := rt.NewThread()
	if err := readLock.Execute(thr, cs); err != nil {
		t.Fatal(err)
	}
	if !doomed {
		t.Skip("first attempt did not run in HTM; nothing to check")
	}
	g := granByLabel(t, readLock, "reader")
	var aborts uint64
	for r := 1; r < tm.NumAbortReasons; r++ {
		aborts += g.Aborts(tm.AbortReason(r))
	}
	if aborts == 0 {
		t.Error("writer acquisition inside the transaction did not abort it")
	}
	if got := v.LoadDirect(); got != 1 {
		t.Errorf("v = %d, want exactly 1 (aborted attempt must not double-apply)", got)
	}
}

// TestShareElisionState: after sharing, SWOpt activity registered through
// one lock is visible through the other — the property the Kyoto method
// lock's two sides rely on.
func TestShareElisionState(t *testing.T) {
	rt := NewRuntime(tm.NewDomain(noHTMProfile()))
	d := rt.Domain()
	rw := locks.NewRWLock(d)
	readLock := rt.NewLock("m(read)", rw.ReadSide(), NewStatic(0, 10))
	writeLock := rt.NewLock("m(write)", rw.WriteSide(), NewLockOnly())
	writeLock.ShareElisionState(readLock)

	observed := false
	cs := &CS{
		Scope:    NewScope("probe"),
		HasSWOpt: true,
		Body: func(ec *ExecCtx) error {
			if ec.InSWOpt() {
				observed = writeLock.SWOptCouldBeRunning()
			}
			return nil
		},
	}
	thr := rt.NewThread()
	if err := readLock.Execute(thr, cs); err != nil {
		t.Fatal(err)
	}
	if !observed {
		t.Error("write-side view did not observe read-side SWOpt activity after sharing")
	}
}
