package core

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/locks"
	"repro/internal/tm"
)

func fastAdaptive() *AdaptivePolicy {
	return NewAdaptiveCfg(AdaptiveConfig{PhaseExecs: 100, InitialX: 10, XSlack: 2, BigY: 200})
}

// drive runs n executions of cs on a fresh thread.
func drive(t *testing.T, rt *Runtime, l *Lock, cs *CS, n int) {
	t.Helper()
	thr := rt.NewThread()
	for i := 0; i < n; i++ {
		if err := l.Execute(thr, cs); err != nil {
			t.Fatal(err)
		}
	}
}

func TestAdaptiveWalksAllStagesAndSettles(t *testing.T) {
	rt := NewRuntime(tm.NewDomain(htmProfile()))
	pol := fastAdaptive()
	f := newPairFixture(rt, pol)
	// Enough executions to cross every stage: Lock(1) + SL(1) + HL(3) +
	// All(3) + custom(1) = 9 stages x 100 executions.
	drive(t, rt, f.lock, f.writeCS, 1200)
	if !pol.Settled() {
		t.Fatalf("policy not settled after 1200 executions; stage = %s", pol.StageName())
	}
	if got := pol.FinalChoice(); got == "" {
		t.Error("empty final choice")
	}
}

func TestAdaptiveSchedulesNoHTMStagesOnNoHTMPlatform(t *testing.T) {
	rt := NewRuntime(tm.NewDomain(noHTMProfile()))
	pol := fastAdaptive()
	f := newPairFixture(rt, pol)
	// Stages: Lock(1) + SL(1) + custom(1) = 3 x 100.
	drive(t, rt, f.lock, f.readCS, 400)
	if !pol.Settled() {
		t.Fatalf("policy not settled; stage = %s", pol.StageName())
	}
	g := granByLabel(t, f.lock, "pair.Read")
	if g.Successes(ModeHTM) != 0 {
		t.Error("HTM used on a no-HTM platform")
	}
}

func TestAdaptiveLearnsXCap(t *testing.T) {
	rt := NewRuntime(tm.NewDomain(htmProfile()))
	pol := fastAdaptive()
	f := newPairFixture(rt, pol)
	drive(t, rt, f.lock, f.writeCS, 1200)
	g := granByLabel(t, f.lock, "pair.Write")
	gl := pol.granData(g)
	x := gl.xByProg[progHL].Load()
	// Single-threaded, no contention: HTM succeeds first try, so the
	// learned X should be far below InitialX (max observed 1 + slack 2,
	// then cost-model-minimized within that cap).
	if x < 1 || x > 5 {
		t.Errorf("learned X = %d, want small (1..5) for uncontended HTM", x)
	}
}

func TestAdaptiveGivesUpHTMWhenHopeless(t *testing.T) {
	p := htmProfile()
	p.SpuriousProb = 1.0
	rt := NewRuntime(tm.NewDomain(p))
	pol := fastAdaptive()
	f := newPairFixture(rt, pol)
	drive(t, rt, f.lock, f.writeCS, 1200)
	if !pol.Settled() {
		t.Fatalf("policy not settled; stage = %s", pol.StageName())
	}
	g := granByLabel(t, f.lock, "pair.Write")
	gl := pol.granData(g)
	if x := gl.xByProg[progHL].Load(); x != 0 {
		t.Errorf("learned X = %d for hopeless HTM, want 0", x)
	}
	// Once settled, the chosen progression must not include HTM.
	plan := pol.Plan(g, true, false)
	if plan.UseHTM {
		t.Error("settled plan still tries HTM despite 100% abort rate")
	}
}

func TestAdaptiveConcurrentSettlesAndStaysCorrect(t *testing.T) {
	rt := NewRuntime(tm.NewDomain(htmProfile()))
	pol := fastAdaptive()
	f := newPairFixture(rt, pol)
	const writers, readers, per = 4, 4, 2500
	var wg sync.WaitGroup
	errCh := make(chan error, writers+readers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			thr := rt.NewThread()
			for i := 0; i < per; i++ {
				if err := f.lock.Execute(thr, f.writeCS); err != nil {
					errCh <- err
					return
				}
			}
		}()
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			thr := rt.NewThread()
			for i := 0; i < per; i++ {
				if err := f.lock.Execute(thr, f.readCS); err != nil {
					errCh <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	if a, b := f.a.LoadDirect(), f.b.LoadDirect(); a != uint64(writers*per) || b != a {
		t.Errorf("a=%d b=%d, want both %d", a, b, writers*per)
	}
	if !pol.Settled() {
		t.Errorf("policy did not settle during a long concurrent run; stage = %s",
			pol.StageName())
	}
}

func TestAdaptiveReportShowsState(t *testing.T) {
	rt := NewRuntime(tm.NewDomain(htmProfile()))
	pol := fastAdaptive()
	f := newPairFixture(rt, pol)
	drive(t, rt, f.lock, f.writeCS, 50)
	rep := rt.ReportString()
	if !strings.Contains(rep, "Adaptive") {
		t.Errorf("report missing policy name:\n%s", rep)
	}
	if !strings.Contains(rep, "state=") {
		t.Errorf("report missing adaptive state:\n%s", rep)
	}
}

func TestAdaptiveConfigClamping(t *testing.T) {
	pol := NewAdaptiveCfg(AdaptiveConfig{})
	if pol.cfg.PhaseExecs < 1 || pol.cfg.InitialX < 1 || pol.cfg.BigY < 1 {
		t.Errorf("degenerate config not clamped: %+v", pol.cfg)
	}
}

// TestGroupingDrainsRetries checks the grouping mechanism end to end: with
// frequent conflicting writers, SWOpt readers still complete without
// falling back to the lock very often, because writers defer while the
// readers' group retries.
func TestGroupingDrainsRetries(t *testing.T) {
	rt := NewRuntime(tm.NewDomain(noHTMProfile())) // SWOpt-vs-Lock pressure
	pol := NewStatic(0, 50)
	f := newPairFixture(rt, pol)
	const writers, readers, per = 2, 4, 3000
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			thr := rt.NewThread()
			for i := 0; i < per; i++ {
				f.lock.Execute(thr, f.writeCS)
			}
		}()
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			thr := rt.NewThread()
			for i := 0; i < per; i++ {
				f.lock.Execute(thr, f.readCS)
			}
		}()
	}
	wg.Wait()
	g := granByLabel(t, f.lock, "pair.Read")
	sw, lk := g.Successes(ModeSWOpt), g.Successes(ModeLock)
	if sw == 0 {
		t.Fatal("SWOpt never succeeded")
	}
	// With grouping, the overwhelming majority of reads complete
	// optimistically even under constant writer pressure.
	if float64(lk) > 0.2*float64(sw+lk) {
		t.Errorf("reads fell back to the lock %d of %d times despite grouping", lk, sw+lk)
	}
	if f.lock.swoptRetry.Query() {
		t.Error("SWOpt-retry SNZI still nonzero after quiescence")
	}
}

// TestMarkerElisionStress hammers HTM writers against SWOpt readers with
// marker elision enabled; the pair invariant must hold in every validated
// read (the transactional indicator subscription makes elision safe).
func TestMarkerElisionStress(t *testing.T) {
	for _, elide := range []bool{true, false} {
		name := "elide=off"
		if elide {
			name = "elide=on"
		}
		t.Run(name, func(t *testing.T) {
			opts := DefaultOptions()
			opts.MarkerElision = elide
			rt := NewRuntimeOpts(tm.NewDomain(htmProfile()), opts)
			f := newPairFixture(rt, NewStatic(20, 20))
			const writers, readers, per = 3, 3, 3000
			var wg sync.WaitGroup
			errCh := make(chan error, writers+readers)
			for w := 0; w < writers; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					thr := rt.NewThread()
					for i := 0; i < per; i++ {
						if err := f.lock.Execute(thr, f.writeCS); err != nil {
							errCh <- err
							return
						}
					}
				}()
			}
			for r := 0; r < readers; r++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					thr := rt.NewThread()
					for i := 0; i < per; i++ {
						if err := f.lock.Execute(thr, f.readCS); err != nil {
							errCh <- err
							return
						}
					}
				}()
			}
			wg.Wait()
			close(errCh)
			for err := range errCh {
				t.Fatal(err) // a torn validated read would land here
			}
			if a, b := f.a.LoadDirect(), f.b.LoadDirect(); a != uint64(writers*per) || b != a {
				t.Errorf("a=%d b=%d, want both %d", a, b, writers*per)
			}
		})
	}
}

// TestLockHeldDiscount verifies the lighter accounting: with the discount
// enabled, executions under heavy Lock-mode interference keep retrying HTM
// rather than instantly draining their budget on lock-held aborts.
func TestLockHeldDiscount(t *testing.T) {
	rt := NewRuntime(tm.NewDomain(htmProfile()))
	d := rt.Domain()
	l := rt.NewLock("L", locks.NewTATAS(d), NewStatic(4, 0))
	v := d.NewVar(0)
	cs := &CS{
		Scope: NewScope("cs"),
		Body: func(ec *ExecCtx) error {
			ec.Store(v, ec.Load(v)+1)
			return nil
		},
	}
	// A competing goroutine holds the lock in short bursts.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			l.ops.Acquire()
			v.StoreDirect(v.LoadDirect() + 1)
			l.ops.Release()
		}
	}()
	thr := rt.NewThread()
	for i := 0; i < 3000; i++ {
		if err := l.Execute(thr, cs); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	g := granByLabel(t, l, "cs")
	if g.LockHeldAborts() == 0 {
		t.Skip("no lock-held aborts observed on this run; nothing to check")
	}
	// With the discount, most executions should still succeed in HTM.
	htm, lk := g.Successes(ModeHTM), g.Successes(ModeLock)
	if htm == 0 {
		t.Error("HTM never succeeded despite the lock-held discount")
	}
	t.Logf("HTM=%d Lock=%d lock-held aborts=%d", htm, lk, g.LockHeldAborts())
}
