package core

import (
	"encoding/csv"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"repro/internal/tm"
)

func TestWriteCSV(t *testing.T) {
	rt := NewRuntime(tm.NewDomain(htmProfile()))
	f := newPairFixture(rt, NewStatic(5, 5))
	thr := rt.NewThread()
	for i := 0; i < 100; i++ {
		if err := f.lock.Execute(thr, f.writeCS); err != nil {
			t.Fatal(err)
		}
		if err := f.lock.Execute(thr, f.readCS); err != nil {
			t.Fatal(err)
		}
	}
	var b strings.Builder
	if err := rt.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(strings.NewReader(b.String())).ReadAll()
	if err != nil {
		t.Fatalf("export is not valid CSV: %v", err)
	}
	if len(rows) != 3 { // header + 2 granules
		t.Fatalf("rows = %d, want 3", len(rows))
	}
	header := rows[0]
	col := map[string]int{}
	for i, name := range header {
		col[name] = i
	}
	for _, name := range []string{"lock", "context", "execs", "htm_successes", "aborts_conflict"} {
		if _, ok := col[name]; !ok {
			t.Fatalf("missing column %q in %v", name, header)
		}
	}
	foundWrite := false
	for _, row := range rows[1:] {
		if len(row) != len(header) {
			t.Fatalf("ragged row: %v", row)
		}
		if strings.Contains(row[col["context"]], "pair.Write") {
			foundWrite = true
			execs, err := strconv.Atoi(row[col["execs"]])
			if err != nil || execs != 100 {
				t.Errorf("pair.Write execs = %q, want 100", row[col["execs"]])
			}
		}
	}
	if !foundWrite {
		t.Error("no row for pair.Write")
	}
}

// csvHeaderWant is the full stable WriteCSV column set, in order. Changing
// it breaks downstream consumers (alereport -in, plotting scripts), so a
// change here must be deliberate and update the golden files too.
var csvHeaderWant = []string{
	"lock", "policy", "context", "execs",
	"htm_attempts", "htm_successes",
	"swopt_attempts", "swopt_successes",
	"lock_successes",
	"mean_htm_ns", "mean_swopt_ns", "mean_lock_ns",
	"lockheld_aborts",
	"aborts_conflict", "aborts_capacity", "aborts_spurious", "aborts_explicit",
	"aborts_lock-held", "aborts_disabled", "aborts_nesting", "aborts_panic",
}

// maskMeanColumns replaces every mean_* value (the only nondeterministic
// columns — they carry wall-clock timings) with "-" so the rest of the
// export can be compared byte-for-byte against a golden file.
func maskMeanColumns(t *testing.T, raw string) string {
	t.Helper()
	rows, err := csv.NewReader(strings.NewReader(raw)).ReadAll()
	if err != nil {
		t.Fatalf("export is not valid CSV: %v", err)
	}
	for i, name := range rows[0] {
		if !strings.HasPrefix(name, "mean_") {
			continue
		}
		for _, row := range rows[1:] {
			row[i] = "-"
		}
	}
	var b strings.Builder
	w := csv.NewWriter(&b)
	if err := w.WriteAll(rows); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

// TestWriteCSVGolden pins the exact export of a deterministic run — the
// full header (every aborts_* column included) and all row values except
// the masked timing means — on both an HTM and a no-HTM platform. The
// single-threaded fixture run is deterministic: thread ids, PRNG seeds and
// the simulated HTM's abort injection all derive from fixed seeds.
func TestWriteCSVGolden(t *testing.T) {
	for _, tc := range []struct {
		name    string
		profile tm.Profile
		golden  string
	}{
		{"htm", htmProfile(), "export_golden_htm.csv"},
		{"nohtm", noHTMProfile(), "export_golden_nohtm.csv"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rt := NewRuntime(tm.NewDomain(tc.profile))
			f := newPairFixture(rt, NewStatic(5, 5))
			thr := rt.NewThread()
			for i := 0; i < 100; i++ {
				if err := f.lock.Execute(thr, f.writeCS); err != nil {
					t.Fatal(err)
				}
				if err := f.lock.Execute(thr, f.readCS); err != nil {
					t.Fatal(err)
				}
			}
			var b strings.Builder
			if err := rt.WriteCSV(&b); err != nil {
				t.Fatal(err)
			}
			rows, err := csv.NewReader(strings.NewReader(b.String())).ReadAll()
			if err != nil {
				t.Fatalf("export is not valid CSV: %v", err)
			}
			if got, want := strings.Join(rows[0], ","), strings.Join(csvHeaderWant, ","); got != want {
				t.Errorf("CSV header changed:\n got %s\nwant %s", got, want)
			}
			want, err := os.ReadFile(filepath.Join("testdata", tc.golden))
			if err != nil {
				t.Fatal(err)
			}
			got := maskMeanColumns(t, b.String())
			if got != string(want) {
				t.Errorf("masked CSV export differs from testdata/%s:\n got:\n%s\nwant:\n%s",
					tc.golden, got, want)
			}
		})
	}
}
