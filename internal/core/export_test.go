package core

import (
	"encoding/csv"
	"strconv"
	"strings"
	"testing"

	"repro/internal/tm"
)

func TestWriteCSV(t *testing.T) {
	rt := NewRuntime(tm.NewDomain(htmProfile()))
	f := newPairFixture(rt, NewStatic(5, 5))
	thr := rt.NewThread()
	for i := 0; i < 100; i++ {
		if err := f.lock.Execute(thr, f.writeCS); err != nil {
			t.Fatal(err)
		}
		if err := f.lock.Execute(thr, f.readCS); err != nil {
			t.Fatal(err)
		}
	}
	var b strings.Builder
	if err := rt.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(strings.NewReader(b.String())).ReadAll()
	if err != nil {
		t.Fatalf("export is not valid CSV: %v", err)
	}
	if len(rows) != 3 { // header + 2 granules
		t.Fatalf("rows = %d, want 3", len(rows))
	}
	header := rows[0]
	col := map[string]int{}
	for i, name := range header {
		col[name] = i
	}
	for _, name := range []string{"lock", "context", "execs", "htm_successes", "aborts_conflict"} {
		if _, ok := col[name]; !ok {
			t.Fatalf("missing column %q in %v", name, header)
		}
	}
	foundWrite := false
	for _, row := range rows[1:] {
		if len(row) != len(header) {
			t.Fatalf("ragged row: %v", row)
		}
		if strings.Contains(row[col["context"]], "pair.Write") {
			foundWrite = true
			execs, err := strconv.Atoi(row[col["execs"]])
			if err != nil || execs != 100 {
				t.Errorf("pair.Write execs = %q, want 100", row[col["execs"]])
			}
		}
	}
	if !foundWrite {
		t.Error("no row for pair.Write")
	}
}
