package core

import (
	"runtime"

	"repro/internal/tm"
)

// ConflictMarker is the paper's refinement of the seqlock sequence number
// (the HashMap example's tblVer): a version cell that critical sections
// bump around explicitly identified *conflicting regions* — the (usually
// small) parts of a critical section that can interfere with concurrent
// SWOpt executions — instead of around the whole critical section.
//
// SWOpt paths read the marker with ReadStable before their optimistic
// reads and re-check it with Validate before trusting anything read since
// (the interleaved checks of the paper's Figure 1).
//
// Writers bracket conflicting code with BeginConflicting/EndConflicting.
// Each bumps the version once: the version is odd while a Lock-mode
// writer is inside the region (SWOpt readers wait for even), and a
// HTM-mode writer's two bumps commit atomically, so readers see the
// version jump by two.
//
// In HTM mode the bump is elided entirely when no SWOpt execution can be
// running (COULD_SWOPT_BE_RUNNING, paper section 3.3), which removes
// marker-induced conflicts between concurrent hardware transactions. The
// elision is safe because the activity check is performed *inside the
// transaction*: the indicator joins the transaction's read set, so a SWOpt
// arrival after the check aborts the writer before its (unmarked) mutation
// can be observed torn.
type ConflictMarker struct {
	lock *Lock
	ver  *tm.Var
}

// NewMarker creates a conflict marker associated with the lock. A data
// structure typically keeps one per lock (the HashMap's tblVer), or
// several for finer conflict granularity (e.g. one per bucket).
func (l *Lock) NewMarker() *ConflictMarker {
	return &ConflictMarker{lock: l, ver: l.rt.dom.NewVar(0)}
}

// BeginConflicting enters a conflicting region. Must not be called in
// SWOpt mode: an optimistic path that reaches a conflicting action must
// instead return ec.SelfAbort() or perform the action in a nested
// non-SWOpt critical section (paper section 3.3).
func (m *ConflictMarker) BeginConflicting(ec *ExecCtx) {
	// Balance accounting happens here rather than in bump so that
	// HTM-mode marker elision cannot skew it.
	if ec.inv != nil {
		ec.inv.beginRegion()
	}
	m.bump(ec)
}

// EndConflicting leaves a conflicting region.
func (m *ConflictMarker) EndConflicting(ec *ExecCtx) {
	if ec.inv != nil {
		ec.inv.endRegion()
	}
	// The stretch runs before the closing bump, so the region stays
	// observable (odd version in Lock mode) for its whole duration.
	if h := ec.lock.rt.disp.faults; h != nil {
		h.StretchConflicting()
	}
	m.bump(ec)
}

func (m *ConflictMarker) bump(ec *ExecCtx) {
	switch ec.mode {
	case ModeSWOpt:
		panic("ale: conflicting region entered in SWOpt mode")
	case ModeHTM:
		if ec.lock.rt.disp.markerElision {
			ind := m.lock.swoptActive
			// Cheap direct peek first so the indicator joins our read
			// set only when elision looks possible: when SWOpt threads
			// are active, subscribing to the (busy) indicator would
			// replace marker conflicts with indicator conflicts.
			if ind.LoadDirect() == 0 && ec.txn.Load(ind) == 0 {
				return // elide: no SWOpt can observe this region
			}
		}
		ec.txn.Add(m.ver, 1)
	case ModeLock:
		// Lock-mode writers always bump. (Eliding here would race with a
		// SWOpt reader arriving between the activity check and the
		// mutation; HTM mode closes that race by subscribing to the
		// indicator, Lock mode has no such mechanism.)
		m.ver.AddDirect(1)
	}
}

// ReadStable returns the marker version for a SWOpt path about to start
// reading, waiting until it is even (no Lock-mode writer inside a
// conflicting region) — the paper's GetVer(true).
func (m *ConflictMarker) ReadStable() uint64 {
	for spins := 0; ; spins++ {
		v := m.ver.LoadConsistent()
		if v&1 == 0 {
			return v
		}
		if spins > 16 {
			runtime.Gosched()
		}
	}
}

// Validate reports whether the marker still has version v — i.e. no
// conflicting region has executed since ReadStable returned v (the
// paper's GetVer(false) comparison). A SWOpt path validates before using
// any value read since its last validation.
func (m *ConflictMarker) Validate(v uint64) bool {
	return m.ver.LoadConsistent() == v
}

// ValidateIn re-checks the marker from inside a critical section, in the
// section's execution mode: in HTM mode the marker joins the transaction's
// read set, so a later bump aborts the transaction; in Lock mode it is a
// consistent direct read. The section 3.3 nested-mutation pattern uses
// this as its "first check if a conflict has occurred" step after the
// nested critical section is entered.
func (m *ConflictMarker) ValidateIn(ec *ExecCtx, v uint64) bool {
	ok := ec.Load(m.ver) == v
	// Clear after the load above, which itself counts as pending.
	if ec.inv != nil {
		ec.inv.pending = 0
	}
	// A forced failure is always a sound answer — callers must treat a
	// false as "conflict occurred, retry" — so injection drives the retry
	// and nested-invalidation paths without permitting a wrong result.
	if h := ec.lock.rt.disp.faults; h != nil && h.ForceValidateFail() {
		return false
	}
	return ok
}

// Version returns the raw marker version (diagnostics).
func (m *ConflictMarker) Version() uint64 { return m.ver.LoadConsistent() }
