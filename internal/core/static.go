package core

import "fmt"

// StaticPolicy is the paper's static policy (section 4.2): fixed X and Y
// for every critical section execution — up to X attempts using HTM (if
// available), then up to Y attempts using the SWOpt path (if available),
// then acquire the lock.
type StaticPolicy struct {
	x, y int
	name string
}

// NewStatic creates a static policy with the given retry budgets. X = 0
// disables HTM, Y = 0 disables SWOpt; the benchmark variant names follow
// the paper: NewStatic(10, 0) is Static-HTMLock-10 ("Static-HL-10"),
// NewStatic(0, 10) is Static-SWOPTLock-10 ("Static-SL-10"),
// NewStatic(10, 10) is Static-All-10:10.
func NewStatic(x, y int) *StaticPolicy {
	var name string
	switch {
	case x > 0 && y > 0:
		name = fmt.Sprintf("Static-All-%d:%d", x, y)
	case x > 0:
		name = fmt.Sprintf("Static-HL-%d", x)
	case y > 0:
		name = fmt.Sprintf("Static-SL-%d", y)
	default:
		name = "Static-Lock"
	}
	return &StaticPolicy{x: x, y: y, name: name}
}

// Name identifies the policy in reports.
func (p *StaticPolicy) Name() string { return p.name }

// Plan returns the fixed budgets, filtered by eligibility.
func (p *StaticPolicy) Plan(g *Granule, eligHTM, eligSWOpt bool) Plan {
	return Plan{
		UseHTM:   eligHTM && p.x > 0,
		X:        p.x,
		UseSWOpt: eligSWOpt && p.y > 0,
		Y:        p.y,
	}
}

// Done is a no-op: the static policy does not learn.
func (p *StaticPolicy) Done(g *Granule, rec *ExecRecord) {}

var _ Policy = (*StaticPolicy)(nil)

// LockOnlyPolicy always acquires the lock — the paper's "Instrumented"
// baseline: the critical sections are integrated with ALE (so statistics
// and profiling information are collected and instrumentation overhead is
// paid) but only the lock is ever used.
type LockOnlyPolicy struct{}

// NewLockOnly creates the Instrumented baseline policy.
func NewLockOnly() *LockOnlyPolicy { return &LockOnlyPolicy{} }

// Name identifies the policy in reports.
func (p *LockOnlyPolicy) Name() string { return "Instrumented" }

// Plan disables both elision modes.
func (p *LockOnlyPolicy) Plan(g *Granule, eligHTM, eligSWOpt bool) Plan {
	return Plan{}
}

// Done is a no-op.
func (p *LockOnlyPolicy) Done(g *Granule, rec *ExecRecord) {}

var _ Policy = (*LockOnlyPolicy)(nil)
