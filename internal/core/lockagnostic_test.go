package core

import (
	"sync"
	"testing"

	"repro/internal/locks"
	"repro/internal/tm"
)

// TestEngineLockAgnostic runs the full engine (HTM elision + SWOpt +
// fallback) over every lock implementation behind the LockAPI — the
// paper's "this approach enables the ALE library to be used with any type
// of lock" claim, end to end.
func TestEngineLockAgnostic(t *testing.T) {
	for _, tc := range []struct {
		name string
		mk   func(d *tm.Domain) locks.Ops
	}{
		{"tatas", func(d *tm.Domain) locks.Ops { return locks.NewTATAS(d) }},
		{"ticket", func(d *tm.Domain) locks.Ops { return locks.NewTicket(d) }},
		{"mcs", func(d *tm.Domain) locks.Ops { return locks.NewMCS(d) }},
		{"rw-write-side", func(d *tm.Domain) locks.Ops { return locks.NewRWLock(d).WriteSide() }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rt := NewRuntime(tm.NewDomain(htmProfile()))
			d := rt.Domain()
			l := rt.NewLock(tc.name, tc.mk(d), NewStatic(8, 8))
			marker := l.NewMarker()
			a, b := d.NewVar(0), d.NewVar(0)
			writeCS := &CS{
				Scope:       NewScope(tc.name + ".write"),
				Conflicting: true,
				Body: func(ec *ExecCtx) error {
					n := ec.Load(a) + 1
					marker.BeginConflicting(ec)
					ec.Store(a, n)
					ec.Store(b, n)
					marker.EndConflicting(ec)
					return nil
				},
			}
			readCS := &CS{
				Scope:    NewScope(tc.name + ".read"),
				HasSWOpt: true,
				Body: func(ec *ExecCtx) error {
					if ec.InSWOpt() {
						v := marker.ReadStable()
						x, y := ec.Load(a), ec.Load(b)
						if !marker.Validate(v) {
							return ec.SWOptFail()
						}
						if x != y {
							t.Error("torn validated read")
						}
						return nil
					}
					if x, y := ec.Load(a), ec.Load(b); x != y {
						t.Error("torn exclusive read")
					}
					return nil
				},
			}
			const writers, readers, per = 3, 3, 1500
			var wg sync.WaitGroup
			errCh := make(chan error, writers+readers)
			for w := 0; w < writers; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					thr := rt.NewThread()
					for i := 0; i < per; i++ {
						if err := l.Execute(thr, writeCS); err != nil {
							errCh <- err
							return
						}
					}
				}()
			}
			for r := 0; r < readers; r++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					thr := rt.NewThread()
					for i := 0; i < per; i++ {
						if err := l.Execute(thr, readCS); err != nil {
							errCh <- err
							return
						}
					}
				}()
			}
			wg.Wait()
			close(errCh)
			for err := range errCh {
				t.Fatal(err)
			}
			if got := a.LoadDirect(); got != writers*per || b.LoadDirect() != got {
				t.Errorf("a=%d b=%d, want both %d", got, b.LoadDirect(), writers*per)
			}
			// The elision machinery must have engaged on every lock type.
			var htm uint64
			for _, g := range l.Granules() {
				htm += g.Successes(ModeHTM)
			}
			if htm == 0 {
				t.Error("HTM never succeeded through this lock type")
			}
		})
	}
}
