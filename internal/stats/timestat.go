package stats

import (
	"runtime"
	"sync/atomic"
	"time"
)

// TimeStat accumulates sampled durations: a total-nanoseconds word and a
// sample-count word, each merged with CAS + exponential backoff. Because
// only ~3% of events are measured (callers gate on ShouldSample), CAS
// contention is rare; backoff mops up the rest, as described in the
// paper's section 4.3.
//
// The two words are not updated atomically together, so a concurrent Mean
// can be off by one in-flight sample — fine for policy guidance, which is
// the only consumer.
type TimeStat struct {
	sumNS atomic.Uint64
	count atomic.Uint64
}

// Add merges one measured duration.
func (t *TimeStat) Add(d time.Duration) {
	addWithBackoff(&t.sumNS, uint64(d.Nanoseconds()))
	addWithBackoff(&t.count, 1)
}

// Count returns how many samples have been merged.
func (t *TimeStat) Count() uint64 { return t.count.Load() }

// Mean returns the mean sampled duration, or 0 if nothing was sampled.
func (t *TimeStat) Mean() time.Duration {
	c := t.count.Load()
	if c == 0 {
		return 0
	}
	return time.Duration(t.sumNS.Load() / c)
}

// Sum returns the total of merged durations.
func (t *TimeStat) Sum() time.Duration { return time.Duration(t.sumNS.Load()) }

// Reset zeroes the statistic.
func (t *TimeStat) Reset() {
	t.sumNS.Store(0)
	t.count.Store(0)
}

// addWithBackoff is a CAS add with exponential backoff; under the sampled
// update rates of this package a plain atomic add would also do, but the
// paper specifically calls out CAS + backoff, and the backoff variant
// behaves better if a caller samples at 100% (the ablation benchmark does).
func addWithBackoff(w *atomic.Uint64, delta uint64) {
	for attempt := 0; ; attempt++ {
		x := w.Load()
		if w.CompareAndSwap(x, x+delta) {
			return
		}
		for i := 0; i < 1<<uint(min(attempt, 10)); i++ {
			if i&63 == 63 {
				runtime.Gosched()
			}
		}
	}
}

// Histogram is a fixed-bucket histogram of small non-negative integers —
// the adaptive policy records "attempts needed for HTM success" in one.
// Values beyond the last bucket are clamped into it.
type Histogram struct {
	buckets []atomic.Uint64
}

// NewHistogram creates a histogram with buckets for values 0..n-1 (values
// >= n-1 land in the last bucket).
func NewHistogram(n int) *Histogram {
	if n < 1 {
		n = 1
	}
	return &Histogram{buckets: make([]atomic.Uint64, n)}
}

// Record adds one observation of value v.
func (h *Histogram) Record(v int) {
	if v < 0 {
		v = 0
	}
	if v >= len(h.buckets) {
		v = len(h.buckets) - 1
	}
	h.buckets[v].Add(1)
}

// Bucket returns the count in bucket v.
func (h *Histogram) Bucket(v int) uint64 {
	if v < 0 || v >= len(h.buckets) {
		return 0
	}
	return h.buckets[v].Load()
}

// Len returns the number of buckets.
func (h *Histogram) Len() int { return len(h.buckets) }

// Total returns the number of recorded observations.
func (h *Histogram) Total() uint64 {
	var t uint64
	for i := range h.buckets {
		t += h.buckets[i].Load()
	}
	return t
}

// Reset zeroes all buckets.
func (h *Histogram) Reset() {
	for i := range h.buckets {
		h.buckets[i].Store(0)
	}
}
