package stats

import "math/bits"

// Log-bucketed latency histogram math, shared by the obs timing layer
// (internal/obs LatShard) and the granule contention profiler. The bucket
// scheme is fixed at compile time so a histogram is a flat array of
// NumLogBuckets counters and recording is branch-free index arithmetic —
// no float math, no search, no allocation.
//
// Bucket i covers the half-open nanosecond range
//
//	[LogBucketUpper(i-1), LogBucketUpper(i))
//
// with LogBucketUpper(-1) taken as 0. Boundaries are powers of two
// starting at logBucketMin ns, so bucket 0 absorbs everything below the
// clock's useful resolution and the last bucket absorbs everything beyond
// ~68 s (clamped, like stats.Histogram). Power-of-two boundaries bound the
// relative error of any bucket-derived quantile by a factor of 2 — plenty
// for "where do the cycles go" profiling, and the property test in
// logbucket_test.go pins that bound against a reference implementation.

// NumLogBuckets is the number of latency buckets.
const NumLogBuckets = 32

// logBucketMinShift sets the first boundary: bucket 0 covers
// [0, 1<<(logBucketMinShift+1)) ns = [0, 64ns).
const logBucketMinShift = 5

// LogBucketOf maps a duration in nanoseconds to its bucket index.
// Non-positive durations land in bucket 0; durations past the last
// boundary are clamped into the final bucket.
func LogBucketOf(ns int64) int {
	if ns <= 0 {
		return 0
	}
	b := bits.Len64(uint64(ns)) - logBucketMinShift - 1
	if b < 0 {
		return 0
	}
	if b >= NumLogBuckets {
		return NumLogBuckets - 1
	}
	return b
}

// LogBucketUpper returns bucket i's exclusive upper boundary in
// nanoseconds. The last bucket is open-ended; its reported boundary is
// still returned (values beyond it are clamped in, see LogBucketOf).
func LogBucketUpper(i int) int64 {
	if i < 0 {
		return 0
	}
	if i >= NumLogBuckets {
		i = NumLogBuckets - 1
	}
	return 1 << (logBucketMinShift + 1 + i)
}

// QuantileFromLogBuckets estimates the q-quantile (0 ≤ q ≤ 1) of the
// recorded distribution as the upper boundary of the bucket containing
// that rank — the same conservative estimate a Prometheus `le` histogram
// yields. Returns 0 for an empty histogram. The estimate never
// undershoots the true value and overshoots by at most 2× (one bucket).
func QuantileFromLogBuckets(buckets []uint64, q float64) int64 {
	var total uint64
	for _, n := range buckets {
		total += n
	}
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// rank is the 1-based index of the order statistic we want.
	rank := uint64(q*float64(total-1)) + 1
	var cum uint64
	for i, n := range buckets {
		cum += n
		if cum >= rank {
			return LogBucketUpper(i)
		}
	}
	return LogBucketUpper(len(buckets) - 1)
}

// MaxFromLogBuckets returns the upper boundary of the highest non-empty
// bucket (an upper bound on the maximum recorded value), or 0 when empty.
func MaxFromLogBuckets(buckets []uint64) int64 {
	for i := len(buckets) - 1; i >= 0; i-- {
		if buckets[i] > 0 {
			return LogBucketUpper(i)
		}
	}
	return 0
}
