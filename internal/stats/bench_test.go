package stats

import (
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/xrand"
)

// The BFP counter's reason to exist: shared-counter increments that cost
// (almost) nothing once the count is large. Compare against the exact
// atomic baseline under parallel increment pressure.

func BenchmarkBFPCounterSequential(b *testing.B) {
	var c Counter
	rng := xrand.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc(rng)
	}
}

func BenchmarkBFPCounterParallel(b *testing.B) {
	var c Counter
	var seed atomic.Uint64
	b.RunParallel(func(pb *testing.PB) {
		rng := xrand.New(seed.Add(1))
		for pb.Next() {
			c.Inc(rng)
		}
	})
}

func BenchmarkExactCounterParallel(b *testing.B) {
	var c ExactCounter
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

func BenchmarkTimeStatSampledPath(b *testing.B) {
	// The real usage pattern: draw the sampling decision, measure only
	// on hits (~3%).
	var ts TimeStat
	rng := xrand.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if ShouldSample(rng) {
			ts.Add(time.Microsecond)
		}
	}
}

func BenchmarkTimeStatAlwaysTimed(b *testing.B) {
	var ts TimeStat
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ts.Add(time.Microsecond)
	}
}

func BenchmarkHistogramRecord(b *testing.B) {
	h := NewHistogram(42)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Record(i & 31)
	}
}
