package stats

import (
	"math"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/xrand"
)

func TestCounterSmallCountsExact(t *testing.T) {
	var c Counter
	rng := xrand.New(1)
	// Below the migration threshold every increment is deterministic.
	for i := 1; i < migrate; i++ {
		c.Inc(rng)
		if got := c.Read(); got != uint64(i) {
			t.Fatalf("after %d incs Read = %d", i, got)
		}
	}
}

func TestCounterLargeCountsApproximate(t *testing.T) {
	var c Counter
	rng := xrand.New(7)
	const n = 200000
	for i := 0; i < n; i++ {
		c.Inc(rng)
	}
	got := float64(c.Read())
	if math.Abs(got-n)/n > 0.15 {
		t.Errorf("Read = %.0f, want within 15%% of %d", got, n)
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	const workers, per = 8, 50000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := xrand.New(uint64(id) + 1)
			for i := 0; i < per; i++ {
				c.Inc(rng)
			}
		}(w)
	}
	wg.Wait()
	const n = workers * per
	got := float64(c.Read())
	if math.Abs(got-n)/n > 0.15 {
		t.Errorf("Read = %.0f, want within 15%% of %d", got, n)
	}
}

func TestCounterReset(t *testing.T) {
	var c Counter
	rng := xrand.New(1)
	for i := 0; i < 100; i++ {
		c.Inc(rng)
	}
	c.Reset()
	if got := c.Read(); got != 0 {
		t.Errorf("Read after Reset = %d", got)
	}
}

// TestQuickCounterExpectation: across random seeds, the counter's estimate
// of a fixed count stays within a loose statistical envelope. This is the
// BFP accuracy contract the paper leans on ("high accuracy even after
// relatively small numbers of events").
func TestQuickCounterExpectation(t *testing.T) {
	f := func(seed uint64) bool {
		var c Counter
		rng := xrand.New(seed)
		const n = 20000
		for i := 0; i < n; i++ {
			c.Inc(rng)
		}
		got := float64(c.Read())
		return math.Abs(got-n)/n < 0.30
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestExactCounter(t *testing.T) {
	var c ExactCounter
	c.Inc()
	c.Add(9)
	if got := c.Read(); got != 10 {
		t.Errorf("Read = %d, want 10", got)
	}
	c.Reset()
	if got := c.Read(); got != 0 {
		t.Errorf("Read after Reset = %d", got)
	}
}

func TestTimeStatMean(t *testing.T) {
	var ts TimeStat
	ts.Add(10 * time.Microsecond)
	ts.Add(30 * time.Microsecond)
	if got := ts.Mean(); got != 20*time.Microsecond {
		t.Errorf("Mean = %v, want 20µs", got)
	}
	if got := ts.Count(); got != 2 {
		t.Errorf("Count = %d, want 2", got)
	}
	if got := ts.Sum(); got != 40*time.Microsecond {
		t.Errorf("Sum = %v, want 40µs", got)
	}
	ts.Reset()
	if ts.Mean() != 0 || ts.Count() != 0 {
		t.Error("Reset did not zero the statistic")
	}
}

func TestTimeStatEmptyMean(t *testing.T) {
	var ts TimeStat
	if got := ts.Mean(); got != 0 {
		t.Errorf("Mean of empty stat = %v", got)
	}
}

func TestTimeStatConcurrent(t *testing.T) {
	var ts TimeStat
	const workers, per = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				ts.Add(time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if got := ts.Count(); got != workers*per {
		t.Errorf("Count = %d, want %d", got, workers*per)
	}
	if got := ts.Mean(); got != time.Microsecond {
		t.Errorf("Mean = %v, want 1µs", got)
	}
}

func TestShouldSampleRate(t *testing.T) {
	rng := xrand.New(3)
	const trials = 200000
	hits := 0
	for i := 0; i < trials; i++ {
		if ShouldSample(rng) {
			hits++
		}
	}
	rate := float64(hits) / trials
	if rate < 0.02 || rate > 0.04 {
		t.Errorf("sample rate = %.4f, want ~%.2f", rate, SampleProb)
	}
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram(5)
	h.Record(0)
	h.Record(2)
	h.Record(2)
	h.Record(99) // clamps into last bucket
	h.Record(-3) // clamps into first bucket
	if got := h.Bucket(0); got != 2 {
		t.Errorf("bucket 0 = %d, want 2", got)
	}
	if got := h.Bucket(2); got != 2 {
		t.Errorf("bucket 2 = %d, want 2", got)
	}
	if got := h.Bucket(4); got != 1 {
		t.Errorf("bucket 4 = %d, want 1", got)
	}
	if got := h.Bucket(17); got != 0 {
		t.Errorf("out-of-range bucket = %d, want 0", got)
	}
	if got := h.Total(); got != 5 {
		t.Errorf("Total = %d, want 5", got)
	}
	if got := h.Len(); got != 5 {
		t.Errorf("Len = %d, want 5", got)
	}
	h.Reset()
	if got := h.Total(); got != 0 {
		t.Errorf("Total after Reset = %d", got)
	}
}

func TestHistogramMinSize(t *testing.T) {
	h := NewHistogram(0)
	h.Record(7)
	if got := h.Bucket(0); got != 1 {
		t.Errorf("bucket 0 = %d, want 1", got)
	}
}
