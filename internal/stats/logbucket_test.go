package stats

import (
	"math/rand"
	"sort"
	"testing"
)

func TestLogBucketBoundaries(t *testing.T) {
	if got := LogBucketOf(0); got != 0 {
		t.Errorf("LogBucketOf(0) = %d, want 0", got)
	}
	if got := LogBucketOf(-5); got != 0 {
		t.Errorf("LogBucketOf(-5) = %d, want 0", got)
	}
	// Every bucket's boundary values: Upper(i)-1 lands in bucket i,
	// Upper(i) lands in bucket i+1 (except the clamped last bucket).
	for i := 0; i < NumLogBuckets; i++ {
		up := LogBucketUpper(i)
		if got := LogBucketOf(up - 1); got != i {
			t.Errorf("LogBucketOf(%d) = %d, want %d", up-1, got, i)
		}
		want := i + 1
		if want >= NumLogBuckets {
			want = NumLogBuckets - 1
		}
		if got := LogBucketOf(up); got != want {
			t.Errorf("LogBucketOf(%d) = %d, want %d", up, got, want)
		}
	}
	// Boundaries are strictly increasing.
	for i := 1; i < NumLogBuckets; i++ {
		if LogBucketUpper(i) <= LogBucketUpper(i-1) {
			t.Errorf("boundary %d (%d) not past boundary %d (%d)",
				i, LogBucketUpper(i), i-1, LogBucketUpper(i-1))
		}
	}
	if LogBucketUpper(-1) != 0 {
		t.Errorf("LogBucketUpper(-1) = %d, want 0", LogBucketUpper(-1))
	}
}

// TestQuantileErrorBoundProperty records batches of known values and
// checks every bucket-derived quantile against the exact order statistic:
// the estimate must never undershoot, and must stay within one power-of-2
// bucket (2×, plus the bottom bucket's 64ns floor) of the truth.
func TestQuantileErrorBoundProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	quantiles := []float64{0, 0.25, 0.5, 0.9, 0.99, 1}
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(2000)
		values := make([]int64, n)
		var buckets [NumLogBuckets]uint64
		for i := range values {
			// Mix magnitudes: a log-uniform draw covers every bucket up
			// to (but not past) the clamped tail, which is pinned by
			// TestQuantileClampedTail separately.
			v := int64(1) << uint(rng.Intn(36))
			v += rng.Int63n(v + 1)
			values[i] = v
			buckets[LogBucketOf(v)]++
		}
		sort.Slice(values, func(i, j int) bool { return values[i] < values[j] })
		for _, q := range quantiles {
			exact := values[int(q*float64(n-1))]
			est := QuantileFromLogBuckets(buckets[:], q)
			if est < exact {
				t.Fatalf("trial %d q=%v: estimate %d undershoots exact %d", trial, q, est, exact)
			}
			bound := 2*exact + 64
			if clamp := LogBucketUpper(NumLogBuckets - 1); exact >= clamp {
				bound = clamp // clamped tail: estimate pinned to last boundary
			}
			if est > bound {
				t.Fatalf("trial %d q=%v: estimate %d exceeds error bound %d (exact %d)",
					trial, q, est, bound, exact)
			}
		}
		// Max behaves like a quantile at q=1.
		max := MaxFromLogBuckets(buckets[:])
		if exact := values[n-1]; max < exact || (max > 2*exact+64 && exact < LogBucketUpper(NumLogBuckets-1)) {
			t.Fatalf("trial %d: max estimate %d vs exact %d", trial, max, values[n-1])
		}
	}
}

// TestQuantileClampedTail: values past the last boundary are clamped
// into the final bucket, so estimates there are pinned to its boundary —
// an undershoot the scheme accepts by design (documented in logbucket.go).
func TestQuantileClampedTail(t *testing.T) {
	var buckets [NumLogBuckets]uint64
	huge := int64(1) << 40 // well past the ~68s last boundary
	buckets[LogBucketOf(huge)]++
	clamp := LogBucketUpper(NumLogBuckets - 1)
	if got := QuantileFromLogBuckets(buckets[:], 1); got != clamp {
		t.Errorf("clamped quantile = %d, want last boundary %d", got, clamp)
	}
	if got := MaxFromLogBuckets(buckets[:]); got != clamp {
		t.Errorf("clamped max = %d, want last boundary %d", got, clamp)
	}
}

func TestQuantileEmpty(t *testing.T) {
	var empty [NumLogBuckets]uint64
	if got := QuantileFromLogBuckets(empty[:], 0.5); got != 0 {
		t.Errorf("empty quantile = %d, want 0", got)
	}
	if got := MaxFromLogBuckets(empty[:]); got != 0 {
		t.Errorf("empty max = %d, want 0", got)
	}
}
