package stats

import (
	"math/rand"
	"sort"
	"testing"
)

func TestLogBucketBoundaries(t *testing.T) {
	if got := LogBucketOf(0); got != 0 {
		t.Errorf("LogBucketOf(0) = %d, want 0", got)
	}
	if got := LogBucketOf(-5); got != 0 {
		t.Errorf("LogBucketOf(-5) = %d, want 0", got)
	}
	// Every bucket's boundary values: Upper(i)-1 lands in bucket i,
	// Upper(i) lands in bucket i+1 (except the clamped last bucket).
	for i := 0; i < NumLogBuckets; i++ {
		up := LogBucketUpper(i)
		if got := LogBucketOf(up - 1); got != i {
			t.Errorf("LogBucketOf(%d) = %d, want %d", up-1, got, i)
		}
		want := i + 1
		if want >= NumLogBuckets {
			want = NumLogBuckets - 1
		}
		if got := LogBucketOf(up); got != want {
			t.Errorf("LogBucketOf(%d) = %d, want %d", up, got, want)
		}
	}
	// Boundaries are strictly increasing.
	for i := 1; i < NumLogBuckets; i++ {
		if LogBucketUpper(i) <= LogBucketUpper(i-1) {
			t.Errorf("boundary %d (%d) not past boundary %d (%d)",
				i, LogBucketUpper(i), i-1, LogBucketUpper(i-1))
		}
	}
	if LogBucketUpper(-1) != 0 {
		t.Errorf("LogBucketUpper(-1) = %d, want 0", LogBucketUpper(-1))
	}
}

// TestQuantileErrorBoundProperty records batches of known values and
// checks every bucket-derived quantile against the exact order statistic:
// the estimate must never undershoot, and must stay within one power-of-2
// bucket (2×, plus the bottom bucket's 64ns floor) of the truth.
func TestQuantileErrorBoundProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	quantiles := []float64{0, 0.25, 0.5, 0.9, 0.99, 1}
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(2000)
		values := make([]int64, n)
		var buckets [NumLogBuckets]uint64
		for i := range values {
			// Mix magnitudes: a log-uniform draw covers every bucket up
			// to (but not past) the clamped tail, which is pinned by
			// TestQuantileClampedTail separately.
			v := int64(1) << uint(rng.Intn(36))
			v += rng.Int63n(v + 1)
			values[i] = v
			buckets[LogBucketOf(v)]++
		}
		sort.Slice(values, func(i, j int) bool { return values[i] < values[j] })
		for _, q := range quantiles {
			exact := values[int(q*float64(n-1))]
			est := QuantileFromLogBuckets(buckets[:], q)
			if est < exact {
				t.Fatalf("trial %d q=%v: estimate %d undershoots exact %d", trial, q, est, exact)
			}
			bound := 2*exact + 64
			if clamp := LogBucketUpper(NumLogBuckets - 1); exact >= clamp {
				bound = clamp // clamped tail: estimate pinned to last boundary
			}
			if est > bound {
				t.Fatalf("trial %d q=%v: estimate %d exceeds error bound %d (exact %d)",
					trial, q, est, bound, exact)
			}
		}
		// Max behaves like a quantile at q=1.
		max := MaxFromLogBuckets(buckets[:])
		if exact := values[n-1]; max < exact || (max > 2*exact+64 && exact < LogBucketUpper(NumLogBuckets-1)) {
			t.Fatalf("trial %d: max estimate %d vs exact %d", trial, max, values[n-1])
		}
	}
}

// TestQuantileClampedTail: values past the last boundary are clamped
// into the final bucket, so estimates there are pinned to its boundary —
// an undershoot the scheme accepts by design (documented in logbucket.go).
func TestQuantileClampedTail(t *testing.T) {
	var buckets [NumLogBuckets]uint64
	huge := int64(1) << 40 // well past the ~68s last boundary
	buckets[LogBucketOf(huge)]++
	clamp := LogBucketUpper(NumLogBuckets - 1)
	if got := QuantileFromLogBuckets(buckets[:], 1); got != clamp {
		t.Errorf("clamped quantile = %d, want last boundary %d", got, clamp)
	}
	if got := MaxFromLogBuckets(buckets[:]); got != clamp {
		t.Errorf("clamped max = %d, want last boundary %d", got, clamp)
	}
}

func TestQuantileEmpty(t *testing.T) {
	var empty [NumLogBuckets]uint64
	// Every quantile of an empty histogram is 0, including the extremes
	// and out-of-range q values (which are clamped, not rejected).
	for _, q := range []float64{-1, 0, 0.5, 1, 2} {
		if got := QuantileFromLogBuckets(empty[:], q); got != 0 {
			t.Errorf("empty quantile(%v) = %d, want 0", q, got)
		}
	}
	if got := MaxFromLogBuckets(empty[:]); got != 0 {
		t.Errorf("empty max = %d, want 0", got)
	}
	// A nil slice is an empty histogram too (a zero-valued snapshot).
	if got := QuantileFromLogBuckets(nil, 0.5); got != 0 {
		t.Errorf("nil quantile = %d, want 0", got)
	}
	if got := MaxFromLogBuckets(nil); got != 0 {
		t.Errorf("nil max = %d, want 0", got)
	}
}

// TestQuantileSingleBucketMass: with all mass in one bucket, every
// quantile — including the clamped out-of-range ones — must return that
// bucket's upper boundary, regardless of the count. The compare path
// leans on this: two runs whose latencies quantize into the same bucket
// must report identical percentiles, not count-dependent drift.
func TestQuantileSingleBucketMass(t *testing.T) {
	for _, bucket := range []int{0, 1, 7, NumLogBuckets - 2} {
		for _, count := range []uint64{1, 2, 1000} {
			var buckets [NumLogBuckets]uint64
			buckets[bucket] = count
			want := LogBucketUpper(bucket)
			for _, q := range []float64{-0.5, 0, 0.25, 0.5, 0.99, 1, 1.5} {
				if got := QuantileFromLogBuckets(buckets[:], q); got != want {
					t.Errorf("bucket %d count %d: quantile(%v) = %d, want %d",
						bucket, count, q, got, want)
				}
			}
			if got := MaxFromLogBuckets(buckets[:]); got != want {
				t.Errorf("bucket %d count %d: max = %d, want %d", bucket, count, got, want)
			}
		}
	}
}

// TestQuantileAllMassClampedTail: a histogram whose every recording
// overflowed into the clamped final bucket pins all quantiles to the
// last boundary — the documented undershoot. This is the degenerate
// shape a runaway workload produces, and the compare path must see two
// such runs as identical rather than diverging on clamped garbage.
func TestQuantileAllMassClampedTail(t *testing.T) {
	var buckets [NumLogBuckets]uint64
	buckets[NumLogBuckets-1] = 12345
	clamp := LogBucketUpper(NumLogBuckets - 1)
	for _, q := range []float64{0, 0.5, 0.999, 1} {
		if got := QuantileFromLogBuckets(buckets[:], q); got != clamp {
			t.Errorf("all-clamped quantile(%v) = %d, want %d", q, got, clamp)
		}
	}
	if got := MaxFromLogBuckets(buckets[:]); got != clamp {
		t.Errorf("all-clamped max = %d, want %d", got, clamp)
	}
}
