// Package stats provides the low-overhead shared statistics primitives the
// ALE library records its profiling information with (paper section 4.3):
//
//   - Counter: a scalable statistical counter after the BFP algorithm of
//     Dice, Lev and Moir (SPAA 2013). Event counts are incremented with a
//     probability that decays as the count grows, while each successful
//     update adds the reciprocal of that probability, keeping the
//     expectation exact and the variance bounded. This keeps hot shared
//     counters off the coherence critical path: most increments touch no
//     shared memory at all once the count is large.
//
//   - TimeStat: duration statistics sampled at ~3% of events and merged
//     into shared summary words with CAS plus exponential backoff, exactly
//     the approach the paper describes for timing information (which the
//     BFP algorithm cannot record, as it only supports +1 increments).
//
//   - Histogram: a small fixed-bucket histogram used by the adaptive
//     policy's learning mechanism to record attempts-to-success in HTM
//     mode.
package stats

import (
	"runtime"
	"sync/atomic"

	"repro/internal/xrand"
)

// SampleProb is the fraction of events whose timing is measured, following
// the paper's "approximately 3% of events".
const SampleProb = 0.03

// sampleThresh is SampleProb as a uint64 threshold for raw PRNG draws.
var sampleThresh = uint64(SampleProb * float64(1<<63) * 2)

// ShouldSample draws whether this event's timing should be measured.
func ShouldSample(rng *xrand.State) bool {
	return rng.Uint64() < sampleThresh
}

// Counter is a BFP statistical counter. The shared state packs a 6-bit
// exponent e and a 58-bit mantissa n; the represented value is n << e. An
// increment updates the mantissa only with probability 2^-e, adding 1 in
// expectation; when the mantissa reaches the migration threshold it is
// halved and the exponent bumped, halving the future update rate.
//
// The zero Counter is ready to use. Increments need the calling thread's
// PRNG; reads are a single load.
type Counter struct {
	state atomic.Uint64
}

const (
	expBits = 6
	expMask = 1<<expBits - 1
	mantMax = 1 << (64 - expBits - 1)
	// migrate is the mantissa value at which the exponent is bumped.
	// Larger values give better accuracy and more shared updates; 256
	// keeps the relative standard error under ~10%, plenty for
	// retry-policy decisions while still thinning update traffic by
	// orders of magnitude on hot counters.
	migrate = 256
)

func packCtr(n uint64, e uint64) uint64 { return n<<expBits | e }
func unpackCtr(x uint64) (n, e uint64)  { return x >> expBits, x & expMask }

// Inc adds 1 to the counter in expectation.
func (c *Counter) Inc(rng *xrand.State) {
	for attempt := 0; ; attempt++ {
		x := c.state.Load()
		n, e := unpackCtr(x)
		if e > 0 {
			// Update with probability 2^-e: keep the low e bits of a draw.
			if rng.Uint64()&(1<<e-1) != 0 {
				return // skipped update still counts 1 in expectation
			}
		}
		var nx uint64
		if n+1 >= migrate && e < expMask && n+1 < mantMax {
			nx = packCtr((n+1)/2, e+1)
		} else {
			nx = packCtr(n+1, e)
		}
		if c.state.CompareAndSwap(x, nx) {
			return
		}
		// Contention: exponential backoff, as in the paper, then retry so
		// the probabilistic accounting stays unbiased.
		for i := 0; i < 1<<uint(min(attempt, 10)); i++ {
			if i&63 == 63 {
				runtime.Gosched()
			}
		}
	}
}

// Read returns the current estimate of the count.
func (c *Counter) Read() uint64 {
	n, e := unpackCtr(c.state.Load())
	return n << e
}

// Reset zeroes the counter.
func (c *Counter) Reset() { c.state.Store(0) }

// ExactCounter is a plain atomic counter for cold paths and tests where
// exactness matters more than scalability.
type ExactCounter struct {
	n atomic.Uint64
}

// Inc adds 1.
func (c *ExactCounter) Inc() { c.n.Add(1) }

// Add adds delta.
func (c *ExactCounter) Add(delta uint64) { c.n.Add(delta) }

// Read returns the count.
func (c *ExactCounter) Read() uint64 { return c.n.Load() }

// Reset zeroes the counter.
func (c *ExactCounter) Reset() { c.n.Store(0) }
