package stats

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

// Property tests for the statistics math the adaptive policy leans on:
// the histogram's bucket accounting (including clamping) against a
// reference implementation, the cumulative attempts-to-success fractions
// derived from it, and the BFP counter's packing and monotonicity.

// TestHistogramMatchesReference records random tapes — spanning
// negatives, in-range values, and past-the-end values — and demands the
// histogram agree with a straightforward reference map under the
// documented clamping rules.
func TestHistogramMatchesReference(t *testing.T) {
	f := func(seed uint64, sizeRaw uint8) bool {
		n := int(sizeRaw%12) + 1
		h := NewHistogram(n)
		ref := make([]uint64, n)
		rng := xrand.New(seed)
		const records = 500
		for i := 0; i < records; i++ {
			v := int(int8(rng.Uint64())) // [-128, 127]: negatives and overflow
			h.Record(v)
			cl := v
			if cl < 0 {
				cl = 0
			}
			if cl >= n {
				cl = n - 1
			}
			ref[cl]++
		}
		if h.Total() != records {
			return false
		}
		for i := 0; i < n; i++ {
			if h.Bucket(i) != ref[i] {
				return false
			}
		}
		return h.Bucket(-1) == 0 && h.Bucket(n) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// successWithin is the attempts-to-success statistic the adaptive policy
// computes from a histogram (bucket 0 = never succeeded in HTM, bucket a
// = succeeded at attempt a): the fraction of executions that succeed
// within an attempt budget of x.
func successWithin(h *Histogram, x int) float64 {
	total := h.Total()
	if total == 0 {
		return 0
	}
	var succ uint64
	for a := 1; a <= x; a++ {
		succ += h.Bucket(a)
	}
	return float64(succ) / float64(total)
}

// TestAttemptsToSuccessMath pins the cumulative fractions on hand-built
// distributions.
func TestAttemptsToSuccessMath(t *testing.T) {
	cases := []struct {
		name    string
		buckets int
		record  []int
		cum     []float64 // cum[i] = successWithin(h, i+1)
	}{
		{
			name:    "all-first-attempt",
			buckets: 4,
			record:  []int{1, 1, 1, 1},
			cum:     []float64{1, 1, 1},
		},
		{
			name:    "never-succeeds",
			buckets: 4,
			record:  []int{0, 0, 0},
			cum:     []float64{0, 0, 0},
		},
		{
			name:    "mixed",
			buckets: 4,
			record:  []int{1, 1, 2, 0},
			cum:     []float64{0.5, 0.75, 0.75},
		},
		{
			name:    "clamped-into-last",
			buckets: 4,
			record:  []int{1, 99, 99, 3},
			cum:     []float64{0.25, 0.25, 1}, // 99s clamp into bucket 3
		},
		{
			name:    "empty",
			buckets: 4,
			record:  nil,
			cum:     []float64{0, 0, 0},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			h := NewHistogram(tc.buckets)
			for _, v := range tc.record {
				h.Record(v)
			}
			for i, want := range tc.cum {
				if got := successWithin(h, i+1); math.Abs(got-want) > 1e-12 {
					t.Errorf("successWithin(%d) = %g, want %g", i+1, got, want)
				}
			}
		})
	}
}

// TestAttemptsToSuccessMonotone: for any recorded tape, the cumulative
// success fraction is nondecreasing in the attempt budget and bounded by
// [0, 1] — the property the cost model's minimization relies on.
func TestAttemptsToSuccessMonotone(t *testing.T) {
	f := func(seed uint64) bool {
		h := NewHistogram(10)
		rng := xrand.New(seed)
		for i := 0; i < 300; i++ {
			h.Record(int(rng.Uint64n(12)))
		}
		prev := 0.0
		for x := 1; x < h.Len(); x++ {
			p := successWithin(h, x)
			if p < prev || p < 0 || p > 1 {
				return false
			}
			prev = p
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestCounterPackRoundTrip: the BFP counter's state packing is lossless
// over its full (mantissa, exponent) domain.
func TestCounterPackRoundTrip(t *testing.T) {
	f := func(nRaw, eRaw uint64) bool {
		n, e := nRaw%mantMax, eRaw&expMask
		gn, ge := unpackCtr(packCtr(n, e))
		return gn == n && ge == e
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestCounterMonotone: the counter estimate never decreases as
// increments accrue — migration halves the mantissa but bumps the
// exponent, so the represented value n<<e is nondecreasing.
func TestCounterMonotone(t *testing.T) {
	f := func(seed uint64) bool {
		var c Counter
		rng := xrand.New(seed)
		prev := uint64(0)
		for i := 0; i < 5000; i++ {
			c.Inc(rng)
			if v := c.Read(); v < prev {
				return false
			} else {
				prev = v
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
