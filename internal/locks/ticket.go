package locks

import "repro/internal/tm"

// Ticket is a FIFO ticket lock in one tm.Var word. It exists to exercise
// the paper's claim that ALE works with *any* lock type through the
// LockAPI: the ALE engine only needs acquire/release/is-locked plus a
// subscribable word, and the ticket lock's held-test differs structurally
// from TATAS's (two counters instead of a flag).
//
// Word layout: next ticket in the high 32 bits, current owner in the low
// 32 bits; the lock is free iff the halves are equal.
type Ticket struct {
	word *tm.Var
}

const ticketShift = 32

// NewTicket allocates a free ticket lock in domain d.
func NewTicket(d *tm.Domain) *Ticket {
	return &Ticket{word: d.NewVar(0)}
}

// Acquire draws a ticket and spins until it is served.
func (l *Ticket) Acquire() {
	var mine uint64
	for {
		w := l.word.LoadDirect()
		if l.word.CASDirect(w, w+(1<<ticketShift)) {
			mine = w >> ticketShift
			break
		}
	}
	var b backoff
	for {
		w := l.word.LoadDirect()
		if w&(1<<ticketShift-1) == mine&(1<<ticketShift-1) {
			return
		}
		b.pause()
	}
}

// TryAcquire takes the lock iff no one holds or awaits it.
func (l *Ticket) TryAcquire() bool {
	w := l.word.LoadDirect()
	if w>>ticketShift != w&(1<<ticketShift-1) {
		return false
	}
	return l.word.CASDirect(w, w+(1<<ticketShift))
}

// Release serves the next ticket. The caller must hold the lock.
func (l *Ticket) Release() {
	for {
		w := l.word.LoadDirect()
		if w>>ticketShift == w&(1<<ticketShift-1) {
			panic("locks: Ticket.Release without holding")
		}
		owner := (w + 1) & (1<<ticketShift - 1)
		if l.word.CASDirect(w, w&^(1<<ticketShift-1)|owner) {
			return
		}
	}
}

// IsLocked reports whether the lock is held (or queued for).
func (l *Ticket) IsLocked() bool { return l.HeldValue(l.word.LoadDirect()) }

// Word returns the lock word for HTM subscription.
func (l *Ticket) Word() *tm.Var { return l.word }

// HeldValue interprets a raw word: held iff next != owner.
func (l *Ticket) HeldValue(w uint64) bool {
	return w>>ticketShift != w&(1<<ticketShift-1)
}

var _ Ops = (*Ticket)(nil)
