package locks

import "repro/internal/tm"

// RWLock is a writer-preference readers-writer lock in a single tm.Var
// word, used by the Kyoto Cabinet substrate as its "method lock" (the
// paper's section 5 experiments elide it on the read side).
//
// Word layout:
//
//	bit 0        writer active
//	bit 1        writer waiting (blocks new readers: writer preference)
//	bits 2..63   active reader count
//
// The two sides of the lock are exposed as separate Ops views
// (ReadSide/WriteSide) because they have different conflict semantics:
// a reader conflicts only with writers, a writer conflicts with everyone.
// ALE wraps each side in its own elidable lock while both drive the same
// physical word.
type RWLock struct {
	word *tm.Var
}

const (
	rwWriter  = 1 << 0
	rwPending = 1 << 1
	rwReader  = 1 << 2 // increment per reader
)

// NewRWLock allocates a free readers-writer lock in domain d.
func NewRWLock(d *tm.Domain) *RWLock {
	return &RWLock{word: d.NewVar(0)}
}

// Word returns the shared lock word (both sides subscribe to it).
func (l *RWLock) Word() *tm.Var { return l.word }

// AcquireRead blocks until the caller holds a read (shared) lock.
func (l *RWLock) AcquireRead() {
	var b backoff
	for {
		w := l.word.LoadDirect()
		if w&(rwWriter|rwPending) == 0 {
			if l.word.CASDirect(w, w+rwReader) {
				return
			}
			continue
		}
		b.pause()
	}
}

// TryAcquireRead takes a read lock iff no writer is active or waiting.
func (l *RWLock) TryAcquireRead() bool {
	w := l.word.LoadDirect()
	return w&(rwWriter|rwPending) == 0 && l.word.CASDirect(w, w+rwReader)
}

// ReleaseRead drops a read lock held by the caller.
func (l *RWLock) ReleaseRead() {
	for {
		w := l.word.LoadDirect()
		if w < rwReader {
			panic("locks: ReleaseRead without read lock")
		}
		if l.word.CASDirect(w, w-rwReader) {
			return
		}
	}
}

// AcquireWrite blocks until the caller holds the write (exclusive) lock.
func (l *RWLock) AcquireWrite() {
	var b backoff
	// Announce intent so new readers stand back (writer preference).
	for {
		w := l.word.LoadDirect()
		if w&(rwWriter|rwPending) == 0 {
			if l.word.CASDirect(w, w|rwPending) {
				break
			}
			continue
		}
		b.pause()
	}
	// Wait for active readers to drain, then flip pending -> active.
	for {
		w := l.word.LoadDirect()
		if w == rwPending {
			if l.word.CASDirect(rwPending, rwWriter) {
				return
			}
			continue
		}
		b.pause()
	}
}

// TryAcquireWrite takes the write lock iff the lock is entirely free.
func (l *RWLock) TryAcquireWrite() bool {
	return l.word.LoadDirect() == 0 && l.word.CASDirect(0, rwWriter)
}

// ReleaseWrite drops the write lock held by the caller.
func (l *RWLock) ReleaseWrite() {
	for {
		w := l.word.LoadDirect()
		if w&rwWriter == 0 {
			panic("locks: ReleaseWrite without write lock")
		}
		if l.word.CASDirect(w, w&^rwWriter) {
			return
		}
	}
}

// ReadSide returns the Ops view a reader critical section uses. Its
// IsLocked/HeldValue report conflict only with writers (active or
// pending): concurrent readers are compatible, so a transaction eliding a
// read CS need not abort because other readers arrived.
func (l *RWLock) ReadSide() Ops { return readSide{l} }

// WriteSide returns the Ops view a writer critical section uses. Its
// IsLocked/HeldValue report conflict with any holder.
func (l *RWLock) WriteSide() Ops { return writeSide{l} }

type readSide struct{ l *RWLock }

func (s readSide) Acquire()                { s.l.AcquireRead() }
func (s readSide) TryAcquire() bool        { return s.l.TryAcquireRead() }
func (s readSide) Release()                { s.l.ReleaseRead() }
func (s readSide) IsLocked() bool          { return s.HeldValue(s.l.word.LoadDirect()) }
func (s readSide) Word() *tm.Var           { return s.l.word }
func (s readSide) HeldValue(w uint64) bool { return w&(rwWriter|rwPending) != 0 }

type writeSide struct{ l *RWLock }

func (s writeSide) Acquire()                { s.l.AcquireWrite() }
func (s writeSide) TryAcquire() bool        { return s.l.TryAcquireWrite() }
func (s writeSide) Release()                { s.l.ReleaseWrite() }
func (s writeSide) IsLocked() bool          { return s.HeldValue(s.l.word.LoadDirect()) }
func (s writeSide) Word() *tm.Var           { return s.l.word }
func (s writeSide) HeldValue(w uint64) bool { return w != 0 }

var (
	_ Ops = readSide{}
	_ Ops = writeSide{}
)
