package locks

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/tm"
)

func TestTicketMutualExclusion(t *testing.T) {
	d := newDomain()
	l := NewTicket(d)
	var counter int
	const workers, per = 8, 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				l.Acquire()
				counter++
				l.Release()
			}
		}()
	}
	wg.Wait()
	if counter != workers*per {
		t.Errorf("counter = %d, want %d", counter, workers*per)
	}
}

func TestTicketTryAcquireAndHeld(t *testing.T) {
	d := newDomain()
	l := NewTicket(d)
	if l.IsLocked() {
		t.Fatal("fresh lock held")
	}
	if !l.TryAcquire() {
		t.Fatal("TryAcquire on free lock failed")
	}
	if !l.IsLocked() {
		t.Fatal("IsLocked false while held")
	}
	if l.TryAcquire() {
		t.Fatal("TryAcquire on held lock succeeded")
	}
	l.Release()
	if l.IsLocked() {
		t.Fatal("IsLocked true after release")
	}
}

func TestTicketReleaseWithoutHoldPanics(t *testing.T) {
	d := newDomain()
	l := NewTicket(d)
	defer func() {
		if recover() == nil {
			t.Error("Release without hold did not panic")
		}
	}()
	l.Release()
}

func TestTicketWaiterBlocksUntilRelease(t *testing.T) {
	d := newDomain()
	l := NewTicket(d)
	l.Acquire()
	var entered atomic.Bool
	done := make(chan struct{})
	go func() {
		l.Acquire()
		entered.Store(true)
		l.Release()
		close(done)
	}()
	// The waiter has drawn (or will draw) a ticket; it must not enter
	// while we hold the lock. Give it ample chances to misbehave.
	for i := 0; i < 1000; i++ {
		if entered.Load() {
			t.Fatal("waiter entered while lock held")
		}
		runtime.Gosched()
	}
	l.Release()
	<-done
	if !entered.Load() {
		t.Fatal("waiter never entered after release")
	}
}

func TestTicketSubscription(t *testing.T) {
	d := newDomain()
	l := NewTicket(d)
	data := d.NewVar(0)
	tx := d.NewTxn(1)
	ok, reason := tx.Run(func(tx *tm.Txn) {
		if l.HeldValue(tx.Load(l.Word())) {
			tx.Abort(tm.AbortLockHeld)
		}
		// A writing transaction that subscribed to the lock word must be
		// doomed by a concurrent acquisition. (A read-only transaction
		// may legitimately serialize before the acquisition — TL2's
		// read-only commit — so the body writes.)
		tx.Store(data, 1)
		l.Acquire()
		defer l.Release()
	})
	if ok || reason != tm.AbortConflict {
		t.Fatalf("Run = (%v, %v), want conflict abort from acquisition", ok, reason)
	}
}

func BenchmarkTATASUncontended(b *testing.B) {
	d := newDomain()
	l := NewTATAS(d)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Acquire()
		l.Release()
	}
}

func BenchmarkTicketUncontended(b *testing.B) {
	d := newDomain()
	l := NewTicket(d)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Acquire()
		l.Release()
	}
}

func BenchmarkRWLockReadUncontended(b *testing.B) {
	d := newDomain()
	l := NewRWLock(d)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.AcquireRead()
		l.ReleaseRead()
	}
}

func BenchmarkTATASContended(b *testing.B) {
	d := newDomain()
	l := NewTATAS(d)
	var shared uint64
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			l.Acquire()
			shared++
			l.Release()
		}
	})
}

func BenchmarkSeqLockRead(b *testing.B) {
	var s SeqLock
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v := s.ReadBegin()
		if !s.ReadValidate(v) {
			b.Fatal("validation failed with no writer")
		}
	}
}
