package locks

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/tm"
)

// MCS is a queue lock in the Mellor-Crummey/Scott style: waiters enqueue
// behind a tail word and each spins on its *own* node's flag, so handoff
// touches one cache line instead of stampeding a shared word. It is the
// third structurally distinct lock behind the LockAPI (after TATAS's flag
// and Ticket's counter pair), exercising the paper's claim that ALE works
// with any lock type: here the subscribable lock word is the queue tail
// (zero iff free), while the acquire/release protocol is pointer-chasing
// the engine never sees.
//
// Queue nodes come from an internal pool guarded by a small mutex; the
// pool is bookkeeping, not the handoff path (waiters still spin locally),
// and a mutex keeps index reuse ABA-free without dragging in tagged
// pointers.
type MCS struct {
	tail *tm.Var // index+1 of the last waiter; 0 = free

	// nodes is published copy-on-write: readers (node) take a lock-free
	// snapshot, appends (rare: only when the pool runs dry) clone under
	// the mutex and republish.
	nodes  atomic.Pointer[[]*mcsNode]
	mu     sync.Mutex
	free   []uint64
	holder uint64 // queue node of the current holder (holder-written)
}

type mcsNode struct {
	next   tm.Var // index+1 of the successor; 0 = none
	locked tm.Var // 1 while the owner must keep waiting
	dom    *tm.Domain
}

// NewMCS allocates a free MCS lock in domain d.
func NewMCS(d *tm.Domain) *MCS {
	l := &MCS{tail: d.NewVar(0)}
	empty := []*mcsNode{}
	l.nodes.Store(&empty)
	return l
}

// getNode pops a pool node (allocating on demand) and returns its index+1.
func (l *MCS) getNode() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	if n := len(l.free); n > 0 {
		idx := l.free[n-1]
		l.free = l.free[:n-1]
		return idx
	}
	d := l.tail.Domain()
	node := &mcsNode{dom: d}
	d.InitVar(&node.next, 0)
	d.InitVar(&node.locked, 0)
	old := *l.nodes.Load()
	grown := make([]*mcsNode, len(old)+1)
	copy(grown, old)
	grown[len(old)] = node
	l.nodes.Store(&grown)
	return uint64(len(grown))
}

func (l *MCS) putNode(idx uint64) {
	l.mu.Lock()
	l.free = append(l.free, idx)
	l.mu.Unlock()
}

func (l *MCS) node(idx uint64) *mcsNode { return (*l.nodes.Load())[idx-1] }

// Acquire blocks until the caller holds the lock.
func (l *MCS) Acquire() {
	idx := l.getNode()
	n := l.node(idx)
	n.next.StoreDirect(0)
	n.locked.StoreDirect(1)
	prev := l.tail.SwapDirect(idx)
	if prev != 0 {
		l.node(prev).next.StoreDirect(idx)
		for spins := 0; n.locked.LoadDirect() == 1; spins++ {
			if spins&31 == 31 {
				runtime.Gosched()
			}
		}
	}
	l.holder = idx
}

// TryAcquire takes the lock iff the queue is empty.
func (l *MCS) TryAcquire() bool {
	if l.tail.LoadDirect() != 0 {
		return false
	}
	idx := l.getNode()
	n := l.node(idx)
	n.next.StoreDirect(0)
	n.locked.StoreDirect(1)
	if l.tail.CASDirect(0, idx) {
		l.holder = idx
		return true
	}
	l.putNode(idx)
	return false
}

// Release hands the lock to the next waiter (or frees it). The caller must
// hold the lock.
func (l *MCS) Release() {
	idx := l.holder
	if idx == 0 {
		panic("locks: MCS.Release without holding")
	}
	l.holder = 0
	n := l.node(idx)
	if n.next.LoadDirect() == 0 {
		if l.tail.CASDirect(idx, 0) {
			l.putNode(idx)
			return
		}
		// A successor is mid-enqueue: wait for its link.
		for spins := 0; n.next.LoadDirect() == 0; spins++ {
			if spins&31 == 31 {
				runtime.Gosched()
			}
		}
	}
	succ := n.next.LoadDirect()
	l.node(succ).locked.StoreDirect(0)
	l.putNode(idx)
}

// IsLocked reports whether anyone holds or awaits the lock.
func (l *MCS) IsLocked() bool { return l.tail.LoadDirect() != 0 }

// Word returns the tail word for HTM subscription.
func (l *MCS) Word() *tm.Var { return l.tail }

// HeldValue interprets a raw tail value: nonzero means held/queued.
func (l *MCS) HeldValue(w uint64) bool { return w != 0 }

var _ Ops = (*MCS)(nil)
