package locks

import (
	"runtime"
	"sync/atomic"
)

// SeqLock is a classic sequence lock (Lameter 2005; the lwn seqlock the
// paper cites): a lock with an associated sequence number, even when free,
// odd while a writer is inside. Readers run lock-free and retry if the
// sequence changed around their read.
//
// ALE's conflict markers (core.ConflictMarker) are the paper's refinement
// of this primitive — bracketing only the *conflicting region* instead of
// the whole critical section, and living in tm.Var cells so transactions
// interact with them. SeqLock itself is kept as the reference primitive
// and is used by tests and by non-transactional code.
type SeqLock struct {
	seq atomic.Uint64
}

// WriteLock enters the writer side: it spins until it can move the
// sequence from even to odd, establishing exclusion among writers.
func (s *SeqLock) WriteLock() {
	var b backoff
	for {
		v := s.seq.Load()
		if v&1 == 0 && s.seq.CompareAndSwap(v, v+1) {
			return
		}
		b.pause()
	}
}

// WriteUnlock leaves the writer side, moving the sequence back to even.
func (s *SeqLock) WriteUnlock() {
	v := s.seq.Load()
	if v&1 == 0 {
		panic("locks: WriteUnlock without WriteLock")
	}
	s.seq.Store(v + 1)
}

// ReadBegin waits for the sequence to be even and returns it; pass the
// result to ReadValidate after the optimistic read section.
func (s *SeqLock) ReadBegin() uint64 {
	for spins := 0; ; spins++ {
		v := s.seq.Load()
		if v&1 == 0 {
			return v
		}
		if spins > 32 {
			runtime.Gosched()
		}
	}
}

// ReadValidate reports whether a read section that started at sequence v
// ran without writer interference.
func (s *SeqLock) ReadValidate(v uint64) bool {
	return s.seq.Load() == v
}

// Sequence returns the raw sequence value (diagnostics).
func (s *SeqLock) Sequence() uint64 { return s.seq.Load() }
