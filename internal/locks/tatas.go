package locks

import "repro/internal/tm"

// TATAS is a test-and-test-and-set spinlock with exponential backoff — the
// plain mutex the paper's microbenchmarks protect their critical sections
// with. The lock word is a tm.Var (0 = free, 1 = held) so hardware
// transactions can subscribe to it.
type TATAS struct {
	word *tm.Var
}

// NewTATAS allocates a free lock in domain d.
func NewTATAS(d *tm.Domain) *TATAS {
	return &TATAS{word: d.NewVar(0)}
}

// Acquire blocks until the lock is held by the caller.
func (l *TATAS) Acquire() {
	var b backoff
	for {
		// Test: spin on a plain load first so waiters don't generate
		// version traffic on the cell (the "test-and-test-and-set" part).
		for l.word.LoadDirect() != 0 {
			b.pause()
		}
		if l.word.CASDirect(0, 1) {
			return
		}
		b.pause()
	}
}

// TryAcquire takes the lock iff it is immediately free.
func (l *TATAS) TryAcquire() bool {
	return l.word.LoadDirect() == 0 && l.word.CASDirect(0, 1)
}

// Release frees the lock. The caller must hold it.
func (l *TATAS) Release() {
	l.word.StoreDirect(0)
}

// IsLocked reports whether any thread holds the lock.
func (l *TATAS) IsLocked() bool { return l.word.LoadDirect() != 0 }

// Word returns the lock word for HTM subscription.
func (l *TATAS) Word() *tm.Var { return l.word }

// HeldValue interprets a raw word value: nonzero means held.
func (l *TATAS) HeldValue(w uint64) bool { return w != 0 }

var _ Ops = (*TATAS)(nil)
