package locks

import (
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/tm"
)

func newDomain() *tm.Domain {
	return tm.NewDomain(tm.Profile{Name: "test", Enabled: true, ReadCap: 1 << 20, WriteCap: 1 << 20})
}

func TestTATASMutualExclusion(t *testing.T) {
	d := newDomain()
	l := NewTATAS(d)
	var counter int // deliberately unprotected except by l
	const workers, per = 8, 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				l.Acquire()
				counter++
				l.Release()
			}
		}()
	}
	wg.Wait()
	if counter != workers*per {
		t.Errorf("counter = %d, want %d", counter, workers*per)
	}
}

func TestTATASTryAcquire(t *testing.T) {
	d := newDomain()
	l := NewTATAS(d)
	if !l.TryAcquire() {
		t.Fatal("TryAcquire on free lock failed")
	}
	if l.TryAcquire() {
		t.Fatal("TryAcquire on held lock succeeded")
	}
	if !l.IsLocked() {
		t.Error("IsLocked false while held")
	}
	l.Release()
	if l.IsLocked() {
		t.Error("IsLocked true after release")
	}
}

func TestTATASHeldValue(t *testing.T) {
	d := newDomain()
	l := NewTATAS(d)
	if l.HeldValue(0) {
		t.Error("HeldValue(0) = true")
	}
	if !l.HeldValue(1) {
		t.Error("HeldValue(1) = false")
	}
}

// TestTATASSubscription is the heart of lock elision: a transaction that
// reads the lock word must abort when another thread acquires the lock.
func TestTATASSubscription(t *testing.T) {
	d := newDomain()
	l := NewTATAS(d)
	data := d.NewVar(0)
	tx := d.NewTxn(1)
	ok, reason := tx.Run(func(tx *tm.Txn) {
		if l.HeldValue(tx.Load(l.Word())) {
			tx.Abort(tm.AbortLockHeld)
		}
		_ = tx.Load(data)
		// Simulated concurrent acquisition: must doom this transaction.
		l.Acquire()
		defer l.Release()
		tx.Store(data, 1)
	})
	if ok || reason != tm.AbortConflict {
		t.Fatalf("Run = (%v, %v), want conflict abort from lock acquisition", ok, reason)
	}
}

func TestRWLockReadersShareWritersExclude(t *testing.T) {
	d := newDomain()
	l := NewRWLock(d)
	l.AcquireRead()
	if !l.TryAcquireRead() {
		t.Fatal("second reader blocked")
	}
	if l.TryAcquireWrite() {
		t.Fatal("writer entered with readers active")
	}
	l.ReleaseRead()
	l.ReleaseRead()
	if !l.TryAcquireWrite() {
		t.Fatal("writer blocked on free lock")
	}
	if l.TryAcquireRead() {
		t.Fatal("reader entered with writer active")
	}
	if l.TryAcquireWrite() {
		t.Fatal("second writer entered")
	}
	l.ReleaseWrite()
}

func TestRWLockSideConflictSemantics(t *testing.T) {
	d := newDomain()
	l := NewRWLock(d)
	rs, ws := l.ReadSide(), l.WriteSide()

	l.AcquireRead()
	if rs.IsLocked() {
		t.Error("read side reports conflict with a reader")
	}
	if !ws.IsLocked() {
		t.Error("write side reports no conflict with a reader")
	}
	l.ReleaseRead()

	l.AcquireWrite()
	if !rs.IsLocked() {
		t.Error("read side reports no conflict with a writer")
	}
	if !ws.IsLocked() {
		t.Error("write side reports no conflict with a writer")
	}
	l.ReleaseWrite()
}

func TestRWLockStress(t *testing.T) {
	d := newDomain()
	l := NewRWLock(d)
	var shared, checksum int
	const writers, readers, per = 4, 4, 2000
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				l.AcquireWrite()
				shared++
				checksum = shared * 2
				l.ReleaseWrite()
			}
		}()
	}
	bad := make(chan int, 1)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				l.AcquireRead()
				if checksum != shared*2 {
					select {
					case bad <- shared:
					default:
					}
				}
				l.ReleaseRead()
			}
		}()
	}
	wg.Wait()
	select {
	case v := <-bad:
		t.Fatalf("reader observed torn state at shared=%d", v)
	default:
	}
	if shared != writers*per {
		t.Errorf("shared = %d, want %d", shared, writers*per)
	}
}

func TestRWLockWriterPreference(t *testing.T) {
	d := newDomain()
	l := NewRWLock(d)
	l.AcquireRead()
	writerIn := make(chan struct{})
	go func() {
		l.AcquireWrite()
		close(writerIn)
		l.ReleaseWrite()
	}()
	// Wait until the writer has announced itself (pending bit set).
	for l.Word().LoadDirect()&rwPending == 0 {
	}
	if l.TryAcquireRead() {
		t.Fatal("new reader admitted while a writer is waiting")
	}
	l.ReleaseRead()
	<-writerIn
}

func TestRWLockReleaseWithoutHoldPanics(t *testing.T) {
	d := newDomain()
	l := NewRWLock(d)
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("ReleaseRead", l.ReleaseRead)
	mustPanic("ReleaseWrite", l.ReleaseWrite)
}

func TestSeqLockBasic(t *testing.T) {
	var s SeqLock
	v := s.ReadBegin()
	if !s.ReadValidate(v) {
		t.Fatal("validation failed with no writer")
	}
	s.WriteLock()
	if s.ReadValidate(v) {
		t.Fatal("validation passed with writer inside")
	}
	s.WriteUnlock()
	if s.ReadValidate(v) {
		t.Fatal("validation passed across a write episode")
	}
	if s.Sequence()%2 != 0 {
		t.Error("sequence odd with no writer")
	}
}

func TestSeqLockWriteUnlockWithoutLockPanics(t *testing.T) {
	var s SeqLock
	defer func() {
		if recover() == nil {
			t.Error("WriteUnlock did not panic")
		}
	}()
	s.WriteUnlock()
}

func TestSeqLockReadersSeeConsistentPairs(t *testing.T) {
	var s SeqLock
	var a, b atomic.Uint64 // writer keeps a == b inside the lock
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := uint64(1); ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			s.WriteLock()
			a.Store(i)
			b.Store(i)
			s.WriteUnlock()
		}
	}()
	for i := 0; i < 20000; i++ {
		v := s.ReadBegin()
		x, y := a.Load(), b.Load()
		if s.ReadValidate(v) && x != y {
			t.Fatalf("validated read saw a=%d b=%d", x, y)
		}
	}
	close(stop)
	wg.Wait()
}
