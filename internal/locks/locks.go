// Package locks provides the lock implementations the ALE reproduction
// elides: a test-and-test-and-set spinlock and a writer-preference
// readers-writer lock, both built over tm.Var cells, plus a classic
// sequence lock used as a reference primitive in tests.
//
// The paper's library is lock-type agnostic: the program hands ALE a
// LockAPI structure with acquire/release/is_locked methods. Ops is the Go
// rendering of that structure. Lock words live in tm.Var cells so that a
// simulated hardware transaction can *subscribe* to the lock: the ALE
// engine reads the word transactionally, and any acquisition — which goes
// through Var.CASDirect and therefore bumps the cell's version — aborts
// the transaction, exactly as a cache-line invalidation would on real HTM.
package locks

import (
	"runtime"

	"repro/internal/tm"
)

// Ops is the lock interface the ALE library drives (the paper's LockAPI).
// Implementations must be safe for concurrent use.
type Ops interface {
	// Acquire blocks until the calling thread holds the lock.
	Acquire()
	// TryAcquire attempts to take the lock without blocking and reports
	// whether it succeeded.
	TryAcquire() bool
	// Release releases the lock. The caller must hold it.
	Release()
	// IsLocked reports whether the lock is currently held in a way that
	// conflicts with this Ops view. For a plain mutex that means "held at
	// all"; for the read side of an RW lock it means "a writer holds or
	// is waiting for it" (readers do not conflict with readers).
	IsLocked() bool
	// Word returns the tm.Var holding the lock state, for HTM
	// subscription. The ALE engine loads it transactionally so that a
	// conflicting acquisition aborts the transaction.
	Word() *tm.Var
	// HeldValue reports whether the given raw word value (as loaded
	// transactionally from Word) represents a conflicting-held state for
	// this Ops view. This lets the engine interpret the subscription read
	// without a second, non-transactional IsLocked call.
	HeldValue(w uint64) bool
}

// backoff spins with exponentially growing pauses, yielding the processor
// once the pause budget is large. It keeps contended acquire paths from
// hammering the lock word's cache line.
type backoff struct {
	limit int
}

func (b *backoff) pause() {
	if b.limit < 1 {
		b.limit = 1
	}
	for i := 0; i < b.limit; i++ {
		// A bounded busy loop; Gosched on larger budgets so other
		// goroutines (possibly the lock holder) can run.
		if i&63 == 63 {
			runtime.Gosched()
		}
	}
	if b.limit < 1<<10 {
		b.limit <<= 1
	} else {
		runtime.Gosched()
	}
}
