package locks

import (
	"sync"
	"testing"

	"repro/internal/tm"
)

func TestMCSMutualExclusion(t *testing.T) {
	d := newDomain()
	l := NewMCS(d)
	var counter int
	const workers, per = 8, 4000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				l.Acquire()
				counter++
				l.Release()
			}
		}()
	}
	wg.Wait()
	if counter != workers*per {
		t.Errorf("counter = %d, want %d", counter, workers*per)
	}
}

func TestMCSTryAcquire(t *testing.T) {
	d := newDomain()
	l := NewMCS(d)
	if !l.TryAcquire() {
		t.Fatal("TryAcquire on free lock failed")
	}
	if l.TryAcquire() {
		t.Fatal("TryAcquire on held lock succeeded")
	}
	if !l.IsLocked() {
		t.Error("IsLocked false while held")
	}
	l.Release()
	if l.IsLocked() {
		t.Error("IsLocked true after release")
	}
	// Reusable after a full cycle.
	if !l.TryAcquire() {
		t.Fatal("TryAcquire after release failed")
	}
	l.Release()
}

func TestMCSReleaseWithoutHoldPanics(t *testing.T) {
	d := newDomain()
	l := NewMCS(d)
	defer func() {
		if recover() == nil {
			t.Error("Release without hold did not panic")
		}
	}()
	l.Release()
}

func TestMCSHeldValue(t *testing.T) {
	d := newDomain()
	l := NewMCS(d)
	if l.HeldValue(0) {
		t.Error("HeldValue(0) = true")
	}
	if !l.HeldValue(3) {
		t.Error("HeldValue(3) = false")
	}
}

func TestMCSSubscription(t *testing.T) {
	d := newDomain()
	l := NewMCS(d)
	data := d.NewVar(0)
	tx := d.NewTxn(1)
	ok, reason := tx.Run(func(tx *tm.Txn) {
		if l.HeldValue(tx.Load(l.Word())) {
			tx.Abort(tm.AbortLockHeld)
		}
		tx.Store(data, 1) // writing txn: acquisition must doom it
		l.Acquire()
		defer l.Release()
	})
	if ok || reason != tm.AbortConflict {
		t.Fatalf("Run = (%v, %v), want conflict abort from acquisition", ok, reason)
	}
}

func TestMCSNodePoolRecycles(t *testing.T) {
	d := newDomain()
	l := NewMCS(d)
	// Sequential cycles must not grow the node table past 1.
	for i := 0; i < 100; i++ {
		l.Acquire()
		l.Release()
	}
	if n := len(*l.nodes.Load()); n != 1 {
		t.Errorf("node table grew to %d for sequential use, want 1", n)
	}
}

func BenchmarkMCSUncontended(b *testing.B) {
	d := newDomain()
	l := NewMCS(d)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Acquire()
		l.Release()
	}
}

func BenchmarkMCSContended(b *testing.B) {
	d := newDomain()
	l := NewMCS(d)
	var shared uint64
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			l.Acquire()
			shared++
			l.Release()
		}
	})
}
