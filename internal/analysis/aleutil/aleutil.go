// Package aleutil holds the vocabulary shared by the alelint analyzers:
// resolving calls to the ALE core API (ConflictMarker and ExecCtx methods,
// Lock.Execute) and discovering critical-section bodies.
package aleutil

import (
	"go/ast"
	"go/types"
	"strings"
)

// CorePkgSuffix identifies the ALE core package by import-path suffix, so
// the analyzers keep working if the module is renamed or vendored.
const CorePkgSuffix = "internal/core"

// IsCorePath reports whether path is the ALE core package.
func IsCorePath(path string) bool {
	return path == CorePkgSuffix || strings.HasSuffix(path, "/"+CorePkgSuffix)
}

// Callee resolves the *types.Func a call statically invokes (method or
// package function), or nil for builtins, function values, and type
// conversions.
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// coreMethod returns the method name when call invokes recvType.name on
// the ALE core package, or "" otherwise. recvType is the bare named type
// ("ConflictMarker", "ExecCtx", "Lock").
func coreMethod(info *types.Info, call *ast.CallExpr, recvType string) string {
	fn := Callee(info, call)
	if fn == nil {
		return ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj.Name() != recvType || obj.Pkg() == nil || !IsCorePath(obj.Pkg().Path()) {
		return ""
	}
	return fn.Name()
}

// MarkerCall returns the ConflictMarker method name invoked by call
// ("BeginConflicting", "EndConflicting", "ReadStable", "Validate",
// "ValidateIn", ...), or "".
func MarkerCall(info *types.Info, call *ast.CallExpr) string {
	return coreMethod(info, call, "ConflictMarker")
}

// ExecCtxCall returns the ExecCtx method name invoked by call ("Load",
// "Store", "Validate", "ReadStable", "SWOptFail", ...), or "".
func ExecCtxCall(info *types.Info, call *ast.CallExpr) string {
	return coreMethod(info, call, "ExecCtx")
}

// IsExecuteCall reports whether call is Lock.Execute.
func IsExecuteCall(info *types.Info, call *ast.CallExpr) bool {
	return coreMethod(info, call, "Lock") == "Execute"
}

// ReceiverKey identifies the receiver of a method call for matching
// Begin/End pairs: the receiver's types.Object when it is a plain
// identifier, else the receiver expression's printed form. Two calls on
// the same key are treated as operating on the same marker.
func ReceiverKey(info *types.Info, call *ast.CallExpr) any {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
		if obj := info.ObjectOf(id); obj != nil {
			return obj
		}
	}
	return types.ExprString(sel.X)
}

// CSBody is one discovered critical-section body.
type CSBody struct {
	// Fn is the body's function literal.
	Fn *ast.FuncLit
	// Lit is the core.CS composite literal the body belongs to, nil when
	// the function was matched by signature alone.
	Lit *ast.CompositeLit
	// Name is the expression the CS literal is assigned to ("h.csGet"),
	// "" when unknown.
	Name string
	// HasSWOpt, NoHTM, Conflicting mirror the literal's static fields
	// (false when absent or when the literal is unknown).
	HasSWOpt, NoHTM, Conflicting bool
}

// CSBodies finds every core.CS composite literal with a literal Body
// function in the files, plus, when includeBare is set, any other
// function literal whose signature is func(*core.ExecCtx) error (bodies
// constructed away from their CS literal).
func CSBodies(info *types.Info, files []*ast.File, includeBare bool) []CSBody {
	var out []CSBody
	inLit := map[*ast.FuncLit]bool{}
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				// Named pass: `h.csGet = core.CS{...}` and friends, so the
				// literal can be matched against recursive Execute calls.
				if len(n.Lhs) == 1 && len(n.Rhs) == 1 {
					if lit := csLiteral(info, n.Rhs[0]); lit != nil {
						if body := csFromLiteral(info, lit, types.ExprString(n.Lhs[0])); body != nil {
							inLit[body.Fn] = true
							out = append(out, *body)
						}
					}
				}
			case *ast.CompositeLit:
				if isCSType(info.Types[n].Type) {
					if body := csFromLiteral(info, n, ""); body != nil {
						if !inLit[body.Fn] {
							inLit[body.Fn] = true
							out = append(out, *body)
						}
					}
				}
			}
			return true
		})
	}
	if includeBare {
		for _, f := range files {
			ast.Inspect(f, func(n ast.Node) bool {
				fl, ok := n.(*ast.FuncLit)
				if !ok || inLit[fl] {
					return true
				}
				if isCSBodySig(info.Types[fl].Type) {
					out = append(out, CSBody{Fn: fl})
				}
				return true
			})
		}
	}
	// Deduplicate literal-found bodies discovered twice (named pass plus
	// bare CompositeLit pass): inLit already guards that.
	return out
}

func csLiteral(info *types.Info, e ast.Expr) *ast.CompositeLit {
	e = ast.Unparen(e)
	if u, ok := e.(*ast.UnaryExpr); ok {
		e = ast.Unparen(u.X)
	}
	lit, ok := e.(*ast.CompositeLit)
	if !ok || !isCSType(info.Types[lit].Type) {
		return nil
	}
	return lit
}

func isCSType(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "CS" && obj.Pkg() != nil && IsCorePath(obj.Pkg().Path())
}

// isCSBodySig reports whether t is func(*core.ExecCtx) error.
func isCSBodySig(t types.Type) bool {
	sig, ok := t.(*types.Signature)
	if !ok || sig.Params().Len() != 1 || sig.Results().Len() != 1 {
		return false
	}
	p, ok := sig.Params().At(0).Type().(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := p.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "ExecCtx" && obj.Pkg() != nil && IsCorePath(obj.Pkg().Path())
}

func csFromLiteral(info *types.Info, lit *ast.CompositeLit, name string) *CSBody {
	body := CSBody{Lit: lit, Name: name}
	for _, el := range lit.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok {
			continue
		}
		switch key.Name {
		case "Body":
			if fl, ok := ast.Unparen(kv.Value).(*ast.FuncLit); ok {
				body.Fn = fl
			}
		case "HasSWOpt":
			body.HasSWOpt = isTrue(kv.Value)
		case "NoHTM":
			body.NoHTM = isTrue(kv.Value)
		case "Conflicting":
			body.Conflicting = isTrue(kv.Value)
		}
	}
	if body.Fn == nil {
		return nil
	}
	return &body
}

func isTrue(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "true"
}

// ExecCtxParam returns the *ExecCtx parameter object of fn's signature
// (function literal or declaration), or nil.
func ExecCtxParam(info *types.Info, ftype *ast.FuncType) *types.Var {
	if ftype.Params == nil {
		return nil
	}
	for _, field := range ftype.Params.List {
		for _, name := range field.Names {
			v, ok := info.Defs[name].(*types.Var)
			if !ok {
				continue
			}
			p, ok := v.Type().(*types.Pointer)
			if !ok {
				continue
			}
			if named, ok := p.Elem().(*types.Named); ok {
				obj := named.Obj()
				if obj.Name() == "ExecCtx" && obj.Pkg() != nil && IsCorePath(obj.Pkg().Path()) {
					return v
				}
			}
		}
	}
	return nil
}

// FuncsWithExecCtx returns every function declaration and literal in the
// files that has a *core.ExecCtx parameter, with its body and parameter.
type ExecCtxFunc struct {
	Name  string // declaration name, "" for literals
	Type  *ast.FuncType
	Body  *ast.BlockStmt
	Param *types.Var
}

func FuncsWithExecCtx(info *types.Info, files []*ast.File) []ExecCtxFunc {
	var out []ExecCtxFunc
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body == nil {
					return true
				}
				if p := ExecCtxParam(info, n.Type); p != nil {
					out = append(out, ExecCtxFunc{Name: n.Name.Name, Type: n.Type, Body: n.Body, Param: p})
				}
			case *ast.FuncLit:
				if p := ExecCtxParam(info, n.Type); p != nil {
					out = append(out, ExecCtxFunc{Type: n.Type, Body: n.Body, Param: p})
				}
			}
			return true
		})
	}
	return out
}
