package framework

import (
	"path/filepath"
	"strings"
	"testing"
)

// TestLoadBrokenPackageSurfacesDiagnostic loads a deliberately broken
// fixture and asserts the go tool's actual compile diagnostic — symbol
// name and file position — appears in the returned error, not just an
// exit status.
func TestLoadBrokenPackageSurfacesDiagnostic(t *testing.T) {
	dir, err := filepath.Abs(filepath.Join("testdata", "src", "broken"))
	if err != nil {
		t.Fatal(err)
	}
	_, err = Load(dir, ".")
	if err == nil {
		t.Fatal("Load succeeded on a package that does not compile")
	}
	msg := err.Error()
	if !strings.Contains(msg, "nosuchsymbol") {
		t.Errorf("error does not surface the compile diagnostic:\n%s", msg)
	}
	if !strings.Contains(msg, "broken.go") {
		t.Errorf("error does not name the offending file:\n%s", msg)
	}
}

// TestLoadExecFailureSurfacesStderr drives go list into a hard (non-JSON)
// failure — an argument it rejects outright — and asserts its stderr text
// is carried into the error.
func TestLoadExecFailureSurfacesStderr(t *testing.T) {
	_, err := Load("", "-definitely-not-a-flag")
	if err == nil {
		t.Fatal("Load succeeded on an invalid go list invocation")
	}
	msg := err.Error()
	if !strings.Contains(msg, "definitely-not-a-flag") {
		t.Errorf("error does not surface go list stderr:\n%s", msg)
	}
}

// TestLoadMissingImportNamesChain asserts a root package importing a
// nonexistent dependency reports the import position and the dependency
// path.
func TestLoadMissingImportNamesChain(t *testing.T) {
	dir, err := filepath.Abs(filepath.Join("testdata", "src", "badimport"))
	if err != nil {
		t.Fatal(err)
	}
	_, err = Load(dir, ".")
	if err == nil {
		t.Fatal("Load succeeded on a package with a missing import")
	}
	msg := err.Error()
	if !strings.Contains(msg, "no/such/dependency") {
		t.Errorf("error does not name the missing dependency:\n%s", msg)
	}
	if !strings.Contains(msg, "badimport.go") {
		t.Errorf("error does not carry the import position:\n%s", msg)
	}
}
