// Package framework is a minimal, dependency-free re-implementation of the
// golang.org/x/tools/go/analysis surface that the alelint suite needs. The
// container this repository builds in has no module proxy access, so the
// real x/tools module cannot be pinned; the subset here keeps the same
// shape (Analyzer / Pass / Diagnostic, a multichecker-style driver in
// cmd/alelint, and an analysistest-style harness in
// internal/analysis/analysistest) so the analyzers can migrate to the real
// framework by changing imports if the dependency ever becomes available.
//
// Supported Go version: the loader shells out to the module-aware `go`
// tool and needs go >= 1.19 for `go list -json=<fields>`; the repository
// itself declares go 1.22 in go.mod.
package framework

import (
	"flag"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Analyzer describes one static check, mirroring analysis.Analyzer.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and flag names. It must
	// be a valid Go identifier.
	Name string

	// Doc is the one-paragraph help text (first line = summary).
	Doc string

	// Flags holds analyzer-specific flags. The driver registers each as
	// -<name>.<flag>.
	Flags flag.FlagSet

	// Run applies the analyzer to one package.
	Run func(*Pass) error
}

// Pass carries one (analyzer, package) unit of work, mirroring
// analysis.Pass.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags *[]Diagnostic
}

// Diagnostic is one reported problem.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      pos,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// RunAnalyzers applies each analyzer to each package and returns the
// combined diagnostics sorted by file position. Suppressed diagnostics
// (see Suppressions) are filtered out.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		sup := NewSuppressions(pkg.Fset, pkg.Files)
		var pkgDiags []Diagnostic
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
				diags:     &pkgDiags,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.ImportPath, err)
			}
		}
		for _, d := range pkgDiags {
			if !sup.Suppressed(d) {
				diags = append(diags, d)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	return diags, nil
}

// Suppressions indexes //alelint:allow comments. A comment of the form
//
//	//alelint:allow markerpair,irrevocable -- reason
//
// suppresses diagnostics from the named analyzers on the comment's own
// line and on the immediately following line (so it can ride at the end
// of the offending line or stand on its own line above it).
type Suppressions struct {
	fset  *token.FileSet
	byLoc map[string]map[string]bool // "file:line" -> analyzer set
}

var allowRe = regexp.MustCompile(`^//\s*alelint:allow\s+([A-Za-z0-9_,\s]+?)(?:\s+--.*)?$`)

// NewSuppressions scans the files' comments for alelint:allow directives.
func NewSuppressions(fset *token.FileSet, files []*ast.File) *Suppressions {
	s := &Suppressions{fset: fset, byLoc: map[string]map[string]bool{}}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := allowRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, name := range strings.Split(m[1], ",") {
					name = strings.TrimSpace(name)
					if name == "" {
						continue
					}
					s.add(pos.Filename, pos.Line, name)
					s.add(pos.Filename, pos.Line+1, name)
				}
			}
		}
	}
	return s
}

func (s *Suppressions) add(file string, line int, name string) {
	key := fmt.Sprintf("%s:%d", file, line)
	if s.byLoc[key] == nil {
		s.byLoc[key] = map[string]bool{}
	}
	s.byLoc[key][name] = true
}

// Suppressed reports whether d is covered by an alelint:allow directive.
func (s *Suppressions) Suppressed(d Diagnostic) bool {
	pos := s.fset.Position(d.Pos)
	set := s.byLoc[fmt.Sprintf("%s:%d", pos.Filename, pos.Line)]
	return set != nil && set[d.Analyzer]
}
