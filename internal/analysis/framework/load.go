package framework

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one loaded, parsed, and type-checked package — the subset of
// golang.org/x/tools/go/packages.Package the analyzers need.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	TypesInfo  *types.Info
}

// listEntry is the subset of `go list -json` output the loader reads.
type listEntry struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	DepOnly    bool
	Standard   bool
	Incomplete bool
	Error      *listError
}

// listError mirrors go list's PackageError: Err is the diagnostic text,
// Pos the file:line:col it is anchored to (often empty), and ImportStack
// the chain of imports that reached the broken package.
type listError struct {
	Pos         string
	Err         string
	ImportStack []string
}

// message renders a listError with everything the go tool knows: the
// position when there is one, the diagnostic, and the import chain. Any
// stderr the go tool produced alongside (toolchain noise, module errors)
// is appended so the underlying cause is never swallowed.
func (e *listError) message(importPath string, stderr []byte) string {
	var b strings.Builder
	b.WriteString("go list: ")
	if e.Pos != "" {
		b.WriteString(e.Pos)
	} else {
		b.WriteString(importPath)
	}
	b.WriteString(": ")
	b.WriteString(strings.TrimSpace(e.Err))
	if len(e.ImportStack) > 1 {
		fmt.Fprintf(&b, " (import stack: %s)", strings.Join(e.ImportStack, " -> "))
	}
	if s := bytes.TrimSpace(stderr); len(s) > 0 {
		b.WriteString("\n")
		b.Write(s)
	}
	return b.String()
}

// Load resolves patterns with the module-aware go tool and type-checks the
// matched packages from source. Dependencies (including the standard
// library) are imported from compiler export data produced by
// `go list -export`, so loading works offline against the local build
// cache. dir is the working directory for pattern resolution ("" = cwd).
//
// Test files are not loaded: the analyzers verify library-usage
// discipline in shipping code, and fixtures under testdata are loaded as
// ordinary packages by explicit path.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"."}
	}
	args := append([]string{
		"list", "-e", "-deps", "-export",
		"-json=ImportPath,Dir,Export,GoFiles,DepOnly,Standard,Incomplete,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.Bytes())
	}

	exports := map[string]string{} // import path -> export data file
	var roots []listEntry
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var e listEntry
		if err := dec.Decode(&e); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		if e.Error != nil {
			return nil, fmt.Errorf("%s", e.Error.message(e.ImportPath, stderr.Bytes()))
		}
		if e.Export != "" {
			exports[e.ImportPath] = e.Export
		}
		if !e.DepOnly {
			roots = append(roots, e)
		}
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})

	var pkgs []*Package
	for _, e := range roots {
		if len(e.GoFiles) == 0 {
			continue
		}
		var files []*ast.File
		for _, name := range e.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(e.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
		}
		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Scopes:     map[ast.Node]*types.Scope{},
			Implicits:  map[ast.Node]types.Object{},
		}
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(e.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("type-checking %s: %v", e.ImportPath, err)
		}
		pkgs = append(pkgs, &Package{
			ImportPath: e.ImportPath,
			Dir:        e.Dir,
			Fset:       fset,
			Files:      files,
			Types:      tpkg,
			TypesInfo:  info,
		})
	}
	if len(pkgs) == 0 {
		return nil, fmt.Errorf("go list %v matched no packages with Go files", patterns)
	}
	return pkgs, nil
}
