package framework

import (
	"encoding/json"
	"go/token"
	"io"
	"sort"
)

// JSONDiagnostic is the machine-readable form of one Diagnostic: the
// shared record format emitted by `alelint -json` and `alepatch -check
// -json`, and consumed by CI. Fields are stable; additions are
// backwards-compatible.
type JSONDiagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// JSONDiagnostics resolves diagnostics against fset into the stable
// record form, sorted by (file, line, col, analyzer) so output is
// deterministic regardless of analyzer scheduling.
func JSONDiagnostics(fset *token.FileSet, diags []Diagnostic) []JSONDiagnostic {
	out := make([]JSONDiagnostic, 0, len(diags))
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		out = append(out, JSONDiagnostic{
			File:     pos.Filename,
			Line:     pos.Line,
			Col:      pos.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
	return out
}

// WriteJSONDiagnostics encodes the diagnostics as an indented JSON array
// (always an array, [] when empty) followed by a newline.
func WriteJSONDiagnostics(w io.Writer, fset *token.FileSet, diags []Diagnostic) error {
	recs := JSONDiagnostics(fset, diags)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(recs)
}
