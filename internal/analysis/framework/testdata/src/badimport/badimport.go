// Package badimport imports a package that does not exist; the loader
// test asserts the import position and dependency path are reported.
package badimport

import dep "no/such/dependency"

var _ = dep.X
