// Package broken deliberately fails to type-check; the loader test
// asserts the compile diagnostic (not a bare exit status) is surfaced.
package broken

func Broken() int {
	return nosuchsymbol
}
