// Package lockdiscipline enforces the structural rules of Lock.Execute
// critical sections:
//
//   - L1: a *core.ExecCtx must not be captured beyond the body it was
//     passed to — storing it in a field, global, channel, or returning it
//     lets code use a context whose attempt has already committed or
//     aborted.
//   - L2: a body must not re-Execute its own critical section (direct
//     self-recursion through the same CS value deadlocks in lock mode and
//     aborts forever in HTM mode).
//   - L3: a CS whose body enters conflicting regions must declare
//     Conflicting: true, or the engine's marker-elision accounting
//     (COULD_SWOPT_BE_RUNNING) is skipped for it.
//   - L4: BeginConflicting must not be gated on ec.InSWOpt() — conflicting
//     regions are entered in HTM and Lock modes too; in SWOpt mode bump()
//     itself fails the attempt. Gating inverts the protocol.
package lockdiscipline

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis/aleutil"
	"repro/internal/analysis/framework"
)

// Analyzer is the lockdiscipline analyzer.
var Analyzer = &framework.Analyzer{
	Name: "lockdiscipline",
	Doc: "enforce Execute critical-section structure: no ExecCtx escape, no self-recursive Execute,\n" +
		"Conflicting flag matches marker use, Begin not gated on InSWOpt",
	Run: run,
}

func run(pass *framework.Pass) error {
	info := pass.TypesInfo
	bodies := aleutil.CSBodies(info, pass.Files, false)

	// L1: ExecCtx escape — checked over every function taking an ExecCtx,
	// declared helpers included.
	for _, fn := range aleutil.FuncsWithExecCtx(info, pass.Files) {
		checkEscape(pass, fn)
	}

	for _, cs := range bodies {
		if cs.Name != "" {
			checkSelfExecute(pass, cs)
		}
		checkConflictingFlag(pass, cs)
		checkSWOptGate(pass, cs)
	}
	return nil
}

// checkEscape reports ExecCtx values that outlive the body: assigned to a
// field, index, dereference, or package-level variable; sent on a
// channel; returned; or appended to a slice. Passing ec onward as a call
// argument is the normal helper pattern and is allowed.
func checkEscape(pass *framework.Pass, fn aleutil.ExecCtxFunc) {
	info := pass.TypesInfo
	param := fn.Param
	isCtx := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && info.ObjectOf(id) == param
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if i >= len(n.Lhs) || !isCtx(rhs) {
					continue
				}
				switch lhs := ast.Unparen(n.Lhs[i]).(type) {
				case *ast.Ident:
					if obj := info.ObjectOf(lhs); obj != nil {
						if v, ok := obj.(*types.Var); ok && v.Parent() == v.Pkg().Scope() {
							pass.Reportf(rhs.Pos(), "ExecCtx stored in package-level variable %s: the context is only valid inside its critical-section body", lhs.Name)
						}
					}
				case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
					pass.Reportf(rhs.Pos(), "ExecCtx escapes its critical-section body (stored through %s); the context is invalid once the attempt commits or aborts", types.ExprString(n.Lhs[i]))
				}
			}
		case *ast.SendStmt:
			if isCtx(n.Value) {
				pass.Reportf(n.Value.Pos(), "ExecCtx sent on a channel: the receiver would use a context whose attempt has already finished")
			}
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				if isCtx(r) {
					pass.Reportf(r.Pos(), "ExecCtx returned from its critical-section body; the context is invalid once the attempt commits or aborts")
				}
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "append" {
				if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
					for _, a := range n.Args[1:] {
						if isCtx(a) {
							pass.Reportf(a.Pos(), "ExecCtx appended to a slice: the context is only valid inside its critical-section body")
						}
					}
				}
			}
		case *ast.FuncLit:
			// A nested literal capturing ec and being *stored* is an escape
			// too, but distinguishing store from immediate call is the
			// loader's job in a deeper pass; the common repo idiom (nested
			// Execute body capturing the outer ec for SWOptFail) is legal.
			return true
		}
		return true
	})
}

// checkSelfExecute reports Execute calls on the body's own CS value
// (matched by printed expression of the CS's assignment target vs the
// Execute argument).
func checkSelfExecute(pass *framework.Pass, cs aleutil.CSBody) {
	info := pass.TypesInfo
	ast.Inspect(cs.Fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !aleutil.IsExecuteCall(info, call) || len(call.Args) != 2 {
			return true
		}
		// Execute(thr *Thread, cs *CS): the CS is the second argument.
		arg := ast.Unparen(call.Args[1])
		// Execute takes *CS; strip a leading & to compare the value.
		if u, ok := arg.(*ast.UnaryExpr); ok {
			arg = ast.Unparen(u.X)
		}
		if types.ExprString(arg) == cs.Name {
			pass.Reportf(call.Pos(), "critical-section body re-executes its own CS (%s): self-recursive Execute deadlocks in lock mode", cs.Name)
		}
		return true
	})
}

// checkConflictingFlag reports CS literals whose body (or same-package
// helpers it calls) enters conflicting regions without declaring
// Conflicting: true.
func checkConflictingFlag(pass *framework.Pass, cs aleutil.CSBody) {
	if cs.Lit == nil || cs.Conflicting {
		return
	}
	info := pass.TypesInfo
	var beginPos ast.Node
	ast.Inspect(cs.Fn.Body, func(n ast.Node) bool {
		if beginPos != nil {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if aleutil.MarkerCall(info, call) == "BeginConflicting" {
				beginPos = call
				return false
			}
		}
		return true
	})
	if beginPos != nil {
		pass.Reportf(beginPos.Pos(), "body calls BeginConflicting but its CS does not set Conflicting: true (the engine skips conflicting-region accounting for it)")
	}
}

// checkSWOptGate reports BeginConflicting calls that only execute when
// ec.InSWOpt() is true — the protocol is the opposite: conflicting
// regions are for HTM/Lock mode, and in SWOpt mode bump() aborts the
// attempt itself.
func checkSWOptGate(pass *framework.Pass, cs aleutil.CSBody) {
	info := pass.TypesInfo
	ast.Inspect(cs.Fn.Body, func(n ast.Node) bool {
		ifs, ok := n.(*ast.IfStmt)
		if !ok {
			return true
		}
		if !isInSWOptCall(info, ifs.Cond) {
			return true
		}
		ast.Inspect(ifs.Body, func(m ast.Node) bool {
			if _, ok := m.(*ast.FuncLit); ok {
				return false
			}
			if call, ok := m.(*ast.CallExpr); ok {
				if aleutil.MarkerCall(info, call) == "BeginConflicting" {
					pass.Reportf(call.Pos(), "BeginConflicting gated on ec.InSWOpt(): conflicting regions must be entered in every mode (in SWOpt the marker itself fails the attempt)")
				}
			}
			return true
		})
		return true
	})
}

// isInSWOptCall reports whether cond is exactly `ec.InSWOpt()` (possibly
// parenthesized).
func isInSWOptCall(info *types.Info, cond ast.Expr) bool {
	call, ok := ast.Unparen(cond).(*ast.CallExpr)
	if !ok {
		return false
	}
	return aleutil.ExecCtxCall(info, call) == "InSWOpt"
}
