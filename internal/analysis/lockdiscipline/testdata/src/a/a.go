// Package a is the lockdiscipline golden fixture: ExecCtx escapes,
// self-recursive Execute, the Conflicting flag, and InSWOpt gating.
package a

import (
	"repro/internal/core"
)

type holder struct {
	ec  *core.ExecCtx
	cs  core.CS
	cs2 core.CS
	lk  *core.Lock
	mk  *core.ConflictMarker
}

var globalCtx *core.ExecCtx
var ctxs []*core.ExecCtx

// L1: storing the context in a field outlives the attempt.
func (h *holder) escapeField(ec *core.ExecCtx) error {
	h.ec = ec // want `ExecCtx escapes its critical-section body`
	return nil
}

// L1: storing the context in a package-level variable.
func stash(ec *core.ExecCtx) error {
	globalCtx = ec // want `stored in package-level variable`
	return nil
}

// L1: returning the context.
func leak(ec *core.ExecCtx) *core.ExecCtx {
	return ec // want `ExecCtx returned from its critical-section body`
}

// L1: sending the context on a channel.
func send(ec *core.ExecCtx, out chan *core.ExecCtx) error {
	out <- ec // want `ExecCtx sent on a channel`
	return nil
}

// L1: appending the context to a slice.
func collect(ec *core.ExecCtx) error {
	ctxs = append(ctxs, ec) // want `appended to a slice`
	return nil
}

// Passing the context onward to a helper is the normal pattern. Clean.
func forward(ec *core.ExecCtx) error {
	return helper(ec)
}

func helper(ec *core.ExecCtx) error { return nil }

// L2: a body re-executing its own CS.
func (h *holder) setupSelf(thr *core.Thread) {
	h.cs = core.CS{
		Scope: core.NewScope("self"),
		Body: func(ec *core.ExecCtx) error {
			return h.lk.Execute(ec.Thread(), &h.cs) // want `re-executes its own CS`
		},
	}
}

// Executing a *different* CS from a body is the nested-mutation pattern.
// Clean.
func (h *holder) setupNested(thr *core.Thread) {
	h.cs = core.CS{
		Scope: core.NewScope("outer"),
		Body: func(ec *core.ExecCtx) error {
			return h.lk.Execute(ec.Thread(), &h.cs2)
		},
	}
}

// L3: entering conflicting regions without declaring Conflicting: true.
func (h *holder) setupUndeclared() {
	h.cs2 = core.CS{
		Scope: core.NewScope("undeclared"),
		Body: func(ec *core.ExecCtx) error {
			h.mk.BeginConflicting(ec) // want `does not set Conflicting: true`
			h.mk.EndConflicting(ec)
			return nil
		},
	}
}

// Declared Conflicting: clean.
func (h *holder) setupDeclared() {
	h.cs2 = core.CS{
		Scope:       core.NewScope("declared"),
		Conflicting: true,
		Body: func(ec *core.ExecCtx) error {
			h.mk.BeginConflicting(ec)
			h.mk.EndConflicting(ec)
			return nil
		},
	}
}

// L4: gating BeginConflicting on InSWOpt inverts the protocol (the marker
// itself already fails the SWOpt attempt; HTM/Lock modes need the bump).
func (h *holder) setupGated() {
	h.cs2 = core.CS{
		Scope:       core.NewScope("gated"),
		Conflicting: true,
		Body: func(ec *core.ExecCtx) error {
			if ec.InSWOpt() {
				h.mk.BeginConflicting(ec) // want `gated on ec.InSWOpt`
				h.mk.EndConflicting(ec)
			}
			return nil
		},
	}
}
