// Package markerpair verifies that every ConflictMarker.BeginConflicting
// inside a critical-section body is matched by an EndConflicting on every
// path out of the function — early returns, panics, and falling off the
// end included (paper section 3: a conflicting region left open keeps the
// marker version odd forever, wedging every SWOpt reader).
//
// Matching is receiver-aware: Begin on marker A pairs with End on marker
// A. Sweep loops are recognized as a unit — a `for _, mk := range X`
// whose body begins conflicting regions pairs with a later
// `for _, mk := range X` that ends them (the bulk-clear idiom).
package markerpair

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis/aleutil"
	"repro/internal/analysis/cfgutil"
	"repro/internal/analysis/framework"
)

// Analyzer is the markerpair analyzer.
var Analyzer = &framework.Analyzer{
	Name: "markerpair",
	Doc: "check that every BeginConflicting is matched by EndConflicting on all paths\n\n" +
		"A conflicting region left open on an early return or panic leaves the\n" +
		"marker version odd, permanently blocking SWOpt readers (ReadStable\n" +
		"spins for an even version).",
	Run: run,
}

func run(pass *framework.Pass) error {
	for _, fn := range aleutil.FuncsWithExecCtx(pass.TypesInfo, pass.Files) {
		checkFunc(pass, fn.Body)
	}
	return nil
}

// beginCall is one BeginConflicting site in a function body.
type beginCall struct {
	call *ast.CallExpr
	key  any // receiver identity (types.Object or printed expr)
}

// sweep describes a `for _, mk := range X { mk.<BeginOrEnd>Conflicting }`
// loop: the range statement, the printed range expression, and whether it
// ends (vs begins) regions.
type sweep struct {
	rng     *ast.RangeStmt
	rangeEx string
	ends    bool
}

func checkFunc(pass *framework.Pass, body *ast.BlockStmt) {
	info := pass.TypesInfo

	// A deferred EndConflicting inside a loop runs at function exit, not
	// per iteration: iteration n+1 begins while iteration n's region is
	// still open (double-Begin on an odd version). Such defers cover
	// nothing; find them first so the gather pass can ignore them. This
	// mirrors alepatch's defer-in-loop rejection for mutex regions.
	loopDefers := map[*ast.DeferStmt]bool{}
	markLoopDefers := func(loopBody *ast.BlockStmt) {
		ast.Inspect(loopBody, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				return false
			case *ast.DeferStmt:
				loopDefers[n] = true
			}
			return true
		})
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ForStmt:
			markLoopDefers(n.Body)
		case *ast.RangeStmt:
			markLoopDefers(n.Body)
		}
		return true
	})

	// Gather Begin sites, deferred Ends, and sweep loops up front. Nested
	// function literals are analyzed separately (FuncsWithExecCtx yields
	// them when they take an ExecCtx; other nested literals run outside
	// the critical section's control flow), so skip their subtrees.
	var begins []beginCall
	deferredEnds := map[any]bool{}
	anyDeferredEnd := false
	var sweeps []sweep
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.DeferStmt:
			if !loopDefers[n] && aleutil.MarkerCall(info, n.Call) == "EndConflicting" {
				deferredEnds[aleutil.ReceiverKey(info, n.Call)] = true
				anyDeferredEnd = true
			}
		case *ast.RangeStmt:
			if s, ok := sweepOf(info, n); ok {
				sweeps = append(sweeps, s)
			}
		case *ast.CallExpr:
			if aleutil.MarkerCall(info, n) == "BeginConflicting" {
				begins = append(begins, beginCall{call: n, key: aleutil.ReceiverKey(info, n)})
			}
		}
		return true
	})
	if len(begins) == 0 {
		return
	}

	g := cfgutil.New(body)

	// Map each CFG node back to its block and position for DFS starts.
	nodeBlock := map[ast.Node]*cfgutil.Block{}
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			nodeBlock[n] = b
		}
	}

	for _, bc := range begins {
		if deferredEnds[bc.key] || (len(deferredEnds) > 0 && anyDeferredEnd && singleMarker(begins)) {
			continue // a deferred EndConflicting covers every exit
		}
		if escapesUnmatched(pass, g, nodeBlock, bc, sweeps, loopDefers) {
			pass.Reportf(bc.call.Pos(),
				"BeginConflicting is not matched by an EndConflicting on every path out of the function (early return, panic, or loop exit leaves the conflicting region open)")
		}
	}
}

// singleMarker reports whether all Begin sites share one receiver key, in
// which case a deferred End on any key is accepted as covering them.
func singleMarker(begins []beginCall) bool {
	for i := 1; i < len(begins); i++ {
		if begins[i].key != begins[0].key {
			return false
		}
	}
	return true
}

// sweepOf recognizes `for _, mk := range X` loops whose body's marker
// calls are all Begin (or all End) on the range's value variable.
func sweepOf(info *types.Info, rng *ast.RangeStmt) (sweep, bool) {
	valID, ok := rng.Value.(*ast.Ident)
	if !ok {
		return sweep{}, false
	}
	valObj := info.ObjectOf(valID)
	if valObj == nil {
		return sweep{}, false
	}
	var sawBegin, sawEnd, sawOther bool
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch aleutil.MarkerCall(info, call) {
		case "BeginConflicting":
			if aleutil.ReceiverKey(info, call) == any(valObj) {
				sawBegin = true
			} else {
				sawOther = true
			}
		case "EndConflicting":
			if aleutil.ReceiverKey(info, call) == any(valObj) {
				sawEnd = true
			} else {
				sawOther = true
			}
		}
		return true
	})
	if sawOther || sawBegin == sawEnd {
		return sweep{}, false
	}
	return sweep{rng: rng, rangeEx: types.ExprString(rng.X), ends: sawEnd}, true
}

// escapesUnmatched walks the CFG from just after the Begin call and
// reports whether any path reaches the function exit without executing a
// matching EndConflicting (or entering a paired End-sweep loop).
func escapesUnmatched(pass *framework.Pass, g *cfgutil.Graph, nodeBlock map[ast.Node]*cfgutil.Block, bc beginCall, sweeps []sweep, loopDefers map[*ast.DeferStmt]bool) bool {
	info := pass.TypesInfo

	// If the Begin site sits inside a Begin-sweep loop, paths that later
	// enter an End-sweep over the same expression are satisfied.
	var pairedEndSweeps []*ast.RangeStmt
	for _, s := range sweeps {
		if s.ends {
			continue
		}
		if s.rng.Body.Pos() <= bc.call.Pos() && bc.call.End() <= s.rng.Body.End() {
			for _, e := range sweeps {
				if e.ends && e.rangeEx == s.rangeEx {
					pairedEndSweeps = append(pairedEndSweeps, e.rng)
				}
			}
		}
	}
	isPairedEndSweep := func(b *cfgutil.Block) bool {
		for _, rng := range pairedEndSweeps {
			if b.Stmt == rng {
				return true
			}
		}
		return false
	}

	matchesEnd := func(n ast.Node) bool {
		var call *ast.CallExpr
		switch n := n.(type) {
		case *ast.ExprStmt:
			call, _ = n.X.(*ast.CallExpr)
		case *ast.DeferStmt:
			if loopDefers[n] {
				return false // runs at function exit, not here
			}
			call = n.Call
		}
		if call == nil || aleutil.MarkerCall(info, call) != "EndConflicting" {
			return false
		}
		key := aleutil.ReceiverKey(info, call)
		return key == bc.key || key == nil || bc.key == nil
	}

	startBlock := nodeBlock[findStmtOf(g, bc.call)]
	if startBlock == nil {
		return false // not in the graph (e.g. inside a defer's call args)
	}

	// Scan the remainder of the start block after the Begin call.
	started := false
	for _, n := range startBlock.Nodes {
		if !started {
			if containsNode(n, bc.call) {
				started = true
			}
			continue
		}
		if matchesEnd(n) {
			return false
		}
	}

	visited := map[*cfgutil.Block]bool{startBlock: true}
	var dfs func(b *cfgutil.Block) bool
	dfs = func(b *cfgutil.Block) bool {
		if b == g.Exit {
			return true
		}
		if visited[b] {
			return false
		}
		visited[b] = true
		if isPairedEndSweep(b) {
			return false
		}
		for _, n := range b.Nodes {
			if matchesEnd(n) {
				return false
			}
		}
		for _, s := range b.Succs {
			if dfs(s) {
				return true
			}
		}
		return false
	}
	for _, s := range startBlock.Succs {
		if dfs(s) {
			return true
		}
	}
	return false
}

// findStmtOf returns the CFG node (statement or condition expression)
// containing the call, so DFS can start at the right block.
func findStmtOf(g *cfgutil.Graph, call *ast.CallExpr) ast.Node {
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			if containsNode(n, call) {
				return n
			}
		}
	}
	return nil
}

func containsNode(n ast.Node, target ast.Node) bool {
	if n == nil {
		return false
	}
	// A RangeStmt appears as a node of its own header block, but its Body
	// belongs to a different block — only the range clause itself
	// (key/value/X) executes in the header.
	if rng, ok := n.(*ast.RangeStmt); ok {
		return containsNode(rng.Key, target) ||
			containsNode(rng.Value, target) ||
			containsNode(rng.X, target)
	}
	found := false
	ast.Inspect(n, func(x ast.Node) bool {
		if x == target {
			found = true
		}
		return !found
	})
	return found
}
