package markerpair_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/markerpair"
)

func TestMarkerPair(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), markerpair.Analyzer, "a")
}
