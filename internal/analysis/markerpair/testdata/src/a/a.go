// Package a is the markerpair golden fixture: each function exercises one
// Begin/End pairing shape, good or bad.
package a

import (
	"errors"

	"repro/internal/core"
)

type box struct {
	mk  *core.ConflictMarker
	mks []*core.ConflictMarker
}

// Straight-line pairing: clean.
func (b *box) pairOK(ec *core.ExecCtx) error {
	b.mk.BeginConflicting(ec)
	b.mk.EndConflicting(ec)
	return nil
}

// Early return between Begin and End leaves the region open.
func (b *box) earlyReturn(ec *core.ExecCtx, fail bool) error {
	b.mk.BeginConflicting(ec) // want `not matched by an EndConflicting on every path`
	if fail {
		return errors.New("boom")
	}
	b.mk.EndConflicting(ec)
	return nil
}

// A deferred End covers every exit: clean.
func (b *box) deferOK(ec *core.ExecCtx, fail bool) error {
	b.mk.BeginConflicting(ec)
	defer b.mk.EndConflicting(ec)
	if fail {
		return errors.New("boom")
	}
	return nil
}

// End on each branch: clean.
func (b *box) branchesOK(ec *core.ExecCtx, fail bool) error {
	b.mk.BeginConflicting(ec)
	if fail {
		b.mk.EndConflicting(ec)
		return errors.New("boom")
	}
	b.mk.EndConflicting(ec)
	return nil
}

// A panic path escapes the region.
func (b *box) panicPath(ec *core.ExecCtx, n int) error {
	b.mk.BeginConflicting(ec) // want `not matched by an EndConflicting on every path`
	if n < 0 {
		panic("negative")
	}
	b.mk.EndConflicting(ec)
	return nil
}

// Paired sweeps (the bulk-clear idiom): clean.
func (b *box) sweepOK(ec *core.ExecCtx) error {
	for _, mk := range b.mks {
		mk.BeginConflicting(ec)
	}
	for _, mk := range b.mks {
		mk.EndConflicting(ec)
	}
	return nil
}

// A Begin sweep with no End sweep leaves every marker open.
func (b *box) sweepBad(ec *core.ExecCtx) error {
	for _, mk := range b.mks {
		mk.BeginConflicting(ec) // want `not matched by an EndConflicting on every path`
	}
	return nil
}

// Ending a different marker does not close this one.
func (b *box) wrongMarker(ec *core.ExecCtx, other *core.ConflictMarker) error {
	b.mk.BeginConflicting(ec) // want `not matched by an EndConflicting on every path`
	other.EndConflicting(ec)
	return nil
}

// Loop exit via break after Begin, End after the loop: clean.
func (b *box) loopBreakOK(ec *core.ExecCtx, n int) error {
	b.mk.BeginConflicting(ec)
	for i := 0; i < n; i++ {
		if i == 3 {
			break
		}
	}
	b.mk.EndConflicting(ec)
	return nil
}

// A deferred End inside a loop runs at function exit, not per
// iteration: the next iteration begins while this region is still open.
// Same shape alepatch rejects as defer-in-loop for mutex regions.
func (b *box) deferInLoop(ec *core.ExecCtx, n int) error {
	for i := 0; i < n; i++ {
		b.mk.BeginConflicting(ec) // want `not matched by an EndConflicting on every path`
		defer b.mk.EndConflicting(ec)
	}
	return nil
}

// A deferred End inside a loop does not cover a Begin outside it either.
func (b *box) deferInLoopOutsideBegin(ec *core.ExecCtx, n int) error {
	b.mk.BeginConflicting(ec) // want `not matched by an EndConflicting on every path`
	for i := 0; i < n; i++ {
		defer b.mk.EndConflicting(ec)
	}
	return nil
}

// goto jumps over the EndConflicting. Same shape alepatch rejects as
// goto-crosses-region for mutex regions.
func (b *box) gotoOverEnd(ec *core.ExecCtx, fail bool) error {
	b.mk.BeginConflicting(ec) // want `not matched by an EndConflicting on every path`
	if fail {
		goto out
	}
	b.mk.EndConflicting(ec)
out:
	return nil
}

// A suppressed violation: no want, the directive absorbs it.
func (b *box) suppressed(ec *core.ExecCtx, fail bool) error {
	b.mk.BeginConflicting(ec) //alelint:allow markerpair -- fixture: intentionally unmatched
	if fail {
		return errors.New("boom")
	}
	b.mk.EndConflicting(ec)
	return nil
}
