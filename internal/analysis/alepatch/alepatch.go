// Package alepatch is a static-analysis-driven rewriter that converts
// sync.Mutex / sync.RWMutex critical sections into ALE Lock.Execute
// calls. It matches Lock/Unlock regions on the control-flow graph,
// filters them through an eligibility pipeline (lock identity stability,
// escape, cross-function sections, irrevocable actions), classifies each
// region as convertible, convertible-with-instrumentation (speculative
// readers validated against a conflict marker), or rejected with a
// reason, and either reports (-check) or rewrites (-w / -o).
//
// Conversion is all-or-nothing per mutex identity: the declaration's
// type changes to the generated alepatchMutex shim, so one rejected
// region keeps every region of that mutex untouched.
//
// The simulated HTM (internal/tm) only isolates tm.Var cells, so every
// generated critical section sets NoHTM: conversions run in Lock mode
// (always safe) with an optional SWOpt read path whose shared loads are
// mirrored through sync/atomic.
package alepatch

import (
	"flag"
	"fmt"
	"go/ast"
	"io"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/analysis/framework"
)

// Exit codes, mirroring alelint.
const (
	ExitClean = 0 // no rejected regions
	ExitDiags = 1 // at least one region rejected
	ExitError = 2 // usage, load, or rewrite failure
)

// Options selects the tool's mode.
type Options struct {
	JSON   bool   // -check output as JSON instead of human lines
	Write  bool   // rewrite files in place
	OutDir string // write the converted package (all files) to this directory
}

// Result is one analyzed package.
type Result struct {
	Pkg     *framework.Package
	Regions []*Region // every matched region, in source order
	Report  Report

	cls *classifier
}

// Analyze runs discovery, region matching, and classification over pkg.
func Analyze(pkg *framework.Package) (*Result, error) {
	src := map[*ast.File][]byte{}
	for _, f := range pkg.Files {
		name := pkg.Fset.Position(f.Pos()).Filename
		data, err := os.ReadFile(name)
		if err != nil {
			return nil, fmt.Errorf("reading %s: %v", name, err)
		}
		src[f] = data
	}
	ls := discoverLocks(pkg)
	ls.scanUses()
	var regions []*Region
	for _, f := range pkg.Files {
		if ast.IsGenerated(f) {
			continue // previously generated shims are not conversion subjects
		}
		for _, d := range f.Decls {
			if fn, ok := d.(*ast.FuncDecl); ok && fn.Body != nil {
				regions = append(regions, ls.regionsIn(fn, f)...)
			}
		}
	}
	classifyPackage(ls, src)
	sort.Slice(regions, func(i, j int) bool { return regions[i].LockStmt.Pos() < regions[j].LockStmt.Pos() })
	return &Result{
		Pkg:     pkg,
		Regions: regions,
		Report:  buildReport(pkg, regions),
		cls:     &classifier{ls: ls, src: src},
	}, nil
}

// Rewrite returns the converted files (changed sources plus the
// zz_alepatch.go shim), keyed by base filename.
func (res *Result) Rewrite() (map[string][]byte, error) {
	return (&rewriter{c: res.cls}).Rewrite()
}

// SourceFiles returns the package's files as (basename, original bytes),
// for -o output of unconverted files.
func (res *Result) SourceFiles() map[string][]byte {
	out := map[string][]byte{}
	for _, f := range res.Pkg.Files {
		name := res.Pkg.Fset.Position(f.Pos()).Filename
		out[filepath.Base(name)] = res.cls.src[f]
	}
	return out
}

// Main parses flags and runs the tool; it returns the process exit code.
func Main(args []string) int {
	fs := flag.NewFlagSet("alepatch", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	check := fs.Bool("check", false, "report region classification without rewriting (default when -w and -o are absent)")
	jsonOut := fs.Bool("json", false, "with -check, emit the report as JSON")
	write := fs.Bool("w", false, "rewrite converted files in place")
	outDir := fs.String("o", "", "write the converted package (all files plus the shim) into this directory")
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: alepatch [-check [-json]] [-w | -o dir] [packages]\n\nFlags:\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return ExitClean
		}
		return ExitError
	}
	if *write && *outDir != "" {
		fmt.Fprintln(os.Stderr, "alepatch: -w and -o are mutually exclusive")
		return ExitError
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"."}
	}
	opts := Options{JSON: *jsonOut, Write: *write, OutDir: *outDir}
	_ = check // -check is the default mode; the flag exists for explicitness
	return Run(opts, "", patterns, os.Stdout, os.Stderr)
}

// Run executes the tool over the packages matched by patterns (resolved
// in dir; "" = cwd) and returns an exit code.
func Run(opts Options, dir string, patterns []string, out, errw io.Writer) int {
	pkgs, err := framework.Load(dir, patterns...)
	if err != nil {
		fmt.Fprintf(errw, "alepatch: %v\n", err)
		return ExitError
	}
	if opts.OutDir != "" && len(pkgs) != 1 {
		fmt.Fprintf(errw, "alepatch: -o requires exactly one package (got %d)\n", len(pkgs))
		return ExitError
	}

	var results []*Result
	for _, pkg := range pkgs {
		res, err := Analyze(pkg)
		if err != nil {
			fmt.Fprintf(errw, "alepatch: %s: %v\n", pkg.ImportPath, err)
			return ExitError
		}
		results = append(results, res)
	}

	if !opts.Write && opts.OutDir == "" {
		co := CheckOutput{}
		rejected := false
		for _, res := range results {
			co.Packages = append(co.Packages, res.Report)
			if res.Report.Rejected > 0 {
				rejected = true
			}
		}
		if opts.JSON {
			if err := co.WriteJSON(out); err != nil {
				fmt.Fprintf(errw, "alepatch: %v\n", err)
				return ExitError
			}
		} else {
			for _, rep := range co.Packages {
				rep.WriteHuman(out)
			}
		}
		if rejected {
			return ExitDiags
		}
		return ExitClean
	}

	for _, res := range results {
		files, err := res.Rewrite()
		if err != nil {
			fmt.Fprintf(errw, "alepatch: %s: %v\n", res.Pkg.ImportPath, err)
			return ExitError
		}
		switch {
		case opts.Write:
			for name, data := range files {
				path := filepath.Join(res.Pkg.Dir, name)
				if err := os.WriteFile(path, data, 0o644); err != nil {
					fmt.Fprintf(errw, "alepatch: %v\n", err)
					return ExitError
				}
				fmt.Fprintln(out, path)
			}
		default: // -o
			if err := os.MkdirAll(opts.OutDir, 0o755); err != nil {
				fmt.Fprintf(errw, "alepatch: %v\n", err)
				return ExitError
			}
			merged := res.SourceFiles()
			for name, data := range files {
				merged[name] = data
			}
			var names []string
			for name := range merged {
				names = append(names, name)
			}
			sort.Strings(names)
			for _, name := range names {
				path := filepath.Join(opts.OutDir, name)
				if err := os.WriteFile(path, merged[name], 0o644); err != nil {
					fmt.Fprintf(errw, "alepatch: %v\n", err)
					return ExitError
				}
				fmt.Fprintln(out, path)
			}
		}
	}
	return ExitClean
}
