// Package classify exercises the alepatch downgrade notes: each type
// below is convertible but fails speculative-reader instrumentation for
// one specific recorded reason. TestClassifyGolden pins the notes.
package classify

import "sync"

// package-level-state: a package-var mutex has no owner struct whose
// fields could be mirrored through atomics.
var psMu sync.Mutex
var psVal int64

func PkgState() int64 {
	psMu.Lock()
	v := psVal
	psMu.Unlock()
	return v
}

// no-protected-loads: the region reads nothing, so there is nothing to
// validate speculatively.
type Quiet struct {
	mu sync.Mutex
	n  int64
}

func (q *Quiet) Ping() {
	q.mu.Lock()
	q.mu.Unlock()
}

// wide-load: the protected field is not word-sized.
type Narrow struct {
	mu sync.Mutex
	n  int32
}

func (x *Narrow) Get() int32 {
	x.mu.Lock()
	v := x.n
	x.mu.Unlock()
	return v
}

// computes-on-loads: loaded fields feed computation before validation.
type Summing struct {
	mu   sync.Mutex
	a, b int64
}

func (x *Summing) Sum() int64 {
	x.mu.Lock()
	s := x.a + x.b
	x.mu.Unlock()
	return s
}

// calls: the region calls a function.
type Caller struct {
	mu sync.Mutex
	n  int64
}

func clamp(v int64) int64 {
	if v < 0 {
		return 0
	}
	return v
}

func (x *Caller) Get() int64 {
	x.mu.Lock()
	v := clamp(x.n)
	x.mu.Unlock()
	return v
}

// control-flow: the region is not straight-line.
type Branchy struct {
	mu sync.Mutex
	n  int64
}

func (x *Branchy) Get() int64 {
	x.mu.Lock()
	v := x.n
	if v < 0 {
		v = 0
	}
	x.mu.Unlock()
	return v
}

// unsupported-expr: a channel receive cannot re-execute under retry.
type Chans struct {
	mu sync.Mutex
}

func (x *Chans) Recv(ch chan int64) int64 {
	x.mu.Lock()
	v := <-ch
	x.mu.Unlock()
	return v
}

// writer-not-atomic (and writes): the reader qualifies, but the sibling
// writer's *= store has no sync/atomic equivalent.
type Scaler struct {
	mu sync.Mutex
	n  int64
}

func (x *Scaler) Get() int64 {
	x.mu.Lock()
	v := x.n
	x.mu.Unlock()
	return v
}

func (x *Scaler) Double() {
	x.mu.Lock()
	x.n *= 2
	x.mu.Unlock()
}

// writes: the region stores to shared state, so it can never be a
// speculative reader (and with no reader sibling, nothing is mirrored).
type Setter struct {
	mu sync.Mutex
	n  int64
}

func (x *Setter) Set(v int64) {
	x.mu.Lock()
	x.n = v
	x.mu.Unlock()
}

// unguarded-access: the field a speculative reader would mirror is also
// read outside any region of its mutex.
type Leaky struct {
	mu sync.Mutex
	n  int64
}

func (x *Leaky) Get() int64 {
	x.mu.Lock()
	v := x.n
	x.mu.Unlock()
	return v
}

func (x *Leaky) Peek() int64 {
	return x.n
}

// sibling-rejected: one region of the mutex is rejected, so the
// accepted one cannot convert either (all-or-nothing per identity).
type Mixed struct {
	mu sync.Mutex
	n  int64
}

func (x *Mixed) Good() int64 {
	x.mu.Lock()
	v := x.n
	x.mu.Unlock()
	return v
}

func (x *Mixed) Bad() {
	for i := 0; i < 2; i++ {
		x.mu.Lock()
		defer x.mu.Unlock()
	}
}
