// Package reject exercises every alepatch rejection reason exactly
// once. The golden -check -json output for this package is pinned by
// TestRejectGolden; each function below is named for the reason its
// region must produce.
package reject

import "sync"

// unstable-identity: a multi-name var spec gives the mutex no stable
// single declaration site.
var muA, muB sync.Mutex

func unstable() {
	muA.Lock()
	muA.Unlock()
	muB.Lock()
	muB.Unlock()
}

// condvar: the mutex feeds sync.NewCond, so it must stay a real
// sync.Mutex.
var cvMu sync.Mutex
var cond = sync.NewCond(&cvMu)

func condvar() {
	cvMu.Lock()
	cvMu.Unlock()
	cond.Signal()
}

// trylock: TryLock has no Execute equivalent.
var tlMu sync.Mutex

func trylock() {
	if tlMu.TryLock() {
		tlMu.Unlock()
	}
	tlMu.Lock()
	tlMu.Unlock()
}

// address-taken: the mutex aliases out through a pointer, so rewriting
// its declaration would not cover all uses.
var atMu sync.Mutex

func addressTaken() *sync.Mutex {
	atMu.Lock()
	atMu.Unlock()
	return &atMu
}

// cross-function: the lock and unlock live in different functions.
var cfMu sync.Mutex

func crossLock()   { cfMu.Lock() }
func crossUnlock() { cfMu.Unlock() }

// unbalanced: the lock is never released.
var ubMu sync.Mutex

func unbalanced() {
	ubMu.Lock()
}

// defer-in-loop: the deferred unlock runs at function exit, not per
// iteration, so the region is not a per-iteration critical section.
var dlMu sync.Mutex

func deferInLoop() {
	for i := 0; i < 3; i++ {
		dlMu.Lock()
		defer dlMu.Unlock()
	}
}

// goto-crosses-region: a goto jumps from inside the critical section to
// a label outside it.
var gtMu sync.Mutex

func gotoCrosses(x bool) {
	gtMu.Lock()
	if x {
		goto done
	}
	gtMu.Unlock()
done:
	_ = x
}

// unsupported-exit: break leaves the region while the lock is held.
var brMu sync.Mutex

func breakOut(n int) {
	for i := 0; i < n; i++ {
		brMu.Lock()
		if i == 1 {
			break
		}
		brMu.Unlock()
	}
}

// escape: the enclosing function already uses an alepatch-prefixed
// identifier, which the generated code would capture or shadow.
var esMu sync.Mutex

func escape() {
	alepatchCollision := 1
	_ = alepatchCollision
	esMu.Lock()
	esMu.Unlock()
}
