package alepatch_test

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis/alepatch"
	"repro/internal/analysis/framework"
)

// runCheck runs alepatch -check -json over the package in dir (relative
// to this test's directory) and returns the exit code and output.
func runCheck(t *testing.T, dir string) (int, []byte) {
	t.Helper()
	abs, err := filepath.Abs(dir)
	if err != nil {
		t.Fatal(err)
	}
	var out, errb bytes.Buffer
	code := alepatch.Run(alepatch.Options{JSON: true}, abs, []string{"."}, &out, &errb)
	if errb.Len() > 0 {
		t.Logf("stderr:\n%s", errb.String())
	}
	return code, out.Bytes()
}

func mustGolden(t *testing.T, name string) []byte {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestRejectGolden pins the full -check -json report for the fixture
// that triggers every rejection reason, and asserts the diagnostic exit
// code.
func TestRejectGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out to go list; skipped in -short mode")
	}
	code, out := runCheck(t, filepath.Join("testdata", "src", "reject"))
	if code != alepatch.ExitDiags {
		t.Errorf("exit = %d, want %d", code, alepatch.ExitDiags)
	}
	if want := mustGolden(t, "reject.golden.json"); !bytes.Equal(out, want) {
		t.Errorf("report drifted from testdata/reject.golden.json:\n%s", out)
	}
	reasons := []string{
		alepatch.ReasonUnbalanced, alepatch.ReasonDeferInLoop,
		alepatch.ReasonGotoCrosses, alepatch.ReasonUnsupported,
		alepatch.ReasonCrossFn, alepatch.ReasonEscape,
		alepatch.ReasonCondvar, alepatch.ReasonTryLock,
		alepatch.ReasonAddressTaken, alepatch.ReasonUnstable,
	}
	for _, reason := range reasons {
		if !strings.Contains(string(out), `"reason": "`+reason+`"`) {
			t.Errorf("fixture does not exercise rejection reason %q", reason)
		}
	}
}

// TestClassifyGolden pins the downgrade-note report. NoteIrrevocable is
// exempt: the reader shape filter subsumes it, and it remains only as a
// backstop should the shape filter widen.
func TestClassifyGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out to go list; skipped in -short mode")
	}
	code, out := runCheck(t, filepath.Join("testdata", "src", "classify"))
	if code != alepatch.ExitDiags { // the sibling-rejected case rejects one region
		t.Errorf("exit = %d, want %d", code, alepatch.ExitDiags)
	}
	if want := mustGolden(t, "classify.golden.json"); !bytes.Equal(out, want) {
		t.Errorf("report drifted from testdata/classify.golden.json:\n%s", out)
	}
	notes := []string{
		alepatch.NoteWideLoad, alepatch.NoteComputes, alepatch.NoteCalls,
		alepatch.NoteControlFlow, alepatch.NoteWrites,
		alepatch.NoteUnsupportedExpr, alepatch.NotePackageState,
		alepatch.NoteNoLoads, alepatch.NoteWriterNotAtomic,
		alepatch.NoteUnguarded, alepatch.NoteSibling,
	}
	for _, note := range notes {
		if !strings.Contains(string(out), `"`+note+`"`) {
			t.Errorf("fixture does not exercise downgrade note %q", note)
		}
	}
}

// TestVendoredRewriteMatchesCommitted regenerates the conversion of
// examples/vendored/counter in memory and asserts it is byte-identical
// to the committed examples/vendored/counter_converted package.
func TestVendoredRewriteMatchesCommitted(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out to go list; skipped in -short mode")
	}
	dir, err := filepath.Abs(filepath.Join("..", "..", "..", "examples", "vendored", "counter"))
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := framework.Load(dir, ".")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("loaded %d packages, want 1", len(pkgs))
	}
	res, err := alepatch.Analyze(pkgs[0])
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.Rejected != 0 {
		t.Fatalf("vendored package has %d rejected regions", res.Report.Rejected)
	}
	files, err := res.Rewrite()
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("rewrite produced no files")
	}
	convDir := filepath.Join(dir, "..", "counter_converted")
	for name, got := range files {
		want, err := os.ReadFile(filepath.Join(convDir, name))
		if err != nil {
			t.Errorf("converted file %s is not committed: %v", name, err)
			continue
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s drifted from the committed conversion; regenerate with:\n"+
				"  go run ./cmd/alepatch -o examples/vendored/counter_converted ./examples/vendored/counter", name)
		}
	}
}

// TestConvertedPackageIsInert asserts idempotence: analyzing the
// converted package finds no regions (the shim is generated code, the
// mutexes are gone) and a second rewrite emits nothing, so running
// alepatch twice leaves bytes unchanged.
func TestConvertedPackageIsInert(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out to go list; skipped in -short mode")
	}
	dir, err := filepath.Abs(filepath.Join("..", "..", "..", "examples", "vendored", "counter_converted"))
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := framework.Load(dir, ".")
	if err != nil {
		t.Fatal(err)
	}
	res, err := alepatch.Analyze(pkgs[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Regions) != 0 {
		t.Errorf("converted package still reports %d regions", len(res.Regions))
	}
	files, err := res.Rewrite()
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 0 {
		t.Errorf("second rewrite is not empty: %d files", len(files))
	}
}

// TestExitCodes covers the three exit codes through the public Run
// entry point.
func TestExitCodes(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out to go list; skipped in -short mode")
	}
	clean, err := filepath.Abs(filepath.Join("..", "..", "..", "examples", "vendored", "counter"))
	if err != nil {
		t.Fatal(err)
	}
	var out, errb bytes.Buffer
	if code := alepatch.Run(alepatch.Options{}, clean, []string{"."}, &out, &errb); code != alepatch.ExitClean {
		t.Errorf("clean package: exit = %d, want %d\n%s", code, alepatch.ExitClean, errb.String())
	}
	reject, err := filepath.Abs(filepath.Join("testdata", "src", "reject"))
	if err != nil {
		t.Fatal(err)
	}
	out.Reset()
	errb.Reset()
	if code := alepatch.Run(alepatch.Options{}, reject, []string{"."}, &out, &errb); code != alepatch.ExitDiags {
		t.Errorf("reject fixture: exit = %d, want %d", code, alepatch.ExitDiags)
	}
	out.Reset()
	errb.Reset()
	if code := alepatch.Run(alepatch.Options{}, "", []string{"./no/such/package"}, &out, &errb); code != alepatch.ExitError {
		t.Errorf("bogus pattern: exit = %d, want %d", code, alepatch.ExitError)
	}
}
