package alepatch

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"

	"repro/internal/analysis/irrevocable"
)

// Region classes.
const (
	ClassConvertible  = "convertible"
	ClassInstrumented = "convertible-with-instrumentation"
	ClassRejected     = "rejected"
)

// Downgrade notes: why a region converts to a lock-mode-only body instead
// of gaining a speculative read path. Purely informational — the region
// still converts.
const (
	NoteWideLoad        = "wide-load"           // protected load is not int64/uint64
	NoteComputes        = "computes-on-loads"   // loaded/shared values feed computation before validation
	NoteCalls           = "calls"               // region calls functions
	NoteControlFlow     = "control-flow"        // region is not straight-line
	NoteWrites          = "writes"              // region stores to shared state
	NoteIrrevocable     = "irrevocable"         // region body performs irrevocable actions
	NoteUnsupportedExpr = "unsupported-expr"    // non-basic or otherwise unmirrorable expression
	NotePackageState    = "package-level-state" // package-var mutex: no owner struct to mirror
	NoteNoLoads         = "no-protected-loads"  // nothing to validate speculatively
	NoteWriterNotAtomic = "writer-not-atomic"   // a writer's stores cannot become atomic
	NoteUnguarded       = "unguarded-access"    // mirrored field touched outside the lock's regions
	NoteSibling         = "sibling-rejected"    // another region of the same lock was rejected
)

// hoist is one declaration moved out of the region so names defined
// inside the generated closure stay visible to code after it.
type hoist struct {
	assign *ast.AssignStmt // `:=` whose token becomes `=` (nil when decl is set)
	decl   *ast.DeclStmt   // value-less var declaration moved verbatim
	names  []string        // per-LHS name; "" = already declared, no hoist
	typs   []string        // rendered type per hoisted name
}

// readerOp is one step of an instrumented reader: either an atomic load
// of a protected field or a verbatim copy, assigned to target.
type readerOp struct {
	target   string
	declare  bool   // target is newly defined in the region (hoist it)
	typ      string // rendered target type when declare
	load     *types.Var
	loadSel  string // rendered selector for the load
	unsigned bool
	verbatim string // verbatim RHS when load == nil
}

// storeEdit replaces one writer statement with its atomic form.
type storeEdit struct {
	node ast.Node
	text string
}

// convPlan is everything the rewriter needs to emit a region.
type convPlan struct {
	caps      []string // capture names for the function's results
	capTyps   []string // rendered types (nil when results are named)
	capsNamed bool
	needDone  bool // inline shape with early exits: alepatchDone flag

	hoists []hoist

	reader         []readerOp // non-nil: instrumented reader
	readerFinalRet bool       // region ended in a return (defer shape)

	stores []storeEdit // writer atomicizations when the lock is instrumented

	scopeLabel string // filled by the rewriter
	scopeIdx   int
}

// classifier runs the eligibility pipeline over one package.
type classifier struct {
	ls  *lockSet
	src map[*ast.File][]byte
}

// fileOf returns the file whose range contains pos.
func (c *classifier) fileOf(pos token.Pos) *ast.File {
	for _, f := range c.ls.pkg.Files {
		if f.FileStart <= pos && pos <= f.FileEnd {
			return f
		}
	}
	return nil
}

// render returns n's source bytes verbatim.
func (c *classifier) render(n ast.Node) string {
	f := c.fileOf(n.Pos())
	if f == nil {
		return ""
	}
	fset := c.ls.pkg.Fset
	lo := fset.Position(n.Pos()).Offset
	hi := fset.Position(n.End()).Offset
	return string(c.src[f][lo:hi])
}

// renderType renders t using f's imports for qualification. ok is false
// when a needed package is not imported in f.
func (c *classifier) renderType(f *ast.File, t types.Type) (string, bool) {
	t = types.Default(t)
	ok := true
	q := func(p *types.Package) string {
		if p == c.ls.pkg.Types {
			return ""
		}
		for _, imp := range f.Imports {
			path, _ := strconv.Unquote(imp.Path.Value)
			if path == p.Path() {
				if imp.Name != nil {
					if imp.Name.Name == "." {
						return ""
					}
					return imp.Name.Name
				}
				return p.Name()
			}
		}
		ok = false
		return p.Name()
	}
	s := types.TypeString(t, q)
	return s, ok
}

// classifyPackage runs the full pipeline: lock-level poisoning, per-region
// base plans (captures/hoists/escape), instrumentation planning, and final
// class assignment.
func classifyPackage(ls *lockSet, src map[*ast.File][]byte) {
	c := &classifier{ls: ls, src: src}
	for _, li := range ls.locks {
		for _, r := range li.Regions {
			if r.Reject == "" && li.Reject != "" {
				r.reject(li.Reject, li.RejectNote)
			}
		}
	}
	for _, li := range ls.locks {
		c.classifyLock(li)
	}
}

func (c *classifier) classifyLock(li *LockInfo) {
	for _, r := range li.Regions {
		if r.Reject == "" {
			c.planBase(r)
		}
	}
	allAccepted := true
	for _, r := range li.Regions {
		if r.Reject != "" {
			r.Class = ClassRejected
			allAccepted = false
		}
	}

	// Reader candidates: regions whose whole body is a straight-line
	// mirror of word-sized protected fields.
	type candidate struct {
		r        *Region
		ops      []readerOp
		finalRet bool
		loads    map[*types.Var]bool
	}
	var cands []candidate
	for _, r := range li.Regions {
		if r.Reject != "" {
			continue
		}
		ops, finalRet, loads, note := c.readerPlan(r)
		if note != "" {
			r.Notes = append(r.Notes, note)
			continue
		}
		cands = append(cands, candidate{r, ops, finalRet, loads})
	}

	instrument := allAccepted && len(cands) > 0
	var why string
	var mirrored map[*types.Var]bool
	writerStores := map[*Region][]storeEdit{}
	if instrument {
		mirrored = map[*types.Var]bool{}
		for _, cd := range cands {
			for v := range cd.loads {
				mirrored[v] = true
			}
		}
		isCand := map[*Region]bool{}
		for _, cd := range cands {
			isCand[cd.r] = true
		}
		for _, r := range li.Regions {
			if isCand[r] {
				continue
			}
			edits, ok := c.atomicize(r, mirrored)
			if !ok {
				instrument, why = false, NoteWriterNotAtomic
				break
			}
			writerStores[r] = edits
		}
		if instrument && !c.guarded(li, mirrored) {
			instrument, why = false, NoteUnguarded
		}
	}

	li.Instrument = instrument
	li.InstrumentNote = why
	if instrument {
		li.Mirrored = mirrored
		for _, cd := range cands {
			cd.r.Class = ClassInstrumented
			cd.r.plan.reader = cd.ops
			cd.r.plan.readerFinalRet = cd.finalRet
		}
		for r, edits := range writerStores {
			r.plan.stores = edits
		}
	} else if why != "" {
		for _, cd := range cands {
			cd.r.Notes = append(cd.r.Notes, why)
		}
	}

	for _, r := range li.Regions {
		if r.Reject != "" {
			r.Class = ClassRejected
			continue
		}
		if r.Class == "" {
			r.Class = ClassConvertible
		}
		if !allAccepted {
			r.Notes = append(r.Notes, NoteSibling)
		}
	}
}

// planBase computes the shape-level plan every converted region needs:
// result captures, the done flag, and hoisted declarations. It can still
// reject the region (escape).
func (c *classifier) planBase(r *Region) {
	r.plan = &convPlan{}
	info := c.ls.pkg.TypesInfo

	// Generated identifiers are alepatch-prefixed; a user identifier with
	// the prefix could collide or shadow.
	collision := false
	ast.Inspect(r.Fn, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && len(id.Name) >= 8 && id.Name[:8] == "alepatch" {
			collision = true
		}
		return !collision
	})
	if collision {
		r.reject(ReasonEscape, "function uses an alepatch-prefixed identifier")
		return
	}

	// Result captures, needed when control leaves through the region.
	needsCaps := (r.Defer && len(r.Returns) >= 0) || len(r.Exits) > 0
	res := r.Fn.Type.Results
	if needsCaps && res != nil && len(res.List) > 0 {
		if res.List[0].Names != nil {
			r.plan.capsNamed = true
			for _, fld := range res.List {
				for _, name := range fld.Names {
					r.plan.caps = append(r.plan.caps, name.Name)
				}
			}
		} else {
			for i, fld := range res.List {
				r.plan.caps = append(r.plan.caps, "alepatchRet"+strconv.Itoa(i))
				r.plan.capTyps = append(r.plan.capTyps, c.render(fld.Type))
			}
		}
	}
	r.plan.needDone = !r.Defer && len(r.Exits) > 0

	if r.Defer {
		return // region is the rest of the body: nothing outlives it
	}

	// Hoists: top-level declarations whose names are used after the
	// region must move out of the generated closure.
	end := r.EndStmt.End()
	usedAfter := func(obj types.Object) bool {
		if obj == nil {
			return false
		}
		found := false
		ast.Inspect(r.Fn.Body, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && id.Pos() > end && info.Uses[id] == obj {
				found = true
			}
			return !found
		})
		return found
	}
	for _, s := range r.Stmts {
		switch s := s.(type) {
		case *ast.AssignStmt:
			if s.Tok != token.DEFINE {
				continue
			}
			h := hoist{assign: s}
			need, renderOK := false, true
			for _, l := range s.Lhs {
				id, ok := l.(*ast.Ident)
				if !ok {
					renderOK = false
					break
				}
				obj := info.Defs[id]
				if obj == nil || id.Name == "_" {
					// Redeclared or blank: `=` needs no declaration for it.
					h.names = append(h.names, "")
					h.typs = append(h.typs, "")
					continue
				}
				if usedAfter(obj) {
					need = true
				}
				t, ok := c.renderType(r.File, obj.Type())
				if !ok {
					renderOK = false
					break
				}
				h.names = append(h.names, id.Name)
				h.typs = append(h.typs, t)
			}
			if !need {
				continue
			}
			if !renderOK {
				r.reject(ReasonEscape, "declaration used after the region has an unrenderable type")
				return
			}
			r.plan.hoists = append(r.plan.hoists, h)
		case *ast.DeclStmt:
			gd, ok := s.Decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			need, movable := false, gd.Tok == token.VAR
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					movable = false
					continue
				}
				if len(vs.Values) > 0 {
					movable = false
				}
				for _, name := range vs.Names {
					if usedAfter(info.Defs[name]) {
						need = true
					}
				}
			}
			if !need {
				continue
			}
			if !movable {
				r.reject(ReasonEscape, "initialized or non-var declaration used after the region")
				return
			}
			r.plan.hoists = append(r.plan.hoists, hoist{decl: s})
		}
	}
}

// protectedField resolves sel to a word-addressable field of the lock's
// owner struct reached through the region's own base path, or nil.
func (c *classifier) protectedField(r *Region, sel *ast.SelectorExpr) *types.Var {
	li := r.Ref.lock
	if li.Owner == nil {
		return nil
	}
	v, ok := c.ls.pkg.TypesInfo.Uses[sel.Sel].(*types.Var)
	if !ok || !v.IsField() || v == li.Field {
		return nil
	}
	st, ok := li.Owner.Underlying().(*types.Struct)
	if !ok {
		return nil
	}
	found := false
	for i := 0; i < st.NumFields(); i++ {
		if st.Field(i) == v {
			found = true
		}
	}
	if !found || types.ExprString(sel.X) != r.Ref.base {
		return nil
	}
	return v
}

// wordSized reports whether t is int64 or uint64 (the types sync/atomic
// can mirror), and whether it is the unsigned one.
func wordSized(t types.Type) (unsigned, ok bool) {
	b, isBasic := t.Underlying().(*types.Basic)
	if !isBasic {
		return false, false
	}
	switch b.Kind() {
	case types.Int64:
		return false, true
	case types.Uint64:
		return true, true
	}
	return false, false
}

// readerPlan decides whether the region can gain a speculative read path
// and returns its op sequence; a non-empty note means no (with the why).
func (c *classifier) readerPlan(r *Region) (ops []readerOp, finalRet bool, loads map[*types.Var]bool, note string) {
	li := r.Ref.lock
	if li.Field == nil {
		return nil, false, nil, NotePackageState
	}
	info := c.ls.pkg.TypesInfo
	loads = map[*types.Var]bool{}
	targets := map[string]bool{}

	// classifyRHS types one right-hand side as a protected load, a copy of
	// a previous target, or a call-free local basic expression.
	classifyRHS := func(e ast.Expr) (readerOp, string) {
		e = ast.Unparen(e)
		if sel, ok := e.(*ast.SelectorExpr); ok {
			if fld := c.protectedField(r, sel); fld != nil {
				unsigned, ok := wordSized(fld.Type())
				if !ok {
					return readerOp{}, NoteWideLoad
				}
				loads[fld] = true
				return readerOp{load: fld, loadSel: c.render(sel), unsigned: unsigned}, ""
			}
		}
		if id, ok := e.(*ast.Ident); ok && targets[id.Name] {
			return readerOp{verbatim: id.Name}, ""
		}
		bad := ""
		ast.Inspect(e, func(n ast.Node) bool {
			if bad != "" {
				return false
			}
			switch n := n.(type) {
			case *ast.CallExpr:
				bad = NoteCalls
				return false
			case *ast.FuncLit:
				bad = NoteUnsupportedExpr
				return false
			case *ast.UnaryExpr:
				if n.Op == token.ARROW || n.Op == token.AND {
					bad = NoteUnsupportedExpr
					return false
				}
			case *ast.SelectorExpr:
				if v, ok := info.Uses[n.Sel].(*types.Var); ok && v.IsField() {
					bad = NoteComputes // any field read feeding computation
					return false
				}
			case *ast.IndexExpr, *ast.StarExpr:
				bad = NoteComputes
				return false
			case *ast.Ident:
				obj := info.Uses[n]
				if obj == nil {
					return true
				}
				if _, isConst := obj.(*types.Const); isConst {
					return true
				}
				if v, ok := obj.(*types.Var); ok {
					if targets[n.Name] {
						bad = NoteComputes // computing on a loaded value
						return false
					}
					// Locals and parameters are per-call stable; anything
					// else is shared state read twice under retry.
					if !(v.Pos() >= r.Fn.Pos() && v.Pos() <= r.Fn.End()) {
						bad = NoteComputes
						return false
					}
				}
			}
			return true
		})
		if bad != "" {
			return readerOp{}, bad
		}
		t := info.TypeOf(e)
		if t == nil {
			return readerOp{}, NoteUnsupportedExpr
		}
		if _, ok := types.Default(t).Underlying().(*types.Basic); !ok {
			return readerOp{}, NoteUnsupportedExpr
		}
		return readerOp{verbatim: c.render(e)}, ""
	}

	for i, s := range r.Stmts {
		switch s := s.(type) {
		case *ast.AssignStmt:
			if s.Tok != token.ASSIGN && s.Tok != token.DEFINE {
				return nil, false, nil, NoteComputes
			}
			if len(s.Lhs) != len(s.Rhs) {
				return nil, false, nil, NoteCalls
			}
			for j := range s.Lhs {
				id, ok := s.Lhs[j].(*ast.Ident)
				if !ok {
					return nil, false, nil, NoteWrites
				}
				if v, ok := info.Uses[id].(*types.Var); ok && v.Parent() == c.ls.pkg.Types.Scope() {
					return nil, false, nil, NoteWrites // store to a package var
				}
				op, bad := classifyRHS(s.Rhs[j])
				if bad != "" {
					return nil, false, nil, bad
				}
				op.target = id.Name
				if s.Tok == token.DEFINE && id.Name != "_" {
					op.declare = true
					if op.load != nil {
						if op.unsigned {
							op.typ = "uint64"
						} else {
							op.typ = "int64"
						}
					} else {
						t, ok := c.renderType(r.File, info.TypeOf(s.Rhs[j]))
						if !ok {
							return nil, false, nil, NoteUnsupportedExpr
						}
						op.typ = t
					}
				}
				ops = append(ops, op)
				if id.Name != "_" {
					targets[id.Name] = true
				}
			}
		case *ast.ReturnStmt:
			if !r.Defer || i != len(r.Stmts)-1 {
				return nil, false, nil, NoteControlFlow
			}
			if len(s.Results) != len(r.plan.caps) {
				return nil, false, nil, NoteCalls // multi-value call or naked return
			}
			for j, e := range s.Results {
				op, bad := classifyRHS(e)
				if bad != "" {
					return nil, false, nil, bad
				}
				op.target = r.plan.caps[j]
				ops = append(ops, op)
			}
			finalRet = true
		default:
			return nil, false, nil, NoteControlFlow
		}
	}
	if len(loads) == 0 {
		return nil, false, nil, NoteNoLoads
	}

	// An instrumented body re-executes under SWOpt retry: anything
	// irrevocable in it (channel ops slipped through, etc.) disqualifies.
	sc := irrevocable.NewScanner(c.ls.pkg.Fset, info, c.ls.pkg.Files, nil)
	if findings := sc.ScanStmts(r.Stmts); len(findings) > 0 {
		return nil, false, nil, NoteIrrevocable
	}
	return ops, finalRet, loads, ""
}

// atomicize rewrites every store to a mirrored field in a writer region
// into its sync/atomic form; ok is false when any store has no such form.
func (c *classifier) atomicize(r *Region, mirrored map[*types.Var]bool) (edits []storeEdit, ok bool) {
	info := c.ls.pkg.TypesInfo

	mirroredSel := func(e ast.Expr) (*ast.SelectorExpr, *types.Var) {
		sel, isSel := ast.Unparen(e).(*ast.SelectorExpr)
		if !isSel {
			return nil, nil
		}
		if v, isVar := info.Uses[sel.Sel].(*types.Var); isVar && mirrored[v] {
			return sel, v
		}
		return nil, nil
	}
	refsMirrored := func(e ast.Expr) bool {
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			if id, isID := n.(*ast.Ident); isID {
				if v, isVar := info.Uses[id].(*types.Var); isVar && mirrored[v] {
					found = true
				}
			}
			return !found
		})
		return found
	}
	atomicFn := func(v *types.Var, op string) (string, bool) {
		unsigned, word := wordSized(v.Type())
		if !word {
			return "", false
		}
		if unsigned {
			if op == "Sub" {
				return "", false // no negative literal for uint64 deltas
			}
			return "atomic." + op + "Uint64", true
		}
		if op == "Sub" {
			op = "Add"
		}
		return "atomic." + op + "Int64", true
	}

	ok = true
	for _, top := range r.Stmts {
		ast.Inspect(top, func(n ast.Node) bool {
			if !ok {
				return false
			}
			switch n := n.(type) {
			case *ast.UnaryExpr:
				if n.Op == token.AND {
					if _, v := mirroredSel(n.X); v != nil {
						ok = false // address of protected state escapes
						return false
					}
				}
			case *ast.IncDecStmt:
				sel, v := mirroredSel(n.X)
				if v == nil {
					return true
				}
				if types.ExprString(sel.X) != r.Ref.base {
					ok = false
					return false
				}
				op := "Add"
				delta := "1"
				if n.Tok == token.DEC {
					op, delta = "Sub", "-1"
				}
				fn, can := atomicFn(v, op)
				if !can {
					ok = false
					return false
				}
				edits = append(edits, storeEdit{node: n, text: fn + "(&" + c.render(sel) + ", " + delta + ")"})
				return false
			case *ast.AssignStmt:
				anyMirrored := false
				for _, l := range n.Lhs {
					if _, v := mirroredSel(l); v != nil {
						anyMirrored = true
					}
				}
				if !anyMirrored {
					return true
				}
				// No RHS may read mirrored state or any assigned LHS: the
				// sequential split must match parallel-assign semantics.
				lhsObjs := map[types.Object]bool{}
				for _, l := range n.Lhs {
					switch l := ast.Unparen(l).(type) {
					case *ast.Ident:
						lhsObjs[info.Uses[l]] = true
						lhsObjs[info.Defs[l]] = true
					case *ast.SelectorExpr:
						lhsObjs[info.Uses[l.Sel]] = true
					}
				}
				delete(lhsObjs, nil)
				for _, rhs := range n.Rhs {
					if refsMirrored(rhs) {
						ok = false
						return false
					}
					ast.Inspect(rhs, func(m ast.Node) bool {
						if id, isID := m.(*ast.Ident); isID && lhsObjs[info.Uses[id]] {
							ok = false
						}
						return ok
					})
					if !ok {
						return false
					}
				}
				if len(n.Lhs) != len(n.Rhs) {
					ok = false // multi-value call into a mirrored field
					return false
				}
				var lines []string
				for j := range n.Lhs {
					sel, v := mirroredSel(n.Lhs[j])
					rhsText := c.render(n.Rhs[j])
					if v == nil {
						lines = append(lines, c.render(n.Lhs[j])+" = "+rhsText)
						continue
					}
					if types.ExprString(sel.X) != r.Ref.base {
						ok = false
						return false
					}
					var fn string
					var can bool
					switch n.Tok {
					case token.ASSIGN:
						fn, can = atomicFn(v, "Store")
					case token.ADD_ASSIGN:
						fn, can = atomicFn(v, "Add")
					case token.SUB_ASSIGN:
						fn, can = atomicFn(v, "Sub")
						rhsText = "-(" + rhsText + ")"
					default:
						can = false
					}
					if !can {
						ok = false
						return false
					}
					lines = append(lines, fn+"(&"+c.render(sel)+", "+rhsText+")")
				}
				text := lines[0]
				for _, l := range lines[1:] {
					text += "\n" + l
				}
				edits = append(edits, storeEdit{node: n, text: text})
				return false
			}
			return true
		})
		if !ok {
			return nil, false
		}
	}
	return edits, true
}

// guarded reports whether every use of a mirrored field in the package
// sits inside one of the lock's accepted regions (composite-literal keys
// and helper functions outside the lock count as unguarded).
func (c *classifier) guarded(li *LockInfo, mirrored map[*types.Var]bool) bool {
	type span struct{ lo, hi token.Pos }
	var spans []span
	for _, r := range li.Regions {
		if r.Reject == "" {
			lo, hi := r.span()
			spans = append(spans, span{lo, hi})
		}
	}
	inRegion := func(pos token.Pos) bool {
		for _, s := range spans {
			if pos >= s.lo && pos < s.hi {
				return true
			}
		}
		return false
	}
	guarded := true
	for _, f := range c.ls.pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if !guarded {
				return false
			}
			if id, ok := n.(*ast.Ident); ok {
				if v, isVar := c.ls.pkg.TypesInfo.Uses[id].(*types.Var); isVar && mirrored[v] && !inRegion(id.Pos()) {
					guarded = false
				}
			}
			return guarded
		})
	}
	return guarded
}
