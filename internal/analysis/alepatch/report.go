package alepatch

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/types"
	"io"
	"path/filepath"
	"sort"

	"repro/internal/analysis/framework"
)

// RegionRecord is one critical section in the machine report.
type RegionRecord struct {
	File   string   `json:"file"` // relative to the package directory
	Line   int      `json:"line"`
	Func   string   `json:"func"`
	Mutex  string   `json:"mutex"`
	Kind   string   `json:"kind"` // mutex | rwmutex
	Mode   string   `json:"mode"` // write | read
	Class  string   `json:"class"`
	Reason string   `json:"reason,omitempty"` // rejection reason code
	Detail string   `json:"detail,omitempty"` // human explanation
	Notes  []string `json:"notes,omitempty"`  // downgrade notes
}

// Report is the per-package half of the -check output.
type Report struct {
	Package      string         `json:"package"`
	Regions      []RegionRecord `json:"regions"`
	Convertible  int            `json:"convertible"`
	Instrumented int            `json:"instrumented"`
	Rejected     int            `json:"rejected"`
}

// CheckOutput is the top-level -check -json document.
type CheckOutput struct {
	Packages []Report `json:"packages"`
}

// funcLabel renders fn as "(*Counter).Add" or "Add".
func funcLabel(fn *ast.FuncDecl) string {
	if fn.Recv != nil && len(fn.Recv.List) > 0 {
		recv := types.ExprString(fn.Recv.List[0].Type)
		return "(" + recv + ")." + fn.Name.Name
	}
	return fn.Name.Name
}

// buildReport assembles the report for one analyzed package.
func buildReport(pkg *framework.Package, regions []*Region) Report {
	rep := Report{Package: pkg.ImportPath}
	for _, r := range regions {
		pos := pkg.Fset.Position(r.LockStmt.Pos())
		file := pos.Filename
		if rel, err := filepath.Rel(pkg.Dir, file); err == nil {
			file = rel
		}
		mode := "write"
		if r.Read {
			mode = "read"
		}
		rec := RegionRecord{
			File: file, Line: pos.Line,
			Func:  funcLabel(r.Fn),
			Mode:  mode,
			Class: r.Class,
			Notes: dedupe(r.Notes),
		}
		if r.Ref != nil {
			rec.Mutex = r.Ref.lock.Name
			rec.Kind = r.Ref.lock.Kind.String()
		}
		if r.Reject != "" {
			rec.Reason = r.Reject
			rec.Detail = r.Note
		}
		switch r.Class {
		case ClassConvertible:
			rep.Convertible++
		case ClassInstrumented:
			rep.Instrumented++
		case ClassRejected:
			rep.Rejected++
		}
		rep.Regions = append(rep.Regions, rec)
	}
	sort.Slice(rep.Regions, func(i, j int) bool {
		a, b := rep.Regions[i], rep.Regions[j]
		if a.File != b.File {
			return a.File < b.File
		}
		return a.Line < b.Line
	})
	return rep
}

func dedupe(notes []string) []string {
	var out []string
	seen := map[string]bool{}
	for _, n := range notes {
		if !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	return out
}

// WriteJSON emits the -check -json document: indented, newline-terminated,
// stable field order.
func (co CheckOutput) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(co)
}

// WriteHuman emits the line-per-region form of the report.
func (rep Report) WriteHuman(w io.Writer) {
	for _, r := range rep.Regions {
		fmt.Fprintf(w, "%s:%d: %s: %s %s [%s] %s", r.File, r.Line, r.Func, r.Kind, r.Mutex, r.Mode, r.Class)
		if r.Reason != "" {
			fmt.Fprintf(w, " (%s: %s)", r.Reason, r.Detail)
		}
		for i, n := range r.Notes {
			if i == 0 {
				fmt.Fprintf(w, " (notes: %s", n)
			} else {
				fmt.Fprintf(w, ", %s", n)
			}
		}
		if len(r.Notes) > 0 {
			fmt.Fprint(w, ")")
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "%s: %d convertible, %d instrumented, %d rejected\n",
		rep.Package, rep.Convertible, rep.Instrumented, rep.Rejected)
}
