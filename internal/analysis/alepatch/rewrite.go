package alepatch

import (
	"fmt"
	"go/ast"
	"go/format"
	"go/token"
	"go/types"
	"sort"
	"strconv"
	"strings"
)

// edit replaces source bytes [lo,hi) with text. Edits on one file must
// not overlap.
type edit struct {
	lo, hi int
	text   string
}

// applyEdits splices edits into src, highest offset first.
func applyEdits(src []byte, edits []edit) ([]byte, error) {
	sort.Slice(edits, func(i, j int) bool { return edits[i].lo > edits[j].lo })
	for i := 1; i < len(edits); i++ {
		if edits[i].hi > edits[i-1].lo {
			return nil, fmt.Errorf("overlapping edits at %d and %d", edits[i].lo, edits[i-1].lo)
		}
	}
	out := append([]byte(nil), src...)
	for _, e := range edits {
		out = append(out[:e.lo], append([]byte(e.text), out[e.hi:]...)...)
	}
	return out, nil
}

// rewriter turns a classified package into converted source.
type rewriter struct {
	c *classifier
}

// offset returns pos's byte offset within its file.
func (rw *rewriter) offset(pos token.Pos) int {
	return rw.c.ls.pkg.Fset.Position(pos).Offset
}

// convertedLocks returns the locks whose every region was accepted (the
// all-or-nothing rule: the declaration type changes, so either all call
// sites convert or none do), sorted by declaration position.
func (rw *rewriter) convertedLocks() []*LockInfo {
	var out []*LockInfo
	for _, li := range rw.c.ls.locks {
		if li.Reject != "" || len(li.Regions) == 0 || li.DeclType == nil {
			continue
		}
		ok := true
		for _, r := range li.Regions {
			if r.Reject != "" {
				ok = false
			}
		}
		if ok {
			out = append(out, li)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Obj.Pos() < out[j].Obj.Pos() })
	return out
}

// Rewrite produces the converted file set: changed source files plus the
// generated zz_alepatch.go shim, keyed by base filename. Unchanged files
// are absent. An empty map means nothing converted.
func (rw *rewriter) Rewrite() (map[string][]byte, error) {
	pkg := rw.c.ls.pkg
	locks := rw.convertedLocks()
	if len(locks) == 0 {
		return map[string][]byte{}, nil
	}

	// Deterministic scope numbering across the package.
	var regions []*Region
	for _, li := range locks {
		regions = append(regions, li.Regions...)
	}
	sort.Slice(regions, func(i, j int) bool { return regions[i].LockStmt.Pos() < regions[j].LockStmt.Pos() })
	fnSeen := map[*ast.FuncDecl]int{}
	var scopeLabels []string
	for i, r := range regions {
		r.plan.scopeIdx = i
		label := pkg.Types.Name() + "." + funcLabel(r.Fn)
		if n := fnSeen[r.Fn]; n > 0 {
			label += "#" + strconv.Itoa(n+1)
		}
		fnSeen[r.Fn]++
		r.plan.scopeLabel = label
		scopeLabels = append(scopeLabels, label)
	}

	fileEdits := map[*ast.File][]edit{}
	atomicNeeded := map[*ast.File]bool{}
	coreNeeded := map[*ast.File]bool{}

	for _, li := range locks {
		fileEdits[li.DeclFile] = append(fileEdits[li.DeclFile], edit{
			lo: rw.offset(li.DeclType.Pos()), hi: rw.offset(li.DeclType.End()),
			text: "alepatchMutex",
		})
	}
	for _, r := range regions {
		f := rw.c.fileOf(r.LockStmt.Pos())
		text, usesAtomic := rw.regionText(r)
		lo := rw.offset(r.LockStmt.Pos())
		var hi int
		if r.Defer {
			if len(r.Stmts) > 0 {
				hi = rw.offset(r.Stmts[len(r.Stmts)-1].End())
			} else {
				hi = rw.offset(r.DeferStmt.End())
			}
		} else {
			hi = rw.offset(r.EndStmt.End())
		}
		fileEdits[f] = append(fileEdits[f], edit{lo: lo, hi: hi, text: text})
		coreNeeded[f] = true
		if usesAtomic {
			atomicNeeded[f] = true
		}
	}

	out := map[string][]byte{}
	for f, edits := range fileEdits {
		if imp := rw.importEdit(f, edits, coreNeeded[f], atomicNeeded[f]); imp != nil {
			edits = append(edits, *imp)
		}
		raw, err := applyEdits(rw.c.src[f], edits)
		if err != nil {
			return nil, err
		}
		name := pkg.Fset.Position(f.Pos()).Filename
		formatted, err := format.Source(raw)
		if err != nil {
			return nil, fmt.Errorf("%s: formatting rewritten source: %v\n%s", name, err, raw)
		}
		out[baseName(name)] = formatted
	}

	shim, err := format.Source([]byte(shimText(pkg.Types.Name(), scopeLabels)))
	if err != nil {
		return nil, fmt.Errorf("formatting generated shim: %v", err)
	}
	out["zz_alepatch.go"] = shim
	return out, nil
}

// endsInReturn reports whether the last top-level statement of a region
// body is a return (after rewriting, every such return ends the closure).
func endsInReturn(stmts []ast.Stmt) bool {
	if len(stmts) == 0 {
		return false
	}
	_, ok := stmts[len(stmts)-1].(*ast.ReturnStmt)
	return ok
}

func baseName(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

// importEdit rewrites the file's import declarations: drop "sync" when no
// reference survives outside the edited ranges, add the core (and
// sync/atomic) imports the generated code needs.
func (rw *rewriter) importEdit(f *ast.File, edits []edit, needCore, needAtomic bool) *edit {
	info := rw.c.ls.pkg.TypesInfo
	inEdit := func(off int) bool {
		for _, e := range edits {
			if off >= e.lo && off < e.hi {
				return true
			}
		}
		return false
	}
	syncUsed := false
	ast.Inspect(f, func(n ast.Node) bool {
		if syncUsed {
			return false
		}
		if id, ok := n.(*ast.Ident); ok {
			if pn, ok := info.Uses[id].(*types.PkgName); ok && pn.Imported().Path() == "sync" {
				if !inEdit(rw.offset(id.Pos())) {
					syncUsed = true
				}
			}
		}
		return true
	})

	type spec struct{ name, path string }
	var keep []spec
	have := map[string]bool{}
	var importDecls []*ast.GenDecl
	for _, d := range f.Decls {
		if gd, ok := d.(*ast.GenDecl); ok && gd.Tok == token.IMPORT {
			importDecls = append(importDecls, gd)
			for _, s := range gd.Specs {
				is := s.(*ast.ImportSpec)
				path, _ := strconv.Unquote(is.Path.Value)
				if path == "sync" && !syncUsed {
					continue
				}
				name := ""
				if is.Name != nil {
					name = is.Name.Name
				}
				keep = append(keep, spec{name, path})
				have[path] = true
			}
		}
	}
	if needAtomic && !have["sync/atomic"] {
		keep = append(keep, spec{"", "sync/atomic"})
		have["sync/atomic"] = true
	}
	if needCore && !have["repro/internal/core"] {
		keep = append(keep, spec{"", "repro/internal/core"})
	}

	var b strings.Builder
	b.WriteString("import (\n")
	for _, s := range keep {
		if s.name != "" {
			fmt.Fprintf(&b, "\t%s %q\n", s.name, s.path)
		} else {
			fmt.Fprintf(&b, "\t%q\n", s.path)
		}
	}
	b.WriteString(")")

	if len(importDecls) == 0 {
		return &edit{
			lo: rw.offset(f.Name.End()), hi: rw.offset(f.Name.End()),
			text: "\n\n" + b.String(),
		}
	}
	return &edit{
		lo:   rw.offset(importDecls[0].Pos()),
		hi:   rw.offset(importDecls[len(importDecls)-1].End()),
		text: b.String(),
	}
}

// regionText renders the full replacement for one region, from thread
// acquisition through the post-Execute footer. Indentation is left to
// format.Source.
func (rw *rewriter) regionText(r *Region) (text string, usesAtomic bool) {
	p := r.plan
	li := r.Ref.lock
	var b strings.Builder

	b.WriteString("alepatchThr := alepatchAcquire()\n")
	for i, typ := range p.capTyps {
		fmt.Fprintf(&b, "var %s %s\n", p.caps[i], typ)
	}
	if p.needDone {
		b.WriteString("alepatchDone := false\n")
	}
	if p.reader != nil {
		for _, op := range p.reader {
			if op.declare {
				fmt.Fprintf(&b, "var %s %s\n", op.target, op.typ)
			}
		}
	} else {
		for _, h := range p.hoists {
			if h.decl != nil {
				b.WriteString(rw.c.render(h.decl) + "\n")
				continue
			}
			for i, name := range h.names {
				if name != "" && name != "_" {
					fmt.Fprintf(&b, "var %s %s\n", name, h.typs[i])
				}
			}
		}
	}

	needMK := p.reader != nil || len(p.stores) > 0
	mkVar := "_"
	if needMK {
		mkVar = "alepatchMK"
	}
	fmt.Fprintf(&b, "alepatchLk, %s := %s.get(%q)\n", mkVar, r.Ref.expr, li.Name)

	fmt.Fprintf(&b, "_ = alepatchLk.Execute(alepatchThr, &core.CS{\nScope: alepatchScope%d,\nNoHTM: true,\n", p.scopeIdx)
	if p.reader != nil {
		b.WriteString("HasSWOpt: true,\n")
	}
	if len(p.stores) > 0 {
		b.WriteString("Conflicting: true,\n")
	}
	b.WriteString("Body: func(alepatchEC *core.ExecCtx) error {\n")
	if p.reader != nil {
		b.WriteString(rw.readerBody(r))
		for _, op := range p.reader {
			if op.load != nil {
				usesAtomic = true
			}
		}
	} else {
		if len(p.stores) > 0 {
			b.WriteString("alepatchMK.BeginConflicting(alepatchEC)\ndefer alepatchMK.EndConflicting(alepatchEC)\n")
			usesAtomic = true
		}
		body := rw.bodyText(r)
		if body != "" {
			b.WriteString(body + "\n")
		}
		// A trailing return in the region is itself rewritten to end in
		// `return nil`; emitting the footer after it would be dead code
		// (and tripped by `go vet` on the converted package).
		if !endsInReturn(r.Stmts) {
			b.WriteString("return nil\n")
		}
	}
	b.WriteString("},\n})\nalepatchRelease(alepatchThr)\n")

	if r.Defer {
		if len(p.caps) > 0 {
			b.WriteString("return " + strings.Join(p.caps, ", ") + "\n")
		}
	} else if p.needDone {
		b.WriteString("if alepatchDone {\nreturn")
		if len(p.caps) > 0 {
			b.WriteString(" " + strings.Join(p.caps, ", "))
		}
		b.WriteString("\n}\n")
	}
	return b.String(), usesAtomic
}

// readerBody generates both branches of an instrumented reader: the
// marker-validated speculative path and the verbatim exclusive path.
func (rw *rewriter) readerBody(r *Region) string {
	p := r.plan
	var b strings.Builder
	b.WriteString("if alepatchEC.InSWOpt() {\nalepatchVer := alepatchEC.ReadStable(alepatchMK)\n")
	for _, op := range p.reader {
		if op.load != nil {
			fn := "atomic.LoadInt64"
			if op.unsigned {
				fn = "atomic.LoadUint64"
			}
			fmt.Fprintf(&b, "%s = %s(&%s)\n", op.target, fn, op.loadSel)
		} else {
			fmt.Fprintf(&b, "%s = %s\n", op.target, op.verbatim)
		}
	}
	b.WriteString("if !alepatchEC.Validate(alepatchMK, alepatchVer) {\nreturn alepatchEC.SWOptFail()\n}\nreturn nil\n}\n")
	for _, op := range p.reader {
		if op.load != nil {
			fmt.Fprintf(&b, "%s = %s\n", op.target, op.loadSel)
		} else {
			fmt.Fprintf(&b, "%s = %s\n", op.target, op.verbatim)
		}
	}
	b.WriteString("return nil\n")
	return b.String()
}

// retAssign renders the capture assignments for one rewritten return.
func (rw *rewriter) retAssign(r *Region, ret *ast.ReturnStmt) string {
	if len(ret.Results) == 0 {
		return "" // naked return with named results (or void function)
	}
	var vals []string
	for _, e := range ret.Results {
		vals = append(vals, rw.c.render(e))
	}
	return strings.Join(r.plan.caps, ", ") + " = " + strings.Join(vals, ", ") + "\n"
}

// bodyText harvests the region's statements verbatim and splices the
// inner edits: early-exit and return rewrites, hoist retokens and
// removals, and writer store atomicizations.
func (rw *rewriter) bodyText(r *Region) string {
	if len(r.Stmts) == 0 {
		return ""
	}
	base := rw.offset(r.Stmts[0].Pos())
	end := rw.offset(r.Stmts[len(r.Stmts)-1].End())
	f := rw.c.fileOf(r.Stmts[0].Pos())
	src := rw.c.src[f][base:end]

	var edits []edit
	rel := func(pos token.Pos) int { return rw.offset(pos) - base }

	for _, e := range r.Exits {
		edits = append(edits, edit{
			lo: rel(e.Unlock.Pos()), hi: rel(e.Ret.End()),
			text: rw.retAssign(r, e.Ret) + "alepatchDone = true\nreturn nil",
		})
	}
	for _, ret := range r.Returns {
		edits = append(edits, edit{
			lo: rel(ret.Pos()), hi: rel(ret.End()),
			text: rw.retAssign(r, ret) + "return nil",
		})
	}
	for _, h := range r.plan.hoists {
		if h.decl != nil {
			edits = append(edits, edit{lo: rel(h.decl.Pos()), hi: rel(h.decl.End()), text: ""})
			continue
		}
		edits = append(edits, edit{lo: rel(h.assign.TokPos), hi: rel(h.assign.TokPos) + len(":="), text: "="})
	}
	for _, se := range r.plan.stores {
		edits = append(edits, edit{lo: rel(se.node.Pos()), hi: rel(se.node.End()), text: se.text})
	}
	out, err := applyEdits(src, edits)
	if err != nil {
		// Overlap means a planning bug; surface it in the output where
		// format.Source will fail loudly rather than silently miscompile.
		return "/* alepatch internal error: " + err.Error() + " */"
	}
	return string(out)
}

// shimText renders zz_alepatch.go: the runtime holder, the thread pool,
// the replacement mutex type, and one scope per converted region.
func shimText(pkgName string, scopeLabels []string) string {
	var b strings.Builder
	b.WriteString("// Code generated by alepatch. DO NOT EDIT.\n\n")
	b.WriteString("package " + pkgName + "\n\n")
	b.WriteString(`import (
	"sync"

	"repro/internal/core"
	"repro/internal/locks"
	"repro/internal/tm"
)

// alepatch runtime state. Converted mutexes bind to the runtime current
// at their first Lock; AlepatchConfigure must therefore run before any
// converted mutex is used.
var (
	alepatchMu   sync.Mutex
	alepatchRT   *core.Runtime
	alepatchPol  func() core.Policy
	alepatchPool = &sync.Pool{}
)

func alepatchRuntime() (*core.Runtime, func() core.Policy) {
	alepatchMu.Lock()
	defer alepatchMu.Unlock()
	if alepatchRT == nil {
		alepatchRT = core.NewRuntime(tm.NewDomain(tm.Profile{Name: "alepatch"}))
		alepatchPol = func() core.Policy { return core.NewStatic(0, 8) }
	}
	return alepatchRT, alepatchPol
}

// AlepatchConfigure replaces the ALE runtime and per-lock policy used by
// converted mutexes and resets the thread pool. Call it before any
// converted mutex in this package is first locked.
func AlepatchConfigure(rt *core.Runtime, policy func() core.Policy) {
	alepatchMu.Lock()
	defer alepatchMu.Unlock()
	alepatchRT = rt
	alepatchPol = policy
	alepatchPool = &sync.Pool{}
}

func alepatchAcquire() *core.Thread {
	alepatchMu.Lock()
	pool := alepatchPool
	alepatchMu.Unlock()
	if thr, ok := pool.Get().(*core.Thread); ok {
		return thr
	}
	rt, _ := alepatchRuntime()
	return rt.NewThread()
}

func alepatchRelease(thr *core.Thread) {
	alepatchMu.Lock()
	pool := alepatchPool
	alepatchMu.Unlock()
	pool.Put(thr)
}

// alepatchMutex replaces a converted sync.Mutex or sync.RWMutex: zero
// value ready, binding its ALE lock and conflict marker lazily on first
// use. SWOpt replaces reader parallelism for converted RWMutexes.
type alepatchMutex struct {
	once sync.Once
	lk   *core.Lock
	mk   *core.ConflictMarker
}

func (m *alepatchMutex) get(name string) (*core.Lock, *core.ConflictMarker) {
	m.once.Do(func() {
		rt, policy := alepatchRuntime()
		m.lk = rt.NewLock(name, locks.NewTATAS(rt.Domain()), policy())
		m.lk.SetModes(false, true)
		m.mk = m.lk.NewMarker()
	})
	return m.lk, m.mk
}

`)
	if len(scopeLabels) > 0 {
		b.WriteString("var (\n")
		for i, label := range scopeLabels {
			fmt.Fprintf(&b, "\talepatchScope%d = core.NewScope(%q)\n", i, label)
		}
		b.WriteString(")\n")
	}
	return b.String()
}
