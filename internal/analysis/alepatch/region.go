package alepatch

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis/aleutil"
	"repro/internal/analysis/cfgutil"
)

// Rejection reason codes. Every rejected region carries exactly one.
const (
	ReasonUnbalanced   = "unbalanced"          // a path holds the lock at exit, or re-locks
	ReasonDeferInLoop  = "defer-in-loop"       // defer Unlock inside a loop: unlock runs at function exit, not per iteration
	ReasonGotoCrosses  = "goto-crosses-region" // goto jumps over the region boundary
	ReasonUnsupported  = "unsupported-exit"    // break/continue/defer/unlock shape outside the supported forms
	ReasonCrossFn      = "cross-function"      // the critical section spans a call that locks/unlocks the same mutex
	ReasonEscape       = "escape"              // region state cannot be hoisted out of the generated closure
	ReasonCondvar      = "condvar"             // mutex feeds sync.NewCond
	ReasonTryLock      = "trylock"             // TryLock/TryRLock used on the mutex
	ReasonAddressTaken = "address-taken"       // mutex aliased beyond Lock/Unlock calls
	ReasonUnstable     = "unstable-identity"   // lock expression not a stable field/package-var path
)

// Region is one matched (or attempted) critical section: from a Lock or
// RLock call to its paired unlocks.
type Region struct {
	Fn   *ast.FuncDecl
	File *ast.File
	Ref  *lockRef // nil iff Reject == ReasonUnstable
	Read bool     // RLock region

	// Defer marks the `mu.Lock(); defer mu.Unlock()` shape: the region is
	// the remainder of the function body.
	Defer     bool
	DeferStmt *ast.DeferStmt

	LockStmt *ast.ExprStmt
	List     []ast.Stmt // statement list containing LockStmt
	LockIdx  int

	// EndStmt is the fall-through Unlock ending an inline region (nil for
	// the defer shape).
	EndStmt *ast.ExprStmt
	EndIdx  int

	// Stmts are the statements between lock and final unlock (exclusive),
	// or after the defer for the defer shape.
	Stmts []ast.Stmt

	// Exits are nested early exits: an Unlock immediately followed by a
	// return.
	Exits []EarlyExit

	// Returns are the region's return statements for the defer shape
	// (function literals excluded).
	Returns []*ast.ReturnStmt

	Reject string
	Note   string

	// Classification results (filled by classify).
	Class string
	Notes []string
	plan  *convPlan
}

// EarlyExit is an `Unlock(); return ...` pair nested inside an inline
// region.
type EarlyExit struct {
	Unlock *ast.ExprStmt
	Ret    *ast.ReturnStmt
	List   []ast.Stmt
	Idx    int // index of Unlock in List
}

// reject records the region's rejection reason (first one wins).
func (r *Region) reject(reason, note string) {
	if r.Reject == "" {
		r.Reject = reason
		r.Note = note
	}
}

// span returns the region's source extent, lock call included.
func (r *Region) span() (token.Pos, token.Pos) {
	if r.Defer {
		return r.LockStmt.Pos(), r.Fn.Body.End()
	}
	return r.LockStmt.Pos(), r.EndStmt.End()
}

// listCtx is a statement list with its position context in the function.
type listCtx struct {
	list  []ast.Stmt
	top   bool // the function body's own list
	loops int  // enclosing loops within the function
}

// collectLists gathers every statement list in the function body, in
// source order, without descending into function literals.
func collectLists(fn *ast.FuncDecl) []listCtx {
	var out []listCtx
	var walkStmt func(s ast.Stmt, loops int)
	walkList := func(list []ast.Stmt, top bool, loops int) {
		out = append(out, listCtx{list, top, loops})
		for _, s := range list {
			walkStmt(s, loops)
		}
	}
	walkStmt = func(s ast.Stmt, loops int) {
		switch s := s.(type) {
		case *ast.BlockStmt:
			walkList(s.List, false, loops)
		case *ast.IfStmt:
			walkList(s.Body.List, false, loops)
			if s.Else != nil {
				walkStmt(s.Else, loops)
			}
		case *ast.ForStmt:
			walkList(s.Body.List, false, loops+1)
		case *ast.RangeStmt:
			walkList(s.Body.List, false, loops+1)
		case *ast.SwitchStmt:
			for _, c := range s.Body.List {
				walkList(c.(*ast.CaseClause).Body, false, loops)
			}
		case *ast.TypeSwitchStmt:
			for _, c := range s.Body.List {
				walkList(c.(*ast.CaseClause).Body, false, loops)
			}
		case *ast.SelectStmt:
			for _, c := range s.Body.List {
				walkList(c.(*ast.CommClause).Body, false, loops)
			}
		case *ast.LabeledStmt:
			walkStmt(s.Stmt, loops)
		}
	}
	walkList(fn.Body.List, true, 0)
	return out
}

// regionsIn matches every critical section in fn. Unmatchable Lock calls
// produce rejected regions so the report covers them.
func (ls *lockSet) regionsIn(fn *ast.FuncDecl, file *ast.File) []*Region {
	info := ls.pkg.TypesInfo
	var out []*Region
	for _, lc := range collectLists(fn) {
		for i, s := range lc.list {
			es, ok := s.(*ast.ExprStmt)
			if !ok {
				continue
			}
			call, ok := es.X.(*ast.CallExpr)
			if !ok {
				continue
			}
			recv, meth, ok := lockMethodCall(info, call)
			if !ok || (meth != "Lock" && meth != "RLock") {
				continue
			}
			r := &Region{
				Fn: fn, File: file, Read: meth == "RLock",
				LockStmt: es, List: lc.list, LockIdx: i,
			}
			r.Ref = ls.resolveLockExpr(fn, recv)
			if r.Ref == nil {
				r.reject(ReasonUnstable,
					"lock expression is not a package-level mutex or a field path on the method's pointer receiver")
				out = append(out, r)
				continue
			}
			ls.matchRegion(r, lc)
			if r.Reject == "" {
				ls.verifyRegion(r)
			}
			r.Ref.lock.Regions = append(r.Ref.lock.Regions, r)
			out = append(out, r)
		}
	}
	return out
}

// unlockName returns the unlock method pairing the region's lock call.
func (r *Region) unlockName() string {
	if r.Read {
		return "RUnlock"
	}
	return "Unlock"
}

// isUnlockStmt reports whether s is `<ref>.<name>()` for the region's
// reference.
func (ls *lockSet) isUnlockStmt(r *Region, s ast.Stmt, name string) *ast.ExprStmt {
	es, ok := s.(*ast.ExprStmt)
	if !ok {
		return nil
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return nil
	}
	recv, meth, ok := lockMethodCall(ls.pkg.TypesInfo, call)
	if !ok || meth != name {
		return nil
	}
	ref := ls.resolveLockExpr(r.Fn, recv)
	if ref == nil || ref.lock != r.Ref.lock || ref.base != r.Ref.base {
		return nil
	}
	return es
}

// matchRegion identifies the region's shape (defer or inline), its
// statements, and its early exits, applying the syntactic checks that
// give precise rejection reasons before the CFG pass.
func (ls *lockSet) matchRegion(r *Region, lc listCtx) {
	list, i := r.List, r.LockIdx

	// Shape A: `mu.Lock(); defer mu.Unlock()`.
	if i+1 < len(list) {
		if ds, ok := list[i+1].(*ast.DeferStmt); ok {
			if recv, meth, ok := lockMethodCall(ls.pkg.TypesInfo, ds.Call); ok && meth == r.unlockName() {
				if ref := ls.resolveLockExpr(r.Fn, recv); ref != nil && ref.lock == r.Ref.lock && ref.base == r.Ref.base {
					switch {
					case lc.loops > 0:
						r.reject(ReasonDeferInLoop,
							"deferred "+r.unlockName()+" inside a loop runs at function exit, not per iteration")
						return
					case !lc.top:
						r.reject(ReasonUnsupported,
							"deferred "+r.unlockName()+" below the function's top level")
						return
					}
					r.Defer = true
					r.DeferStmt = ds
					r.Stmts = list[i+2:]
					r.EndIdx = len(list)
					ls.scanRegionBody(r)
					return
				}
			}
		}
	}

	// Shape B: scan this level for the fall-through unlock.
	for j := i + 1; j < len(list); j++ {
		if es := ls.isUnlockStmt(r, list[j], r.unlockName()); es != nil {
			r.EndStmt = es
			r.EndIdx = j
			r.Stmts = list[i+1 : j]
			ls.scanRegionBody(r)
			return
		}
		// A deferred unlock separated from the lock is ambiguous about
		// what the critical section covers.
		if ds, ok := list[j].(*ast.DeferStmt); ok {
			if recv, meth, ok := lockMethodCall(ls.pkg.TypesInfo, ds.Call); ok && meth == r.unlockName() {
				if ref := ls.resolveLockExpr(r.Fn, recv); ref != nil && ref.lock == r.Ref.lock {
					if lc.loops > 0 {
						r.reject(ReasonDeferInLoop,
							"deferred "+r.unlockName()+" inside a loop runs at function exit, not per iteration")
					} else {
						r.reject(ReasonUnsupported,
							"deferred "+r.unlockName()+" is not immediately after the Lock")
					}
					return
				}
			}
		}
	}
	// No unlock at this level: conditional unlock, helper unlock, or a
	// genuinely missing one.
	if ls.fnUnlocksElsewhere(r) {
		r.reject(ReasonCrossFn, "the matching "+r.unlockName()+" is in another function")
		return
	}
	r.reject(ReasonUnbalanced, "no matching "+r.unlockName()+" at the same block level")
}

// fnUnlocksElsewhere reports whether any other same-package function
// calls unlock on the region's lock identity.
func (ls *lockSet) fnUnlocksElsewhere(r *Region) bool {
	cur, _ := ls.pkg.TypesInfo.Defs[r.Fn.Name].(*types.Func)
	for fn, touched := range ls.touchers {
		if fn != cur && touched[r.Ref.lock.Obj] {
			return true
		}
	}
	return false
}

// scanRegionBody applies the syntactic region checks: early-exit
// discovery, goto/break/continue escape detection, and function-literal
// hygiene. It leaves CFG-level balance to verifyRegion.
func (ls *lockSet) scanRegionBody(r *Region) {
	lo, hi := r.span()

	// Function literals inside the region must not touch the mutex: the
	// closure may run after (or during) the section.
	for _, s := range r.Stmts {
		ast.Inspect(s, func(n ast.Node) bool {
			fl, ok := n.(*ast.FuncLit)
			if !ok {
				return true
			}
			ast.Inspect(fl.Body, func(m ast.Node) bool {
				if call, ok := m.(*ast.CallExpr); ok {
					if recv, _, ok := lockMethodCall(ls.pkg.TypesInfo, call); ok {
						if ref := ls.resolveLockExpr(r.Fn, recv); ref != nil && ref.lock == r.Ref.lock {
							r.reject(ReasonUnsupported, "mutex used inside a function literal in the region")
						}
					}
				}
				return true
			})
			return false
		})
	}

	// Early exits and stray unlocks inside the region.
	var walkExits func(list []ast.Stmt)
	walkExits = func(list []ast.Stmt) {
		for k, s := range list {
			if es := ls.isUnlockStmt(r, s, r.unlockName()); es != nil {
				if r.Defer {
					r.reject(ReasonUnsupported, "explicit "+r.unlockName()+" with a deferred unlock pending")
					return
				}
				if k+1 < len(list) {
					if ret, ok := list[k+1].(*ast.ReturnStmt); ok {
						r.Exits = append(r.Exits, EarlyExit{Unlock: es, Ret: ret, List: list, Idx: k})
						continue
					}
				}
				r.reject(ReasonUnsupported, r.unlockName()+" not immediately followed by a return")
				return
			}
			// Mismatched unlock variant (Unlock inside an RLock region or
			// vice versa) is a lock-discipline bug; leave it to the CFG
			// pass, which sees the path never release this mode's hold.
			switch s := s.(type) {
			case *ast.BlockStmt:
				walkExits(s.List)
			case *ast.IfStmt:
				walkExits(s.Body.List)
				if s.Else != nil {
					walkExits([]ast.Stmt{s.Else})
				}
			case *ast.ForStmt:
				walkExits(s.Body.List)
			case *ast.RangeStmt:
				walkExits(s.Body.List)
			case *ast.SwitchStmt:
				for _, c := range s.Body.List {
					walkExits(c.(*ast.CaseClause).Body)
				}
			case *ast.TypeSwitchStmt:
				for _, c := range s.Body.List {
					walkExits(c.(*ast.CaseClause).Body)
				}
			case *ast.SelectStmt:
				for _, c := range s.Body.List {
					walkExits(c.(*ast.CommClause).Body)
				}
			case *ast.LabeledStmt:
				walkExits([]ast.Stmt{s.Stmt})
			}
		}
	}
	walkExits(r.Stmts)
	if r.Reject != "" {
		return
	}

	// Returns inside a defer-shaped region are rewritten to captures.
	if r.Defer {
		for _, s := range r.Stmts {
			ast.Inspect(s, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.FuncLit:
					return false
				case *ast.ReturnStmt:
					r.Returns = append(r.Returns, n)
				}
				return true
			})
		}
	}

	// Labels and gotos: a goto over either region boundary loses the
	// lock/unlock pairing.
	labels := map[string]token.Pos{}
	ast.Inspect(r.Fn.Body, func(n ast.Node) bool {
		if l, ok := n.(*ast.LabeledStmt); ok {
			labels[l.Label.Name] = l.Pos()
		}
		return true
	})
	ast.Inspect(r.Fn.Body, func(n ast.Node) bool {
		br, ok := n.(*ast.BranchStmt)
		if !ok || br.Tok != token.GOTO || br.Label == nil {
			return true
		}
		target, known := labels[br.Label.Name]
		if !known {
			return true
		}
		fromIn := br.Pos() >= lo && br.Pos() < hi
		toIn := target >= lo && target < hi
		if fromIn != toIn {
			r.reject(ReasonGotoCrosses, fmt.Sprintf("goto %s crosses the region boundary", br.Label.Name))
			return false
		}
		return true
	})
	if r.Reject != "" {
		return
	}

	// break/continue escaping the region: walk the region statements
	// tracking how many breakable/continuable constructs are inside.
	var walkBranches func(s ast.Stmt, brk, cont int)
	walkBranchesList := func(list []ast.Stmt, brk, cont int) {
		for _, s := range list {
			walkBranches(s, brk, cont)
		}
	}
	walkBranches = func(s ast.Stmt, brk, cont int) {
		switch s := s.(type) {
		case *ast.BranchStmt:
			switch s.Tok {
			case token.BREAK:
				if s.Label != nil {
					if target, ok := labels[s.Label.Name]; ok && (target < lo || target >= hi) {
						r.reject(ReasonUnsupported, "labeled break exits the region with the lock held")
					}
				} else if brk == 0 {
					r.reject(ReasonUnsupported, "break exits the region with the lock held")
				}
			case token.CONTINUE:
				if s.Label != nil {
					if target, ok := labels[s.Label.Name]; ok && (target < lo || target >= hi) {
						r.reject(ReasonUnsupported, "labeled continue exits the region with the lock held")
					}
				} else if cont == 0 {
					r.reject(ReasonUnsupported, "continue exits the region with the lock held")
				}
			}
		case *ast.BlockStmt:
			walkBranchesList(s.List, brk, cont)
		case *ast.IfStmt:
			walkBranchesList(s.Body.List, brk, cont)
			if s.Else != nil {
				walkBranches(s.Else, brk, cont)
			}
		case *ast.ForStmt:
			walkBranchesList(s.Body.List, brk+1, cont+1)
		case *ast.RangeStmt:
			walkBranchesList(s.Body.List, brk+1, cont+1)
		case *ast.SwitchStmt:
			for _, c := range s.Body.List {
				walkBranchesList(c.(*ast.CaseClause).Body, brk+1, cont)
			}
		case *ast.TypeSwitchStmt:
			for _, c := range s.Body.List {
				walkBranchesList(c.(*ast.CaseClause).Body, brk+1, cont)
			}
		case *ast.SelectStmt:
			for _, c := range s.Body.List {
				walkBranchesList(c.(*ast.CommClause).Body, brk+1, cont)
			}
		case *ast.LabeledStmt:
			walkBranches(s.Stmt, brk, cont)
		}
	}
	walkBranchesList(r.Stmts, 0, 0)
}

// verifyRegion walks the function's CFG from the Lock call and checks
// every path releases the lock exactly once through a known unlock (or,
// for the defer shape, reaches the function exit with no stray mutex
// operations), rejecting cross-function sections along the way.
func (ls *lockSet) verifyRegion(r *Region) {
	info := ls.pkg.TypesInfo
	g := cfgutil.New(r.Fn.Body)

	known := map[ast.Stmt]bool{}
	if r.EndStmt != nil {
		known[r.EndStmt] = true
	}
	for _, e := range r.Exits {
		known[e.Unlock] = true
	}

	curFn, _ := info.Defs[r.Fn.Name].(*types.Func)

	// classify inspects one CFG node for mutex-relevant events.
	const (
		evNone = iota
		evLockAgain
		evUnlockKnown
		evUnlockStray
		evCross
	)
	classify := func(n ast.Node) (int, string) {
		if n == ast.Node(r.LockStmt) {
			return evLockAgain, "the Lock statement is reachable again while the lock is held"
		}
		if r.DeferStmt != nil && n == ast.Node(r.DeferStmt) {
			return evNone, ""
		}
		if s, ok := n.(ast.Stmt); ok {
			if es := ls.isUnlockStmt(r, s, r.unlockName()); es != nil {
				if known[es] {
					return evUnlockKnown, ""
				}
				return evUnlockStray, r.unlockName() + " outside the supported region shapes"
			}
			if es, ok := s.(*ast.ExprStmt); ok {
				if call, ok := es.X.(*ast.CallExpr); ok {
					if recv, meth, ok := lockMethodCall(info, call); ok && (meth == "Lock" || meth == "RLock") {
						if ref := ls.resolveLockExpr(r.Fn, recv); ref != nil && ref.lock == r.Ref.lock {
							return evLockAgain, "the mutex is locked again while the lock is held"
						}
					}
				}
			}
		}
		// Nested mutex operations hidden in non-statement positions, and
		// calls into functions that touch the same lock.
		verdict, note := evNone, ""
		ast.Inspect(n, func(m ast.Node) bool {
			if verdict != evNone {
				return false
			}
			if _, ok := m.(*ast.FuncLit); ok {
				return false
			}
			call, ok := m.(*ast.CallExpr)
			if !ok {
				return true
			}
			if recv, meth, ok := lockMethodCall(info, call); ok {
				if ref := ls.resolveLockExpr(r.Fn, recv); ref != nil && ref.lock == r.Ref.lock {
					if es, isExpr := n.(*ast.ExprStmt); isExpr && es.X == call {
						return true // already handled above
					}
					verdict, note = evUnlockStray, meth+" in an unsupported position inside the region"
					return false
				}
				return true
			}
			if fn := aleutil.Callee(info, call); fn != nil && fn != curFn {
				if ls.touchers[fn] != nil && ls.touchers[fn][r.Ref.lock.Obj] {
					verdict, note = evCross, "call to "+fn.Name()+", which locks or unlocks the same mutex"
					return false
				}
			}
			return true
		})
		return verdict, note
	}

	// Locate the Lock statement in the graph.
	var startB *cfgutil.Block
	startI := -1
	for _, b := range g.Blocks {
		for i, n := range b.Nodes {
			if n == ast.Node(r.LockStmt) {
				startB, startI = b, i
			}
		}
	}
	if startB == nil {
		r.reject(ReasonUnsupported, "lock statement unreachable in the control-flow graph")
		return
	}

	type cpos struct {
		b *cfgutil.Block
		i int
	}
	visited := map[cpos]bool{}
	var walk func(b *cfgutil.Block, i int)
	walk = func(b *cfgutil.Block, i int) {
		if r.Reject != "" || visited[cpos{b, i}] {
			return
		}
		visited[cpos{b, i}] = true
		for ; i < len(b.Nodes); i++ {
			ev, note := classify(b.Nodes[i])
			switch ev {
			case evLockAgain:
				r.reject(ReasonUnbalanced, note)
				return
			case evUnlockKnown:
				return // path closed
			case evUnlockStray:
				r.reject(ReasonUnsupported, note)
				return
			case evCross:
				r.reject(ReasonCrossFn, note)
				return
			}
		}
		for _, succ := range b.Succs {
			if succ == g.Exit {
				if !r.Defer {
					r.reject(ReasonUnbalanced, "a path leaves the function with the lock held")
					return
				}
				continue
			}
			walk(succ, 0)
		}
	}
	walk(startB, startI+1)
}
