package alepatch

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis/framework"
)

// LockKind distinguishes the two sync lock types alepatch understands.
type LockKind uint8

const (
	KindMutex LockKind = iota
	KindRWMutex
)

// String returns the report name of the kind.
func (k LockKind) String() string {
	if k == KindRWMutex {
		return "rwmutex"
	}
	return "mutex"
}

// LockInfo is one mutex identity: a sync.Mutex/sync.RWMutex-typed struct
// field or package-level variable. All critical sections on the same
// identity are converted (or rejected) together — the rewriter changes
// the declaration's type, so conversion is all-or-nothing per identity.
type LockInfo struct {
	Obj   types.Object // the field or package var
	Kind  LockKind
	Name  string       // report name: "Counter.mu" or "pkgMu"
	Owner *types.Named // owning struct's named type; nil for package vars

	// Field is the *types.Var of the struct field (nil for package vars);
	// protected-field matching uses its siblings.
	Field *types.Var

	// DeclType is the field's or var's type expression in the source
	// (`sync.Mutex`), the range the rewriter replaces with the shim type.
	DeclType ast.Expr
	// DeclFile is the file containing DeclType.
	DeclFile *ast.File

	// Reject is a lock-level rejection reason ("" = usable): any use of
	// the identity outside plain Lock/Unlock/RLock/RUnlock discipline
	// poisons every region on it.
	Reject     string
	RejectNote string
	RejectPos  token.Pos

	Regions []*Region

	// Instrument is set by classification when this lock's read regions
	// gain a speculative path: readers validate against the conflict
	// marker and writers enter conflicting regions with atomic stores to
	// the mirrored fields.
	Instrument     bool
	InstrumentNote string              // why not, when readers exist but Instrument is false
	Mirrored       map[*types.Var]bool // word-sized fields loaded by instrumented readers
}

// lockSet indexes the package's mutex identities and, per function, which
// identities the function's body touches (for cross-function detection).
type lockSet struct {
	pkg   *framework.Package
	locks map[types.Object]*LockInfo
	// touchers: functions whose body calls Lock/Unlock/RLock/RUnlock on
	// the identity — a call into one of these from inside a region on the
	// same identity is a cross-function critical section.
	touchers map[*types.Func]map[types.Object]bool
}

// lockMethods are the only method calls allowed on a convertible mutex.
var lockMethods = map[string]bool{
	"Lock": true, "Unlock": true, "RLock": true, "RUnlock": true,
}

// isSyncLockType reports whether t is sync.Mutex or sync.RWMutex (by
// value; pointer-typed declarations are aliases with unstable identity).
func isSyncLockType(t types.Type) (LockKind, bool) {
	named, ok := t.(*types.Named)
	if !ok {
		return 0, false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return 0, false
	}
	switch obj.Name() {
	case "Mutex":
		return KindMutex, true
	case "RWMutex":
		return KindRWMutex, true
	}
	return 0, false
}

// discoverLocks finds every mutex identity declared in the package:
// struct fields of named types and package-level variables.
func discoverLocks(pkg *framework.Package) *lockSet {
	ls := &lockSet{
		pkg:      pkg,
		locks:    map[types.Object]*LockInfo{},
		touchers: map[*types.Func]map[types.Object]bool{},
	}
	info := pkg.TypesInfo
	for _, f := range pkg.Files {
		if ast.IsGenerated(f) {
			continue
		}
		file := f
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.TypeSpec:
				st, ok := n.Type.(*ast.StructType)
				if !ok {
					return true
				}
				named, _ := info.Defs[n.Name].Type().(*types.Named)
				for _, fld := range st.Fields.List {
					kind, ok := isSyncLockType(info.TypeOf(fld.Type))
					if !ok {
						continue
					}
					for _, name := range fld.Names {
						v, ok := info.Defs[name].(*types.Var)
						if !ok {
							continue
						}
						li := &LockInfo{
							Obj: v, Kind: kind, Field: v, Owner: named,
							DeclType: fld.Type, DeclFile: file,
						}
						if named != nil {
							li.Name = named.Obj().Name() + "." + name.Name
						} else {
							li.Name = name.Name
						}
						ls.locks[v] = li
					}
				}
			case *ast.ValueSpec:
				for _, name := range n.Names {
					v, ok := info.Defs[name].(*types.Var)
					if !ok || v.Parent() != pkg.Types.Scope() {
						continue
					}
					kind, ok := isSyncLockType(v.Type())
					if !ok {
						continue
					}
					li := &LockInfo{Obj: v, Kind: kind, Name: name.Name, DeclFile: file}
					// The shared type expression of a multi-name spec can
					// only be rewritten once; restrict to single-name specs.
					if n.Type != nil && len(n.Names) == 1 {
						li.DeclType = n.Type
					} else {
						li.reject("unstable-identity", name.NamePos,
							"declaration form not rewritable (value-initialized or multi-name var spec)")
					}
					ls.locks[v] = li
				}
			}
			return true
		})
	}
	return ls
}

// reject records a lock-level rejection (first one wins).
func (li *LockInfo) reject(reason string, pos token.Pos, note string) {
	if li.Reject == "" {
		li.Reject = reason
		li.RejectPos = pos
		li.RejectNote = note
	}
}

// lockRef is one resolved reference to a mutex identity in an
// expression: the identity plus the receiver path it was reached
// through ("c.mu", "s.state.mu", "pkgMu").
type lockRef struct {
	lock *LockInfo
	// base is the rendered owner path without the final lock field
	// ("c", "s.state"); "" for package vars. Protected-field loads must
	// share this exact base.
	base string
	// expr is the full rendered lock path ("c.mu").
	expr string
}

// resolveLockExpr resolves e (the receiver of a Lock/Unlock-style call)
// to a mutex identity with a stable base: either a package-level mutex
// var, or a field path rooted at fn's pointer receiver. Any other shape
// (locals, parameters, pointer fields, value receivers, map elements)
// returns nil — those identities are not stable enough to rewrite.
func (ls *lockSet) resolveLockExpr(fn *ast.FuncDecl, e ast.Expr) *lockRef {
	info := ls.pkg.TypesInfo
	e = ast.Unparen(e)
	switch e := e.(type) {
	case *ast.Ident:
		obj := info.ObjectOf(e)
		li, ok := ls.locks[obj]
		if !ok || li.Field != nil {
			return nil
		}
		return &lockRef{lock: li, expr: e.Name}
	case *ast.SelectorExpr:
		obj := info.ObjectOf(e.Sel)
		li, ok := ls.locks[obj]
		if !ok {
			return nil
		}
		if li.Field == nil {
			// Package mutex var reached through a selector (pkg alias);
			// same-package code cannot produce this.
			return nil
		}
		// The base path must be plain selectors over a pointer receiver.
		base := e.X
		for {
			base = ast.Unparen(base)
			if sel, ok := base.(*ast.SelectorExpr); ok {
				if _, ok := info.Selections[sel]; !ok {
					return nil // qualified ident or method value
				}
				base = sel.X
				continue
			}
			break
		}
		id, ok := base.(*ast.Ident)
		if !ok {
			return nil
		}
		recv := receiverObj(info, fn)
		if recv == nil || info.ObjectOf(id) != recv {
			return nil
		}
		if _, ok := recv.Type().(*types.Pointer); !ok {
			return nil // value receiver: locking a copy
		}
		return &lockRef{lock: li, base: types.ExprString(e.X), expr: types.ExprString(e)}
	}
	return nil
}

// receiverObj returns fn's receiver variable, or nil.
func receiverObj(info *types.Info, fn *ast.FuncDecl) *types.Var {
	if fn.Recv == nil || len(fn.Recv.List) == 0 || len(fn.Recv.List[0].Names) == 0 {
		return nil
	}
	v, _ := info.Defs[fn.Recv.List[0].Names[0]].(*types.Var)
	return v
}

// lockMethodCall decomposes a call into (receiver expr, method name) when
// it invokes a method of sync.Mutex or sync.RWMutex.
func lockMethodCall(info *types.Info, call *ast.CallExpr) (ast.Expr, string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, "", false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return nil, "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil, "", false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if _, ok := isSyncLockType(t); !ok {
		return nil, "", false
	}
	return sel.X, fn.Name(), true
}

// scanUses walks every file and classifies each reference to a mutex
// identity. Anything but a plain Lock/Unlock/RLock/RUnlock call —
// TryLock, sync.NewCond, RLocker, taking the address, passing or storing
// the mutex — poisons the identity with the appropriate rejection.
// It also fills the per-function toucher index.
func (ls *lockSet) scanUses() {
	info := ls.pkg.TypesInfo
	for _, f := range ls.pkg.Files {
		if ast.IsGenerated(f) {
			continue
		}
		for _, d := range f.Decls {
			fd, isFunc := d.(*ast.FuncDecl)
			var curFn *types.Func
			if isFunc && fd.Body != nil {
				curFn, _ = info.Defs[fd.Name].(*types.Func)
			}
			ls.scanNode(d, curFn)
		}
	}
}

// scanNode classifies mutex references under n, attributing touches to
// fn (nil outside function bodies).
func (ls *lockSet) scanNode(n ast.Node, fn *types.Func) {
	info := ls.pkg.TypesInfo
	var walk func(n ast.Node, parentCall *ast.CallExpr, inAddr bool)
	// refOf returns the LockInfo an expression refers to, without
	// descending into it further.
	refOf := func(e ast.Expr) *LockInfo {
		// Uses only: declaration idents (the field or var spec itself)
		// are not references.
		switch e := e.(type) {
		case *ast.Ident:
			if li, ok := ls.locks[info.Uses[e]]; ok && li.Field == nil {
				return li
			}
		case *ast.SelectorExpr:
			if li, ok := ls.locks[info.Uses[e.Sel]]; ok {
				return li
			}
		}
		return nil
	}
	touch := func(li *LockInfo) {
		if fn == nil {
			return
		}
		m := ls.touchers[fn]
		if m == nil {
			m = map[types.Object]bool{}
			ls.touchers[fn] = m
		}
		m[li.Obj] = true
	}
	walk = func(n ast.Node, parentCall *ast.CallExpr, inAddr bool) {
		switch n := n.(type) {
		case nil:
			return
		case *ast.CallExpr:
			// A lock-method call: the receiver reference is legitimate.
			if recv, meth, ok := lockMethodCall(info, n); ok {
				if li := refOf(ast.Unparen(recv)); li != nil {
					touch(li)
					switch meth {
					case "TryLock", "TryRLock":
						li.reject("trylock", n.Pos(), meth+" has no Execute equivalent")
					case "RLocker":
						li.reject("address-taken", n.Pos(), "RLocker aliases the mutex as a sync.Locker")
					default:
						if !lockMethods[meth] {
							li.reject("address-taken", n.Pos(), "unsupported mutex method "+meth)
						}
					}
					// Descend only into the receiver's own base (not the
					// mutex reference itself) and arguments.
					walkBaseOf(recv, func(sub ast.Node) { walk(sub, nil, false) })
					for _, a := range n.Args {
						walk(a, nil, false)
					}
					return
				}
			}
			// sync.NewCond(&mu): a condition variable is wedded to the
			// native mutex implementation.
			if callee := calleePath(info, n); callee == "sync.NewCond" {
				for _, a := range n.Args {
					if u, ok := ast.Unparen(a).(*ast.UnaryExpr); ok && u.Op == token.AND {
						if li := refOf(ast.Unparen(u.X)); li != nil {
							li.reject("condvar", a.Pos(), "mutex used as a sync.Cond locker")
							walkBaseOf(ast.Unparen(u.X), func(sub ast.Node) { walk(sub, nil, false) })
							continue
						}
					}
					walk(a, n, false)
				}
				return
			}
			walk(n.Fun, nil, false)
			for _, a := range n.Args {
				walk(a, n, false)
			}
			return
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if li := refOf(ast.Unparen(n.X)); li != nil {
					li.reject("address-taken", n.Pos(), "address of the mutex escapes")
					walkBaseOf(ast.Unparen(n.X), func(sub ast.Node) { walk(sub, nil, false) })
					return
				}
				walk(n.X, nil, true)
				return
			}
		case ast.Expr:
			if li := refOf(n); li != nil {
				// Any bare use outside a lock-method call: copied, passed,
				// compared, stored.
				li.reject("address-taken", n.Pos(), "mutex value used outside Lock/Unlock calls")
				if sel, ok := n.(*ast.SelectorExpr); ok {
					walkBaseOf(sel, func(sub ast.Node) { walk(sub, nil, false) })
				}
				return
			}
		}
		// Generic descent.
		children(n, func(c ast.Node) { walk(c, nil, false) })
	}
	walk(n, nil, false)
}

// walkBaseOf visits the owner path of a selector (everything left of the
// final field) so uses buried in the base are still classified.
func walkBaseOf(e ast.Expr, visit func(ast.Node)) {
	if sel, ok := ast.Unparen(e).(*ast.SelectorExpr); ok {
		visit(sel.X)
	}
}

// children invokes visit on each direct child node of n.
func children(n ast.Node, visit func(ast.Node)) {
	first := true
	ast.Inspect(n, func(c ast.Node) bool {
		if first {
			first = false
			return true
		}
		if c != nil {
			visit(c)
		}
		return false
	})
}

// calleePath renders a call's callee as "pkg.Func" for package functions.
func calleePath(info *types.Info, call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return ""
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return ""
	}
	return fmt.Sprintf("%s.%s", fn.Pkg().Name(), fn.Name())
}
