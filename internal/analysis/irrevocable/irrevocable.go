// Package irrevocable flags irrevocable actions inside critical-section
// bodies that can execute in HTM or SWOpt mode: I/O, syscalls, sleeps,
// channel operations, goroutine launches, panics, and unbounded loops
// with no validation. A hardware transaction aborts on most of these (at
// best wasting the retry budget, at worst looping forever on a
// deterministic abort), and a SWOpt execution may run them on stale data
// and retry them arbitrarily many times — so they must live outside the
// body or behind a self-abort (paper section 3.3's nested-mutation and
// self-abort idioms; the lazy-subscription literature shows HTM bodies
// running on inconsistent state can take wild branches, which is why even
// "harmless" I/O is unsafe).
//
// Bodies that can only ever run under the lock (NoHTM and no SWOpt path)
// are exempt. Calls are followed one level into same-package helper
// functions; the ALE runtime packages themselves are trusted. Additional
// callees can be allowed with -irrevocable.allow=name1,name2 (substring
// match on the callee's full name).
package irrevocable

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis/aleutil"
	"repro/internal/analysis/framework"
)

// Analyzer is the irrevocable analyzer.
var Analyzer = &framework.Analyzer{
	Name: "irrevocable",
	Doc: "flag irrevocable actions (I/O, sleeps, channels, panics, unbounded loops) in elidable critical sections\n\n" +
		"HTM- or SWOpt-eligible bodies may execute speculatively on stale\n" +
		"state and re-execute arbitrarily often; actions that cannot be\n" +
		"rolled back must not appear in them.",
	Run: run,
}

var allowFlag string

func init() {
	Analyzer.Flags.StringVar(&allowFlag, "allow", "", "comma-separated substrings of callee full names to allow")
}

// deniedPkgs lists packages whose every call is irrevocable from an
// elidable body. sync/atomic is NOT here (path match is exact).
var deniedPkgs = map[string]string{
	"os":            "operating-system call",
	"io":            "I/O",
	"bufio":         "I/O",
	"net":           "network I/O",
	"net/http":      "network I/O",
	"syscall":       "syscall",
	"log":           "logging I/O",
	"sync":          "blocking synchronization",
	"os/exec":       "subprocess launch",
	"os/signal":     "signal handling",
	"path/filepath": "filesystem access",
}

// deniedFuncs lists individual functions that are irrevocable even though
// their package is otherwise allowed.
var deniedFuncs = map[string]string{
	"fmt.Print":      "write to stdout",
	"fmt.Printf":     "write to stdout",
	"fmt.Println":    "write to stdout",
	"fmt.Fprint":     "I/O",
	"fmt.Fprintf":    "I/O",
	"fmt.Fprintln":   "I/O",
	"fmt.Scan":       "read from stdin",
	"fmt.Scanf":      "read from stdin",
	"fmt.Scanln":     "read from stdin",
	"time.Sleep":     "sleep",
	"time.After":     "timer channel",
	"time.Tick":      "timer channel",
	"time.NewTimer":  "timer",
	"time.NewTicker": "timer",
	"runtime.Gosched": "scheduler yield (defers the transaction " +
		"indefinitely)",
}

// trustedPkgSuffixes are the ALE runtime's own packages: their internals
// (spins, panics on misuse) are the library's concern, not the body's.
var trustedPkgSuffixes = []string{
	"internal/core", "internal/tm", "internal/locks", "internal/stats",
	"internal/obs", "internal/trace", "internal/snzi", "internal/xrand",
	"internal/platform",
}

func run(pass *framework.Pass) error {
	allow := strings.Split(allowFlag, ",")
	ck := newChecker(pass.Fset, pass.TypesInfo, pass.Files, allow)
	ck.report = func(pos token.Pos, what string) {
		pass.Reportf(pos, "%s inside an elidable critical-section body (move it outside the CS, behind ec.SelfAbort, or into a NoHTM lock-only section)", what)
	}
	for _, cs := range aleutil.CSBodies(pass.TypesInfo, pass.Files, true) {
		if cs.Lit != nil && cs.NoHTM && !cs.HasSWOpt {
			continue // lock-mode only: irrevocable actions are fine
		}
		ck.checkBody(cs.Fn.Body, nil)
	}
	return nil
}

// Finding is one irrevocable action located by a Scanner: its position
// and a short description of what the action is.
type Finding struct {
	Pos  token.Pos
	What string
}

// Scanner applies the analyzer's irrevocable-action check to arbitrary
// statement lists outside the analyzer driver. alepatch uses it to decide
// whether a mutex critical section may gain a speculative (SWOpt) path:
// any finding means the region's statements are not safe to re-execute.
// The same denylists, trusted runtime packages, and same-package
// helper-following apply as in the analyzer; allow entries are callee
// full-name substrings to permit.
type Scanner struct {
	ck *checker
}

// NewScanner builds a scanner over one type-checked package (the files
// provide the same-package helper bodies that calls are followed into).
func NewScanner(fset *token.FileSet, info *types.Info, files []*ast.File, allow []string) *Scanner {
	return &Scanner{ck: newChecker(fset, info, files, allow)}
}

// ScanStmts reports every irrevocable action in the statements, in
// source order. An empty result means the list is safe to run (and
// re-run) speculatively as far as this analysis can tell.
func (s *Scanner) ScanStmts(stmts []ast.Stmt) []Finding {
	var found []finding
	s.ck.checkBody(&ast.BlockStmt{List: stmts}, &found)
	out := make([]Finding, len(found))
	for i, f := range found {
		out[i] = Finding{Pos: f.pos, What: f.what}
	}
	return out
}

type checker struct {
	fset    *token.FileSet
	info    *types.Info
	report  func(token.Pos, string) // nil: findings are only collected
	allow   []string
	helpers map[*types.Func]*ast.FuncDecl
	stack   []*types.Func // call-graph walk path (cycle guard)
}

// newChecker indexes the package's function declarations for
// helper-following and returns a collector-mode checker.
func newChecker(fset *token.FileSet, info *types.Info, files []*ast.File, allow []string) *checker {
	ck := &checker{fset: fset, info: info, allow: allow, helpers: map[*types.Func]*ast.FuncDecl{}}
	for _, f := range files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				if fn, ok := info.Defs[fd.Name].(*types.Func); ok {
					ck.helpers[fn] = fd
				}
			}
		}
	}
	return ck
}

// finding is one irrevocable action inside a function.
type finding struct {
	pos  token.Pos
	what string
}

// checkBody reports every irrevocable action in body. When via is
// non-nil, findings are collected into it instead of reported (helper
// analysis).
func (ck *checker) checkBody(body *ast.BlockStmt, via *[]finding) {
	emit := func(pos token.Pos, what string) {
		if via != nil {
			*via = append(*via, finding{pos, what})
			return
		}
		ck.report(pos, what)
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // analyzed separately if it is itself a body
		case *ast.GoStmt:
			emit(n.Pos(), "goroutine launch")
			return false
		case *ast.SendStmt:
			emit(n.Pos(), "channel send")
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				emit(n.Pos(), "channel receive")
			}
		case *ast.SelectStmt:
			emit(n.Pos(), "select statement")
			return false
		case *ast.ForStmt:
			if n.Cond == nil && !loopHasExitOrValidation(ck.info, n) {
				emit(n.Pos(), "unbounded loop without validation or exit")
			}
		case *ast.CallExpr:
			ck.checkCall(n, emit)
		}
		return true
	})
}

func (ck *checker) checkCall(call *ast.CallExpr, emit func(token.Pos, string)) {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		switch id.Name {
		case "panic":
			if _, isBuiltin := ck.info.Uses[id].(*types.Builtin); isBuiltin {
				emit(call.Pos(), "panic")
				return
			}
		case "print", "println":
			if _, isBuiltin := ck.info.Uses[id].(*types.Builtin); isBuiltin {
				emit(call.Pos(), "write to stderr")
				return
			}
		}
	}
	fn := aleutil.Callee(ck.info, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	full := fullName(fn)
	for _, a := range ck.allow {
		if a != "" && strings.Contains(full, a) {
			return
		}
	}
	if what, ok := deniedFuncs[full]; ok {
		emit(call.Pos(), what+" ("+full+")")
		return
	}
	pkgPath := fn.Pkg().Path()
	if what, ok := deniedPkgs[pkgPath]; ok {
		emit(call.Pos(), what+" ("+full+")")
		return
	}
	for _, suf := range trustedPkgSuffixes {
		if pkgPath == suf || strings.HasSuffix(pkgPath, "/"+suf) {
			return
		}
	}
	// Same-package helper: follow one call-graph level (transitively,
	// cycle-guarded) and attribute its irrevocable actions to this call
	// site.
	if decl, ok := ck.helpers[fn]; ok && len(ck.stack) < 8 {
		for _, f := range ck.stack {
			if f == fn {
				return
			}
		}
		ck.stack = append(ck.stack, fn)
		var nested []finding
		ck.checkBody(decl.Body, &nested)
		ck.stack = ck.stack[:len(ck.stack)-1]
		if len(nested) > 0 {
			pos := ck.fset.Position(nested[0].pos)
			emit(call.Pos(), "call to "+fn.Name()+", which performs "+nested[0].what+
				" (at "+pos.String()+")")
		}
	}
}

// loopHasExitOrValidation reports whether a condition-less for loop can
// make progress visible to the engine: it validates a marker, fails the
// SWOpt attempt, returns, breaks, or panics out.
func loopHasExitOrValidation(info *types.Info, loop *ast.ForStmt) bool {
	found := false
	ast.Inspect(loop.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
			// break inside these does not exit the outer loop; keep
			// descending for returns and validations only. (A labeled
			// break would — accepted below by the BranchStmt case since
			// we cannot resolve its target cheaply.)
			return true
		case *ast.ReturnStmt:
			found = true
		case *ast.BranchStmt:
			if n.Tok == token.BREAK || n.Tok == token.GOTO {
				found = true
			}
		case *ast.CallExpr:
			switch aleutil.MarkerCall(info, n) {
			case "Validate", "ValidateIn", "ReadStable":
				found = true
			}
			switch aleutil.ExecCtxCall(info, n) {
			case "Validate", "ValidateIn", "ReadStable", "SWOptFail", "SelfAbort":
				found = true
			}
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "panic" {
				found = true
			}
		}
		return !found
	})
	return found
}

func fullName(fn *types.Func) string {
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			return fn.Pkg().Path() + "." + named.Obj().Name() + "." + fn.Name()
		}
	}
	return fn.Pkg().Path() + "." + fn.Name()
}
