package irrevocable_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/irrevocable"
)

func TestIrrevocable(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), irrevocable.Analyzer, "a")
}
