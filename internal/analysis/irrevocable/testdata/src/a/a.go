// Package a is the irrevocable golden fixture: actions that can and
// cannot appear inside elidable critical-section bodies.
package a

import (
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/core"
)

var sink uint64
var ch = make(chan int)

// Printing inside an elidable body.
var csPrint = core.CS{
	Scope:    core.NewScope("print"),
	HasSWOpt: true,
	Body: func(ec *core.ExecCtx) error {
		fmt.Println("inside") // want `write to stdout`
		return nil
	},
}

// Sleeping inside an elidable body.
var csSleep = core.CS{
	Scope: core.NewScope("sleep"),
	Body: func(ec *core.ExecCtx) error {
		time.Sleep(time.Millisecond) // want `sleep`
		return nil
	},
}

// Goroutine launch and channel traffic.
var csConc = core.CS{
	Scope: core.NewScope("conc"),
	Body: func(ec *core.ExecCtx) error {
		go func() { sink++ }() // want `goroutine launch`
		ch <- 1                // want `channel send`
		<-ch                   // want `channel receive`
		return nil
	},
}

// Explicit panic.
var csPanic = core.CS{
	Scope: core.NewScope("panic"),
	Body: func(ec *core.ExecCtx) error {
		panic("no") // want `panic`
	},
}

// An unbounded spin with no validation, return, or break.
var csSpin = core.CS{
	Scope: core.NewScope("spin"),
	Body: func(ec *core.ExecCtx) error {
		for { // want `unbounded loop without validation or exit`
			sink++
		}
	},
}

// A spin that validates each round is the legitimate SWOpt retry shape.
var csSpinOK = core.CS{
	Scope:    core.NewScope("spinok"),
	HasSWOpt: true,
	Body: func(ec *core.ExecCtx) error {
		mk := mkFor()
		for {
			v := mk.ReadStable()
			if mk.Validate(v) {
				break
			}
		}
		return nil
	},
}

// Irrevocable work behind a same-package helper is still found, and
// attributed to the call site.
var csHelper = core.CS{
	Scope:    core.NewScope("helper"),
	HasSWOpt: true,
	Body: func(ec *core.ExecCtx) error {
		logit() // want `call to logit`
		return nil
	},
}

func logit() {
	fmt.Println("logging")
}

func mkFor() *core.ConflictMarker { return nil }

// A NoHTM section with no SWOpt path only ever runs under the lock:
// irrevocable actions are legal there. Clean.
var csLockOnly = core.CS{
	Scope: core.NewScope("lockonly"),
	NoHTM: true,
	Body: func(ec *core.ExecCtx) error {
		fmt.Println("lock-mode only")
		time.Sleep(time.Millisecond)
		return nil
	},
}

// Pure computation, error construction, and sync/atomic are all safe in
// an elidable body. Clean.
var csClean = core.CS{
	Scope:    core.NewScope("clean"),
	HasSWOpt: true,
	Body: func(ec *core.ExecCtx) error {
		atomic.AddUint64(&sink, 1)
		if sink > 1<<40 {
			return fmt.Errorf("sink overflow: %d", sink)
		}
		for i := 0; i < 8; i++ {
			sink += uint64(i)
		}
		return nil
	},
}
