// Package cfgutil builds a simple intraprocedural control-flow graph over
// a function body's statements — the role golang.org/x/tools/go/cfg plays
// for the real analysis framework (unavailable offline; see
// internal/analysis/framework). The graph is statement-granular, with
// condition expressions kept at the end of their branching block and
// labeled edges (true/false) so dataflow analyses can be branch-sensitive
// around validation guards.
package cfgutil

import (
	"go/ast"
	"go/token"
)

// Block is a basic block: a sequence of nodes executed in order, then a
// transfer to one of Succs.
type Block struct {
	Index int

	// Nodes holds the block's statements in execution order. For a
	// branching block the final node is its condition expression (an
	// ast.Expr); plain statements are ast.Stmt.
	Nodes []ast.Node

	// Cond is the branch condition when the block ends in a two-way
	// branch: Succs[0] is the true edge, Succs[1] the false edge. Nil for
	// unconditional blocks (including range headers and switch heads,
	// which branch without a boolean condition).
	Cond ast.Expr

	// Stmt is the statement that gave rise to this block when it is a
	// loop or branch header (ForStmt, RangeStmt, IfStmt, SwitchStmt,
	// TypeSwitchStmt, SelectStmt); nil otherwise.
	Stmt ast.Stmt

	Succs []*Block
}

// Graph is a function body's control-flow graph. Exit represents every way
// out of the function: returns, panics, and falling off the end.
type Graph struct {
	Entry  *Block
	Exit   *Block
	Blocks []*Block
}

// New builds the CFG for a function body.
func New(body *ast.BlockStmt) *Graph {
	b := &builder{g: &Graph{}, labels: map[string]*labelInfo{}}
	b.g.Entry = b.newBlock()
	b.g.Exit = b.newBlock()
	b.cur = b.g.Entry
	b.stmtList(body.List)
	b.edge(b.cur, b.g.Exit) // fall off the end
	for _, p := range b.pendingGotos {
		if li, ok := b.labels[p.label]; ok && li.start != nil {
			b.edge(p.from, li.start)
		} else {
			b.edge(p.from, b.g.Exit) // unresolved goto: be conservative
		}
	}
	return b.g
}

type labelInfo struct {
	start          *Block // the labeled statement's block (goto/continue target owner)
	breakTarget    *Block // set when the labeled stmt is a loop/switch
	continueTarget *Block
}

type pendingGoto struct {
	from  *Block
	label string
}

type builder struct {
	g   *Graph
	cur *Block

	// Innermost-last stacks of break/continue targets.
	breaks    []*Block
	continues []*Block

	labels       map[string]*labelInfo
	pendingGotos []pendingGoto
	curLabel     string // label attached to the next loop/switch statement
}

func (b *builder) newBlock() *Block {
	blk := &Block{Index: len(b.g.Blocks)}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

func (b *builder) edge(from, to *Block) {
	from.Succs = append(from.Succs, to)
}

// startUnreachable begins a fresh block with no predecessors, used after a
// terminating statement so trailing dead code still parses into the graph.
func (b *builder) startUnreachable() {
	b.cur = b.newBlock()
}

func (b *builder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *builder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.ReturnStmt:
		b.cur.Nodes = append(b.cur.Nodes, s)
		b.edge(b.cur, b.g.Exit)
		b.startUnreachable()

	case *ast.BranchStmt:
		b.cur.Nodes = append(b.cur.Nodes, s)
		switch s.Tok {
		case token.BREAK:
			if s.Label != nil {
				if li := b.labels[s.Label.Name]; li != nil && li.breakTarget != nil {
					b.edge(b.cur, li.breakTarget)
				} else {
					b.edge(b.cur, b.g.Exit)
				}
			} else if n := len(b.breaks); n > 0 {
				b.edge(b.cur, b.breaks[n-1])
			} else {
				b.edge(b.cur, b.g.Exit)
			}
			b.startUnreachable()
		case token.CONTINUE:
			if s.Label != nil {
				if li := b.labels[s.Label.Name]; li != nil && li.continueTarget != nil {
					b.edge(b.cur, li.continueTarget)
				} else {
					b.edge(b.cur, b.g.Exit)
				}
			} else if n := len(b.continues); n > 0 {
				b.edge(b.cur, b.continues[n-1])
			} else {
				b.edge(b.cur, b.g.Exit)
			}
			b.startUnreachable()
		case token.GOTO:
			b.pendingGotos = append(b.pendingGotos, pendingGoto{b.cur, s.Label.Name})
			b.startUnreachable()
		case token.FALLTHROUGH:
			// Handled by the enclosing switch construction (the clause's
			// block simply falls through to the next clause body).
		}

	case *ast.LabeledStmt:
		li := b.labels[s.Label.Name]
		if li == nil {
			li = &labelInfo{}
			b.labels[s.Label.Name] = li
		}
		start := b.newBlock()
		b.edge(b.cur, start)
		b.cur = start
		li.start = start
		b.curLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.curLabel = ""

	case *ast.IfStmt:
		if s.Init != nil {
			b.cur.Nodes = append(b.cur.Nodes, s.Init)
		}
		condBlk := b.cur
		condBlk.Nodes = append(condBlk.Nodes, s.Cond)
		condBlk.Cond = s.Cond
		condBlk.Stmt = s
		thenBlk := b.newBlock()
		after := b.newBlock()
		b.edge(condBlk, thenBlk)
		b.cur = thenBlk
		b.stmt(s.Body)
		b.edge(b.cur, after)
		if s.Else != nil {
			elseBlk := b.newBlock()
			b.edge(condBlk, elseBlk)
			b.cur = elseBlk
			b.stmt(s.Else)
			b.edge(b.cur, after)
		} else {
			b.edge(condBlk, after)
		}
		b.cur = after

	case *ast.ForStmt:
		if s.Init != nil {
			b.cur.Nodes = append(b.cur.Nodes, s.Init)
		}
		header := b.newBlock()
		header.Stmt = s
		b.edge(b.cur, header)
		body := b.newBlock()
		after := b.newBlock()
		post := header
		if s.Post != nil {
			post = b.newBlock()
			post.Nodes = append(post.Nodes, s.Post)
			b.edge(post, header)
		}
		if s.Cond != nil {
			header.Nodes = append(header.Nodes, s.Cond)
			header.Cond = s.Cond
			b.edge(header, body)  // true
			b.edge(header, after) // false
		} else {
			b.edge(header, body) // for {}: only exit via break
		}
		b.withLoop(after, post, s, func() {
			b.cur = body
			b.stmt(s.Body)
			b.edge(b.cur, post)
		})
		b.cur = after

	case *ast.RangeStmt:
		header := b.newBlock()
		header.Stmt = s
		header.Nodes = append(header.Nodes, s)
		b.edge(b.cur, header)
		body := b.newBlock()
		after := b.newBlock()
		b.edge(header, body)  // iterate
		b.edge(header, after) // done (possibly zero iterations)
		b.withLoop(after, header, s, func() {
			b.cur = body
			b.stmt(s.Body)
			b.edge(b.cur, header)
		})
		b.cur = after

	case *ast.SwitchStmt:
		if s.Init != nil {
			b.cur.Nodes = append(b.cur.Nodes, s.Init)
		}
		if s.Tag != nil {
			b.cur.Nodes = append(b.cur.Nodes, s.Tag)
		}
		b.switchClauses(s, s.Body.List)

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			b.cur.Nodes = append(b.cur.Nodes, s.Init)
		}
		b.cur.Nodes = append(b.cur.Nodes, s.Assign)
		b.switchClauses(s, s.Body.List)

	case *ast.SelectStmt:
		head := b.cur
		head.Stmt = s
		after := b.newBlock()
		b.withBreak(after, s, func() {
			for _, c := range s.Body.List {
				comm := c.(*ast.CommClause)
				clause := b.newBlock()
				b.edge(head, clause)
				if comm.Comm != nil {
					clause.Nodes = append(clause.Nodes, comm.Comm)
				}
				b.cur = clause
				b.stmtList(comm.Body)
				b.edge(b.cur, after)
			}
		})
		if len(s.Body.List) == 0 {
			b.edge(head, after)
		}
		b.cur = after

	default:
		// Plain statement: Expr, Assign, Decl, IncDec, Send, Defer, Go,
		// Empty. A terminating panic(...) call ends the block.
		b.cur.Nodes = append(b.cur.Nodes, s)
		if isPanicStmt(s) {
			b.edge(b.cur, b.g.Exit)
			b.startUnreachable()
		}
	}
}

// switchClauses wires a (type) switch's clause blocks: the head branches
// to every clause (and past the switch when there is no default), each
// clause body flows to the after-block, and fallthrough flows into the
// next clause's body.
func (b *builder) switchClauses(sw ast.Stmt, clauses []ast.Stmt) {
	head := b.cur
	head.Stmt = sw
	after := b.newBlock()
	hasDefault := false
	blocks := make([]*Block, len(clauses))
	for i, c := range clauses {
		cc := c.(*ast.CaseClause)
		blocks[i] = b.newBlock()
		b.edge(head, blocks[i])
		for _, e := range cc.List {
			blocks[i].Nodes = append(blocks[i].Nodes, e)
		}
		if cc.List == nil {
			hasDefault = true
		}
	}
	b.withBreak(after, sw, func() {
		for i, c := range clauses {
			cc := c.(*ast.CaseClause)
			b.cur = blocks[i]
			b.stmtList(cc.Body)
			if fallsThrough(cc.Body) && i+1 < len(clauses) {
				b.edge(b.cur, blocks[i+1])
				b.startUnreachable()
			} else {
				b.edge(b.cur, after)
			}
		}
	})
	if !hasDefault {
		b.edge(head, after)
	}
	b.cur = after
}

func fallsThrough(body []ast.Stmt) bool {
	if len(body) == 0 {
		return false
	}
	br, ok := body[len(body)-1].(*ast.BranchStmt)
	return ok && br.Tok == token.FALLTHROUGH
}

// withLoop runs fn with break/continue targets pushed, also registering
// them under the loop's label (if any) for labeled break/continue.
func (b *builder) withLoop(brk, cont *Block, stmt ast.Stmt, fn func()) {
	b.breaks = append(b.breaks, brk)
	b.continues = append(b.continues, cont)
	if b.curLabel != "" {
		li := b.labels[b.curLabel]
		li.breakTarget, li.continueTarget = brk, cont
		b.curLabel = ""
	}
	fn()
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.continues = b.continues[:len(b.continues)-1]
}

// withBreak is withLoop for break-only constructs (switch, select).
func (b *builder) withBreak(brk *Block, stmt ast.Stmt, fn func()) {
	b.breaks = append(b.breaks, brk)
	if b.curLabel != "" {
		b.labels[b.curLabel].breakTarget = brk
		b.curLabel = ""
	}
	fn()
	b.breaks = b.breaks[:len(b.breaks)-1]
}

// isPanicStmt reports whether s is a call to the panic builtin.
func isPanicStmt(s ast.Stmt) bool {
	es, ok := s.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "panic"
}
