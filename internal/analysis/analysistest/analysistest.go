// Package analysistest runs an analyzer over golden fixture packages and
// checks its diagnostics against // want comments, mirroring
// golang.org/x/tools/go/analysis/analysistest (unavailable offline; see
// internal/analysis/framework).
//
// A fixture lives at testdata/src/<pkg>/ inside the analyzer's package
// directory. Lines that should trigger a diagnostic carry a comment of
// the form
//
//	x := ec.Load(&v) // want `used before Validate`
//
// with one or more quoted (double-quote or backtick) regular expressions,
// each of which must match a distinct diagnostic reported on that line.
// Diagnostics with no matching want, and wants with no matching
// diagnostic, fail the test.
package analysistest

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strconv"
	"testing"

	"repro/internal/analysis/framework"
)

// TestData returns the absolute path of the calling test's testdata
// directory (go test runs with the package directory as cwd).
func TestData(t *testing.T) string {
	t.Helper()
	abs, err := filepath.Abs("testdata")
	if err != nil {
		t.Fatalf("analysistest: resolving testdata: %v", err)
	}
	return abs
}

// Run loads each fixture package testdata/src/<pkg>, applies the
// analyzer, and checks diagnostics against the fixtures' want comments.
func Run(t *testing.T, testdata string, a *framework.Analyzer, pkgs ...string) {
	t.Helper()
	for _, p := range pkgs {
		runOne(t, filepath.Join(testdata, "src", p), a)
	}
}

type want struct {
	file    string
	line    int
	pattern string
	re      *regexp.Regexp
	matched bool
}

var wantRe = regexp.MustCompile(`//\s*want\s+(.*)$`)
var argRe = regexp.MustCompile("`([^`]*)`|\"((?:[^\"\\\\]|\\\\.)*)\"")

func runOne(t *testing.T, dir string, a *framework.Analyzer) {
	t.Helper()
	pkgs, err := framework.Load(dir, ".")
	if err != nil {
		t.Fatalf("analysistest: loading %s: %v", dir, err)
	}
	diags, err := framework.RunAnalyzers(pkgs, []*framework.Analyzer{a})
	if err != nil {
		t.Fatalf("analysistest: running %s on %s: %v", a.Name, dir, err)
	}
	fset := pkgs[0].Fset

	var wants []*want
	byLine := map[string][]*want{}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := wantRe.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					pos := fset.Position(c.Pos())
					for _, am := range argRe.FindAllStringSubmatch(m[1], -1) {
						pat := am[1]
						if pat == "" && am[2] != "" {
							if s, err := strconv.Unquote(`"` + am[2] + `"`); err == nil {
								pat = s
							}
						}
						re, err := regexp.Compile(pat)
						if err != nil {
							t.Fatalf("%s: bad want pattern %q: %v", pos, pat, err)
						}
						w := &want{file: pos.Filename, line: pos.Line, pattern: pat, re: re}
						wants = append(wants, w)
						key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
						byLine[key] = append(byLine[key], w)
					}
				}
			}
		}
	}

	for _, d := range diags {
		pos := fset.Position(d.Pos)
		key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
		matched := false
		for _, w := range byLine[key] {
			if !w.matched && w.re.MatchString(d.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s (%s)", pos, d.Message, d.Analyzer)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matching %q was reported", w.file, w.line, w.pattern)
		}
	}
}
