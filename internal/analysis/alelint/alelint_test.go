package alelint_test

import (
	"bytes"
	"testing"

	"repro/internal/analysis/alelint"
)

// TestRepoIsClean is the enforcement test: the whole module must pass the
// analyzer suite. CI additionally runs `go run ./cmd/alelint ./...`; this
// test keeps the guarantee under plain `go test ./...` too.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out to go list; skipped in -short mode")
	}
	var out, errb bytes.Buffer
	code := alelint.Run("../../..", []string{"./..."}, &out, &errb)
	if code != alelint.ExitClean {
		t.Fatalf("alelint ./... = exit %d, want %d\nstdout:\n%s\nstderr:\n%s",
			code, alelint.ExitClean, out.String(), errb.String())
	}
}
