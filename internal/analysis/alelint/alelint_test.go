package alelint_test

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"testing"

	"repro/internal/analysis/alelint"
	"repro/internal/analysis/framework"
)

// TestRepoIsClean is the enforcement test: the whole module must pass the
// analyzer suite. CI additionally runs `go run ./cmd/alelint ./...`; this
// test keeps the guarantee under plain `go test ./...` too.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out to go list; skipped in -short mode")
	}
	var out, errb bytes.Buffer
	code := alelint.Run("../../..", []string{"./..."}, &out, &errb)
	if code != alelint.ExitClean {
		t.Fatalf("alelint ./... = exit %d, want %d\nstdout:\n%s\nstderr:\n%s",
			code, alelint.ExitClean, out.String(), errb.String())
	}
}

// TestJSONOutput runs the suite in JSON mode over a fixture package with
// known violations and checks the emitted records parse as the shared
// framework.JSONDiagnostic shape with populated fields.
func TestJSONOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out to go list; skipped in -short mode")
	}
	dir, err := filepath.Abs(filepath.Join("..", "markerpair", "testdata", "src", "a"))
	if err != nil {
		t.Fatal(err)
	}
	var out, errb bytes.Buffer
	code := alelint.RunOpts(alelint.Options{JSON: true}, dir, []string{"."}, &out, &errb)
	if code != alelint.ExitDiags {
		t.Fatalf("alelint -json on fixture = exit %d, want %d\nstderr:\n%s",
			code, alelint.ExitDiags, errb.String())
	}
	var recs []framework.JSONDiagnostic
	if err := json.Unmarshal(out.Bytes(), &recs); err != nil {
		t.Fatalf("output is not a JSON diagnostic array: %v\n%s", err, out.String())
	}
	if len(recs) == 0 {
		t.Fatal("fixture produced no diagnostics")
	}
	for i, r := range recs {
		if r.File == "" || r.Line == 0 || r.Analyzer == "" || r.Message == "" {
			t.Errorf("record %d has empty fields: %+v", i, r)
		}
	}
	// JSON mode on a clean package still emits a (empty) JSON array.
	out.Reset()
	cleanDir, err := filepath.Abs(filepath.Join("..", "cfgutil"))
	if err != nil {
		t.Fatal(err)
	}
	code = alelint.RunOpts(alelint.Options{JSON: true}, cleanDir, []string{"."}, &out, &errb)
	if code != alelint.ExitClean {
		t.Fatalf("alelint -json on clean package = exit %d, want %d\nstderr:\n%s",
			code, alelint.ExitClean, errb.String())
	}
	if err := json.Unmarshal(out.Bytes(), &recs); err != nil || recs == nil && out.Len() == 0 {
		t.Fatalf("clean run did not emit a JSON array: %v\n%s", err, out.String())
	}
}
