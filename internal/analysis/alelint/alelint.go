// Package alelint is the multichecker driver for the ALE analyzer suite:
// it loads packages, runs every registered analyzer, and prints
// diagnostics in the canonical path:line:col form. cmd/alelint is the
// thin executable wrapper; tests call Main (or Run) directly.
package alelint

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/analysis/framework"
	"repro/internal/analysis/irrevocable"
	"repro/internal/analysis/lockdiscipline"
	"repro/internal/analysis/markerpair"
	"repro/internal/analysis/validatebeforeuse"
)

// Analyzers is the registered suite, in reporting order.
var Analyzers = []*framework.Analyzer{
	markerpair.Analyzer,
	validatebeforeuse.Analyzer,
	irrevocable.Analyzer,
	lockdiscipline.Analyzer,
}

// Exit codes, mirroring the x/tools multichecker convention.
const (
	ExitClean = 0 // no diagnostics
	ExitDiags = 1 // diagnostics reported
	ExitError = 2 // loader or analyzer failure
)

// Main parses args (flags followed by package patterns, default ./...)
// and runs the suite in the current directory, printing to stdout/stderr.
// It returns the process exit code.
func Main(args []string) int {
	fs := flag.NewFlagSet("alelint", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: alelint [flags] [packages]\n\nAnalyzers:\n")
		for _, a := range Analyzers {
			fmt.Fprintf(os.Stderr, "  %-18s %s\n", a.Name, firstLine(a.Doc))
		}
		fmt.Fprintf(os.Stderr, "\nFlags:\n")
		fs.PrintDefaults()
	}
	// Expose each analyzer's flags as -<name>.<flag>.
	for _, a := range Analyzers {
		name := a.Name
		a.Flags.VisitAll(func(f *flag.Flag) {
			fs.Var(f.Value, name+"."+f.Name, f.Usage)
		})
	}
	jsonOut := fs.Bool("json", false, "emit diagnostics as a JSON array of {file,line,col,analyzer,message} records")
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return ExitClean
		}
		return ExitError
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	return RunOpts(Options{JSON: *jsonOut}, "", patterns, os.Stdout, os.Stderr)
}

// Options controls Run's output format.
type Options struct {
	// JSON switches diagnostic output from the human path:line:col lines
	// to the machine-readable framework.JSONDiagnostic array shared with
	// `alepatch -check -json` and CI.
	JSON bool
}

// Run loads the patterns (resolved in dir, "" = cwd), applies the suite,
// and writes diagnostics to out and errors to errw. It returns an exit
// code.
func Run(dir string, patterns []string, out, errw io.Writer) int {
	return RunOpts(Options{}, dir, patterns, out, errw)
}

// RunOpts is Run with explicit output options.
func RunOpts(opts Options, dir string, patterns []string, out, errw io.Writer) int {
	pkgs, err := framework.Load(dir, patterns...)
	if err != nil {
		fmt.Fprintf(errw, "alelint: %v\n", err)
		return ExitError
	}
	diags, err := framework.RunAnalyzers(pkgs, Analyzers)
	if err != nil {
		fmt.Fprintf(errw, "alelint: %v\n", err)
		return ExitError
	}
	// All packages from one Load share a FileSet; any package's works for
	// position resolution.
	fset := pkgs[0].Fset
	if opts.JSON {
		if err := framework.WriteJSONDiagnostics(out, fset, diags); err != nil {
			fmt.Fprintf(errw, "alelint: %v\n", err)
			return ExitError
		}
	} else {
		for _, d := range diags {
			pos := fset.Position(d.Pos)
			fmt.Fprintf(out, "%s: %s (%s)\n", pos, d.Message, d.Analyzer)
		}
	}
	if len(diags) == 0 {
		return ExitClean
	}
	return ExitDiags
}

func firstLine(s string) string {
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			return s[:i]
		}
	}
	return s
}
