// Package validatebeforeuse enforces the paper's Figure-1 discipline on
// software-optimistic paths: a value read under a ReadStable marker
// version is untrusted until a Validate (or ValidateIn) confirms the
// version, so using it — as an index, in arithmetic, in a branch
// condition — or committing the section (returning nil) before
// validating is a latent corruption bug that only fires under contention.
//
// The analysis is a forward may-dataflow over the CFG of any function
// that calls ReadStable. After ReadStable, every ExecCtx.Load result is
// tainted; a validation guard (`if !ec.Validate(mk, v) { return ... }` or
// the marker-method form) clears all taint on its success edge. A tainted
// value may be copied verbatim (x := p, h.f = p) but any computing use
// before validation is reported, as is a `return nil` while unvalidated
// loads are outstanding.
package validatebeforeuse

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis/aleutil"
	"repro/internal/analysis/cfgutil"
	"repro/internal/analysis/framework"
)

// Analyzer is the validatebeforeuse analyzer.
var Analyzer = &framework.Analyzer{
	Name: "validatebeforeuse",
	Doc: "check that optimistic reads under a ReadStable version are validated before use\n\n" +
		"SWOpt bodies must re-check the conflict marker (Validate/ValidateIn)\n" +
		"after loading shared data and before using the loaded values or\n" +
		"committing, per the paper's Figure 1.",
	Run: run,
}

func run(pass *framework.Pass) error {
	for _, fn := range aleutil.FuncsWithExecCtx(pass.TypesInfo, pass.Files) {
		if callsReadStable(pass.TypesInfo, fn.Body) {
			checkFunc(pass, fn.Body)
		}
	}
	return nil
}

func callsReadStable(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok && isReadStable(info, call) {
			found = true
		}
		return !found
	})
	return found
}

func isReadStable(info *types.Info, call *ast.CallExpr) bool {
	return aleutil.MarkerCall(info, call) == "ReadStable" ||
		aleutil.ExecCtxCall(info, call) == "ReadStable"
}

func isValidate(info *types.Info, call *ast.CallExpr) bool {
	switch aleutil.MarkerCall(info, call) {
	case "Validate", "ValidateIn":
		return true
	}
	switch aleutil.ExecCtxCall(info, call) {
	case "Validate", "ValidateIn":
		return true
	}
	return false
}

func isLoad(info *types.Info, call *ast.CallExpr) bool {
	switch aleutil.ExecCtxCall(info, call) {
	case "Load", "Add":
		return true
	}
	return false
}

// state is the dataflow fact at a program point.
type state struct {
	armed bool // a ReadStable has executed on this path
	dirty bool // some load since the last validation (or since arming)
	vars  map[types.Object]bool
}

func newState() state { return state{vars: map[types.Object]bool{}} }

func (s state) clone() state {
	c := state{armed: s.armed, dirty: s.dirty, vars: make(map[types.Object]bool, len(s.vars))}
	for k, v := range s.vars {
		c.vars[k] = v
	}
	return c
}

func (s *state) merge(o state) bool {
	changed := false
	if o.armed && !s.armed {
		s.armed, changed = true, true
	}
	if o.dirty && !s.dirty {
		s.dirty, changed = true, true
	}
	for k := range o.vars {
		if !s.vars[k] {
			s.vars[k], changed = true, true
		}
	}
	return changed
}

func (s *state) clearTaint() {
	s.dirty = false
	s.vars = map[types.Object]bool{}
}

type checker struct {
	pass     *framework.Pass
	info     *types.Info
	reported map[token.Pos]bool
}

func checkFunc(pass *framework.Pass, body *ast.BlockStmt) {
	g := cfgutil.New(body)
	ck := &checker{pass: pass, info: pass.TypesInfo, reported: map[token.Pos]bool{}}

	in := make([]state, len(g.Blocks))
	for i := range in {
		in[i] = newState()
	}
	work := []*cfgutil.Block{g.Entry}
	inQueue := map[*cfgutil.Block]bool{g.Entry: true}
	for len(work) > 0 {
		b := work[0]
		work, inQueue[b] = work[1:], false
		outTrue, outFalse := ck.transfer(b, in[b.Index].clone())
		for i, succ := range b.Succs {
			out := outTrue
			if b.Cond != nil && i == 1 {
				out = outFalse
			}
			if in[succ.Index].merge(out) && !inQueue[succ] {
				work = append(work, succ)
				inQueue[succ] = true
			}
		}
	}
}

// transfer runs the block's nodes over st, reporting violations, and
// returns the out-states for the true and false edges (identical unless
// the block ends in a validation-guard condition).
func (ck *checker) transfer(b *cfgutil.Block, st state) (outTrue, outFalse state) {
	for i, n := range b.Nodes {
		isCondNode := b.Cond != nil && i == len(b.Nodes)-1
		switch n := n.(type) {
		case ast.Stmt:
			ck.stmt(n, &st)
		case ast.Expr:
			if isCondNode {
				return ck.condition(n, st)
			}
			ck.checkUses(n, &st)
		}
	}
	return st, st
}

// condition handles a branch condition, splitting the out-state when the
// condition implies a successful validation on one edge.
func (ck *checker) condition(cond ast.Expr, st state) (onTrue, onFalse state) {
	// Polarity: does one edge prove "Validate returned true"?
	//   if ec.Validate(mk, v)      -> true edge validated
	//   if !ec.Validate(mk, v)     -> false edge validated
	//   if a || !ec.Validate(...)  -> false edge validated (all terms false)
	//   if a && ec.Validate(...)   -> true edge validated (all terms true)
	if validatedEdge, ok := ck.validatePolarity(cond); ok {
		// The condition's own subexpressions are evaluated before the
		// branch; check them for tainted uses (the validate call's
		// arguments are version/marker values, which are never tainted
		// unless the code is wrong — in which case reporting is right).
		ck.checkUses(cond, &st)
		clean := st.clone()
		clean.clearTaint()
		if validatedEdge {
			return clean, st
		}
		return st, clean
	}
	ck.checkUses(cond, &st)
	return st, st
}

// validatePolarity reports (edgeThatProvesValidation, found) for cond.
func (ck *checker) validatePolarity(cond ast.Expr) (trueEdge bool, ok bool) {
	switch e := ast.Unparen(cond).(type) {
	case *ast.CallExpr:
		if isValidate(ck.info, e) {
			return true, true
		}
	case *ast.UnaryExpr:
		if e.Op == token.NOT {
			if t, ok := ck.validatePolarity(e.X); ok {
				return !t, true
			}
		}
	case *ast.BinaryExpr:
		switch e.Op {
		case token.LOR:
			// a || b false => both false: a validation term appearing with
			// false polarity is proven true on the false edge.
			for _, sub := range []ast.Expr{e.X, e.Y} {
				if t, ok := ck.validatePolarity(sub); ok && !t {
					return false, true
				}
			}
		case token.LAND:
			for _, sub := range []ast.Expr{e.X, e.Y} {
				if t, ok := ck.validatePolarity(sub); ok && t {
					return true, true
				}
			}
		}
	}
	return false, false
}

func (ck *checker) stmt(s ast.Stmt, st *state) {
	switch s := s.(type) {
	case *ast.AssignStmt:
		ck.assign(s, st)
	case *ast.ReturnStmt:
		ck.ret(s, st)
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			ck.call(call, st)
			return
		}
		ck.checkUses(s.X, st)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for i, name := range vs.Names {
						var rhs ast.Expr
						if i < len(vs.Values) {
							rhs = vs.Values[i]
						}
						ck.assignOne(name, rhs, st)
					}
				}
			}
		}
	case *ast.IncDecStmt:
		ck.checkUses(s.X, st)
	case *ast.SendStmt:
		ck.checkUses(s.Chan, st)
		ck.checkUses(s.Value, st)
	case *ast.BranchStmt, *ast.DeferStmt, *ast.GoStmt, *ast.EmptyStmt:
		// defer/go bodies run outside this path's validation window;
		// irrevocable and lockdiscipline cover them.
	case *ast.RangeStmt:
		ck.checkUses(s.X, st)
	default:
		ck.checkUses(s, st)
	}
}

// assign handles taint creation (x := ec.Load(...)), propagation
// (y := x), and checking of computing right-hand sides.
func (ck *checker) assign(s *ast.AssignStmt, st *state) {
	// Position-matched only for 1:1 and n:n forms.
	if len(s.Lhs) == len(s.Rhs) {
		for i := range s.Lhs {
			ck.assignOne(s.Lhs[i], s.Rhs[i], st)
		}
		return
	}
	for _, r := range s.Rhs {
		ck.checkUses(r, st)
	}
	for _, l := range s.Lhs {
		ck.checkWriteTarget(l, st)
	}
}

func (ck *checker) assignOne(lhs, rhs ast.Expr, st *state) {
	ck.checkWriteTarget(lhs, st)
	var taintLHS bool
	switch r := ast.Unparen(rhs).(type) {
	case nil:
	case *ast.CallExpr:
		if st.armed && isLoad(ck.info, r) {
			// The canonical taint source. Its argument (&shared.cell) may
			// itself involve tainted indices — check it.
			for _, a := range r.Args {
				ck.checkUses(a, st)
			}
			st.dirty = true
			taintLHS = true
		} else {
			ck.call(r, st)
		}
	case *ast.Ident:
		if obj := ck.info.ObjectOf(r); obj != nil && st.vars[obj] {
			taintLHS = true // verbatim copy keeps the taint, legally
		}
	default:
		ck.checkUses(rhs, st)
	}
	if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
		if obj := ck.info.ObjectOf(id); obj != nil {
			if taintLHS {
				st.vars[obj] = true
			} else {
				delete(st.vars, obj) // overwritten with a clean value
			}
		}
	}
}

// call handles a call expression in statement position: validations clear
// taint, ReadStable (re-)arms, loads taint the dirty flag, everything
// else has its arguments checked.
func (ck *checker) call(call *ast.CallExpr, st *state) {
	switch {
	case isValidate(ck.info, call):
		// A validation whose result is ignored still proves nothing —
		// but the engine idiom never does this, and flagging ignored
		// results is vet's job. Treat it as clearing to avoid cascades.
		st.clearTaint()
	case isReadStable(ck.info, call):
		st.armed = true
		st.clearTaint()
	case st.armed && isLoad(ck.info, call):
		for _, a := range call.Args {
			ck.checkUses(a, st)
		}
		st.dirty = true
	default:
		ck.checkUses(call.Fun, st)
		for _, a := range call.Args {
			ck.checkUses(a, st)
		}
	}
}

// ret checks a return statement: returning nil (committing the optimistic
// section) with unvalidated loads outstanding is a violation; returning a
// tainted value is too.
func (ck *checker) ret(s *ast.ReturnStmt, st *state) {
	for _, r := range s.Results {
		ck.checkUses(r, st)
	}
	if !st.armed || !st.dirty {
		return
	}
	if len(s.Results) == 1 {
		if id, ok := ast.Unparen(s.Results[0]).(*ast.Ident); ok && id.Name == "nil" {
			ck.reportf(s.Pos(), "optimistic section returns success with loads not yet validated (call Validate/ValidateIn after the last Load and before returning nil)")
		}
	}
}

// checkWriteTarget checks the expression parts of an assignment target
// (index expressions, field bases) for tainted uses.
func (ck *checker) checkWriteTarget(lhs ast.Expr, st *state) {
	switch l := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		// plain variable: nothing evaluated
	case *ast.IndexExpr:
		ck.checkUses(l.X, st)
		ck.checkUses(l.Index, st)
	case *ast.StarExpr:
		ck.checkUses(l.X, st)
	case *ast.SelectorExpr:
		ck.checkUses(l.X, st)
	default:
		ck.checkUses(lhs, st)
	}
}

// checkUses reports every reference to a tainted variable inside expr,
// except references that are themselves the whole expression of a
// verbatim copy (handled by assignOne) or arguments to Validate calls.
func (ck *checker) checkUses(n ast.Node, st *state) {
	if n == nil || len(st.vars) == 0 {
		return
	}
	ast.Inspect(n, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			if isValidate(ck.info, x) || isReadStable(ck.info, x) {
				return false
			}
			if st.armed && isLoad(ck.info, x) {
				st.dirty = true // load embedded in a larger expression
			}
		case *ast.Ident:
			if obj := ck.info.ObjectOf(x); obj != nil && st.vars[obj] {
				ck.reportf(x.Pos(), "%s is read under a ReadStable version and used before Validate confirms it (validate first, then use)", x.Name)
			}
		}
		return true
	})
}

func (ck *checker) reportf(pos token.Pos, format string, args ...any) {
	if ck.reported[pos] {
		return
	}
	ck.reported[pos] = true
	ck.pass.Reportf(pos, format, args...)
}
