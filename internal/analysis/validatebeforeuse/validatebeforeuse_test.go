package validatebeforeuse_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/validatebeforeuse"
)

func TestValidateBeforeUse(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), validatebeforeuse.Analyzer, "a")
}
