// Package a is the validatebeforeuse golden fixture: optimistic-read
// shapes that do and do not respect the ReadStable/Validate discipline.
package a

import (
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/tm"
)

type st struct {
	mk   *core.ConflictMarker
	val  tm.Var
	next tm.Var
	out  uint64
	ok   bool
}

// Canonical pattern: load, validate, then publish. Clean.
func (s *st) goodGet(ec *core.ExecCtx) error {
	v := s.mk.ReadStable()
	x := ec.Load(&s.val)
	if !s.mk.Validate(v) {
		return ec.SWOptFail()
	}
	s.out = x
	s.ok = true
	return nil
}

// Computing with the loaded value before validating.
func (s *st) badUse(ec *core.ExecCtx) error {
	v := s.mk.ReadStable()
	x := ec.Load(&s.val)
	s.out = x + 1 // want `used before Validate confirms it`
	if !s.mk.Validate(v) {
		return ec.SWOptFail()
	}
	return nil
}

// Branching on the loaded value before validating.
func (s *st) badBranch(ec *core.ExecCtx) error {
	v := s.mk.ReadStable()
	x := ec.Load(&s.val)
	if x == 0 { // want `used before Validate confirms it`
		return ec.SWOptFail()
	}
	if !s.mk.Validate(v) {
		return ec.SWOptFail()
	}
	s.out = x
	return nil
}

// Committing (returning nil) with unvalidated loads outstanding.
func (s *st) badReturn(ec *core.ExecCtx) error {
	v := s.mk.ReadStable()
	s.out = ec.Load(&s.val)
	_ = v
	return nil // want `returns success with loads not yet validated`
}

// Using a tainted value as a load address before validating.
func (s *st) badIndex(ec *core.ExecCtx, arr []tm.Var) error {
	v := s.mk.ReadStable()
	idx := ec.Load(&s.next)
	x := ec.Load(&arr[idx]) // want `used before Validate confirms it`
	if !s.mk.Validate(v) {
		return ec.SWOptFail()
	}
	s.out = x
	return nil
}

// Short-circuit guard `a || !Validate`: the fallthrough edge proves the
// validation. Clean (the repo's interference-check idiom).
func (s *st) goodGuard(ec *core.ExecCtx, interference *atomic.Bool) error {
	v := s.mk.ReadStable()
	x := ec.Load(&s.val)
	if interference.Load() || !s.mk.Validate(v) {
		return ec.SWOptFail()
	}
	s.out = x
	return nil
}

// Positive-polarity guard `if Validate { use }`. Clean.
func (s *st) goodPositive(ec *core.ExecCtx) error {
	v := s.mk.ReadStable()
	x := ec.Load(&s.val)
	if s.mk.Validate(v) {
		s.out = x
		return nil
	}
	return ec.SWOptFail()
}

// Chained loads with a validation between hops (the list-walk idiom).
// Clean: each hop is validated before the next dereference.
func (s *st) goodWalk(ec *core.ExecCtx, nodes []tm.Var) error {
	v := s.mk.ReadStable()
	i := ec.Load(&s.next)
	if !s.mk.Validate(v) {
		return ec.SWOptFail()
	}
	x := ec.Load(&nodes[i])
	if !s.mk.Validate(v) {
		return ec.SWOptFail()
	}
	s.out = x
	return nil
}

// ValidateIn (the ExecCtx-aware form) clears taint too. Clean.
func (s *st) goodValidateIn(ec *core.ExecCtx) error {
	v := s.mk.ReadStable()
	x := ec.Load(&s.val)
	if !s.mk.ValidateIn(ec, v) {
		return ec.SWOptFail()
	}
	s.out = x
	return nil
}

// Functions that never ReadStable are out of scope: plain Loads in
// lock/HTM-mode bodies are trusted. Clean.
func (s *st) noReadStable(ec *core.ExecCtx) error {
	s.out = ec.Load(&s.val) + 1
	return nil
}
