// Package epoch implements three-epoch epoch-based reclamation (EBR) for
// memory that lock-free readers may still hold references to after it has
// been logically retired.
//
// The sharded substrate needs it in two places:
//
//   - internal/core's partitioned granule table: readers probe
//     atomic.Pointer segments without locks; a resize installs a new
//     segment and retires the old one, which can only be reused after
//     every in-flight probe has drained.
//   - internal/tm's pooled transaction spill maps: a map released back to
//     the pool at cleanup must not be handed out again while a diagnostic
//     reader (snapshot, invariant checker) could still be iterating it.
//
// The scheme is the classic one (Fraser 2004; Hart et al. 2007): a global
// epoch counter advances through values mod 3; each participant publishes
// (epoch, active) on entry to a read-side critical section; retired objects
// are binned by the epoch they were retired in; a bin is freed once the
// global epoch has advanced twice past it, because by then every
// participant pinned during the object's live window has unpinned.
//
// Pin/Unpin are designed for the transaction hot path: one atomic store
// each, no CAS, no allocation. TryAdvance and Retire take a mutex and are
// expected on cold paths only (pool high-water trims, table resizes).
package epoch

import (
	"sync"
	"sync/atomic"
)

// numEpochs is the classic three-epoch window: a retired object waits out
// two global advances, guaranteeing no pinned participant can still have
// observed it.
const numEpochs = 3

// Pin is one participant's published read-side state. The word packs
// (epoch << 1) | active. Participants are registered once (Domain
// transactions at construction, core threads at registration) and then
// pin/unpin around every read-side critical section.
//
// A Pin must not be used concurrently from multiple goroutines — it
// represents one thread, exactly like tm.Txn.
type Pin struct {
	state atomic.Uint64
	dom   *Reclaimer
	// pad keeps hot per-thread pins off each other's cache lines.
	_ [48]byte
}

// Reclaimer owns the global epoch and the retire bins. One Reclaimer
// serves one reclamation domain (a tm.Domain, a core.Runtime); objects
// retired into it are freed by whichever participant's TryAdvance
// observes quiescence.
type Reclaimer struct {
	epoch atomic.Uint64

	mu   sync.Mutex
	pins []*Pin
	// bins[e mod numEpochs] holds objects retired while the global epoch
	// was ≡ e. The bin for epoch e-2 (mod 3 ≡ e+1) is safe to free when
	// the epoch advances from e to e+1.
	bins [numEpochs][]retired
}

type retired struct {
	free func()
}

// New creates an empty Reclaimer at epoch 0.
func New() *Reclaimer { return &Reclaimer{} }

// Register creates and tracks a new participant pin. Pins live as long as
// the Reclaimer; there is deliberately no Unregister — participants
// (worker threads, pooled transactions) have runtime lifetime in this
// codebase, and an idle pin (inactive) never blocks advancement.
func (r *Reclaimer) Register() *Pin {
	p := &Pin{dom: r}
	r.mu.Lock()
	r.pins = append(r.pins, p)
	r.mu.Unlock()
	return p
}

// Enter pins the participant in the current global epoch. It must be
// paired with Exit. Enter/Exit do not nest; callers that may re-enter
// (core threads running nested Executes) guard with their own depth
// counter.
func (p *Pin) Enter() {
	e := p.dom.epoch.Load()
	// Publish (epoch, active). The store is sequentially consistent
	// (atomic.Uint64.Store), so a TryAdvance that later reads our state
	// either sees us active in e — and refuses to advance past us — or
	// sees the result of a later Exit/Enter.
	p.state.Store(e<<1 | 1)
}

// Exit unpins the participant.
func (p *Pin) Exit() {
	// Keep the epoch bits: TryAdvance only cares about the active bit,
	// but keeping the last epoch visible is useful in tests.
	p.state.Store(p.state.Load() &^ 1)
}

// Active reports whether the pin is currently inside a read-side critical
// section (diagnostic use).
func (p *Pin) Active() bool { return p.state.Load()&1 == 1 }

// Retire schedules free to run once every participant that could have
// observed the object has quiesced (two epoch advances from now). free
// runs under the Reclaimer's mutex during a later TryAdvance — keep it
// cheap (pool put, slice drop).
func (r *Reclaimer) Retire(free func()) {
	r.mu.Lock()
	e := r.epoch.Load()
	r.bins[e%numEpochs] = append(r.bins[e%numEpochs], retired{free: free})
	r.mu.Unlock()
}

// TryAdvance attempts one epoch advance: if every registered pin is
// either inactive or already pinned in the current epoch, the global
// epoch moves forward and the bin retired two epochs ago is freed. It
// returns whether the epoch advanced. Callers invoke it opportunistically
// from cold paths; a stalled reader (pinned in an old epoch) makes it
// return false without blocking anyone.
func (r *Reclaimer) TryAdvance() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	e := r.epoch.Load()
	for _, p := range r.pins {
		s := p.state.Load()
		if s&1 == 1 && s>>1 != e {
			return false // active in an older epoch: not yet quiescent
		}
	}
	next := e + 1
	r.epoch.Store(next)
	// Everything retired in epoch next-2 is now unreachable: participants
	// active during that epoch have since unpinned (we just checked no
	// one is active outside epoch e), and new pins start in next.
	idx := (next + 1) % numEpochs // ≡ (next - 2) mod 3
	bin := r.bins[idx]
	r.bins[idx] = nil
	for _, obj := range bin {
		obj.free()
	}
	return true
}

// Epoch returns the current global epoch (diagnostic/test use).
func (r *Reclaimer) Epoch() uint64 { return r.epoch.Load() }

// Pending returns the number of retired objects not yet freed
// (diagnostic/test use).
func (r *Reclaimer) Pending() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for i := range r.bins {
		n += len(r.bins[i])
	}
	return n
}
