package epoch

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestRetireWaitsTwoAdvances: an object retired in epoch E must survive
// the advance to E+1 (participants pinned in E may still hold it) and be
// freed on the advance to E+2.
func TestRetireWaitsTwoAdvances(t *testing.T) {
	r := New()
	freed := false
	r.Retire(func() { freed = true })
	if r.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1", r.Pending())
	}
	if !r.TryAdvance() {
		t.Fatal("advance 1 refused with no active pins")
	}
	if freed {
		t.Fatal("object freed after one advance")
	}
	if !r.TryAdvance() {
		t.Fatal("advance 2 refused")
	}
	if !freed {
		t.Fatal("object not freed after two advances")
	}
	if r.Pending() != 0 {
		t.Fatalf("Pending = %d after free, want 0", r.Pending())
	}
}

// TestActivePinBlocksAdvance: a participant pinned in an older epoch
// blocks TryAdvance until it exits; an inactive pin never blocks.
func TestActivePinBlocksAdvance(t *testing.T) {
	r := New()
	p := r.Register()
	q := r.Register() // never enters; must not block

	p.Enter()
	if !r.TryAdvance() {
		// p is pinned in the *current* epoch, so advancement is allowed.
		t.Fatal("pin in current epoch blocked advance")
	}
	// Now p is pinned in epoch 0 while the global epoch is 1.
	if r.TryAdvance() {
		t.Fatal("advance succeeded past a pin active in an older epoch")
	}
	p.Exit()
	if !r.TryAdvance() {
		t.Fatal("advance refused after the stale pin exited")
	}
	_ = q
	if got := r.Epoch(); got != 2 {
		t.Fatalf("Epoch = %d, want 2", got)
	}
}

// TestStalePinHoldsItsBin: the full unlink→retire→free protocol. A reader
// pinned before an object is retired must be able to use it until Exit,
// no matter how many TryAdvance calls happen meanwhile.
func TestStalePinHoldsItsBin(t *testing.T) {
	r := New()
	p := r.Register()

	obj := new(atomic.Uint64)
	obj.Store(42)

	p.Enter() // reader acquires a reference window
	r.Retire(func() { obj.Store(0) })

	for i := 0; i < 10; i++ {
		r.TryAdvance()
	}
	if got := obj.Load(); got != 42 {
		t.Fatalf("object mutated while a pre-retirement pin is active: %d", got)
	}
	p.Exit()
	for i := 0; i < 3; i++ {
		r.TryAdvance()
	}
	if got := obj.Load(); got != 0 {
		t.Fatal("object never freed after the pin exited")
	}
}

// TestChurn (-race): concurrent Enter/Exit/Retire/TryAdvance. Each worker
// retires objects that flip their own flag; the test asserts every
// retired object is eventually freed exactly once and that no free runs
// while the retiring worker is still pinned in its pre-retirement window.
func TestChurn(t *testing.T) {
	r := New()
	const workers = 8
	const rounds = 200
	var freed atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p := r.Register()
			for i := 0; i < rounds; i++ {
				p.Enter()
				// Simulated read-side work touching shared state.
				_ = r.Epoch()
				p.Exit()
				r.Retire(func() { freed.Add(1) })
				r.TryAdvance()
			}
		}()
	}
	wg.Wait()
	// Drain: everything retired must free within a bounded number of
	// quiescent advances.
	for i := 0; i < numEpochs; i++ {
		if !r.TryAdvance() {
			t.Fatal("advance refused with all workers done")
		}
	}
	if got := freed.Load(); got != workers*rounds {
		t.Fatalf("freed %d objects, want %d", got, workers*rounds)
	}
	if r.Pending() != 0 {
		t.Fatalf("Pending = %d after drain, want 0", r.Pending())
	}
}

// TestEnterExitReuse: a pin cycles through many epochs correctly and
// Active reflects its state.
func TestEnterExitReuse(t *testing.T) {
	r := New()
	p := r.Register()
	for i := 0; i < 5; i++ {
		if p.Active() {
			t.Fatalf("round %d: Active before Enter", i)
		}
		p.Enter()
		if !p.Active() {
			t.Fatalf("round %d: not Active after Enter", i)
		}
		p.Exit()
		if !r.TryAdvance() {
			t.Fatalf("round %d: advance refused after Exit", i)
		}
	}
}
