// Package intset applies the ALE methodology to a second data structure —
// a single-lock sorted linked-list integer set — the direction the paper's
// concluding remarks describe ("applying these techniques to a wider range
// of benchmarks and applications").
//
// The set stresses a dimension the HashMap does not: *long traversals*.
// A Contains over an n-element list reads O(n) cells, so on a platform
// with tight HTM capacity (the Rock profile: 64-cell read sets) hardware
// transactions stop committing as the set grows, while the SWOpt path —
// validation-based, no capacity limit — keeps working. The adaptive policy
// must discover this per platform: HTM on Haswell, SWOpt on Rock for large
// sets, the lock on neither unless forced. The intset tests and the
// capacity-crossover benchmark pin that behaviour down.
//
// Structure and idioms mirror internal/hashmap: arena nodes addressed by
// index+1, per-handle free lists with commit-deferred recycling, a
// conflict marker bumped around structural changes, Figure-1-style
// validation in the optimistic path.
package intset

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/locks"
	"repro/internal/tm"
)

// ErrFull reports node-arena exhaustion.
var ErrFull = errors.New("intset: node arena exhausted")

type node struct {
	key  tm.Var
	next tm.Var // index+1; 0 terminates
}

// Set is the ALE-integrated sorted set. Keys are uint64 in (0, MaxUint64):
// 0 is reserved (nil marker) and MaxUint64 is the tail sentinel.
type Set struct {
	rt     *core.Runtime
	lock   *core.Lock
	marker *core.ConflictMarker
	head   tm.Var // index+1 of the first real node
	nodes  []node
	chunk  tm.Var

	scopeContains, scopeInsert, scopeRemove, scopeLen *core.Scope
}

// New builds a set with the given arena capacity, governed by policy.
func New(rt *core.Runtime, name string, capacity int, policy core.Policy) *Set {
	if capacity < 1 {
		panic("intset: non-positive capacity")
	}
	d := rt.Domain()
	s := &Set{
		rt:    rt,
		lock:  rt.NewLock(name, locks.NewTATAS(d), policy),
		nodes: make([]node, capacity),

		scopeContains: core.NewScope(name + ".Contains"),
		scopeInsert:   core.NewScope(name + ".Insert"),
		scopeRemove:   core.NewScope(name + ".Remove"),
		scopeLen:      core.NewScope(name + ".Len"),
	}
	s.marker = s.lock.NewMarker()
	d.InitVar(&s.head, 0)
	d.InitVar(&s.chunk, 0)
	for i := range s.nodes {
		d.InitVar(&s.nodes[i].key, 0)
		d.InitVar(&s.nodes[i].next, 0)
	}
	return s
}

// Lock exposes the ALE lock (reports, tests).
func (s *Set) Lock() *core.Lock { return s.lock }

// Capacity returns the arena size.
func (s *Set) Capacity() int { return len(s.nodes) }

const chunkSize = 64

// Handle is a per-goroutine accessor.
type Handle struct {
	s   *Set
	thr *core.Thread

	free        []uint64
	chunkBase   uint64
	chunkEnd    uint64
	pendingNode uint64

	argKey uint64
	retOK  bool
	retN   int
	toFree uint64

	csContains, csInsert, csRemove, csLen core.CS
}

// NewHandle creates a per-goroutine handle with its own ALE thread.
func (s *Set) NewHandle() *Handle { return s.NewHandleWithThread(s.rt.NewThread()) }

// NewHandleWithThread creates a handle on an existing thread.
func (s *Set) NewHandleWithThread(thr *core.Thread) *Handle {
	h := &Handle{s: s, thr: thr}
	h.buildCS()
	return h
}

// Thread exposes the handle's ALE thread.
func (h *Handle) Thread() *core.Thread { return h.thr }

func (h *Handle) alloc() uint64 {
	if h.pendingNode != 0 {
		return h.pendingNode
	}
	var idx uint64
	if n := len(h.free); n > 0 {
		idx = h.free[n-1]
		h.free = h.free[:n-1]
	} else {
		if h.chunkBase >= h.chunkEnd {
			base := h.s.chunk.AddDirect(chunkSize)
			if base > uint64(len(h.s.nodes)) {
				return 0
			}
			h.chunkBase, h.chunkEnd = base-chunkSize+1, base+1
		}
		idx = h.chunkBase
		h.chunkBase++
	}
	h.pendingNode = idx
	return idx
}

func checkKey(key uint64) error {
	if key == 0 || key == ^uint64(0) {
		return fmt.Errorf("intset: reserved key %d", key)
	}
	return nil
}

// Contains reports whether key is in the set. The critical section has a
// validated SWOpt path.
func (h *Handle) Contains(key uint64) (bool, error) {
	if err := checkKey(key); err != nil {
		return false, err
	}
	h.argKey = key
	err := h.s.lock.Execute(h.thr, &h.csContains)
	return h.retOK, err
}

// Insert adds key, reporting whether it was newly added.
func (h *Handle) Insert(key uint64) (bool, error) {
	if err := checkKey(key); err != nil {
		return false, err
	}
	h.argKey = key
	err := h.s.lock.Execute(h.thr, &h.csInsert)
	if err == nil && h.retOK {
		h.pendingNode = 0
	}
	return h.retOK, err
}

// Remove deletes key, reporting whether it was present.
func (h *Handle) Remove(key uint64) (bool, error) {
	if err := checkKey(key); err != nil {
		return false, err
	}
	h.argKey = key
	h.toFree = 0
	err := h.s.lock.Execute(h.thr, &h.csRemove)
	if err == nil && h.toFree != 0 {
		h.free = append(h.free, h.toFree)
		h.toFree = 0
	}
	return h.retOK, err
}

// Len counts elements under the lock (diagnostic; NoHTM).
func (h *Handle) Len() (int, error) {
	err := h.s.lock.Execute(h.thr, &h.csLen)
	return h.retN, err
}

func (h *Handle) buildCS() {
	s := h.s

	// Contains: the optimistic path walks the sorted list validating
	// after every dependent load (Figure 1's discipline applied to a
	// list); the exclusive path is the plain walk.
	h.csContains = core.CS{
		Scope:    s.scopeContains,
		HasSWOpt: true,
		Body: func(ec *core.ExecCtx) error {
			h.retOK = false
			key := h.argKey
			if ec.InSWOpt() {
				v := ec.ReadStable(s.marker)
				p := ec.Load(&s.head)
				if !ec.Validate(s.marker, v) {
					return ec.SWOptFail()
				}
				for p != 0 {
					if p > uint64(len(s.nodes)) {
						return ec.SWOptFail()
					}
					nd := &s.nodes[p-1]
					k := ec.Load(&nd.key)
					if !ec.Validate(s.marker, v) {
						return ec.SWOptFail()
					}
					if k >= key {
						h.retOK = k == key
						return nil
					}
					p = ec.Load(&nd.next)
					if !ec.Validate(s.marker, v) {
						return ec.SWOptFail()
					}
				}
				return nil
			}
			for p := ec.Load(&s.head); p != 0; {
				nd := &s.nodes[p-1]
				k := ec.Load(&nd.key)
				if k >= key {
					h.retOK = k == key
					return nil
				}
				p = ec.Load(&nd.next)
			}
			return nil
		},
	}

	// Insert: exclusive search for the insertion point, link inside the
	// conflicting region.
	h.csInsert = core.CS{
		Scope:       s.scopeInsert,
		Conflicting: true,
		Body: func(ec *core.ExecCtx) error {
			h.retOK = false
			key := h.argKey
			prev := uint64(0)
			p := ec.Load(&s.head)
			for p != 0 {
				nd := &s.nodes[p-1]
				k := ec.Load(&nd.key)
				if k == key {
					return nil // already present
				}
				if k > key {
					break
				}
				prev = p
				p = ec.Load(&nd.next)
			}
			idx := h.alloc()
			if idx == 0 {
				return ErrFull
			}
			nd := &s.nodes[idx-1]
			ec.Store(&nd.key, key)
			ec.Store(&nd.next, p)
			s.marker.BeginConflicting(ec)
			if prev == 0 {
				ec.Store(&s.head, idx)
			} else {
				ec.Store(&s.nodes[prev-1].next, idx)
			}
			s.marker.EndConflicting(ec)
			h.retOK = true
			return nil
		},
	}

	// Remove: exclusive search, unlink inside the conflicting region.
	h.csRemove = core.CS{
		Scope:       s.scopeRemove,
		Conflicting: true,
		Body: func(ec *core.ExecCtx) error {
			h.retOK, h.toFree = false, 0
			key := h.argKey
			prev := uint64(0)
			for p := ec.Load(&s.head); p != 0; {
				nd := &s.nodes[p-1]
				k := ec.Load(&nd.key)
				if k > key {
					return nil
				}
				if k == key {
					next := ec.Load(&nd.next)
					s.marker.BeginConflicting(ec)
					if prev == 0 {
						ec.Store(&s.head, next)
					} else {
						ec.Store(&s.nodes[prev-1].next, next)
					}
					s.marker.EndConflicting(ec)
					h.toFree = p
					h.retOK = true
					return nil
				}
				prev = p
				p = ec.Load(&nd.next)
			}
			return nil
		},
	}

	h.csLen = core.CS{
		Scope: s.scopeLen,
		NoHTM: true,
		Body: func(ec *core.ExecCtx) error {
			h.retN = 0
			for p := ec.Load(&s.head); p != 0; {
				h.retN++
				p = ec.Load(&s.nodes[p-1].next)
			}
			return nil
		},
	}
}
