package intset_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/intset"
	"repro/internal/platform"
	"repro/internal/tm"
)

// Example shows the sorted-set API; Contains has a validated SWOpt path,
// so on a no-HTM platform lookups elide the lock optimistically.
func Example() {
	rt := core.NewRuntime(tm.NewDomain(platform.T2().Profile))
	s := intset.New(rt, "set", 1024, core.NewStatic(0, 10))
	h := s.NewHandle()

	for _, k := range []uint64{30, 10, 20} {
		if _, err := h.Insert(k); err != nil {
			fmt.Println("error:", err)
			return
		}
	}
	ok, _ := h.Contains(20)
	fmt.Println("contains 20:", ok)
	n, _ := h.Len()
	fmt.Println("size:", n)
	removed, _ := h.Remove(10)
	fmt.Println("removed 10:", removed)
	// Output:
	// contains 20: true
	// size: 3
	// removed 10: true
}
