package intset

import (
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/platform"
	"repro/internal/tm"
	"repro/internal/xrand"
)

func htmProfile() tm.Profile {
	return tm.Profile{Name: "test-htm", Enabled: true, ReadCap: 1 << 16, WriteCap: 1 << 16}
}

func noHTMProfile() tm.Profile {
	return tm.Profile{Name: "test-nohtm", Enabled: false}
}

func newSet(prof tm.Profile, pol core.Policy) *Set {
	rt := core.NewRuntime(tm.NewDomain(prof))
	return New(rt, "set", 8192, pol)
}

func TestSequentialBasics(t *testing.T) {
	s := newSet(htmProfile(), core.NewStatic(10, 10))
	h := s.NewHandle()
	if ok, _ := h.Contains(5); ok {
		t.Fatal("empty set contains 5")
	}
	if fresh, err := h.Insert(5); err != nil || !fresh {
		t.Fatalf("Insert(5) = (%v, %v)", fresh, err)
	}
	if fresh, _ := h.Insert(5); fresh {
		t.Fatal("duplicate Insert reported fresh")
	}
	for _, k := range []uint64{3, 9, 1, 7} {
		if _, err := h.Insert(k); err != nil {
			t.Fatal(err)
		}
	}
	for _, k := range []uint64{1, 3, 5, 7, 9} {
		if ok, _ := h.Contains(k); !ok {
			t.Errorf("Contains(%d) = false", k)
		}
	}
	for _, k := range []uint64{2, 4, 6, 8} {
		if ok, _ := h.Contains(k); ok {
			t.Errorf("Contains(%d) = true", k)
		}
	}
	if n, _ := h.Len(); n != 5 {
		t.Errorf("Len = %d, want 5", n)
	}
	if ok, _ := h.Remove(5); !ok {
		t.Fatal("Remove(5) missed")
	}
	if ok, _ := h.Remove(5); ok {
		t.Fatal("Remove(5) hit twice")
	}
	if n, _ := h.Len(); n != 4 {
		t.Errorf("Len after remove = %d, want 4", n)
	}
}

func TestReservedKeysRejected(t *testing.T) {
	s := newSet(htmProfile(), core.NewLockOnly())
	h := s.NewHandle()
	for _, k := range []uint64{0, ^uint64(0)} {
		if _, err := h.Insert(k); err == nil {
			t.Errorf("Insert(%d) accepted", k)
		}
		if _, err := h.Contains(k); err == nil {
			t.Errorf("Contains(%d) accepted", k)
		}
		if _, err := h.Remove(k); err == nil {
			t.Errorf("Remove(%d) accepted", k)
		}
	}
}

func TestSortedOrderMaintained(t *testing.T) {
	s := newSet(htmProfile(), core.NewStatic(10, 0))
	h := s.NewHandle()
	rng := xrand.New(3)
	model := map[uint64]bool{}
	for i := 0; i < 2000; i++ {
		k := rng.Uint64n(500) + 1
		if rng.Intn(3) == 0 {
			h.Remove(k)
			delete(model, k)
		} else {
			h.Insert(k)
			model[k] = true
		}
	}
	// Walk the list directly and check strict ascending order.
	prev := uint64(0)
	count := 0
	for p := s.head.LoadConsistent(); p != 0; {
		nd := &s.nodes[p-1]
		k := nd.key.LoadConsistent()
		if k <= prev {
			t.Fatalf("order violated: %d after %d", k, prev)
		}
		prev = k
		count++
		p = nd.next.LoadConsistent()
	}
	if count != len(model) {
		t.Errorf("list has %d elements, model has %d", count, len(model))
	}
}

func TestQuickMatchesModel(t *testing.T) {
	type op struct {
		Kind uint8
		Key  uint8
	}
	for _, tc := range []struct {
		name string
		prof tm.Profile
	}{{"htm", htmProfile()}, {"nohtm", noHTMProfile()}} {
		t.Run(tc.name, func(t *testing.T) {
			f := func(ops []op) bool {
				s := newSet(tc.prof, core.NewStatic(5, 5))
				h := s.NewHandle()
				model := map[uint64]bool{}
				for _, o := range ops {
					k := uint64(o.Key%50) + 1
					switch o.Kind % 3 {
					case 0:
						fresh, err := h.Insert(k)
						if err != nil || fresh == model[k] {
							return false
						}
						model[k] = true
					case 1:
						ok, err := h.Remove(k)
						if err != nil || ok != model[k] {
							return false
						}
						delete(model, k)
					case 2:
						ok, err := h.Contains(k)
						if err != nil || ok != model[k] {
							return false
						}
					}
				}
				n, err := h.Len()
				return err == nil && n == len(model)
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
				t.Error(err)
			}
		})
	}
}

func TestConcurrentTorture(t *testing.T) {
	for _, tc := range []struct {
		name string
		prof tm.Profile
		pol  func() core.Policy
	}{
		{"htm", htmProfile(), func() core.Policy { return core.NewStatic(8, 8) }},
		{"nohtm", noHTMProfile(), func() core.Policy { return core.NewStatic(0, 10) }},
		{"rock-capacity", platform.Rock().Profile, func() core.Policy { return core.NewStatic(8, 8) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rt := core.NewRuntime(tm.NewDomain(tc.prof))
			s := New(rt, "set", 1<<14, tc.pol())
			const workers, per, keyRange = 6, 3000, 128
			var wg sync.WaitGroup
			errCh := make(chan error, workers)
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(id int) {
					defer wg.Done()
					h := s.NewHandle()
					rng := xrand.New(uint64(id) + 1)
					for i := 0; i < per; i++ {
						k := rng.Uint64n(keyRange) + 1
						var err error
						switch rng.Intn(10) {
						case 0, 1, 2:
							_, err = h.Insert(k)
						case 3, 4:
							_, err = h.Remove(k)
						default:
							_, err = h.Contains(k)
						}
						if err != nil {
							errCh <- err
							return
						}
					}
				}(w)
			}
			wg.Wait()
			close(errCh)
			for err := range errCh {
				t.Fatal(err)
			}
			// Order invariant after the storm.
			prev := uint64(0)
			for p := s.head.LoadConsistent(); p != 0; {
				nd := &s.nodes[p-1]
				k := nd.key.LoadConsistent()
				if k <= prev {
					t.Fatalf("order violated after torture: %d after %d", k, prev)
				}
				prev = k
				p = nd.next.LoadConsistent()
			}
		})
	}
}

// TestCapacityCrossover pins the platform-adaptation story the package doc
// promises: on the Rock profile (64-cell read sets), Contains over a large
// set cannot commit in HTM — the engine must give up on HTM and the SWOpt
// path must carry the load; on the Haswell profile the same operations fit.
func TestCapacityCrossover(t *testing.T) {
	// A tail probe reads ~2 cells per node (key + next) plus the head:
	// 200 elements ≈ 401 cells — far past Rock's 64-cell read capacity,
	// comfortably inside Haswell's 512.
	const elements = 200
	run := func(plat platform.Platform) *Set {
		rt := core.NewRuntime(tm.NewDomain(plat.Profile))
		s := New(rt, "set", 4096, core.NewStatic(4, 10))
		h := s.NewHandle()
		for k := uint64(1); k <= elements; k++ {
			if _, err := h.Insert(k * 2); err != nil {
				t.Fatal(err)
			}
		}
		// Probe keys near the tail: traversal reads ~all elements.
		for i := 0; i < 500; i++ {
			if _, err := h.Contains(uint64(elements)*2 - uint64(i%10)*2); err != nil {
				t.Fatal(err)
			}
		}
		return s
	}
	sum := func(s *Set, m core.Mode) uint64 {
		var n uint64
		for _, g := range s.Lock().Granules() {
			if g.Label() == "set.Contains" {
				n += g.Successes(m)
			}
		}
		return n
	}
	rock := run(platform.Rock())
	if htm := sum(rock, core.ModeHTM); htm != 0 {
		t.Errorf("Rock: %d tail-probes committed in HTM despite capacity 64", htm)
	}
	if sw := sum(rock, core.ModeSWOpt); sw == 0 {
		t.Error("Rock: SWOpt never carried the tail probes")
	}
	hw := run(platform.Haswell())
	if htm := sum(hw, core.ModeHTM); htm == 0 {
		t.Error("Haswell: tail probes never committed in HTM despite capacity 512")
	}
}
