package obs

import (
	"testing"
)

// BenchmarkShardAdd measures the obs hot-path primitive: one uncontended
// atomic add into a thread-private shard. This is the entire per-execution
// cost of the observability layer on the success path.
func BenchmarkShardAdd(b *testing.B) {
	c := New()
	sh := c.NewShard()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sh.Add(CtrSuccessHTM)
	}
}

// BenchmarkShardAddParallel shows the sharding paying off: every goroutine
// adds into its own shard, so there is no cross-thread coherence traffic.
func BenchmarkShardAddParallel(b *testing.B) {
	c := New()
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		sh := c.NewShard()
		for pb.Next() {
			sh.Add(CtrSuccessSWOpt)
		}
	})
}

// BenchmarkSnapshot measures aggregation cost as shard count grows — the
// scrape-side cost a /metrics request pays.
func BenchmarkSnapshot(b *testing.B) {
	for _, shards := range []int{1, 16, 64} {
		b.Run(map[int]string{1: "1shard", 16: "16shards", 64: "64shards"}[shards], func(b *testing.B) {
			c := New()
			for i := 0; i < shards; i++ {
				c.NewShard().Add(CtrSuccessHTM)
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_ = c.Snapshot()
			}
		})
	}
}
