package obs

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"

	"repro/internal/stats"
)

func TestExemplarObserveAndRows(t *testing.T) {
	tab := NewExemplarTable()
	tab.SetMinLatency(0)

	tab.Observe(HistExecHTM, Exemplar{
		LatNS: 50_000, Lock: "kv", Granule: "kv/get", Mode: 1,
		Attempts: 3, AbortMask: 1 << 1, WastedNS: 30_000, RequestID: 9,
	})
	tab.Observe(HistExecLock, Exemplar{LatNS: 200_000, Lock: "kv", Granule: "kv/set", Mode: 0, Attempts: 1})

	rows := tab.Rows()
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2: %+v", len(rows), rows)
	}
	// Sorted by (hist, bucket): exec_htm before exec_lock alphabetically.
	if rows[0].Hist != "exec_htm" || rows[1].Hist != "exec_lock" {
		t.Errorf("row order: %s, %s", rows[0].Hist, rows[1].Hist)
	}
	r := rows[0]
	if r.LatNS != 50_000 || r.Lock != "kv" || r.Granule != "kv/get" ||
		r.Mode != "htm" || r.Attempts != 3 || r.WastedNS != 30_000 ||
		r.RequestID != 9 || r.Count != 1 {
		t.Errorf("row = %+v", r)
	}
	if len(r.Aborts) != 1 {
		t.Fatalf("aborts = %v", r.Aborts)
	}
	if r.Bucket != stats.LogBucketOf(50_000) || r.UpperNS != stats.LogBucketUpper(r.Bucket) {
		t.Errorf("bucket/upper = %d/%d", r.Bucket, r.UpperNS)
	}
}

func TestExemplarMinLatencyFloor(t *testing.T) {
	tab := NewExemplarTable()
	if tab.MinLatency() != DefaultExemplarMinNS {
		t.Fatalf("default floor = %d", tab.MinLatency())
	}
	tab.Observe(HistExecHTM, Exemplar{LatNS: 500}) // typical hot-path latency
	if rows := tab.Rows(); rows != nil {
		t.Errorf("below-floor observation captured: %+v", rows)
	}
	tab.Observe(HistExecHTM, Exemplar{LatNS: DefaultExemplarMinNS, Lock: "L", Mode: 1})
	if rows := tab.Rows(); len(rows) != 1 {
		t.Errorf("at-floor observation not captured: %+v", rows)
	}
	tab.SetMinLatency(-5)
	if tab.MinLatency() != 0 {
		t.Errorf("negative floor not clamped: %d", tab.MinLatency())
	}
}

func TestExemplarNilSafe(t *testing.T) {
	var tab *ExemplarTable
	tab.Observe(HistExecHTM, Exemplar{LatNS: 1 << 30}) // must not panic
	if tab.Rows() != nil {
		t.Error("nil table produced rows")
	}
}

// TestExemplarSameBucketKeepsLatest: two observations in one bucket keep
// one witness (the later write wins the slot) but both count.
func TestExemplarSameBucketCounts(t *testing.T) {
	tab := NewExemplarTable()
	tab.SetMinLatency(0)
	tab.Observe(HistExecSWOpt, Exemplar{LatNS: 100_000, Granule: "a", Mode: 2})
	tab.Observe(HistExecSWOpt, Exemplar{LatNS: 100_001, Granule: "b", Mode: 2})
	rows := tab.Rows()
	if len(rows) != 1 || rows[0].Count != 2 {
		t.Fatalf("rows = %+v", rows)
	}
	if rows[0].Granule != "b" {
		t.Errorf("witness = %q, want latest", rows[0].Granule)
	}
}

// TestExemplarConcurrentObserveAndRows is the -race coverage for the
// attach-vs-extract contract: many writers hammering one bucket while a
// reader repeatedly extracts rows must be race-clean, never deadlock, and
// end with an exact total count.
func TestExemplarConcurrentObserveAndRows(t *testing.T) {
	tab := NewExemplarTable()
	tab.SetMinLatency(0)
	const writers, perWriter = 8, 500

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				tab.Observe(HistExecHTM, Exemplar{
					LatNS: 70_000, Lock: "kv", Granule: "kv/get",
					Mode: 1, RequestID: uint64(w*perWriter + i + 1),
				})
			}
		}(w)
	}
	stop := make(chan struct{})
	var readerWG sync.WaitGroup
	readerWG.Add(1)
	go func() {
		defer readerWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
				tab.Rows()
			}
		}
	}()
	wg.Wait()
	close(stop)
	readerWG.Wait()

	rows := tab.Rows()
	if len(rows) != 1 {
		t.Fatalf("rows = %+v", rows)
	}
	if rows[0].Count != writers*perWriter {
		t.Errorf("count = %d, want %d", rows[0].Count, writers*perWriter)
	}
	if rows[0].RequestID == 0 {
		t.Error("no witness survived")
	}
}

// TestSnapshotExemplarsWire: exemplars ride the ale-snapshot/v1 wire and
// survive a round trip; snapshots without them re-encode without the key.
func TestSnapshotExemplarsWire(t *testing.T) {
	c := New()
	c.NewShard().Add(CtrSuccessHTM)
	c.Exemplars().SetMinLatency(0)
	c.Exemplars().Observe(HistExecHTM, Exemplar{
		LatNS: 90_000, Lock: "kv", Granule: "kv/incr", Mode: 1, Attempts: 2,
	})
	data, err := json.Marshal(c.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"exemplars"`) {
		t.Fatalf("wire missing exemplars: %s", data)
	}
	var back Snapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Exemplars) != 1 || back.Exemplars[0].Granule != "kv/incr" {
		t.Errorf("round trip: %+v", back.Exemplars)
	}
	top := back.TopExemplars(5)
	if len(top) != 1 || top[0].LatNS != 90_000 {
		t.Errorf("TopExemplars = %+v", top)
	}

	// A snapshot with no exemplars omits the key entirely.
	empty := New()
	data2, err := json.Marshal(empty.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data2), "exemplars") {
		t.Errorf("empty snapshot grew exemplars key: %s", data2)
	}
}

func TestAbortMaskNames(t *testing.T) {
	if AbortMaskNames(0) != nil {
		t.Error("empty mask not nil")
	}
	names := AbortMaskNames(1<<1 | 1<<2)
	if len(names) != 2 {
		t.Errorf("names = %v", names)
	}
}
