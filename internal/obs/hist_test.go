package obs

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"

	"repro/internal/stats"
)

func TestLatShardRecordAndSnapshot(t *testing.T) {
	c := New()
	s := c.NewLatShard()
	s.Record(HistExecHTM, 100)
	s.Record(HistExecHTM, 200)
	s.Record(HistLockHold, 1<<20)
	s.Record(HistExecLock, -5) // clamps to bucket 0, sum unchanged

	snap := c.Snapshot()
	if !snap.HasTiming() {
		t.Fatal("HasTiming false after records")
	}
	htm := snap.Latency(HistExecHTM)
	if htm.Count() != 2 || htm.SumNS != 300 {
		t.Errorf("exec_htm = count %d sum %d, want 2/300", htm.Count(), htm.SumNS)
	}
	if got := htm.MeanNS(); got != 150 {
		t.Errorf("mean = %d, want 150", got)
	}
	hold := snap.Latency(HistLockHold)
	if q := hold.Quantile(1); q < 1<<20 || q > 2<<20 {
		t.Errorf("lock_hold p100 = %d, want within [2^20, 2^21]", q)
	}
	lk := snap.Latency(HistExecLock)
	if lk.Count() != 1 || lk.SumNS != 0 {
		t.Errorf("negative record: count %d sum %d, want 1/0", lk.Count(), lk.SumNS)
	}
}

// TestLatShardsMergeAcrossThreads: shards are per-thread; the snapshot is
// their bucket-wise sum.
func TestLatShardsMergeAcrossThreads(t *testing.T) {
	c := New()
	a, b := c.NewLatShard(), c.NewLatShard()
	a.Record(HistSWOptRetry, 1000)
	b.Record(HistSWOptRetry, 1000)
	b.Record(HistSWOptRetry, 1<<30)
	d := c.Snapshot().Latency(HistSWOptRetry)
	if d.Count() != 3 || d.SumNS != 2000+1<<30 {
		t.Errorf("merged = count %d sum %d, want 3/%d", d.Count(), d.SumNS, 2000+1<<30)
	}
	if d.Buckets[stats.LogBucketOf(1000)] != 2 {
		t.Errorf("bucket for 1000ns = %d, want 2", d.Buckets[stats.LogBucketOf(1000)])
	}
}

// TestLatShardConcurrentRecordMerge is the timing layer's -race regression
// test: writers hammer their own shards while a reader snapshots, and the
// final quiesced snapshot is exact.
func TestLatShardConcurrentRecordMerge(t *testing.T) {
	c := New()
	const workers, iters = 4, 20000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		var prev Snapshot
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := c.Snapshot()
			for h := 0; h < NumHists; h++ {
				if s.Lat[h].Count() < prev.Lat[h].Count() {
					t.Errorf("hist %s count went backwards", HistNames[h])
					return
				}
			}
			prev = s
		}
	}()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			s := c.NewLatShard()
			for i := 0; i < iters; i++ {
				s.Record(Hist(i%NumHists), int64(id*1000+i))
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	<-readerDone

	snap := c.Snapshot()
	var total uint64
	for h := 0; h < NumHists; h++ {
		total += snap.Lat[h].Count()
	}
	if total != workers*iters {
		t.Errorf("total observations = %d, want %d", total, workers*iters)
	}
}

// TestSnapshotSchemaMarker pins the wire-format contract: new encodes
// carry the schema marker, schema-less (pre-v1) files still parse, and an
// unknown schema is rejected loudly instead of misread.
func TestSnapshotSchemaMarker(t *testing.T) {
	c := New()
	c.NewShard().Add(CtrSuccessHTM)
	b, err := json.Marshal(c.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), `"schema":"`+SnapshotSchema+`"`) {
		t.Errorf("encoded snapshot lacks schema marker:\n%s", b)
	}
	var s Snapshot
	if err := json.Unmarshal(b, &s); err != nil {
		t.Fatalf("round-trip: %v", err)
	}
	if s.Get(CtrSuccessHTM) != 1 {
		t.Error("round-trip lost counters")
	}

	// Pre-v1 file: no schema field at all.
	old := `{"unix_nano":1700000000000000000,"execs":5,"successes":{"lock":5}}`
	if err := json.Unmarshal([]byte(old), &s); err != nil {
		t.Fatalf("schema-less input rejected: %v", err)
	}
	if s.Get(CtrSuccessLock) != 5 {
		t.Errorf("schema-less parse: lock successes = %d, want 5", s.Get(CtrSuccessLock))
	}

	// Future/foreign schema: loud error.
	if err := json.Unmarshal([]byte(`{"schema":"ale-snapshot/v9"}`), &s); err == nil {
		t.Error("unknown schema accepted")
	} else if !strings.Contains(err.Error(), "ale-snapshot/v9") {
		t.Errorf("schema error does not name the offender: %v", err)
	}
}

// TestSnapshotLatencyJSONRoundTrip: buckets and sums survive the wire;
// quantiles rederive identically on the far side.
func TestSnapshotLatencyJSONRoundTrip(t *testing.T) {
	c := New()
	s := c.NewLatShard()
	for _, ns := range []int64{50, 900, 900, 12345, 1 << 22} {
		s.Record(HistExecSWOpt, ns)
		s.Record(HistGroupWait, ns*2)
	}
	before := c.Snapshot()
	b, err := json.Marshal(before)
	if err != nil {
		t.Fatal(err)
	}
	var after Snapshot
	if err := json.Unmarshal(b, &after); err != nil {
		t.Fatal(err)
	}
	for h := 0; h < NumHists; h++ {
		bd, ad := before.Lat[h], after.Lat[h]
		if bd.Buckets != ad.Buckets || bd.SumNS != ad.SumNS {
			t.Errorf("hist %s did not round-trip: %+v vs %+v", HistNames[h], bd, ad)
		}
		for _, q := range []float64{0.5, 0.9, 0.99, 1} {
			if bd.Quantile(q) != ad.Quantile(q) {
				t.Errorf("hist %s q%.2f differs after round-trip", HistNames[h], q)
			}
		}
	}
}

// TestSnapshotContention: the registered source's rows land in snapshots
// (truncated to ContentionTopN) and survive the JSON wire format.
func TestSnapshotContention(t *testing.T) {
	c := New()
	rows := make([]ContentionEntry, ContentionTopN+4)
	for i := range rows {
		rows[i] = ContentionEntry{
			Lock: "l", Context: string(rune('a' + i)),
			WastedNS: int64(1000 - i), // already sorted desc, as the contract requires
		}
	}
	c.SetContentionSource(func() []ContentionEntry { return rows })
	s := c.Snapshot()
	if len(s.Contention) != ContentionTopN {
		t.Fatalf("contention rows = %d, want truncation to %d", len(s.Contention), ContentionTopN)
	}
	if s.Contention[0].Context != "a" {
		t.Errorf("truncation kept the wrong end: first row %+v", s.Contention[0])
	}
	b, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Contention) != ContentionTopN || back.Contention[0].WastedNS != 1000 {
		t.Errorf("contention did not round-trip: %+v", back.Contention)
	}

	c.SetContentionSource(nil)
	if got := c.Snapshot().Contention; len(got) != 0 {
		t.Errorf("detached source still yields %d rows", len(got))
	}
}

// TestWritePrometheusLatency: timing data renders as Prometheus histogram
// families with cumulative le buckets in seconds.
func TestWritePrometheusLatency(t *testing.T) {
	c := New()
	sh := c.NewLatShard()
	sh.Record(HistExecHTM, 500)
	sh.Record(HistLockHold, 2_000_000)
	var sb strings.Builder
	if err := WritePrometheus(&sb, c.Snapshot()); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{
		`ale_exec_latency_seconds_bucket{mode="htm",le="+Inf"} 1`,
		`ale_exec_latency_seconds_count{mode="htm"} 1`,
		"ale_lock_hold_seconds_bucket",
		"# TYPE ale_exec_latency_seconds histogram",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("prometheus output missing %q", want)
		}
	}
	// Timing-off snapshots render no latency families at all.
	sb.Reset()
	if err := WritePrometheus(&sb, New().Snapshot()); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "latency_seconds") {
		t.Error("untimed snapshot rendered latency histograms")
	}
}
