// Tail-latency exemplars: per-bucket witnesses for the latency
// histograms. Histograms answer "how slow is P99.9"; exemplars answer
// "which granule, in which mode, after which aborts" for a concrete
// execution that landed in that bucket — the OpenMetrics exemplar idea
// applied to the ALE substrate, with the request id threaded through so a
// server-side tail sample names the client request that suffered it.
//
// Hot-path discipline (the same contract as Shard/LatShard): attaching an
// exemplar performs no allocation and never blocks. Each (histogram,
// bucket) cell holds one exemplar slot guarded by a TryLock mutex —
// writers that lose the race simply skip (the bucket keeps a slightly
// staler witness), and the atomic hit counter still records that the
// bucket was visited. The strings in an Exemplar are the engine's interned
// lock/granule labels, so copying one copies two pointers, not bytes.
//
// A latency floor (SetMinLatency) keeps the fast path out of the table
// entirely: executions quicker than the floor return after one predictable
// branch, so conflict-free Execute stays at its two-clock-read budget
// (pinned by TestExecuteZeroAllocsFlight* in internal/core).
package obs

import (
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/stats"
	"repro/internal/tm"
)

// DefaultExemplarMinNS is the default latency floor: executions faster
// than ~16µs never touch the exemplar table. Low enough to catch any
// plausible tail bucket, high enough that the conflict-free hot path
// (hundreds of ns) always takes the early return.
const DefaultExemplarMinNS = 16 * 1024

// Exemplar is one witnessed execution: everything needed to answer "why
// was this one slow" without a trace. Lock and Granule are the engine's
// interned labels; AbortMask has bit r set if the execution suffered at
// least one HTM abort with tm.AbortReason r.
type Exemplar struct {
	// LatNS is the full Execute latency that placed this exemplar.
	LatNS int64
	// MonoNS is the trace-clock timestamp (trace.Now epoch) of the
	// execution's completion, for correlation with trace rings.
	MonoNS int64
	// Lock is the lock's report name.
	Lock string
	// Granule is the granule's context label.
	Granule string
	// Mode is the final core.Mode the execution committed in.
	Mode uint8
	// Attempts is the total attempt count (failed + the winning one).
	Attempts int
	// AbortMask has bit r set per HTM abort reason suffered en route.
	AbortMask uint16
	// WastedNS is time burned on attempts that did not commit
	// (the HistAttemptWaste observation of the same execution).
	WastedNS int64
	// RequestID identifies the request being served, when the embedding
	// application threads one through (aleserve: connection<<20 | seq).
	// Zero means "no request context".
	RequestID uint64
}

// exSlot is one (histogram, bucket) cell: an always-advancing hit counter
// plus a single witness slot. count is written with an uncontended-in-
// practice atomic add; the witness is replaced only when the TryLock wins,
// so a writer never blocks behind a concurrent snapshot read.
type exSlot struct {
	count atomic.Uint64
	mu    sync.Mutex
	e     Exemplar
}

// ExemplarTable is the fixed-slot exemplar store, one cell per
// (histogram, log bucket). ~30KB, allocated once per Collector.
type ExemplarTable struct {
	minNS atomic.Int64
	slots [NumHists][stats.NumLogBuckets]exSlot
}

// NewExemplarTable returns a table with the default latency floor.
func NewExemplarTable() *ExemplarTable {
	t := &ExemplarTable{}
	t.minNS.Store(DefaultExemplarMinNS)
	return t
}

// SetMinLatency sets the latency floor in nanoseconds: observations with
// LatNS below it are dropped before touching any slot. Zero admits
// everything (tests); the default is DefaultExemplarMinNS.
func (t *ExemplarTable) SetMinLatency(ns int64) {
	if ns < 0 {
		ns = 0
	}
	t.minNS.Store(ns)
}

// MinLatency returns the current floor in nanoseconds.
func (t *ExemplarTable) MinLatency() int64 { return t.minNS.Load() }

// Observe attaches e to histogram h's bucket for e.LatNS. Nil-safe,
// alloc-free, non-blocking: below-floor observations cost one atomic load
// and a branch; above-floor ones an atomic add plus a TryLock that may
// skip the witness update under contention.
func (t *ExemplarTable) Observe(h Hist, e Exemplar) {
	if t == nil || e.LatNS < t.minNS.Load() {
		return
	}
	s := &t.slots[h][stats.LogBucketOf(e.LatNS)]
	s.count.Add(1)
	if s.mu.TryLock() {
		s.e = e
		s.mu.Unlock()
	}
}

// ExemplarRow is one populated cell in wire form: the Snapshot/flight-dump
// representation of an exemplar, with the mode and abort mask decoded to
// stable names. Rows sort by (histogram, bucket).
type ExemplarRow struct {
	// Hist is the histogram's HistNames entry.
	Hist string `json:"hist"`
	// Bucket is the log-bucket index; UpperNS its conservative bound.
	Bucket  int   `json:"bucket"`
	UpperNS int64 `json:"upper_ns"`
	// Count is how many observations visited the bucket past the floor
	// (not just those that won the witness slot).
	Count     uint64   `json:"count"`
	LatNS     int64    `json:"lat_ns"`
	Lock      string   `json:"lock,omitempty"`
	Granule   string   `json:"granule,omitempty"`
	Mode      string   `json:"mode"`
	Attempts  int      `json:"attempts,omitempty"`
	Aborts    []string `json:"aborts,omitempty"`
	WastedNS  int64    `json:"wasted_ns,omitempty"`
	RequestID uint64   `json:"request_id,omitempty"`
	MonoNS    int64    `json:"mono_ns,omitempty"`
}

// AbortMaskNames decodes an Exemplar.AbortMask into abort-reason names,
// nil for an empty mask.
func AbortMaskNames(mask uint16) []string {
	if mask == 0 {
		return nil
	}
	var out []string
	for r := 1; r < tm.NumAbortReasons; r++ {
		if mask&(1<<uint(r)) != 0 {
			out = append(out, tm.AbortReason(r).String())
		}
	}
	return out
}

// Rows extracts every populated cell as wire rows, sorted by (histogram,
// bucket). Each witness is read under its slot mutex — a concurrent
// Observe that loses the TryLock skips rather than waiting, so extraction
// never stalls the hot path. Nil-safe; returns nil when nothing has been
// observed.
func (t *ExemplarTable) Rows() []ExemplarRow {
	if t == nil {
		return nil
	}
	var rows []ExemplarRow
	for h := 0; h < NumHists; h++ {
		for b := 0; b < stats.NumLogBuckets; b++ {
			s := &t.slots[h][b]
			n := s.count.Load()
			if n == 0 {
				continue
			}
			s.mu.Lock()
			e := s.e
			s.mu.Unlock()
			if e.LatNS == 0 {
				// Counted but no witness landed yet (every writer so far
				// lost the TryLock to this extraction); skip the empty cell.
				continue
			}
			mode := "?"
			if int(e.Mode) < NumModes {
				mode = ModeNames[e.Mode]
			}
			rows = append(rows, ExemplarRow{
				Hist:      HistNames[h],
				Bucket:    b,
				UpperNS:   stats.LogBucketUpper(b),
				Count:     n,
				LatNS:     e.LatNS,
				Lock:      e.Lock,
				Granule:   e.Granule,
				Mode:      mode,
				Attempts:  e.Attempts,
				Aborts:    AbortMaskNames(e.AbortMask),
				WastedNS:  e.WastedNS,
				RequestID: e.RequestID,
				MonoNS:    e.MonoNS,
			})
		}
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Hist != rows[j].Hist {
			return rows[i].Hist < rows[j].Hist
		}
		return rows[i].Bucket < rows[j].Bucket
	})
	return rows
}

// Exemplars returns the collector's exemplar table (never nil for a
// collector built with New/NewSized). The engine wires it into threads
// when both Options.Obs and Options.Timing are set.
func (c *Collector) Exemplars() *ExemplarTable { return c.exemplars }

// TopExemplars returns the k highest-latency exec-histogram exemplars of
// a snapshot, the "what were the worst requests and why" view.
func (s Snapshot) TopExemplars(k int) []ExemplarRow {
	var execs []ExemplarRow
	for _, r := range s.Exemplars {
		if r.Hist == HistNames[HistExecLock] || r.Hist == HistNames[HistExecHTM] ||
			r.Hist == HistNames[HistExecSWOpt] {
			execs = append(execs, r)
		}
	}
	sort.SliceStable(execs, func(i, j int) bool { return execs[i].LatNS > execs[j].LatNS })
	if len(execs) > k {
		execs = execs[:k]
	}
	return execs
}
