package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"time"

	"repro/internal/tm"
)

// Snapshot is an immutable aggregate of every shard at one instant. The
// zero Snapshot is a valid "nothing happened" value, which makes it usable
// as the previous snapshot of a first delta.
type Snapshot struct {
	// At is when the snapshot was taken.
	At time.Time
	// Interval is the time span the counts cover: since the collector
	// started for a full snapshot, between the operands for a Sub delta.
	Interval time.Duration
	// Counts are the raw counter values, indexed by Counter.
	Counts [NumCounters]uint64
}

// Get returns one raw counter.
func (s Snapshot) Get(c Counter) uint64 { return s.Counts[c] }

// Sub returns the delta snapshot s − prev: counts subtracted (saturating
// at zero, so a snapshot from a restarted collector never yields bogus
// huge deltas), Interval spanning prev.At to s.At.
func (s Snapshot) Sub(prev Snapshot) Snapshot {
	d := Snapshot{At: s.At, Interval: s.At.Sub(prev.At)}
	for i := range d.Counts {
		if s.Counts[i] > prev.Counts[i] {
			d.Counts[i] = s.Counts[i] - prev.Counts[i]
		}
	}
	return d
}

// Execs returns the number of completed executions (sum of per-mode
// successes; every execution succeeds in exactly one mode).
func (s Snapshot) Execs() uint64 {
	return s.Counts[CtrSuccessLock] + s.Counts[CtrSuccessHTM] + s.Counts[CtrSuccessSWOpt]
}

// Successes returns executions finalized in the given mode index.
func (s Snapshot) Successes(mode uint8) uint64 { return s.Counts[CtrSuccess(mode)] }

// Aborts returns failed HTM attempts with the given reason.
func (s Snapshot) Aborts(r tm.AbortReason) uint64 { return s.Counts[CtrAbort(r)] }

// Faults returns injected-fault firings for the given class index.
func (s Snapshot) Faults(class uint8) uint64 { return s.Counts[CtrFault(class)] }

// FaultsTotal returns all injected-fault firings (zero in organic runs).
func (s Snapshot) FaultsTotal() uint64 {
	var t uint64
	for c := uint8(0); c < NumFaultClasses; c++ {
		t += s.Counts[CtrFault(c)]
	}
	return t
}

// AbortsTotal returns all failed HTM attempts.
func (s Snapshot) AbortsTotal() uint64 {
	var t uint64
	for r := 1; r < tm.NumAbortReasons; r++ {
		t += s.Counts[CtrAbort(tm.AbortReason(r))]
	}
	return t
}

// Attempts derives per-mode attempt totals: successes plus the mode's
// failures (HTM aborts, SWOpt validation failures; Lock never fails).
// Mode indices are core.Mode values (see NumModes).
func (s Snapshot) Attempts(mode uint8) uint64 {
	n := s.Counts[CtrSuccess(mode)]
	switch mode {
	case 1: // core.ModeHTM
		n += s.AbortsTotal()
	case 2: // core.ModeSWOpt
		n += s.Counts[CtrSWOptFail]
	}
	return n
}

// Elided returns executions that completed without acquiring the lock.
func (s Snapshot) Elided() uint64 {
	return s.Counts[CtrSuccessHTM] + s.Counts[CtrSuccessSWOpt]
}

// ElisionRate returns Elided/Execs, or 0 before any execution completes.
func (s Snapshot) ElisionRate() float64 {
	e := s.Execs()
	if e == 0 {
		return 0
	}
	return float64(s.Elided()) / float64(e)
}

// Rate returns counter c as events per second over the snapshot's
// interval, or 0 for an empty interval.
func (s Snapshot) Rate(c Counter) float64 {
	if s.Interval <= 0 {
		return 0
	}
	return float64(s.Counts[c]) / s.Interval.Seconds()
}

// snapshotJSON is the stable wire format of a snapshot — what /snapshot
// serves and what cmd/alereport parses back. Counter names are the
// Prometheus metric names minus the ale_ prefix and _total suffix.
type snapshotJSON struct {
	UnixNano  int64             `json:"unix_nano"`
	IntervalS float64           `json:"interval_s"`
	Execs     uint64            `json:"execs"`
	Elision   float64           `json:"elision_rate"`
	Success   map[string]uint64 `json:"successes"`
	Attempts  map[string]uint64 `json:"attempts"`
	Aborts    map[string]uint64 `json:"aborts"`
	Events    map[string]uint64 `json:"events"`
	// Faults is omitted entirely for organic (no-injection) runs, so
	// pre-fault-harness snapshot files parse and re-encode unchanged.
	Faults map[string]uint64 `json:"faults,omitempty"`
}

// MarshalJSON encodes the snapshot in the stable /snapshot wire format.
func (s Snapshot) MarshalJSON() ([]byte, error) {
	j := snapshotJSON{
		UnixNano:  s.At.UnixNano(),
		IntervalS: s.Interval.Seconds(),
		Execs:     s.Execs(),
		Elision:   s.ElisionRate(),
		Success:   map[string]uint64{},
		Attempts:  map[string]uint64{},
		Aborts:    map[string]uint64{},
		Events: map[string]uint64{
			"swopt_fail":       s.Counts[CtrSWOptFail],
			"group_wait":       s.Counts[CtrGroupWait],
			"fallback":         s.Counts[CtrFallback],
			"phase_transition": s.Counts[CtrPhaseTransition],
			"relearn":          s.Counts[CtrRelearn],
			"htm_extension":    s.Counts[CtrHTMExtension],
		},
	}
	for m := uint8(0); m < NumModes; m++ {
		j.Success[ModeNames[m]] = s.Successes(m)
		j.Attempts[ModeNames[m]] = s.Attempts(m)
	}
	for r := 1; r < tm.NumAbortReasons; r++ {
		j.Aborts[tm.AbortReason(r).String()] = s.Aborts(tm.AbortReason(r))
	}
	if s.FaultsTotal() > 0 {
		j.Faults = map[string]uint64{}
		for c := uint8(0); c < NumFaultClasses; c++ {
			j.Faults[FaultClassNames[c]] = s.Faults(c)
		}
	}
	return json.Marshal(j)
}

// UnmarshalJSON decodes the /snapshot wire format back into a snapshot.
// Only the raw counters are restored; derived fields are recomputed by the
// accessors, which keeps round-trips consistent by construction.
func (s *Snapshot) UnmarshalJSON(data []byte) error {
	var j snapshotJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	*s = Snapshot{
		At:       time.Unix(0, j.UnixNano),
		Interval: time.Duration(j.IntervalS * float64(time.Second)),
	}
	for m := uint8(0); m < NumModes; m++ {
		s.Counts[CtrSuccess(m)] = j.Success[ModeNames[m]]
	}
	for r := 1; r < tm.NumAbortReasons; r++ {
		s.Counts[CtrAbort(tm.AbortReason(r))] = j.Aborts[tm.AbortReason(r).String()]
	}
	s.Counts[CtrSWOptFail] = j.Events["swopt_fail"]
	s.Counts[CtrGroupWait] = j.Events["group_wait"]
	s.Counts[CtrFallback] = j.Events["fallback"]
	s.Counts[CtrPhaseTransition] = j.Events["phase_transition"]
	s.Counts[CtrRelearn] = j.Events["relearn"]
	s.Counts[CtrHTMExtension] = j.Events["htm_extension"]
	for c := uint8(0); c < NumFaultClasses; c++ {
		s.Counts[CtrFault(c)] = j.Faults[FaultClassNames[c]]
	}
	return nil
}

// ParseSnapshots parses a sequence of snapshots: either a JSON array or a
// stream of whitespace-separated JSON objects (JSON Lines, the natural
// shape of a /snapshot scrape loop appending to a file). This is the input
// format of cmd/alereport's snapshot mode.
func ParseSnapshots(data []byte) ([]Snapshot, error) {
	trimmed := bytes.TrimSpace(data)
	if len(trimmed) == 0 {
		return nil, fmt.Errorf("obs: empty snapshot input")
	}
	if trimmed[0] == '[' {
		var arr []Snapshot
		if err := json.Unmarshal(trimmed, &arr); err != nil {
			return nil, err
		}
		return arr, nil
	}
	dec := json.NewDecoder(bytes.NewReader(trimmed))
	var out []Snapshot
	for {
		var s Snapshot
		err := dec.Decode(&s)
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}
