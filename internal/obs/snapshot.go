package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"time"

	"repro/internal/tm"
)

// Snapshot is an immutable aggregate of every shard at one instant. The
// zero Snapshot is a valid "nothing happened" value, which makes it usable
// as the previous snapshot of a first delta.
type Snapshot struct {
	// At is when the snapshot was taken.
	At time.Time
	// Interval is the time span the counts cover: since the collector
	// started for a full snapshot, between the operands for a Sub delta.
	Interval time.Duration
	// Counts are the raw counter values, indexed by Counter.
	Counts [NumCounters]uint64
	// Lat are the merged latency histograms, indexed by Hist. All-zero
	// unless the runtime ran with Options.Timing.
	Lat [NumHists]LatDist
	// Contention is the granule contention profile (top
	// ContentionTopN rows by wasted time), present only when a timing
	// runtime registered its profiler via SetContentionSource.
	Contention []ContentionEntry
	// Shards are the per-shard commit-clock rows, present only when a
	// runtime on a multi-shard domain registered its clocks via
	// SetShardSource.
	Shards []ShardEntry
	// Exemplars are the populated tail-latency exemplar cells (one
	// witnessed execution per hot histogram bucket), present only when a
	// timing runtime observed executions past the exemplar floor.
	Exemplars []ExemplarRow
}

// Get returns one raw counter.
func (s Snapshot) Get(c Counter) uint64 { return s.Counts[c] }

// Sub returns the delta snapshot s − prev: counts subtracted (saturating
// at zero, so a snapshot from a restarted collector never yields bogus
// huge deltas), Interval spanning prev.At to s.At.
func (s Snapshot) Sub(prev Snapshot) Snapshot {
	d := Snapshot{At: s.At, Interval: s.At.Sub(prev.At)}
	for i := range d.Counts {
		if s.Counts[i] > prev.Counts[i] {
			d.Counts[i] = s.Counts[i] - prev.Counts[i]
		}
	}
	for h := range d.Lat {
		d.Lat[h] = s.Lat[h].Sub(prev.Lat[h])
	}
	// Contention rows are cumulative attributions, not counters; a delta
	// keeps the newer profile as-is (interval attribution would need
	// per-granule history the wire format deliberately does not carry).
	// Shard clocks are likewise cumulative positions, not event counts,
	// and exemplars are point witnesses — all keep the newer value.
	d.Contention = s.Contention
	d.Shards = s.Shards
	d.Exemplars = s.Exemplars
	return d
}

// HasTiming reports whether any latency histogram has observations —
// i.e. whether the snapshot came from a runtime with Options.Timing on.
func (s Snapshot) HasTiming() bool {
	for h := range s.Lat {
		if s.Lat[h].Count() > 0 {
			return true
		}
	}
	return false
}

// Latency returns the merged distribution of histogram h.
func (s Snapshot) Latency(h Hist) LatDist { return s.Lat[h] }

// Execs returns the number of completed executions (sum of per-mode
// successes; every execution succeeds in exactly one mode).
func (s Snapshot) Execs() uint64 {
	return s.Counts[CtrSuccessLock] + s.Counts[CtrSuccessHTM] + s.Counts[CtrSuccessSWOpt]
}

// Successes returns executions finalized in the given mode index.
func (s Snapshot) Successes(mode uint8) uint64 { return s.Counts[CtrSuccess(mode)] }

// Aborts returns failed HTM attempts with the given reason.
func (s Snapshot) Aborts(r tm.AbortReason) uint64 { return s.Counts[CtrAbort(r)] }

// Faults returns injected-fault firings for the given class index.
func (s Snapshot) Faults(class uint8) uint64 { return s.Counts[CtrFault(class)] }

// FaultsTotal returns all injected-fault firings (zero in organic runs).
func (s Snapshot) FaultsTotal() uint64 {
	var t uint64
	for c := uint8(0); c < NumFaultClasses; c++ {
		t += s.Counts[CtrFault(c)]
	}
	return t
}

// AbortsTotal returns all failed HTM attempts.
func (s Snapshot) AbortsTotal() uint64 {
	var t uint64
	for r := 1; r < tm.NumAbortReasons; r++ {
		t += s.Counts[CtrAbort(tm.AbortReason(r))]
	}
	return t
}

// Attempts derives per-mode attempt totals: successes plus the mode's
// failures (HTM aborts, SWOpt validation failures; Lock never fails).
// Mode indices are core.Mode values (see NumModes).
func (s Snapshot) Attempts(mode uint8) uint64 {
	n := s.Counts[CtrSuccess(mode)]
	switch mode {
	case 1: // core.ModeHTM
		n += s.AbortsTotal()
	case 2: // core.ModeSWOpt
		n += s.Counts[CtrSWOptFail]
	}
	return n
}

// Elided returns executions that completed without acquiring the lock.
func (s Snapshot) Elided() uint64 {
	return s.Counts[CtrSuccessHTM] + s.Counts[CtrSuccessSWOpt]
}

// ElisionRate returns Elided/Execs, or 0 before any execution completes.
func (s Snapshot) ElisionRate() float64 {
	e := s.Execs()
	if e == 0 {
		return 0
	}
	return float64(s.Elided()) / float64(e)
}

// Rate returns counter c as events per second over the snapshot's
// interval, or 0 for an empty interval.
func (s Snapshot) Rate(c Counter) float64 {
	if s.Interval <= 0 {
		return 0
	}
	return float64(s.Counts[c]) / s.Interval.Seconds()
}

// SnapshotSchema is the wire-format identifier carried in the snapshot
// JSON "schema" field, the same probing convention the BENCH
// microbenchmark report uses (alebench-microbench/v1). The parser also
// accepts schema-less input (pre-v1 files) for compatibility; an
// unrecognized schema value is an error.
const SnapshotSchema = "ale-snapshot/v1"

// snapshotJSON is the stable wire format of a snapshot — what /snapshot
// serves and what cmd/alereport parses back. Counter names are the
// Prometheus metric names minus the ale_ prefix and _total suffix.
type snapshotJSON struct {
	Schema    string            `json:"schema"`
	UnixNano  int64             `json:"unix_nano"`
	IntervalS float64           `json:"interval_s"`
	Execs     uint64            `json:"execs"`
	Elision   float64           `json:"elision_rate"`
	Success   map[string]uint64 `json:"successes"`
	Attempts  map[string]uint64 `json:"attempts"`
	Aborts    map[string]uint64 `json:"aborts"`
	Events    map[string]uint64 `json:"events"`
	// Faults is omitted entirely for organic (no-injection) runs, so
	// pre-fault-harness snapshot files parse and re-encode unchanged.
	Faults map[string]uint64 `json:"faults,omitempty"`
	// Latency is omitted entirely for runs without Options.Timing, so
	// pre-timing snapshot files parse and re-encode unchanged. Keys are
	// HistNames; percentiles are derived from the buckets at encode time
	// (decode restores buckets+sum and rederives).
	Latency map[string]latDistJSON `json:"latency,omitempty"`
	// Contention is the top-N granule contention profile, omitted when
	// no timing profiler is attached.
	Contention []ContentionEntry `json:"contention,omitempty"`
	// Shards are the per-shard commit-clock rows, omitted for
	// single-shard domains (and all pre-sharding snapshot files).
	Shards []ShardEntry `json:"shards,omitempty"`
	// Exemplars are the tail-latency exemplar rows, omitted when none
	// were captured (so pre-exemplar snapshot files re-encode unchanged).
	Exemplars []ExemplarRow `json:"exemplars,omitempty"`
}

// latDistJSON is one histogram on the wire: the raw buckets (the source
// of truth, restored on decode) plus derived percentiles for human and
// downstream-tool consumption.
type latDistJSON struct {
	Count   uint64   `json:"count"`
	SumNS   uint64   `json:"sum_ns"`
	P50NS   int64    `json:"p50_ns"`
	P90NS   int64    `json:"p90_ns"`
	P99NS   int64    `json:"p99_ns"`
	MaxNS   int64    `json:"max_ns"`
	Buckets []uint64 `json:"buckets"`
}

// MarshalJSON encodes the snapshot in the stable /snapshot wire format.
func (s Snapshot) MarshalJSON() ([]byte, error) {
	j := snapshotJSON{
		Schema:    SnapshotSchema,
		UnixNano:  s.At.UnixNano(),
		IntervalS: s.Interval.Seconds(),
		Execs:     s.Execs(),
		Elision:   s.ElisionRate(),
		Success:   map[string]uint64{},
		Attempts:  map[string]uint64{},
		Aborts:    map[string]uint64{},
		Events: map[string]uint64{
			"swopt_fail":       s.Counts[CtrSWOptFail],
			"group_wait":       s.Counts[CtrGroupWait],
			"fallback":         s.Counts[CtrFallback],
			"phase_transition": s.Counts[CtrPhaseTransition],
			"relearn":          s.Counts[CtrRelearn],
			"htm_extension":    s.Counts[CtrHTMExtension],
		},
	}
	for m := uint8(0); m < NumModes; m++ {
		j.Success[ModeNames[m]] = s.Successes(m)
		j.Attempts[ModeNames[m]] = s.Attempts(m)
	}
	for r := 1; r < tm.NumAbortReasons; r++ {
		j.Aborts[tm.AbortReason(r).String()] = s.Aborts(tm.AbortReason(r))
	}
	if s.FaultsTotal() > 0 {
		j.Faults = map[string]uint64{}
		for c := uint8(0); c < NumFaultClasses; c++ {
			j.Faults[FaultClassNames[c]] = s.Faults(c)
		}
	}
	if n := s.Counts[CtrAbortWorkNS]; n > 0 {
		j.Events["htm_abort_work_ns"] = n
	}
	// Like htm_abort_work_ns, cross_shard is emitted only when nonzero so
	// single-shard (and pre-sharding) snapshots re-encode unchanged.
	if n := s.Counts[CtrCrossShard]; n > 0 {
		j.Events["cross_shard"] = n
	}
	if s.HasTiming() {
		j.Latency = map[string]latDistJSON{}
		for h := 0; h < NumHists; h++ {
			d := s.Lat[h]
			if d.Count() == 0 {
				continue
			}
			j.Latency[HistNames[h]] = latDistJSON{
				Count:   d.Count(),
				SumNS:   d.SumNS,
				P50NS:   d.Quantile(0.50),
				P90NS:   d.Quantile(0.90),
				P99NS:   d.Quantile(0.99),
				MaxNS:   d.MaxNS(),
				Buckets: d.Buckets[:],
			}
		}
	}
	j.Contention = s.Contention
	j.Shards = s.Shards
	j.Exemplars = s.Exemplars
	return json.Marshal(j)
}

// UnmarshalJSON decodes the /snapshot wire format back into a snapshot.
// Only the raw counters are restored; derived fields are recomputed by the
// accessors, which keeps round-trips consistent by construction.
func (s *Snapshot) UnmarshalJSON(data []byte) error {
	var j snapshotJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	// Accept the current schema and schema-less pre-v1 files; reject
	// anything else loudly rather than misreading a future format.
	if j.Schema != "" && j.Schema != SnapshotSchema {
		return fmt.Errorf("obs: unsupported snapshot schema %q (want %q or none)",
			j.Schema, SnapshotSchema)
	}
	*s = Snapshot{
		At:       time.Unix(0, j.UnixNano),
		Interval: time.Duration(j.IntervalS * float64(time.Second)),
	}
	for m := uint8(0); m < NumModes; m++ {
		s.Counts[CtrSuccess(m)] = j.Success[ModeNames[m]]
	}
	for r := 1; r < tm.NumAbortReasons; r++ {
		s.Counts[CtrAbort(tm.AbortReason(r))] = j.Aborts[tm.AbortReason(r).String()]
	}
	s.Counts[CtrSWOptFail] = j.Events["swopt_fail"]
	s.Counts[CtrGroupWait] = j.Events["group_wait"]
	s.Counts[CtrFallback] = j.Events["fallback"]
	s.Counts[CtrPhaseTransition] = j.Events["phase_transition"]
	s.Counts[CtrRelearn] = j.Events["relearn"]
	s.Counts[CtrHTMExtension] = j.Events["htm_extension"]
	s.Counts[CtrAbortWorkNS] = j.Events["htm_abort_work_ns"]
	s.Counts[CtrCrossShard] = j.Events["cross_shard"]
	for c := uint8(0); c < NumFaultClasses; c++ {
		s.Counts[CtrFault(c)] = j.Faults[FaultClassNames[c]]
	}
	for h := 0; h < NumHists; h++ {
		d, ok := j.Latency[HistNames[h]]
		if !ok {
			continue
		}
		copy(s.Lat[h].Buckets[:], d.Buckets)
		s.Lat[h].SumNS = d.SumNS
	}
	s.Contention = j.Contention
	s.Shards = j.Shards
	s.Exemplars = j.Exemplars
	return nil
}

// ParseSnapshots parses a sequence of snapshots: either a JSON array or a
// stream of whitespace-separated JSON objects (JSON Lines, the natural
// shape of a /snapshot scrape loop appending to a file). This is the input
// format of cmd/alereport's snapshot mode.
func ParseSnapshots(data []byte) ([]Snapshot, error) {
	trimmed := bytes.TrimSpace(data)
	if len(trimmed) == 0 {
		return nil, fmt.Errorf("obs: empty snapshot input")
	}
	if trimmed[0] == '[' {
		var arr []Snapshot
		if err := json.Unmarshal(trimmed, &arr); err != nil {
			return nil, err
		}
		return arr, nil
	}
	dec := json.NewDecoder(bytes.NewReader(trimmed))
	var out []Snapshot
	for {
		var s Snapshot
		err := dec.Decode(&s)
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}
