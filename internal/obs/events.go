package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"sync"
	"time"
)

// EventKind classifies one adaptive-policy lifecycle event.
type EventKind uint8

const (
	// EventPhaseEnter: the lock's learning schedule entered a new stage.
	EventPhaseEnter EventKind = iota
	// EventXChosen: a granule's HTM retry budget X was fixed (after the
	// discovery cap or the histogram cost model).
	EventXChosen
	// EventVerdict: the custom phase decided per-granule progressions
	// versus the best uniform progression.
	EventVerdict
	// EventRelearn: the learning schedule was restarted (the drift
	// detector fired, or the application called Relearn).
	EventRelearn

	numEventKinds
)

var eventKindNames = [numEventKinds]string{
	EventPhaseEnter: "phase-enter",
	EventXChosen:    "x-chosen",
	EventVerdict:    "verdict",
	EventRelearn:    "relearn",
}

// String returns a short name for the kind.
func (k EventKind) String() string {
	if int(k) < len(eventKindNames) {
		return eventKindNames[k]
	}
	return fmt.Sprintf("event(%d)", uint8(k))
}

// Event is one structured policy event. Unlike the engine's per-thread
// trace ring (internal/trace), these are rare, lock-level events — a
// handful per learning schedule — so strings and a shared mutex are fine.
type Event struct {
	// When is the emission time.
	When time.Time
	// Seq is the collector-wide emission sequence number (total order).
	Seq uint64
	// Kind classifies the event.
	Kind EventKind
	// Lock is the emitting lock's report name.
	Lock string
	// Granule is the granule's context label for per-granule events
	// (EventXChosen), empty for lock-level events.
	Granule string
	// Stage is the learning stage the event refers to (the stage entered
	// for EventPhaseEnter, the stage that just computed for others).
	Stage string
	// Detail is a human-readable payload: "X=7", "custom beats uniform",
	// the relearn trigger, …
	Detail string
}

// eventJSON is the stable wire form of a policy event (the /events?format=json
// and flight-dump representation): timestamps as unix nanoseconds, kinds by
// name, empty strings omitted.
type eventJSON struct {
	UnixNano int64  `json:"unix_nano"`
	Seq      uint64 `json:"seq"`
	Kind     string `json:"kind"`
	Lock     string `json:"lock,omitempty"`
	Granule  string `json:"granule,omitempty"`
	Stage    string `json:"stage,omitempty"`
	Detail   string `json:"detail,omitempty"`
}

// MarshalJSON encodes the event in the stable wire form.
func (e Event) MarshalJSON() ([]byte, error) {
	return json.Marshal(eventJSON{
		UnixNano: e.When.UnixNano(),
		Seq:      e.Seq,
		Kind:     e.Kind.String(),
		Lock:     e.Lock,
		Granule:  e.Granule,
		Stage:    e.Stage,
		Detail:   e.Detail,
	})
}

// UnmarshalJSON decodes the wire form. Unknown kind names decode to a
// value past numEventKinds (String prints the raw number), so a newer
// dump still loads.
func (e *Event) UnmarshalJSON(data []byte) error {
	var j eventJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	*e = Event{
		When:    time.Unix(0, j.UnixNano),
		Seq:     j.Seq,
		Kind:    numEventKinds,
		Lock:    j.Lock,
		Granule: j.Granule,
		Stage:   j.Stage,
		Detail:  j.Detail,
	}
	for k := EventKind(0); k < numEventKinds; k++ {
		if eventKindNames[k] == j.Kind {
			e.Kind = k
			break
		}
	}
	return nil
}

// ring is a bounded, mutex-protected event buffer. Policy events are
// emitted under the policy's own transition mutex at phase-transition
// frequency (once per thousands of executions), so lock cost is
// irrelevant; the mutex keeps concurrent RecordEvent/Events race-clean.
type ring struct {
	mu   sync.Mutex
	buf  []Event
	next uint64
}

func (r *ring) init(capacity int) {
	if capacity < 1 {
		capacity = 1
	}
	r.buf = make([]Event, capacity)
}

func (r *ring) record(e Event) {
	r.mu.Lock()
	e.Seq = r.next
	r.buf[r.next%uint64(len(r.buf))] = e
	r.next++
	r.mu.Unlock()
}

func (r *ring) snapshot() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.next
	cap64 := uint64(len(r.buf))
	start := uint64(0)
	if n > cap64 {
		start = n - cap64
	}
	out := make([]Event, 0, n-start)
	for s := start; s < n; s++ {
		out = append(out, r.buf[s%cap64])
	}
	return out
}

// RecordEvent appends a policy event to the bounded ring (oldest events
// are overwritten once full) and bumps the matching counter: phase
// entries count as CtrPhaseTransition, relearns as CtrRelearn, other
// kinds only enter the ring. When is stamped if the caller left it zero.
func (c *Collector) RecordEvent(e Event) {
	if e.When.IsZero() {
		e.When = time.Now()
	}
	c.events.record(e)
	switch e.Kind {
	case EventPhaseEnter:
		c.global.Add(CtrPhaseTransition)
	case EventRelearn:
		c.global.Add(CtrRelearn)
	}
}

// Events returns the retained policy events, oldest first.
func (c *Collector) Events() []Event { return c.events.snapshot() }

// EventsRecorded returns the total number of events ever recorded,
// including overwritten ones.
func (c *Collector) EventsRecorded() uint64 {
	c.events.mu.Lock()
	defer c.events.mu.Unlock()
	return c.events.next
}

// WriteEvents renders events one per line, timestamps relative to the
// first event — the same visual convention as the engine trace timeline
// (internal/trace.Write), so the two can be read side by side.
func WriteEvents(w io.Writer, events []Event) error {
	if len(events) == 0 {
		_, err := io.WriteString(w, "(no policy events)\n")
		return err
	}
	t0 := events[0].When
	var b strings.Builder
	for _, e := range events {
		fmt.Fprintf(&b, "%12.3fms lock=%-12s %-11s", float64(e.When.Sub(t0).Nanoseconds())/1e6, e.Lock, e.Kind)
		if e.Stage != "" {
			fmt.Fprintf(&b, " stage=%s", e.Stage)
		}
		if e.Granule != "" {
			fmt.Fprintf(&b, " granule=%q", e.Granule)
		}
		if e.Detail != "" {
			fmt.Fprintf(&b, " %s", e.Detail)
		}
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}
