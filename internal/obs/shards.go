package obs

// ShardEntry is one commit-clock shard's row in a snapshot: how many
// commits that shard's GV4 clock has absorbed since the domain was built.
// On a sharded domain (tm.Profile.Shards > 1) the per-shard spread is the
// live view of how evenly the workload's write sets hash across shards —
// a single hot shard means the partitioning is not buying scalability,
// regardless of what the aggregate counters say.
type ShardEntry struct {
	// Shard is the shard index, 0-based.
	Shard int `json:"shard"`
	// Clock is the shard's commit-clock value (one tick per transaction
	// commit that wrote at least one Var hashing onto the shard, plus one
	// per direct write there).
	Clock uint64 `json:"clock"`
}

// SetShardSource installs the function snapshots call to collect the
// per-shard commit-clock rows. The core runtime registers its domain's
// shard clocks here when Options.Obs is set and the domain has more than
// one shard (single-shard domains contribute nothing: their one clock is
// already implied by the aggregate counters, and omitting the section
// keeps pre-sharding snapshot files re-encoding unchanged). Like
// SetContentionSource, a collector shared across runtimes keeps only the
// most recently registered source; pass nil to detach.
func (c *Collector) SetShardSource(f func() []ShardEntry) {
	c.mu.Lock()
	c.shardsSrc = f
	c.mu.Unlock()
}
