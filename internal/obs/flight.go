// Flight recorder: the black box of the observability layer. A bounded
// ring of per-tick snapshot deltas is maintained continuously, so that
// when something goes wrong — a drain, a SIGQUIT, an anomaly trigger —
// the last N seconds of policy behaviour (mode mix, aborts by reason,
// latency distributions, contention profile, tail exemplars) can be
// dumped as one versioned JSON document and rendered offline by
// `alereport -in`.
//
// Cost model: the recorder adds nothing to the Execute hot path — it
// reuses the counters, histograms and exemplar slots the threads already
// maintain (the PR 5 two-clock-read budget stands, pinned by
// TestExecuteZeroAllocsFlight* in internal/core). Its only overhead is
// one Collector.Snapshot per tick on its own goroutine, the same work a
// /metrics scrape performs.
//
// Anomaly triggers turn the recorder from post-mortem into self-dumping:
// a per-tick delta whose exec p99 crosses TailThresholdNS, or whose HTM
// abort rate crosses AbortStormRate, fires OnAnomaly (rate-limited by
// Cooldown) — the embedding server dumps the window at the moment the
// lazy-subscription-style rare anomaly happens, not minutes later when a
// human notices.
package obs

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/tm"
)

// FlightSchema is the wire-format identifier of a flight dump, probed by
// cmd/alereport exactly like ale-snapshot/v1 and aleload-result/v1.
const FlightSchema = "ale-flight/v1"

// ErrNotFlightSchema reports input that is valid JSON but not a flight
// dump — the sentinel alereport's format dispatch falls through on.
var ErrNotFlightSchema = errors.New("obs: not an ale-flight dump")

// Default flight-recorder geometry.
const (
	DefaultFlightWindow = 30 * time.Second
	DefaultFlightTick   = time.Second
)

// maxFlightAnomalies bounds the anomaly log carried in a dump.
const maxFlightAnomalies = 32

// FlightConfig configures a FlightRecorder. The zero value gets the
// default 30s window at 1s ticks with no anomaly triggers.
type FlightConfig struct {
	// Window is how much history the ring retains.
	Window time.Duration
	// Tick is the sampling period (one frame per tick).
	Tick time.Duration
	// TailThresholdNS, when >0, fires the anomaly trigger if any per-mode
	// exec-latency p99 within one tick reaches it.
	TailThresholdNS int64
	// AbortStormRate, when >0, fires the anomaly trigger if the HTM abort
	// rate within one tick reaches it (aborts/second).
	AbortStormRate float64
	// Cooldown rate-limits OnAnomaly; default Window (one dump per
	// window's worth of fresh history).
	Cooldown time.Duration
	// Clock supplies the recorder's notion of now (anomaly stamps,
	// cooldown); tests install a virtual clock. Default time.Now.
	Clock func() time.Time
	// OnAnomaly, when set, is called (on the recorder's goroutine, or the
	// Tick caller's) with a reason string each time a trigger fires past
	// the cooldown. The embedding server dumps the flight window here.
	OnAnomaly func(reason string)
}

// FlightAnomaly is one trigger firing, as carried in the dump.
type FlightAnomaly struct {
	UnixNano int64  `json:"unix_nano"`
	Reason   string `json:"reason"`
}

// FlightRecorder continuously samples a Collector into a bounded frame
// ring. Construct with NewFlight (which takes the baseline snapshot
// synchronously, sampler-style), then either Start a ticker goroutine or
// drive Tick directly from a virtual clock in tests.
type FlightRecorder struct {
	c   *Collector
	cfg FlightConfig

	mu          sync.Mutex
	frames      []Snapshot // delta ring, frames[(head+i)%cap] oldest-first
	head        int
	count       int
	prev        Snapshot
	anomalies   []FlightAnomaly
	lastAnomaly time.Time

	stop    chan struct{}
	done    chan struct{}
	once    sync.Once
	started bool
}

// NewFlight creates a recorder over c and takes the baseline snapshot
// synchronously, so everything counted after NewFlight returns lands in
// some frame. Call Start for wall-clock operation or Tick directly for
// deterministic tests.
func NewFlight(c *Collector, cfg FlightConfig) *FlightRecorder {
	if cfg.Window <= 0 {
		cfg.Window = DefaultFlightWindow
	}
	if cfg.Tick <= 0 {
		cfg.Tick = DefaultFlightTick
	}
	if cfg.Tick > cfg.Window {
		cfg.Tick = cfg.Window
	}
	if cfg.Cooldown <= 0 {
		cfg.Cooldown = cfg.Window
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	capacity := int(cfg.Window / cfg.Tick)
	if capacity < 1 {
		capacity = 1
	}
	f := &FlightRecorder{
		c:      c,
		cfg:    cfg,
		frames: make([]Snapshot, capacity),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	f.prev = c.Snapshot()
	return f
}

// Start launches the ticker goroutine. Idempotent-hostile by design (a
// second Start panics via double close on Stop); call it once.
func (f *FlightRecorder) Start() {
	f.started = true
	go func() {
		defer close(f.done)
		t := time.NewTicker(f.cfg.Tick)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				f.Tick()
			case <-f.stop:
				return
			}
		}
	}()
}

// Stop halts the ticker goroutine (no-op when Start was never called) and
// folds a final partial frame so the dump covers activity right up to the
// stop. Idempotent.
func (f *FlightRecorder) Stop() {
	f.once.Do(func() {
		close(f.stop)
		if f.started {
			<-f.done
		}
		f.Tick()
	})
}

// Tick takes one snapshot, appends the delta frame to the ring, and
// evaluates the anomaly triggers on it. Exported so tests (and Stop)
// can drive the recorder without a wall clock; safe concurrently with
// the ticker goroutine.
func (f *FlightRecorder) Tick() {
	cur := f.c.Snapshot()

	f.mu.Lock()
	delta := cur.Sub(f.prev)
	f.prev = cur
	f.frames[(f.head+f.count)%len(f.frames)] = delta
	if f.count < len(f.frames) {
		f.count++
	} else {
		f.head = (f.head + 1) % len(f.frames)
	}
	reason := f.checkAnomalyLocked(delta)
	f.mu.Unlock()

	if reason != "" && f.cfg.OnAnomaly != nil {
		f.cfg.OnAnomaly(reason)
	}
}

// checkAnomalyLocked evaluates the triggers against one delta frame and
// returns a non-empty reason when one fired past the cooldown.
func (f *FlightRecorder) checkAnomalyLocked(d Snapshot) string {
	reason := ""
	if f.cfg.TailThresholdNS > 0 {
		for m := uint8(0); m < NumModes; m++ {
			lat := d.Lat[HistExec(m)]
			if lat.Count() == 0 {
				continue
			}
			if p99 := lat.Quantile(0.99); p99 >= f.cfg.TailThresholdNS {
				reason = fmt.Sprintf("tail-latency: exec_%s p99 %v >= %v",
					ModeNames[m], time.Duration(p99), time.Duration(f.cfg.TailThresholdNS))
				break
			}
		}
	}
	if reason == "" && f.cfg.AbortStormRate > 0 && d.Interval > 0 {
		if rate := float64(d.AbortsTotal()) / d.Interval.Seconds(); rate >= f.cfg.AbortStormRate {
			reason = fmt.Sprintf("abort-storm: %.0f aborts/s >= %.0f/s", rate, f.cfg.AbortStormRate)
		}
	}
	if reason == "" {
		return ""
	}
	now := f.cfg.Clock()
	if !f.lastAnomaly.IsZero() && now.Sub(f.lastAnomaly) < f.cfg.Cooldown {
		return "" // still cooling down: the window already covers this
	}
	f.lastAnomaly = now
	if len(f.anomalies) < maxFlightAnomalies {
		f.anomalies = append(f.anomalies, FlightAnomaly{UnixNano: now.UnixNano(), Reason: reason})
	}
	return reason
}

// FlightDump is the versioned dump document: the retained window
// (oldest-first delta frames), the cumulative snapshot at dump time, the
// policy-event timeline, the anomaly log, and the trace-loss counter.
type FlightDump struct {
	Schema   string  `json:"schema"`
	Reason   string  `json:"reason"`
	UnixNano int64   `json:"unix_nano"`
	WindowS  float64 `json:"window_s"`
	TickS    float64 `json:"tick_s"`
	// Frames are the per-tick delta snapshots, oldest first.
	Frames []Snapshot `json:"frames"`
	// Cumulative is the full snapshot at dump time (carries the current
	// contention profile and exemplar table).
	Cumulative Snapshot `json:"cumulative"`
	// Events is the policy-event timeline retained by the collector.
	Events []Event `json:"events,omitempty"`
	// Anomalies are the trigger firings within the recorder's lifetime.
	Anomalies []FlightAnomaly `json:"anomalies,omitempty"`
	// DroppedTraceEvents is the engine-trace ring loss at dump time
	// (satellite of the same PR: wrap-around is no longer silent).
	DroppedTraceEvents uint64 `json:"dropped_trace_events,omitempty"`
}

// Dump writes the current window as an ale-flight/v1 JSON document.
// Callable at any time, including while the ticker runs.
func (f *FlightRecorder) Dump(w io.Writer, reason string) error {
	f.mu.Lock()
	frames := make([]Snapshot, 0, f.count)
	for i := 0; i < f.count; i++ {
		frames = append(frames, f.frames[(f.head+i)%len(f.frames)])
	}
	anomalies := append([]FlightAnomaly(nil), f.anomalies...)
	f.mu.Unlock()

	d := FlightDump{
		Schema:             FlightSchema,
		Reason:             reason,
		UnixNano:           f.cfg.Clock().UnixNano(),
		WindowS:            f.cfg.Window.Seconds(),
		TickS:              f.cfg.Tick.Seconds(),
		Frames:             frames,
		Cumulative:         f.c.Snapshot(),
		Events:             f.c.Events(),
		Anomalies:          anomalies,
		DroppedTraceEvents: f.c.TraceDropped(),
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}

// Anomalies returns a copy of the trigger-firing log.
func (f *FlightRecorder) Anomalies() []FlightAnomaly {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]FlightAnomaly(nil), f.anomalies...)
}

// FrameCount returns how many frames the ring currently retains.
func (f *FlightRecorder) FrameCount() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.count
}

// ParseFlight parses an ale-flight/v1 dump. Input that is not a single
// JSON object with the flight schema — another schema, no schema, an
// array, not JSON at all — returns (or wraps) ErrNotFlightSchema so
// format-probing dispatchers can fall through; a non-sentinel error
// means the schema matched but the body did not.
func ParseFlight(data []byte) (FlightDump, error) {
	var probe struct {
		Schema string `json:"schema"`
	}
	trimmed := bytes.TrimSpace(data)
	if err := json.Unmarshal(trimmed, &probe); err != nil {
		return FlightDump{}, fmt.Errorf("%w: %v", ErrNotFlightSchema, err)
	}
	if probe.Schema != FlightSchema {
		return FlightDump{}, ErrNotFlightSchema
	}
	var d FlightDump
	if err := json.Unmarshal(trimmed, &d); err != nil {
		return FlightDump{}, err
	}
	return d, nil
}

// TopBlamedGranules ranks the granules the dump's exec exemplars blame,
// worst witnessed latency first, one row per granule — the "who did it"
// summary alereport leads with.
func (d FlightDump) TopBlamedGranules(k int) []ExemplarRow {
	best := map[string]ExemplarRow{}
	for _, r := range d.Cumulative.TopExemplars(len(d.Cumulative.Exemplars)) {
		key := r.Lock + "\x00" + r.Granule
		if prev, ok := best[key]; !ok || r.LatNS > prev.LatNS {
			best[key] = r
		}
	}
	out := make([]ExemplarRow, 0, len(best))
	for _, r := range best {
		out = append(out, r)
	}
	// Highest witnessed latency first; ties by aggregate bucket count.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && (out[j].LatNS > out[j-1].LatNS ||
			(out[j].LatNS == out[j-1].LatNS && out[j].Count > out[j-1].Count)); j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	if len(out) > k {
		out = out[:k]
	}
	return out
}

// AbortsByReason sums HTM aborts by reason across the dump's frames
// (i.e. within the retained window, not since process start).
func (d FlightDump) AbortsByReason() map[string]uint64 {
	out := map[string]uint64{}
	for _, fr := range d.Frames {
		for r := 1; r < tm.NumAbortReasons; r++ {
			if n := fr.Aborts(tm.AbortReason(r)); n > 0 {
				out[tm.AbortReason(r).String()] += n
			}
		}
	}
	return out
}
