// Package obs is the live observability layer for the ALE library: the
// paper stresses (section 3.4) that the per-granule statistics are "useful
// in their own right", but the aggregate reports of internal/core are post
// mortem — they summarize a run after the workers quiesce. This package
// makes the same signals watchable *while* a workload runs, without
// perturbing the hot path it observes:
//
//   - Counters are sharded per thread and cache-padded: the engine's hot
//     path is one uncontended atomic add into the calling thread's private
//     shard, with zero allocations. The counter schema is deliberately
//     minimal — only "execution finalized in mode m" is counted on the
//     success path; failed attempts (HTM aborts by reason, SWOpt
//     validation failures) each count at their failure site, which is
//     already a slow path. Attempt totals are *derived* at snapshot time
//     (attempts = successes + failures), so a conflict-free execution
//     costs exactly one atomic add.
//
//   - Snapshot aggregates the shards on demand into an immutable value
//     with delta arithmetic (Snapshot.Sub) and rate computation, so a
//     scraper or sampler can turn cumulative counters into interval rates.
//
//   - expose.go serves snapshots over HTTP in Prometheus text format
//     (/metrics) and as expvar-style JSON (/snapshot), and the adaptive
//     policy's event ring (/events).
//
//   - events.go records the adaptive policy's learning-phase lifecycle
//     (phase entered, X chosen per granule, custom-phase verdict, drift
//     relearn) as structured events in a bounded ring.
//
//   - sampler.go logs interval deltas (elision %, aborts/s by reason)
//     periodically for long-running benchmarks.
//
// A Collector may outlive any single core.Runtime: cmd/alebench attaches
// one collector to every benchmark runtime of a sweep, so the /metrics
// endpoint shows the sweep's cumulative behaviour live.
package obs

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/tm"
)

// NumModes mirrors core.NumModes; the mode indices used by this package
// (Lock=0, HTM=1, SWOpt=2) are core.Mode values. obs cannot import core —
// core imports obs — so the correspondence is by convention and checked by
// a test in internal/core.
const NumModes = 3

// ModeNames are Prometheus label values per mode index.
var ModeNames = [NumModes]string{"lock", "htm", "swopt"}

// Counter indexes one sharded counter. The schema counts *outcomes*, not
// attempts: successes per final mode on the hot path, failures per kind on
// the (inherently slow) failure paths. Attempt totals are derived.
type Counter uint32

const (
	// CtrSuccessLock/HTM/SWOpt count executions finalized in each mode.
	// One of these — and nothing else — is bumped on a conflict-free
	// execution, keeping the hot path at a single atomic add. The three
	// values are contiguous and ordered like core.Mode.
	CtrSuccessLock Counter = iota
	CtrSuccessHTM
	CtrSuccessSWOpt

	// CtrSWOptFail counts failed SWOpt attempts (validation failures and
	// self-aborts).
	CtrSWOptFail
	// CtrGroupWait counts executions that deferred to a retrying SWOpt
	// group (the section 4.2 grouping mechanism engaging).
	CtrGroupWait
	// CtrFallback counts executions that abandoned HTM mid-flight
	// (capacity give-up, nesting, platform without HTM).
	CtrFallback
	// CtrPhaseTransition counts adaptive-policy learning-stage
	// transitions.
	CtrPhaseTransition
	// CtrRelearn counts AdaptivePolicy.Relearn invocations (drift
	// detector firings).
	CtrRelearn
	// CtrHTMExtension counts timestamp extensions performed by the tm
	// substrate during HTM attempts (tm.TxnStats.Extensions, mirrored by
	// the engine): loads that observed a version past the transaction's
	// snapshot but revalidated and advanced it instead of aborting. Each
	// one is a false conflict the pre-extension substrate would have
	// turned into an AbortConflict.
	CtrHTMExtension
	// CtrAbortWorkNS accumulates *nanoseconds* (not events) of work the
	// tm substrate discarded in aborted transaction attempts
	// (tm.TxnStats.AbortNS, mirrored by the engine when Options.Timing
	// is on). This is the substrate-level view of HTM waste — body
	// execution only — versus the engine-level per-granule attribution,
	// which also includes pre-attempt spin (see ContentionEntry).
	CtrAbortWorkNS
	// CtrCrossShard counts transaction attempts that touched more than
	// one commit-clock shard (tm.TxnStats.CrossShard, mirrored by the
	// engine). On a sharded domain this is the fraction of traffic that
	// pays the cross-shard read-vector revalidation; near zero means the
	// workload partitions cleanly and commits scale with the shards.
	CtrCrossShard

	// ctrAbortBase starts tm.NumAbortReasons counters of failed HTM
	// attempts by abort reason.
	ctrAbortBase

	// ctrFaultBase starts NumFaultClasses counters of injected-fault
	// firings by fault class (internal/faultinject). All zero unless a
	// fault script is installed, so dashboards can tell a fault-ablation
	// run from an organic one at a glance.
	ctrFaultBase = ctrAbortBase + Counter(tm.NumAbortReasons)

	// NumCounters sizes shard arrays.
	NumCounters = int(ctrFaultBase) + NumFaultClasses
)

// NumFaultClasses mirrors faultinject.NumClasses; obs cannot import
// faultinject (faultinject imports obs to mirror its firing counters), so
// the correspondence is by convention and checked by a test in
// internal/faultinject, exactly like NumModes vs core.NumModes.
const NumFaultClasses = 7

// FaultClassNames are Prometheus label values per fault-class index, in
// faultinject.Class order.
var FaultClassNames = [NumFaultClasses]string{
	"spurious-burst", "capacity-cliff", "conflict-storm", "htm-disable",
	"validate-fail", "delay-end", "lock-stretch",
}

// CtrSuccess returns the success counter for a core.Mode value.
func CtrSuccess(mode uint8) Counter { return CtrSuccessLock + Counter(mode) }

// CtrAbort returns the failed-HTM-attempt counter for an abort reason.
func CtrAbort(r tm.AbortReason) Counter { return ctrAbortBase + Counter(r) }

// CtrFault returns the injected-fault counter for a fault-class index
// (a faultinject.Class value).
func CtrFault(class uint8) Counter { return ctrFaultBase + Counter(class) }

// cacheLine is the assumed coherence granule; shards are padded to a
// multiple of it so two threads' shards never share a line.
const cacheLine = 64

// Shard is one thread's private slice of the counter set. The owning
// thread bumps it with uncontended atomic adds; Collector.Snapshot reads
// it with atomic loads, so concurrent aggregation is race-clean.
type Shard struct {
	counts [NumCounters]atomic.Uint64
	_      [(cacheLine - (NumCounters*8)%cacheLine) % cacheLine]byte
}

// Add bumps counter c by one.
func (s *Shard) Add(c Counter) { s.counts[c].Add(1) }

// AddN bumps counter c by n.
func (s *Shard) AddN(c Counter, n uint64) { s.counts[c].Add(n) }

// Collector owns the shards and the policy-event ring. The zero value is
// not usable; construct with New.
type Collector struct {
	start time.Time

	mu     sync.Mutex
	shards []*Shard
	// latShards are the per-thread latency histogram shards (hist.go),
	// populated only when core's Options.Timing is on.
	latShards []*LatShard
	// contention, when set, is polled at snapshot time for the granule
	// contention profile (see SetContentionSource).
	contention func() []ContentionEntry
	// shardsSrc, when set, is polled at snapshot time for the per-shard
	// commit-clock rows (see SetShardSource).
	shardsSrc func() []ShardEntry
	// traceDroppedSrc, when set, is polled for the cumulative number of
	// engine-trace ring events lost to wrap-around (see
	// SetTraceDroppedSource).
	traceDroppedSrc func() uint64

	// exemplars is the fixed-slot tail-latency exemplar table, always
	// allocated so Observe needs no nil collector checks beyond the
	// thread-level one.
	exemplars *ExemplarTable

	// global absorbs cold-path events that have no calling thread at
	// hand (adaptive-policy stage transitions run under the policy's
	// transition mutex).
	global Shard

	events ring
}

// DefaultEventCapacity is the policy-event ring size New uses.
const DefaultEventCapacity = 256

// New creates a collector with the default event-ring capacity.
func New() *Collector { return NewSized(DefaultEventCapacity) }

// NewSized creates a collector whose event ring holds the last eventCap
// policy events.
func NewSized(eventCap int) *Collector {
	c := &Collector{start: time.Now(), exemplars: NewExemplarTable()}
	c.events.init(eventCap)
	return c
}

// Start returns the collector's creation time (snapshot uptime baseline).
func (c *Collector) Start() time.Time { return c.start }

// NewShard registers and returns a fresh per-thread shard. Called once per
// core.Thread; the shard stays registered for the collector's lifetime so
// counts survive the thread.
func (c *Collector) NewShard() *Shard {
	s := &Shard{}
	c.mu.Lock()
	c.shards = append(c.shards, s)
	c.mu.Unlock()
	return s
}

// Global returns the collector-level shard for events emitted outside any
// thread context (policy transitions). Safe for concurrent use.
func (c *Collector) Global() *Shard { return &c.global }

// Snapshot sums every shard into an immutable snapshot. Safe to call
// concurrently with running threads: each counter is read atomically, so
// the result is a consistent-enough view (an in-flight execution may show
// its failure counts before its success count, never the reverse torn
// across snapshots).
func (c *Collector) Snapshot() Snapshot {
	now := time.Now()
	s := Snapshot{At: now, Interval: now.Sub(c.start)}
	c.mu.Lock()
	shards := c.shards
	latShards := c.latShards
	contention := c.contention
	shardsSrc := c.shardsSrc
	c.mu.Unlock()
	for _, sh := range shards {
		for i := range s.Counts {
			s.Counts[i] += sh.counts[i].Load()
		}
	}
	for i := range s.Counts {
		s.Counts[i] += c.global.counts[i].Load()
	}
	for _, ls := range latShards {
		for h := range ls.hists {
			lh := &ls.hists[h]
			for b := range lh.buckets {
				s.Lat[h].Buckets[b] += lh.buckets[b].Load()
			}
			s.Lat[h].SumNS += lh.sumNS.Load()
		}
	}
	if contention != nil {
		rows := contention()
		if len(rows) > ContentionTopN {
			rows = rows[:ContentionTopN]
		}
		s.Contention = rows
	}
	if shardsSrc != nil {
		s.Shards = shardsSrc()
	}
	s.Exemplars = c.exemplars.Rows()
	return s
}

// SetTraceDroppedSource installs the function snapshots and flight dumps
// poll for the cumulative count of engine-trace events lost to ring
// wrap-around (the sum of trace.Ring.Dropped over the runtime's threads).
// The core runtime registers it when tracing and Obs are both on; pass
// nil to detach. Same last-registration-wins semantics as
// SetContentionSource.
func (c *Collector) SetTraceDroppedSource(f func() uint64) {
	c.mu.Lock()
	c.traceDroppedSrc = f
	c.mu.Unlock()
}

// TraceDropped polls the registered trace-drop source, 0 when none.
func (c *Collector) TraceDropped() uint64 {
	c.mu.Lock()
	f := c.traceDroppedSrc
	c.mu.Unlock()
	if f == nil {
		return 0
	}
	return f()
}
