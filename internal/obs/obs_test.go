package obs

import (
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/tm"
)

func TestSnapshotAggregatesShards(t *testing.T) {
	c := New()
	a, b := c.NewShard(), c.NewShard()
	for i := 0; i < 10; i++ {
		a.Add(CtrSuccessHTM)
	}
	for i := 0; i < 5; i++ {
		b.Add(CtrSuccessLock)
	}
	b.AddN(CtrSuccessSWOpt, 3)
	a.Add(CtrAbort(tm.AbortConflict))
	c.Global().Add(CtrPhaseTransition)

	s := c.Snapshot()
	if got := s.Execs(); got != 18 {
		t.Errorf("Execs = %d, want 18", got)
	}
	if got := s.Successes(1); got != 10 { // ModeHTM
		t.Errorf("Successes(htm) = %d, want 10", got)
	}
	if got := s.Elided(); got != 13 {
		t.Errorf("Elided = %d, want 13", got)
	}
	if got := s.Aborts(tm.AbortConflict); got != 1 {
		t.Errorf("Aborts(conflict) = %d, want 1", got)
	}
	if got := s.Get(CtrPhaseTransition); got != 1 {
		t.Errorf("phase transitions = %d, want 1", got)
	}
	if s.Interval <= 0 {
		t.Errorf("Interval = %v, want > 0", s.Interval)
	}
}

func TestDerivedAttempts(t *testing.T) {
	c := New()
	sh := c.NewShard()
	// 4 executions: 2 straight HTM commits, 1 that aborted twice then
	// committed in HTM, 1 that failed SWOpt once and fell to the lock.
	sh.AddN(CtrSuccessHTM, 3)
	sh.AddN(CtrAbort(tm.AbortConflict), 2)
	sh.Add(CtrSWOptFail)
	sh.Add(CtrSuccessLock)

	s := c.Snapshot()
	if got := s.Attempts(1); got != 5 { // htm: 3 successes + 2 aborts
		t.Errorf("Attempts(htm) = %d, want 5", got)
	}
	if got := s.Attempts(2); got != 1 { // swopt: 0 successes + 1 fail
		t.Errorf("Attempts(swopt) = %d, want 1", got)
	}
	if got := s.Attempts(0); got != 1 { // lock never fails
		t.Errorf("Attempts(lock) = %d, want 1", got)
	}
	if got, want := s.ElisionRate(), 0.75; got != want {
		t.Errorf("ElisionRate = %v, want %v", got, want)
	}
}

func TestSnapshotSub(t *testing.T) {
	c := New()
	sh := c.NewShard()
	sh.AddN(CtrSuccessLock, 7)
	prev := c.Snapshot()
	sh.AddN(CtrSuccessLock, 5)
	sh.Add(CtrSuccessSWOpt)
	cur := c.Snapshot()
	// Pin the timestamps: the interval math is under test here, not the
	// wall clock's resolution (two back-to-back snapshots may otherwise
	// read identical coarse clock values — docs/TESTING.md).
	cur.At = prev.At.Add(time.Millisecond)

	d := cur.Sub(prev)
	if got := d.Execs(); got != 6 {
		t.Errorf("delta execs = %d, want 6", got)
	}
	if d.Interval <= 0 {
		t.Errorf("delta interval = %v, want > 0", d.Interval)
	}
	// Saturation: subtracting a later snapshot from an earlier one must
	// clamp to zero, not wrap around.
	if got := prev.Sub(cur).Execs(); got != 0 {
		t.Errorf("saturating sub = %d, want 0", got)
	}
}

func TestSnapshotRate(t *testing.T) {
	s := Snapshot{Interval: 2 * time.Second}
	s.Counts[CtrSuccessLock] = 10
	if got := s.Rate(CtrSuccessLock); got != 5 {
		t.Errorf("Rate = %v, want 5", got)
	}
	if got := (Snapshot{}).Rate(CtrSuccessLock); got != 0 {
		t.Errorf("zero-interval Rate = %v, want 0", got)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	c := New()
	sh := c.NewShard()
	sh.AddN(CtrSuccessHTM, 42)
	sh.AddN(CtrAbort(tm.AbortCapacity), 7)
	sh.Add(CtrSWOptFail)
	c.Global().Add(CtrRelearn)
	s := c.Snapshot()

	data, err := s.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := back.UnmarshalJSON(data); err != nil {
		t.Fatal(err)
	}
	if back.Execs() != s.Execs() || back.Aborts(tm.AbortCapacity) != 7 ||
		back.Get(CtrSWOptFail) != 1 || back.Get(CtrRelearn) != 1 {
		t.Errorf("round-trip mismatch: %+v vs %+v", back, s)
	}
	if back.At.UnixNano() != s.At.UnixNano() {
		t.Errorf("timestamp not preserved: %v vs %v", back.At, s.At)
	}
}

// TestHTMExtensionVisibility: the substrate's timestamp-extension counter
// must survive the whole observability pipeline — snapshot, JSON wire
// format (events.htm_extension), and Prometheus exposition.
func TestHTMExtensionVisibility(t *testing.T) {
	c := New()
	sh := c.NewShard()
	sh.AddN(CtrHTMExtension, 13)
	s := c.Snapshot()
	if got := s.Get(CtrHTMExtension); got != 13 {
		t.Fatalf("snapshot extension count = %d, want 13", got)
	}

	data, err := s.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"htm_extension":13`) {
		t.Errorf("JSON wire format lacks htm_extension: %s", data)
	}
	var back Snapshot
	if err := back.UnmarshalJSON(data); err != nil {
		t.Fatal(err)
	}
	if got := back.Get(CtrHTMExtension); got != 13 {
		t.Errorf("round-tripped extension count = %d, want 13", got)
	}

	var prom strings.Builder
	if err := WritePrometheus(&prom, s); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(prom.String(), "ale_htm_extensions_total 13") {
		t.Errorf("Prometheus exposition lacks ale_htm_extensions_total:\n%s", prom.String())
	}
}

func TestParseSnapshots(t *testing.T) {
	c := New()
	sh := c.NewShard()
	sh.AddN(CtrSuccessSWOpt, 3)
	s1 := c.Snapshot()
	sh.AddN(CtrSuccessSWOpt, 9)
	s2 := c.Snapshot()

	j1, _ := s1.MarshalJSON()
	j2, _ := s2.MarshalJSON()

	// JSON-lines stream.
	stream := append(append(append([]byte{}, j1...), '\n'), j2...)
	got, err := ParseSnapshots(stream)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Execs() != 3 || got[1].Execs() != 12 {
		t.Errorf("stream parse = %+v", got)
	}

	// JSON array.
	arr := append(append(append([]byte{'['}, j1...), ','), append(j2, ']')...)
	got, err = ParseSnapshots(arr)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[1].Execs() != 12 {
		t.Errorf("array parse = %+v", got)
	}

	if _, err := ParseSnapshots([]byte("  \n")); err == nil {
		t.Error("empty input accepted")
	}
}

func TestEventRing(t *testing.T) {
	c := NewSized(4)
	for i := 0; i < 6; i++ {
		kind := EventPhaseEnter
		if i == 5 {
			kind = EventRelearn
		}
		c.RecordEvent(Event{Kind: kind, Lock: "L", Stage: "s"})
	}
	evs := c.Events()
	if len(evs) != 4 {
		t.Fatalf("retained = %d, want 4 (capacity)", len(evs))
	}
	if evs[0].Seq != 2 || evs[3].Seq != 5 {
		t.Errorf("ring window = [%d, %d], want [2, 5]", evs[0].Seq, evs[3].Seq)
	}
	if got := c.EventsRecorded(); got != 6 {
		t.Errorf("EventsRecorded = %d, want 6", got)
	}
	s := c.Snapshot()
	if s.Get(CtrPhaseTransition) != 5 || s.Get(CtrRelearn) != 1 {
		t.Errorf("event counters = %d/%d, want 5/1",
			s.Get(CtrPhaseTransition), s.Get(CtrRelearn))
	}

	var b strings.Builder
	if err := WriteEvents(&b, evs); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "relearn") || !strings.Contains(b.String(), "lock=L") {
		t.Errorf("WriteEvents output:\n%s", b.String())
	}
}

func TestConcurrentShardsAndSnapshots(t *testing.T) {
	c := New()
	const workers = 8
	var wg sync.WaitGroup
	stop := make(chan struct{})
	snapDone := make(chan struct{})
	go func() {
		defer close(snapDone)
		for {
			select {
			case <-stop:
				return
			default:
				_ = c.Snapshot()
				_ = c.Events()
			}
		}
	}()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sh := c.NewShard()
			for i := 0; i < 5000; i++ {
				sh.Add(CtrSuccessHTM)
				if i%100 == 0 {
					c.RecordEvent(Event{Kind: EventXChosen, Lock: "L"})
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	<-snapDone

	if got := c.Snapshot().Execs(); got != workers*5000 {
		t.Errorf("final execs = %d, want %d", got, workers*5000)
	}
}

func TestFormatDelta(t *testing.T) {
	var d Snapshot
	d.Interval = time.Second
	d.Counts[CtrSuccessSWOpt] = 90
	d.Counts[CtrSuccessLock] = 10
	d.Counts[CtrSWOptFail] = 4
	d.Counts[CtrAbort(tm.AbortConflict)] = 2
	d.Counts[CtrRelearn] = 1
	line := FormatDelta(d)
	for _, want := range []string{"execs=100", "elision=90.0%", "swopt-fails/s=4", "conflict=2", "relearns=1"} {
		if !strings.Contains(line, want) {
			t.Errorf("FormatDelta missing %q in %q", want, line)
		}
	}
}

func TestSampler(t *testing.T) {
	c := New()
	sh := c.NewShard()
	var mu sync.Mutex
	var b strings.Builder
	w := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return b.Write(p)
	})
	// A long interval keeps the ticker from firing during the test; the
	// output is produced by Stop's guaranteed final-interval flush, so the
	// test never waits on (or races with) the wall clock — docs/TESTING.md.
	s := StartSampler(c, time.Hour, w)
	for i := 0; i < 100; i++ {
		sh.Add(CtrSuccessHTM)
	}
	s.Stop()
	s.Stop() // idempotent
	mu.Lock()
	out := b.String()
	mu.Unlock()
	if !strings.Contains(out, "[obs]") || !strings.Contains(out, "elision=") {
		t.Errorf("sampler output:\n%s", out)
	}
}

type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }
