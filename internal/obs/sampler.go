package obs

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"time"

	"repro/internal/tm"
)

// Sampler periodically snapshots a collector, subtracts the previous
// snapshot, and logs the interval's rates — elision %, executions/s and
// aborts/s by reason — one line per interval. It is the "watch a
// long-running benchmark breathe" tool: where /metrics serves cumulative
// counters to a scraper, the sampler prints human-readable deltas.
type Sampler struct {
	c        *Collector
	interval time.Duration
	w        io.Writer

	// prev is the baseline snapshot, taken synchronously in StartSampler
	// so that anything counted after StartSampler returns is guaranteed to
	// land in some interval (the loop goroutine may start arbitrarily
	// late; taking the baseline there would silently swallow early
	// counts).
	prev Snapshot

	stop chan struct{}
	done chan struct{}
	once sync.Once
}

// StartSampler begins logging interval deltas to w every interval. Stop
// it with Stop; a final partial interval is logged on stop so short runs
// still produce output.
func StartSampler(c *Collector, interval time.Duration, w io.Writer) *Sampler {
	if interval <= 0 {
		interval = time.Second
	}
	s := &Sampler{
		c:        c,
		interval: interval,
		w:        w,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	s.prev = c.Snapshot()
	go s.loop()
	return s
}

func (s *Sampler) loop() {
	defer close(s.done)
	t := time.NewTicker(s.interval)
	defer t.Stop()
	prev := s.prev
	for {
		select {
		case <-t.C:
			cur := s.c.Snapshot()
			s.log(cur.Sub(prev))
			prev = cur
		case <-s.stop:
			cur := s.c.Snapshot()
			if d := cur.Sub(prev); d.Execs() > 0 {
				s.log(d)
			}
			return
		}
	}
}

func (s *Sampler) log(d Snapshot) {
	fmt.Fprintln(s.w, FormatDelta(d))
}

// FormatDelta renders one interval delta as a single log line.
func FormatDelta(d Snapshot) string {
	var b strings.Builder
	fmt.Fprintf(&b, "[obs] +%.1fs execs=%d (%.0f/s) elision=%.1f%%",
		d.Interval.Seconds(), d.Execs(), d.Rate(CtrSuccessLock)+d.Rate(CtrSuccessHTM)+d.Rate(CtrSuccessSWOpt),
		d.ElisionRate()*100)
	if f := d.Counts[CtrSWOptFail]; f > 0 {
		fmt.Fprintf(&b, " swopt-fails/s=%.0f", d.Rate(CtrSWOptFail))
	}
	if g := d.Counts[CtrGroupWait]; g > 0 {
		fmt.Fprintf(&b, " group-waits/s=%.0f", d.Rate(CtrGroupWait))
	}
	first := true
	for r := 1; r < tm.NumAbortReasons; r++ {
		c := CtrAbort(tm.AbortReason(r))
		if d.Counts[c] == 0 {
			continue
		}
		if first {
			b.WriteString(" aborts/s:")
			first = false
		}
		fmt.Fprintf(&b, " %s=%.0f", tm.AbortReason(r), d.Rate(c))
	}
	if p := d.Counts[CtrPhaseTransition]; p > 0 {
		fmt.Fprintf(&b, " phase-transitions=%d", p)
	}
	if rl := d.Counts[CtrRelearn]; rl > 0 {
		fmt.Fprintf(&b, " relearns=%d", rl)
	}
	return b.String()
}

// Stop halts the sampler and waits for its final line to be written.
// Stop is idempotent.
func (s *Sampler) Stop() {
	s.once.Do(func() { close(s.stop) })
	<-s.done
}
