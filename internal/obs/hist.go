// Latency histograms: the timing half of the live observability layer.
// Counters (obs.go) answer *how often*; these answer *how long*. Shards
// follow the same discipline as counter shards — one per thread,
// single-writer, recorded with uncontended atomic adds into preallocated
// arrays, merged atomically at snapshot time — so the engine's hot path
// stays allocation-free with timing enabled (pinned by the
// TestExecuteZeroAllocsTiming* tests in internal/core).
//
// The bucket scheme is the shared power-of-two layout of
// internal/stats/logbucket.go: 32 buckets from 64ns to ~68s, quantile
// error bounded by 2×. A live merge reads each bucket atomically but the
// histogram as a whole is not a consistent cut — an in-flight Record may
// show its bucket increment before its sum increment (or vice versa), so
// a concurrent snapshot's Mean can be off by one sample, exactly like
// stats.TimeStat. Deltas of quiesced snapshots are exact.
package obs

import (
	"sync/atomic"
	"time"

	"repro/internal/stats"
)

// Hist indexes one latency histogram. The three exec histograms are
// contiguous and ordered like core.Mode (checked by the mode-mapping test
// in internal/core, same convention as CtrSuccess).
type Hist uint8

const (
	// HistExecLock/HTM/SWOpt record the full Execute latency of
	// executions finalized in each mode (planning through commit,
	// including any failed attempts along the way).
	HistExecLock Hist = iota
	HistExecHTM
	HistExecSWOpt

	// HistAttemptWaste records the attempt-to-success latency: time from
	// Execute entry to the start of the finally-successful attempt, i.e.
	// the time burned on attempts that did not commit. A conflict-free
	// execution records ~0 (bucket 0).
	HistAttemptWaste

	// HistLockHold records how long Lock-mode executions held the
	// underlying lock (acquisition to release, measured to just after
	// release).
	HistLockHold

	// HistSWOptRetry records the duration of each *failed* SWOpt attempt
	// (one retry-loop iteration: optimistic body run + failed validation).
	HistSWOptRetry

	// HistGroupWait records how long executions deferred to a retrying
	// SWOpt group (the section 4.2 grouping mechanism's wait).
	HistGroupWait

	numHists
)

// NumHists is the number of latency histograms (for sizing).
const NumHists = int(numHists)

// HistNames are the stable wire/exposition names per histogram, used as
// JSON keys and (with mode split out as a label) Prometheus metric names.
var HistNames = [NumHists]string{
	"exec_lock", "exec_htm", "exec_swopt",
	"attempt_to_success", "lock_hold", "swopt_retry", "group_wait",
}

// HistExec returns the execution-latency histogram for a core.Mode value.
func HistExec(mode uint8) Hist { return HistExecLock + Hist(mode) }

// latHist is one histogram within a shard: per-bucket counts plus a
// nanosecond sum (the count is the bucket total, never stored twice).
type latHist struct {
	buckets [stats.NumLogBuckets]atomic.Uint64
	sumNS   atomic.Uint64
}

// LatShard is one thread's private latency histogram set. Like Shard it
// is single-writer (the owning thread records, the collector reads with
// atomic loads); unlike Shard it is large enough (~2KB) that cache-line
// padding between shards would buy nothing — only the boundary lines are
// ever shared.
type LatShard struct {
	hists [NumHists]latHist
}

// Record adds one observation of ns nanoseconds to histogram h: two
// uncontended atomic adds, no allocation. Negative values clamp to 0.
func (s *LatShard) Record(h Hist, ns int64) {
	lh := &s.hists[h]
	lh.buckets[stats.LogBucketOf(ns)].Add(1)
	if ns > 0 {
		lh.sumNS.Add(uint64(ns))
	}
}

// NewLatShard registers and returns a fresh per-thread latency shard,
// the timing counterpart of NewShard. The shard stays registered for the
// collector's lifetime so recorded time survives the thread.
func (c *Collector) NewLatShard() *LatShard {
	s := &LatShard{}
	c.mu.Lock()
	c.latShards = append(c.latShards, s)
	c.mu.Unlock()
	return s
}

// LatDist is the merged distribution of one histogram in a Snapshot.
type LatDist struct {
	// Buckets are observation counts per log bucket (see
	// stats.LogBucketOf for the boundary scheme).
	Buckets [stats.NumLogBuckets]uint64
	// SumNS is the total of all recorded durations in nanoseconds.
	SumNS uint64
}

// Count returns the number of recorded observations.
func (d LatDist) Count() uint64 {
	var t uint64
	for _, n := range d.Buckets {
		t += n
	}
	return t
}

// Quantile estimates the q-quantile in nanoseconds (conservative bucket
// upper bound; ≤2× overshoot, never undershoots). 0 when empty.
func (d LatDist) Quantile(q float64) int64 {
	return stats.QuantileFromLogBuckets(d.Buckets[:], q)
}

// MaxNS returns an upper bound on the largest recorded value, 0 when
// empty.
func (d LatDist) MaxNS() int64 { return stats.MaxFromLogBuckets(d.Buckets[:]) }

// MeanNS returns the exact mean of recorded durations, 0 when empty.
func (d LatDist) MeanNS() int64 {
	c := d.Count()
	if c == 0 {
		return 0
	}
	return int64(d.SumNS / c)
}

// Mean returns MeanNS as a time.Duration.
func (d LatDist) Mean() time.Duration { return time.Duration(d.MeanNS()) }

// Sub returns the bucket-wise delta d − prev, saturating at zero like
// Snapshot.Sub.
func (d LatDist) Sub(prev LatDist) LatDist {
	var out LatDist
	for i := range d.Buckets {
		if d.Buckets[i] > prev.Buckets[i] {
			out.Buckets[i] = d.Buckets[i] - prev.Buckets[i]
		}
	}
	if d.SumNS > prev.SumNS {
		out.SumNS = d.SumNS - prev.SumNS
	}
	return out
}

// ContentionEntry is one granule's row in the contention profile: where
// wasted time went for one (lock, context) pair, as published into
// snapshots by the core runtime's profiler (Runtime.ContentionProfiles).
// All durations are cumulative nanoseconds since the runtime started.
type ContentionEntry struct {
	Lock    string `json:"lock"`
	Context string `json:"context"`
	Execs   uint64 `json:"execs"`
	// ElisionPct is the percentage of executions that completed without
	// acquiring the lock.
	ElisionPct float64 `json:"elision_pct"`
	// AbortWorkNS is time burned in HTM attempts that aborted (including
	// the pre-attempt lock-free spin).
	AbortWorkNS int64 `json:"abort_work_ns"`
	// SWOptRetryNS is time burned in SWOpt attempts that failed
	// validation.
	SWOptRetryNS int64 `json:"swopt_retry_ns"`
	// LockWaitNS is time spent between starting a Lock-mode attempt and
	// holding the lock (group deferral + acquisition wait).
	LockWaitNS int64 `json:"lock_wait_ns"`
	// GroupWaitNS is time spent deferring to retrying SWOpt groups.
	GroupWaitNS int64 `json:"group_wait_ns"`
	// WastedNS is the total attributed waste (sum of the above).
	WastedNS int64 `json:"wasted_ns"`
	// HoldNS is total time Lock-mode executions held the lock —
	// serialization pressure imposed on everyone else.
	HoldNS int64 `json:"hold_ns"`
	// PayoffNS estimates the net benefit of elision for this granule:
	// time saved by elided executions (vs. the granule's mean Lock-mode
	// latency) minus WastedNS. Negative means elision is losing; 0 when
	// no Lock-mode baseline exists yet.
	PayoffNS int64 `json:"payoff_ns"`
}

// ContentionTopN bounds how many granule rows a Snapshot retains (and
// the JSON wire format carries): the profile is a top-N report, not a
// full dump, so snapshot size stays bounded on granule-heavy workloads.
const ContentionTopN = 16

// SetContentionSource installs the function snapshots call to collect
// the granule contention profile (rows sorted by WastedNS descending;
// Snapshot truncates to ContentionTopN). The core runtime registers its
// profiler here when Options.Timing and Options.Obs are both set. A
// collector shared across several runtimes keeps only the most recently
// registered source (matching bench.LastRuntime semantics); pass nil to
// detach.
func (c *Collector) SetContentionSource(f func() []ContentionEntry) {
	c.mu.Lock()
	c.contention = f
	c.mu.Unlock()
}
