package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/stats"
	"repro/internal/tm"
)

// WritePrometheus renders a snapshot in the Prometheus text exposition
// format (version 0.0.4): counters as ale_*_total, plus derived gauges for
// the elision rate and uptime. Attempt totals are derived per mode (see
// Snapshot.Attempts), so a scraper sees the familiar attempts/successes
// pairs even though the hot path only counts successes.
func WritePrometheus(w io.Writer, s Snapshot) error {
	var b strings.Builder

	b.WriteString("# HELP ale_execs_total Completed critical-section executions.\n")
	b.WriteString("# TYPE ale_execs_total counter\n")
	fmt.Fprintf(&b, "ale_execs_total %d\n", s.Execs())

	b.WriteString("# HELP ale_attempts_total Execution attempts by mode (derived: successes + mode failures).\n")
	b.WriteString("# TYPE ale_attempts_total counter\n")
	for m := uint8(0); m < NumModes; m++ {
		fmt.Fprintf(&b, "ale_attempts_total{mode=%q} %d\n", ModeNames[m], s.Attempts(m))
	}

	b.WriteString("# HELP ale_successes_total Executions finalized by mode.\n")
	b.WriteString("# TYPE ale_successes_total counter\n")
	for m := uint8(0); m < NumModes; m++ {
		fmt.Fprintf(&b, "ale_successes_total{mode=%q} %d\n", ModeNames[m], s.Successes(m))
	}

	b.WriteString("# HELP ale_aborts_total Failed HTM attempts by abort reason.\n")
	b.WriteString("# TYPE ale_aborts_total counter\n")
	for r := 1; r < tm.NumAbortReasons; r++ {
		fmt.Fprintf(&b, "ale_aborts_total{reason=%q} %d\n",
			tm.AbortReason(r).String(), s.Aborts(tm.AbortReason(r)))
	}

	for _, c := range []struct {
		name, help string
		ctr        Counter
	}{
		{"ale_swopt_fails_total", "Failed SWOpt attempts (validation failures and self-aborts).", CtrSWOptFail},
		{"ale_group_waits_total", "Executions that deferred to a retrying SWOpt group.", CtrGroupWait},
		{"ale_fallbacks_total", "Executions that abandoned HTM mid-flight.", CtrFallback},
		{"ale_policy_phase_transitions_total", "Adaptive-policy learning-stage transitions.", CtrPhaseTransition},
		{"ale_policy_relearns_total", "Adaptive-policy relearns (drift detector firings).", CtrRelearn},
		{"ale_htm_extensions_total", "Timestamp extensions during HTM attempts (false conflicts absorbed).", CtrHTMExtension},
	} {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n",
			c.name, c.help, c.name, c.name, s.Counts[c.ctr])
	}

	if n := s.Counts[CtrAbortWorkNS]; n > 0 {
		b.WriteString("# HELP ale_htm_abort_work_seconds_total Work discarded in aborted HTM attempts (substrate view).\n")
		b.WriteString("# TYPE ale_htm_abort_work_seconds_total counter\n")
		fmt.Fprintf(&b, "ale_htm_abort_work_seconds_total %g\n", float64(n)/1e9)
	}

	if n := s.Counts[CtrCrossShard]; n > 0 {
		b.WriteString("# HELP ale_cross_shard_txns_total Transaction attempts spanning more than one commit-clock shard.\n")
		b.WriteString("# TYPE ale_cross_shard_txns_total counter\n")
		fmt.Fprintf(&b, "ale_cross_shard_txns_total %d\n", n)
	}

	if len(s.Shards) > 0 {
		b.WriteString("# HELP ale_shard_commit_clock Per-shard commit-clock position (commits absorbed by the shard).\n")
		b.WriteString("# TYPE ale_shard_commit_clock gauge\n")
		for _, e := range s.Shards {
			fmt.Fprintf(&b, "ale_shard_commit_clock{shard=\"%d\"} %d\n", e.Shard, e.Clock)
		}
	}

	if s.HasTiming() {
		writeLatencyHistograms(&b, s)
	}

	if s.FaultsTotal() > 0 {
		b.WriteString("# HELP ale_faults_injected_total Injected-fault firings by class (internal/faultinject).\n")
		b.WriteString("# TYPE ale_faults_injected_total counter\n")
		for c := uint8(0); c < NumFaultClasses; c++ {
			fmt.Fprintf(&b, "ale_faults_injected_total{class=%q} %d\n",
				FaultClassNames[c], s.Faults(c))
		}
	}

	b.WriteString("# HELP ale_elision_rate Fraction of executions completing without the lock.\n")
	b.WriteString("# TYPE ale_elision_rate gauge\n")
	fmt.Fprintf(&b, "ale_elision_rate %g\n", s.ElisionRate())

	b.WriteString("# HELP ale_uptime_seconds Time span the counters cover.\n")
	b.WriteString("# TYPE ale_uptime_seconds gauge\n")
	fmt.Fprintf(&b, "ale_uptime_seconds %g\n", s.Interval.Seconds())

	_, err := io.WriteString(w, b.String())
	return err
}

// writeLatencyHistograms renders the timing layer's log-bucketed
// histograms as Prometheus histogram families (_bucket/_sum/_count with
// cumulative le labels in seconds). The three per-mode execution
// histograms share one family with a mode label; the rest are their own
// families. Only emitted when the snapshot has timing data, so scrape
// output is unchanged for runs without Options.Timing.
func writeLatencyHistograms(b *strings.Builder, s Snapshot) {
	le := func(i int) float64 { return float64(stats.LogBucketUpper(i)) / 1e9 }
	// Index the snapshot's exemplar rows by (histogram, bucket) so each
	// _bucket line can carry its witness in the OpenMetrics `# {…}` form.
	exIdx := map[string]map[int]ExemplarRow{}
	for _, r := range s.Exemplars {
		m := exIdx[r.Hist]
		if m == nil {
			m = map[int]ExemplarRow{}
			exIdx[r.Hist] = m
		}
		m[r.Bucket] = r
	}
	emit := func(name, labels, histKey string, d LatDist) {
		var cum uint64
		for i := range d.Buckets {
			cum += d.Buckets[i]
			if d.Buckets[i] == 0 && i != len(d.Buckets)-1 {
				continue // keep output compact: only boundaries that moved
			}
			sep := ","
			if labels == "" {
				sep = ""
			}
			fmt.Fprintf(b, "%s_bucket{%s%sle=%q} %d", name, labels, sep, strconv.FormatFloat(le(i), 'g', -1, 64), cum)
			if r, ok := exIdx[histKey][i]; ok && d.Buckets[i] > 0 {
				b.WriteString(promExemplar(r))
			}
			b.WriteByte('\n')
		}
		sep := ","
		if labels == "" {
			sep = ""
		}
		fmt.Fprintf(b, "%s_bucket{%s%sle=\"+Inf\"} %d\n", name, labels, sep, cum)
		if labels == "" {
			fmt.Fprintf(b, "%s_sum %g\n", name, float64(d.SumNS)/1e9)
			fmt.Fprintf(b, "%s_count %d\n", name, cum)
		} else {
			fmt.Fprintf(b, "%s_sum{%s} %g\n", name, labels, float64(d.SumNS)/1e9)
			fmt.Fprintf(b, "%s_count{%s} %d\n", name, labels, cum)
		}
	}

	b.WriteString("# HELP ale_exec_latency_seconds Execute latency by final mode (log-bucketed).\n")
	b.WriteString("# TYPE ale_exec_latency_seconds histogram\n")
	for m := uint8(0); m < NumModes; m++ {
		emit("ale_exec_latency_seconds", fmt.Sprintf("mode=%q", ModeNames[m]), HistNames[HistExec(m)], s.Lat[HistExec(m)])
	}
	for _, h := range []struct {
		name, help string
		hist       Hist
	}{
		{"ale_attempt_to_success_seconds", "Time from Execute entry to the start of the winning attempt.", HistAttemptWaste},
		{"ale_lock_hold_seconds", "Lock hold time of Lock-mode executions.", HistLockHold},
		{"ale_swopt_retry_seconds", "Duration of failed SWOpt attempts.", HistSWOptRetry},
		{"ale_group_wait_seconds", "Grouping-mechanism deferral waits.", HistGroupWait},
	} {
		fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s histogram\n", h.name, h.help, h.name)
		emit(h.name, "", HistNames[h.hist], s.Lat[h.hist])
	}
}

// promExemplar renders one exemplar row as the OpenMetrics `# {…} value`
// suffix of a _bucket line. Labels stay minimal (granule, mode, and the
// request id when present); the value is the witnessed latency in seconds.
func promExemplar(r ExemplarRow) string {
	var b strings.Builder
	b.WriteString(" # {")
	fmt.Fprintf(&b, "granule=%q,mode=%q", r.Granule, r.Mode)
	if r.RequestID != 0 {
		fmt.Fprintf(&b, ",request_id=\"%d\"", r.RequestID)
	}
	fmt.Fprintf(&b, "} %g", float64(r.LatNS)/1e9)
	return b.String()
}

// WriteJSON renders a snapshot as the expvar-style JSON object /snapshot
// serves (the format Snapshot.MarshalJSON and ParseSnapshots share).
func WriteJSON(w io.Writer, s Snapshot) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// Handler serves the collector over HTTP:
//
//	/metrics   Prometheus text format (with OpenMetrics exemplars)
//	/snapshot  expvar-style JSON (the cmd/alereport input format)
//	/events    the adaptive-policy event timeline (text; ?format=json
//	           for the machine-readable form)
//	/stream    NDJSON live stream: one cumulative snapshot, then
//	           interval deltas (?interval=1s, ?n=0 for unbounded) —
//	           the cmd/aletop feed
//
// Every response is computed from one consistent Snapshot taken at request
// time; handlers are safe under concurrent workload execution.
func Handler(c *Collector) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = WritePrometheus(w, c.Snapshot())
	})
	mux.HandleFunc("/snapshot", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = WriteJSON(w, c.Snapshot())
	})
	mux.HandleFunc("/events", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			events := c.Events()
			if events == nil {
				events = []Event{}
			}
			_ = enc.Encode(events)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_ = WriteEvents(w, c.Events())
	})
	mux.HandleFunc("/stream", func(w http.ResponseWriter, r *http.Request) {
		serveStream(c, w, r)
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ALE live metrics: /metrics (Prometheus), /snapshot (JSON), /events (policy timeline), /stream (NDJSON live deltas)")
	})
	return mux
}

// serveStream implements /stream: NDJSON whose first line is the
// cumulative snapshot at connect time and whose subsequent lines are
// interval deltas — exactly the sampler's baseline-then-deltas shape,
// pushed over HTTP instead of logged. Query parameters:
//
//	interval  delta period (Go duration, default 1s, floor 10ms)
//	n         number of delta lines then EOF; 0 (default) streams until
//	          the client disconnects
//
// Each line is one compact ale-snapshot/v1 object, so any consumer of
// /snapshot (including obs.ParseSnapshots) can read the stream.
func serveStream(c *Collector, w http.ResponseWriter, r *http.Request) {
	interval := time.Second
	if v := r.URL.Query().Get("interval"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil || d <= 0 {
			http.Error(w, "bad interval: want a positive Go duration", http.StatusBadRequest)
			return
		}
		interval = d
	}
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	n := 0
	if v := r.URL.Query().Get("n"); v != "" {
		k, err := strconv.Atoi(v)
		if err != nil || k < 0 {
			http.Error(w, "bad n: want a non-negative integer", http.StatusBadRequest)
			return
		}
		n = k
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)

	prev := c.Snapshot()
	if err := enc.Encode(prev); err != nil {
		return
	}
	if flusher != nil {
		flusher.Flush()
	}

	t := time.NewTicker(interval)
	defer t.Stop()
	for sent := 0; n == 0 || sent < n; sent++ {
		select {
		case <-r.Context().Done():
			return
		case <-t.C:
		}
		cur := c.Snapshot()
		if err := enc.Encode(cur.Sub(prev)); err != nil {
			return
		}
		prev = cur
		if flusher != nil {
			flusher.Flush()
		}
	}
}
