package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"

	"repro/internal/tm"
)

// WritePrometheus renders a snapshot in the Prometheus text exposition
// format (version 0.0.4): counters as ale_*_total, plus derived gauges for
// the elision rate and uptime. Attempt totals are derived per mode (see
// Snapshot.Attempts), so a scraper sees the familiar attempts/successes
// pairs even though the hot path only counts successes.
func WritePrometheus(w io.Writer, s Snapshot) error {
	var b strings.Builder

	b.WriteString("# HELP ale_execs_total Completed critical-section executions.\n")
	b.WriteString("# TYPE ale_execs_total counter\n")
	fmt.Fprintf(&b, "ale_execs_total %d\n", s.Execs())

	b.WriteString("# HELP ale_attempts_total Execution attempts by mode (derived: successes + mode failures).\n")
	b.WriteString("# TYPE ale_attempts_total counter\n")
	for m := uint8(0); m < NumModes; m++ {
		fmt.Fprintf(&b, "ale_attempts_total{mode=%q} %d\n", ModeNames[m], s.Attempts(m))
	}

	b.WriteString("# HELP ale_successes_total Executions finalized by mode.\n")
	b.WriteString("# TYPE ale_successes_total counter\n")
	for m := uint8(0); m < NumModes; m++ {
		fmt.Fprintf(&b, "ale_successes_total{mode=%q} %d\n", ModeNames[m], s.Successes(m))
	}

	b.WriteString("# HELP ale_aborts_total Failed HTM attempts by abort reason.\n")
	b.WriteString("# TYPE ale_aborts_total counter\n")
	for r := 1; r < tm.NumAbortReasons; r++ {
		fmt.Fprintf(&b, "ale_aborts_total{reason=%q} %d\n",
			tm.AbortReason(r).String(), s.Aborts(tm.AbortReason(r)))
	}

	for _, c := range []struct {
		name, help string
		ctr        Counter
	}{
		{"ale_swopt_fails_total", "Failed SWOpt attempts (validation failures and self-aborts).", CtrSWOptFail},
		{"ale_group_waits_total", "Executions that deferred to a retrying SWOpt group.", CtrGroupWait},
		{"ale_fallbacks_total", "Executions that abandoned HTM mid-flight.", CtrFallback},
		{"ale_policy_phase_transitions_total", "Adaptive-policy learning-stage transitions.", CtrPhaseTransition},
		{"ale_policy_relearns_total", "Adaptive-policy relearns (drift detector firings).", CtrRelearn},
		{"ale_htm_extensions_total", "Timestamp extensions during HTM attempts (false conflicts absorbed).", CtrHTMExtension},
	} {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n",
			c.name, c.help, c.name, c.name, s.Counts[c.ctr])
	}

	if s.FaultsTotal() > 0 {
		b.WriteString("# HELP ale_faults_injected_total Injected-fault firings by class (internal/faultinject).\n")
		b.WriteString("# TYPE ale_faults_injected_total counter\n")
		for c := uint8(0); c < NumFaultClasses; c++ {
			fmt.Fprintf(&b, "ale_faults_injected_total{class=%q} %d\n",
				FaultClassNames[c], s.Faults(c))
		}
	}

	b.WriteString("# HELP ale_elision_rate Fraction of executions completing without the lock.\n")
	b.WriteString("# TYPE ale_elision_rate gauge\n")
	fmt.Fprintf(&b, "ale_elision_rate %g\n", s.ElisionRate())

	b.WriteString("# HELP ale_uptime_seconds Time span the counters cover.\n")
	b.WriteString("# TYPE ale_uptime_seconds gauge\n")
	fmt.Fprintf(&b, "ale_uptime_seconds %g\n", s.Interval.Seconds())

	_, err := io.WriteString(w, b.String())
	return err
}

// WriteJSON renders a snapshot as the expvar-style JSON object /snapshot
// serves (the format Snapshot.MarshalJSON and ParseSnapshots share).
func WriteJSON(w io.Writer, s Snapshot) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// Handler serves the collector over HTTP:
//
//	/metrics   Prometheus text format
//	/snapshot  expvar-style JSON (the cmd/alereport input format)
//	/events    the adaptive-policy event timeline as text
//
// Every response is computed from one consistent Snapshot taken at request
// time; handlers are safe under concurrent workload execution.
func Handler(c *Collector) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = WritePrometheus(w, c.Snapshot())
	})
	mux.HandleFunc("/snapshot", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = WriteJSON(w, c.Snapshot())
	})
	mux.HandleFunc("/events", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_ = WriteEvents(w, c.Events())
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ALE live metrics: /metrics (Prometheus), /snapshot (JSON), /events (policy timeline)")
	})
	return mux
}
