package obs

import (
	"io"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/tm"
)

func TestWritePrometheus(t *testing.T) {
	c := New()
	sh := c.NewShard()
	sh.AddN(CtrSuccessHTM, 80)
	sh.AddN(CtrSuccessSWOpt, 15)
	sh.AddN(CtrSuccessLock, 5)
	sh.AddN(CtrAbort(tm.AbortConflict), 3)
	sh.AddN(CtrAbort(tm.AbortCapacity), 2)
	sh.Add(CtrSWOptFail)
	c.Global().Add(CtrPhaseTransition)

	var b strings.Builder
	if err := WritePrometheus(&b, c.Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"ale_execs_total 100",
		`ale_attempts_total{mode="htm"} 85`, // 80 successes + 5 aborts
		`ale_attempts_total{mode="swopt"} 16`,
		`ale_successes_total{mode="htm"} 80`,
		`ale_aborts_total{reason="conflict"} 3`,
		`ale_aborts_total{reason="capacity"} 2`,
		"ale_swopt_fails_total 1",
		"ale_policy_phase_transitions_total 1",
		"ale_elision_rate 0.95",
		"# TYPE ale_execs_total counter",
		"# TYPE ale_elision_rate gauge",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in prometheus output:\n%s", want, out)
		}
	}
}

func TestHandlerEndpoints(t *testing.T) {
	c := New()
	sh := c.NewShard()
	sh.AddN(CtrSuccessHTM, 10)
	c.RecordEvent(Event{Kind: EventPhaseEnter, Lock: "L", Stage: "Lock/measure"})

	srv := httptest.NewServer(Handler(c))
	defer srv.Close()

	get := func(path string) (string, string) {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body), resp.Header.Get("Content-Type")
	}

	body, ct := get("/metrics")
	if !strings.Contains(body, "ale_execs_total 10") {
		t.Errorf("/metrics body:\n%s", body)
	}
	if !strings.Contains(ct, "text/plain") {
		t.Errorf("/metrics content-type = %q", ct)
	}

	body, ct = get("/snapshot")
	if !strings.Contains(ct, "application/json") {
		t.Errorf("/snapshot content-type = %q", ct)
	}
	snaps, err := ParseSnapshots([]byte(body))
	if err != nil || len(snaps) != 1 || snaps[0].Execs() != 10 {
		t.Errorf("/snapshot not parseable back: %v %+v", err, snaps)
	}

	body, _ = get("/events")
	if !strings.Contains(body, "phase-enter") || !strings.Contains(body, "Lock/measure") {
		t.Errorf("/events body:\n%s", body)
	}

	body, _ = get("/")
	if !strings.Contains(body, "/metrics") {
		t.Errorf("index body:\n%s", body)
	}
}

// TestHandlerHeadersAndEdges pins the parts of the HTTP surface the
// endpoint-content test above does not: exact content-type headers, the
// 404 contract for unknown paths, and the /events body being non-empty
// even before any event is recorded (so scrapers and the aleserve drain
// tests can always assert on a body).
func TestHandlerHeadersAndEdges(t *testing.T) {
	c := New()
	srv := httptest.NewServer(Handler(c))
	defer srv.Close()

	get := func(path string) (int, string, string) {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(body), resp.Header.Get("Content-Type")
	}

	if code, body, ct := get("/"); code != 200 || ct != "text/plain; charset=utf-8" ||
		!strings.Contains(body, "/metrics") || !strings.Contains(body, "/snapshot") ||
		!strings.Contains(body, "/events") {
		t.Errorf("index: code=%d ct=%q body=%q", code, ct, body)
	}
	if code, body, ct := get("/events"); code != 200 || ct != "text/plain; charset=utf-8" || len(body) == 0 {
		t.Errorf("/events empty-ring: code=%d ct=%q body=%q", code, ct, body)
	}
	if code, _, ct := get("/snapshot"); code != 200 || ct != "application/json" {
		t.Errorf("/snapshot: code=%d ct=%q", code, ct)
	}
	if code, _, _ := get("/nope"); code != 404 {
		t.Errorf("unknown path: code=%d, want 404", code)
	}

	// After events land, /events carries them — the drain flow's final
	// state remains scrapeable.
	c.RecordEvent(Event{Kind: EventPhaseEnter, Lock: "kv", Stage: "HTM/measure"})
	if _, body, _ := get("/events"); !strings.Contains(body, "kv") {
		t.Errorf("/events after record: %q", body)
	}
}
