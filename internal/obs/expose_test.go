package obs

import (
	"encoding/json"
	"io"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/tm"
)

func TestWritePrometheus(t *testing.T) {
	c := New()
	sh := c.NewShard()
	sh.AddN(CtrSuccessHTM, 80)
	sh.AddN(CtrSuccessSWOpt, 15)
	sh.AddN(CtrSuccessLock, 5)
	sh.AddN(CtrAbort(tm.AbortConflict), 3)
	sh.AddN(CtrAbort(tm.AbortCapacity), 2)
	sh.Add(CtrSWOptFail)
	c.Global().Add(CtrPhaseTransition)

	var b strings.Builder
	if err := WritePrometheus(&b, c.Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"ale_execs_total 100",
		`ale_attempts_total{mode="htm"} 85`, // 80 successes + 5 aborts
		`ale_attempts_total{mode="swopt"} 16`,
		`ale_successes_total{mode="htm"} 80`,
		`ale_aborts_total{reason="conflict"} 3`,
		`ale_aborts_total{reason="capacity"} 2`,
		"ale_swopt_fails_total 1",
		"ale_policy_phase_transitions_total 1",
		"ale_elision_rate 0.95",
		"# TYPE ale_execs_total counter",
		"# TYPE ale_elision_rate gauge",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in prometheus output:\n%s", want, out)
		}
	}
}

func TestHandlerEndpoints(t *testing.T) {
	c := New()
	sh := c.NewShard()
	sh.AddN(CtrSuccessHTM, 10)
	c.RecordEvent(Event{Kind: EventPhaseEnter, Lock: "L", Stage: "Lock/measure"})

	srv := httptest.NewServer(Handler(c))
	defer srv.Close()

	get := func(path string) (string, string) {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body), resp.Header.Get("Content-Type")
	}

	body, ct := get("/metrics")
	if !strings.Contains(body, "ale_execs_total 10") {
		t.Errorf("/metrics body:\n%s", body)
	}
	if !strings.Contains(ct, "text/plain") {
		t.Errorf("/metrics content-type = %q", ct)
	}

	body, ct = get("/snapshot")
	if !strings.Contains(ct, "application/json") {
		t.Errorf("/snapshot content-type = %q", ct)
	}
	snaps, err := ParseSnapshots([]byte(body))
	if err != nil || len(snaps) != 1 || snaps[0].Execs() != 10 {
		t.Errorf("/snapshot not parseable back: %v %+v", err, snaps)
	}

	body, _ = get("/events")
	if !strings.Contains(body, "phase-enter") || !strings.Contains(body, "Lock/measure") {
		t.Errorf("/events body:\n%s", body)
	}

	body, _ = get("/")
	if !strings.Contains(body, "/metrics") {
		t.Errorf("index body:\n%s", body)
	}
}

// TestHandlerHeadersAndEdges pins the parts of the HTTP surface the
// endpoint-content test above does not: exact content-type headers, the
// 404 contract for unknown paths, and the /events body being non-empty
// even before any event is recorded (so scrapers and the aleserve drain
// tests can always assert on a body).
func TestHandlerHeadersAndEdges(t *testing.T) {
	c := New()
	srv := httptest.NewServer(Handler(c))
	defer srv.Close()

	get := func(path string) (int, string, string) {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(body), resp.Header.Get("Content-Type")
	}

	if code, body, ct := get("/"); code != 200 || ct != "text/plain; charset=utf-8" ||
		!strings.Contains(body, "/metrics") || !strings.Contains(body, "/snapshot") ||
		!strings.Contains(body, "/events") || !strings.Contains(body, "/stream") {
		t.Errorf("index: code=%d ct=%q body=%q", code, ct, body)
	}
	if code, body, ct := get("/events"); code != 200 || ct != "text/plain; charset=utf-8" || len(body) == 0 {
		t.Errorf("/events empty-ring: code=%d ct=%q body=%q", code, ct, body)
	}
	if code, _, ct := get("/snapshot"); code != 200 || ct != "application/json" {
		t.Errorf("/snapshot: code=%d ct=%q", code, ct)
	}
	if code, _, _ := get("/nope"); code != 404 {
		t.Errorf("unknown path: code=%d, want 404", code)
	}

	// After events land, /events carries them — the drain flow's final
	// state remains scrapeable.
	c.RecordEvent(Event{Kind: EventPhaseEnter, Lock: "kv", Stage: "HTM/measure"})
	if _, body, _ := get("/events"); !strings.Contains(body, "kv") {
		t.Errorf("/events after record: %q", body)
	}
}

// TestEventsJSONFormat: /events?format=json serves the machine-readable
// policy timeline — a JSON array of the stable event wire form — with the
// right content type, and an empty ring yields a valid empty array, not
// the text placeholder.
func TestEventsJSONFormat(t *testing.T) {
	c := New()
	srv := httptest.NewServer(Handler(c))
	defer srv.Close()

	get := func(path string) (string, string) {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body), resp.Header.Get("Content-Type")
	}

	body, ct := get("/events?format=json")
	if ct != "application/json" {
		t.Errorf("content-type = %q, want application/json", ct)
	}
	var empty []Event
	if err := json.Unmarshal([]byte(body), &empty); err != nil || len(empty) != 0 {
		t.Errorf("empty ring: err=%v events=%v body=%q", err, empty, body)
	}

	c.RecordEvent(Event{Kind: EventXChosen, Lock: "kv", Granule: "kv/get", Detail: "X=7"})
	body, _ = get("/events?format=json")
	var events []Event
	if err := json.Unmarshal([]byte(body), &events); err != nil {
		t.Fatalf("decode: %v\n%s", err, body)
	}
	if len(events) != 1 || events[0].Kind != EventXChosen ||
		events[0].Lock != "kv" || events[0].Granule != "kv/get" || events[0].Detail != "X=7" {
		t.Errorf("events = %+v", events)
	}
	// The raw wire form uses the documented keys.
	for _, want := range []string{`"kind": "x-chosen"`, `"unix_nano"`, `"granule": "kv/get"`} {
		if !strings.Contains(body, want) {
			t.Errorf("wire form missing %s:\n%s", want, body)
		}
	}
}

// TestStreamEndpoint: /stream's first line is the cumulative snapshot,
// subsequent lines are interval deltas, every line parseable by the
// /snapshot machinery. Bounded with ?n so the test consumes a finite
// stream at a short interval (no wall-clock assertions).
func TestStreamEndpoint(t *testing.T) {
	c := New()
	sh := c.NewShard()
	sh.AddN(CtrSuccessHTM, 42)

	srv := httptest.NewServer(Handler(c))
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/stream?interval=10ms&n=2")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if got := resp.Header.Get("Content-Type"); got != "application/x-ndjson" {
		t.Errorf("content-type = %q", got)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(body)), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want 3 (1 cumulative + 2 deltas):\n%s", len(lines), body)
	}
	snaps, err := ParseSnapshots(body)
	if err != nil || len(snaps) != 3 {
		t.Fatalf("stream not parseable as snapshots: %v (%d)", err, len(snaps))
	}
	if snaps[0].Execs() != 42 {
		t.Errorf("first line execs = %d, want cumulative 42", snaps[0].Execs())
	}
	// Nothing executed during the stream, so deltas are empty.
	if snaps[1].Execs() != 0 || snaps[2].Execs() != 0 {
		t.Errorf("idle deltas nonzero: %d, %d", snaps[1].Execs(), snaps[2].Execs())
	}
}

func TestStreamBadParams(t *testing.T) {
	c := New()
	srv := httptest.NewServer(Handler(c))
	defer srv.Close()
	for _, q := range []string{"?interval=bogus", "?interval=-1s", "?n=-3", "?n=x"} {
		resp, err := srv.Client().Get(srv.URL + "/stream" + q)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 400 {
			t.Errorf("GET /stream%s: status %d, want 400", q, resp.StatusCode)
		}
	}
}

// TestPrometheusExemplars: a snapshot carrying exemplar rows renders them
// as OpenMetrics `# {…}` suffixes on the matching _bucket lines.
func TestPrometheusExemplars(t *testing.T) {
	c := New()
	sh := c.NewShard()
	sh.Add(CtrSuccessHTM)
	ls := c.NewLatShard()
	lat := int64(3 << 20) // ~3ms, a tail bucket
	ls.Record(HistExecHTM, lat)
	c.Exemplars().SetMinLatency(0)
	c.Exemplars().Observe(HistExecHTM, Exemplar{
		LatNS: lat, Lock: "kv", Granule: "kv/set", Mode: 1,
		Attempts: 4, RequestID: 77,
	})

	var b strings.Builder
	if err := WritePrometheus(&b, c.Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	var exLine string
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, " # {") {
			exLine = line
			break
		}
	}
	if exLine == "" {
		t.Fatalf("no exemplar suffix in output:\n%s", out)
	}
	for _, want := range []string{
		`ale_exec_latency_seconds_bucket{mode="htm"`,
		`granule="kv/set"`, `mode="htm"`, `request_id="77"`,
	} {
		if !strings.Contains(exLine, want) {
			t.Errorf("exemplar line missing %s: %s", want, exLine)
		}
	}
}
