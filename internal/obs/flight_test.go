package obs

import (
	"strings"
	"testing"
	"time"

	"repro/internal/tm"
)

// virtualClock is the deterministic time source the flight tests run on
// (docs/TESTING.md: no time.Sleep; the recorder is driven by explicit
// Tick calls and reads this clock for anomaly stamps and cooldowns).
type virtualClock struct{ now time.Time }

func (v *virtualClock) Now() time.Time          { return v.now }
func (v *virtualClock) advance(d time.Duration) { v.now = v.now.Add(d) }

func newTestFlight(c *Collector, cfg FlightConfig) (*FlightRecorder, *virtualClock) {
	vc := &virtualClock{now: time.Unix(1_700_000_000, 0)}
	cfg.Clock = vc.Now
	return NewFlight(c, cfg), vc
}

// TestFlightFramesAreDeltas: each Tick frames exactly what happened since
// the previous one, and the ring drops oldest-first once the window fills.
func TestFlightFramesAreDeltas(t *testing.T) {
	c := New()
	sh := c.NewShard()
	sh.AddN(CtrSuccessHTM, 5) // before baseline: must not appear in frames

	f, _ := newTestFlight(c, FlightConfig{Window: 3 * time.Second, Tick: time.Second})

	sh.AddN(CtrSuccessHTM, 10)
	f.Tick()
	sh.AddN(CtrSuccessLock, 7)
	f.Tick()
	if f.FrameCount() != 2 {
		t.Fatalf("FrameCount = %d", f.FrameCount())
	}

	var sb strings.Builder
	if err := f.Dump(&sb, "test"); err != nil {
		t.Fatal(err)
	}
	d, err := ParseFlight([]byte(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if d.Schema != FlightSchema || d.Reason != "test" {
		t.Errorf("header: %q %q", d.Schema, d.Reason)
	}
	if len(d.Frames) != 2 {
		t.Fatalf("frames = %d", len(d.Frames))
	}
	if d.Frames[0].Execs() != 10 || d.Frames[0].Successes(1) != 10 {
		t.Errorf("frame 0 = %d execs (htm %d), want 10 htm", d.Frames[0].Execs(), d.Frames[0].Successes(1))
	}
	if d.Frames[1].Execs() != 7 || d.Frames[1].Successes(0) != 7 {
		t.Errorf("frame 1 = %d execs (lock %d), want 7 lock", d.Frames[1].Execs(), d.Frames[1].Successes(0))
	}
	if d.Cumulative.Execs() != 22 { // 5 pre-baseline + 10 + 7
		t.Errorf("cumulative execs = %d, want 22", d.Cumulative.Execs())
	}

	// Overflow the 3-frame window: the oldest frame falls off.
	sh.AddN(CtrSuccessSWOpt, 1)
	f.Tick()
	sh.AddN(CtrSuccessSWOpt, 2)
	f.Tick()
	if f.FrameCount() != 3 {
		t.Fatalf("FrameCount after wrap = %d", f.FrameCount())
	}
	sb.Reset()
	if err := f.Dump(&sb, "wrap"); err != nil {
		t.Fatal(err)
	}
	d, err = ParseFlight([]byte(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if d.Frames[0].Execs() != 7 { // the 10-htm frame dropped
		t.Errorf("oldest retained frame = %d execs, want 7", d.Frames[0].Execs())
	}
	if d.Frames[2].Successes(2) != 2 {
		t.Errorf("newest frame swopt = %d, want 2", d.Frames[2].Successes(2))
	}
}

// TestFlightDumpCarriesContext: events, exemplars and the trace-drop
// counter all ride the dump.
func TestFlightDumpCarriesContext(t *testing.T) {
	c := New()
	c.RecordEvent(Event{Kind: EventXChosen, Lock: "kv", Granule: "kv/get", Detail: "X=3"})
	c.Exemplars().SetMinLatency(0)
	c.Exemplars().Observe(HistExecLock, Exemplar{LatNS: 1 << 21, Lock: "kv", Granule: "kv/scan", Mode: 0})
	c.SetTraceDroppedSource(func() uint64 { return 13 })

	f, _ := newTestFlight(c, FlightConfig{})
	f.Tick()
	var sb strings.Builder
	if err := f.Dump(&sb, "drain"); err != nil {
		t.Fatal(err)
	}
	d, err := ParseFlight([]byte(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Events) != 1 || d.Events[0].Granule != "kv/get" {
		t.Errorf("events = %+v", d.Events)
	}
	if len(d.Cumulative.Exemplars) != 1 || d.Cumulative.Exemplars[0].Granule != "kv/scan" {
		t.Errorf("exemplars = %+v", d.Cumulative.Exemplars)
	}
	if d.DroppedTraceEvents != 13 {
		t.Errorf("dropped = %d", d.DroppedTraceEvents)
	}
	top := d.TopBlamedGranules(3)
	if len(top) != 1 || top[0].Granule != "kv/scan" {
		t.Errorf("top blamed = %+v", top)
	}
}

// TestFlightAbortStormTrigger: an abort rate past the configured storm
// threshold fires OnAnomaly once, then the cooldown suppresses refires
// until the virtual clock passes it.
func TestFlightAbortStormTrigger(t *testing.T) {
	c := New()
	sh := c.NewShard()

	var fired []string
	f, vc := newTestFlight(c, FlightConfig{
		Window: 4 * time.Second, Tick: time.Second,
		AbortStormRate: 100, Cooldown: 2 * time.Second,
		OnAnomaly: func(r string) { fired = append(fired, r) },
	})

	// Quiet tick: no trigger.
	f.Tick()
	if len(fired) != 0 {
		t.Fatalf("fired on quiet tick: %v", fired)
	}

	// Storm: the delta interval is wall-clock (~µs), so hundreds of
	// aborts are far beyond 100/s.
	sh.AddN(CtrAbort(tm.AbortConflict), 500)
	f.Tick()
	if len(fired) != 1 || !strings.Contains(fired[0], "abort-storm") {
		t.Fatalf("fired = %v", fired)
	}

	// Another storm within the cooldown: suppressed.
	sh.AddN(CtrAbort(tm.AbortConflict), 500)
	f.Tick()
	if len(fired) != 1 {
		t.Fatalf("cooldown did not suppress: %v", fired)
	}

	// Past the cooldown: fires again.
	vc.advance(3 * time.Second)
	sh.AddN(CtrAbort(tm.AbortConflict), 500)
	f.Tick()
	if len(fired) != 2 {
		t.Fatalf("post-cooldown refire missing: %v", fired)
	}

	if got := f.Anomalies(); len(got) != 2 {
		t.Errorf("anomaly log = %+v", got)
	}
	var sb strings.Builder
	if err := f.Dump(&sb, "anomaly"); err != nil {
		t.Fatal(err)
	}
	d, err := ParseFlight([]byte(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Anomalies) != 2 || !strings.Contains(d.Anomalies[0].Reason, "abort-storm") {
		t.Errorf("dump anomalies = %+v", d.Anomalies)
	}
	storm := d.AbortsByReason()
	if storm[tm.AbortConflict.String()] != 1500 {
		t.Errorf("window aborts = %v", storm)
	}
}

// TestFlightTailLatencyTrigger: a tick whose exec p99 reaches the
// threshold fires with a tail-latency reason.
func TestFlightTailLatencyTrigger(t *testing.T) {
	c := New()
	ls := c.NewLatShard()

	var fired []string
	f, _ := newTestFlight(c, FlightConfig{
		TailThresholdNS: int64(time.Millisecond),
		OnAnomaly:       func(r string) { fired = append(fired, r) },
	})

	ls.Record(HistExecHTM, int64(50*time.Microsecond)) // under threshold
	f.Tick()
	if len(fired) != 0 {
		t.Fatalf("fired under threshold: %v", fired)
	}
	ls.Record(HistExecHTM, int64(10*time.Millisecond))
	f.Tick()
	if len(fired) != 1 || !strings.Contains(fired[0], "tail-latency") ||
		!strings.Contains(fired[0], "exec_htm") {
		t.Fatalf("fired = %v", fired)
	}
}

// TestFlightStopWithoutStart: Stop on a never-Started recorder must not
// hang and still folds a final frame (the embedding server constructs the
// recorder even when it drives ticks itself).
func TestFlightStopWithoutStart(t *testing.T) {
	c := New()
	sh := c.NewShard()
	f, _ := newTestFlight(c, FlightConfig{})
	sh.AddN(CtrSuccessHTM, 3)
	f.Stop()
	f.Stop() // idempotent
	if f.FrameCount() != 1 {
		t.Errorf("FrameCount = %d, want the final fold", f.FrameCount())
	}
}

// TestFlightStartStop exercises the real ticker goroutine lifecycle (the
// only wall-clock flight test; no timing assertions, just clean shutdown
// under -race while a writer runs).
func TestFlightStartStop(t *testing.T) {
	c := New()
	sh := c.NewShard()
	f, _ := newTestFlight(c, FlightConfig{Window: time.Second, Tick: 10 * time.Millisecond})
	f.Start()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 1000; i++ {
			sh.Add(CtrSuccessSWOpt)
		}
	}()
	<-done
	f.Stop()
	var sb strings.Builder
	if err := f.Dump(&sb, "stop"); err != nil {
		t.Fatal(err)
	}
	d, err := ParseFlight([]byte(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if d.Cumulative.Successes(2) != 1000 {
		t.Errorf("cumulative swopt = %d", d.Cumulative.Successes(2))
	}
	// Every write happened before Stop returned, so the frames (including
	// Stop's final fold) account for all of them.
	var inFrames uint64
	for _, fr := range d.Frames {
		inFrames += fr.Successes(2)
	}
	if inFrames != 1000 {
		t.Errorf("frames account for %d/1000 writes", inFrames)
	}
}

// TestParseFlightRejects: wrong or missing schema returns the sentinel;
// non-JSON errors out.
func TestParseFlightRejects(t *testing.T) {
	if _, err := ParseFlight([]byte(`{"schema":"ale-snapshot/v1"}`)); err != ErrNotFlightSchema {
		t.Errorf("snapshot schema: err = %v", err)
	}
	if _, err := ParseFlight([]byte(`{}`)); err != ErrNotFlightSchema {
		t.Errorf("schemaless: err = %v", err)
	}
	if _, err := ParseFlight([]byte(`not json`)); err == nil {
		t.Error("garbage accepted")
	}
}
