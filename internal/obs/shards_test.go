package obs

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestSnapshotShardRows: the shard source feeds per-shard commit-clock
// rows into snapshots, they survive a JSON round-trip, and a detached
// source yields none.
func TestSnapshotShardRows(t *testing.T) {
	c := New()
	rows := []ShardEntry{{Shard: 0, Clock: 7}, {Shard: 1, Clock: 0}, {Shard: 2, Clock: 41}}
	c.SetShardSource(func() []ShardEntry { return rows })
	s := c.Snapshot()
	if len(s.Shards) != 3 || s.Shards[2].Clock != 41 {
		t.Fatalf("snapshot shards = %+v, want the 3 source rows", s.Shards)
	}
	b, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), `"shards"`) {
		t.Fatalf("wire format missing shards section: %s", b)
	}
	var back Snapshot
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Shards) != 3 || back.Shards[0].Clock != 7 || back.Shards[2].Shard != 2 {
		t.Errorf("shards did not round-trip: %+v", back.Shards)
	}
	// Sub keeps the newer rows (clock positions are cumulative, like the
	// contention profile's attributions).
	if d := s.Sub(Snapshot{}); len(d.Shards) != 3 {
		t.Errorf("delta dropped shard rows: %+v", d.Shards)
	}

	c.SetShardSource(nil)
	if got := c.Snapshot().Shards; len(got) != 0 {
		t.Errorf("detached shard source still yields %d rows", len(got))
	}
	// No-source snapshots omit the section entirely, so pre-sharding
	// consumers see an unchanged wire format.
	b2, err := json.Marshal(c.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(b2), `"shards"`) {
		t.Errorf("shard-less snapshot still emits a shards section: %s", b2)
	}
}

// TestCrossShardCounterWire: cross_shard rides the events map — present
// and round-tripping when nonzero, omitted when zero (pre-sharding
// snapshot files re-encode unchanged).
func TestCrossShardCounterWire(t *testing.T) {
	c := New()
	zero, err := json.Marshal(c.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(zero), "cross_shard") {
		t.Fatalf("zero snapshot emits cross_shard: %s", zero)
	}

	c.NewShard().AddN(CtrCrossShard, 5)
	s := c.Snapshot()
	b, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), `"cross_shard": 5`) && !strings.Contains(string(b), `"cross_shard":5`) {
		t.Fatalf("wire format missing cross_shard: %s", b)
	}
	var back Snapshot
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if got := back.Get(CtrCrossShard); got != 5 {
		t.Errorf("cross_shard round-trip = %d, want 5", got)
	}
}

// TestWritePrometheusShards: shard rows render as a labelled gauge and
// the cross-shard counter as its own family, both absent on single-shard
// snapshots.
func TestWritePrometheusShards(t *testing.T) {
	c := New()
	c.SetShardSource(func() []ShardEntry {
		return []ShardEntry{{Shard: 0, Clock: 3}, {Shard: 1, Clock: 9}}
	})
	c.NewShard().AddN(CtrCrossShard, 2)
	var sb strings.Builder
	if err := WritePrometheus(&sb, c.Snapshot()); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{
		`ale_shard_commit_clock{shard="0"} 3`,
		`ale_shard_commit_clock{shard="1"} 9`,
		"ale_cross_shard_txns_total 2",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("prometheus output missing %q", want)
		}
	}

	sb.Reset()
	if err := WritePrometheus(&sb, New().Snapshot()); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "shard") {
		t.Error("shard-less snapshot rendered shard metrics")
	}
}
