package hashmap

import (
	"testing"

	"repro/internal/core"
	"repro/internal/tm"
)

// Per-operation microbenchmarks across policies: the raw cost of one Get /
// Insert / Remove through the full ALE engine, uncontended. These calibrate
// how much of the figure-level numbers is engine overhead versus workload.

func benchMap(b *testing.B, pol core.Policy) (*Map, *Handle) {
	b.Helper()
	rt := core.NewRuntime(tm.NewDomain(htmProfile()))
	m := New(rt, "tbl", Config{Buckets: 1024, Capacity: 1 << 16, MarkerStripes: 1}, pol)
	h := m.NewHandle()
	for k := uint64(1); k <= 4096; k += 2 {
		if _, err := h.Insert(k, k); err != nil {
			b.Fatal(err)
		}
	}
	return m, h
}

func benchPolicies() map[string]func() core.Policy {
	return map[string]func() core.Policy{
		"lockonly": func() core.Policy { return core.NewLockOnly() },
		"htm":      func() core.Policy { return core.NewStatic(10, 0) },
		"swopt":    func() core.Policy { return core.NewStatic(0, 10) },
	}
}

func BenchmarkGet(b *testing.B) {
	for name, mk := range benchPolicies() {
		b.Run(name, func(b *testing.B) {
			_, h := benchMap(b, mk())
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := h.Get(uint64(i%4096) + 1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkInsertOverwrite(b *testing.B) {
	for name, mk := range benchPolicies() {
		b.Run(name, func(b *testing.B) {
			_, h := benchMap(b, mk())
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := h.Insert(uint64(i%2048)*2+1, uint64(i)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkInsertRemoveCycle(b *testing.B) {
	for name, mk := range benchPolicies() {
		b.Run(name, func(b *testing.B) {
			_, h := benchMap(b, mk())
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				key := uint64(i%1024)*2 + 2 // even keys: initially absent
				if _, err := h.Insert(key, key); err != nil {
					b.Fatal(err)
				}
				if _, err := h.Remove(key); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkGetDirectBaseline(b *testing.B) {
	_, h := benchMap(b, core.NewLockOnly())
	raw := h.MapOf().Lock().Ops()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		raw.Acquire()
		h.GetDirect(uint64(i%4096) + 1)
		raw.Release()
	}
}
