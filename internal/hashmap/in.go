package hashmap

import "repro/internal/core"

// In-critical-section operation helpers. These run the exclusive (non-
// SWOpt) form of each operation *inside an existing critical section on
// this map's lock*, routing every access through the section's ExecCtx so
// they are correct in both HTM and Lock modes. The map's own critical
// sections are built from them, and composite structures (the Kyoto
// Cabinet substrate) call them from their own nested critical sections.
//
// Deferred resource management: a node linked by InsertIn is the handle's
// pendingNode until the caller confirms the enclosing execution committed
// (ConsumePending); a node unlinked by RemoveIn is returned to the caller,
// who recycles it (Recycle) only after commit. This is what makes the
// helpers abort-safe: an aborted hardware transaction rolls back the
// structure but not the handle's free list, so the free list must only
// change on confirmed outcomes.

// GetIn looks key up inside the current critical section.
func (h *Handle) GetIn(ec *core.ExecCtx, key uint64) (uint64, bool) {
	m := h.m
	b := m.bucket(key)
	for p := ec.Load(&m.buckets[b]); p != 0; {
		nd := &m.nodes[p-1]
		if ec.Load(&nd.key) == key {
			return ec.Load(&nd.val), true
		}
		p = ec.Load(&nd.next)
	}
	return 0, false
}

// InsertIn adds or overwrites key -> val inside the current critical
// section, reporting whether a new node was linked. On a fresh link the
// node stays pending; call ConsumePending once the enclosing execution has
// definitely committed.
func (h *Handle) InsertIn(ec *core.ExecCtx, key, val uint64) (fresh bool, err error) {
	m := h.m
	b := m.bucket(key)
	for p := ec.Load(&m.buckets[b]); p != 0; {
		nd := &m.nodes[p-1]
		if ec.Load(&nd.key) == key {
			ec.Store(&nd.val, val)
			return false, nil
		}
		p = ec.Load(&nd.next)
	}
	idx := h.alloc()
	if idx == 0 {
		return false, ErrFull
	}
	nd := &m.nodes[idx-1]
	ec.Store(&nd.key, key)
	ec.Store(&nd.val, val)
	ec.Store(&nd.next, ec.Load(&m.buckets[b]))
	mk := m.marker(b)
	mk.BeginConflicting(ec)
	ec.Store(&m.buckets[b], idx)
	mk.EndConflicting(ec)
	return true, nil
}

// AddIn increments key's value by delta inside the current critical
// section, inserting it (starting from zero) if absent. Returns the new
// value and whether a new node was linked (same pending discipline as
// InsertIn).
func (h *Handle) AddIn(ec *core.ExecCtx, key, delta uint64) (newVal uint64, fresh bool, err error) {
	m := h.m
	b := m.bucket(key)
	for p := ec.Load(&m.buckets[b]); p != 0; {
		nd := &m.nodes[p-1]
		if ec.Load(&nd.key) == key {
			v := ec.Load(&nd.val) + delta
			ec.Store(&nd.val, v)
			return v, false, nil
		}
		p = ec.Load(&nd.next)
	}
	fresh, err = h.InsertIn(ec, key, delta)
	return delta, fresh, err
}

// RemoveIn unlinks key inside the current critical section. It returns the
// unlinked node's index (0 if the key was absent); the caller must Recycle
// it only after the enclosing execution commits.
func (h *Handle) RemoveIn(ec *core.ExecCtx, key uint64) (freed uint64) {
	m := h.m
	b := m.bucket(key)
	prev := uint64(0)
	for p := ec.Load(&m.buckets[b]); p != 0; {
		nd := &m.nodes[p-1]
		if ec.Load(&nd.key) == key {
			next := ec.Load(&nd.next)
			mk := m.marker(b)
			mk.BeginConflicting(ec)
			if prev == 0 {
				ec.Store(&m.buckets[b], next)
			} else {
				ec.Store(&m.nodes[prev-1].next, next)
			}
			mk.EndConflicting(ec)
			return p
		}
		prev = p
		p = ec.Load(&nd.next)
	}
	return 0
}

// LenIn counts entries inside the current critical section. Only sensible
// in Lock mode (it touches every bucket).
func (h *Handle) LenIn(ec *core.ExecCtx) int {
	m := h.m
	n := 0
	for b := range m.buckets {
		for p := ec.Load(&m.buckets[b]); p != 0; {
			n++
			p = ec.Load(&m.nodes[p-1].next)
		}
	}
	return n
}

// ClearIn unlinks every entry inside the current critical section, bumping
// all markers around the sweep, and returns the removed count. The freed
// nodes are appended to recycleInto, which the caller feeds to Recycle
// after commit. Only sensible in Lock mode.
func (h *Handle) ClearIn(ec *core.ExecCtx, recycleInto *[]uint64) int {
	m := h.m
	n := 0
	for _, mk := range m.markers {
		mk.BeginConflicting(ec)
	}
	for b := range m.buckets {
		for p := ec.Load(&m.buckets[b]); p != 0; {
			next := ec.Load(&m.nodes[p-1].next)
			*recycleInto = append(*recycleInto, p)
			p = next
			n++
		}
		ec.Store(&m.buckets[b], 0)
	}
	for _, mk := range m.markers {
		mk.EndConflicting(ec)
	}
	return n
}

// RangeIn visits every key/value pair inside the current critical section
// (bucket order, chain order); visit returns false to stop. Only sensible
// in Lock mode (it touches every bucket).
func (h *Handle) RangeIn(ec *core.ExecCtx, visit func(key, val uint64) bool) {
	m := h.m
	for b := range m.buckets {
		for p := ec.Load(&m.buckets[b]); p != 0; {
			nd := &m.nodes[p-1]
			if !visit(ec.Load(&nd.key), ec.Load(&nd.val)) {
				return
			}
			p = ec.Load(&nd.next)
		}
	}
}

// ConsumePending confirms that the node linked by the last InsertIn/AddIn
// committed: it will not be handed out again by alloc.
func (h *Handle) ConsumePending() { h.pendingNode = 0 }

// Recycle returns an unlinked node to the handle's free list. idx 0 is a
// no-op. Call only after the unlinking execution has committed.
func (h *Handle) Recycle(idx uint64) {
	if idx != 0 {
		h.free = append(h.free, idx)
	}
}

// MapOf returns the underlying map (composite-structure plumbing).
func (h *Handle) MapOf() *Map { return h.m }
