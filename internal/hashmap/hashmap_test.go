package hashmap

import (
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/tm"
	"repro/internal/xrand"
)

func htmProfile() tm.Profile {
	return tm.Profile{Name: "test-htm", Enabled: true, ReadCap: 1 << 16, WriteCap: 1 << 16}
}

func noHTMProfile() tm.Profile {
	return tm.Profile{Name: "test-nohtm", Enabled: false}
}

func newMap(prof tm.Profile, pol core.Policy) *Map {
	rt := core.NewRuntime(tm.NewDomain(prof))
	return New(rt, "tbl", Config{Buckets: 64, Capacity: 4096, MarkerStripes: 1}, pol)
}

func TestSequentialBasics(t *testing.T) {
	m := newMap(htmProfile(), core.NewStatic(10, 10))
	h := m.NewHandle()

	if _, ok, _ := h.Get(1); ok {
		t.Fatal("Get on empty map found a key")
	}
	if fresh, err := h.Insert(1, 100); err != nil || !fresh {
		t.Fatalf("Insert(1) = (%v, %v)", fresh, err)
	}
	if v, ok, _ := h.Get(1); !ok || v != 100 {
		t.Fatalf("Get(1) = (%d, %v), want (100, true)", v, ok)
	}
	if fresh, err := h.Insert(1, 200); err != nil || fresh {
		t.Fatalf("overwrite Insert(1) = (%v, %v), want (false, nil)", fresh, err)
	}
	if v, _, _ := h.Get(1); v != 200 {
		t.Fatalf("Get(1) after overwrite = %d, want 200", v)
	}
	if ok, _ := h.Remove(1); !ok {
		t.Fatal("Remove(1) missed")
	}
	if _, ok, _ := h.Get(1); ok {
		t.Fatal("Get(1) found a removed key")
	}
	if ok, _ := h.Remove(1); ok {
		t.Fatal("Remove(1) hit twice")
	}
	if n, _ := h.Len(); n != 0 {
		t.Fatalf("Len = %d, want 0", n)
	}
}

func TestZeroKeyRejected(t *testing.T) {
	m := newMap(htmProfile(), core.NewLockOnly())
	h := m.NewHandle()
	if _, err := h.Insert(0, 1); err == nil {
		t.Error("Insert(0) accepted")
	}
	if _, _, err := h.Get(0); err == nil {
		t.Error("Get(0) accepted")
	}
	if _, err := h.Remove(0); err == nil {
		t.Error("Remove(0) accepted")
	}
}

func TestNodeRecycling(t *testing.T) {
	m := newMap(htmProfile(), core.NewStatic(5, 0))
	h := m.NewHandle()
	// Insert/remove far more times than the arena holds: recycling must
	// keep this going.
	for i := 0; i < 3*m.Capacity(); i++ {
		key := uint64(i%100 + 1)
		if _, err := h.Insert(key, uint64(i)); err != nil {
			t.Fatalf("Insert #%d: %v", i, err)
		}
		if ok, err := h.Remove(key); err != nil || !ok {
			t.Fatalf("Remove #%d = (%v, %v)", i, ok, err)
		}
	}
}

func TestArenaExhaustion(t *testing.T) {
	rt := core.NewRuntime(tm.NewDomain(htmProfile()))
	m := New(rt, "tiny", Config{Buckets: 8, Capacity: 70, MarkerStripes: 1}, core.NewLockOnly())
	h := m.NewHandle()
	var err error
	for i := 1; err == nil && i <= 1000; i++ {
		_, err = h.Insert(uint64(i), 0)
	}
	if err != ErrFull {
		t.Fatalf("error after overfilling = %v, want ErrFull", err)
	}
}

// opSeq drives one variant family against a model map.
type quickOp struct {
	Kind uint8 // get / insert / remove
	Key  uint8
	Val  uint16
}

func runVariantVsModel(t *testing.T, name string, prof tm.Profile,
	ins func(h *Handle, k, v uint64) error,
	rem func(h *Handle, k uint64) (bool, error)) {
	t.Helper()
	f := func(ops []quickOp) bool {
		m := newMap(prof, core.NewStatic(5, 5))
		h := m.NewHandle()
		model := map[uint64]uint64{}
		for _, op := range ops {
			key := uint64(op.Key%32) + 1
			switch op.Kind % 3 {
			case 0:
				v, ok, err := h.Get(key)
				if err != nil {
					return false
				}
				want, wok := model[key]
				if ok != wok || (ok && v != want) {
					return false
				}
			case 1:
				if err := ins(h, key, uint64(op.Val)); err != nil {
					return false
				}
				model[key] = uint64(op.Val)
			case 2:
				ok, err := rem(h, key)
				if err != nil {
					return false
				}
				_, wok := model[key]
				if ok != wok {
					return false
				}
				delete(model, key)
			}
		}
		n, err := h.Len()
		return err == nil && n == len(model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Errorf("%s: %v", name, err)
	}
}

// TestQuickVariantsMatchModel checks every operation family (basic,
// optimistic-search, self-abort) against a model map on both platform
// kinds.
func TestQuickVariantsMatchModel(t *testing.T) {
	basicIns := func(h *Handle, k, v uint64) error { _, err := h.Insert(k, v); return err }
	basicRem := func(h *Handle, k uint64) (bool, error) { return h.Remove(k) }
	optIns := func(h *Handle, k, v uint64) error { _, err := h.InsertOpt(k, v); return err }
	optRem := func(h *Handle, k uint64) (bool, error) { return h.RemoveOpt(k) }
	saRem := func(h *Handle, k uint64) (bool, error) { return h.RemoveSelfAbort(k) }

	runVariantVsModel(t, "basic/htm", htmProfile(), basicIns, basicRem)
	runVariantVsModel(t, "basic/nohtm", noHTMProfile(), basicIns, basicRem)
	runVariantVsModel(t, "opt/htm", htmProfile(), optIns, optRem)
	runVariantVsModel(t, "opt/nohtm", noHTMProfile(), optIns, optRem)
	runVariantVsModel(t, "selfabort/htm", htmProfile(), basicIns, saRem)
	runVariantVsModel(t, "selfabort/nohtm", noHTMProfile(), basicIns, saRem)
}

// TestConcurrentDisjointKeys: threads own disjoint key ranges; the final
// contents must be exactly the union of each thread's final writes.
func TestConcurrentDisjointKeys(t *testing.T) {
	for _, tc := range []struct {
		name string
		prof tm.Profile
		pol  func() core.Policy
	}{
		{"htm", htmProfile(), func() core.Policy { return core.NewStatic(10, 0) }},
		{"all", htmProfile(), func() core.Policy { return core.NewStatic(10, 10) }},
		{"swopt", noHTMProfile(), func() core.Policy { return core.NewStatic(0, 10) }},
		{"adaptive", htmProfile(), func() core.Policy {
			return core.NewAdaptiveCfg(core.AdaptiveConfig{PhaseExecs: 100, InitialX: 10, XSlack: 2, BigY: 100})
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rt := core.NewRuntime(tm.NewDomain(tc.prof))
			m := New(rt, "tbl", Config{Buckets: 128, Capacity: 1 << 14, MarkerStripes: 1}, tc.pol())
			const workers, keysPer, rounds = 6, 40, 300
			var wg sync.WaitGroup
			errCh := make(chan error, workers)
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(id int) {
					defer wg.Done()
					h := m.NewHandle()
					base := uint64(id*keysPer) + 1
					for r := 0; r < rounds; r++ {
						for k := uint64(0); k < keysPer; k++ {
							key := base + k
							if _, err := h.Insert(key, key*1000+uint64(r)); err != nil {
								errCh <- err
								return
							}
						}
						for k := uint64(0); k < keysPer; k += 2 {
							if _, err := h.Remove(base + k); err != nil {
								errCh <- err
								return
							}
						}
					}
				}(w)
			}
			wg.Wait()
			close(errCh)
			for err := range errCh {
				t.Fatal(err)
			}
			h := m.NewHandle()
			for w := 0; w < workers; w++ {
				base := uint64(w*keysPer) + 1
				for k := uint64(0); k < keysPer; k++ {
					key := base + k
					v, ok, err := h.Get(key)
					if err != nil {
						t.Fatal(err)
					}
					if k%2 == 0 {
						if ok {
							t.Errorf("key %d present after final remove", key)
						}
					} else {
						if !ok || v != key*1000+rounds-1 {
							t.Errorf("key %d = (%d, %v), want (%d, true)",
								key, v, ok, key*1000+rounds-1)
						}
					}
				}
			}
		})
	}
}

// TestConcurrentMixedTorture: all threads hammer a shared key range with
// mixed ops; every successful Get must return a value tagged with its key
// (values are key*1e6 + anything), catching cross-key corruption from
// recycled nodes or torn optimistic reads.
func TestConcurrentMixedTorture(t *testing.T) {
	for _, variant := range []string{"basic", "opt", "selfabort"} {
		t.Run(variant, func(t *testing.T) {
			rt := core.NewRuntime(tm.NewDomain(htmProfile()))
			m := New(rt, "tbl", Config{Buckets: 32, Capacity: 1 << 14, MarkerStripes: 1},
				core.NewStatic(8, 8))
			const workers, per, keyRange = 8, 4000, 64
			var wg sync.WaitGroup
			errCh := make(chan error, workers)
			bad := make(chan string, 1)
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(id int) {
					defer wg.Done()
					h := m.NewHandle()
					rng := xrand.New(uint64(id) + 1)
					for i := 0; i < per; i++ {
						key := rng.Uint64n(keyRange) + 1
						switch rng.Intn(10) {
						case 0, 1, 2: // 30% insert
							var err error
							if variant == "opt" {
								_, err = h.InsertOpt(key, key*1000000+rng.Uint64n(1000))
							} else {
								_, err = h.Insert(key, key*1000000+rng.Uint64n(1000))
							}
							if err != nil {
								errCh <- err
								return
							}
						case 3, 4: // 20% remove
							var err error
							switch variant {
							case "opt":
								_, err = h.RemoveOpt(key)
							case "selfabort":
								_, err = h.RemoveSelfAbort(key)
							default:
								_, err = h.Remove(key)
							}
							if err != nil {
								errCh <- err
								return
							}
						default: // 50% get
							v, ok, err := h.Get(key)
							if err != nil {
								errCh <- err
								return
							}
							if ok && v/1000000 != key {
								select {
								case bad <- "Get returned a value tagged for another key":
								default:
								}
							}
						}
					}
				}(w)
			}
			wg.Wait()
			close(errCh)
			for err := range errCh {
				t.Fatal(err)
			}
			select {
			case msg := <-bad:
				t.Fatal(msg)
			default:
			}
		})
	}
}

func TestClearWithConcurrentReaders(t *testing.T) {
	rt := core.NewRuntime(tm.NewDomain(htmProfile()))
	m := New(rt, "tbl", Config{Buckets: 64, Capacity: 8192, MarkerStripes: 4},
		core.NewStatic(8, 8))
	seed := m.NewHandle()
	for k := uint64(1); k <= 500; k++ {
		if _, err := seed.Insert(k, k*1000000); err != nil {
			t.Fatal(err)
		}
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	errCh := make(chan error, 4)
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			h := m.NewHandle()
			rng := xrand.New(uint64(id) + 7)
			for {
				select {
				case <-stop:
					return
				default:
				}
				key := rng.Uint64n(500) + 1
				v, ok, err := h.Get(key)
				if err != nil {
					errCh <- err
					return
				}
				if ok && v/1000000 != key {
					errCh <- ErrFull // sentinel misuse is fine for a test signal
					return
				}
			}
		}(r)
	}
	for i := 0; i < 20; i++ {
		if _, err := seed.Clear(); err != nil {
			t.Fatal(err)
		}
		for k := uint64(1); k <= 500; k++ {
			if _, err := seed.Insert(k, k*1000000); err != nil {
				t.Fatal(err)
			}
		}
	}
	close(stop)
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatalf("reader failed: %v", err)
	}
	if n, _ := seed.Len(); n != 500 {
		t.Errorf("Len = %d, want 500", n)
	}
}

func TestMarkerStriping(t *testing.T) {
	rt := core.NewRuntime(tm.NewDomain(noHTMProfile()))
	m := New(rt, "tbl", Config{Buckets: 64, Capacity: 4096, MarkerStripes: 16},
		core.NewStatic(0, 20))
	const workers, per = 6, 3000
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			h := m.NewHandle()
			rng := xrand.New(uint64(id) + 1)
			for i := 0; i < per; i++ {
				key := rng.Uint64n(128) + 1
				switch rng.Intn(4) {
				case 0:
					if _, err := h.Insert(key, key*1000000); err != nil {
						errCh <- err
						return
					}
				case 1:
					if _, err := h.Remove(key); err != nil {
						errCh <- err
						return
					}
				default:
					v, ok, err := h.Get(key)
					if err != nil {
						errCh <- err
						return
					}
					if ok && v != key*1000000 {
						errCh <- ErrFull
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}

func TestReadOnlyWorkloadUsesSWOptOnNoHTM(t *testing.T) {
	m := newMap(noHTMProfile(), core.NewStatic(0, 10))
	h := m.NewHandle()
	for k := uint64(1); k <= 100; k++ {
		if _, err := h.Insert(k, k); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 1000; i++ {
		if _, _, err := h.Get(uint64(i%100) + 1); err != nil {
			t.Fatal(err)
		}
	}
	var sw, lk uint64
	for _, g := range m.Lock().Granules() {
		if g.Label() == "tbl.Get" {
			sw, lk = g.Successes(core.ModeSWOpt), g.Successes(core.ModeLock)
		}
	}
	if sw == 0 {
		t.Error("read-only Gets never used SWOpt")
	}
	if lk > sw/10 {
		t.Errorf("read-only Gets fell back to the lock %d times (SWOpt %d)", lk, sw)
	}
}

func TestDirectAccessors(t *testing.T) {
	m := newMap(htmProfile(), core.NewLockOnly())
	h := m.NewHandle()
	if fresh, err := h.InsertDirect(5, 50); err != nil || !fresh {
		t.Fatalf("InsertDirect = (%v, %v)", fresh, err)
	}
	if v, ok := h.GetDirect(5); !ok || v != 50 {
		t.Fatalf("GetDirect = (%d, %v)", v, ok)
	}
	if fresh, _ := h.InsertDirect(5, 60); fresh {
		t.Error("InsertDirect overwrite reported fresh")
	}
	if n := h.LenDirect(); n != 1 {
		t.Errorf("LenDirect = %d, want 1", n)
	}
	if !h.RemoveDirect(5) {
		t.Error("RemoveDirect missed")
	}
	if h.RemoveDirect(5) {
		t.Error("RemoveDirect hit twice")
	}
	h.InsertDirect(1, 1)
	h.InsertDirect(2, 2)
	if n := h.ClearDirect(); n != 2 {
		t.Errorf("ClearDirect = %d, want 2", n)
	}
	if n := h.LenDirect(); n != 0 {
		t.Errorf("LenDirect after clear = %d, want 0", n)
	}
}
