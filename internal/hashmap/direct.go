package hashmap

// Direct accessors bypass the ALE library entirely: no critical-section
// engine, no statistics, no elision. The caller must provide exclusion
// (hold some external lock). They exist for the paper's baselines:
//
//   - "Uninstrumented": the original single-lock HashMap with no ALE
//     integration at all (external TATAS lock + these methods);
//   - Kyoto Cabinet's hand-tuned "trylockspin" variant, which manages the
//     method and slot locks itself.
//
// Loads use LoadConsistent so a baseline running in the same process as
// elided variants (tests do this) still serializes against transaction
// commits; under a plain global lock this degenerates to an atomic load.

// GetDirect looks key up. Caller must hold exclusion.
func (h *Handle) GetDirect(key uint64) (uint64, bool) {
	m := h.m
	b := m.bucket(key)
	for p := m.buckets[b].LoadConsistent(); p != 0; {
		nd := &m.nodes[p-1]
		if nd.key.LoadConsistent() == key {
			return nd.val.LoadConsistent(), true
		}
		p = nd.next.LoadConsistent()
	}
	return 0, false
}

// InsertDirect adds or overwrites key -> val, reporting whether a new node
// was linked. Caller must hold exclusion.
func (h *Handle) InsertDirect(key, val uint64) (bool, error) {
	m := h.m
	b := m.bucket(key)
	for p := m.buckets[b].LoadConsistent(); p != 0; {
		nd := &m.nodes[p-1]
		if nd.key.LoadConsistent() == key {
			nd.val.StoreDirect(val)
			return false, nil
		}
		p = nd.next.LoadConsistent()
	}
	idx := h.alloc()
	if idx == 0 {
		return false, ErrFull
	}
	h.pendingNode = 0
	nd := &m.nodes[idx-1]
	nd.key.StoreDirect(key)
	nd.val.StoreDirect(val)
	nd.next.StoreDirect(m.buckets[b].LoadConsistent())
	m.buckets[b].StoreDirect(idx)
	return true, nil
}

// RemoveDirect deletes key if present. Caller must hold exclusion.
func (h *Handle) RemoveDirect(key uint64) bool {
	m := h.m
	b := m.bucket(key)
	prev := uint64(0)
	for p := m.buckets[b].LoadConsistent(); p != 0; {
		nd := &m.nodes[p-1]
		if nd.key.LoadConsistent() == key {
			next := nd.next.LoadConsistent()
			if prev == 0 {
				m.buckets[b].StoreDirect(next)
			} else {
				m.nodes[prev-1].next.StoreDirect(next)
			}
			h.free = append(h.free, p)
			return true
		}
		prev = p
		p = nd.next.LoadConsistent()
	}
	return false
}

// LenDirect counts entries. Caller must hold exclusion.
func (h *Handle) LenDirect() int {
	m := h.m
	n := 0
	for b := range m.buckets {
		for p := m.buckets[b].LoadConsistent(); p != 0; {
			n++
			p = m.nodes[p-1].next.LoadConsistent()
		}
	}
	return n
}

// ClearDirect unlinks every entry, recycling the nodes into this handle's
// free list. Caller must hold exclusion. ALE-integrated users must instead
// clear through a critical section that bumps the markers; this is the
// baseline/bulk primitive (the Kyoto substrate wraps it appropriately).
func (h *Handle) ClearDirect() int {
	m := h.m
	n := 0
	for b := range m.buckets {
		for p := m.buckets[b].LoadConsistent(); p != 0; {
			next := m.nodes[p-1].next.LoadConsistent()
			h.free = append(h.free, p)
			p = next
			n++
		}
		m.buckets[b].StoreDirect(0)
	}
	return n
}
