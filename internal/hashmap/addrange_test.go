package hashmap

import (
	"sync"
	"testing"

	"repro/internal/core"
)

// TestAddSemantics pins Handle.Add (new for aleserve's INCR verb): an
// absent key is created holding the delta, a present key accumulates, and
// the pending-node discipline survives both paths.
func TestAddSemantics(t *testing.T) {
	m := newMap(htmProfile(), core.NewStatic(10, 10))
	h := m.NewHandle()

	if v, err := h.Add(5, 7); err != nil || v != 7 {
		t.Fatalf("Add(absent) = (%d, %v), want (7, nil)", v, err)
	}
	if v, err := h.Add(5, 3); err != nil || v != 10 {
		t.Fatalf("Add(present) = (%d, %v), want (10, nil)", v, err)
	}
	if v, ok, _ := h.Get(5); !ok || v != 10 {
		t.Fatalf("Get(5) = (%d, %v), want (10, true)", v, ok)
	}
	if _, err := h.Add(0, 1); err == nil {
		t.Fatal("Add(0) accepted the reserved zero key")
	}
	// Add on a removed key re-creates it (fresh insert path again, so the
	// node arena recycling interplay is exercised).
	if ok, _ := h.Remove(5); !ok {
		t.Fatal("Remove(5) missed")
	}
	if v, err := h.Add(5, 2); err != nil || v != 2 {
		t.Fatalf("Add(after remove) = (%d, %v), want (2, nil)", v, err)
	}
	if n, _ := h.Len(); n != 1 {
		t.Fatalf("Len = %d, want 1", n)
	}
}

// TestAddConcurrentCounters hammers Add from several threads on a small
// counter set and checks the totals are exact — the elision machinery
// must make read-modify-write atomic whatever mode wins.
func TestAddConcurrentCounters(t *testing.T) {
	m := newMap(htmProfile(), core.NewAdaptive())
	const (
		threads = 8
		perThr  = 2000
		keys    = 4
	)
	var wg sync.WaitGroup
	for i := 0; i < threads; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			h := m.NewHandle()
			for n := 0; n < perThr; n++ {
				if _, err := h.Add(uint64(n%keys)+1, 1); err != nil {
					t.Errorf("Add: %v", err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	h := m.NewHandle()
	var total uint64
	for k := uint64(1); k <= keys; k++ {
		v, ok, err := h.Get(k)
		if err != nil || !ok {
			t.Fatalf("Get(%d) = (%v, %v)", k, ok, err)
		}
		total += v
	}
	if want := uint64(threads * perThr); total != want {
		t.Fatalf("counter total %d, want %d — lost or doubled increments", total, want)
	}
}

// TestRangeSemantics pins Handle.Range (new for aleserve's SCAN verb):
// full visitation, early stop with an exact visit count, and a consistent
// snapshot under the NoHTM whole-table section.
func TestRangeSemantics(t *testing.T) {
	m := newMap(htmProfile(), core.NewStatic(10, 10))
	h := m.NewHandle()
	const n = 50
	for k := uint64(1); k <= n; k++ {
		if _, err := h.Insert(k, k*10); err != nil {
			t.Fatal(err)
		}
	}

	seen := map[uint64]uint64{}
	visited, err := h.Range(func(k, v uint64) bool {
		seen[k] = v
		return true
	})
	if err != nil || visited != n {
		t.Fatalf("Range = (%d, %v), want (%d, nil)", visited, err, n)
	}
	for k := uint64(1); k <= n; k++ {
		if seen[k] != k*10 {
			t.Fatalf("Range missed key %d (got %d)", k, seen[k])
		}
	}

	// Early stop: the count is the number of accepted visits.
	got, err := h.Range(func(k, v uint64) bool { return false })
	if err != nil || got != 0 {
		t.Fatalf("immediately-stopped Range = (%d, %v), want (0, nil)", got, err)
	}
	count := 0
	got, err = h.Range(func(k, v uint64) bool {
		count++
		return count < 10
	})
	if err != nil || got != 9 {
		t.Fatalf("stop-after-9 Range = (%d, %v), want (9, nil)", got, err)
	}
}

// TestRangeUnderConcurrentWriters checks Range never observes a torn map:
// every visited value is one a writer actually stored, and re-running
// Range after the writers stop sees exactly the final state.
func TestRangeUnderConcurrentWriters(t *testing.T) {
	m := newMap(htmProfile(), core.NewAdaptive())
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			h := m.NewHandle()
			k := uint64(i*100 + 1)
			v := uint64(1)
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := h.Insert(k, v*1000); err != nil {
					t.Errorf("Insert: %v", err)
					return
				}
				v++
			}
		}(i)
	}

	h := m.NewHandle()
	for r := 0; r < 50; r++ {
		_, err := h.Range(func(k, v uint64) bool {
			if v%1000 != 0 {
				t.Errorf("torn value %d at key %d", v, k)
				return false
			}
			return true
		})
		if err != nil {
			t.Fatalf("Range: %v", err)
		}
	}
	close(stop)
	wg.Wait()

	final := map[uint64]uint64{}
	if _, err := h.Range(func(k, v uint64) bool {
		final[k] = v
		return true
	}); err != nil {
		t.Fatal(err)
	}
	for k, v := range final {
		gv, ok, err := h.Get(k)
		if err != nil || !ok || gv != v {
			t.Fatalf("quiesced Range/Get disagree at %d: %d vs (%d,%v,%v)", k, v, gv, ok, err)
		}
	}
}
