package hashmap_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/hashmap"
	"repro/internal/platform"
	"repro/internal/tm"
)

// Example shows the paper's HashMap in its intended shape: one ALE lock,
// SWOpt-capable Get, conflict-marked mutations, per-goroutine handles.
func Example() {
	rt := core.NewRuntime(tm.NewDomain(platform.Haswell().Profile))
	m := hashmap.New(rt, "tbl",
		hashmap.Config{Buckets: 64, Capacity: 1024, MarkerStripes: 1},
		core.NewStatic(10, 10))
	h := m.NewHandle()

	if _, err := h.Insert(42, 4200); err != nil {
		fmt.Println("error:", err)
		return
	}
	v, ok, _ := h.Get(42)
	fmt.Println(v, ok)

	removed, _ := h.Remove(42)
	fmt.Println(removed)

	_, ok, _ = h.Get(42)
	fmt.Println(ok)
	// Output:
	// 4200 true
	// true
	// false
}

// Example_optimisticVariants demonstrates the section 3.3 refinements:
// optimistic-search mutations and the self-abort Remove.
func Example_optimisticVariants() {
	rt := core.NewRuntime(tm.NewDomain(platform.T2().Profile)) // no HTM
	m := hashmap.New(rt, "tbl",
		hashmap.Config{Buckets: 64, Capacity: 1024, MarkerStripes: 1},
		core.NewStatic(0, 10))
	h := m.NewHandle()

	fresh, _ := h.InsertOpt(7, 700) // searches in SWOpt, links in a nested CS
	fmt.Println("fresh:", fresh)

	missed, _ := h.RemoveSelfAbort(8) // miss: completes entirely in SWOpt
	fmt.Println("removed absent key:", missed)

	hit, _ := h.RemoveOpt(7) // searches in SWOpt, unlinks in a nested CS
	fmt.Println("removed present key:", hit)
	// Output:
	// fresh: true
	// removed absent key: false
	// removed present key: true
}
