package hashmap

import (
	"errors"

	"repro/internal/core"
)

// ErrFull reports node-arena exhaustion.
var ErrFull = errors.New("hashmap: node arena exhausted")

// buildCS constructs the handle's prebuilt critical sections. Bodies read
// their arguments from and write their results to the handle's scratch
// fields; every body resets its outputs first, because an aborted HTM
// attempt's side effects on the handle survive (only transactional state
// rolls back) and must never leak into the caller's view.
func (h *Handle) buildCS() {
	m := h.m

	// Get — the paper's Figure 1. The SWOpt branch validates after every
	// dependent load; the exclusive branch is the plain search.
	h.csGet = core.CS{
		Scope:    m.scopeGet,
		HasSWOpt: true,
		Body: func(ec *core.ExecCtx) error {
			h.retVal, h.retOK = 0, false
			key := h.argKey
			b := m.bucket(key)
			if ec.InSWOpt() {
				mk := m.marker(b)
				v := ec.ReadStable(mk)
				p := ec.Load(&m.buckets[b])
				if !ec.Validate(mk, v) {
					return ec.SWOptFail()
				}
				for p != 0 {
					if p > uint64(len(m.nodes)) {
						return ec.SWOptFail() // corrupt read; retry
					}
					nd := &m.nodes[p-1]
					k := ec.Load(&nd.key)
					if !ec.Validate(mk, v) {
						return ec.SWOptFail()
					}
					if k == key {
						h.retVal = ec.Load(&nd.val)
						if !ec.Validate(mk, v) {
							return ec.SWOptFail()
						}
						h.retOK = true
						return nil
					}
					p = ec.Load(&nd.next)
					if !ec.Validate(mk, v) {
						return ec.SWOptFail()
					}
				}
				return nil // validated miss
			}
			for p := ec.Load(&m.buckets[b]); p != 0; {
				nd := &m.nodes[p-1]
				if ec.Load(&nd.key) == key {
					h.retVal = ec.Load(&nd.val)
					h.retOK = true
					return nil
				}
				p = ec.Load(&nd.next)
			}
			return nil
		},
	}

	// Insert (basic variant): search + mutate in one critical section,
	// no SWOpt path, conflict marker bumped only around the structural
	// link. Overwrites of an existing key's value are single-word atomic
	// and need no marker (a validated Get returns the old or new value,
	// both linearizable).
	h.csIns = core.CS{
		Scope:       m.scopeIns,
		Conflicting: true,
		Body: func(ec *core.ExecCtx) error {
			h.retOK = false
			key, val := h.argKey, h.argVal
			b := m.bucket(key)
			for p := ec.Load(&m.buckets[b]); p != 0; {
				nd := &m.nodes[p-1]
				if ec.Load(&nd.key) == key {
					ec.Store(&nd.val, val)
					return nil // overwrote; retOK=false means "not newly linked"
				}
				p = ec.Load(&nd.next)
			}
			idx := h.alloc()
			if idx == 0 {
				return ErrFull
			}
			nd := &m.nodes[idx-1]
			ec.Store(&nd.key, key)
			ec.Store(&nd.val, val)
			ec.Store(&nd.next, ec.Load(&m.buckets[b]))
			mk := m.marker(b)
			mk.BeginConflicting(ec)
			ec.Store(&m.buckets[b], idx)
			mk.EndConflicting(ec)
			h.retOK = true
			return nil
		},
	}

	// Remove (basic variant) — the paper's Remove listing: search, then
	// bracket only the unlink in the conflicting region.
	h.csRem = core.CS{
		Scope:       m.scopeRem,
		Conflicting: true,
		Body: func(ec *core.ExecCtx) error {
			h.retOK, h.toFree = false, 0
			key := h.argKey
			b := m.bucket(key)
			prev := uint64(0)
			for p := ec.Load(&m.buckets[b]); p != 0; {
				nd := &m.nodes[p-1]
				if ec.Load(&nd.key) == key {
					next := ec.Load(&nd.next)
					mk := m.marker(b)
					mk.BeginConflicting(ec)
					if prev == 0 {
						ec.Store(&m.buckets[b], next)
					} else {
						ec.Store(&m.nodes[prev-1].next, next)
					}
					mk.EndConflicting(ec)
					h.toFree = p
					h.retOK = true
					return nil
				}
				prev = p
				p = ec.Load(&nd.next)
			}
			return nil
		},
	}

	// Nested mutation sections for the optimistic-search variants
	// (section 3.3). Each first re-checks the marker version recorded by
	// the enclosing SWOpt search; on invalidation it ends without
	// performing the conflicting action and the whole operation retries.
	h.csMutIns = core.CS{
		Scope:       m.scopeInsOpt, // nested under the search's scope
		Conflicting: true,
		Body: func(ec *core.ExecCtx) error {
			b := m.bucket(h.argKey)
			mk := m.marker(b)
			if !mk.ValidateIn(ec, h.optVer) {
				return errStale
			}
			if h.optNode != 0 {
				// Key found by the search and still present: overwrite.
				ec.Store(&m.nodes[h.optNode-1].val, h.argVal)
				return nil
			}
			// Key absent and, by marker stability, still absent: link.
			idx := h.alloc()
			if idx == 0 {
				return ErrFull
			}
			nd := &m.nodes[idx-1]
			ec.Store(&nd.key, h.argKey)
			ec.Store(&nd.val, h.argVal)
			ec.Store(&nd.next, ec.Load(&m.buckets[b]))
			mk.BeginConflicting(ec)
			ec.Store(&m.buckets[b], idx)
			mk.EndConflicting(ec)
			h.retOK = true
			return nil
		},
	}
	h.csMutRem = core.CS{
		Scope:       m.scopeRemOpt,
		Conflicting: true,
		Body: func(ec *core.ExecCtx) error {
			b := m.bucket(h.argKey)
			mk := m.marker(b)
			if !mk.ValidateIn(ec, h.optVer) {
				return errStale
			}
			// Marker stability means the search's prev/node adjacency
			// still holds; unlink using it.
			mk.BeginConflicting(ec)
			if h.optPrev == 0 {
				ec.Store(&m.buckets[b], h.optNext)
			} else {
				ec.Store(&m.nodes[h.optPrev-1].next, h.optNext)
			}
			mk.EndConflicting(ec)
			h.toFree = h.optNode
			h.retOK = true
			return nil
		},
	}

	// InsertOpt: optimistic search in SWOpt mode, conflicting mutation in
	// the nested critical section above.
	h.csInsOpt = core.CS{
		Scope:       m.scopeInsOpt,
		HasSWOpt:    true,
		Conflicting: true, // the exclusive branch mutates directly
		Body: func(ec *core.ExecCtx) error {
			h.retOK = false
			key := h.argKey
			b := m.bucket(key)
			if ec.InSWOpt() {
				mk := m.marker(b)
				v := ec.ReadStable(mk)
				found := uint64(0)
				p := ec.Load(&m.buckets[b])
				if !ec.Validate(mk, v) {
					return ec.SWOptFail()
				}
				for p != 0 {
					if p > uint64(len(m.nodes)) {
						return ec.SWOptFail()
					}
					nd := &m.nodes[p-1]
					k := ec.Load(&nd.key)
					if !ec.Validate(mk, v) {
						return ec.SWOptFail()
					}
					if k == key {
						found = p
						break
					}
					p = ec.Load(&nd.next)
					if !ec.Validate(mk, v) {
						return ec.SWOptFail()
					}
				}
				h.optVer, h.optNode = v, found
				err := m.lock.Execute(h.thr, &h.csMutIns)
				if errors.Is(err, errStale) {
					return ec.SWOptFail()
				}
				return err
			}
			// Exclusive branch: same as the basic Insert.
			for p := ec.Load(&m.buckets[b]); p != 0; {
				nd := &m.nodes[p-1]
				if ec.Load(&nd.key) == key {
					ec.Store(&nd.val, h.argVal)
					return nil
				}
				p = ec.Load(&nd.next)
			}
			idx := h.alloc()
			if idx == 0 {
				return ErrFull
			}
			nd := &m.nodes[idx-1]
			ec.Store(&nd.key, key)
			ec.Store(&nd.val, h.argVal)
			ec.Store(&nd.next, ec.Load(&m.buckets[b]))
			mk := m.marker(b)
			mk.BeginConflicting(ec)
			ec.Store(&m.buckets[b], idx)
			mk.EndConflicting(ec)
			h.retOK = true
			return nil
		},
	}

	// RemoveOpt: optimistic search recording (prev, node, next), nested
	// unlink.
	h.csRemOpt = core.CS{
		Scope:       m.scopeRemOpt,
		HasSWOpt:    true,
		Conflicting: true,
		Body: func(ec *core.ExecCtx) error {
			h.retOK, h.toFree = false, 0
			key := h.argKey
			b := m.bucket(key)
			if ec.InSWOpt() {
				mk := m.marker(b)
				v := ec.ReadStable(mk)
				prev := uint64(0)
				p := ec.Load(&m.buckets[b])
				if !ec.Validate(mk, v) {
					return ec.SWOptFail()
				}
				for p != 0 {
					if p > uint64(len(m.nodes)) {
						return ec.SWOptFail()
					}
					nd := &m.nodes[p-1]
					k := ec.Load(&nd.key)
					if !ec.Validate(mk, v) {
						return ec.SWOptFail()
					}
					if k == key {
						next := ec.Load(&nd.next)
						if !ec.Validate(mk, v) {
							return ec.SWOptFail()
						}
						h.optVer, h.optPrev, h.optNode, h.optNext = v, prev, p, next
						err := m.lock.Execute(h.thr, &h.csMutRem)
						if errors.Is(err, errStale) {
							return ec.SWOptFail()
						}
						return err
					}
					prev = p
					p = ec.Load(&nd.next)
					if !ec.Validate(mk, v) {
						return ec.SWOptFail()
					}
				}
				return nil // validated miss: nothing to remove
			}
			// Exclusive branch: same as the basic Remove.
			prev := uint64(0)
			for p := ec.Load(&m.buckets[b]); p != 0; {
				nd := &m.nodes[p-1]
				if ec.Load(&nd.key) == key {
					next := ec.Load(&nd.next)
					mk := m.marker(b)
					mk.BeginConflicting(ec)
					if prev == 0 {
						ec.Store(&m.buckets[b], next)
					} else {
						ec.Store(&m.nodes[prev-1].next, next)
					}
					mk.EndConflicting(ec)
					h.toFree = p
					h.retOK = true
					return nil
				}
				prev = p
				p = ec.Load(&nd.next)
			}
			return nil
		},
	}

	// Clear: bulk removal. Lock mode only (whole-table sweep cannot fit
	// in HTM and must not run optimistically); side effects on the
	// handle's free list are safe because Lock-mode bodies run exactly
	// once. Every marker is bumped around the sweep.
	h.csClear = core.CS{
		Scope:       m.scopeClear,
		NoHTM:       true,
		Conflicting: true,
		Body: func(ec *core.ExecCtx) error {
			h.retN = 0
			for _, mk := range m.markers {
				mk.BeginConflicting(ec)
			}
			for b := range m.buckets {
				for p := ec.Load(&m.buckets[b]); p != 0; {
					next := ec.Load(&m.nodes[p-1].next)
					h.free = append(h.free, p)
					p = next
					h.retN++
				}
				ec.Store(&m.buckets[b], 0)
			}
			for _, mk := range m.markers {
				mk.EndConflicting(ec)
			}
			return nil
		},
	}

	// RemoveSelfAbort: the self-abort idiom. The SWOpt path completes
	// misses entirely optimistically; on a hit it self-aborts so the
	// execution retries with SWOpt disabled.
	h.csRemSA = core.CS{
		Scope:       m.scopeRemSA,
		HasSWOpt:    true,
		Conflicting: true,
		Body: func(ec *core.ExecCtx) error {
			h.retOK, h.toFree = false, 0
			key := h.argKey
			b := m.bucket(key)
			if ec.InSWOpt() {
				mk := m.marker(b)
				v := ec.ReadStable(mk)
				p := ec.Load(&m.buckets[b])
				if !ec.Validate(mk, v) {
					return ec.SWOptFail()
				}
				for p != 0 {
					if p > uint64(len(m.nodes)) {
						return ec.SWOptFail()
					}
					nd := &m.nodes[p-1]
					k := ec.Load(&nd.key)
					if !ec.Validate(mk, v) {
						return ec.SWOptFail()
					}
					if k == key {
						return ec.SelfAbort() // conflicting action ahead
					}
					p = ec.Load(&nd.next)
					if !ec.Validate(mk, v) {
						return ec.SWOptFail()
					}
				}
				return nil // validated miss
			}
			prev := uint64(0)
			for p := ec.Load(&m.buckets[b]); p != 0; {
				nd := &m.nodes[p-1]
				if ec.Load(&nd.key) == key {
					next := ec.Load(&nd.next)
					mk := m.marker(b)
					mk.BeginConflicting(ec)
					if prev == 0 {
						ec.Store(&m.buckets[b], next)
					} else {
						ec.Store(&m.nodes[prev-1].next, next)
					}
					mk.EndConflicting(ec)
					h.toFree = p
					h.retOK = true
					return nil
				}
				prev = p
				p = ec.Load(&nd.next)
			}
			return nil
		},
	}

	// Add (the KV server's INCR): read-modify-write of one value, with an
	// insert-from-zero on a miss. Same shape as the basic Insert — no
	// SWOpt path (it mutates), conflict marker bumped only around a fresh
	// link (inside AddIn/InsertIn); the in-place increment is a
	// single-word store a validated reader orders cleanly against.
	h.csAdd = core.CS{
		Scope:       m.scopeAdd,
		Conflicting: true,
		Body: func(ec *core.ExecCtx) error {
			h.retVal, h.freshAdd = 0, false
			v, fresh, err := h.AddIn(ec, h.argKey, h.argVal)
			if err != nil {
				return err
			}
			h.retVal, h.freshAdd = v, fresh
			return nil
		},
	}
}
