// Package hashmap is the paper's running example (section 3): a chained
// hash map protected by a single lock (tblLock), integrated with the ALE
// library so that every operation's critical section can execute in HTM,
// SWOpt, or Lock mode.
//
// The SWOpt machinery follows the paper exactly:
//
//   - a version number (tblVer, here a core.ConflictMarker, optionally
//     striped per bucket group) is bumped around explicitly identified
//     conflicting regions — the unlink in Remove, the link in Insert —
//     rather than around whole critical sections;
//   - Get's optimistic path is the paper's Figure 1 GetImp: it reads the
//     version first (waiting for it to be even), then validates after
//     every dependent load, bailing out with a retry on any change;
//   - the section 3.3 refinements are provided too: self-abort variants
//     (RemoveSelfAbort) and optimistic-search variants (InsertOpt /
//     RemoveOpt) that search in SWOpt mode and perform the conflicting
//     mutation in a nested critical section with no SWOpt path,
//     re-checking for invalidation after acquiring the lock.
//
// Nodes live in a fixed arena and are addressed by index, so a stale
// optimistic reader can never touch unmapped memory (the paper's
// "application does not deallocate memory during its lifetime" assumption,
// made structural). Freed nodes go to per-handle free lists and may be
// recycled immediately: every unlink bumps the conflict marker, so a
// validated reader can never follow a recycled node undetected.
//
// Keys are non-zero uint64s; values are uint64s.
package hashmap

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/locks"
	"repro/internal/tm"
)

// node is one chain entry. All three fields are transactional cells: key
// and val so HTM executions track them, next because it is the structural
// link concurrent modes race on. A node's key is immutable while linked.
type node struct {
	key  tm.Var
	val  tm.Var
	next tm.Var // index+1 of the next node; 0 terminates the chain
}

// Config sizes a Map.
type Config struct {
	// Buckets is the number of hash buckets (rounded up to a power of 2).
	Buckets int
	// Capacity is the node-arena size: the maximum number of live entries.
	Capacity int
	// MarkerStripes is the number of conflict markers the buckets are
	// striped over (rounded up to a power of 2). 1 reproduces the paper's
	// single tblVer; larger values implement the finer granularity the
	// paper suggests ("say one for each HashMap bucket. We have not yet
	// experimented with this option") and are ablated in the benchmarks.
	MarkerStripes int
}

// DefaultConfig returns the microbenchmark sizing.
func DefaultConfig() Config {
	return Config{Buckets: 1024, Capacity: 1 << 16, MarkerStripes: 1}
}

// Map is the ALE-integrated hash map. Construct with New; operate through
// per-goroutine Handles.
type Map struct {
	rt      *core.Runtime
	lock    *core.Lock
	markers []*core.ConflictMarker
	buckets []tm.Var
	nodes   []node
	mask    uint64
	mmask   uint64

	// chunk hands out arena segments to handles.
	chunk tm.Var

	scopeGet, scopeIns, scopeRem         *core.Scope
	scopeInsOpt, scopeRemOpt, scopeRemSA *core.Scope
	scopeClear, scopeLen                 *core.Scope
	scopeAdd, scopeRange                 *core.Scope
}

// errStale is the nested mutation CS's report that the enclosing SWOpt
// search was invalidated before the lock was acquired (section 3.3): the
// whole operation must retry.
var errStale = errors.New("hashmap: optimistic search invalidated")

func ceilPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// New builds a Map on runtime rt whose critical sections are governed by
// policy (one fresh policy instance; do not share policies across locks).
func New(rt *core.Runtime, name string, cfg Config, policy core.Policy) *Map {
	if cfg.Buckets < 1 || cfg.Capacity < 1 {
		panic("hashmap: non-positive sizing")
	}
	cfg.Buckets = ceilPow2(cfg.Buckets)
	if cfg.MarkerStripes < 1 {
		cfg.MarkerStripes = 1
	}
	cfg.MarkerStripes = ceilPow2(cfg.MarkerStripes)
	d := rt.Domain()
	m := &Map{
		rt:      rt,
		lock:    rt.NewLock(name, locks.NewTATAS(d), policy),
		buckets: d.NewVars(cfg.Buckets),
		nodes:   make([]node, cfg.Capacity),
		mask:    uint64(cfg.Buckets - 1),
		mmask:   uint64(cfg.MarkerStripes - 1),

		scopeGet:    core.NewScope(name + ".Get"),
		scopeIns:    core.NewScope(name + ".Insert"),
		scopeRem:    core.NewScope(name + ".Remove"),
		scopeInsOpt: core.NewScope(name + ".InsertOpt"),
		scopeRemOpt: core.NewScope(name + ".RemoveOpt"),
		scopeRemSA:  core.NewScope(name + ".RemoveSelfAbort"),
		scopeClear:  core.NewScope(name + ".Clear"),
		scopeLen:    core.NewScope(name + ".Len"),
		scopeAdd:    core.NewScope(name + ".Add"),
		scopeRange:  core.NewScope(name + ".Range"),
	}
	d.InitVar(&m.chunk, 0)
	for i := range m.nodes {
		d.InitVar(&m.nodes[i].key, 0)
		d.InitVar(&m.nodes[i].val, 0)
		d.InitVar(&m.nodes[i].next, 0)
	}
	m.markers = make([]*core.ConflictMarker, cfg.MarkerStripes)
	for i := range m.markers {
		m.markers[i] = m.lock.NewMarker()
	}
	return m
}

// Lock exposes the ALE lock (reports, tests).
func (m *Map) Lock() *core.Lock { return m.lock }

// Capacity returns the arena size.
func (m *Map) Capacity() int { return len(m.nodes) }

// hash mixes a key into a bucket index (splitmix64 finalizer).
func hash(key uint64) uint64 {
	z := key + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (m *Map) bucket(key uint64) uint64             { return hash(key) & m.mask }
func (m *Map) marker(b uint64) *core.ConflictMarker { return m.markers[b&m.mmask] }

// chunkSize is how many arena nodes a handle grabs at once.
const chunkSize = 64

// Handle is a per-goroutine accessor for the Map. It owns a core.Thread,
// a private node free list, and the scratch cells the prebuilt critical
// sections read their arguments from.
type Handle struct {
	m   *Map
	thr *core.Thread

	free      []uint64 // recycled node indices (as index+1)
	chunkBase uint64   // next unallocated index+1 in the current chunk
	chunkEnd  uint64

	// pendingNode survives across aborted attempts so an execution that
	// retries does not leak one arena node per abort.
	pendingNode uint64

	// Per-call arguments and results for the prebuilt CS bodies.
	argKey uint64
	argVal uint64
	retVal uint64
	retOK  bool
	toFree uint64

	csGet, csIns, csRem       core.CS
	csInsOpt, csRemOpt        core.CS
	csRemSA, csClear          core.CS
	csAdd                     core.CS
	csMutIns, csMutRem        core.CS
	freshAdd                  bool
	optVer                    uint64
	optPrev, optNode, optNext uint64
	retN                      int
}

// NewHandle creates a per-goroutine handle with its own ALE thread.
func (m *Map) NewHandle() *Handle {
	return m.NewHandleWithThread(m.rt.NewThread())
}

// NewHandleWithThread creates a handle executing on an existing ALE
// thread. Composite structures (the Kyoto Cabinet substrate) use this so
// one worker goroutine's nested critical sections across several locks
// share the single per-thread frame stack the nesting rules require.
func (m *Map) NewHandleWithThread(thr *core.Thread) *Handle {
	h := &Handle{m: m, thr: thr}
	h.buildCS()
	return h
}

// Thread exposes the handle's ALE thread (for explicit scopes).
func (h *Handle) Thread() *core.Thread { return h.thr }

// alloc returns a free node index+1, or 0 if the arena is exhausted.
func (h *Handle) alloc() uint64 {
	if h.pendingNode != 0 {
		return h.pendingNode
	}
	var idx uint64
	if n := len(h.free); n > 0 {
		idx = h.free[n-1]
		h.free = h.free[:n-1]
	} else {
		if h.chunkBase >= h.chunkEnd {
			base := h.m.chunk.AddDirect(chunkSize)
			if base > uint64(len(h.m.nodes)) {
				return 0 // arena exhausted
			}
			h.chunkBase, h.chunkEnd = base-chunkSize+1, base+1
		}
		idx = h.chunkBase
		h.chunkBase++
	}
	h.pendingNode = idx
	return idx
}

// Get looks key up, returning its value. The critical section has a SWOpt
// path (the paper's Figure 1).
func (h *Handle) Get(key uint64) (uint64, bool, error) {
	if key == 0 {
		return 0, false, fmt.Errorf("hashmap: zero key")
	}
	h.argKey = key
	err := h.m.lock.Execute(h.thr, &h.csGet)
	return h.retVal, h.retOK, err
}

// Insert adds or overwrites key -> val (basic variant: the whole operation
// in one critical section, conflicting region around the link).
func (h *Handle) Insert(key, val uint64) (bool, error) {
	if key == 0 {
		return false, fmt.Errorf("hashmap: zero key")
	}
	h.argKey, h.argVal = key, val
	err := h.m.lock.Execute(h.thr, &h.csIns)
	if err == nil && h.retOK {
		h.pendingNode = 0 // consumed by the committed link
	}
	return h.retOK, err
}

// Remove deletes key if present (basic variant; conflicting region around
// the unlink, exactly the paper's Remove listing).
func (h *Handle) Remove(key uint64) (bool, error) {
	if key == 0 {
		return false, fmt.Errorf("hashmap: zero key")
	}
	h.argKey = key
	h.toFree = 0
	err := h.m.lock.Execute(h.thr, &h.csRem)
	if err == nil && h.toFree != 0 {
		h.free = append(h.free, h.toFree)
		h.toFree = 0
	}
	return h.retOK, err
}

// InsertOpt is the section 3.3 optimistic-search Insert: the search runs in
// SWOpt mode and the conflicting mutation happens in a nested critical
// section with no SWOpt path.
func (h *Handle) InsertOpt(key, val uint64) (bool, error) {
	if key == 0 {
		return false, fmt.Errorf("hashmap: zero key")
	}
	h.argKey, h.argVal = key, val
	err := h.m.lock.Execute(h.thr, &h.csInsOpt)
	if err == nil && h.retOK {
		h.pendingNode = 0
	}
	return h.retOK, err
}

// RemoveOpt is the section 3.3 optimistic-search Remove.
func (h *Handle) RemoveOpt(key uint64) (bool, error) {
	if key == 0 {
		return false, fmt.Errorf("hashmap: zero key")
	}
	h.argKey = key
	h.toFree = 0
	err := h.m.lock.Execute(h.thr, &h.csRemOpt)
	if err == nil && h.toFree != 0 {
		h.free = append(h.free, h.toFree)
		h.toFree = 0
	}
	return h.retOK, err
}

// RemoveSelfAbort is the section 3.3 self-abort Remove: the SWOpt path
// searches, and on finding a node to unlink self-aborts so the execution
// retries non-optimistically. Misses complete entirely in SWOpt mode.
func (h *Handle) RemoveSelfAbort(key uint64) (bool, error) {
	if key == 0 {
		return false, fmt.Errorf("hashmap: zero key")
	}
	h.argKey = key
	h.toFree = 0
	err := h.m.lock.Execute(h.thr, &h.csRemSA)
	if err == nil && h.toFree != 0 {
		h.free = append(h.free, h.toFree)
		h.toFree = 0
	}
	return h.retOK, err
}

// Clear removes every entry through an ALE critical section, recycling the
// nodes into this handle's free list. It runs in Lock mode (it touches
// every bucket, hopeless in HTM) and bumps every conflict marker around
// the sweep so concurrent SWOpt searches retry. Returns how many entries
// were removed.
func (h *Handle) Clear() (int, error) {
	err := h.m.lock.Execute(h.thr, &h.csClear)
	return h.retN, err
}

// Len counts entries by walking every chain under the lock (test/diagnostic
// helper, not part of the paper's API).
func (h *Handle) Len() (int, error) {
	n := 0
	err := h.m.lock.Execute(h.thr, &core.CS{
		Scope: h.m.scopeLen,
		Body: func(ec *core.ExecCtx) error {
			n = 0
			for b := range h.m.buckets {
				for p := ec.Load(&h.m.buckets[b]); p != 0; {
					nd := &h.m.nodes[p-1]
					n++
					p = ec.Load(&nd.next)
				}
			}
			return nil
		},
		NoHTM: true, // touches every bucket: hopeless in HTM, don't try
	})
	return n, err
}

// Add increments key's value by delta, inserting it (starting from zero)
// if absent, and returns the new value — the KV server's INCR. Basic
// variant: the whole read-modify-write in one critical section, conflict
// marker bumped only around a fresh link.
func (h *Handle) Add(key, delta uint64) (uint64, error) {
	if key == 0 {
		return 0, fmt.Errorf("hashmap: zero key")
	}
	h.argKey, h.argVal = key, delta
	err := h.m.lock.Execute(h.thr, &h.csAdd)
	if err == nil && h.freshAdd {
		h.pendingNode = 0 // consumed by the committed link
	}
	return h.retVal, err
}

// Range visits every key/value pair under the lock (bucket order, chains
// most-recent-first); visit returns false to stop early. Returns how many
// pairs were visited — the KV server's SCAN. Like Len it runs in Lock
// mode only: whole-table walks are hopeless in HTM and have no SWOpt
// path.
func (h *Handle) Range(visit func(key, val uint64) bool) (int, error) {
	n := 0
	err := h.m.lock.Execute(h.thr, &core.CS{
		Scope: h.m.scopeRange,
		Body: func(ec *core.ExecCtx) error {
			n = 0
			h.RangeIn(ec, func(key, val uint64) bool {
				if !visit(key, val) {
					return false
				}
				n++
				return true
			})
			return nil
		},
		NoHTM: true,
	})
	return n, err
}
