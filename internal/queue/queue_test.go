package queue

import (
	"errors"
	"runtime"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/platform"
	"repro/internal/tm"
	"repro/internal/xrand"
)

func htmProfile() tm.Profile {
	return tm.Profile{Name: "test-htm", Enabled: true, ReadCap: 1 << 16, WriteCap: 1 << 16}
}

func noHTMProfile() tm.Profile {
	return tm.Profile{Name: "test-nohtm", Enabled: false}
}

func newQueue(prof tm.Profile, capacity int, pol core.Policy) *Queue {
	rt := core.NewRuntime(tm.NewDomain(prof))
	return New(rt, "q", capacity, pol)
}

func TestSequentialFIFO(t *testing.T) {
	q := newQueue(htmProfile(), 8, core.NewStatic(10, 10))
	h := q.NewHandle()
	if _, err := h.Take(); !errors.Is(err, ErrEmpty) {
		t.Fatalf("Take on empty = %v, want ErrEmpty", err)
	}
	for i := uint64(1); i <= 5; i++ {
		if err := h.Put(i * 10); err != nil {
			t.Fatal(err)
		}
	}
	if n, _ := h.Len(); n != 5 {
		t.Fatalf("Len = %d, want 5", n)
	}
	if v, ok, _ := h.Peek(); !ok || v != 10 {
		t.Fatalf("Peek = (%d, %v), want (10, true)", v, ok)
	}
	for i := uint64(1); i <= 5; i++ {
		v, err := h.Take()
		if err != nil || v != i*10 {
			t.Fatalf("Take #%d = (%d, %v)", i, v, err)
		}
	}
	if _, ok, _ := h.Peek(); ok {
		t.Fatal("Peek on drained queue hit")
	}
}

func TestFullQueue(t *testing.T) {
	q := newQueue(htmProfile(), 4, core.NewStatic(5, 0))
	h := q.NewHandle()
	for i := 0; i < q.Cap(); i++ {
		if err := h.Put(uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := h.Put(99); !errors.Is(err, ErrFull) {
		t.Fatalf("Put on full = %v, want ErrFull", err)
	}
	if _, err := h.Take(); err != nil {
		t.Fatal(err)
	}
	if err := h.Put(99); err != nil {
		t.Fatalf("Put after Take = %v", err)
	}
}

func TestCapacityRounding(t *testing.T) {
	q := newQueue(htmProfile(), 5, core.NewLockOnly())
	if q.Cap() != 8 {
		t.Errorf("Cap = %d, want 8", q.Cap())
	}
}

func TestWraparound(t *testing.T) {
	q := newQueue(htmProfile(), 4, core.NewStatic(5, 5))
	h := q.NewHandle()
	// Push the cursors far past the ring size.
	for i := uint64(0); i < 100; i++ {
		if err := h.Put(i); err != nil {
			t.Fatal(err)
		}
		v, err := h.Take()
		if err != nil || v != i {
			t.Fatalf("cycle %d: Take = (%d, %v)", i, v, err)
		}
	}
}

func TestQuickMatchesModel(t *testing.T) {
	type op struct {
		Kind uint8
		Val  uint16
	}
	for _, tc := range []struct {
		name string
		prof tm.Profile
	}{{"htm", htmProfile()}, {"nohtm", noHTMProfile()}} {
		t.Run(tc.name, func(t *testing.T) {
			f := func(ops []op) bool {
				q := newQueue(tc.prof, 16, core.NewStatic(5, 5))
				h := q.NewHandle()
				var model []uint64
				for _, o := range ops {
					switch o.Kind % 4 {
					case 0, 1:
						err := h.Put(uint64(o.Val))
						if len(model) >= q.Cap() {
							if !errors.Is(err, ErrFull) {
								return false
							}
						} else {
							if err != nil {
								return false
							}
							model = append(model, uint64(o.Val))
						}
					case 2:
						v, err := h.Take()
						if len(model) == 0 {
							if !errors.Is(err, ErrEmpty) {
								return false
							}
						} else {
							if err != nil || v != model[0] {
								return false
							}
							model = model[1:]
						}
					case 3:
						v, ok, err := h.Peek()
						if err != nil {
							return false
						}
						if ok != (len(model) > 0) {
							return false
						}
						if ok && v != model[0] {
							return false
						}
					}
					n, err := h.Len()
					if err != nil || n != len(model) {
						return false
					}
				}
				return true
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestConcurrentProducersConsumers: values carry producer id + sequence;
// each consumer checks per-producer sequences arrive in order (FIFO per
// producer holds for a linearizable queue), and nothing is lost or
// duplicated.
func TestConcurrentProducersConsumers(t *testing.T) {
	for _, tc := range []struct {
		name string
		prof tm.Profile
		pol  func() core.Policy
	}{
		{"htm", htmProfile(), func() core.Policy { return core.NewStatic(8, 8) }},
		{"nohtm", noHTMProfile(), func() core.Policy { return core.NewStatic(0, 8) }},
		{"rock", platform.Rock().Profile, func() core.Policy { return core.NewStatic(8, 8) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rt := core.NewRuntime(tm.NewDomain(tc.prof))
			q := New(rt, "q", 64, tc.pol())
			const producers, consumers, perProducer = 4, 4, 1200
			var wg sync.WaitGroup
			errCh := make(chan error, producers+consumers)
			consumed := make([][]uint64, consumers)
			for p := 0; p < producers; p++ {
				wg.Add(1)
				go func(id int) {
					defer wg.Done()
					h := q.NewHandle()
					for i := 0; i < perProducer; i++ {
						val := uint64(id)<<32 | uint64(i)
						for {
							err := h.Put(val)
							if err == nil {
								break
							}
							if !errors.Is(err, ErrFull) {
								errCh <- err
								return
							}
							runtime.Gosched() // let a consumer drain
						}
					}
				}(p)
			}
			var taken sync.WaitGroup
			total := producers * perProducer
			var remaining = make(chan struct{}, total)
			for i := 0; i < total; i++ {
				remaining <- struct{}{}
			}
			for c := 0; c < consumers; c++ {
				wg.Add(1)
				taken.Add(1)
				go func(id int) {
					defer wg.Done()
					defer taken.Done()
					h := q.NewHandle()
					for {
						select {
						case <-remaining:
						default:
							return
						}
						for {
							v, err := h.Take()
							if err == nil {
								consumed[id] = append(consumed[id], v)
								break
							}
							if !errors.Is(err, ErrEmpty) {
								errCh <- err
								return
							}
							runtime.Gosched() // let a producer fill
						}
					}
				}(c)
			}
			wg.Wait()
			close(errCh)
			for err := range errCh {
				t.Fatal(err)
			}
			// Every value exactly once, and per-producer order respected
			// within each consumer's local stream.
			seen := map[uint64]bool{}
			for c := range consumed {
				lastPerProducer := map[uint64]int64{}
				for _, v := range consumed[c] {
					if seen[v] {
						t.Fatalf("value %x consumed twice", v)
					}
					seen[v] = true
					prod, seq := v>>32, int64(v&0xffffffff)
					if last, ok := lastPerProducer[prod]; ok && seq <= last {
						t.Fatalf("consumer %d saw producer %d out of order (%d after %d)",
							c, prod, seq, last)
					}
					lastPerProducer[prod] = seq
				}
			}
			if len(seen) != total {
				t.Fatalf("consumed %d values, want %d", len(seen), total)
			}
		})
	}
}

// TestPeekersDoNotBlockThroughput: heavy Peek/Len traffic runs in SWOpt
// and must not fall back to the lock appreciably on a no-HTM platform.
func TestPeekersDoNotBlockThroughput(t *testing.T) {
	rt := core.NewRuntime(tm.NewDomain(noHTMProfile()))
	q := New(rt, "q", 64, core.NewStatic(0, 20))
	h := q.NewHandle()
	for i := uint64(0); i < 32; i++ {
		if err := h.Put(i); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5000; i++ {
		if _, _, err := h.Peek(); err != nil {
			t.Fatal(err)
		}
		if _, err := h.Len(); err != nil {
			t.Fatal(err)
		}
	}
	var sw, lk uint64
	for _, g := range q.Lock().Granules() {
		switch g.Label() {
		case "q.Peek", "q.Len":
			sw += g.Successes(core.ModeSWOpt)
			lk += g.Successes(core.ModeLock)
		}
	}
	if sw == 0 {
		t.Fatal("read-only queue ops never used SWOpt")
	}
	if lk > sw/10 {
		t.Errorf("read-only queue ops fell back to the lock %d times (SWOpt %d)", lk, sw)
	}
}

// TestMixedWithMonitors is the intended usage shape: producers/consumers
// churn while monitor goroutines watch Len/Peek optimistically; totals
// must balance.
func TestMixedWithMonitors(t *testing.T) {
	rt := core.NewRuntime(tm.NewDomain(htmProfile()))
	q := New(rt, "q", 128, core.NewStatic(8, 8))
	stop := make(chan struct{})
	var wg sync.WaitGroup
	errCh := make(chan error, 8)
	for m := 0; m < 2; m++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h := q.NewHandle()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if n, err := h.Len(); err != nil || n < 0 || n > q.Cap() {
					errCh <- err
					return
				}
				if _, _, err := h.Peek(); err != nil {
					errCh <- err
					return
				}
			}
		}()
	}
	var puts, takes int
	h := q.NewHandle()
	rng := xrand.New(4)
	for i := 0; i < 20000; i++ {
		if rng.Intn(2) == 0 {
			if err := h.Put(uint64(i)); err == nil {
				puts++
			} else if !errors.Is(err, ErrFull) {
				t.Fatal(err)
			}
		} else {
			if _, err := h.Take(); err == nil {
				takes++
			} else if !errors.Is(err, ErrEmpty) {
				t.Fatal(err)
			}
		}
	}
	close(stop)
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	n, _ := h.Len()
	if puts-takes != n {
		t.Errorf("puts %d - takes %d = %d, but Len = %d", puts, takes, puts-takes, n)
	}
}
