package queue

// SetDebugSkipHeadEvery seeds a deliberate defect for the stress
// harness's self-test (internal/oracle): every n-th Take that reaches the
// dequeue's conflicting region skips advancing the head cursor, so a
// later Take observes — and returns — the same element twice. The queue
// stays structurally sound (cursors monotone, marker balanced), so no
// invariant checker notices; only result checking against a sequential
// oracle catches it. n = 0 restores correct behaviour (the default).
//
// The skip counter counts attempts reaching the region, so under HTM
// retries an aborted attempt consumes a count; under the oracle harness's
// deterministic runner the firing schedule is exactly reproducible.
// Test-only: never call this outside harness self-tests.
func (q *Queue) SetDebugSkipHeadEvery(n uint64) { q.debugSkipHead.Store(n) }
