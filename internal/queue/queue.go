// Package queue applies the ALE methodology to a bounded FIFO queue — a
// third data-structure shape after the hash map (point operations) and
// the sorted set (long traversals): short critical sections with *inherent
// serialization* (every enqueue writes the same tail cursor, every dequeue
// the same head cursor).
//
// The interesting ALE behaviours here:
//
//   - Enqueue/Dequeue in HTM mode conflict with every concurrent
//     enqueue/dequeue (cursor write-write conflicts), so TLE degrades
//     toward the lock as producers multiply — a structurally different
//     regime from the HashMap, where transactions rarely collide.
//   - Read-only operations (Peek, Len) carry SWOpt paths that validate
//     against a conflict marker bumped around cursor movement, so
//     monitoring traffic never serializes with the producers/consumers.
//
// Layout mirrors the other structures: ring slots in tm.Vars, prebuilt
// critical sections on per-goroutine handles, outputs reset at body start
// (aborted attempts' handle side effects must not leak).
package queue

import (
	"errors"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/locks"
	"repro/internal/tm"
)

// Errors returned by queue operations.
var (
	// ErrClosedCapacity reports a Put on a full queue.
	ErrFull = errors.New("queue: full")
	// ErrEmpty reports a Take on an empty queue.
	ErrEmpty = errors.New("queue: empty")
)

// Queue is the ALE-integrated bounded FIFO. Construct with New; operate
// through per-goroutine Handles.
type Queue struct {
	rt     *core.Runtime
	lock   *core.Lock
	marker *core.ConflictMarker

	slots []tm.Var
	head  tm.Var // absolute dequeue cursor
	tail  tm.Var // absolute enqueue cursor
	mask  uint64

	// debugSkipHead/debugTakes implement the seeded defect of
	// SetDebugSkipHeadEvery (stress-harness self-test); both stay zero in
	// real use, costing one atomic load per Take.
	debugSkipHead atomic.Uint64
	debugTakes    atomic.Uint64

	scopePut, scopeTake, scopePeek, scopeLen *core.Scope
}

// New builds a queue with the given capacity (rounded up to a power of
// two), governed by policy.
func New(rt *core.Runtime, name string, capacity int, policy core.Policy) *Queue {
	if capacity < 1 {
		panic("queue: non-positive capacity")
	}
	n := 1
	for n < capacity {
		n <<= 1
	}
	d := rt.Domain()
	q := &Queue{
		rt:    rt,
		lock:  rt.NewLock(name, locks.NewTATAS(d), policy),
		slots: d.NewVars(n),
		mask:  uint64(n - 1),

		scopePut:  core.NewScope(name + ".Put"),
		scopeTake: core.NewScope(name + ".Take"),
		scopePeek: core.NewScope(name + ".Peek"),
		scopeLen:  core.NewScope(name + ".Len"),
	}
	d.InitVar(&q.head, 0)
	d.InitVar(&q.tail, 0)
	q.marker = q.lock.NewMarker()
	return q
}

// Lock exposes the ALE lock (reports, tests).
func (q *Queue) Lock() *core.Lock { return q.lock }

// Cap returns the queue capacity.
func (q *Queue) Cap() int { return len(q.slots) }

// Handle is a per-goroutine accessor.
type Handle struct {
	q   *Queue
	thr *core.Thread

	argVal uint64
	retVal uint64
	retOK  bool
	retN   int

	csPut, csTake, csPeek, csLen core.CS
}

// NewHandle creates a per-goroutine handle with its own ALE thread.
func (q *Queue) NewHandle() *Handle { return q.NewHandleWithThread(q.rt.NewThread()) }

// NewHandleWithThread creates a handle on an existing ALE thread.
func (q *Queue) NewHandleWithThread(thr *core.Thread) *Handle {
	h := &Handle{q: q, thr: thr}
	h.buildCS()
	return h
}

// Thread exposes the handle's ALE thread.
func (h *Handle) Thread() *core.Thread { return h.thr }

// Put enqueues v; it reports ErrFull when the queue is at capacity.
func (h *Handle) Put(v uint64) error {
	h.argVal = v
	if err := h.q.lock.Execute(h.thr, &h.csPut); err != nil {
		return err
	}
	if !h.retOK {
		return ErrFull
	}
	return nil
}

// Take dequeues the oldest value; it reports ErrEmpty when none exists.
func (h *Handle) Take() (uint64, error) {
	if err := h.q.lock.Execute(h.thr, &h.csTake); err != nil {
		return 0, err
	}
	if !h.retOK {
		return 0, ErrEmpty
	}
	return h.retVal, nil
}

// Peek returns the oldest value without removing it (SWOpt-capable).
func (h *Handle) Peek() (uint64, bool, error) {
	err := h.q.lock.Execute(h.thr, &h.csPeek)
	return h.retVal, h.retOK, err
}

// Len returns the number of queued values (SWOpt-capable).
func (h *Handle) Len() (int, error) {
	err := h.q.lock.Execute(h.thr, &h.csLen)
	return h.retN, err
}

func (h *Handle) buildCS() {
	q := h.q

	h.csPut = core.CS{
		Scope:       q.scopePut,
		Conflicting: true,
		Body: func(ec *core.ExecCtx) error {
			h.retOK = false
			head := ec.Load(&q.head)
			tail := ec.Load(&q.tail)
			if tail-head >= uint64(len(q.slots)) {
				return nil // full
			}
			q.marker.BeginConflicting(ec)
			ec.Store(&q.slots[tail&q.mask], h.argVal)
			ec.Store(&q.tail, tail+1)
			q.marker.EndConflicting(ec)
			h.retOK = true
			return nil
		},
	}
	h.csTake = core.CS{
		Scope:       q.scopeTake,
		Conflicting: true,
		Body: func(ec *core.ExecCtx) error {
			h.retOK, h.retVal = false, 0
			head := ec.Load(&q.head)
			tail := ec.Load(&q.tail)
			if head == tail {
				return nil // empty
			}
			q.marker.BeginConflicting(ec)
			h.retVal = ec.Load(&q.slots[head&q.mask])
			if skip := q.debugSkipHead.Load(); skip == 0 || q.debugTakes.Add(1)%skip != 0 {
				ec.Store(&q.head, head+1)
			}
			q.marker.EndConflicting(ec)
			h.retOK = true
			return nil
		},
	}
	h.csPeek = core.CS{
		Scope:    q.scopePeek,
		HasSWOpt: true,
		Body: func(ec *core.ExecCtx) error {
			h.retOK, h.retVal = false, 0
			if ec.InSWOpt() {
				ver := ec.ReadStable(q.marker)
				head := ec.Load(&q.head)
				tail := ec.Load(&q.tail)
				if !ec.Validate(q.marker, ver) {
					return ec.SWOptFail()
				}
				if head == tail {
					return nil
				}
				v := ec.Load(&q.slots[head&q.mask])
				if !ec.Validate(q.marker, ver) {
					return ec.SWOptFail()
				}
				h.retVal, h.retOK = v, true
				return nil
			}
			head := ec.Load(&q.head)
			tail := ec.Load(&q.tail)
			if head == tail {
				return nil
			}
			h.retVal, h.retOK = ec.Load(&q.slots[head&q.mask]), true
			return nil
		},
	}
	h.csLen = core.CS{
		Scope:    q.scopeLen,
		HasSWOpt: true,
		Body: func(ec *core.ExecCtx) error {
			h.retN = 0
			if ec.InSWOpt() {
				ver := ec.ReadStable(q.marker)
				head := ec.Load(&q.head)
				tail := ec.Load(&q.tail)
				if !ec.Validate(q.marker, ver) {
					return ec.SWOptFail()
				}
				h.retN = int(tail - head)
				return nil
			}
			h.retN = int(ec.Load(&q.tail) - ec.Load(&q.head))
			return nil
		},
	}
}
