package faultinject

import (
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/tm"
)

func TestRuleRoundTrip(t *testing.T) {
	cases := []string{
		"spurious-burst",
		"conflict-storm@100:200",
		"htm-disable@50:/2",
		"capacity-cliff=6",
		"delay-end@10:10=64",
		"lock-stretch/3=16",
		"validate-fail@:7",
		// Shard-confined access rules (the #K suffix, 0-based).
		"conflict-storm#0",
		"spurious-burst#3@10:20/2",
		"capacity-cliff#63=6",
	}
	for _, s := range cases {
		r, err := ParseRule(s)
		if err != nil {
			t.Fatalf("ParseRule(%q): %v", s, err)
		}
		back, err := ParseRule(r.String())
		if err != nil {
			t.Fatalf("re-parse of %q -> %q: %v", s, r.String(), err)
		}
		if back != r {
			t.Errorf("round trip %q: %+v != %+v", s, back, r)
		}
	}
}

func TestScriptRoundTrip(t *testing.T) {
	const src = "spurious-burst@5:9, htm-disable/4\nconflict-storm@100:=0"
	sc, err := ParseScript(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(sc) != 3 {
		t.Fatalf("parsed %d rules, want 3", len(sc))
	}
	sc2, err := ParseScript(sc.String())
	if err != nil {
		t.Fatalf("re-parse of %q: %v", sc.String(), err)
	}
	if sc2.String() != sc.String() {
		t.Errorf("round trip: %q != %q", sc2.String(), sc.String())
	}
	if empty, err := ParseScript("  ,\n"); err != nil || len(empty) != 0 {
		t.Errorf("separator-only script = (%v, %v), want empty", empty, err)
	}
}

func TestParseRuleErrors(t *testing.T) {
	for _, s := range []string{
		"no-such-class", "spurious-burst@5", "delay-end=x",
		"htm-disable@9:3", "conflict-storm/", "",
		// Shard confinement: access classes only, 0 <= K < tm.MaxShards,
		// digits required.
		"htm-disable#0", "delay-end#1=4", "validate-fail#2",
		"conflict-storm#64", "conflict-storm#x", "spurious-burst#",
	} {
		if r, err := ParseRule(s); err == nil {
			t.Errorf("ParseRule(%q) = %+v, want error", s, r)
		}
	}
}

func TestRuleMatches(t *testing.T) {
	r := Rule{Class: ConflictStorm, From: 10, To: 20, Every: 5}
	want := map[uint64]bool{9: false, 10: true, 14: false, 15: true, 20: true, 21: false, 25: false}
	for n, w := range want {
		if got := r.matches(n); got != w {
			t.Errorf("matches(%d) = %v, want %v", n, got, w)
		}
	}
	always := Rule{Class: SpuriousBurst}
	for _, n := range []uint64{1, 2, 1000} {
		if !always.matches(n) {
			t.Errorf("zero-value window must match every opportunity (n=%d)", n)
		}
	}
}

func testProfile() tm.Profile {
	return tm.Profile{Name: "fi-test", Enabled: true, ReadCap: 1 << 16, WriteCap: 1 << 16}
}

// TestInjectorSubstrate drives a tm domain under a scripted injector and
// checks the scheduled aborts and the firing counters.
func TestInjectorSubstrate(t *testing.T) {
	sc, err := ParseScript("htm-disable@2:2,conflict-storm@4:4")
	if err != nil {
		t.Fatal(err)
	}
	inj := New(sc)
	d := tm.NewDomain(testProfile())
	d.SetInjector(inj)
	v := d.NewVar(0)
	txn := d.NewTxn(1)
	body := func(tx *tm.Txn) { tx.Add(v, 1) } // 2 access opportunities each

	results := []struct {
		ok     bool
		reason tm.AbortReason
	}{}
	for i := 0; i < 3; i++ {
		ok, reason := txn.Run(body)
		results = append(results, struct {
			ok     bool
			reason tm.AbortReason
		}{ok, reason})
	}
	// Begin opportunities: 1 (run), 2 (fires disable), 3 (run).
	// Access opportunities: run1 = 1,2; run3 = 3,4 (fires conflict on 4).
	if !results[0].ok {
		t.Fatalf("run 1 = %+v, want commit", results[0])
	}
	if results[1].ok || results[1].reason != tm.AbortDisabled {
		t.Fatalf("run 2 = %+v, want AbortDisabled", results[1])
	}
	if results[2].ok || results[2].reason != tm.AbortConflict {
		t.Fatalf("run 3 = %+v, want AbortConflict", results[2])
	}
	f := inj.Firings()
	if f[HTMDisable] != 1 || f[ConflictStorm] != 1 {
		t.Errorf("firings = %v, want one htm-disable and one conflict-storm", f)
	}
	if inj.TotalFirings() != 2 {
		t.Errorf("TotalFirings = %d, want 2", inj.TotalFirings())
	}
}

// TestInjectorCapacityCliff checks the footprint-threshold semantics: the
// cliff fires only once the transaction's footprint reaches Param.
func TestInjectorCapacityCliff(t *testing.T) {
	inj := New(Script{{Class: CapacityCliff, Param: 3}})
	d := tm.NewDomain(testProfile())
	d.SetInjector(inj)
	vs := d.NewVars(8)
	txn := d.NewTxn(1)

	if ok, _ := txn.Run(func(tx *tm.Txn) {
		tx.Load(&vs[0])
		tx.Load(&vs[1])
		tx.Load(&vs[2])
	}); !ok {
		t.Fatalf("footprint-3 transaction must fit (cliff checks footprint before the access)")
	}
	ok, reason := txn.Run(func(tx *tm.Txn) {
		for i := range vs {
			tx.Load(&vs[i])
		}
	})
	if ok || reason != tm.AbortCapacity {
		t.Fatalf("big transaction = (%v, %v), want injected AbortCapacity", ok, reason)
	}
	if f := inj.Firings(); f[CapacityCliff] != 1 {
		t.Errorf("cliff fired %d times, want 1", f[CapacityCliff])
	}
}

// TestInjectorDeterminism replays the same workload twice and demands
// identical opportunity and firing counts — the property the oracle
// harness's bit-for-bit reproducibility rests on.
func TestInjectorDeterminism(t *testing.T) {
	sc, err := ParseScript("spurious-burst@3:/7,htm-disable@5:9/2")
	if err != nil {
		t.Fatal(err)
	}
	run := func() ([NumClasses]uint64, [NumClasses]uint64) {
		inj := New(sc)
		d := tm.NewDomain(testProfile())
		d.SetInjector(inj)
		vs := d.NewVars(4)
		txn := d.NewTxn(99)
		for i := 0; i < 50; i++ {
			txn.Run(func(tx *tm.Txn) {
				tx.Store(&vs[i%4], uint64(i))
				tx.Load(&vs[(i+1)%4])
			})
		}
		return inj.Opportunities(), inj.Firings()
	}
	o1, f1 := run()
	o2, f2 := run()
	if o1 != o2 || f1 != f2 {
		t.Errorf("replay diverged: opps %v vs %v, firings %v vs %v", o1, o2, f1, f2)
	}
	if f1[SpuriousBurst] == 0 || f1[HTMDisable] == 0 {
		t.Errorf("script never fired: %v", f1)
	}
}

// TestObsMirror checks the firing counters flow into an obs shard and out
// the Prometheus/JSON exports, and that the class-name convention holds.
func TestObsMirror(t *testing.T) {
	if NumClasses != obs.NumFaultClasses {
		t.Fatalf("NumClasses %d != obs.NumFaultClasses %d", NumClasses, obs.NumFaultClasses)
	}
	for i := range classNames {
		if classNames[i] != obs.FaultClassNames[i] {
			t.Fatalf("class %d named %q here, %q in obs", i, classNames[i], obs.FaultClassNames[i])
		}
	}
	col := obs.New()
	inj := New(Script{{Class: ValidateFail, To: 3}})
	inj.SetObsShard(col.NewShard())
	for i := 0; i < 10; i++ {
		inj.ForceValidateFail()
	}
	s := col.Snapshot()
	if got := s.Faults(uint8(ValidateFail)); got != 3 {
		t.Fatalf("snapshot validate-fail count = %d, want 3", got)
	}
	if got := s.FaultsTotal(); got != 3 {
		t.Fatalf("FaultsTotal = %d, want 3", got)
	}
	var b strings.Builder
	if err := obs.WritePrometheus(&b, s); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `ale_faults_injected_total{class="validate-fail"} 3`) {
		t.Errorf("Prometheus export missing fault counter:\n%s", b.String())
	}
	data, err := s.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	var back obs.Snapshot
	if err := back.UnmarshalJSON(data); err != nil {
		t.Fatal(err)
	}
	if back.Faults(uint8(ValidateFail)) != 3 {
		t.Errorf("JSON round trip lost fault counts: %s", data)
	}
}

// TestShardConfinedRule pins the filter-not-count semantics of shard
// confinement at the hook level: the class's opportunity counter advances
// on every access, but a confined rule fires only when the access's shard
// matches, so scoped and unscoped windows stay comparable.
func TestShardConfinedRule(t *testing.T) {
	r, err := ParseRule("conflict-storm#2")
	if err != nil {
		t.Fatal(err)
	}
	if r.Shard != 3 { // stored 1-based so the zero value means "any shard"
		t.Fatalf("parsed Shard = %d, want 3 (0-based #2 stored +1)", r.Shard)
	}
	inj := New(Script{r})
	for i := 0; i < 5; i++ {
		if got := inj.OnAccess(1, 0, false, 1); got != tm.AbortNone {
			t.Fatalf("access %d on shard 1 = %v, want no fire", i, got)
		}
	}
	if got := inj.OnAccess(1, 0, false, 2); got != tm.AbortConflict {
		t.Fatalf("access on shard 2 = %v, want AbortConflict", got)
	}
	if o := inj.Opportunities(); o[ConflictStorm] != 6 {
		t.Errorf("opportunities = %d, want 6 (mismatched shards still count)", o[ConflictStorm])
	}
	if f := inj.Firings(); f[ConflictStorm] != 1 {
		t.Errorf("firings = %d, want 1", f[ConflictStorm])
	}

	// The cliff keeps its footprint threshold under confinement.
	cliff, err := ParseRule("capacity-cliff#4=3")
	if err != nil {
		t.Fatal(err)
	}
	inj2 := New(Script{cliff})
	if got := inj2.OnAccess(5, 0, false, 1); got != tm.AbortNone {
		t.Fatalf("big footprint on wrong shard = %v, want no fire", got)
	}
	if got := inj2.OnAccess(2, 0, false, 4); got != tm.AbortNone {
		t.Fatalf("small footprint on shard 4 = %v, want no fire", got)
	}
	if got := inj2.OnAccess(2, 1, true, 4); got != tm.AbortCapacity {
		t.Fatalf("footprint-3 access on shard 4 = %v, want AbortCapacity", got)
	}
}

// TestShardIsolationAblation is the fault-ablation counterpart of the
// sharded-domain scaling claim: a conflict storm confined to one
// commit-clock shard must abort every attempt touching that shard and
// none on the others. EXPERIMENTS.md cites this as the shard-isolation
// ablation.
func TestShardIsolationAblation(t *testing.T) {
	d := tm.NewDomain(tm.Profile{
		Name: "fi-sharded", Enabled: true,
		ReadCap: 1 << 16, WriteCap: 1 << 16, Shards: 8,
	})
	// Retain every sampled Var: unretained allocations can be reused by
	// escape analysis, which would pin them all to one address and shard.
	vars := make([]*tm.Var, 0, 64)
	varInShard := func(want bool, shard int) *tm.Var {
		for i := 0; i < 4096; i++ {
			v := d.NewVar(0)
			vars = append(vars, v)
			if (v.Shard() == shard) == want {
				return v
			}
		}
		t.Fatalf("could not sample a Var with inShard(%d)=%v", shard, want)
		return nil
	}
	storm := varInShard(true, 3) // storm target: shard 3
	calm := varInShard(false, 3) // disjoint traffic on any other shard

	sc, err := ParseScript("conflict-storm#3")
	if err != nil {
		t.Fatal(err)
	}
	inj := New(sc)
	d.SetInjector(inj)
	txn := d.NewTxn(1)

	for i := 0; i < 20; i++ {
		if ok, reason := txn.Run(func(tx *tm.Txn) { tx.Add(calm, 1) }); !ok {
			t.Fatalf("iteration %d: transaction on unconfined shard aborted (%v)", i, reason)
		}
	}
	ok, reason := txn.Run(func(tx *tm.Txn) { tx.Add(storm, 1) })
	if ok || reason != tm.AbortConflict {
		t.Fatalf("storm-shard transaction = (%v, %v), want injected AbortConflict", ok, reason)
	}
	if calm.LoadDirect() != 20 || storm.LoadDirect() != 0 {
		t.Fatalf("values = (calm %d, storm %d), want (20, 0)", calm.LoadDirect(), storm.LoadDirect())
	}
	if f := inj.Firings(); f[ConflictStorm] != 1 {
		t.Errorf("storm fired %d times, want 1 (only the confined shard)", f[ConflictStorm])
	}
}

// TestStretchHooks checks the stretch hooks consume opportunities and
// fire per their windows (the yield itself is not observable here).
func TestStretchHooks(t *testing.T) {
	inj := New(Script{
		{Class: DelayEnd, Every: 2, Param: 4},
		{Class: LockStretch, From: 3},
	})
	for i := 0; i < 6; i++ {
		inj.StretchConflicting()
		inj.StretchLockHold()
	}
	f := inj.Firings()
	if f[DelayEnd] != 3 { // opportunities 1,3,5
		t.Errorf("delay-end fired %d, want 3", f[DelayEnd])
	}
	if f[LockStretch] != 4 { // opportunities 3..6
		t.Errorf("lock-stretch fired %d, want 4", f[LockStretch])
	}
}
