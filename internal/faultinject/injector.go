package faultinject

import (
	"runtime"
	"sync/atomic"

	"repro/internal/obs"
	"repro/internal/tm"
)

// Injector executes a Script. It implements tm.Injector (install with
// tm.Domain.SetInjector) and core.FaultHooks (install via
// core.Options.Faults — the interface is satisfied structurally, keeping
// this package below internal/core in the import graph).
//
// All methods are safe for concurrent use; per-class opportunity and
// firing counters are shared atomics. Install the obs shard (if any) with
// SetObsShard before wiring the injector into a domain or runtime.
type Injector struct {
	// byClass holds each class's rules, pre-split so the hook hot path
	// scans only its own (usually zero or one) rules.
	byClass [NumClasses][]Rule
	opps    [NumClasses]atomic.Uint64
	fired   [NumClasses]atomic.Uint64
	shard   *obs.Shard
}

// New builds an injector for the script. An empty script yields an
// injector that never fires — handy as an always-installed default in
// harness code.
func New(script Script) *Injector {
	inj := &Injector{}
	for _, r := range script {
		inj.byClass[r.Class] = append(inj.byClass[r.Class], r)
	}
	return inj
}

// SetObsShard mirrors every firing into sh (as obs.CtrFault counters).
// Must be called before the injector is installed; nil disables mirroring.
func (inj *Injector) SetObsShard(sh *obs.Shard) { inj.shard = sh }

// Firings returns the cumulative per-class firing counts.
func (inj *Injector) Firings() [NumClasses]uint64 {
	var out [NumClasses]uint64
	for i := range out {
		out[i] = inj.fired[i].Load()
	}
	return out
}

// Opportunities returns the cumulative per-class opportunity counts (how
// many times each hook site was consulted).
func (inj *Injector) Opportunities() [NumClasses]uint64 {
	var out [NumClasses]uint64
	for i := range out {
		out[i] = inj.opps[i].Load()
	}
	return out
}

// TotalFirings returns the sum of all per-class firing counts.
func (inj *Injector) TotalFirings() uint64 {
	var t uint64
	for i := range inj.fired {
		t += inj.fired[i].Load()
	}
	return t
}

// step counts one opportunity for class c and returns the matching rule
// (by pointer into byClass) if the class fires on it, else nil. Used by
// the shard-agnostic hooks; shard-confined rules never match here.
func (inj *Injector) step(c Class) *Rule { return inj.stepShard(c, -1) }

// stepShard is step for the access hooks, which know which commit-clock
// shard the access touches: a rule with Shard confinement only fires when
// the access's shard matches (shard -1 — a shard-agnostic hook — matches
// only unconfined rules). The opportunity counter advances regardless, so
// scoped and unscoped rule windows stay comparable.
func (inj *Injector) stepShard(c Class, shard int) *Rule {
	rules := inj.byClass[c]
	if len(rules) == 0 {
		return nil
	}
	n := inj.opps[c].Add(1)
	for i := range rules {
		if rules[i].Shard != 0 && rules[i].Shard-1 != shard {
			continue
		}
		if rules[i].matches(n) {
			inj.fired[c].Add(1)
			if sh := inj.shard; sh != nil {
				sh.Add(obs.CtrFault(uint8(c)))
			}
			return &rules[i]
		}
	}
	return nil
}

// BeginTxn implements tm.Injector: HTMDisable rules fire here.
func (inj *Injector) BeginTxn() tm.AbortReason {
	if inj.step(HTMDisable) != nil {
		return tm.AbortDisabled
	}
	return tm.AbortNone
}

// OnAccess implements tm.Injector: CapacityCliff rules count (and fire
// on) accesses at or above their footprint threshold; SpuriousBurst and
// ConflictStorm rules count every access. shard (the commit-clock shard
// of the touched Var) gates shard-confined rules.
func (inj *Injector) OnAccess(reads, writes int, write bool, shard int) tm.AbortReason {
	if rules := inj.byClass[CapacityCliff]; len(rules) != 0 {
		n := inj.opps[CapacityCliff].Add(1)
		for i := range rules {
			if rules[i].Shard != 0 && rules[i].Shard-1 != shard {
				continue
			}
			thresh := rules[i].Param
			if thresh == 0 {
				thresh = 1
			}
			if uint64(reads+writes) >= thresh && rules[i].matches(n) {
				inj.fired[CapacityCliff].Add(1)
				if sh := inj.shard; sh != nil {
					sh.Add(obs.CtrFault(uint8(CapacityCliff)))
				}
				return tm.AbortCapacity
			}
		}
	}
	if inj.stepShard(SpuriousBurst, shard) != nil {
		return tm.AbortSpurious
	}
	if inj.stepShard(ConflictStorm, shard) != nil {
		return tm.AbortConflict
	}
	return tm.AbortNone
}

// ForceValidateFail implements the core.FaultHooks validation hook.
func (inj *Injector) ForceValidateFail() bool {
	return inj.step(ValidateFail) != nil
}

// StretchConflicting implements the core.FaultHooks region hook: a firing
// DelayEnd rule yields the scheduler Param times (default 1) before the
// region's closing marker bump.
func (inj *Injector) StretchConflicting() {
	if r := inj.step(DelayEnd); r != nil {
		stretch(r.Param)
	}
}

// StretchLockHold implements the core.FaultHooks lock hook: a firing
// LockStretch rule yields Param times (default 1) while the lock is held.
func (inj *Injector) StretchLockHold() {
	if r := inj.step(LockStretch); r != nil {
		stretch(r.Param)
	}
}

// stretch lengthens the current critical section by n scheduler yields.
// Yields rather than sleeps: the stretch is meaningful under concurrency
// (other goroutines run against the widened window) yet adds no
// wall-clock time dependence that could flake tests.
func stretch(n uint64) {
	if n == 0 {
		n = 1
	}
	for i := uint64(0); i < n; i++ {
		runtime.Gosched()
	}
}
