// Package faultinject is the deterministic fault-injection layer of the
// stress harness: a scripted Injector that forces the failure modes of both
// the simulated-HTM substrate (internal/tm — spurious-abort bursts,
// capacity cliffs, conflict storms, HTM disabling) and the ALE engine
// (internal/core — forced validation failures, stretched conflicting
// regions, stretched lock holds). One Injector implements both hook
// interfaces (tm.Injector and, structurally, core.FaultHooks), so a single
// Script drives faults through every layer at once.
//
// Every injectable fault is *sound*: an abort, a failed validation, or a
// longer critical section are all legal executions of the same program, so
// injection can force retries, fallbacks, and convoys — but never an
// incorrect result. That is the property the sequential-oracle stress
// checker (internal/oracle) depends on: it cross-checks results under
// injection against an oracle that knows nothing about faults.
//
// Determinism: rules fire on *opportunity counts*, not probabilities. Each
// fault class counts its own opportunities (transaction begins, data
// accesses, validations, region ends, lock holds), and a rule fires on a
// deterministic schedule over that count. Under the oracle harness's
// single-scheduler mode, opportunities occur in tape order, so the same
// seed and script reproduce the same firings bit for bit. Under concurrent
// soaks the counters are shared atomics: still race-clean and exact in
// total, merely not attributable to a specific interleaving.
package faultinject

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/obs"
	"repro/internal/tm"
)

// Class enumerates the injectable fault classes. The first four force
// substrate-level HTM aborts (tm.Injector hooks); the last three force
// engine-level failures (core.FaultHooks hooks).
type Class uint8

const (
	// SpuriousBurst forces AbortSpurious on scheduled transactional
	// accesses — the implementation-induced failures that make long
	// transactions fragile on real HTM.
	SpuriousBurst Class = iota
	// CapacityCliff forces AbortCapacity on scheduled accesses once the
	// transaction's footprint (reads+writes) reaches Param — a sharper
	// cliff than the profile's own caps, without rebuilding the domain.
	CapacityCliff
	// ConflictStorm forces AbortConflict on scheduled accesses,
	// simulating data-conflict storms independent of actual sharing.
	ConflictStorm
	// HTMDisable forces AbortDisabled on scheduled transaction begins —
	// the platform's HTM flipping off mid-run (paper's T2-like regime).
	HTMDisable
	// ValidateFail forces ConflictMarker.ValidateIn (and ec.Validate) to
	// report failure, driving SWOpt retry storms.
	ValidateFail
	// DelayEnd stretches EndConflicting: the conflicting region stays
	// observable for Param extra scheduler yields.
	DelayEnd
	// LockStretch stretches Lock-mode critical sections by Param
	// scheduler yields while the lock is held, manufacturing lock
	// convoys and AbortLockHeld pressure.
	LockStretch

	// NumClasses sizes per-class arrays. Mirrored by obs.NumFaultClasses
	// (obs cannot import this package); TestObsMirror cross-checks.
	NumClasses = 7
)

// classNames are the canonical (and parseable) class names, equal to
// obs.FaultClassNames by the same convention.
var classNames = [NumClasses]string{
	"spurious-burst", "capacity-cliff", "conflict-storm", "htm-disable",
	"validate-fail", "delay-end", "lock-stretch",
}

// String returns the canonical class name.
func (c Class) String() string {
	if int(c) < len(classNames) {
		return classNames[c]
	}
	return fmt.Sprintf("class(%d)", uint8(c))
}

// ParseClass parses a canonical class name.
func ParseClass(s string) (Class, error) {
	for i, n := range classNames {
		if s == n {
			return Class(i), nil
		}
	}
	return 0, fmt.Errorf("faultinject: unknown fault class %q (want one of %s)",
		s, strings.Join(classNames[:], ", "))
}

// Rule schedules one fault class over its opportunity count. Opportunities
// are 1-based and per class: the n-th opportunity fires iff
//
//	From <= n && (To == 0 || n <= To) && (n-From) % max(Every,1) == 0
//
// so the zero window (From=0, To=0) with Every=0 means "every
// opportunity, forever". Param is class-specific: the footprint threshold
// for CapacityCliff (0 means 1: every counted access), the yield count
// for DelayEnd/LockStretch (0 means 1), unused otherwise.
//
// Access-class rules (spurious-burst, capacity-cliff, conflict-storm) can
// additionally be confined to one commit-clock shard: a rule with
// Shard != 0 only fires on accesses whose Var hashes onto shard Shard-1
// (the off-by-one keeps the zero value meaning "any shard", so existing
// rule literals are unchanged). Script syntax: class#K for 0-based shard
// K. The class's opportunity counter still counts every access — shard
// scoping filters firing, not counting — so windows stay comparable
// between scoped and unscoped rules. EXPERIMENTS.md uses this for the
// shard-isolation ablation: a conflict storm confined to one shard must
// not abort transactions running on the others.
type Rule struct {
	Class Class
	From  uint64 // first opportunity in window (0 ≡ 1)
	To    uint64 // last opportunity in window, inclusive; 0 = unbounded
	Every uint64 // fire every Every-th opportunity in window (0 ≡ 1)
	Param uint64 // class-specific parameter
	Shard int    // 1-based shard confinement for access classes; 0 = any
}

// matches reports whether the rule fires on the n-th (1-based)
// opportunity of its class.
func (r Rule) matches(n uint64) bool {
	from := r.From
	if from == 0 {
		from = 1
	}
	if n < from || (r.To != 0 && n > r.To) {
		return false
	}
	every := r.Every
	if every == 0 {
		every = 1
	}
	return (n-from)%every == 0
}

// String formats the rule in the script syntax:
//
//	class[#shard][@from:to][/every][=param]
//
// Defaulted fields are omitted, so String∘ParseRule is the identity on
// canonical forms and ParseRule∘String is the identity on all rules.
func (r Rule) String() string {
	var b strings.Builder
	b.WriteString(r.Class.String())
	if r.Shard != 0 {
		fmt.Fprintf(&b, "#%d", r.Shard-1)
	}
	if r.From != 0 || r.To != 0 {
		b.WriteByte('@')
		if r.From != 0 {
			fmt.Fprintf(&b, "%d", r.From)
		}
		b.WriteByte(':')
		if r.To != 0 {
			fmt.Fprintf(&b, "%d", r.To)
		}
	}
	if r.Every > 1 {
		fmt.Fprintf(&b, "/%d", r.Every)
	}
	if r.Param != 0 {
		fmt.Fprintf(&b, "=%d", r.Param)
	}
	return b.String()
}

// ParseRule parses the class[#shard][@from:to][/every][=param] syntax.
// Examples:
//
//	spurious-burst                  every access aborts spuriously
//	conflict-storm@100:200          accesses 100..200 abort with conflict
//	conflict-storm#0                every access in shard 0 aborts
//	htm-disable@50:/2               every 2nd begin from the 50th on
//	capacity-cliff=6                every access with footprint >= 6 aborts
//	delay-end@10:10=64              the 10th EndConflicting yields 64 times
//
// Shard confinement is only meaningful for the access classes, whose
// hook sees which shard the touched Var hashes onto; on any other class
// it is rejected with a located error rather than silently never firing.
func ParseRule(s string) (Rule, error) {
	var r Rule
	rest := s
	if i := strings.IndexByte(rest, '='); i >= 0 {
		p, err := parseCount(rest[i+1:], "param")
		if err != nil {
			return r, fmt.Errorf("faultinject: rule %q: %v", s, err)
		}
		r.Param = p
		rest = rest[:i]
	}
	if i := strings.IndexByte(rest, '/'); i >= 0 {
		e, err := parseCount(rest[i+1:], "every")
		if err != nil {
			return r, fmt.Errorf("faultinject: rule %q: %v", s, err)
		}
		r.Every = e
		rest = rest[:i]
	}
	shard := -1
	if i := strings.IndexByte(rest, '#'); i >= 0 {
		tail := rest[i+1:]
		// The window separator, if any, follows the shard digits.
		if j := strings.IndexByte(tail, '@'); j >= 0 {
			rest = rest[:i] + tail[j:]
			tail = tail[:j]
		} else {
			rest = rest[:i]
		}
		v, err := parseCount(tail, "shard")
		if err != nil {
			return r, fmt.Errorf("faultinject: rule %q: %v", s, err)
		}
		if v >= tm.MaxShards {
			return r, fmt.Errorf("faultinject: rule %q: shard %d out of range [0, %d)",
				s, v, tm.MaxShards)
		}
		shard = int(v)
	}
	if i := strings.IndexByte(rest, '@'); i >= 0 {
		win := rest[i+1:]
		rest = rest[:i]
		j := strings.IndexByte(win, ':')
		if j < 0 {
			return r, fmt.Errorf("faultinject: rule %q: window %q needs from:to", s, win)
		}
		if f := win[:j]; f != "" {
			v, err := parseCount(f, "window start")
			if err != nil {
				return r, fmt.Errorf("faultinject: rule %q: %v", s, err)
			}
			r.From = v
		}
		if t := win[j+1:]; t != "" {
			v, err := parseCount(t, "window end")
			if err != nil {
				return r, fmt.Errorf("faultinject: rule %q: %v", s, err)
			}
			r.To = v
		}
	}
	c, err := ParseClass(rest)
	if err != nil {
		return r, fmt.Errorf("faultinject: rule %q: %v", s, err)
	}
	r.Class = c
	if shard >= 0 {
		switch c {
		case SpuriousBurst, CapacityCliff, ConflictStorm:
			r.Shard = shard + 1
		default:
			return r, fmt.Errorf(
				"faultinject: rule %q: shard confinement #%d is only valid for access classes (%s, %s, %s)",
				s, shard, SpuriousBurst, CapacityCliff, ConflictStorm)
		}
	}
	if r.To != 0 && r.From > r.To {
		return r, fmt.Errorf("faultinject: rule %q: empty window %d:%d", s, r.From, r.To)
	}
	return r, nil
}

func parseCount(s, what string) (uint64, error) {
	v, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad %s %q", what, s)
	}
	return v, nil
}

// Script is an ordered set of rules; a class fires on an opportunity if
// any of its rules matches. The String form is the comma-joined rules —
// the exact text a failing stress run prints for reproduction.
type Script []Rule

// String formats the script as comma-joined rules ("" for an empty
// script).
func (s Script) String() string {
	parts := make([]string, len(s))
	for i, r := range s {
		parts[i] = r.String()
	}
	return strings.Join(parts, ",")
}

// ParseScript parses a comma- and/or whitespace-separated rule list. An
// empty or all-separator input yields an empty (inject-nothing) script.
func ParseScript(s string) (Script, error) {
	fields := strings.FieldsFunc(s, func(r rune) bool {
		return r == ',' || r == ' ' || r == '\t' || r == '\n'
	})
	out := make(Script, 0, len(fields))
	for _, f := range fields {
		r, err := ParseRule(f)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// init cross-checks the class-name convention against obs at package load:
// the two arrays must stay identical for dashboards to label fault
// counters correctly.
func init() {
	if NumClasses != obs.NumFaultClasses {
		panic("faultinject: NumClasses diverged from obs.NumFaultClasses")
	}
	for i := range classNames {
		if classNames[i] != obs.FaultClassNames[i] {
			panic("faultinject: class names diverged from obs.FaultClassNames")
		}
	}
}
