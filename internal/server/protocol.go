// Package server implements aleserve: a network-facing KV server backed
// by the ALE-integrated stores (kyoto, hashmap), serving a RESP-like text
// protocol from a fixed pool of worker goroutines registered as ALE
// threads, with the obs HTTP endpoints on a side listener and a graceful
// drain that finishes in-flight requests and flushes a final snapshot.
//
// This file is the wire protocol, "alekv/1". Requests are inline text
// commands; responses are typed one-liners or length-prefixed arrays. The
// exact grammar (and the reply-received ⇔ applied-exactly-once drain
// contract) is specified in docs/ALESERVE.md; the golden fixtures under
// testdata/wire pin it byte for byte.
//
//	request   = verb *( SP token ) CRLF          ; inline, ≤ MaxInlineBytes
//	          | "PUT" SP key SP nbytes CRLF <nbytes octets> CRLF
//	response  = "+" text CRLF                    ; simple string
//	          | ":" uint64 [ SP uint64 ] CRLF    ; integer (pair in arrays)
//	          | "_" CRLF                         ; null (missing key)
//	          | "-ERR " code ": " text CRLF      ; typed error
//	          | "*" count CRLF count*element     ; array (SCAN, STATS)
//
// A malformed or oversized request yields a typed -ERR reply and the
// reader resynchronizes at the next newline — the connection survives.
// Both sides of the codec live here: the server parses requests and
// writes responses; cmd/aleload (internal/load) writes requests and
// parses responses.
package server

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ProtoName identifies the wire protocol (reported by STATS).
const ProtoName = "alekv/1"

const (
	// MaxInlineBytes bounds one inline request line, terminator included.
	MaxInlineBytes = 1024
	// MaxPayloadBytes bounds a PUT payload.
	MaxPayloadBytes = 64 << 10
	// DefaultScanLimit applies when SCAN is given no limit argument.
	DefaultScanLimit = 64
	// MaxScanLimit bounds an explicit SCAN limit.
	MaxScanLimit = 65536
)

// Verb enumerates the protocol's commands.
type Verb uint8

const (
	VerbPing Verb = iota
	VerbGet
	VerbSet
	VerbDel
	VerbIncr
	VerbPut
	VerbScan
	VerbStats
	VerbQuit
	numVerbs
)

// verbNames are the canonical (uppercase) wire spellings.
var verbNames = [numVerbs]string{"PING", "GET", "SET", "DEL", "INCR", "PUT", "SCAN", "STATS", "QUIT"}

func (v Verb) String() string {
	if int(v) < len(verbNames) {
		return verbNames[v]
	}
	return fmt.Sprintf("Verb(%d)", uint8(v))
}

// ErrCode classifies protocol errors; it is the first token of an -ERR
// reply, so clients can dispatch without parsing prose.
type ErrCode string

const (
	// ErrProto: unknown verb or empty command.
	ErrProto ErrCode = "proto"
	// ErrArgs: wrong argument count for a known verb.
	ErrArgs ErrCode = "args"
	// ErrRange: an argument failed numeric validation (not a uint64, zero
	// key, out-of-range limit).
	ErrRange ErrCode = "range"
	// ErrFrame: the request line exceeded MaxInlineBytes.
	ErrFrame ErrCode = "frame"
	// ErrPayload: a PUT payload was oversized or misterminated.
	ErrPayload ErrCode = "payload"
	// ErrStore: the store rejected the operation (e.g. arena exhausted).
	ErrStore ErrCode = "store"
)

// WireError is a typed protocol error. When ReadRequest returns one, the
// reader has already resynchronized (consumed through the offending
// frame's terminating newline) and the connection remains usable.
type WireError struct {
	Code ErrCode
	Msg  string
}

func (e *WireError) Error() string { return string(e.Code) + ": " + e.Msg }

func wireErrf(code ErrCode, format string, args ...any) *WireError {
	return &WireError{Code: code, Msg: fmt.Sprintf(format, args...)}
}

// Request is one parsed command. Key/Arg usage per verb:
//
//	GET/DEL  Key
//	SET      Key, Arg = value
//	INCR     Key, Arg = delta (1 when omitted)
//	PUT      Key, Payload (stored as its FNV-1a 64 hash)
//	SCAN     Arg = limit (DefaultScanLimit when omitted)
type Request struct {
	Verb    Verb
	Key     uint64
	Arg     uint64
	Payload []byte
}

// readLine reads one newline-terminated line, enforcing MaxInlineBytes.
// On overflow it consumes through the next newline (resync) and reports
// ErrFrame. The returned slice excludes the terminator and any trailing
// \r, and is only valid until the next read.
func readLine(br *bufio.Reader) ([]byte, error) {
	line, err := br.ReadSlice('\n')
	if err == bufio.ErrBufferFull || (err == nil && len(line) > MaxInlineBytes) {
		// Oversized: discard the remainder of the line, then reply typed.
		for err == bufio.ErrBufferFull {
			_, err = br.ReadSlice('\n')
		}
		if err != nil && err != bufio.ErrBufferFull {
			if err == io.EOF {
				return nil, io.ErrUnexpectedEOF
			}
			return nil, err
		}
		return nil, wireErrf(ErrFrame, "request line exceeds %d bytes", MaxInlineBytes)
	}
	if err != nil {
		// Bare EOF on a partial line means the peer quit mid-frame.
		if err == io.EOF && len(line) > 0 {
			return nil, io.ErrUnexpectedEOF
		}
		return nil, err
	}
	line = line[:len(line)-1]
	if n := len(line); n > 0 && line[n-1] == '\r' {
		line = line[:n-1]
	}
	return line, nil
}

// parseU64 parses a decimal uint64 argument.
func parseU64(tok []byte, what string) (uint64, *WireError) {
	v, err := strconv.ParseUint(string(tok), 10, 64)
	if err != nil {
		return 0, wireErrf(ErrRange, "%s %q is not a uint64", what, tok)
	}
	return v, nil
}

// parseKey parses a key argument (non-zero uint64; the stores reserve 0).
func parseKey(tok []byte) (uint64, *WireError) {
	k, werr := parseU64(tok, "key")
	if werr != nil {
		return 0, werr
	}
	if k == 0 {
		return 0, wireErrf(ErrRange, "key must be a non-zero uint64")
	}
	return k, nil
}

// ReadRequest reads and validates one request. Errors of type *WireError
// are recoverable — the reader is resynchronized and the caller should
// reply with the error and continue; any other error (io.EOF on a clean
// boundary, io.ErrUnexpectedEOF mid-frame, timeouts) ends the connection.
// req.Payload aliases an internal buffer valid until the next call.
func ReadRequest(br *bufio.Reader, payloadBuf *[]byte) (Request, error) {
	line, err := readLine(br)
	if err != nil {
		return Request{}, err
	}
	fields := bytes.Fields(line)
	if len(fields) == 0 {
		return Request{}, wireErrf(ErrProto, "empty command")
	}
	verb, ok := lookupVerb(fields[0])
	if !ok {
		return Request{}, wireErrf(ErrProto, "unknown verb %q", fields[0])
	}
	args := fields[1:]
	need := func(n int) *WireError {
		if len(args) != n {
			return wireErrf(ErrArgs, "%s expects %d argument(s), got %d", verb, n, len(args))
		}
		return nil
	}
	req := Request{Verb: verb}
	switch verb {
	case VerbPing, VerbStats, VerbQuit:
		if werr := need(0); werr != nil {
			return Request{}, werr
		}
	case VerbGet, VerbDel:
		if werr := need(1); werr != nil {
			return Request{}, werr
		}
		if req.Key, err = keyErr(parseKey(args[0])); err != nil {
			return Request{}, err
		}
	case VerbSet:
		if werr := need(2); werr != nil {
			return Request{}, werr
		}
		if req.Key, err = keyErr(parseKey(args[0])); err != nil {
			return Request{}, err
		}
		if req.Arg, err = keyErr(parseU64(args[1], "value")); err != nil {
			return Request{}, err
		}
	case VerbIncr:
		if len(args) < 1 || len(args) > 2 {
			return Request{}, wireErrf(ErrArgs, "INCR expects 1 or 2 arguments, got %d", len(args))
		}
		if req.Key, err = keyErr(parseKey(args[0])); err != nil {
			return Request{}, err
		}
		req.Arg = 1
		if len(args) == 2 {
			if req.Arg, err = keyErr(parseU64(args[1], "delta")); err != nil {
				return Request{}, err
			}
		}
	case VerbScan:
		if len(args) > 1 {
			return Request{}, wireErrf(ErrArgs, "SCAN expects at most 1 argument, got %d", len(args))
		}
		req.Arg = DefaultScanLimit
		if len(args) == 1 {
			if req.Arg, err = keyErr(parseU64(args[0], "limit")); err != nil {
				return Request{}, err
			}
			if req.Arg == 0 || req.Arg > MaxScanLimit {
				return Request{}, wireErrf(ErrRange, "limit must be in [1, %d]", MaxScanLimit)
			}
		}
	case VerbPut:
		if werr := need(2); werr != nil {
			return Request{}, werr
		}
		if req.Key, err = keyErr(parseKey(args[0])); err != nil {
			return Request{}, err
		}
		n, werr := parseU64(args[1], "payload size")
		if werr != nil {
			return Request{}, werr
		}
		if n > MaxPayloadBytes {
			// The payload was not consumed: a client that already sent it
			// will desync itself, which is why docs/ALESERVE.md forbids
			// pipelining past an unacknowledged oversized PUT.
			return Request{}, wireErrf(ErrPayload, "payload size %d exceeds %d bytes", n, MaxPayloadBytes)
		}
		if cap(*payloadBuf) < int(n) {
			*payloadBuf = make([]byte, n)
		}
		buf := (*payloadBuf)[:n]
		if _, err := io.ReadFull(br, buf); err != nil {
			if err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			return Request{}, err
		}
		// The payload must be followed by CRLF (or bare LF). Anything else
		// is a framing error; resync at the next newline.
		b, err := br.ReadByte()
		if err != nil {
			return Request{}, eofAsUnexpected(err)
		}
		if b == '\r' {
			if b, err = br.ReadByte(); err != nil {
				return Request{}, eofAsUnexpected(err)
			}
		}
		if b != '\n' {
			if _, err := readLine(br); err != nil {
				if _, ok := err.(*WireError); !ok {
					return Request{}, err
				}
			}
			return Request{}, wireErrf(ErrPayload, "payload not terminated by CRLF")
		}
		req.Payload = buf
	}
	return req, nil
}

// keyErr narrows a (value, *WireError) pair into (value, error) without
// the typed-nil-interface trap.
func keyErr(v uint64, werr *WireError) (uint64, error) {
	if werr != nil {
		return 0, werr
	}
	return v, nil
}

func eofAsUnexpected(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}

// lookupVerb resolves a case-insensitive verb token.
func lookupVerb(tok []byte) (Verb, bool) {
	for v, name := range verbNames {
		if len(tok) == len(name) && strings.EqualFold(string(tok), name) {
			return Verb(v), true
		}
	}
	return 0, false
}

// FNVHash is the FNV-1a 64 hash a PUT payload is stored as (exported so
// clients and tests can predict the stored value).
func FNVHash(p []byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, b := range p {
		h ^= uint64(b)
		h *= prime64
	}
	return h
}

// --- Response writing (server side) ---

func writeSimple(bw *bufio.Writer, s string) error {
	bw.WriteByte('+')
	bw.WriteString(s)
	_, err := bw.WriteString("\r\n")
	return err
}

func writeInt(bw *bufio.Writer, v uint64) error {
	bw.WriteByte(':')
	bw.WriteString(strconv.FormatUint(v, 10))
	_, err := bw.WriteString("\r\n")
	return err
}

func writePair(bw *bufio.Writer, k, v uint64) error {
	bw.WriteByte(':')
	bw.WriteString(strconv.FormatUint(k, 10))
	bw.WriteByte(' ')
	bw.WriteString(strconv.FormatUint(v, 10))
	_, err := bw.WriteString("\r\n")
	return err
}

func writeNil(bw *bufio.Writer) error {
	_, err := bw.WriteString("_\r\n")
	return err
}

func writeArrayHeader(bw *bufio.Writer, n int) error {
	bw.WriteByte('*')
	bw.WriteString(strconv.Itoa(n))
	_, err := bw.WriteString("\r\n")
	return err
}

func writeWireError(bw *bufio.Writer, werr *WireError) error {
	bw.WriteString("-ERR ")
	bw.WriteString(string(werr.Code))
	bw.WriteString(": ")
	bw.WriteString(werr.Msg)
	_, err := bw.WriteString("\r\n")
	return err
}

// --- Client side: request writing and reply parsing (used by
// internal/load and the conformance tests) ---

// WriteRequest encodes req in wire form. The caller flushes.
func WriteRequest(bw *bufio.Writer, req Request) error {
	bw.WriteString(req.Verb.String())
	switch req.Verb {
	case VerbGet, VerbDel:
		bw.WriteByte(' ')
		bw.WriteString(strconv.FormatUint(req.Key, 10))
	case VerbSet:
		fmt.Fprintf(bw, " %d %d", req.Key, req.Arg)
	case VerbIncr:
		fmt.Fprintf(bw, " %d %d", req.Key, req.Arg)
	case VerbScan:
		fmt.Fprintf(bw, " %d", req.Arg)
	case VerbPut:
		fmt.Fprintf(bw, " %d %d\r\n", req.Key, len(req.Payload))
		bw.Write(req.Payload)
	}
	_, err := bw.WriteString("\r\n")
	return err
}

// Reply is one parsed response.
type Reply struct {
	// Kind is the reply's leading wire byte: '+' simple, ':' integer,
	// '_' null, '-' error, '*' array.
	Kind byte
	// Str holds a simple reply's text, or an error reply's message.
	Str string
	// Code holds an error reply's code.
	Code ErrCode
	// Val holds an integer reply's value.
	Val uint64
	// Pairs holds a SCAN array's key/value entries.
	Pairs [][2]uint64
	// Fields holds a STATS array's "name value" lines (without the '+').
	Fields []string
}

// IsNil reports a null reply (GET miss).
func (r Reply) IsNil() bool { return r.Kind == '_' }

// IsErr reports an error reply.
func (r Reply) IsErr() bool { return r.Kind == '-' }

// ReadReply parses one response.
func ReadReply(br *bufio.Reader) (Reply, error) {
	line, err := readLine(br)
	if err != nil {
		return Reply{}, err
	}
	if len(line) == 0 {
		return Reply{}, fmt.Errorf("server: empty reply line")
	}
	switch line[0] {
	case '+':
		return Reply{Kind: '+', Str: string(line[1:])}, nil
	case '_':
		return Reply{Kind: '_'}, nil
	case ':':
		v, werr := parseU64(line[1:], "integer reply")
		if werr != nil {
			return Reply{}, fmt.Errorf("server: bad integer reply %q", line)
		}
		return Reply{Kind: ':', Val: v}, nil
	case '-':
		msg := strings.TrimPrefix(string(line[1:]), "ERR ")
		code, text, ok := strings.Cut(msg, ": ")
		if !ok {
			return Reply{Kind: '-', Str: msg}, nil
		}
		return Reply{Kind: '-', Code: ErrCode(code), Str: text}, nil
	case '*':
		n, err := strconv.Atoi(string(line[1:]))
		if err != nil || n < 0 {
			return Reply{}, fmt.Errorf("server: bad array header %q", line)
		}
		rep := Reply{Kind: '*'}
		for i := 0; i < n; i++ {
			el, err := readLine(br)
			if err != nil {
				return Reply{}, eofAsUnexpected(err)
			}
			if len(el) == 0 {
				return Reply{}, fmt.Errorf("server: empty array element")
			}
			switch el[0] {
			case ':':
				ks, vs, ok := strings.Cut(string(el[1:]), " ")
				if !ok {
					return Reply{}, fmt.Errorf("server: bad pair element %q", el)
				}
				k, err1 := strconv.ParseUint(ks, 10, 64)
				v, err2 := strconv.ParseUint(vs, 10, 64)
				if err1 != nil || err2 != nil {
					return Reply{}, fmt.Errorf("server: bad pair element %q", el)
				}
				rep.Pairs = append(rep.Pairs, [2]uint64{k, v})
			case '+':
				rep.Fields = append(rep.Fields, string(el[1:]))
			default:
				return Reply{}, fmt.Errorf("server: bad array element %q", el)
			}
		}
		return rep, nil
	default:
		return Reply{}, fmt.Errorf("server: bad reply line %q", line)
	}
}
