package server

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/hashmap"
	"repro/internal/kyoto"
)

// StoreKind selects the backing store.
type StoreKind string

const (
	// StoreKyoto is the nested two-lock CacheDB reproduction (paper
	// section 5): method read-lock outside, per-slot hash tables inside.
	// The server default — it exercises nesting and RW elision.
	StoreKyoto StoreKind = "kyoto"
	// StoreHashMap is the single-lock chained hash map (paper section 3).
	StoreHashMap StoreKind = "hashmap"
)

// ParseStoreKind validates a -store flag value.
func ParseStoreKind(s string) (StoreKind, error) {
	switch StoreKind(s) {
	case StoreKyoto, StoreHashMap:
		return StoreKind(s), nil
	}
	return "", fmt.Errorf("server: unknown store %q (kyoto, hashmap)", s)
}

// Session is one worker's handle into the store. Creating a session
// registers an ALE thread on the server's runtime (the thread registry the
// reports and trace dumps walk); a session must stay on its worker
// goroutine, like the core.Thread it wraps.
type Session interface {
	Get(key uint64) (uint64, bool, error)
	Set(key, val uint64) error
	Del(key uint64) (bool, error)
	Incr(key, delta uint64) (uint64, error)
	// Scan visits up to limit records; the iteration order is the store's
	// (deterministic for a deterministic history, not sorted). Returns the
	// number visited.
	Scan(limit int, visit func(key, val uint64) bool) (int, error)
	Count() (int, error)
	// Thread exposes the session's ALE thread so the connection loop can
	// stamp a request id onto executions (tail-exemplar causality). Same
	// ownership rule as the session itself: owning goroutine only.
	Thread() *core.Thread
}

// store abstracts the two backing structures for the server.
type store interface {
	newSession() Session
}

// --- kyoto ---

type kyotoStore struct{ db *kyoto.DB }

type kyotoSession struct{ h *kyoto.Handle }

func (s kyotoStore) newSession() Session { return kyotoSession{h: s.db.NewHandle()} }

func (s kyotoSession) Get(key uint64) (uint64, bool, error) { return s.h.Get(key) }
func (s kyotoSession) Set(key, val uint64) error            { return s.h.Set(key, val) }
func (s kyotoSession) Del(key uint64) (bool, error)         { return s.h.Remove(key) }
func (s kyotoSession) Incr(key, delta uint64) (uint64, error) {
	return s.h.Add(key, delta)
}
func (s kyotoSession) Scan(limit int, visit func(key, val uint64) bool) (int, error) {
	n := 0
	_, err := s.h.Iterate(func(key, val uint64) bool {
		if n >= limit {
			return false
		}
		n++
		return visit(key, val)
	})
	return n, err
}
func (s kyotoSession) Count() (int, error)  { return s.h.Count() }
func (s kyotoSession) Thread() *core.Thread { return s.h.Thread() }

// --- hashmap ---

type hashmapStore struct{ m *hashmap.Map }

type hashmapSession struct{ h *hashmap.Handle }

func (s hashmapStore) newSession() Session { return hashmapSession{h: s.m.NewHandle()} }

func (s hashmapSession) Get(key uint64) (uint64, bool, error) { return s.h.Get(key) }
func (s hashmapSession) Set(key, val uint64) error {
	_, err := s.h.Insert(key, val)
	return err
}
func (s hashmapSession) Del(key uint64) (bool, error) { return s.h.Remove(key) }
func (s hashmapSession) Incr(key, delta uint64) (uint64, error) {
	return s.h.Add(key, delta)
}
func (s hashmapSession) Scan(limit int, visit func(key, val uint64) bool) (int, error) {
	n := 0
	_, err := s.h.Range(func(key, val uint64) bool {
		if n >= limit {
			return false
		}
		n++
		return visit(key, val)
	})
	return n, err
}
func (s hashmapSession) Count() (int, error)  { return s.h.Len() }
func (s hashmapSession) Thread() *core.Thread { return s.h.Thread() }

// buildStore constructs the configured store on rt.
func buildStore(rt *core.Runtime, cfg Config) store {
	policies := cfg.Policy
	switch cfg.Store {
	case StoreHashMap:
		return hashmapStore{m: hashmap.New(rt, "kv", hashmap.Config{
			Buckets:       cfg.Buckets,
			Capacity:      cfg.Capacity,
			MarkerStripes: cfg.MarkerStripes,
		}, policies("kv"))}
	default: // StoreKyoto
		return kyotoStore{db: kyoto.New(rt, "kv", kyoto.Config{
			Slots:        cfg.Slots,
			SlotBuckets:  cfg.Buckets,
			SlotCapacity: cfg.Capacity,
		}, kyoto.PolicyFactory(policies))}
	}
}
