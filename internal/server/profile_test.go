package server_test

// The -profile flow of cmd/aleserve: a server constructed with
// Config.ProfilePath turns the run into a profiling session (timing
// layer + event rings implied), and a drain flushes the Chrome trace to
// the path and the contention profile to the log. The shards knob rides
// along: Config.Shards overrides the domain's commit-clock shard count
// and invalid values fail construction instead of panicking mid-run.

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/load"
	"repro/internal/server"
)

// syncLog captures Logf lines across goroutines (Drain logs from
// whichever goroutine drains).
type syncLog struct {
	mu    sync.Mutex
	lines []string
}

func (l *syncLog) logf(format string, args ...any) {
	l.mu.Lock()
	l.lines = append(l.lines, fmt.Sprintf(format, args...))
	l.mu.Unlock()
}

func (l *syncLog) joined() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return strings.Join(l.lines, "\n")
}

func TestProfileDrainWritesTraceAndContention(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.json")
	log := &syncLog{}
	cfg := server.DefaultConfig()
	cfg.Workers = 2
	cfg.Slots, cfg.Buckets, cfg.Capacity = 4, 64, 2048
	cfg.Policy = func(string) core.Policy { return core.NewAdaptive() }
	cfg.ProfilePath = path
	cfg.Shards = 8
	cfg.Logf = log.logf
	s, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	tr, err := load.DialTCP(s.Addr().String())(0)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 50; i++ {
		for _, req := range []server.Request{
			{Verb: server.VerbSet, Key: i, Arg: i * 3},
			{Verb: server.VerbIncr, Key: i, Arg: 1},
			{Verb: server.VerbGet, Key: i},
		} {
			if _, err := tr.RoundTrip(req); err != nil {
				t.Fatalf("key %d: %v", i, err)
			}
		}
	}
	tr.Close()
	s.Drain()

	// The drain must have written a loadable Chrome trace with real
	// span/instant events from the served load.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("trace file not written: %v", err)
	}
	var chrome struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &chrome); err != nil {
		t.Fatalf("trace file is not Chrome Trace JSON: %v", err)
	}
	if len(chrome.TraceEvents) == 0 {
		t.Fatal("trace file has no events despite served load")
	}

	// The contention profile and the trace-written line must be logged.
	logged := log.joined()
	for _, want := range []string{"wrote Chrome trace", "contention profile"} {
		if !strings.Contains(logged, want) {
			t.Errorf("drain log missing %q:\n%s", want, logged)
		}
	}

	// The shards override reached the domain: the collector's snapshot
	// carries one commit-clock row per shard.
	if rows := s.Collector().Snapshot().Shards; len(rows) != 8 {
		t.Errorf("snapshot has %d shard rows, want 8 (Config.Shards override)", len(rows))
	}
}

// TestConfigShardsValidation: an invalid shard override fails New with a
// located error rather than panicking in domain construction.
func TestConfigShardsValidation(t *testing.T) {
	cfg := server.DefaultConfig()
	cfg.Shards = 3 // not a power of two
	if _, err := server.New(cfg); err == nil || !strings.Contains(err.Error(), "Shards") {
		t.Fatalf("New with Shards=3: err = %v, want a Shards validation error", err)
	}
	cfg.Shards = 128 // above tm.MaxShards
	if _, err := server.New(cfg); err == nil {
		t.Fatal("New with Shards=128 succeeded, want MaxShards rejection")
	}
}
