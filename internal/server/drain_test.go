package server_test

// The drain/soak suite: an in-process aleserve under live aleload traffic
// is SIGTERMed mid-load, and the drain contract is proven by replaying
// every connection's client-side op tape against the sequential oracle
// (internal/oracle.KVModel):
//
//   - every acknowledged op was applied exactly once, in order (the taped
//     replies must match the model's),
//   - every unacknowledged op (at most one per connection — the client is
//     strictly request/reply) was never applied (the post-drain store
//     state must equal the model's, which skipped them).
//
// Connections use disjoint key partitions so each tape is an independent
// sequential history. The conflict-storm variant layers scripted
// conflict/validation faults on the same run and must drain just as
// cleanly. Per docs/TESTING.md there are no sleeps here: progress gates
// poll op counters under runtime.Gosched, and completion is observed
// synchronously (Drain blocks; load.Run returns when the connections
// die).

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"runtime"
	"strings"
	"sync"
	"syscall"
	"testing"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/load"
	"repro/internal/oracle"
	"repro/internal/server"
)

// syncBuffer is a goroutine-safe bytes.Buffer for the drain's snapshot
// flush (written from the drain goroutine, read by the test).
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (sb *syncBuffer) Write(p []byte) (int, error) {
	sb.mu.Lock()
	defer sb.mu.Unlock()
	return sb.b.Write(p)
}

func (sb *syncBuffer) Bytes() []byte {
	sb.mu.Lock()
	defer sb.mu.Unlock()
	return append([]byte(nil), sb.b.Bytes()...)
}

// drainUnderLoad runs the whole scenario: start a server (with the given
// fault script), offer open-loop load, SIGTERM once minOps requests have
// been served, and return the server, the load output, and the flushed
// snapshot bytes.
func drainUnderLoad(t *testing.T, script faultinject.Script, storeKind server.StoreKind) (*server.Server, load.Output, []byte) {
	t.Helper()
	snap := &syncBuffer{}
	cfg := server.DefaultConfig()
	cfg.Workers = 4
	cfg.Store = storeKind
	cfg.Slots, cfg.Buckets, cfg.Capacity = 4, 64, 4096
	cfg.MetricsAddr = "127.0.0.1:0"
	cfg.Policy = func(string) core.Policy { return core.NewAdaptive() }
	cfg.FaultScript = script
	cfg.SnapshotW = snap
	s, err := server.New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(s.Close)

	stop := make(chan struct{})
	outCh := make(chan load.Output, 1)
	errCh := make(chan error, 1)
	go func() {
		out, err := load.Run(load.Config{
			Addr:         s.Addr().String(),
			Conns:        4,
			RatePerSec:   40000,
			Seed:         42,
			Keys:         512,
			DisjointKeys: true,
			RecordTape:   true,
			Stop:         stop,
		})
		outCh <- out
		errCh <- err
	}()

	// Let the soak run: gate on served work, not on time.
	const minOps = 2000
	for s.OpsServed() < minOps {
		runtime.Gosched()
	}

	// SIGTERM mid-load, exactly as cmd/aleserve wires it.
	done := s.DrainOnSignal(syscall.SIGTERM)
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatalf("kill: %v", err)
	}
	<-done
	close(stop)
	out := <-outCh
	if err := <-errCh; err != nil {
		t.Fatalf("load.Run: %v", err)
	}
	if !s.Drained() {
		t.Fatal("server not drained after DrainOnSignal completed")
	}
	return s, out, snap.Bytes()
}

// verifyTapes replays each connection's tape against a fresh sequential
// model and then proves the post-drain store state equals the union of
// the models — no lost, no double-applied, no phantom ops.
func verifyTapes(t *testing.T, s *server.Server, out load.Output, keys uint64) {
	t.Helper()
	if len(out.Tapes) == 0 {
		t.Fatal("no op tapes recorded")
	}
	var acked, unacked int
	sess := s.NewSession()
	wantLive := 0
	for i, tape := range out.Tapes {
		model := oracle.NewKVModel()
		if idx, msg := oracle.ReplayKVTape(model, tape); idx >= 0 {
			t.Fatalf("conn %d: tape diverged at op %d: %s (%+v)", i, idx, msg, tape[idx])
		}
		for _, op := range tape {
			if op.Acked {
				acked++
			} else {
				unacked++
			}
		}
		// The store must hold exactly the model's state for this
		// connection's key partition.
		per := keys / uint64(len(out.Tapes))
		base := uint64(i) * per
		for k := base + 1; k <= base+per; k++ {
			mv, mok := model.Get(k)
			sv, sok, err := sess.Get(k)
			if err != nil {
				t.Fatalf("post-drain Get(%d): %v", k, err)
			}
			if sv != mv || sok != mok {
				t.Fatalf("conn %d key %d: store=(%d,%v) model=(%d,%v) — acked/applied mismatch",
					i, k, sv, sok, mv, mok)
			}
		}
		wantLive += model.Len()
	}
	if n, err := sess.Count(); err != nil || n != wantLive {
		t.Fatalf("post-drain Count = %d, %v; oracle union = %d", n, err, wantLive)
	}
	// Strictly request/reply clients leave at most one unacked op each.
	if unacked > len(out.Tapes) {
		t.Fatalf("%d unacked ops across %d connections (max 1 each)", unacked, len(out.Tapes))
	}
	if acked == 0 {
		t.Fatal("no acknowledged ops — the soak never ran")
	}
	t.Logf("replayed %d acked ops, %d unacked, %d live keys", acked, unacked, wantLive)
}

func TestDrainUnderLoadNoLostOps(t *testing.T) {
	s, out, snap := drainUnderLoad(t, nil, server.StoreKyoto)
	verifyTapes(t, s, out, 512)

	// The drain must have flushed a final obs snapshot.
	var probe struct {
		Schema string `json:"schema"`
		Execs  uint64 `json:"execs"`
	}
	if err := json.Unmarshal(snap, &probe); err != nil {
		t.Fatalf("final snapshot is not JSON: %v\n%s", err, snap)
	}
	if probe.Schema != "ale-snapshot/v1" || probe.Execs == 0 {
		t.Fatalf("final snapshot = schema %q, execs %d", probe.Schema, probe.Execs)
	}

	// The metrics plane must survive the drain until Close: the index
	// page, /events, and /snapshot all still serve the flushed state.
	base := "http://" + s.MetricsAddr()
	get := func(path string) (string, string) {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		return string(body), resp.Header.Get("Content-Type")
	}
	if body, _ := get("/"); !strings.Contains(body, "/metrics") {
		t.Fatalf("index page missing endpoint listing: %q", body)
	}
	if body, ct := get("/events"); ct != "text/plain; charset=utf-8" || body == "" {
		t.Fatalf("/events after drain: content-type %q, %d bytes", ct, len(body))
	}
	if body, ct := get("/snapshot"); ct != "application/json" || !strings.Contains(body, "ale-snapshot/v1") {
		t.Fatalf("/snapshot after drain: content-type %q body %q", ct, body)
	}
}

// TestDrainConflictStorm reruns the soak under a scripted conflict storm
// (forced HTM conflicts, SWOpt validation failures, stretched lock
// sections): the fault pressure must change only performance, never the
// drain contract.
func TestDrainConflictStorm(t *testing.T) {
	script := faultinject.Script{
		{Class: faultinject.ConflictStorm, Every: 2},
		{Class: faultinject.ValidateFail, Every: 3},
		{Class: faultinject.LockStretch, Every: 7, Param: 2},
	}
	s, out, snap := drainUnderLoad(t, script, server.StoreHashMap)
	verifyTapes(t, s, out, 512)
	if len(snap) == 0 {
		t.Fatal("no final snapshot flushed")
	}
	// The storm must actually have fired, or the variant proves nothing.
	body, err := http.Get("http://" + s.MetricsAddr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer body.Body.Close()
	metrics, _ := io.ReadAll(body.Body)
	if !bytes.Contains(metrics, []byte(`ale_faults_injected_total{class="conflict-storm"}`)) {
		t.Fatalf("conflict-storm faults never fired:\n%s", firstLines(string(metrics), 30))
	}
}

func firstLines(s string, n int) string {
	lines := strings.SplitN(s, "\n", n+1)
	if len(lines) > n {
		lines = lines[:n]
	}
	return strings.Join(lines, "\n")
}

// TestDrainIdempotent checks Drain-after-Drain and Close-after-Drain are
// safe, and that a drained server refuses new connections while keeping
// the runtime usable in-process.
func TestDrainIdempotent(t *testing.T) {
	cfg := server.DefaultConfig()
	cfg.Workers = 1
	cfg.Policy = func(string) core.Policy { return core.NewLockOnly() }
	cfg.Slots, cfg.Buckets, cfg.Capacity = 4, 64, 2048
	s, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.Drain()
	s.Drain()
	sess := s.NewSession()
	if err := sess.Set(1, 10); err != nil {
		t.Fatalf("post-drain in-process Set: %v", err)
	}
	if v, ok, err := sess.Get(1); err != nil || !ok || v != 10 {
		t.Fatalf("post-drain in-process Get = %d,%v,%v", v, ok, err)
	}
}

// TestOpsServedCountsAllVerbs pins OpsServed and the STATS ops_total
// field against a known request sequence, exercising the load package's
// TCP transport as the client.
func TestOpsServedCountsAllVerbs(t *testing.T) {
	cfg := server.DefaultConfig()
	cfg.Workers = 1
	cfg.Policy = func(string) core.Policy { return core.NewLockOnly() }
	cfg.Slots, cfg.Buckets, cfg.Capacity = 4, 64, 2048
	s, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	tr, err := load.DialTCP(s.Addr().String())(0)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	for i, req := range []server.Request{
		{Verb: server.VerbPing},
		{Verb: server.VerbSet, Key: 1, Arg: 5},
		{Verb: server.VerbIncr, Key: 1, Arg: 2},
		{Verb: server.VerbGet, Key: 1},
		{Verb: server.VerbScan, Arg: 10},
		{Verb: server.VerbStats},
	} {
		if _, err := tr.RoundTrip(req); err != nil {
			t.Fatalf("req %d: %v", i, err)
		}
	}
	if got := s.OpsServed(); got != 6 {
		t.Fatalf("OpsServed = %d, want 6", got)
	}
	rep, err := tr.RoundTrip(server.Request{Verb: server.VerbStats})
	if err != nil || rep.Kind != '*' {
		t.Fatalf("STATS: %+v, %v", rep, err)
	}
	found := false
	for _, f := range rep.Fields {
		if f == "ops_total 7" {
			found = true
		}
	}
	if !found {
		t.Fatalf("STATS missing ops_total 7: %v", rep.Fields)
	}
}
