package server_test

// Flight-recorder e2e suite: the black box armed on a live aleserve must
// dump a parseable ale-flight/v1 document on SIGQUIT and on drain, carry
// request-id'd tail exemplars (P99.9-causality: a slow execution names
// the client request that suffered it), and blame the granules a seeded
// conflict storm actually hammered. Per docs/TESTING.md there are no
// sleeps: signal-triggered dumps are observed by polling ParseFlight
// under runtime.Gosched (a partial write simply fails the parse and the
// poll continues), and drain dumps are flushed synchronously before
// Drain returns.

import (
	"io"
	"net/http"
	"os"
	"runtime"
	"strings"
	"syscall"
	"testing"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/load"
	"repro/internal/obs"
	"repro/internal/server"
)

// flightConfig returns a small flight-armed server config writing dumps
// to the returned buffer, with the exemplar floor at 1ns so every
// execution attaches a witness (CI machines are fast; the default 16µs
// floor would make these tests timing-dependent).
func flightConfig() (server.Config, *syncBuffer) {
	buf := &syncBuffer{}
	cfg := server.DefaultConfig()
	cfg.Workers = 2
	cfg.Slots, cfg.Buckets, cfg.Capacity = 4, 64, 4096
	cfg.Policy = func(string) core.Policy { return core.NewAdaptive() }
	cfg.FlightW = buf
	cfg.ExemplarMin = 1
	return cfg, buf
}

// parseWhenComplete polls the dump buffer until it holds one complete
// ale-flight document (the signal handler writes asynchronously).
func parseWhenComplete(buf *syncBuffer) obs.FlightDump {
	for {
		d, err := obs.ParseFlight(buf.Bytes())
		if err == nil {
			return d
		}
		runtime.Gosched()
	}
}

// TestFlightSIGQUITDump is the black-box e2e: serve real requests, send
// the process SIGQUIT exactly as an operator would, and check the dump —
// schema, reason, cumulative execs, and a nonzero request id on at least
// one exemplar (proving the connection loop's id threading reaches the
// exemplar table through the store's nested Executes).
func TestFlightSIGQUITDump(t *testing.T) {
	cfg, buf := flightConfig()
	s, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.DumpFlightOnSignal(syscall.SIGQUIT)

	tr, err := load.DialTCP(s.Addr().String())(0)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	for i := uint64(1); i <= 64; i++ {
		if _, err := tr.RoundTrip(server.Request{Verb: server.VerbSet, Key: i, Arg: i * 3}); err != nil {
			t.Fatalf("SET %d: %v", i, err)
		}
		if _, err := tr.RoundTrip(server.Request{Verb: server.VerbGet, Key: i}); err != nil {
			t.Fatalf("GET %d: %v", i, err)
		}
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGQUIT); err != nil {
		t.Fatalf("kill: %v", err)
	}
	d := parseWhenComplete(buf)

	if d.Schema != obs.FlightSchema {
		t.Fatalf("schema = %q, want %q", d.Schema, obs.FlightSchema)
	}
	if !strings.HasPrefix(d.Reason, "signal:") {
		t.Errorf("reason = %q, want signal:*", d.Reason)
	}
	if d.WindowS <= 0 || d.TickS <= 0 {
		t.Errorf("dump geometry window=%v tick=%v, want > 0", d.WindowS, d.TickS)
	}
	if d.Cumulative.Execs() == 0 {
		t.Error("cumulative snapshot has zero execs after 128 served requests")
	}
	if len(d.Cumulative.Exemplars) == 0 {
		t.Fatal("no exemplars in dump with a 1ns floor")
	}
	reqID := false
	for _, r := range d.Cumulative.Exemplars {
		if r.RequestID != 0 {
			reqID = true
		}
	}
	if !reqID {
		t.Errorf("no exemplar carries a request id; rows = %+v", d.Cumulative.Exemplars)
	}
}

// TestFlightDrainDumpBlamesStormGranule is the acceptance scenario: live
// open-loop load against a flight-armed server under a seeded conflict
// storm, drained mid-run — the drain dump's top-blamed granule must be on
// the stormed store's lock, and the window's abort accounting must show
// the storm's conflicts.
func TestFlightDrainDumpBlamesStormGranule(t *testing.T) {
	cfg, buf := flightConfig()
	cfg.Store = server.StoreHashMap
	cfg.Workers = 4
	// A static HTM-first policy guarantees the storm has opportunities to
	// fire: the adaptive policy's early learning stages run Lock/SWOpt
	// progressions, so a short run may never attempt HTM at all and the
	// scripted conflicts would have nothing to abort.
	cfg.Policy = func(string) core.Policy { return core.NewStatic(4, 4) }
	cfg.FaultScript = faultinject.Script{
		{Class: faultinject.ConflictStorm, Every: 2},
		{Class: faultinject.LockStretch, Every: 7, Param: 2},
	}
	s, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	stop := make(chan struct{})
	outCh := make(chan load.Output, 1)
	errCh := make(chan error, 1)
	go func() {
		out, err := load.Run(load.Config{
			Addr:         s.Addr().String(),
			Conns:        4,
			RatePerSec:   40000,
			Seed:         7,
			Keys:         512,
			DisjointKeys: true,
			Stop:         stop,
		})
		outCh <- out
		errCh <- err
	}()
	const minOps = 2000
	for s.OpsServed() < minOps {
		runtime.Gosched()
	}
	s.Drain()
	close(stop)
	<-outCh
	if err := <-errCh; err != nil {
		t.Fatalf("load.Run: %v", err)
	}

	// Drain flushed the dump synchronously before returning.
	d, err := obs.ParseFlight(buf.Bytes())
	if err != nil {
		t.Fatalf("drain dump: %v", err)
	}
	if d.Reason != "drain" {
		t.Errorf("reason = %q, want drain", d.Reason)
	}
	if len(d.Frames) == 0 {
		t.Fatal("drain dump has no frames (Stop should fold a final one)")
	}
	top := d.TopBlamedGranules(5)
	if len(top) == 0 {
		t.Fatal("no blamed granules in a 2000+-op stormed run")
	}
	if top[0].Lock != "kv" || top[0].Granule == "" {
		t.Errorf("top blamed = lock %q granule %q, want the stormed kv store", top[0].Lock, top[0].Granule)
	}
	aborts := d.AbortsByReason()
	if aborts["conflict"] == 0 {
		t.Errorf("window abort accounting misses the conflict storm: %v", aborts)
	}
	if d.Cumulative.FaultsTotal() == 0 {
		t.Error("fault counters empty — the storm never fired, the blame proves nothing")
	}
}

// TestFlightPathNumbersDumps pins DumpFlight's file naming: the first
// dump takes the configured path verbatim, later ones get a numbered
// suffix before the extension, so an anomaly dump never clobbers the
// drain dump.
func TestFlightPathNumbersDumps(t *testing.T) {
	dir := t.TempDir()
	cfg, _ := flightConfig()
	cfg.FlightW = nil
	cfg.FlightPath = dir + "/flight.json"
	s, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.DumpFlight("first")
	s.DumpFlight("second")
	for i, want := range []struct{ path, reason string }{
		{dir + "/flight.json", "first"},
		{dir + "/flight-2.json", "second"},
	} {
		data, err := os.ReadFile(want.path)
		if err != nil {
			t.Fatalf("dump %d: %v", i, err)
		}
		d, err := obs.ParseFlight(data)
		if err != nil {
			t.Fatalf("dump %d: %v", i, err)
		}
		if d.Reason != want.reason {
			t.Errorf("dump %d reason = %q, want %q", i, d.Reason, want.reason)
		}
	}
}

// TestServerMetricsEndpoints is the wiring-dedup regression: the one
// obs.Handler mounted on aleserve's metrics listener must serve all four
// planes — Prometheus text, snapshot JSON, the event timeline (both
// renderings), and the NDJSON live stream — and the index page must
// advertise /stream. (cmd/alebench mounts the same handler; its side of
// the regression lives in cmd/alebench/main_test.go.)
func TestServerMetricsEndpoints(t *testing.T) {
	cfg, _ := flightConfig()
	cfg.MetricsAddr = "127.0.0.1:0"
	s, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	base := "http://" + s.MetricsAddr()
	get := func(path string) (string, string) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		return string(body), resp.Header.Get("Content-Type")
	}

	if body, _ := get("/"); !strings.Contains(body, "/stream") {
		t.Errorf("index page does not advertise /stream: %q", body)
	}
	if body, _ := get("/metrics"); !strings.Contains(body, "ale_execs_total") {
		t.Error("/metrics missing ale_execs_total")
	}
	if body, ct := get("/snapshot"); ct != "application/json" || !strings.Contains(body, "ale-snapshot/v1") {
		t.Errorf("/snapshot: content-type %q", ct)
	}
	if _, ct := get("/events"); ct != "text/plain; charset=utf-8" {
		t.Errorf("/events: content-type %q", ct)
	}
	if _, ct := get("/events?format=json"); ct != "application/json" {
		t.Errorf("/events?format=json: content-type %q", ct)
	}
	body, ct := get("/stream?interval=10ms&n=1")
	if ct != "application/x-ndjson" {
		t.Errorf("/stream: content-type %q", ct)
	}
	snaps, err := obs.ParseSnapshots([]byte(body))
	if err != nil {
		t.Fatalf("/stream body does not parse as snapshots: %v", err)
	}
	if len(snaps) != 2 {
		t.Fatalf("/stream?n=1 returned %d snapshots, want 2 (cumulative + 1 delta)", len(snaps))
	}
}
