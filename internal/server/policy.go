package server

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/core"
)

// ParsePolicy resolves a -policy flag value into a per-lock policy
// factory. Accepted spellings:
//
//	adaptive      the paper's phased adaptive policy (default)
//	drift         adaptive with drift re-probing
//	lockonly      never elide (deterministic exec counts — the wire
//	              fixtures run under it)
//	static:X,Y    fixed X HTM attempts then Y SWOpt attempts
func ParsePolicy(s string) (func(lockName string) core.Policy, error) {
	switch {
	case s == "" || s == "adaptive":
		return func(string) core.Policy { return core.NewAdaptive() }, nil
	case s == "drift":
		return func(string) core.Policy { return core.NewDrift() }, nil
	case s == "lockonly":
		return func(string) core.Policy { return core.NewLockOnly() }, nil
	case strings.HasPrefix(s, "static:"):
		xs, ys, ok := strings.Cut(strings.TrimPrefix(s, "static:"), ",")
		if !ok {
			return nil, fmt.Errorf("server: static policy wants static:X,Y, got %q", s)
		}
		x, err1 := strconv.Atoi(xs)
		y, err2 := strconv.Atoi(ys)
		if err1 != nil || err2 != nil || x < 0 || y < 0 {
			return nil, fmt.Errorf("server: bad static policy %q", s)
		}
		return func(string) core.Policy { return core.NewStatic(x, y) }, nil
	}
	return nil, fmt.Errorf("server: unknown policy %q (adaptive, drift, lockonly, static:X,Y)", s)
}
