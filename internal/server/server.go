package server

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/obs"
	"repro/internal/platform"
	"repro/internal/tm"
)

// Config assembles a Server. The zero value is not runnable; use
// DefaultConfig as the base.
type Config struct {
	// Addr is the KV listener's address ("127.0.0.1:0" for an ephemeral
	// test port).
	Addr string
	// MetricsAddr, when non-empty, mounts the obs HTTP endpoints
	// (/metrics, /snapshot, /events — internal/obs.Handler) on a side
	// listener. The metrics plane outlives a drain (so the final flushed
	// snapshot can still be scraped) and shuts down in Close.
	MetricsAddr string
	// Workers is the fixed worker-pool size: each worker registers one
	// ALE thread at startup and serves one connection at a time, so it is
	// also the concurrent-connection limit; excess accepted connections
	// queue. ALE threads must not be shared across goroutines, which is
	// why the pool is fixed rather than per-connection.
	Workers int

	// Store selects the backing structure; the sizing fields below apply
	// to both (Slots is kyoto-only).
	Store         StoreKind
	Slots         int
	Buckets       int
	Capacity      int
	MarkerStripes int

	// Policy builds one policy instance per ALE lock (fresh state per
	// lock, like kyoto.PolicyFactory).
	Policy func(lockName string) core.Policy
	// Platform is the simulated HTM platform (platform.Haswell() by
	// default).
	Platform platform.Platform
	// Timing enables the PR 5 timing layer (latency histograms, granule
	// contention attribution) on the server's runtime.
	Timing bool
	// Shards, when nonzero, overrides the commit-clock shard count of the
	// server's domain (a power of two in [1, tm.MaxShards]; 1 reproduces
	// the pre-sharding single-clock behaviour, the EXPERIMENTS.md
	// ablation). 0 keeps the platform profile's setting, which by default
	// auto-derives from GOMAXPROCS.
	Shards int
	// ProfilePath, when non-empty, turns a run of the server into a
	// profiling session: it implies Timing and a default event-ring
	// capacity, and at the end of a drain the merged event timeline is
	// written to this path as Chrome Trace Event JSON (Perfetto-loadable)
	// and the contention profile goes to Logf.
	ProfilePath string
	// TraceCapacity is the per-thread event-ring capacity (0 = off unless
	// ProfilePath sets a default).
	TraceCapacity int
	// Obs is the collector backing STATS and the metrics endpoints (one
	// is created when nil).
	Obs *obs.Collector
	// FlightPath / FlightW arm the flight recorder (internal/obs black
	// box): a bounded ring of per-tick snapshot deltas dumped as
	// ale-flight/v1 JSON on drain, on DumpFlightOnSignal signals, and on
	// anomaly triggers. FlightW wins when both are set; FlightPath gets
	// one file per dump (a numbered suffix after the first). Arming the
	// recorder implies Timing, since a black box without latency and
	// exemplar data answers nothing.
	FlightPath string
	FlightW    io.Writer
	// FlightWindow / FlightTick size the retained window (defaults
	// obs.DefaultFlightWindow / obs.DefaultFlightTick).
	FlightWindow time.Duration
	FlightTick   time.Duration
	// FlightTailThreshold, when >0, self-dumps the window whenever a
	// per-tick exec-latency p99 in any mode reaches it. FlightAbortRate
	// does the same for the HTM abort rate (aborts/second).
	FlightTailThreshold time.Duration
	FlightAbortRate     float64
	// ExemplarMin, when >0, overrides the tail-exemplar latency floor
	// (default obs.DefaultExemplarMinNS). Negative disables the override.
	ExemplarMin time.Duration
	// FaultScript, when non-empty, installs the deterministic fault
	// injector (internal/faultinject) on the substrate and engine — the
	// drain soak tests' conflict-storm regime. Never set in production.
	FaultScript faultinject.Script
	// SnapshotW, when non-nil, receives the final obs snapshot (JSON) at
	// the end of a drain.
	SnapshotW io.Writer
	// Logf, when non-nil, receives server lifecycle lines.
	Logf func(format string, args ...any)
}

// DefaultConfig returns a runnable server configuration: kyoto store,
// adaptive policies, 4 workers, ephemeral loopback address.
func DefaultConfig() Config {
	return Config{
		Addr:          "127.0.0.1:0",
		Workers:       4,
		Store:         StoreKyoto,
		Slots:         16,
		Buckets:       256,
		Capacity:      1 << 14,
		MarkerStripes: 1,
		Policy:        func(string) core.Policy { return core.NewAdaptive() },
		Platform:      platform.Haswell(),
	}
}

// opCounter indexes the server's per-verb counters (wire order, then the
// derived ones).
type opCounter int

const (
	opcPing opCounter = iota
	opcGet
	opcSet
	opcDel
	opcIncr
	opcPut
	opcScan
	opcStats
	opcQuit
	opcErrors // typed -ERR replies (protocol or store)
	numOpCounters
)

var opCounterNames = [numOpCounters]string{
	"ping", "get", "set", "del", "incr", "put", "scan", "stats", "quit", "errors",
}

// Server is one aleserve instance. Construct with New, run with Serve (or
// Start), stop with Drain then Close.
type Server struct {
	cfg       Config
	collector *obs.Collector
	rt        *core.Runtime
	st        store
	injector  *faultinject.Injector

	ln        net.Listener
	metricsLn net.Listener
	httpSrv   *http.Server

	connCh chan net.Conn

	mu       sync.Mutex
	active   map[net.Conn]struct{}
	draining bool

	workerWG sync.WaitGroup
	acceptWG sync.WaitGroup

	drainOnce sync.Once
	drained   chan struct{}

	flight    *obs.FlightRecorder
	flightMu  sync.Mutex // serializes dumps (anomaly goroutine vs signal vs drain)
	flightSeq atomic.Uint64

	ops        [numOpCounters]atomic.Uint64
	connsTotal atomic.Uint64
	connSeq    atomic.Uint64 // request-id connection numbering (see serveConn)
	start      time.Time
}

// New validates cfg, builds the runtime and store, binds the listeners,
// and starts the worker pool and accept loop. The server is accepting as
// soon as New returns.
func New(cfg Config) (*Server, error) {
	if cfg.Workers < 1 {
		return nil, fmt.Errorf("server: Workers must be ≥ 1")
	}
	if cfg.Policy == nil {
		return nil, fmt.Errorf("server: Policy is required")
	}
	if cfg.Store == "" {
		cfg.Store = StoreKyoto
	}
	collector := cfg.Obs
	if collector == nil {
		collector = obs.New()
	}
	opts := core.DefaultOptions()
	opts.Obs = collector
	opts.Timing = cfg.Timing
	opts.TraceCapacity = cfg.TraceCapacity
	if cfg.ProfilePath != "" {
		// A profile without spans or events is useless: imply the timing
		// layer and give the rings a capacity if the caller set neither.
		opts.Timing = true
		if opts.TraceCapacity == 0 {
			opts.TraceCapacity = 4096
		}
	}
	flightArmed := cfg.FlightPath != "" || cfg.FlightW != nil
	if flightArmed {
		// Same reasoning: a black box with empty histograms and no
		// exemplars cannot answer "why was it slow".
		opts.Timing = true
	}
	if cfg.ExemplarMin > 0 {
		collector.Exemplars().SetMinLatency(int64(cfg.ExemplarMin))
	}

	prof := cfg.Platform.Profile
	if cfg.Shards != 0 {
		prof.Shards = cfg.Shards
		if err := prof.Validate(); err != nil {
			return nil, fmt.Errorf("server: Shards %d: %w", cfg.Shards, err)
		}
	}
	dom := tm.NewDomain(prof)
	var inj *faultinject.Injector
	if len(cfg.FaultScript) > 0 {
		inj = faultinject.New(cfg.FaultScript)
		inj.SetObsShard(collector.NewShard())
		dom.SetInjector(inj)
		opts.Faults = inj
	}
	rt := core.NewRuntimeOpts(dom, opts)

	s := &Server{
		cfg:       cfg,
		collector: collector,
		rt:        rt,
		st:        buildStore(rt, cfg),
		injector:  inj,
		connCh:    make(chan net.Conn),
		active:    make(map[net.Conn]struct{}),
		drained:   make(chan struct{}),
		start:     time.Now(),
	}

	if flightArmed {
		s.flight = obs.NewFlight(collector, obs.FlightConfig{
			Window:          cfg.FlightWindow,
			Tick:            cfg.FlightTick,
			TailThresholdNS: int64(cfg.FlightTailThreshold),
			AbortStormRate:  cfg.FlightAbortRate,
			OnAnomaly:       func(reason string) { s.DumpFlight("anomaly: " + reason) },
		})
		s.flight.Start()
	}

	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		if s.flight != nil {
			s.flight.Stop()
		}
		return nil, fmt.Errorf("server: listen %s: %w", cfg.Addr, err)
	}
	s.ln = ln
	if cfg.MetricsAddr != "" {
		mln, err := net.Listen("tcp", cfg.MetricsAddr)
		if err != nil {
			ln.Close()
			if s.flight != nil {
				s.flight.Stop()
			}
			return nil, fmt.Errorf("server: metrics listen %s: %w", cfg.MetricsAddr, err)
		}
		s.metricsLn = mln
		s.httpSrv = &http.Server{Handler: obs.Handler(collector)}
		go func() { _ = s.httpSrv.Serve(mln) }()
	}

	for i := 0; i < cfg.Workers; i++ {
		s.workerWG.Add(1)
		go s.worker()
	}
	s.acceptWG.Add(1)
	go s.acceptLoop()

	s.logf("aleserve: %s store, %d workers, listening on %s", cfg.Store, cfg.Workers, ln.Addr())
	if s.metricsLn != nil {
		s.logf("aleserve: metrics on http://%s (/metrics /snapshot /events /stream)", s.metricsLn.Addr())
	}
	return s, nil
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// Addr returns the KV listener's bound address.
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// MetricsAddr returns the metrics listener's bound address ("" when the
// metrics plane is off).
func (s *Server) MetricsAddr() string {
	if s.metricsLn == nil {
		return ""
	}
	return s.metricsLn.Addr().String()
}

// Runtime exposes the server's ALE runtime (reports, tests).
func (s *Server) Runtime() *core.Runtime { return s.rt }

// Collector exposes the obs collector backing STATS and the metrics
// endpoints.
func (s *Server) Collector() *obs.Collector { return s.collector }

// NewSession opens an extra store session on a fresh ALE thread —
// post-drain verification plumbing for tests (the runtime stays usable
// after a drain; only the network plane is gone).
func (s *Server) NewSession() Session { return s.st.newSession() }

// OpsServed returns the number of completed requests (all verbs).
func (s *Server) OpsServed() uint64 {
	var n uint64
	for i := opcPing; i <= opcQuit; i++ {
		n += s.ops[i].Load()
	}
	return n
}

// acceptLoop feeds accepted connections to the worker pool. It exits when
// the listener closes (Drain); queued connections still in connCh are
// closed unserved by the draining workers.
func (s *Server) acceptLoop() {
	defer s.acceptWG.Done()
	defer close(s.connCh)
	for {
		c, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.connsTotal.Add(1)
		s.connCh <- c
	}
}

// worker owns one ALE thread (via its store session) and serves queued
// connections one at a time.
func (s *Server) worker() {
	defer s.workerWG.Done()
	sess := s.st.newSession()
	scratch := &connScratch{}
	for c := range s.connCh {
		s.serveConn(c, sess, scratch)
	}
}

// connScratch is per-worker reusable request state.
type connScratch struct {
	payload  []byte
	scanKeys [][2]uint64
}

// register tracks a live connection so Drain can interrupt its blocked
// read. Returns false when the server is already draining (the caller
// must close the connection instead of serving it).
func (s *Server) register(c net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return false
	}
	s.active[c] = struct{}{}
	return true
}

func (s *Server) unregister(c net.Conn) {
	s.mu.Lock()
	delete(s.active, c)
	s.mu.Unlock()
}

// draining reports the drain flag.
func (s *Server) isDraining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// serveConn runs one connection's request loop. The drain contract
// (docs/ALESERVE.md): a request whose response was flushed was applied
// exactly once; a request with no response was never applied. The loop
// preserves it by (a) checking the drain flag only *between* requests, so
// a request that started processing always finishes and flushes, and (b)
// never reading a new request after the flag is set, so a request the
// drain cut off was never handed to the store.
func (s *Server) serveConn(c net.Conn, sess Session, scratch *connScratch) {
	defer c.Close()
	if !s.register(c) {
		return
	}
	defer s.unregister(c)

	// Request-id threading for tail-exemplar causality: every request gets
	// connection<<20 | sequence stamped onto the worker's ALE thread, so an
	// exemplar witnessed deep in the store names the exact client request
	// that suffered the tail latency (flight dumps and /snapshot carry it).
	// Two plain stores per request on the single-owner thread — nothing on
	// the Execute hot path changes. Cleared on exit so an id never leaks
	// into the next connection served by this worker.
	thr := sess.Thread()
	connID := s.connSeq.Add(1)
	reqSeq := uint64(0)
	defer thr.SetRequestID(0)

	br := bufio.NewReaderSize(c, 16<<10)
	bw := bufio.NewWriterSize(c, 16<<10)
	for {
		if s.isDraining() {
			bw.Flush()
			return
		}
		req, err := ReadRequest(br, &scratch.payload)
		if err != nil {
			var werr *WireError
			if errors.As(err, &werr) {
				// Malformed frame: typed reply, connection survives.
				s.ops[opcErrors].Add(1)
				writeWireError(bw, werr)
				if br.Buffered() == 0 {
					if bw.Flush() != nil {
						return
					}
				}
				continue
			}
			// Timeout only ever comes from a drain poke; loop to the
			// drain check. Anything else (EOF, reset) ends the
			// connection.
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				continue
			}
			bw.Flush()
			return
		}
		reqSeq++
		thr.SetRequestID(connID<<20 | (reqSeq & 0xFFFFF))
		quit := s.dispatch(bw, sess, scratch, req)
		// Flush once the pipeline is empty (RESP-style batching: a burst
		// of pipelined requests gets one writev, a lone request gets an
		// immediate reply).
		if br.Buffered() == 0 || quit {
			if bw.Flush() != nil {
				return
			}
		}
		if quit {
			return
		}
	}
}

// dispatch applies one request to the store and writes (without flushing)
// its response. Returns true for QUIT.
func (s *Server) dispatch(bw *bufio.Writer, sess Session, scratch *connScratch, req Request) bool {
	switch req.Verb {
	case VerbPing:
		s.ops[opcPing].Add(1)
		writeSimple(bw, "PONG")
	case VerbGet:
		s.ops[opcGet].Add(1)
		v, ok, err := sess.Get(req.Key)
		if err != nil {
			s.storeError(bw, err)
		} else if ok {
			writeInt(bw, v)
		} else {
			writeNil(bw)
		}
	case VerbSet:
		s.ops[opcSet].Add(1)
		if err := sess.Set(req.Key, req.Arg); err != nil {
			s.storeError(bw, err)
		} else {
			writeSimple(bw, "OK")
		}
	case VerbDel:
		s.ops[opcDel].Add(1)
		ok, err := sess.Del(req.Key)
		if err != nil {
			s.storeError(bw, err)
		} else if ok {
			writeInt(bw, 1)
		} else {
			writeInt(bw, 0)
		}
	case VerbIncr:
		s.ops[opcIncr].Add(1)
		v, err := sess.Incr(req.Key, req.Arg)
		if err != nil {
			s.storeError(bw, err)
		} else {
			writeInt(bw, v)
		}
	case VerbPut:
		s.ops[opcPut].Add(1)
		h := FNVHash(req.Payload)
		if err := sess.Set(req.Key, h); err != nil {
			s.storeError(bw, err)
		} else {
			writeInt(bw, h)
		}
	case VerbScan:
		s.ops[opcScan].Add(1)
		scratch.scanKeys = scratch.scanKeys[:0]
		_, err := sess.Scan(int(req.Arg), func(k, v uint64) bool {
			scratch.scanKeys = append(scratch.scanKeys, [2]uint64{k, v})
			return true
		})
		if err != nil {
			s.storeError(bw, err)
			break
		}
		writeArrayHeader(bw, len(scratch.scanKeys))
		for _, kv := range scratch.scanKeys {
			writePair(bw, kv[0], kv[1])
		}
	case VerbStats:
		s.ops[opcStats].Add(1)
		s.writeStats(bw)
	case VerbQuit:
		s.ops[opcQuit].Add(1)
		writeSimple(bw, "BYE")
		return true
	}
	return false
}

// storeError maps a store-layer failure to a typed reply.
func (s *Server) storeError(bw *bufio.Writer, err error) {
	s.ops[opcErrors].Add(1)
	writeWireError(bw, &WireError{Code: ErrStore, Msg: err.Error()})
}

// writeStats renders the STATS array: protocol/config identity, the
// server-plane counters, and the ALE collector's execution totals. Field
// order is fixed (the conformance fixtures pin it); every value is
// deterministic for a deterministic request history, so no wall-clock
// field appears here (uptime lives in /snapshot).
func (s *Server) writeStats(bw *bufio.Writer) {
	snap := s.collector.Snapshot()
	draining := 0
	if s.isDraining() {
		draining = 1
	}
	s.mu.Lock()
	activeConns := len(s.active)
	s.mu.Unlock()

	fields := make([]string, 0, 8+int(numOpCounters))
	addf := func(format string, args ...any) {
		fields = append(fields, fmt.Sprintf(format, args...))
	}
	addf("proto %s", ProtoName)
	addf("store %s", s.cfg.Store)
	addf("workers %d", s.cfg.Workers)
	addf("conns_active %d", activeConns)
	addf("conns_total %d", s.connsTotal.Load())
	addf("draining %d", draining)
	addf("ops_total %d", s.OpsServed())
	for i := opcPing; i < numOpCounters; i++ {
		addf("ops_%s %d", opCounterNames[i], s.ops[i].Load())
	}
	addf("execs %d", snap.Execs())
	addf("elision_pct %.1f", 100*snap.ElisionRate())

	writeArrayHeader(bw, len(fields))
	for _, f := range fields {
		writeSimple(bw, f)
	}
}

// Drain gracefully stops the KV plane: stop accepting, interrupt
// between-request reads, let in-flight requests finish and flush, close
// every connection, then flush the final snapshot to cfg.SnapshotW. The
// metrics endpoints keep serving (scrape the flushed state) until Close.
// Drain is idempotent and returns once the drain is complete.
func (s *Server) Drain() {
	s.drainOnce.Do(func() {
		s.logf("aleserve: draining")
		s.mu.Lock()
		s.draining = true
		// Poke every blocked read: a worker waiting between requests
		// wakes with a timeout, sees the flag, flushes and closes. A
		// worker mid-request is unaffected (the deadline only applies to
		// reads) and closes after its response is flushed.
		past := time.Unix(0, 1)
		for c := range s.active {
			_ = c.SetReadDeadline(past)
		}
		s.mu.Unlock()

		s.ln.Close()
		s.acceptWG.Wait()
		s.workerWG.Wait()

		if s.flight != nil {
			// Stop folds a final partial frame, so the dump covers the
			// tail of the drained traffic.
			s.flight.Stop()
			s.DumpFlight("drain")
		}
		if s.cfg.ProfilePath != "" {
			s.writeProfile()
		}
		if s.cfg.SnapshotW != nil {
			if err := obs.WriteJSON(s.cfg.SnapshotW, s.collector.Snapshot()); err != nil {
				s.logf("aleserve: final snapshot: %v", err)
			}
		}
		s.logf("aleserve: drained (%d ops served)", s.OpsServed())
		close(s.drained)
	})
	<-s.drained
}

// writeProfile flushes the drained run's merged event timeline to
// cfg.ProfilePath as Chrome Trace Event JSON and its contention profile
// to the log — the -profile flow of cmd/aleserve: profile a live load
// run, drain, open the trace in Perfetto. Runs after the worker pool
// has stopped, so the rings and attributions are quiescent.
func (s *Server) writeProfile() {
	f, err := os.Create(s.cfg.ProfilePath)
	if err != nil {
		s.logf("aleserve: profile: %v", err)
		return
	}
	if err := s.rt.WriteChromeTrace(f); err != nil {
		f.Close()
		s.logf("aleserve: profile: %v", err)
		return
	}
	if err := f.Close(); err != nil {
		s.logf("aleserve: profile: %v", err)
		return
	}
	s.logf("aleserve: wrote Chrome trace to %s (open in Perfetto or chrome://tracing)", s.cfg.ProfilePath)
	var sb strings.Builder
	if err := s.rt.WriteContentionReport(&sb, 10); err != nil {
		s.logf("aleserve: contention profile: %v", err)
		return
	}
	s.logf("aleserve: contention profile of the drained run:\n%s",
		strings.TrimRight(sb.String(), "\n"))
}

// Drained reports whether a drain has completed (non-blocking).
func (s *Server) Drained() bool {
	select {
	case <-s.drained:
		return true
	default:
		return false
	}
}

// Close shuts the metrics plane down (the KV plane must already be
// drained; Close drains it if not).
func (s *Server) Close() {
	s.Drain()
	if s.httpSrv != nil {
		_ = s.httpSrv.Close()
	}
}

// DumpFlight writes the flight-recorder window as one ale-flight/v1
// document: to cfg.FlightW when set, else to a file derived from
// cfg.FlightPath (the path itself for the first dump, "-2", "-3", …
// suffixes before the extension for later ones, so an anomaly dump never
// overwrites the drain dump), else to stderr. No-op when the recorder is
// not armed. Safe from any goroutine; concurrent dumps serialize.
func (s *Server) DumpFlight(reason string) {
	if s.flight == nil {
		return
	}
	s.flightMu.Lock()
	defer s.flightMu.Unlock()
	var w io.Writer = os.Stderr
	var f *os.File
	if s.cfg.FlightW != nil {
		w = s.cfg.FlightW
	} else if s.cfg.FlightPath != "" {
		path := s.cfg.FlightPath
		if n := s.flightSeq.Add(1); n > 1 {
			ext := ""
			if i := strings.LastIndexByte(path, '.'); i > strings.LastIndexByte(path, '/') {
				path, ext = path[:i], path[i:]
			}
			path = fmt.Sprintf("%s-%d%s", path, n, ext)
		}
		var err error
		f, err = os.Create(path)
		if err != nil {
			s.logf("aleserve: flight dump: %v", err)
			return
		}
		w = f
	}
	if err := s.flight.Dump(w, reason); err != nil {
		s.logf("aleserve: flight dump: %v", err)
	} else if f != nil {
		s.logf("aleserve: wrote flight dump (%s) to %s", reason, f.Name())
	}
	if f != nil {
		if err := f.Close(); err != nil {
			s.logf("aleserve: flight dump: %v", err)
		}
	}
}

// DumpFlightOnSignal installs a handler dumping the flight window when
// any of the given signals arrives (SIGQUIT for cmd/aleserve — this
// replaces Go's default stack-dump-and-exit for that signal, turning
// "kill -QUIT" into "give me the black box" on a running server). The
// handler stays installed for the process lifetime and serves repeated
// signals; each dump goes through DumpFlight's destination logic.
func (s *Server) DumpFlightOnSignal(sig ...os.Signal) {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, sig...)
	go func() {
		for got := range ch {
			s.DumpFlight("signal: " + got.String())
		}
	}()
}

// DrainOnSignal installs a handler draining the server when any of the
// given signals arrives (SIGTERM for cmd/aleserve). The returned channel
// closes when a signal-triggered drain has completed.
func (s *Server) DrainOnSignal(sig ...os.Signal) <-chan struct{} {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, sig...)
	done := make(chan struct{})
	go func() {
		<-ch
		signal.Stop(ch)
		s.Drain()
		close(done)
	}()
	return done
}
