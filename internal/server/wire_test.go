package server

import (
	"bufio"
	"bytes"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/platform"
)

// The wire conformance suite: every scenario's raw request bytes live in
// testdata/wire/<name>.in and the exact response bytes the server must
// produce in testdata/wire/<name>.out. Each scenario runs against a fresh
// server over a real loopback socket and ends with QUIT, so the full
// response stream is read to EOF and compared byte for byte.
//
// Fixtures run under the LockOnly policy: no elision, so STATS exec
// counters are deterministic. Regenerate with:
//
//	go test ./internal/server -run TestWireConformance -update

var update = flag.Bool("update", false, "rewrite testdata/wire/*.out golden files")

// testServer starts a 1-worker LockOnly server on an ephemeral loopback
// port.
func testServer(t *testing.T) *Server {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Workers = 1
	cfg.Policy = func(string) core.Policy { return core.NewLockOnly() }
	cfg.Platform = platform.Haswell()
	// Small arenas: the default store sizing costs seconds under -race.
	cfg.Slots, cfg.Buckets, cfg.Capacity = 4, 64, 2048
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(s.Close)
	return s
}

// exchange sends in to a fresh connection and returns everything the
// server writes back until it closes the connection.
func exchange(t *testing.T, s *Server, in []byte) []byte {
	t.Helper()
	c, err := net.Dial("tcp", s.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()
	if _, err := c.Write(in); err != nil {
		t.Fatalf("write: %v", err)
	}
	out, err := io.ReadAll(c)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	return out
}

func TestWireConformance(t *testing.T) {
	ins, err := filepath.Glob(filepath.Join("testdata", "wire", "*.in"))
	if err != nil || len(ins) == 0 {
		t.Fatalf("no fixtures under testdata/wire (err=%v)", err)
	}
	for _, inPath := range ins {
		name := strings.TrimSuffix(filepath.Base(inPath), ".in")
		t.Run(name, func(t *testing.T) {
			in, err := os.ReadFile(inPath)
			if err != nil {
				t.Fatal(err)
			}
			s := testServer(t)
			got := exchange(t, s, in)

			outPath := filepath.Join("testdata", "wire", name+".out")
			if *update {
				if err := os.WriteFile(outPath, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(outPath)
			if err != nil {
				t.Fatalf("missing golden file (run with -update): %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("response diverged from golden file\n got: %q\nwant: %q", got, want)
			}
		})
	}
}

// TestWirePipelining sends a burst of pipelined requests in one write and
// checks the replies come back in order, then that the per-verb counters
// saw every request (the batch flushed as one unit).
func TestWirePipelining(t *testing.T) {
	s := testServer(t)
	var in bytes.Buffer
	const n = 200
	for i := 1; i <= n; i++ {
		fmt.Fprintf(&in, "SET %d %d\r\n", i, i*10)
	}
	for i := 1; i <= n; i++ {
		fmt.Fprintf(&in, "GET %d\r\n", i)
	}
	in.WriteString("QUIT\r\n")

	out := exchange(t, s, in.Bytes())
	br := bufio.NewReader(bytes.NewReader(out))
	for i := 1; i <= n; i++ {
		rep, err := ReadReply(br)
		if err != nil || rep.Kind != '+' || rep.Str != "OK" {
			t.Fatalf("SET %d reply = %+v, %v", i, rep, err)
		}
	}
	for i := 1; i <= n; i++ {
		rep, err := ReadReply(br)
		if err != nil || rep.Kind != ':' || rep.Val != uint64(i*10) {
			t.Fatalf("GET %d reply = %+v, %v", i, rep, err)
		}
	}
	rep, err := ReadReply(br)
	if err != nil || rep.Str != "BYE" {
		t.Fatalf("QUIT reply = %+v, %v", rep, err)
	}
	if got := s.OpsServed(); got != 2*n+1 {
		t.Fatalf("OpsServed = %d, want %d", got, 2*n+1)
	}
}

// TestWireConnectionSurvivesGarbage interleaves malformed frames with
// valid requests on one connection: every malformed frame must earn a
// typed -ERR reply (never a dropped connection), and the valid requests
// around it must still work.
func TestWireConnectionSurvivesGarbage(t *testing.T) {
	s := testServer(t)
	big := strings.Repeat("x", 2*MaxInlineBytes)
	in := strings.Join([]string{
		"SET 7 70",
		"BOGUS 1 2 3",     // unknown verb → proto
		"GET",             // missing arg → args
		"GET 0",           // zero key → range
		"GET abc",         // non-numeric → range
		big,               // oversized line → frame
		"GET 7",           // still alive
		"PUT 9 999999999", // oversized payload declare → payload
		"GET 7",           // still alive
		"QUIT",
	}, "\r\n") + "\r\n"

	out := exchange(t, s, []byte(in))
	br := bufio.NewReader(bytes.NewReader(out))
	wantCodes := []struct {
		kind byte
		code ErrCode
	}{
		{'+', ""}, {'-', ErrProto}, {'-', ErrArgs}, {'-', ErrRange}, {'-', ErrRange},
		{'-', ErrFrame}, {':', ""}, {'-', ErrPayload}, {':', ""}, {'+', ""},
	}
	for i, want := range wantCodes {
		rep, err := ReadReply(br)
		if err != nil {
			t.Fatalf("reply %d: %v", i, err)
		}
		if rep.Kind != want.kind || (want.kind == '-' && rep.Code != want.code) {
			t.Fatalf("reply %d = kind %q code %q, want kind %q code %q (%+v)",
				i, rep.Kind, rep.Code, want.kind, want.code, rep)
		}
	}
	if rest, _ := io.ReadAll(br); len(rest) != 0 {
		t.Fatalf("trailing bytes after QUIT: %q", rest)
	}
}
