package snzi

import (
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

func TestSequentialBasics(t *testing.T) {
	s := New(4)
	if s.Query() {
		t.Fatal("fresh SNZI reports nonzero")
	}
	s.Arrive(0)
	if !s.Query() {
		t.Fatal("Query false after Arrive")
	}
	s.Arrive(1)
	s.Depart(0)
	if !s.Query() {
		t.Fatal("Query false with surplus 1")
	}
	s.Depart(1)
	if s.Query() {
		t.Fatal("Query true with surplus 0")
	}
}

func TestManyArrivalsOneSlot(t *testing.T) {
	s := New(2)
	const n = 1000
	for i := 0; i < n; i++ {
		s.Arrive(0)
	}
	for i := 0; i < n; i++ {
		if !s.Query() {
			t.Fatalf("Query false with surplus %d", n-i)
		}
		s.Depart(0)
	}
	if s.Query() {
		t.Fatal("Query true after all departures")
	}
}

func TestDepartWithoutArrivePanics(t *testing.T) {
	s := New(2)
	defer func() {
		if recover() == nil {
			t.Error("unmatched Depart did not panic")
		}
	}()
	s.Depart(0)
}

func TestLeavesClamped(t *testing.T) {
	s := New(0)
	if s.Leaves() != 1 {
		t.Errorf("Leaves = %d, want 1", s.Leaves())
	}
	s.Arrive(42) // slot wraps
	if !s.Query() {
		t.Error("Query false after wrapped-slot Arrive")
	}
	s.Depart(42)
}

// TestConcurrentPairs: workers repeatedly arrive/depart; whenever a worker
// is between its own arrive and depart, Query must be true from its point
// of view (it has surplus, so the indicator cannot read zero).
func TestConcurrentPairs(t *testing.T) {
	s := New(8)
	const workers, per = 8, 3000
	var wg sync.WaitGroup
	var bad atomic.Int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				s.Arrive(id)
				if !s.Query() {
					bad.Add(1)
				}
				s.Depart(id)
			}
		}(w)
	}
	wg.Wait()
	if n := bad.Load(); n != 0 {
		t.Errorf("Query read zero %d times while caller held surplus", n)
	}
	if s.Query() {
		t.Error("Query true after all workers finished")
	}
}

// TestConcurrentSkewedSlots drives all workers through overlapping slots so
// the 1/2-propagation races actually occur.
func TestConcurrentSkewedSlots(t *testing.T) {
	s := New(2)
	const workers, per = 8, 3000
	var wg sync.WaitGroup
	var bad atomic.Int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := xrand.New(uint64(id) + 1)
			for i := 0; i < per; i++ {
				slot := rng.Intn(2)
				s.Arrive(slot)
				if !s.Query() {
					bad.Add(1)
				}
				s.Depart(slot)
			}
		}(w)
	}
	wg.Wait()
	if n := bad.Load(); n != 0 {
		t.Errorf("Query read zero %d times while caller held surplus", n)
	}
	if s.Query() {
		t.Error("Query true after all workers finished")
	}
}

// TestQuickSurplusInvariantPerSlot: for random sequential schedules where
// each departure pairs with an earlier arrival on the same leaf (the usage
// contract), Query must equal (total surplus > 0) after every step.
func TestQuickSurplusInvariantPerSlot(t *testing.T) {
	f := func(ops []uint8) bool {
		const leaves = 4
		s := New(leaves)
		per := [leaves]int{}
		total := 0
		for _, op := range ops {
			slot := int(op>>1) % leaves
			if op&1 == 0 {
				s.Arrive(slot)
				per[slot]++
				total++
			} else if per[slot] > 0 {
				s.Depart(slot)
				per[slot]--
				total--
			}
			if s.Query() != (total > 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestTreeShapeBasics(t *testing.T) {
	s := NewTree(64, 4) // 64 leaves -> 16 -> 4 -> root
	if s.Leaves() != 64 {
		t.Fatalf("Leaves = %d", s.Leaves())
	}
	if s.Query() {
		t.Fatal("fresh tree reports nonzero")
	}
	for i := 0; i < 64; i++ {
		s.Arrive(i)
		if !s.Query() {
			t.Fatalf("Query false after arrival %d", i)
		}
	}
	for i := 0; i < 64; i++ {
		if !s.Query() {
			t.Fatalf("Query false with surplus %d", 64-i)
		}
		s.Depart(i)
	}
	if s.Query() {
		t.Fatal("Query true after all departures")
	}
}

func TestTreeConcurrentPairs(t *testing.T) {
	s := NewTree(32, 2) // deep tree: many propagation races
	const workers, per = 8, 3000
	var wg sync.WaitGroup
	var bad atomic.Int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := xrand.New(uint64(id) + 3)
			for i := 0; i < per; i++ {
				slot := rng.Intn(32)
				s.Arrive(slot)
				if !s.Query() {
					bad.Add(1)
				}
				s.Depart(slot)
			}
		}(w)
	}
	wg.Wait()
	if n := bad.Load(); n != 0 {
		t.Errorf("Query read zero %d times while caller held surplus", n)
	}
	if s.Query() {
		t.Error("Query true after quiescence")
	}
}

func TestQuickTreeSurplusInvariant(t *testing.T) {
	f := func(ops []uint8, fanout uint8) bool {
		const leaves = 9 // odd: exercises ragged groups
		s := NewTree(leaves, int(fanout%4)+2)
		per := [leaves]int{}
		total := 0
		for _, op := range ops {
			slot := int(op>>1) % leaves
			if op&1 == 0 {
				s.Arrive(slot)
				per[slot]++
				total++
			} else if per[slot] > 0 {
				s.Depart(slot)
				per[slot]--
				total--
			}
			if s.Query() != (total > 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
