package snzi

import (
	"sync/atomic"
	"testing"
)

// The SNZI exists to beat a single shared counter under concurrent
// arrive/depart traffic; these benches quantify both sides of that trade
// (Query cost is one load either way).

func BenchmarkArriveDepartSequential(b *testing.B) {
	s := New(8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Arrive(0)
		s.Depart(0)
	}
}

func BenchmarkArriveDepartParallel(b *testing.B) {
	s := New(64)
	var slot atomic.Int64
	b.RunParallel(func(pb *testing.PB) {
		my := int(slot.Add(1))
		for pb.Next() {
			s.Arrive(my)
			s.Depart(my)
		}
	})
}

func BenchmarkCounterBaselineParallel(b *testing.B) {
	// The naive alternative the SNZI replaces: one shared counter.
	var c atomic.Int64
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Add(1)
			c.Add(-1)
		}
	})
}

func BenchmarkQuery(b *testing.B) {
	s := New(8)
	s.Arrive(3)
	var sink bool
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink = s.Query()
	}
	_ = sink
	s.Depart(3)
}
