package snzi

// Striped is a group of independent SNZI trees ("stripes") queried as
// one. Arrive/Depart pick a stripe by slot, so threads with different
// slots touch disjoint trees — disjoint cache lines all the way to the
// per-stripe roots — and Query ORs the stripe roots together.
//
// The sharded substrate uses one stripe per domain shard for each lock's
// retry indicator: a single-root SNZI serializes every arriving thread on
// the root's cache line precisely when the lock is hottest (all SWOpt
// attempts failing at once), which is the same single-point funnel the
// per-shard commit clocks remove from the commit path. Striping trades a
// slightly costlier Query (one load per stripe instead of one total) for
// fully independent arrive/depart traffic; Query is the cheap side — it
// runs on the group-wait poll loop, which is already a spin.
//
// Correctness is inherited from SNZI: each stripe independently tracks
// the surplus of its own arrivals, so the union is nonzero iff some
// stripe is — provided each Depart uses the same slot as its paired
// Arrive (the engine passes the thread id to both, satisfying this; plain
// SNZI only recommends same-slot pairing for locality, Striped requires
// it for correctness and documents that strengthening here).
type Striped struct {
	// stripes are separately allocated SNZIs, not a slice of SNZI values:
	// each SNZI's root must live on its own cache line, and the SNZI
	// struct already pads its nodes.
	stripes []*SNZI
}

// NewStriped builds a striped group of `stripes` independent SNZIs
// (rounded up to 1), each with `leaves` leaf slots.
func NewStriped(stripes, leaves int) *Striped {
	if stripes < 1 {
		stripes = 1
	}
	g := &Striped{stripes: make([]*SNZI, stripes)}
	for i := range g.stripes {
		g.stripes[i] = New(leaves)
	}
	return g
}

// Stripes returns the number of stripes.
func (g *Striped) Stripes() int { return len(g.stripes) }

// stripeFor maps a slot to its stripe. Slots are thread ids; sequential
// ids should land on distinct stripes, so this is a plain modulus rather
// than a hash.
func (g *Striped) stripeFor(slot int) *SNZI {
	if slot < 0 {
		slot = -slot
	}
	return g.stripes[slot%len(g.stripes)]
}

// Arrive records one arrival at the stripe owning slot.
func (g *Striped) Arrive(slot int) { g.stripeFor(slot).Arrive(slot) }

// Depart records one departure at the stripe owning slot. Unlike plain
// SNZI, the slot MUST match the paired Arrive's slot: departures on the
// wrong stripe would drive that stripe's count negative (panic) while
// the arrival's stripe leaks surplus.
func (g *Striped) Depart(slot int) { g.stripeFor(slot).Depart(slot) }

// Query reports whether any stripe's surplus is nonzero. One root load
// per stripe, no stores: concurrent group-wait spinners share the lines
// read-only.
func (g *Striped) Query() bool {
	for _, s := range g.stripes {
		if s.Query() {
			return true
		}
	}
	return false
}
