// Package snzi implements a Scalable NonZero Indicator (Ellen, Lev,
// Luchangco, Moir — PODC 2007), the primitive behind ALE's grouping
// mechanism (paper section 4.2).
//
// A SNZI tracks a surplus of Arrive over Depart operations and answers one
// question — Query: "is the surplus nonzero?" — with a single load of the
// root, while Arrive/Depart scale because most of them stay in the leaves:
// a leaf only propagates to its parent on 0 -> nonzero and nonzero -> 0
// transitions.
//
// ALE uses it per lock: a thread arrives when its SWOpt attempt for that
// lock fails (it is now retrying), departs when it succeeds or gives up.
// Executions that would conflict with SWOpt paths (conflicting regions in
// HTM or Lock mode) consult Query and defer while it is true, letting the
// whole group of optimistic retries drain — that is the grouping mechanism.
//
// The per-node algorithm is the hierarchical SNZI object from the paper:
// node state is a (count, version) pair where count takes the intermediate
// value 1/2 while an arrival's propagation to the parent is in flight, so
// that a racing departure can never drive the parent to zero while a child
// still has surplus. The root is a plain counter; the paper's fancier root
// (indicator bit folded into the version word) exists only to optimize
// write-sharing with transactions and is not needed here.
package snzi

import "sync/atomic"

// Node state packs count*2 (so the intermediate 1/2 is representable as 1)
// in the low 32 bits and a version in the high 32 bits. The version
// disambiguates distinct 1/2 episodes.
const (
	countUnit = 2 // one whole arrival
	countHalf = 1 // the in-flight intermediate value
	countMask = (1 << 32) - 1
	verShift  = 32
)

type node struct {
	state  atomic.Uint64
	parent *node
	// pad to a cache line so leaves do not false-share under contention.
	_ [40]byte
}

// SNZI is a fixed-shape tree of nodes. Construct with New; methods are safe
// for concurrent use. Slots (leaves) are picked by the caller, typically
// thread-id % Leaves().
type SNZI struct {
	root   node
	leaves []node
	inner  [][]node // intermediate levels (NewTree), bottom-up
}

// New builds a SNZI with the given number of leaves (rounded up to 1).
// A single intermediate level suffices for the thread counts the paper
// sweeps; leaves attach directly to the root.
func New(leaves int) *SNZI {
	return NewTree(leaves, 0)
}

// NewTree builds a SNZI whose leaves attach to the root through
// intermediate levels of the given fanout (the full hierarchical shape of
// the PODC paper, which keeps root traffic logarithmic for very large
// thread counts). fanout < 2 collapses to the flat single-level shape.
func NewTree(leaves, fanout int) *SNZI {
	if leaves < 1 {
		leaves = 1
	}
	s := &SNZI{leaves: make([]node, leaves)}
	if fanout < 2 {
		for i := range s.leaves {
			s.leaves[i].parent = &s.root
		}
		return s
	}
	// Build levels bottom-up: each group of `fanout` nodes shares one
	// parent on the next level, until a level fits under the root.
	level := make([]*node, leaves)
	for i := range s.leaves {
		level[i] = &s.leaves[i]
	}
	for len(level) > fanout {
		parents := make([]node, (len(level)+fanout-1)/fanout)
		s.inner = append(s.inner, parents)
		for i, n := range level {
			n.parent = &parents[i/fanout]
		}
		next := make([]*node, len(parents))
		for i := range parents {
			next[i] = &parents[i]
		}
		level = next
	}
	for _, n := range level {
		n.parent = &s.root
	}
	return s
}

// Leaves returns the number of leaf slots.
func (s *SNZI) Leaves() int { return len(s.leaves) }

// Arrive records one arrival at the given leaf slot.
func (s *SNZI) Arrive(slot int) {
	s.leaves[slot%len(s.leaves)].arrive()
}

// Depart records one departure at the given leaf slot. Departures must pair
// with earlier arrivals on the same SNZI (any slot order is fine for
// correctness of Query; using the same slot keeps traffic local).
func (s *SNZI) Depart(slot int) {
	s.leaves[slot%len(s.leaves)].depart()
}

// Query reports whether the surplus (arrivals minus departures) is nonzero.
func (s *SNZI) Query() bool {
	return s.root.state.Load()&countMask > 0
}

func pack(c, v uint64) uint64       { return v<<verShift | c }
func unpack(x uint64) (c, v uint64) { return x & countMask, x >> verShift }

func (n *node) arrive() {
	if n.parent == nil { // root: plain counter
		n.state.Add(countUnit)
		return
	}
	succ := false
	undo := 0
	for !succ {
		x := n.state.Load()
		c, v := unpack(x)
		if c >= countUnit {
			if n.state.CompareAndSwap(x, pack(c+countUnit, v)) {
				succ = true
			}
			continue
		}
		if c == 0 {
			if n.state.CompareAndSwap(x, pack(countHalf, v+1)) {
				succ = true
				c, v = countHalf, v+1
			} else {
				continue
			}
		}
		if c == countHalf {
			// Propagate to the parent before making our surplus visible,
			// then try to finalize 1/2 -> 1. If finalization fails someone
			// else finalized or the episode moved on; our parent arrival
			// is superfluous and must be undone.
			n.parent.arrive()
			if !n.state.CompareAndSwap(pack(countHalf, v), pack(countUnit, v)) {
				undo++
			}
		}
	}
	for ; undo > 0; undo-- {
		n.parent.depart()
	}
}

func (n *node) depart() {
	if n.parent == nil { // root: plain counter
		n.state.Add(^uint64(countUnit - 1)) // subtract countUnit
		return
	}
	for {
		x := n.state.Load()
		c, v := unpack(x)
		if c < countUnit {
			panic("snzi: Depart without matching Arrive")
		}
		if n.state.CompareAndSwap(x, pack(c-countUnit, v)) {
			if c == countUnit {
				n.parent.depart()
			}
			return
		}
	}
}
