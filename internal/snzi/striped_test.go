package snzi

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestStripedSequentialBasics(t *testing.T) {
	g := NewStriped(4, 2)
	if g.Stripes() != 4 {
		t.Fatalf("Stripes = %d, want 4", g.Stripes())
	}
	if g.Query() {
		t.Fatal("fresh Striped reports nonzero")
	}
	// Arrivals on different stripes are all visible through one Query.
	for slot := 0; slot < 4; slot++ {
		g.Arrive(slot)
		if !g.Query() {
			t.Fatalf("Query false after arrival on slot %d", slot)
		}
	}
	for slot := 0; slot < 3; slot++ {
		g.Depart(slot)
		if !g.Query() {
			t.Fatalf("Query false with surplus on stripe %d", 3)
		}
	}
	g.Depart(3)
	if g.Query() {
		t.Fatal("Query true with zero surplus everywhere")
	}
}

func TestStripedClampsAndNegativeSlots(t *testing.T) {
	g := NewStriped(0, 0) // both clamp to 1
	if g.Stripes() != 1 {
		t.Fatalf("Stripes = %d, want 1 (clamped)", g.Stripes())
	}
	g.Arrive(-3) // negative slots (defensive) must not panic
	if !g.Query() {
		t.Fatal("Query false after negative-slot arrival")
	}
	g.Depart(-3)
	if g.Query() {
		t.Fatal("Query true after paired negative-slot departure")
	}
}

// TestStripedChurn (-race): hammer arrive/depart from many goroutines on
// distinct slots — the shard-striped retry-indicator pattern — while a
// holder goroutine periodically pins an arrival on one slot and a checker
// polls Query. The sound invariant: if the holder's arrival was pinned
// across an entire Query call (its stripe's surplus never reached zero in
// that window), Query must return true. Everything drains to zero at the
// end, proving no stripe leaked or went negative (a negative stripe would
// have panicked in depart).
func TestStripedChurn(t *testing.T) {
	const (
		stripes = 4
		workers = 8
		rounds  = 2000
	)
	g := NewStriped(stripes, workers)
	var pinned atomic.Bool
	stop := make(chan struct{})

	var checkerWG sync.WaitGroup
	checkerWG.Add(1)
	go func() {
		defer checkerWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			before := pinned.Load()
			q := g.Query()
			after := pinned.Load()
			// The holder sets pinned only after its Arrive returns and
			// clears it before its Depart starts, so pinned at both edges
			// means slot 0's stripe held surplus across the whole Query.
			if before && after && !q {
				t.Error("Query false while an arrival was pinned throughout")
				return
			}
		}
	}()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // holder on slot 0
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			g.Arrive(0)
			pinned.Store(true)
			for j := 0; j < 8; j++ {
				_ = g.Query() // hold the arrival open for a stretch
			}
			pinned.Store(false)
			g.Depart(0)
		}
	}()
	for w := 1; w < workers; w++ {
		wg.Add(1)
		go func(slot int) { // churners on the remaining slots
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				g.Arrive(slot)
				g.Depart(slot)
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	checkerWG.Wait()
	if g.Query() {
		t.Fatal("Query true after all workers drained")
	}
}

// TestStripedIndependence: traffic on one stripe does not touch the
// others' roots (white-box: root counts move only on the arriving
// stripe).
func TestStripedIndependence(t *testing.T) {
	g := NewStriped(4, 4)
	g.Arrive(2) // stripe 2
	for i, s := range g.stripes {
		want := i == 2
		if got := s.Query(); got != want {
			t.Errorf("stripe %d Query = %v, want %v", i, got, want)
		}
	}
	g.Depart(2)
	for i, s := range g.stripes {
		if s.Query() {
			t.Errorf("stripe %d nonzero after drain", i)
		}
	}
}
