package trend

import (
	"math"
	"testing"
)

func TestSummarizeBasics(t *testing.T) {
	s := Summarize([]float64{100, 102, 98, 101, 99})
	if s.N != 5 {
		t.Fatalf("N = %d, want 5", s.N)
	}
	if s.Median != 100 {
		t.Errorf("median = %v, want 100", s.Median)
	}
	if s.Mean != 100 {
		t.Errorf("mean = %v, want 100", s.Mean)
	}
	if s.Min != 98 || s.Max != 102 {
		t.Errorf("min/max = %v/%v, want 98/102", s.Min, s.Max)
	}
	// Deviations from the median: {0,1,1,2,2} -> MAD 1.
	if s.MAD != 1 {
		t.Errorf("MAD = %v, want 1", s.MAD)
	}
	if s.Sigma != 1.4826 {
		t.Errorf("sigma = %v, want 1.4826", s.Sigma)
	}
	want := tCrit(4) * 1.4826 / math.Sqrt(5)
	if math.Abs(s.CIHalf-want) > 1e-12 {
		t.Errorf("CIHalf = %v, want %v", s.CIHalf, want)
	}
}

func TestSummarizeEvenCount(t *testing.T) {
	s := Summarize([]float64{10, 20, 30, 40})
	if s.Median != 25 {
		t.Errorf("even-count median = %v, want 25", s.Median)
	}
}

// A single sample has no spread information: the CI is zero and ciPct
// substitutes the default noise bound, the v1-compat behaviour the
// compare path depends on.
func TestSummarizeSingleSample(t *testing.T) {
	s := Summarize([]float64{250})
	if s.N != 1 || s.Median != 250 || s.CIHalf != 0 {
		t.Fatalf("single-sample summary: %+v", s)
	}
	if got := s.ciPct(10); got != 10 {
		t.Errorf("ciPct default = %v, want 10", got)
	}
}

// Identical samples degenerate the MAD to 0; the stddev fallback is also
// 0, so the CI collapses — the MinNoisePct floor in judge() is what
// keeps such comparisons from flagging every wobble.
func TestSummarizeIdenticalSamples(t *testing.T) {
	s := Summarize([]float64{77, 77, 77, 77})
	if s.MAD != 0 || s.Sigma != 0 || s.CIHalf != 0 {
		t.Fatalf("identical-sample summary has nonzero spread: %+v", s)
	}
}

// An outlier moves the mean but not the median/MAD — the reason the
// summary is robust in the first place.
func TestSummarizeRobustToOutlier(t *testing.T) {
	s := Summarize([]float64{100, 101, 99, 100, 10000})
	if s.Median != 100 {
		t.Errorf("median = %v, want 100 despite outlier", s.Median)
	}
	if s.MAD != 1 {
		t.Errorf("MAD = %v, want 1 despite outlier", s.MAD)
	}
	if s.Mean < 1000 {
		t.Errorf("mean = %v should be dragged by the outlier", s.Mean)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if s := Summarize(nil); s.N != 0 || s.Median != 0 {
		t.Errorf("empty summary: %+v", s)
	}
}

func TestTCrit(t *testing.T) {
	for _, tc := range []struct {
		df   int
		want float64
	}{{1, 12.706}, {4, 2.776}, {30, 2.042}, {31, 1.96}, {1000, 1.96}, {0, 12.706}} {
		if got := tCrit(tc.df); got != tc.want {
			t.Errorf("tCrit(%d) = %v, want %v", tc.df, got, tc.want)
		}
	}
}
