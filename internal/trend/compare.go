package trend

import (
	"fmt"
	"math"
	"sort"
)

// Verdict classifies one benchmark's movement between two runs.
type Verdict int

const (
	// WithinNoise: the median delta does not clear the noise bound.
	WithinNoise Verdict = iota
	// Improved: ns/op dropped past the noise bound.
	Improved
	// Regressed: ns/op rose past the noise bound, or allocs/op rose at
	// all (allocation counts are deterministic, so any increase is real).
	Regressed
	// Missing: present in the old run but absent from the new one.
	Missing
	// New: absent from the old run, present in the new one.
	New
)

var verdictNames = map[Verdict]string{
	WithinNoise: "within-noise",
	Improved:    "improved",
	Regressed:   "regressed",
	Missing:     "missing",
	New:         "new",
}

func (v Verdict) String() string {
	if s, ok := verdictNames[v]; ok {
		return s
	}
	return fmt.Sprintf("verdict(%d)", int(v))
}

// MarshalJSON encodes the verdict as its string name, the form the
// -json compare output and CI artifacts carry.
func (v Verdict) MarshalJSON() ([]byte, error) {
	return []byte(`"` + v.String() + `"`), nil
}

// UnmarshalJSON accepts the string names MarshalJSON emits.
func (v *Verdict) UnmarshalJSON(data []byte) error {
	for k, name := range verdictNames {
		if string(data) == `"`+name+`"` {
			*v = k
			return nil
		}
	}
	return fmt.Errorf("trend: unknown verdict %s", data)
}

// Benchmark is one benchmark's measurements within a run: every ns/op
// sample (len >= 1; v1-era single-shot files carry exactly one) plus the
// deterministic allocs/op.
type Benchmark struct {
	Name        string    `json:"name"`
	SamplesNS   []float64 `json:"samples_ns_per_op"`
	AllocsPerOp int64     `json:"allocs_per_op"`
}

// Run is one benchmark run: an ordered benchmark list plus the
// environment fingerprint it was captured under (free-form key/value;
// see EnvKeys for the keys comparisons inspect).
type Run struct {
	Label      string            `json:"label"`
	Env        map[string]string `json:"env,omitempty"`
	Benchmarks []Benchmark       `json:"benchmarks"`
}

// EnvKeys are the fingerprint keys whose mismatch makes a delta a
// cross-environment claim: a comparison across any of these is
// annotated, because the delta may measure the host or toolchain rather
// than the code. Capture-time keys like git_rev and time are expected
// to differ and are not flagged.
var EnvKeys = []string{"go_version", "goos", "goarch", "cpu_model", "go_max_procs"}

// Options tune a comparison's noise model.
type Options struct {
	// ThresholdPct, when > 0, replaces the statistical noise bound with a
	// fixed ±ThresholdPct band — the -threshold escape hatch for hosts
	// whose variance the t interval underestimates.
	ThresholdPct float64
	// DefaultNoisePct is the bound substituted for a single-sample
	// summary (a v1-era file or -count 1 run): no spread information, so
	// a deliberately wide ±10% default.
	DefaultNoisePct float64
	// MinNoisePct floors the statistical bound so quantized or
	// duplicate samples cannot produce a zero-width interval that flags
	// every 0.1% wobble. Default 1%.
	MinNoisePct float64
}

func (o Options) withDefaults() Options {
	if o.DefaultNoisePct <= 0 {
		o.DefaultNoisePct = 10
	}
	if o.MinNoisePct <= 0 {
		o.MinNoisePct = 1
	}
	return o
}

// Delta is one benchmark's comparison row.
type Delta struct {
	Name    string  `json:"name"`
	Verdict Verdict `json:"verdict"`
	Old     Summary `json:"old"`
	New     Summary `json:"new"`
	// PctChange is the median-to-median movement, (new-old)/old*100;
	// positive is slower. Zero for Missing/New rows.
	PctChange float64 `json:"pct_change"`
	// NoisePct is the bound the verdict was judged against.
	NoisePct  float64 `json:"noise_pct"`
	OldAllocs int64   `json:"old_allocs_per_op"`
	NewAllocs int64   `json:"new_allocs_per_op"`
	// AllocRegression marks an allocs/op increase, which forces the
	// verdict to Regressed regardless of the ns/op noise bound.
	AllocRegression bool `json:"alloc_regression,omitempty"`
}

// Comparison is the full pairwise result.
type Comparison struct {
	Old    string  `json:"old"`
	New    string  `json:"new"`
	Deltas []Delta `json:"deltas"`
	// EnvNotes names every EnvKeys mismatch between the two fingerprints
	// ("go_version: go1.22.1 -> go1.24.0"); non-empty notes mean the
	// deltas may reflect the environment, not the code.
	EnvNotes     []string `json:"env_notes,omitempty"`
	Regressions  int      `json:"regressions"`
	Improvements int      `json:"improvements"`
	Within       int      `json:"within_noise"`
	MissingCount int      `json:"missing"`
	NewCount     int      `json:"new_benchmarks"`
}

// HasRegression reports whether the gate should fail.
func (c Comparison) HasRegression() bool { return c.Regressions > 0 }

// Compare judges every benchmark of the new run against the old one.
// Rows keep the old run's order, with new-only benchmarks appended in
// the new run's order.
func Compare(oldRun, newRun Run, opts Options) Comparison {
	opts = opts.withDefaults()
	c := Comparison{Old: oldRun.Label, New: newRun.Label,
		EnvNotes: envNotes(oldRun.Env, newRun.Env)}
	newByName := make(map[string]Benchmark, len(newRun.Benchmarks))
	for _, b := range newRun.Benchmarks {
		newByName[b.Name] = b
	}
	oldSeen := make(map[string]bool, len(oldRun.Benchmarks))
	for _, ob := range oldRun.Benchmarks {
		oldSeen[ob.Name] = true
		nb, ok := newByName[ob.Name]
		if !ok {
			c.Deltas = append(c.Deltas, Delta{
				Name: ob.Name, Verdict: Missing,
				Old: Summarize(ob.SamplesNS), OldAllocs: ob.AllocsPerOp,
			})
			c.MissingCount++
			continue
		}
		d := compareBench(ob, nb, opts)
		c.Deltas = append(c.Deltas, d)
		switch d.Verdict {
		case Regressed:
			c.Regressions++
		case Improved:
			c.Improvements++
		default:
			c.Within++
		}
	}
	for _, nb := range newRun.Benchmarks {
		if oldSeen[nb.Name] {
			continue
		}
		c.Deltas = append(c.Deltas, Delta{
			Name: nb.Name, Verdict: New,
			New: Summarize(nb.SamplesNS), NewAllocs: nb.AllocsPerOp,
		})
		c.NewCount++
	}
	return c
}

// compareBench judges one benchmark present in both runs.
func compareBench(ob, nb Benchmark, opts Options) Delta {
	d := Delta{
		Name:      ob.Name,
		Old:       Summarize(ob.SamplesNS),
		New:       Summarize(nb.SamplesNS),
		OldAllocs: ob.AllocsPerOp,
		NewAllocs: nb.AllocsPerOp,
	}
	d.PctChange, d.NoisePct, d.Verdict = judge(d.Old, d.New, opts)
	if nb.AllocsPerOp > ob.AllocsPerOp {
		d.AllocRegression = true
		d.Verdict = Regressed
	}
	return d
}

// judge applies the noise model to two summaries: a fixed threshold when
// set, otherwise the two 95% intervals combined in quadrature (they are
// independent measurements) and floored at MinNoisePct.
func judge(prev, cur Summary, opts Options) (pct, noise float64, v Verdict) {
	if opts.ThresholdPct > 0 {
		noise = opts.ThresholdPct
	} else {
		ho, hn := prev.ciPct(opts.DefaultNoisePct), cur.ciPct(opts.DefaultNoisePct)
		noise = max(math.Hypot(ho, hn), opts.MinNoisePct)
	}
	if prev.Median == 0 {
		// Degenerate baseline (no timing recorded): any nonzero new
		// median is flagged rather than dividing by zero. PctChange is
		// pinned to ±100 so the row stays JSON-encodable.
		if cur.Median == 0 {
			return 0, noise, WithinNoise
		}
		return 100, noise, Regressed
	}
	pct = 100 * (cur.Median - prev.Median) / prev.Median
	switch {
	case pct > noise:
		v = Regressed
	case pct < -noise:
		v = Improved
	default:
		v = WithinNoise
	}
	return pct, noise, v
}

// envNotes lists the EnvKeys mismatches between two fingerprints. A key
// absent from either side is only flagged when present in the other
// with a non-empty value.
func envNotes(oldEnv, newEnv map[string]string) []string {
	var notes []string
	for _, k := range EnvKeys {
		ov, nv := oldEnv[k], newEnv[k]
		if ov == nv || (ov == "" && nv == "") {
			continue
		}
		notes = append(notes, fmt.Sprintf("%s: %s -> %s", k, orUnknown(ov), orUnknown(nv)))
	}
	sort.Strings(notes)
	return notes
}

func orUnknown(s string) string {
	if s == "" {
		return "(unknown)"
	}
	return s
}
