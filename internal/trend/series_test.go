package trend

import (
	"strings"
	"testing"
)

// threeRuns is a small series: benchmark "a" in every run (regressing in
// the third), "b" missing from the middle run, "c" appearing only in the
// last run.
func threeRuns() []Run {
	return []Run{
		{Label: "BENCH_1.json", Env: map[string]string{"go_version": "go1.22.1", "goos": "linux", "goarch": "amd64"},
			Benchmarks: []Benchmark{
				{Name: "a", SamplesNS: []float64{100, 101, 99}},
				{Name: "b", SamplesNS: []float64{50}},
			}},
		{Label: "BENCH_2.json", Benchmarks: []Benchmark{
			{Name: "a", SamplesNS: []float64{100, 100, 100}},
		}},
		{Label: "BENCH_3.json", Benchmarks: []Benchmark{
			{Name: "a", SamplesNS: []float64{180, 181, 179}},
			{Name: "b", SamplesNS: []float64{50}},
			{Name: "c", SamplesNS: []float64{7}},
		}},
	}
}

func TestBuildSeries(t *testing.T) {
	series := BuildSeries(threeRuns())
	if len(series) != 3 {
		t.Fatalf("got %d series, want 3", len(series))
	}
	// Order is first appearance: a, b, c.
	for i, want := range []string{"a", "b", "c"} {
		if series[i].Name != want {
			t.Errorf("series[%d] = %q, want %q", i, series[i].Name, want)
		}
		if len(series[i].Points) != 3 {
			t.Errorf("series %q has %d points, want 3", want, len(series[i].Points))
		}
	}
	b := series[1]
	if !b.Points[0].Present || b.Points[1].Present || !b.Points[2].Present {
		t.Errorf("presence of b across runs: %v %v %v",
			b.Points[0].Present, b.Points[1].Present, b.Points[2].Present)
	}
	if got := series[0].Points[2].Summary.Median; got != 180 {
		t.Errorf("a's final median = %v, want 180", got)
	}
}

func TestWriteMarkdown(t *testing.T) {
	var sb strings.Builder
	if err := WriteMarkdown(&sb, threeRuns(), Options{}); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	for _, want := range []string{
		"# Benchmark trend report (3 runs)",
		"BENCH_1.json", "BENCH_2.json", "BENCH_3.json",
		"go1.22.1", "linux/amd64",
		"## a", "## b", "## c",
		// a's third run is an 80% jump over tight samples: regressed.
		"regressed",
		// b's middle run is a gap, and the delta for its third run is
		// judged against run 1 (the last present point), not the gap.
		"| BENCH_2.json | — | — | — | — | — | missing |",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("markdown missing %q:\n%s", want, got)
		}
	}
	// b did not move between its two present points — its verdict row
	// must not be judged against a zero-valued gap.
	if strings.Contains(got, "+inf") || strings.Contains(got, "NaN") {
		t.Errorf("markdown contains non-finite values:\n%s", got)
	}
}

func TestWriteMarkdownEmpty(t *testing.T) {
	var sb strings.Builder
	if err := WriteMarkdown(&sb, nil, Options{}); err == nil {
		t.Error("empty run list accepted")
	}
}

func TestWriteCompareTable(t *testing.T) {
	old := Run{Label: "old.json", Benchmarks: []Benchmark{
		{Name: "fast", SamplesNS: []float64{100, 100, 100}},
		{Name: "gone", SamplesNS: []float64{5}},
	}}
	cur := Run{Label: "new.json", Benchmarks: []Benchmark{
		{Name: "fast", SamplesNS: []float64{200, 200, 200}, AllocsPerOp: 1},
		{Name: "fresh", SamplesNS: []float64{9}},
	}}
	cur.Env = map[string]string{"goarch": "arm64"}
	var sb strings.Builder
	WriteCompareTable(&sb, Compare(old, cur, Options{}))
	got := sb.String()
	for _, want := range []string{
		"compare: old.json -> new.json",
		"fast", "+100.0", "regressed", "allocs/op 0 -> 1",
		"gone", "missing", "fresh", "new",
		"env: goarch:", "summary: 1 regressed, 0 improved, 0 within noise, 1 missing, 1 new",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("compare table missing %q:\n%s", want, got)
		}
	}
}
