package trend

import (
	"encoding/json"
	"strings"
	"testing"
)

// run builds a single-benchmark Run for comparison tests.
func run1(label, name string, allocs int64, samples ...float64) Run {
	return Run{Label: label, Benchmarks: []Benchmark{
		{Name: name, SamplesNS: samples, AllocsPerOp: allocs},
	}}
}

func TestCompareIdenticalWithinNoise(t *testing.T) {
	r := run1("a.json", "core/execute-htm", 0, 200, 201, 199, 200, 200)
	c := Compare(r, r, Options{})
	if c.HasRegression() || c.Improvements != 0 || c.Within != 1 {
		t.Fatalf("identical runs not clean: %+v", c)
	}
	if c.Deltas[0].Verdict != WithinNoise || c.Deltas[0].PctChange != 0 {
		t.Errorf("delta: %+v", c.Deltas[0])
	}
}

func TestCompareSeededRegression(t *testing.T) {
	old := run1("old", "core/execute-htm", 0, 100, 101, 99, 100, 100)
	cur := run1("new", "core/execute-htm", 0, 150, 151, 149, 150, 150)
	c := Compare(old, cur, Options{})
	d := c.Deltas[0]
	if d.Verdict != Regressed {
		t.Fatalf("50%% slowdown on tight samples not flagged: %+v", d)
	}
	if d.PctChange < 45 || d.PctChange > 55 {
		t.Errorf("pct change = %v, want ~50", d.PctChange)
	}
	if !c.HasRegression() || c.Regressions != 1 {
		t.Errorf("comparison totals: %+v", c)
	}
}

func TestCompareImprovement(t *testing.T) {
	old := run1("old", "b", 0, 100, 101, 99, 100, 100)
	cur := run1("new", "b", 0, 60, 61, 59, 60, 60)
	c := Compare(old, cur, Options{})
	if c.Deltas[0].Verdict != Improved || c.Improvements != 1 || c.HasRegression() {
		t.Fatalf("40%% speedup not an improvement: %+v", c)
	}
}

// Single-sample runs (v1-era files) get the wide default noise bound:
// a 5% wobble passes, a 50% jump still fails. The two defaults combine
// in quadrature, so the effective bound is ~14%.
func TestCompareSingleSampleDefaultNoise(t *testing.T) {
	within := Compare(run1("o", "b", 0, 100), run1("n", "b", 0, 105), Options{})
	if v := within.Deltas[0].Verdict; v != WithinNoise {
		t.Errorf("5%% single-sample delta flagged as %v", v)
	}
	regressed := Compare(run1("o", "b", 0, 100), run1("n", "b", 0, 150), Options{})
	if v := regressed.Deltas[0].Verdict; v != Regressed {
		t.Errorf("50%% single-sample delta judged %v", v)
	}
}

// -threshold replaces the statistical bound entirely, in both
// directions: a huge threshold silences a real regression, a tiny one
// flags a small drift the default bound would absorb.
func TestCompareThresholdOverride(t *testing.T) {
	old := run1("o", "b", 0, 100, 100, 100, 100, 100)
	cur := run1("n", "b", 0, 150, 150, 150, 150, 150)
	if c := Compare(old, cur, Options{ThresholdPct: 60}); c.HasRegression() {
		t.Errorf("threshold 60%% still flags a 50%% delta: %+v", c.Deltas[0])
	}
	drift := run1("n", "b", 0, 103, 103, 103, 103, 103)
	if c := Compare(old, drift, Options{ThresholdPct: 2}); !c.HasRegression() {
		t.Errorf("threshold 2%% misses a 3%% delta: %+v", c.Deltas[0])
	}
}

// Allocation counts are deterministic, so any increase is a regression
// even when ns/op stays put.
func TestCompareAllocRegression(t *testing.T) {
	old := run1("o", "b", 0, 100, 100, 100)
	cur := run1("n", "b", 2, 100, 100, 100)
	c := Compare(old, cur, Options{})
	d := c.Deltas[0]
	if d.Verdict != Regressed || !d.AllocRegression {
		t.Fatalf("alloc increase 0->2 not flagged: %+v", d)
	}
	if !c.HasRegression() {
		t.Error("comparison with alloc regression reports clean")
	}
}

func TestCompareMissingAndNew(t *testing.T) {
	old := Run{Label: "o", Benchmarks: []Benchmark{
		{Name: "kept", SamplesNS: []float64{10}},
		{Name: "dropped", SamplesNS: []float64{20}},
	}}
	cur := Run{Label: "n", Benchmarks: []Benchmark{
		{Name: "kept", SamplesNS: []float64{10}},
		{Name: "added", SamplesNS: []float64{30}},
	}}
	c := Compare(old, cur, Options{})
	if c.MissingCount != 1 || c.NewCount != 1 || c.HasRegression() {
		t.Fatalf("totals: %+v", c)
	}
	byName := map[string]Verdict{}
	for _, d := range c.Deltas {
		byName[d.Name] = d.Verdict
	}
	if byName["dropped"] != Missing || byName["added"] != New || byName["kept"] != WithinNoise {
		t.Errorf("verdicts: %v", byName)
	}
}

func TestCompareEnvNotes(t *testing.T) {
	old := run1("o", "b", 0, 100)
	old.Env = map[string]string{"go_version": "go1.22.1", "goos": "linux", "git_rev": "aaa111"}
	cur := run1("n", "b", 0, 100)
	cur.Env = map[string]string{"go_version": "go1.24.0", "goos": "linux", "git_rev": "bbb222"}
	c := Compare(old, cur, Options{})
	if len(c.EnvNotes) != 1 || !strings.Contains(c.EnvNotes[0], "go_version") {
		t.Fatalf("env notes: %v (want exactly the go_version mismatch; git_rev differs by design)", c.EnvNotes)
	}
	same := Compare(old, old, Options{})
	if len(same.EnvNotes) != 0 {
		t.Errorf("identical env produced notes: %v", same.EnvNotes)
	}
}

// A zero-median baseline must not divide by zero or emit Inf (which
// would break the -json output).
func TestCompareZeroBaseline(t *testing.T) {
	c := Compare(run1("o", "b", 0, 0), run1("n", "b", 0, 50), Options{})
	if c.Deltas[0].Verdict != Regressed {
		t.Errorf("0 -> 50 not flagged: %+v", c.Deltas[0])
	}
	if _, err := json.Marshal(c); err != nil {
		t.Fatalf("comparison not JSON-encodable: %v", err)
	}
	both := Compare(run1("o", "b", 0, 0), run1("n", "b", 0, 0), Options{})
	if both.Deltas[0].Verdict != WithinNoise {
		t.Errorf("0 -> 0 judged %v", both.Deltas[0].Verdict)
	}
}

func TestVerdictJSONRoundTrip(t *testing.T) {
	for _, v := range []Verdict{WithinNoise, Improved, Regressed, Missing, New} {
		b, err := json.Marshal(v)
		if err != nil {
			t.Fatal(err)
		}
		var got Verdict
		if err := json.Unmarshal(b, &got); err != nil {
			t.Fatalf("unmarshal %s: %v", b, err)
		}
		if got != v {
			t.Errorf("round trip %v -> %s -> %v", v, b, got)
		}
	}
	var v Verdict
	if err := json.Unmarshal([]byte(`"nonsense"`), &v); err == nil {
		t.Error("unknown verdict accepted")
	}
}
