package trend

import (
	"fmt"
	"io"
	"strings"
)

// SeriesPoint is one run's measurement of one benchmark. Present is
// false when the run did not include the benchmark (the row renders as
// a gap rather than a zero).
type SeriesPoint struct {
	Run         string  `json:"run"`
	Present     bool    `json:"present"`
	Summary     Summary `json:"summary"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// Series is one benchmark's trajectory across an ordered run sequence.
type Series struct {
	Name   string        `json:"name"`
	Points []SeriesPoint `json:"points"`
}

// BuildSeries pivots an ordered run list into per-benchmark series.
// Benchmarks are ordered by first appearance across the runs, so a
// benchmark added in run 3 sorts after everything run 1 measured; every
// series carries one point per run, present or not.
func BuildSeries(runs []Run) []Series {
	order := []string{}
	index := map[string]int{}
	for _, r := range runs {
		for _, b := range r.Benchmarks {
			if _, ok := index[b.Name]; !ok {
				index[b.Name] = len(order)
				order = append(order, b.Name)
			}
		}
	}
	all := make([]Series, len(order))
	for i, name := range order {
		all[i] = Series{Name: name, Points: make([]SeriesPoint, len(runs))}
	}
	for ri, r := range runs {
		for i := range all {
			all[i].Points[ri] = SeriesPoint{Run: r.Label}
		}
		for _, b := range r.Benchmarks {
			p := &all[index[b.Name]].Points[ri]
			p.Present = true
			p.Summary = Summarize(b.SamplesNS)
			p.AllocsPerOp = b.AllocsPerOp
		}
	}
	return all
}

// WriteMarkdown renders the whole run sequence as a markdown trend
// report: a run-environment table up front (so cross-host segments of
// the series are visible at a glance), then one table per benchmark with
// each run's robust summary and its verdict against the previous
// present run. This is the artifact CI uploads for every PR.
func WriteMarkdown(w io.Writer, runs []Run, opts Options) error {
	opts = opts.withDefaults()
	if len(runs) == 0 {
		return fmt.Errorf("trend: no runs to report")
	}
	fmt.Fprintf(w, "# Benchmark trend report (%d runs)\n\n", len(runs))
	fmt.Fprintln(w, "| run | benchmarks | go | goos/goarch | cpu | GOMAXPROCS | git rev | captured |")
	fmt.Fprintln(w, "|---|---:|---|---|---|---:|---|---|")
	for _, r := range runs {
		env := func(k string) string {
			if v := r.Env[k]; v != "" {
				return v
			}
			return "—"
		}
		osArch := "—"
		if r.Env["goos"] != "" || r.Env["goarch"] != "" {
			osArch = r.Env["goos"] + "/" + r.Env["goarch"]
		}
		fmt.Fprintf(w, "| %s | %d | %s | %s | %s | %s | %s | %s |\n",
			r.Label, len(r.Benchmarks), env("go_version"), osArch,
			env("cpu_model"), env("go_max_procs"), env("git_rev"), env("time"))
	}
	for _, s := range BuildSeries(runs) {
		fmt.Fprintf(w, "\n## %s\n\n", s.Name)
		fmt.Fprintln(w, "| run | n | median ns/op | ±95% CI | allocs/op | Δ vs prev | verdict |")
		fmt.Fprintln(w, "|---|---:|---:|---:|---:|---:|---|")
		prev := -1 // index of the last present point
		for i, p := range s.Points {
			if !p.Present {
				fmt.Fprintf(w, "| %s | — | — | — | — | — | missing |\n", p.Run)
				continue
			}
			deltaCol, verdictCol := "—", "—"
			if prev >= 0 {
				pp := s.Points[prev]
				pct, noise, v := judge(pp.Summary, p.Summary, opts)
				if p.AllocsPerOp > pp.AllocsPerOp {
					v = Regressed
				}
				deltaCol = fmt.Sprintf("%+.1f%% (noise ±%.1f%%)", pct, noise)
				verdictCol = v.String()
			}
			fmt.Fprintf(w, "| %s | %d | %.1f | %s | %d | %s | %s |\n",
				p.Run, p.Summary.N, p.Summary.Median, ciCell(p.Summary),
				p.AllocsPerOp, deltaCol, verdictCol)
			prev = i
		}
	}
	return nil
}

// ciCell renders a summary's confidence interval for the markdown
// table; single-sample points have no interval to show.
func ciCell(s Summary) string {
	if s.N < 2 {
		return "single sample"
	}
	return fmt.Sprintf("±%.1f", s.CIHalf)
}

// WriteCompareTable renders a pairwise comparison as an aligned text
// table plus a one-line summary — the human side of alereport -compare
// (the -json flag emits the Comparison struct instead).
func WriteCompareTable(w io.Writer, c Comparison) {
	fmt.Fprintf(w, "compare: %s -> %s\n", c.Old, c.New)
	fmt.Fprintf(w, "%-30s %12s %12s %9s %9s  %s\n",
		"benchmark", "old ns/op", "new ns/op", "Δ%", "noise%", "verdict")
	for _, d := range c.Deltas {
		oldCol, newCol, pctCol := "—", "—", "—"
		if d.Verdict != New {
			oldCol = fmt.Sprintf("%.1f", d.Old.Median)
		}
		if d.Verdict != Missing {
			newCol = fmt.Sprintf("%.1f", d.New.Median)
		}
		if d.Verdict != Missing && d.Verdict != New {
			pctCol = fmt.Sprintf("%+.1f", d.PctChange)
		}
		verdict := d.Verdict.String()
		if d.AllocRegression {
			verdict += fmt.Sprintf(" (allocs/op %d -> %d)", d.OldAllocs, d.NewAllocs)
		}
		fmt.Fprintf(w, "%-30s %12s %12s %9s %9.1f  %s\n",
			d.Name, oldCol, newCol, pctCol, d.NoisePct, verdict)
	}
	for _, note := range c.EnvNotes {
		fmt.Fprintf(w, "env: %s (deltas may reflect the environment, not the code)\n", note)
	}
	fmt.Fprintf(w, "summary: %d regressed, %d improved, %d within noise",
		c.Regressions, c.Improvements, c.Within)
	var extras []string
	if c.MissingCount > 0 {
		extras = append(extras, fmt.Sprintf("%d missing", c.MissingCount))
	}
	if c.NewCount > 0 {
		extras = append(extras, fmt.Sprintf("%d new", c.NewCount))
	}
	if len(extras) > 0 {
		fmt.Fprintf(w, ", %s", strings.Join(extras, ", "))
	}
	fmt.Fprintln(w)
}
