// Package trend turns series of repeated benchmark samples into checked
// performance claims: robust per-benchmark summaries (median, MAD,
// t-based confidence intervals), pairwise run comparison with explicit
// noise bounds and a verdict enum, and a multi-run series model rendered
// as a markdown trend report.
//
// The package is pure data — no file IO, no dependency on the bench
// harness — so the same comparison logic serves cmd/alereport's
// -compare gate, the -trend report, and tests that construct runs by
// hand. The philosophy is the binstat one: statistics you can manage
// programmatically, so a perf claim is a computed delta with a noise
// bound, never a prose assertion about two numbers eyeballed side by
// side.
package trend

import (
	"math"
	"sort"
)

// Summary is the robust description of one benchmark's repeated ns/op
// samples. Location is the median (a single pathological sample — a GC
// pause, a migration — moves it far less than the mean); scale is the
// MAD, promoted to a normal-consistent sigma; the confidence interval is
// a 95% two-sided t interval on the median using that robust sigma.
type Summary struct {
	N      int     `json:"n"`
	Median float64 `json:"median"`
	Mean   float64 `json:"mean"`
	Min    float64 `json:"min"`
	Max    float64 `json:"max"`
	// MAD is the raw median absolute deviation from the median.
	MAD float64 `json:"mad"`
	// Sigma is the robust scale estimate: 1.4826*MAD (normal-consistent),
	// falling back to the sample standard deviation when the MAD
	// degenerates to 0 (e.g. >half the samples identical).
	Sigma float64 `json:"sigma"`
	// CIHalf is the half-width of the 95% confidence interval on the
	// median, t(0.975, N-1) * Sigma / sqrt(N). Zero when N < 2: a single
	// sample carries no spread information, and comparisons substitute
	// Options.DefaultNoisePct instead.
	CIHalf float64 `json:"ci_half"`
}

// Summarize computes the robust summary of a sample set. An empty input
// yields the zero Summary (N=0), which comparisons treat as absent.
func Summarize(samples []float64) Summary {
	s := Summary{N: len(samples)}
	if s.N == 0 {
		return s
	}
	sorted := append([]float64(nil), samples...)
	sort.Float64s(sorted)
	s.Min, s.Max = sorted[0], sorted[s.N-1]
	s.Median = medianSorted(sorted)
	var sum float64
	for _, v := range samples {
		sum += v
	}
	s.Mean = sum / float64(s.N)
	dev := make([]float64, s.N)
	for i, v := range samples {
		dev[i] = math.Abs(v - s.Median)
	}
	sort.Float64s(dev)
	s.MAD = medianSorted(dev)
	s.Sigma = 1.4826 * s.MAD
	if s.Sigma == 0 && s.N >= 2 {
		var ss float64
		for _, v := range samples {
			d := v - s.Mean
			ss += d * d
		}
		s.Sigma = math.Sqrt(ss / float64(s.N-1))
	}
	if s.N >= 2 {
		s.CIHalf = tCrit(s.N-1) * s.Sigma / math.Sqrt(float64(s.N))
	}
	return s
}

// ciPct is the confidence half-width as a percentage of the median, the
// unit comparisons work in. Single-sample summaries substitute def (the
// wide default bound for v1-era one-shot runs).
func (s Summary) ciPct(def float64) float64 {
	if s.N < 2 || s.Median == 0 {
		return def
	}
	return 100 * s.CIHalf / s.Median
}

// medianSorted returns the median of an already-sorted non-empty slice.
func medianSorted(sorted []float64) float64 {
	n := len(sorted)
	if n%2 == 1 {
		return sorted[n/2]
	}
	return (sorted[n/2-1] + sorted[n/2]) / 2
}

// tTable holds the two-sided 95% Student-t critical values for 1..30
// degrees of freedom; beyond 30 the normal value 1.96 is close enough
// for a noise bound (the exact df-40 value is 2.021).
var tTable = [...]float64{
	12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
	2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
	2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
}

// tCrit returns the two-sided 95% t critical value for df degrees of
// freedom (df >= 1).
func tCrit(df int) float64 {
	if df < 1 {
		df = 1
	}
	if df <= len(tTable) {
		return tTable[df-1]
	}
	return 1.96
}
