package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestZeroSeedIsValid(t *testing.T) {
	s := New(0)
	if s.Uint64() == 0 && s.Uint64() == 0 {
		t.Error("zero-seeded stream degenerate")
	}
}

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed produced different streams")
		}
	}
}

func TestSeedsDecorrelated(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("adjacent seeds collided %d times", same)
	}
}

func TestIntnRange(t *testing.T) {
	s := New(9)
	for i := 0; i < 10000; i++ {
		v := s.Intn(17)
		if v < 0 || v >= 17 {
			t.Fatalf("Intn(17) = %d", v)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	s := New(1)
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	s.Intn(0)
}

func TestUint64nPanicsOnZero(t *testing.T) {
	s := New(1)
	defer func() {
		if recover() == nil {
			t.Error("Uint64n(0) did not panic")
		}
	}()
	s.Uint64n(0)
}

func TestFloat64Range(t *testing.T) {
	s := New(5)
	for i := 0; i < 10000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	s := New(11)
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
		t.Errorf("mean = %.4f, want ~0.5", mean)
	}
}

func TestBernoulliEdges(t *testing.T) {
	s := New(3)
	for i := 0; i < 100; i++ {
		if s.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !s.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
	}
}

func TestBernoulliRate(t *testing.T) {
	s := New(13)
	const p, n = 0.25, 100000
	hits := 0
	for i := 0; i < n; i++ {
		if s.Bernoulli(p) {
			hits++
		}
	}
	if rate := float64(hits) / n; math.Abs(rate-p) > 0.01 {
		t.Errorf("rate = %.4f, want ~%.2f", rate, p)
	}
}

func TestQuickUniformBuckets(t *testing.T) {
	f := func(seed uint64) bool {
		s := New(seed)
		const buckets, n = 8, 8000
		var counts [buckets]int
		for i := 0; i < n; i++ {
			counts[s.Intn(buckets)]++
		}
		for _, c := range counts {
			// Each bucket expects n/buckets = 1000; allow ±20%.
			if c < 800 || c > 1200 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
