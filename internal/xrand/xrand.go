// Package xrand provides a tiny, allocation-free, per-thread pseudo-random
// number generator used throughout the ALE reproduction.
//
// The hot paths of the library (spurious-abort injection, statistical
// counters, sampled timing, workload generators) need a generator that is
// cheap, unsynchronized, and owned by exactly one worker goroutine.
// math/rand's global generator takes a lock and math/rand/v2 is overkill for
// the simple xorshift* stream we need, so we keep our own ~20-line source.
package xrand

// State is an xorshift64* generator. The zero value is not a valid state;
// construct with New. Each worker goroutine owns its own State; State is not
// safe for concurrent use.
type State struct {
	x uint64
}

// New returns a generator seeded from seed. A zero seed is replaced with a
// fixed non-zero constant so the stream never degenerates to all zeros.
func New(seed uint64) *State {
	s := &State{}
	s.Seed(seed)
	return s
}

// Seed resets the generator to a stream determined by seed.
func (s *State) Seed(seed uint64) {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	// Scramble the seed with splitmix64 so that consecutive seeds (thread
	// IDs) produce uncorrelated streams.
	z := seed + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	if z == 0 {
		z = 1
	}
	s.x = z
}

// Uint64 returns the next 64 pseudo-random bits.
func (s *State) Uint64() uint64 {
	x := s.x
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	s.x = x
	return x * 0x2545f4914f6cdd1d
}

// Uint32 returns the next 32 pseudo-random bits.
func (s *State) Uint32() uint32 {
	return uint32(s.Uint64() >> 32)
}

// Intn returns a pseudo-random int in [0, n). It panics if n <= 0.
func (s *State) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	return int(s.Uint64() % uint64(n))
}

// Uint64n returns a pseudo-random uint64 in [0, n). It panics if n == 0.
func (s *State) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("xrand: Uint64n with zero n")
	}
	return s.Uint64() % n
}

// Float64 returns a pseudo-random float64 in [0, 1).
func (s *State) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Bernoulli reports true with probability p (clamped to [0, 1]).
func (s *State) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return s.Float64() < p
}
