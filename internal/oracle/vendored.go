package oracle

import (
	"fmt"
	"math"
	"sort"
	"sync"

	counterorig "repro/examples/vendored/counter"
	counterconv "repro/examples/vendored/counter_converted"
	"repro/internal/core"
)

// vendoredNames is the fixed registry-name space for OpRAdd/OpRTotalOf:
// small enough that names collide across the tape, so registry regions
// run both create and lookup paths.
var vendoredNames = [4]string{"n0", "n1", "n2", "n3"}

func vendoredName(key uint64) string {
	return vendoredNames[key%uint64(len(vendoredNames))]
}

// vendoredOps presents one side of the vendored-counter check — either
// the alepatch-converted package or the original — as closures, since
// the two packages export identical APIs under distinct types. apply
// implements the model interface, so the original-package instance *is*
// the sequential oracle for the converted one.
type vendoredOps struct {
	add      func(int64)
	total    func() int64
	count    func() int64
	snapshot func() (int64, int64)
	mean     func() (float64, bool)
	reset    func()
	gset     func(int64)
	gget     func() int64
	radd     func(string) int64 // Get(name).Add(1); returns that counter's Total
	rtotal   func(...string) int64
	rnames   func() []string
}

// newVendoredConv configures the converted package onto rt and returns
// fresh converted structures. Converted mutexes bind to the runtime at
// first Lock, so this must precede any operation — which is exactly the
// AlepatchConfigure contract.
func newVendoredConv(rt *core.Runtime, policy func() core.Policy) *vendoredOps {
	counterconv.AlepatchConfigure(rt, policy)
	return newVendoredStructs()
}

// newVendoredStructs builds fresh converted structures against whatever
// runtime AlepatchConfigure last installed.
func newVendoredStructs() *vendoredOps {
	c := &counterconv.Counter{}
	g := &counterconv.Gauge{}
	r := counterconv.NewRegistry()
	return &vendoredOps{
		add: c.Add, total: c.Total, count: c.Count,
		snapshot: c.Snapshot, mean: c.Mean, reset: c.Reset,
		gset: g.Set, gget: g.Get,
		radd:   func(name string) int64 { cc := r.Get(name); cc.Add(1); return cc.Total() },
		rtotal: r.TotalOf, rnames: r.Names,
	}
}

// newVendoredModel returns the original (plain-mutex) package as the
// sequential reference.
func newVendoredModel() *vendoredOps {
	c := &counterorig.Counter{}
	g := &counterorig.Gauge{}
	r := counterorig.NewRegistry()
	return &vendoredOps{
		add: c.Add, total: c.Total, count: c.Count,
		snapshot: c.Snapshot, mean: c.Mean, reset: c.Reset,
		gset: g.Set, gget: g.Get,
		radd:   func(name string) int64 { cc := r.Get(name); cc.Add(1); return cc.Total() },
		rtotal: r.TotalOf, rnames: r.Names,
	}
}

// fold2 packs a two-value result into one comparable word. Both sides
// fold identically, so the mix only needs to be injective enough that a
// divergence in either component almost surely changes the word.
func fold2(a, b int64) uint64 {
	return uint64(a)*1099511628211 ^ uint64(b)
}

// foldNames fingerprints a sorted name list (FNV-1a over the joined
// names) so Names results compare as a single word.
func foldNames(names []string) uint64 {
	sort.Strings(names)
	h := uint64(14695981039346656037)
	for _, n := range names {
		for i := 0; i < len(n); i++ {
			h = (h ^ uint64(n[i])) * 1099511628211
		}
		h = (h ^ 0xff) * 1099511628211
	}
	return h
}

// apply executes one vendored-counter operation. Mean folds through
// Float64bits: both packages compute float64(total)/float64(count) from
// identical integers, so the bit patterns must match exactly.
func (v *vendoredOps) apply(op Op) Result {
	switch op.Kind {
	case OpCAdd:
		v.add(int64(op.Val))
		return Result{}
	case OpCTotal:
		return Result{Val: uint64(v.total())}
	case OpCCount:
		return Result{Val: uint64(v.count())}
	case OpCSnapshot:
		t, c := v.snapshot()
		return Result{Val: fold2(t, c)}
	case OpCMean:
		m, ok := v.mean()
		return Result{Val: math.Float64bits(m), OK: ok}
	case OpCReset:
		v.reset()
		return Result{}
	case OpGSet:
		v.gset(int64(op.Val))
		return Result{}
	case OpGGet:
		return Result{Val: uint64(v.gget())}
	case OpRAdd:
		return Result{Val: uint64(v.radd(vendoredName(op.Key)))}
	case OpRTotalOf:
		return Result{Val: uint64(v.rtotal(vendoredNames[:]...))}
	case OpRNames:
		return Result{Val: foldNames(v.rnames())}
	}
	panic("oracle: bad vendored op " + op.Kind.String())
}

// soakVendored is the concurrent check for the converted package. Each
// worker drives a private converted Counter/Gauge against a private
// original-package model, while all workers also hammer one shared
// converted Counter and one shared Registry:
//
//   - shared counter: every add is exactly 1, so any consistent
//     Snapshot has total == count and any non-empty Mean is exactly 1.0
//     — a torn seqlock read shows up immediately.
//   - shared registry: worker w only touches the counter named after w,
//     so per-name totals are exact even though the registry mutex (and
//     its map) is contended by everyone.
func soakVendored(cfg SoakConfig, rt *core.Runtime) error {
	counterconv.AlepatchConfigure(rt, func() core.Policy { return core.NewAdaptive() })
	shared := &counterconv.Counter{}
	reg := counterconv.NewRegistry()

	errs := make([]error, cfg.Workers)
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		conv := newVendoredStructs()
		model := newVendoredModel()
		base := 1 + uint64(w)*cfg.Keys
		tape := genTape(StructVendored, cfg.Seed+uint64(w)*0x9e3779b97f4a7c15,
			cfg.OpsPerWorker, base, cfg.Keys, false)
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			name := fmt.Sprintf("w%d", w)
			for i, op := range tape {
				got := conv.apply(op)
				want := model.apply(op)
				if got != want {
					errs[w] = fmt.Errorf(
						"oracle: soak worker %d: vendored diverged at its op %d %s: got %s, want %s (seed %d, script %q)",
						w, i, op, got, want, cfg.Seed, cfg.Script.String())
					return
				}
				shared.Add(1)
				if t, c := shared.Snapshot(); t != c {
					errs[w] = fmt.Errorf(
						"oracle: soak worker %d: torn vendored snapshot (total=%d count=%d, seed %d, script %q)",
						w, t, c, cfg.Seed, cfg.Script.String())
					return
				}
				if m, ok := shared.Mean(); !ok || m != 1.0 {
					errs[w] = fmt.Errorf(
						"oracle: soak worker %d: inconsistent vendored mean %v/%v, want 1.0/true (seed %d, script %q)",
						w, m, ok, cfg.Seed, cfg.Script.String())
					return
				}
				reg.Get(name).Add(1)
			}
		}(w)
	}
	wg.Wait()
	for _, e := range errs {
		if e != nil {
			return e
		}
	}

	// Exact totals now that every worker completed its full tape.
	wantOps := int64(cfg.Workers) * int64(cfg.OpsPerWorker)
	if t, c := shared.Snapshot(); t != wantOps || c != wantOps {
		return fmt.Errorf("oracle: vendored soak: shared counter = (%d, %d), want (%d, %d) (seed %d, script %q)",
			t, c, wantOps, wantOps, cfg.Seed, cfg.Script.String())
	}
	names := reg.Names()
	if len(names) != cfg.Workers {
		return fmt.Errorf("oracle: vendored soak: registry has %d names, want %d (seed %d, script %q)",
			len(names), cfg.Workers, cfg.Seed, cfg.Script.String())
	}
	for w := 0; w < cfg.Workers; w++ {
		name := fmt.Sprintf("w%d", w)
		if got := reg.TotalOf(name); got != int64(cfg.OpsPerWorker) {
			return fmt.Errorf("oracle: vendored soak: %s total = %d, want %d (seed %d, script %q)",
				name, got, cfg.OpsPerWorker, cfg.Seed, cfg.Script.String())
		}
	}
	if got := reg.TotalOf(names...); got != wantOps {
		return fmt.Errorf("oracle: vendored soak: registry grand total = %d, want %d (seed %d, script %q)",
			got, wantOps, cfg.Seed, cfg.Script.String())
	}
	return nil
}
