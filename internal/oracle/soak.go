package oracle

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/hashmap"
	"repro/internal/intset"
	"repro/internal/obs"
	"repro/internal/queue"
	"repro/internal/tm"
)

// SoakConfig parameterizes a concurrent stress soak: several workers
// share one structure while faults fire. Concurrent runs are not
// bit-for-bit reproducible (the interleaving is the scheduler's), so the
// checks are interleaving-independent:
//
//   - hashmap/intset: workers own disjoint key ranges, so each worker's
//     operations on its own keys linearize in its program order and check
//     against a private sequential model — while still contending on the
//     shared lock, markers, and buckets.
//   - queue: conservation (every successfully enqueued value is dequeued
//     exactly once, and nothing else ever appears) plus per-producer FIFO
//     order within each consumer's take log.
type SoakConfig struct {
	Structure     Structure
	Seed          uint64
	Workers       int // map/set: model workers; queue: producer/consumer pairs
	OpsPerWorker  int
	Keys          uint64 // per-worker key-range size (map/set)
	Script        faultinject.Script
	Profile       tm.Profile
	QueueCap      int
	QueueSkipHead uint64

	// Obs optionally receives the injector's firing counters.
	Obs *obs.Collector
}

func (c SoakConfig) withDefaults() SoakConfig {
	if c.Workers == 0 {
		c.Workers = 4
	}
	if c.OpsPerWorker == 0 {
		c.OpsPerWorker = 2000
	}
	if c.Keys == 0 {
		c.Keys = 32
	}
	if c.QueueCap == 0 {
		c.QueueCap = 64
	}
	if c.Profile.Name == "" {
		c.Profile = tm.Profile{
			Name:     "oracle-soak",
			Enabled:  true,
			ReadCap:  1 << 16,
			WriteCap: 1 << 16,
		}
	}
	return c
}

// Soak runs the concurrent stress soak and returns the injector's
// per-class firing counts (so callers can assert the script actually
// exercised something) plus the first violation found (nil for a clean
// soak).
func Soak(cfg SoakConfig) (firings [faultinject.NumClasses]uint64, err error) {
	cfg = cfg.withDefaults()
	inj := faultinject.New(cfg.Script)
	if cfg.Obs != nil {
		inj.SetObsShard(cfg.Obs.NewShard())
	}
	dom := tm.NewDomain(cfg.Profile)
	dom.SetInjector(inj)
	opts := core.DefaultOptions()
	opts.Faults = inj
	opts.Obs = cfg.Obs
	rt := core.NewRuntimeOpts(dom, opts)

	switch cfg.Structure {
	case StructHashMap, StructIntSet:
		err = soakKeyed(cfg, rt)
	case StructQueue:
		err = soakQueue(cfg, rt)
	case StructVendored:
		err = soakVendored(cfg, rt)
	default:
		err = fmt.Errorf("oracle: unknown structure %d", cfg.Structure)
	}
	return inj.Firings(), err
}

// soakKeyed is the disjoint-key-range soak shared by hashmap and intset:
// worker w draws keys from [1+w*Keys, 1+(w+1)*Keys) and checks its own
// sequential model, so any cross-worker interference that corrupts
// results is caught by whichever worker observes it.
func soakKeyed(cfg SoakConfig, rt *core.Runtime) error {
	capacity := cfg.Workers*cfg.OpsPerWorker + 256
	var newHandle func() func(Op) Result
	switch cfg.Structure {
	case StructHashMap:
		m := hashmap.New(rt, "soak-map",
			hashmap.Config{Buckets: 64, Capacity: capacity, MarkerStripes: 1},
			core.NewAdaptive())
		newHandle = func() func(Op) Result {
			h := m.NewHandle()
			ex := &executor{structure: StructHashMap, hm: h}
			return ex.exec
		}
	case StructIntSet:
		s := intset.New(rt, "soak-set", capacity, core.NewAdaptive())
		newHandle = func() func(Op) Result {
			h := s.NewHandle()
			ex := &executor{structure: StructIntSet, is: h}
			return ex.exec
		}
	}

	errs := make([]error, cfg.Workers)
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		exec := newHandle() // handles (and their threads) made on the caller
		base := 1 + uint64(w)*cfg.Keys
		tape := genTape(cfg.Structure, cfg.Seed+uint64(w)*0x9e3779b97f4a7c15,
			cfg.OpsPerWorker, base, cfg.Keys, false)
		model := newModel(cfg.Structure, 0)
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i, op := range tape {
				got := exec(op)
				want := model.apply(op)
				if got != want {
					errs[w] = fmt.Errorf(
						"oracle: soak worker %d: %s diverged at its op %d %s: got %s, want %s (seed %d, script %q)",
						w, cfg.Structure, i, op, got, want, cfg.Seed, cfg.Script.String())
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return nil
}

// soakQueue runs Workers producers against Workers consumers. Values
// encode (producer, sequence), so the post-run checks need no model of
// the interleaving: conservation plus per-producer order within each
// consumer's log.
func soakQueue(cfg SoakConfig, rt *core.Runtime) error {
	q := queue.New(rt, "soak-queue", cfg.QueueCap, core.NewAdaptive())
	if cfg.QueueSkipHead != 0 {
		q.SetDebugSkipHeadEvery(cfg.QueueSkipHead)
	}

	puts := make([]uint64, cfg.Workers)   // per-producer successful puts
	logs := make([][]uint64, cfg.Workers) // per-consumer take logs
	handles := make([]*queue.Handle, 2*cfg.Workers)
	for i := range handles {
		handles[i] = q.NewHandle()
	}

	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(2)
		go func(w int) { // producer
			defer wg.Done()
			h := handles[w]
			seq := uint64(0)
			for i := 0; i < cfg.OpsPerWorker; i++ {
				v := uint64(w)<<32 | seq
				if err := h.Put(v); err == nil {
					seq++
				}
			}
			puts[w] = seq
		}(w)
		go func(w int) { // consumer
			defer wg.Done()
			h := handles[cfg.Workers+w]
			for i := 0; i < cfg.OpsPerWorker; i++ {
				if v, err := h.Take(); err == nil {
					logs[w] = append(logs[w], v)
				}
			}
		}(w)
	}
	wg.Wait()

	// Drain what the consumers left behind (single-threaded now).
	drainer := q.NewHandle()
	var drained []uint64
	for {
		v, err := drainer.Take()
		if err != nil {
			break
		}
		drained = append(drained, v)
	}

	// Per-producer FIFO order within each consumer's log: a consumer's
	// takes are a real-time-ordered subsequence of the global dequeue
	// order, and producer w's values enter in ascending sequence.
	for c, log := range logs {
		last := make(map[uint64]uint64, cfg.Workers)
		for i, v := range log {
			p, seq := v>>32, v&0xffffffff
			if prev, seen := last[p]; seen && seq <= prev {
				return fmt.Errorf(
					"oracle: queue soak: consumer %d saw producer %d seq %d after seq %d (log index %d, seed %d, script %q)",
					c, p, seq, prev, i, cfg.Seed, cfg.Script.String())
			}
			last[p] = seq
		}
	}

	// Conservation: takes + drain is exactly the multiset of successful
	// puts — each value once, nothing invented, nothing lost.
	var all []uint64
	for _, log := range logs {
		all = append(all, log...)
	}
	all = append(all, drained...)
	var want int
	for _, n := range puts {
		want += int(n)
	}
	if len(all) != want {
		return fmt.Errorf("oracle: queue soak: %d values dequeued, %d enqueued (seed %d, script %q)",
			len(all), want, cfg.Seed, cfg.Script.String())
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	for i := 1; i < len(all); i++ {
		if all[i] == all[i-1] {
			v := all[i]
			return fmt.Errorf(
				"oracle: queue soak: value %d (producer %d seq %d) dequeued twice (seed %d, script %q)",
				v, v>>32, v&0xffffffff, cfg.Seed, cfg.Script.String())
		}
	}
	idx := 0
	for p := 0; p < cfg.Workers; p++ {
		for seq := uint64(0); seq < puts[p]; seq++ {
			wantV := uint64(p)<<32 | seq
			if idx >= len(all) || all[idx] != wantV {
				return fmt.Errorf(
					"oracle: queue soak: missing or foreign value near producer %d seq %d (seed %d, script %q)",
					p, seq, cfg.Seed, cfg.Script.String())
			}
			idx++
		}
	}
	return nil
}
