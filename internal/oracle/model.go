package oracle

import "fmt"

// Result is the observable outcome of one operation, normalized across
// structures so real and model executions compare with ==. Unused fields
// are zero; errors compare by message.
type Result struct {
	Val uint64 // Get/Take/Peek value, or queue length for OpLen
	OK  bool   // present / newly-linked / removed / non-empty
	Err string // "" on success
}

func (r Result) String() string {
	if r.Err != "" {
		return fmt.Sprintf("error(%s)", r.Err)
	}
	return fmt.Sprintf("(val=%d ok=%v)", r.Val, r.OK)
}

// model is a sequential reference implementation: apply executes one
// operation and returns the result the real structure must produce at the
// same point of the linearization.
type model interface {
	apply(op Op) Result
}

func newModel(s Structure, queueCap int) model {
	switch s {
	case StructHashMap:
		return &mapModel{m: map[uint64]uint64{}}
	case StructIntSet:
		return &setModel{m: map[uint64]struct{}{}}
	case StructQueue:
		return &queueModel{cap: queueCap}
	case StructVendored:
		return newVendoredModel()
	}
	panic("oracle: unknown structure")
}

// mapModel mirrors hashmap.Handle semantics: Insert reports "newly
// linked" (false on overwrite), Remove reports presence.
type mapModel struct{ m map[uint64]uint64 }

func (mm *mapModel) apply(op Op) Result {
	switch op.Kind {
	case OpGet:
		v, ok := mm.m[op.Key]
		return Result{Val: v, OK: ok}
	case OpInsert, OpInsertOpt:
		_, existed := mm.m[op.Key]
		mm.m[op.Key] = op.Val
		return Result{OK: !existed}
	case OpRemove, OpRemoveOpt, OpRemoveSA:
		_, existed := mm.m[op.Key]
		delete(mm.m, op.Key)
		return Result{OK: existed}
	case OpLen:
		return Result{Val: uint64(len(mm.m))}
	}
	panic("oracle: bad hashmap op " + op.Kind.String())
}

// setModel mirrors intset.Handle semantics.
type setModel struct{ m map[uint64]struct{} }

func (sm *setModel) apply(op Op) Result {
	switch op.Kind {
	case OpContains:
		_, ok := sm.m[op.Key]
		return Result{OK: ok}
	case OpInsert:
		_, existed := sm.m[op.Key]
		sm.m[op.Key] = struct{}{}
		return Result{OK: !existed}
	case OpRemove:
		_, existed := sm.m[op.Key]
		delete(sm.m, op.Key)
		return Result{OK: existed}
	case OpLen:
		return Result{Val: uint64(len(sm.m))}
	}
	panic("oracle: bad intset op " + op.Kind.String())
}

// queueModel mirrors queue.Handle semantics over the *effective* capacity
// (queue.New rounds up to a power of two).
type queueModel struct {
	vals []uint64
	cap  int
}

func (qm *queueModel) apply(op Op) Result {
	switch op.Kind {
	case OpPut:
		if len(qm.vals) >= qm.cap {
			return Result{Err: "queue: full"}
		}
		qm.vals = append(qm.vals, op.Key)
		return Result{}
	case OpTake:
		if len(qm.vals) == 0 {
			return Result{Err: "queue: empty"}
		}
		v := qm.vals[0]
		qm.vals = qm.vals[1:]
		return Result{Val: v, OK: true}
	case OpPeek:
		if len(qm.vals) == 0 {
			return Result{}
		}
		return Result{Val: qm.vals[0], OK: true}
	case OpLen:
		return Result{Val: uint64(len(qm.vals))}
	}
	panic("oracle: bad queue op " + op.Kind.String())
}
