package oracle

import (
	"strings"
	"testing"

	"repro/internal/faultinject"
)

func mustScript(t *testing.T, s string) faultinject.Script {
	t.Helper()
	sc, err := faultinject.ParseScript(s)
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

func TestGenTapeDeterministic(t *testing.T) {
	for s := Structure(0); s < NumStructures; s++ {
		a := GenTape(s, 7, 500, 32)
		b := GenTape(s, 7, 500, 32)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s tape diverged at %d: %v vs %v", s, i, a[i], b[i])
			}
		}
		c := GenTape(s, 8, 500, 32)
		same := true
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
		if same {
			t.Errorf("%s tapes for different seeds are identical", s)
		}
	}
}

// TestRunCleanUnderFaults drives every structure through a fault storm
// touching all seven classes and demands a clean oracle verdict: faults
// may only force retries, never wrong results.
func TestRunCleanUnderFaults(t *testing.T) {
	script := mustScript(t,
		"spurious-burst@20:200/9,capacity-cliff@50:400/5=4,conflict-storm@10:300/11,"+
			"htm-disable@30:90/4,validate-fail@5:150/3,delay-end/7,lock-stretch/6=4")
	for s := Structure(0); s < NumStructures; s++ {
		rep := Run(Config{Structure: s, Seed: 42, Ops: 1500, Script: script})
		if rep.Repro != nil {
			t.Fatalf("%s diverged under sound faults:\n%s", s, rep.Repro.Error())
		}
		var fired uint64
		for _, f := range rep.Firings {
			fired += f
		}
		if fired == 0 {
			t.Errorf("%s: script never fired (firings %v)", s, rep.Firings)
		}
	}
}

// TestRunBitForBitReproducible is the acceptance check: same seed + same
// script → identical (operation, result) tape hash and identical fault
// firings, across repeated runs and for every structure.
func TestRunBitForBitReproducible(t *testing.T) {
	script := mustScript(t, "spurious-burst@7:500/13,validate-fail/5,htm-disable@40:60")
	for s := Structure(0); s < NumStructures; s++ {
		cfg := Config{Structure: s, Seed: 99, Ops: 1000, Script: script}
		first := Run(cfg)
		if first.Repro != nil {
			t.Fatalf("%s: unexpected mismatch:\n%s", s, first.Repro.Error())
		}
		for i := 0; i < 3; i++ {
			again := Run(cfg)
			if again.TapeHash != first.TapeHash {
				t.Fatalf("%s: tape hash diverged on replay %d: %x vs %x",
					s, i, again.TapeHash, first.TapeHash)
			}
			if again.Firings != first.Firings {
				t.Fatalf("%s: fault firings diverged on replay %d: %v vs %v",
					s, i, again.Firings, first.Firings)
			}
		}
		other := Run(Config{Structure: s, Seed: 100, Ops: 1000, Script: script})
		if other.Repro == nil && other.TapeHash == first.TapeHash {
			t.Errorf("%s: different seeds produced the same tape hash", s)
		}
	}
}

// TestSeededBugCaught is the harness self-test: the queue's deliberate
// head-skip defect must be caught by the oracle, and the emitted repro —
// seed, minimal prefix, minimized script — must actually reproduce it.
func TestSeededBugCaught(t *testing.T) {
	script := mustScript(t, "conflict-storm/17,validate-fail/9")
	cfg := Config{
		Structure:     StructQueue,
		Seed:          7,
		Ops:           2000,
		Script:        script,
		QueueSkipHead: 5,
	}
	rep := Run(cfg)
	if rep.Repro == nil {
		t.Fatal("seeded head-skip defect escaped the oracle")
	}
	r := rep.Repro
	if r.Ops != r.FailIndex+1 {
		t.Errorf("minimal prefix %d != fail index %d + 1", r.Ops, r.FailIndex)
	}
	// The defect needs no faults: minimization must drop every rule.
	if len(r.Script) != 0 {
		t.Errorf("script not minimized: %q", r.Script.String())
	}
	msg := r.Error()
	for _, want := range []string{"diverged from sequential oracle", "-seed 7", "-script", "-seed-bug 5"} {
		if !strings.Contains(msg, want) {
			t.Errorf("repro message missing %q:\n%s", want, msg)
		}
	}
	// Replay the minimized repro: it must fail at the same operation.
	replay := Run(Config{
		Structure:     r.Structure,
		Seed:          r.Seed,
		Ops:           r.Ops,
		Keys:          r.Keys,
		Script:        r.Script,
		QueueCap:      r.QueueCap,
		QueueSkipHead: r.QueueSkipHead,
	})
	if replay.Repro == nil {
		t.Fatal("minimized repro does not reproduce the failure")
	}
	if replay.Repro.FailIndex != r.FailIndex || replay.Repro.Got != r.Got || replay.Repro.Want != r.Want {
		t.Errorf("replay failed differently: %+v vs %+v", replay.Repro, r)
	}
	// Without the seeded bug the same run is clean.
	clean := cfg
	clean.QueueSkipHead = 0
	if rep := Run(clean); rep.Repro != nil {
		t.Errorf("defect-free run not clean:\n%s", rep.Repro.Error())
	}
}

// TestSoakKeyedClean soaks the map and set concurrently under faults.
func TestSoakKeyedClean(t *testing.T) {
	script := mustScript(t, "spurious-burst/31,validate-fail/7,delay-end/5=8,lock-stretch/9=8,conflict-storm/23")
	for _, s := range []Structure{StructHashMap, StructIntSet} {
		ops := 3000
		if testing.Short() {
			ops = 500
		}
		firings, err := Soak(SoakConfig{
			Structure:    s,
			Seed:         21,
			Workers:      4,
			OpsPerWorker: ops,
			Script:       script,
		})
		if err != nil {
			t.Fatalf("%s soak: %v", s, err)
		}
		var fired uint64
		for _, f := range firings {
			fired += f
		}
		if fired == 0 {
			t.Errorf("%s soak: script never fired", s)
		}
	}
}

// TestSoakQueue checks the conservation/FIFO soak both ways: clean under
// faults, violated when the head-skip defect is seeded (the skip makes a
// value dequeue twice, which conservation reports).
func TestSoakQueue(t *testing.T) {
	script := mustScript(t, "spurious-burst/19,delay-end/3=4,lock-stretch/5=4")
	ops := 3000
	if testing.Short() {
		ops = 500
	}
	if _, err := Soak(SoakConfig{
		Structure:    StructQueue,
		Seed:         5,
		Workers:      3,
		OpsPerWorker: ops,
		Script:       script,
	}); err != nil {
		t.Fatalf("clean queue soak: %v", err)
	}
	_, err := Soak(SoakConfig{
		Structure:     StructQueue,
		Seed:          5,
		Workers:       3,
		OpsPerWorker:  ops,
		Script:        script,
		QueueSkipHead: 7,
	})
	if err == nil {
		t.Fatal("seeded head-skip defect escaped the queue soak checks")
	}
	if !strings.Contains(err.Error(), "oracle: queue soak") {
		t.Errorf("unexpected violation report: %v", err)
	}
}

// TestMinimizeKeepsLoadBearingRules checks minimization from the other
// side: when the failure is fault-*dependent* the script cannot shrink to
// empty. We manufacture one by giving the queue a defect that only
// fires late enough that dropping rules moves firings — here we instead
// check that a clean script stays clean after minimize-style reruns, and
// that a failing run's minimized script still reproduces (covered above);
// what remains is that rule drops never *introduce* a failure.
func TestMinimizeKeepsLoadBearingRules(t *testing.T) {
	script := mustScript(t, "htm-disable/2,validate-fail/3")
	for _, drop := range []int{0, 1} {
		cand := append(faultinject.Script(nil), script[:drop]...)
		cand = append(cand, script[drop+1:]...)
		rep := Run(Config{Structure: StructIntSet, Seed: 3, Ops: 800, Script: cand})
		if rep.Repro != nil {
			t.Fatalf("dropping rule %d made a sound script unsound:\n%s", drop, rep.Repro.Error())
		}
	}
}

// TestSoakVendored soaks the alepatch-converted vendored counter package
// concurrently under faults: per-worker private structures check against
// the original package as a model, and the shared counter/registry
// invariants catch torn speculative reads.
func TestSoakVendored(t *testing.T) {
	script := mustScript(t, "spurious-burst/31,validate-fail/7,delay-end/5=8,lock-stretch/9=8,conflict-storm/23")
	ops := 3000
	if testing.Short() {
		ops = 500
	}
	firings, err := Soak(SoakConfig{
		Structure:    StructVendored,
		Seed:         33,
		Workers:      4,
		OpsPerWorker: ops,
		Script:       script,
	})
	if err != nil {
		t.Fatalf("vendored soak: %v", err)
	}
	var fired uint64
	for _, f := range firings {
		fired += f
	}
	if fired == 0 {
		t.Errorf("vendored soak: script never fired")
	}
}
