package oracle

import "testing"

func TestKVModelSemantics(t *testing.T) {
	kv := NewKVModel()
	if v, ok := kv.Apply(KVGet, 1, 0); ok || v != 0 {
		t.Fatalf("Get(empty) = (%d, %v)", v, ok)
	}
	if v, ok := kv.Apply(KVSet, 1, 10); !ok || v != 10 {
		t.Fatalf("Set = (%d, %v)", v, ok)
	}
	if v, ok := kv.Apply(KVIncr, 1, 5); !ok || v != 15 {
		t.Fatalf("Incr(present) = (%d, %v)", v, ok)
	}
	if v, ok := kv.Apply(KVIncr, 2, 7); !ok || v != 7 {
		t.Fatalf("Incr(absent) = (%d, %v) — must create with delta", v, ok)
	}
	if v, ok := kv.Apply(KVDel, 1, 0); !ok || v != 1 {
		t.Fatalf("Del(present) = (%d, %v)", v, ok)
	}
	if v, ok := kv.Apply(KVDel, 1, 0); ok || v != 0 {
		t.Fatalf("Del(absent) = (%d, %v)", v, ok)
	}
	if kv.Len() != 1 {
		t.Fatalf("Len = %d, want 1", kv.Len())
	}
	if v, ok := kv.Get(2); !ok || v != 7 {
		t.Fatalf("Get(2) = (%d, %v)", v, ok)
	}
}

func TestReplayKVTapeDetectsDivergence(t *testing.T) {
	good := []KVOp{
		{Kind: KVSet, Key: 1, Arg: 10, Acked: true, Val: 10, OK: true},
		{Kind: KVIncr, Key: 1, Arg: 2, Acked: true, Val: 12, OK: true},
		{Kind: KVGet, Key: 1, Acked: true, Val: 12, OK: true},
		{Kind: KVIncr, Key: 1, Arg: 99, Acked: false}, // unacked: skipped
		{Kind: KVGet, Key: 1, Acked: true, Val: 12, OK: true},
	}
	if idx, msg := ReplayKVTape(NewKVModel(), good); idx != -1 {
		t.Fatalf("clean tape flagged at %d: %s", idx, msg)
	}

	// A lost increment: the replayed GET sees a stale value.
	lost := []KVOp{
		{Kind: KVSet, Key: 1, Arg: 10, Acked: true, Val: 10, OK: true},
		{Kind: KVIncr, Key: 1, Arg: 2, Acked: true, Val: 12, OK: true},
		{Kind: KVGet, Key: 1, Acked: true, Val: 10, OK: true}, // stale!
	}
	if idx, _ := ReplayKVTape(NewKVModel(), lost); idx != 2 {
		t.Fatalf("lost-update tape flagged at %d, want 2", idx)
	}

	// A double-applied increment.
	double := []KVOp{
		{Kind: KVSet, Key: 1, Arg: 10, Acked: true, Val: 10, OK: true},
		{Kind: KVIncr, Key: 1, Arg: 2, Acked: true, Val: 14, OK: true}, // applied twice
	}
	if idx, _ := ReplayKVTape(NewKVModel(), double); idx != 1 {
		t.Fatalf("double-apply tape flagged at %d, want 1", idx)
	}
}
